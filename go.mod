module occamy

go 1.22
