package occamy

import (
	"math"
	"testing"
)

// quickCfg shrinks trip counts so the public-API tests stay fast.
func quickCfg(a Arch) Config {
	cfg := DefaultConfig(a)
	cfg.Scale = 0.25
	return cfg
}

func TestWorkloadCatalog(t *testing.T) {
	if got := len(Workloads()); got != 34 {
		t.Fatalf("workloads = %d, want 34", got)
	}
	if got := len(Figure10Pairs()); got != 25 {
		t.Fatalf("pairs = %d, want 25", got)
	}
	if got := len(FourCoreGroups()); got != 4 {
		t.Fatalf("groups = %d, want 4", got)
	}
	issue, mem := KernelOI("rho_eos2")
	if !(issue < mem) {
		t.Fatalf("rho_eos2 OI = (%v, %v), want issue < mem", issue, mem)
	}
}

func TestRunAllArchitectures(t *testing.T) {
	sched := MotivatingPair()
	var reports []*Report
	for _, a := range Architectures() {
		rep, err := Run(quickCfg(a), sched)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if rep.Cycles == 0 || len(rep.Cores) != 2 {
			t.Fatalf("%s: degenerate report %+v", a, rep)
		}
		if rep.Summary() == "" {
			t.Fatalf("%s: empty summary", a)
		}
		reports = append(reports, rep)
	}
	// The headline claim at a glance: Occamy's Core1 beats Private's.
	if reports[3].Cores[1].Cycles >= reports[0].Cores[1].Cycles {
		t.Fatalf("Occamy core1 (%d) must beat Private (%d)",
			reports[3].Cores[1].Cycles, reports[0].Cores[1].Cycles)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	sched := PairByName("spec/WL20", "spec/WL17")
	cfg := quickCfg(Elastic)
	a, err := Run(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Utilization != b.Utilization {
		t.Fatalf("two identical runs differ: %d/%f vs %d/%f",
			a.Cycles, a.Utilization, b.Cycles, b.Utilization)
	}
	for c := range a.Cores {
		if a.Cores[c].Cycles != b.Cores[c].Cycles {
			t.Fatalf("core %d cycles differ", c)
		}
	}
}

func TestSeedChangesDataNotShape(t *testing.T) {
	sched := PairByName("cv/WL6", "cv/WL1")
	cfg := quickCfg(Elastic)
	cfg.Seed = 1
	a, err := Run(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	// Timing is data-independent in this design (no data-dependent
	// branches in kernels), so cycles must match even across seeds.
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles depend on data: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestElasticReconfiguresAndOthersDoNot(t *testing.T) {
	sched := MotivatingPair()
	rep, err := Run(quickCfg(Elastic), sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repartitions == 0 || rep.Reconfigures == 0 {
		t.Fatalf("elastic run must repartition (%d) and reconfigure (%d)",
			rep.Repartitions, rep.Reconfigures)
	}
	repP, err := Run(quickCfg(Private), sched)
	if err != nil {
		t.Fatal(err)
	}
	if repP.Reconfigures != 0 {
		t.Fatal("Private must never reconfigure")
	}
}

func TestStaticSpatialReportsPartition(t *testing.T) {
	rep, err := Run(quickCfg(StaticSpatial), MotivatingPair())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StaticVLs) != 2 {
		t.Fatalf("VLS must report its partition, got %v", rep.StaticVLs)
	}
	sum := rep.StaticVLs[0] + rep.StaticVLs[1]
	if sum != 8 {
		t.Fatalf("partition %v must use all 8 granules", rep.StaticVLs)
	}
}

func TestFunctionalVerificationAcrossArchitectures(t *testing.T) {
	// All four architectures must produce identical (within reduction
	// reassociation) results for reduction-heavy workloads.
	sched := PairByName("cv/WL7", "cv/WL3") // normL1+normL2 reductions
	for _, a := range Architectures() {
		cfg := quickCfg(a)
		cfg.Verify = true // Run fails on any divergence
		if _, err := Run(cfg, sched); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}

func TestRooflineAPI(t *testing.T) {
	// Table 5 anchor values through the public API.
	if got := Roofline(3, 1.0/6.0, 0.25); math.Abs(got-16) > 0.2 {
		t.Fatalf("Roofline(12 lanes) = %v, want 16", got)
	}
	if got := Roofline(1, 1.0/6.0, 0.25); math.Abs(got-16.0/3) > 0.2 {
		t.Fatalf("Roofline(4 lanes) = %v, want 5.3", got)
	}
}

func TestLanePlanAPI(t *testing.T) {
	plan := LanePlan([][2]float64{{0.09, 0.09}, {1, 1}}, 8)
	if plan[0] != 2 || plan[1] != 6 {
		t.Fatalf("plan = %v, want [2 6]", plan)
	}
	// Inactive core.
	plan = LanePlan([][2]float64{{0, 0}, {1, 1}}, 8)
	if plan[0] != 0 || plan[1] != 8 {
		t.Fatalf("plan = %v, want [0 8]", plan)
	}
}

func TestFourCoreSchedule(t *testing.T) {
	g := FourCoreGroups()[1] // WL21+20+17+17
	cfg := quickCfg(Elastic)
	rep, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cores) != 4 {
		t.Fatalf("cores = %d, want 4", len(rep.Cores))
	}
}

func TestTimelinesPopulated(t *testing.T) {
	rep, err := Run(quickCfg(Elastic), MotivatingPair())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LaneTimelines) != 2 || len(rep.LaneTimelines[1]) == 0 {
		t.Fatal("lane timelines missing")
	}
	if s := rep.AsciiTimeline(1, 32); len(s) == 0 {
		t.Fatal("ascii timeline empty")
	}
}

func TestScheduleAccessors(t *testing.T) {
	s := PairByName("spec/WL8", "spec/WL17")
	if s.Cores() != 2 {
		t.Fatal("cores")
	}
	names := s.WorkloadNames()
	if names[0] != "spec/WL8" || names[1] != "spec/WL17" {
		t.Fatalf("names = %v", names)
	}
	if s.Name() == "" {
		t.Fatal("name empty")
	}
}

func TestAssemblyAPI(t *testing.T) {
	// A two-core hand-written program pair: core 0 publishes a memory OI
	// and copies; core 1 waits for lanes and scales a vector.
	const prog0 = `
		MOVI X1, #1048592
		MSR <OI>, X1
		MOVI X2, #1
	s:	MSR <VL>, X2
		MRS X3, <status>
		B.NEI X3, #1, s
		MOVI X8, #4096
		MOVI X9, #8192
		VLD1W Z1, [X8, XZR]
		VFADD Z2, Z1, Z1
		VST1W Z2, [X9, XZR]
		MSR <OI>, #0
	r:	MSR <VL>, #0
		MRS X3, <status>
		B.NEI X3, #1, r
		HALT
	`
	const prog1 = `
		MOVI X2, #2
	s:	MSR <VL>, X2
		MRS X3, <status>
		B.NEI X3, #1, s
		MOVI X8, #16384
		VDUPI Z1, #3
		VST1W Z1, [X8, XZR]
	r:	MSR <VL>, #0
		MRS X3, <status>
		B.NEI X3, #1, r
		HALT
	`
	asm, err := NewAssembly(prog0, prog1)
	if err != nil {
		t.Fatal(err)
	}
	asm.WriteF32(4096, 2.5)
	cycles, err := asm.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no cycles")
	}
	if got := asm.ReadF32(8192); got != 5 {
		t.Fatalf("core0 result = %v, want 5", got)
	}
	if got := asm.ReadF32(16384 + 4*7); got != 3 {
		t.Fatalf("core1 lane 7 = %v, want 3", got)
	}
	if len(asm.LaneEvents()) == 0 {
		t.Fatal("no lane events recorded")
	}
}

func TestRunOversubscribedAPI(t *testing.T) {
	rep, err := RunOversubscribed(2, 2000, 1,
		WorkloadByName("spec/WL16"),
		WorkloadByName("spec/WL13"),
		WorkloadByName("cv/WL1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == 0 || len(rep.Tasks) != 3 {
		t.Fatalf("report %+v", rep)
	}
}

func TestWorkloadJSONAPI(t *testing.T) {
	src := []byte(`{"name":"api","phases":[{"kernel":"k","elems":300,
	  "loads":[{"stream":0}],
	  "statements":[{"out":1,"expr":"mul(s0, c3)"}]}]}`)
	ref, err := WorkloadFromJSON(src)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name() != "api" {
		t.Fatal("name lost")
	}
	out, err := WorkloadToJSON(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadFromJSON(out); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	cfg := quickCfg(Elastic)
	rep, err := Run(cfg, NewSchedule("api+peer", ref, WorkloadByName("spec/WL16")))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestMachineConfigAPI verifies the public machine-tuning hook: overriding
// Table 4 parameters through Config.Machine must change timing while keeping
// every result verified.
func TestMachineConfigAPI(t *testing.T) {
	sched := PairByName("spec/WL20", "spec/WL17")
	base, err := Run(quickCfg(Elastic), sched)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(Elastic)
	cfg.Verify = true
	cfg.Machine = &MachineTuning{DRAMLatencyCycles: 300, DRAMBytesPerCycle: 8, PhysRegs: 120}
	slow, err := Run(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles <= base.Cycles {
		t.Fatalf("hobbled machine was not slower: %d vs %d", slow.Cycles, base.Cycles)
	}
}
