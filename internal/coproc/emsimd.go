package coproc

import (
	"fmt"
	"math"
	"os"

	"occamy/internal/isa"
	"occamy/internal/obs"
)

var traceEMSIMD = os.Getenv("OCCAMY_TRACE") != ""

// execEMSIMD executes one EM-SIMD instruction at the head of core c's pool.
// It returns false when the instruction must retry next cycle (an MSR <VL>
// waiting for the pipeline to drain, or the manager still computing a plan).
//
// The EM-SIMD data path is shared and in-order (§4.2.2); per-core program
// order is preserved because instructions sit in the same pool as SVE
// instructions, which realizes Table 2's <SVE, EM-SIMD> and
// <EM-SIMD, EM-SIMD> rows in hardware.
func (cp *Coproc) execEMSIMD(c int, x *XInst, now uint64) bool {
	st := cp.cores[c]
	switch x.Op {
	case isa.OpMSR:
		switch x.Sys {
		case isa.SysOI:
			// A phase-changing point: store the behaviour and have
			// LaneMgr produce a fresh plan (§5). The manager is
			// busy for PlanLat cycles.
			if cp.emsimdBusyUntil > now {
				cp.probe.Signal(c, obs.SigMonitor)
				return false
			}
			cp.mgr.OnOIWrite(c, isa.UnpackOI(x.Val))
			st.lastReject = -1
			if traceEMSIMD {
				fmt.Printf("[%d] core%d MSR OI %v -> dec0=%d dec1=%d\n",
					now, c, isa.UnpackOI(x.Val), cp.tbl.Decision(0), cp.tbl.Decision(1))
			}
			cp.emsimdBusyUntil = now + cp.cfg.PlanLat
			cp.stats.Inc("coproc.repartitions")
			cp.logEvent(LaneEvent{Cycle: now, Core: c, Kind: "repartition"})
			return true
		case isa.SysVL:
			if !cp.cfg.Elastic {
				// Non-elastic policies reject reconfiguration;
				// generated fixed-mode code never asks.
				cp.tbl.TryReconfigure(c, -1) // sets <status> to 0
				return true
			}
			// §4.2.2 precondition: the SIMD pipeline associated
			// with core c must be drained.
			if st.inflight.Count(now) > 0 {
				cp.probe.Signal(c, obs.SigDrain)
				if !st.draining {
					st.draining = true
					st.drainStart = now
				}
				st.drainWait++
				*cp.drainWaitCell++
				return false
			}
			// The drain window (possibly empty) closes this cycle:
			// record its length and its trace slice.
			if h := cp.probe.Hist("coproc.drain.cycles"); h != nil {
				start := now
				if st.draining {
					start = st.drainStart
				}
				h.Observe(now - start)
				// Only a drain that actually waited becomes a trace
				// slice: the monitor's retry loop re-executes MSR <VL>
				// with an empty pipeline every few cycles, and emitting
				// (and allocating args for) each zero-length window
				// would flood the trace from the steady-state path.
				if s := cp.probe.Sink(); s != nil && now > start {
					s.EmitComplete(c, obs.TidEMSIMD, "drain",
						start, now-start, map[string]any{"vl": int(x.Val)})
				}
			}
			st.draining = false
			cp.probe.Signal(c, obs.SigDrain)
			ok := cp.tbl.TryReconfigure(c, int(x.Val))
			if traceEMSIMD {
				fmt.Printf("[%d] core%d MSR VL %d -> ok=%v (VL0=%d VL1=%d AL=%d dec0=%d dec1=%d)\n",
					now, c, x.Val, ok, cp.tbl.VL(0), cp.tbl.VL(1), cp.tbl.AL(), cp.tbl.Decision(0), cp.tbl.Decision(1))
			}
			if ok {
				st.lastReject = -1
				cp.stats.Inc("coproc.reconfigures")
				cp.logEvent(LaneEvent{Cycle: now, Core: c, Kind: "reconfigure", VL: int(x.Val)})
				if cp.cfg.PoisonOnReconfigure {
					cp.poison(c)
				}
			} else {
				cp.stats.Inc("coproc.reconfigure_rejects")
				// The monitor loop retries a rejected <VL> until the
				// table can grant it; log only the first rejection of
				// the streak so a long contention spin cannot flood
				// (or allocate in) the event log.
				if st.lastReject != int(x.Val) {
					st.lastReject = int(x.Val)
					cp.logEvent(LaneEvent{Cycle: now, Core: c, Kind: "reject", VL: int(x.Val)})
				}
			}
			return true
		default:
			// Writes to read-only registers are ignored (defensive;
			// the compiler never emits them).
			return true
		}
	case isa.OpMRS:
		// Ordered reads (only <status> takes this path from generated
		// code; other reads are transmitted speculatively and resolved
		// combinationally via ReadSysNow).
		if cp.respond != nil {
			cp.respond(c, x.XDst, uint64(cp.tbl.ReadRaw(c, x.Sys)), now+cp.cfg.EMSIMDLat)
		}
		return true
	default:
		panic("coproc: non-EM-SIMD instruction routed to EM-SIMD path")
	}
}

// poison fills every lane of every vector register of core c with NaN:
// freed RegBlk contents are not preserved across reconfiguration (§4.2.2),
// and poisoning makes any compiler violation of the §6.4 obligations visible
// as NaN in the workload's results.
func (cp *Coproc) poison(c int) {
	nan := float32(math.NaN())
	for _, reg := range cp.cores[c].z {
		for i := range reg {
			reg[i] = nan
		}
	}
}
