package coproc

// doneRing records issued instructions' completion cycles, indexed by their
// monotonically increasing per-core sequence numbers. It replaces a map that
// would otherwise need periodic pruning: a slot overwritten by a newer
// sequence number means its previous occupant issued at least ringSize
// instructions earlier, far past any realistic completion latency.
const (
	ringBits = 14
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

type doneRing struct {
	seqs  []uint64
	dones []uint64
}

func (r *doneRing) init() {
	r.seqs = make([]uint64, ringSize)
	r.dones = make([]uint64, ringSize)
}

func (r *doneRing) set(seq, done uint64) {
	slot := seq & ringMask
	r.seqs[slot] = seq
	r.dones[slot] = done
}

// Lookup outcomes.
const (
	ringMiss  = iota // sequence number not issued yet
	ringHit          // completion cycle available
	ringOlder        // overwritten by a newer entry: completed long ago
)

func (r *doneRing) get(seq uint64) (done uint64, state int) {
	slot := seq & ringMask
	switch {
	case r.seqs[slot] == seq:
		return r.dones[slot], ringHit
	case r.seqs[slot] > seq:
		return 0, ringOlder
	default:
		return 0, ringMiss
	}
}
