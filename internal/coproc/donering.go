package coproc

// doneRing records issued instructions' completion cycles, indexed by their
// monotonically increasing per-core sequence numbers. It replaces a map that
// would otherwise need periodic pruning: a slot overwritten by a newer
// sequence number means its previous occupant issued at least ringSize
// instructions earlier, far past any realistic completion latency.
const (
	ringBits = 14
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// doneEntry pairs a slot's occupant with its completion cycle so a lookup
// touches one cache line, not one per array.
type doneEntry struct {
	seq  uint64
	done uint64
}

type doneRing struct {
	entries []doneEntry
}

func (r *doneRing) init() {
	r.entries = make([]doneEntry, ringSize)
}

func (r *doneRing) set(seq, done uint64) {
	r.entries[seq&ringMask] = doneEntry{seq: seq, done: done}
}

// Lookup outcomes.
const (
	ringMiss  = iota // sequence number not issued yet
	ringHit          // completion cycle available
	ringOlder        // overwritten by a newer entry: completed long ago
)

func (r *doneRing) get(seq uint64) (done uint64, state int) {
	e := &r.entries[seq&ringMask]
	switch {
	case e.seq == seq:
		return e.done, ringHit
	case e.seq > seq:
		return 0, ringOlder
	default:
		return 0, ringMiss
	}
}
