// Package coproc models the Occamy SIMD co-processor of §4 (Figure 5): the
// per-core instruction pools fed by the scalar cores, the EM-SIMD data path
// executing MSR/MRS on the five dedicated registers, the SIMD compute and
// ld/st data paths built from homogeneous 128-bit ExeBUs, the RegBlk physical
// register file, the LSU, and the Manager (ResourceTbl + LaneMgr).
//
// One implementation serves all four Figure 1 architectures; a Config
// selects the sharing policy:
//
//   - Private: fixed half-split vector lengths, per-core issue budgets and
//     per-core physical-register namespaces.
//   - FTS (temporal sharing): full-width vector length for every core, a
//     single shared issue budget, and one shared full-width physical
//     register pool — the register pressure that produces Figure 13.
//   - VLS (static spatial): per-core fixed vector lengths chosen once by the
//     roofline model, per-core budgets and namespaces.
//   - Occamy (elastic spatial): EM-SIMD reconfiguration enabled; vector
//     lengths follow the ResourceTbl.
//
// The co-processor also executes instructions functionally: vector registers
// hold real float32 lanes and loads/stores move real values through
// mem.Memory, so the compiler's correctness obligations (§6.4) are testable.
package coproc

import "fmt"

// Config sets the structural parameters (Table 4 and Figure 5) and the
// sharing policy.
type Config struct {
	Cores int
	// ExeBUs is the number of 128-bit execution units (granules); Table 4
	// uses 8 (32 lanes) for the 2-core configuration.
	ExeBUs int

	// ActiveCores is the number of cores actually resident on this instance
	// (0 means all of Cores). A clustered machine builds each shard with the
	// machine-wide Cores rows — global core IDs index directly, foreign rows
	// stay inert — but shared-structure arithmetic (the FTS register-file
	// quota) must divide by the tenants this shard really hosts.
	ActiveCores int

	// ComputeIssue and MemIssue are the per-core (or, with SharedIssue,
	// global) issue budgets per cycle: Table 4's "Vector Issue Width - 4
	// (SIMD Execution Units - 2, ld/st Units - 2)".
	ComputeIssue int
	MemIssue     int
	// SharedIssue makes the budgets global across cores (FTS): every
	// instruction occupies the full-width data path, so cores time-share
	// the issue slots.
	SharedIssue bool

	// PhysRegs is the number of physical vector registers in one rename
	// namespace (160 per RegBlk, §4.2.1). With SharedVRF the namespace is
	// shared by all cores at full width (FTS); otherwise each core has
	// its own namespace over its assigned RegBlks.
	PhysRegs  int
	SharedVRF bool
	// ArchRegs is the architectural vector register count per core whose
	// mappings are permanently held (32 SVE z-registers).
	ArchRegs int

	// LHQ and STQ are per-core load/store queue capacities (Figure 5).
	LHQ int
	STQ int

	// MaxPhases is the largest compiler phase count across the programs
	// this instance will execute (0 applies a small default). It only
	// pre-sizes the per-phase issue counters so that a core entering a
	// late phase mid-run does not grow a slice on the tick path.
	MaxPhases int

	// Latencies in cycles.
	ComputeLat uint64 // simple FP ops (add/mul/mla/min/max/abs/neg)
	DivLat     uint64 // divide / sqrt
	IntLat     uint64 // integer lane ops (add/logic/shift/min/max)
	EMSIMDLat  uint64 // MRS/MSR data-path latency
	PlanLat    uint64 // LaneMgr plan computation after an <OI> write

	// Elastic enables the EM-SIMD reconfiguration protocol (Occamy). When
	// false, <VL> writes are rejected and vector lengths stay at
	// FixedVLs.
	Elastic bool
	// FixedVLs is the per-core vector length in granules for non-elastic
	// policies.
	FixedVLs []int

	// PoisonOnReconfigure fills freed register lanes with NaN after a
	// successful <VL> write, making any §6.4 compiler violation (use of a
	// value that did not survive reconfiguration) visible as NaN in
	// results. It models §4.2.2: "The data values in these freed RegBlks
	// are not preserved."
	PoisonOnReconfigure bool
}

// Validate checks the structural parameters New would otherwise panic on,
// plus range checks for machine descriptions loaded from JSON. A nil return
// guarantees New will not reject the config.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("coproc: cores must be positive, got %d", c.Cores)
	}
	if c.ExeBUs <= 0 {
		return fmt.Errorf("coproc: ExeBUs must be positive, got %d", c.ExeBUs)
	}
	if c.ComputeIssue <= 0 || c.MemIssue <= 0 {
		return fmt.Errorf("coproc: issue widths must be positive, got compute %d / mem %d",
			c.ComputeIssue, c.MemIssue)
	}
	if c.ArchRegs <= 0 {
		return fmt.Errorf("coproc: ArchRegs must be positive, got %d", c.ArchRegs)
	}
	if c.ActiveCores < 0 || c.ActiveCores > c.Cores {
		return fmt.Errorf("coproc: ActiveCores must be in [0, Cores], got %d with %d cores",
			c.ActiveCores, c.Cores)
	}
	// Renaming needs at least one spare physical register beyond the
	// permanently-held architectural mappings, per namespace.
	if c.SharedVRF {
		if c.PhysRegs <= c.ArchRegs*c.activeCores() {
			return fmt.Errorf("coproc: shared VRF needs PhysRegs > ArchRegs*resident cores, got %d <= %d*%d",
				c.PhysRegs, c.ArchRegs, c.activeCores())
		}
	} else if c.PhysRegs <= c.ArchRegs {
		return fmt.Errorf("coproc: PhysRegs must exceed ArchRegs, got %d <= %d",
			c.PhysRegs, c.ArchRegs)
	}
	if c.LHQ <= 0 || c.STQ <= 0 {
		return fmt.Errorf("coproc: LHQ/STQ must be positive, got %d/%d", c.LHQ, c.STQ)
	}
	if !c.Elastic && len(c.FixedVLs) > 0 {
		if len(c.FixedVLs) != c.Cores {
			return fmt.Errorf("coproc: FixedVLs has %d entries for %d cores",
				len(c.FixedVLs), c.Cores)
		}
		sum := 0
		for i, vl := range c.FixedVLs {
			if vl < 0 {
				return fmt.Errorf("coproc: FixedVLs[%d] is negative (%d)", i, vl)
			}
			sum += vl
		}
		if sum > c.ExeBUs {
			return fmt.Errorf("coproc: FixedVLs sum %d exceeds %d ExeBUs", sum, c.ExeBUs)
		}
	}
	return nil
}

// DefaultConfig returns the Table 4 structural parameters for an elastic
// (Occamy) co-processor serving the given number of cores.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:               cores,
		ExeBUs:              4 * cores, // 32 lanes for 2 cores
		ComputeIssue:        2,
		MemIssue:            2,
		PhysRegs:            160,
		ArchRegs:            32,
		LHQ:                 48,
		STQ:                 32,
		ComputeLat:          4,
		DivLat:              12,
		IntLat:              2,
		EMSIMDLat:           3,
		PlanLat:             8,
		Elastic:             true,
		PoisonOnReconfigure: true,
	}
}

// LanesPerGranule is the number of 32-bit lanes in one granule: each ExeBU
// is a 128-bit unit (§4.2), i.e. four float32 lanes. Every lane↔granule
// conversion in the tree must go through this constant (or the accessors
// below) so that trace exports and figure reconstructions agree with the
// simulated machine rather than a hardcoded multiplier.
const LanesPerGranule = 4

// Lanes returns the total 32-bit lane count (for utilization metrics).
func (c Config) Lanes() int { return LanesPerGranule * c.ExeBUs }

// activeCores resolves the resident-tenant count (ActiveCores, defaulting to
// Cores when unset).
func (c Config) activeCores() int {
	if c.ActiveCores > 0 {
		return c.ActiveCores
	}
	return c.Cores
}

// LanesPerGranule returns the machine's lane multiplier, carried into trace
// exports so downstream consumers reconstruct lane counts from granule
// events without assuming the 128-bit ExeBU width.
func (cp *Coproc) LanesPerGranule() int { return LanesPerGranule }
