package coproc

import "fmt"

// Topology describes a clustered machine: N co-processor instances, each
// owning an even shard of the machine's ExeBUs, reached from the CPU cores
// over a routed fabric. The zero value (or a nil *Topology at the arch layer)
// means the flat single-instance machine, wired without any routing layer.
type Topology struct {
	// Clusters is the number of co-processor instances (>= 1).
	Clusters int
	// CoresPerGroup is the width of one fabric group: cores in the same
	// group share a fabric position, and the hop distance between a core and
	// a cluster is the position difference. Zero defaults to Cores/Clusters,
	// which places each cluster adjacent to its natural core group.
	CoresPerGroup int
	// HopLatency is the fabric traversal cost in cycles per hop; a
	// transmission to a cluster d positions away arrives after
	// HopLatency*(1+d) cycles. Zero models the flat machine's direct wiring
	// (bit-identical timing to the unrouted build).
	HopLatency uint64
	// HopBandwidth caps how many transmissions one cluster accepts per
	// cycle across the fabric (0 = unlimited). Saturation refuses the
	// transmission; the core retries, and the wait lands in the existing
	// dispatch-full attribution bucket.
	HopBandwidth int
}

// Validate checks the topology against the machine's core and ExeBU counts,
// returning actionable errors for machine descriptions loaded from flags or
// JSON.
func (t Topology) Validate(cores, exebus int) error {
	if t.Clusters < 1 {
		return fmt.Errorf("topology: need at least 1 cluster, got %d", t.Clusters)
	}
	if cores%t.Clusters != 0 {
		return fmt.Errorf("topology: %d cores do not divide evenly over %d clusters", cores, t.Clusters)
	}
	if exebus%t.Clusters != 0 {
		return fmt.Errorf("topology: %d ExeBUs do not shard evenly over %d clusters", exebus, t.Clusters)
	}
	if exebus/t.Clusters < 1 {
		return fmt.Errorf("topology: %d ExeBUs cannot cover %d clusters (need >= 1 each)", exebus, t.Clusters)
	}
	if t.CoresPerGroup < 0 {
		return fmt.Errorf("topology: CoresPerGroup must be >= 0, got %d", t.CoresPerGroup)
	}
	if t.CoresPerGroup > 0 && cores%t.CoresPerGroup != 0 {
		return fmt.Errorf("topology: %d cores do not divide into groups of %d", cores, t.CoresPerGroup)
	}
	if t.HopBandwidth < 0 {
		return fmt.Errorf("topology: HopBandwidth must be >= 0, got %d", t.HopBandwidth)
	}
	return nil
}

// groupWidth resolves CoresPerGroup against the machine's core count.
func (t Topology) groupWidth(cores int) int {
	if t.CoresPerGroup > 0 {
		return t.CoresPerGroup
	}
	w := cores / t.Clusters
	if w < 1 {
		w = 1
	}
	return w
}
