package coproc

import (
	"occamy/internal/isa"
	"occamy/internal/mem"
	"occamy/internal/obs"
	"occamy/internal/sim"
)

// This file implements sim.Sleeper for the co-processor: the side-effect-free
// mirror of Tick that classifies the current cycle as quiescent (every tick
// until the declared wake would repeat exactly the same stall accounting and
// change nothing else) or live (the next tick may issue, execute, rename or
// advance the pool head, and must run for real).
//
// The wake contract leans on the fact that every time-driven predicate in
// this package — depReady, holdTracker.Count, canRename, Quiescent,
// MemInFlight — is a threshold test against completion timestamps that were
// fixed when the corresponding operation issued. Between now and the
// earliest pending completion nothing can change on its own, so declaring
// wake = min(inflight releases, emsimdBusyUntil, MSHR releases) re-runs the
// real tick at exactly every event boundary. The lhq, stq and pool trackers
// are populated with the same completion cycles as inflight, so inflight
// alone covers them.
//
// Memory retries are skippable when they repeat identically: a retry that
// rejects on its first missing line because the MSHRs are full performs only
// cycle-invariant work (hits on the leading resident lines, a reject count)
// until an outstanding miss retires — see mem.Cache.ProbeRetry — and
// SkipTicks bulk-replays exactly those effects via ReplayRetries. When
// several cores storm the same port at once their bandwidth-meter updates
// interleave in Tick's priority-rotation order, so the bulk replay switches
// to a cycle-major loop that visits the storming cores in exactly that
// rotation (see SkipTicks); within one cycle each core's retry is still the
// same cycle-invariant line walk.

// minGateSleep is the shortest fault-gate window worth eliding: below it the
// quiescence probe plus accounting replay cost more than the handful of
// cheap gated ticks they replace, while the heavily-throttled gates (a
// Private victim on one survivor, FTS past half its units dead) stretch a
// run 10-20x with blocked cycles and win big. A dead gate's window
// (sim.NeverWake) always clears the bar.
const minGateSleep = 8

// probeOf extracts a port's optional skip-ahead capability.
func probeOf(p mem.SharedPort) mem.RetryProber {
	probe, _ := p.(mem.RetryProber)
	return probe
}

// sleepFx is the constant per-cycle accounting a quiescent core repeats
// every elided cycle: the observability signals its scan would raise, plus
// the stall counters that increment per cycle.
type sleepFx struct {
	sig         obs.Sig
	drainWait   bool // MSR <VL> at the head, drain window open
	renameStall bool // renamer blocked on physical registers
	mshrRetry   bool // a memory op retries against a rejecting cache
	// The retrying access, for SkipTicks' bulk replay.
	retryAddr  uint64
	retrySize  int
	retryWrite bool
}

// coreSleep mirrors one core's slice of Tick (head advance, renameTick, the
// issue scan) without side effects. It returns ok=false when the real tick
// would change state; otherwise fx describes the cycle's repeated effects
// and wake bounds the window (NeverWake when only inflight completions or
// the EM-SIMD manager can wake this core).
func (cp *Coproc) coreSleep(c int, now uint64) (fx sleepFx, wake uint64, ok bool) {
	wake = uint64(sim.NeverWake)
	st := cp.cores[c]
	if st.head < st.tail && st.at(st.head).issued {
		return fx, 0, false // head would advance
	}
	if st.renamed < st.tail && st.renamed-st.head < window {
		x := st.at(st.renamed)
		switch {
		case x.notBefore > now:
			// Still crossing the CPU→coproc fabric: rename repeats the same
			// arrival stall until the stamped cycle.
			fx.sig |= obs.SigExeBUWait
			if x.notBefore < wake {
				wake = x.notBefore
			}
		case x.Op.IsEMSIMD() || !hasZDst(x.Op) || cp.canRename(c, now):
			return fx, 0, false // renamer would advance
		default:
			fx.sig |= obs.SigRenameStall
			fx.renameStall = true
		}
	}
	// Fault-injected issue gates close the whole issue stage on off cycles:
	// the real tick signals the backlog wait and returns before its scan
	// (see tickCore). Every gated cycle repeats exactly that accounting, so
	// the window is quiescent until the earliest cycle a gate could reopen —
	// a dead-gated victim sleeps forever, which is what converts a DNF sweep
	// point from 25k real ticks into a handful of watchdog-grid jumps.
	if cp.flt != nil && !cp.flt.issueAllowed(c, now) {
		w := cp.flt.gateWake(c, now)
		if w-now < minGateSleep {
			// Periodic gates reopen within a few cycles (gatePeriod is
			// ceil(2w/(w-f))): a window that short costs more in probe and
			// replay machinery than the ticks it elides. Ticking for real is
			// always sound, so thrash-prone windows just decline to sleep.
			return fx, 0, false
		}
		if st.head < st.tail {
			fx.sig |= obs.SigExeBUWait
		}
		if w < wake {
			wake = w
		}
		return fx, wake, true
	}
	memBlocked := false
	storeBlocked := false
	for i := st.head; i < st.renamed; i++ {
		x := st.at(i)
		if x.issued {
			continue
		}
		switch {
		case x.Op.IsEMSIMD():
			if i != st.head {
				return fx, wake, true // fences the scan; nothing younger is examined
			}
			if x.Op == isa.OpMSR && x.Sys == isa.SysOI {
				if cp.emsimdBusyUntil > now {
					fx.sig |= obs.SigMonitor
					return fx, wake, true
				}
				return fx, 0, false // manager free: the write executes
			}
			if x.Op == isa.OpMSR && x.Sys == isa.SysVL && cp.cfg.Elastic {
				if st.inflight.Count(now) > 0 {
					if !st.draining {
						return fx, 0, false // opening the drain window is a state change
					}
					fx.sig |= obs.SigDrain
					fx.drainWait = true
					return fx, wake, true
				}
				return fx, 0, false // drained: the reconfiguration executes
			}
			return fx, 0, false // MRS and other MSRs execute immediately
		case x.Op.IsVectorMem():
			if memBlocked || (x.Op == isa.OpVStore && storeBlocked) {
				continue
			}
			if x.Active == 0 {
				return fx, 0, false // fully predicated off: issues instantly
			}
			if x.Op == isa.OpVLoad {
				if st.lhq.Count(now) >= cp.cfg.LHQ {
					fx.sig |= obs.SigLSUWait
					memBlocked = true
					continue
				}
			} else {
				if st.stq.Count(now) >= cp.cfg.STQ {
					fx.sig |= obs.SigLSUWait
					memBlocked = true
					continue
				}
				if !x.depsReady(st, now) {
					fx.sig |= obs.SigLSUWait
					storeBlocked = true
					continue
				}
			}
			// The op would reach AccessFrom. A cycle-invariant MSHR
			// reject repeats until an outstanding miss retires; anything
			// else changes cache state in a way a bulk replay cannot
			// reproduce and must tick for real.
			if cp.vecProbe != nil {
				write := x.Op == isa.OpVStore
				if r, rejected := cp.vecProbe.ProbeRetry(now, x.Addr, 4*x.Active, write, c); rejected {
					fx.sig |= obs.SigMemBW
					fx.mshrRetry = true
					fx.retryAddr, fx.retrySize, fx.retryWrite = x.Addr, 4*x.Active, write
					if r < wake {
						wake = r
					}
					memBlocked = true
					continue
				}
			}
			return fx, 0, false // access would make progress
		default: // vector compute
			if !x.depsReady(st, now) {
				fx.sig |= obs.SigExeBUWait
				continue
			}
			return fx, 0, false // would issue
		}
	}
	return fx, wake, true
}

// NextWake implements sim.Sleeper. A fully quiescent scan memoizes each
// core's effects so the SkipTicks call the engine issues for the same cycle
// can replay them without re-scanning.
func (cp *Coproc) NextWake(now uint64) (uint64, bool) {
	cp.sleepOK = false
	wake := uint64(sim.NeverWake)
	if cp.emsimdBusyUntil > now && cp.emsimdBusyUntil < wake {
		wake = cp.emsimdBusyUntil
	}
	for c := range cp.cores {
		fx, w, ok := cp.coreSleep(c, now)
		if !ok {
			return 0, false
		}
		cp.sleepFxs[c] = fx
		if w < wake {
			wake = w
		}
		if r := cp.cores[c].inflight.next(now); r < wake {
			wake = r
		}
	}
	cp.sleepStamp, cp.sleepOK = now, true
	return wake, true
}

// SkipTicks implements sim.Sleeper: the accounting n quiescent Ticks at
// cycles [from, from+n) would have performed. Priority rotation and issue
// budgets need no replay — nothing issues in a quiescent cycle, so budgets
// never decrement and the visit order has no observable effect.
func (cp *Coproc) SkipTicks(from, n uint64) {
	if !cp.sleepOK || cp.sleepStamp != from {
		for c := range cp.cores {
			cp.sleepFxs[c], _, _ = cp.coreSleep(c, from)
		}
	}
	storms := 0
	for c := range cp.cores {
		if cp.sleepFxs[c].mshrRetry {
			storms++
		}
	}
	for c, st := range cp.cores {
		fx := cp.sleepFxs[c]
		if fx.sig != 0 {
			cp.probe.Signal(c, fx.sig)
		}
		if fx.drainWait {
			st.drainWait += n
			*cp.drainWaitCell += n
		}
		if fx.renameStall {
			st.renameStalls += n
			*cp.renameStallsCell += n
		}
		if fx.mshrRetry {
			st.mshrRetries += n
			*cp.mshrRetriesCell += n
			if storms == 1 {
				// Sole storming core: one bulk replay covers the window.
				cp.vecProbe.ReplayRetries(from, n, fx.retryAddr, fx.retrySize, fx.retryWrite, c)
			}
		}
		if st.head < st.tail {
			st.lastActive = from + n - 1
		} else if m := st.inflight.max(); m > from {
			// inflight.Count(t) > 0 exactly for t < m: the last
			// qualifying cycle in the window is min(from+n-1, m-1).
			last := from + n - 1
			if m-1 < last {
				last = m - 1
			}
			st.lastActive = last
		}
		// Every elided cycle records zero busy lanes, exactly as the real
		// stalled ticks would: that zero run stays owed on st.acct until
		// flushAcct backfills it (exact for v == 0; see RecordRun).
	}
	if storms > 1 {
		// Concurrent storms interleave their bandwidth-meter updates in
		// Tick's per-cycle priority rotation, so replay cycle-major,
		// visiting the storming cores in exactly that rotation. Each
		// single-cycle ReplayRetries re-walks a few cache lines — far
		// cheaper than the full component tick it replaces.
		nc := len(cp.cores)
		for t := from; t < from+n; t++ {
			start := int(t) % nc
			for i := 0; i < nc; i++ {
				c := (start + i) % nc
				if fx := cp.sleepFxs[c]; fx.mshrRetry {
					cp.vecProbe.ReplayRetries(t, 1, fx.retryAddr, fx.retrySize, fx.retryWrite, c)
				}
			}
		}
	}
	// busyLaneCycles accumulates 0.0/lanes per stalled cycle — an exact
	// float64 no-op, so there is nothing to add here.
	cp.acctUpTo = from + n
	cp.cycles += n
}
