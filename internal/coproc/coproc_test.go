package coproc

import (
	"math"
	"testing"

	"occamy/internal/isa"
	"occamy/internal/mem"
	"occamy/internal/roofline"
	"occamy/internal/sim"
)

// rig bundles a co-processor with its memory for direct-drive tests.
type rig struct {
	cp    *Coproc
	data  *mem.Memory
	cycle uint64
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	stats := sim.NewStats()
	data := mem.NewMemory()
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig(2), stats)
	cfg := DefaultConfig(2)
	if mutate != nil {
		mutate(&cfg)
	}
	cp := New(cfg, h.VecCache, data, roofline.Default(), stats)
	return &rig{cp: cp, data: data}
}

func (r *rig) tick(n int) {
	for i := 0; i < n; i++ {
		r.cp.Tick(r.cycle)
		r.cycle++
	}
}

// setVL drives the EM-SIMD protocol to give core c a vector length.
func (r *rig) setVL(t *testing.T, c, vl int) {
	t.Helper()
	if r.cp.Transmit(XInst{Op: isa.OpMSR, Core: c, Sys: isa.SysVL, Val: uint32(vl)}) != TransmitOK {
		t.Fatal("transmit MSR VL failed")
	}
	r.tick(4)
	if got := r.cp.VL(c); got != vl {
		t.Fatalf("VL(%d) = %d, want %d", c, got, vl)
	}
}

func (r *rig) vinst(c int, op isa.Opcode, dst, s1, s2 isa.Reg, active int) XInst {
	return XInst{Op: op, Core: c, Dst: dst, Src1: s1, Src2: s2, Active: active, Width: r.cp.VL(c)}
}

func TestFunctionalVectorALU(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2) // 8 elements

	x := XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 3, Active: 8, Width: 2}
	r.cp.Transmit(x)
	x = XInst{Op: isa.OpVDupI, Core: 0, Dst: 2, FImm: 4, Active: 8, Width: 2}
	r.cp.Transmit(x)
	r.cp.Transmit(r.vinst(0, isa.OpVFAdd, 3, 1, 2, 8))
	r.cp.Transmit(r.vinst(0, isa.OpVFMul, 4, 3, 1, 8))
	r.tick(10)
	for i := 0; i < 8; i++ {
		if got := r.cp.Z(0, 3, i); got != 7 {
			t.Fatalf("VFADD lane %d = %v, want 7", i, got)
		}
		if got := r.cp.Z(0, 4, i); got != 21 {
			t.Fatalf("VFMUL lane %d = %v, want 21", i, got)
		}
	}
}

func TestFunctionalLoadStoreRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	for i := 0; i < 8; i++ {
		r.data.WriteF32(uint64(4096+4*i), float32(i)+0.5)
	}
	r.cp.Transmit(XInst{Op: isa.OpVLoad, Core: 0, Dst: 5, Addr: 4096, Active: 8, Width: 2})
	r.cp.Transmit(XInst{Op: isa.OpVStore, Core: 0, Dst: 5, Addr: 8192, Active: 8, Width: 2})
	r.tick(400)
	for i := 0; i < 8; i++ {
		if got := r.data.ReadF32(uint64(8192 + 4*i)); got != float32(i)+0.5 {
			t.Fatalf("stored lane %d = %v", i, got)
		}
	}
	if !r.cp.Quiescent(0, r.cycle) {
		t.Fatal("core 0 should be quiescent")
	}
}

func TestPartialPredicateLimitsLanes(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 9, Active: 8, Width: 2})
	// Tail iteration: only 3 active elements overwrite.
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 5, Active: 3, Width: 2})
	r.tick(6)
	want := []float32{5, 5, 5, 9, 9, 9, 9, 9}
	for i, w := range want {
		if got := r.cp.Z(0, 1, i); got != w {
			t.Fatalf("lane %d = %v, want %v", i, got, w)
		}
	}
}

func TestVFAddVFoldsActiveLanesOnly(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 2, Active: 8, Width: 2})
	r.cp.Transmit(r.vinst(0, isa.OpVFAddV, 1, 1, isa.RegNone, 8))
	r.tick(10)
	if got := r.cp.Z(0, 1, 0); got != 16 {
		t.Fatalf("fold = %v, want 16", got)
	}
	for i := 1; i < 8; i++ {
		if r.cp.Z(0, 1, i) != 0 {
			t.Fatalf("lane %d not zeroed after fold", i)
		}
	}
}

func TestVMovX0RespondsWithLane0(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 1)
	var gotReg isa.Reg
	var gotVal uint64
	r.cp.SetResponder(func(core int, reg isa.Reg, val uint64, ready uint64) {
		gotReg, gotVal = reg, val
	})
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 7, FImm: 1.5, Active: 4, Width: 1})
	r.cp.Transmit(XInst{Op: isa.OpVMovX0, Core: 0, Src1: 7, XDst: 28, Active: 4, Width: 1})
	r.tick(10)
	if gotReg != 28 {
		t.Fatalf("response register = %d, want 28", gotReg)
	}
	if math.Float32frombits(uint32(gotVal)) != 1.5 {
		t.Fatalf("response value = %v, want 1.5", math.Float32frombits(uint32(gotVal)))
	}
}

func TestComputeIssueBudgetIsTwoPerCycle(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	// 8 independent VDUPs: at 2 compute issues per cycle they need 4 cycles.
	for i := 0; i < 8; i++ {
		r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: isa.Reg(i), FImm: 1, Active: 8, Width: 2})
	}
	before := r.cp.ComputeIssued(0)
	r.tick(1)
	if got := r.cp.ComputeIssued(0) - before; got != 2 {
		t.Fatalf("issued %d compute µops in one cycle, want 2", got)
	}
	r.tick(3)
	if got := r.cp.ComputeIssued(0) - before; got != 8 {
		t.Fatalf("issued %d after 4 cycles, want 8", got)
	}
}

func TestDependentChainSerializesOnLatency(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 1)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 1, Active: 4, Width: 1})
	// Chain of 4 dependent adds: each waits ComputeLat (4 cycles).
	for i := 0; i < 4; i++ {
		r.cp.Transmit(r.vinst(0, isa.OpVFAdd, 1, 1, 1, 4))
	}
	r.tick(2)
	issued := r.cp.ComputeIssued(0)
	if issued > 2 {
		t.Fatalf("dependent chain issued %d in 2 cycles", issued)
	}
	r.tick(30)
	if r.cp.ComputeIssued(0) != 5 {
		t.Fatalf("total issued = %d, want 5", r.cp.ComputeIssued(0))
	}
}

func TestOoOIssueBypassesStalledInstruction(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 1)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 1, Active: 4, Width: 1})
	r.tick(1) // issue the producer; it completes at +4
	// Dependent add stalls; an independent VDUP behind it must still issue.
	r.cp.Transmit(r.vinst(0, isa.OpVFAdd, 2, 1, 1, 4))
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 3, FImm: 2, Active: 4, Width: 1})
	r.tick(1)
	if r.cp.Z(0, 3, 0) != 2 {
		t.Fatal("functional value must be applied at transmit")
	}
	snap := r.cp.CoreSnapshot(0)
	if snap.ComputeIssued < 2 { // producer + bypassing VDUP
		t.Fatalf("younger independent instruction did not bypass: issued=%d", snap.ComputeIssued)
	}
}

func TestMSROITriggersRepartition(t *testing.T) {
	r := newRig(t, nil)
	oi := isa.OIPair{Issue: 1, Mem: 1}
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 0, Sys: isa.SysOI, Val: isa.PackOI(oi)})
	r.tick(2)
	if r.cp.Manager().Repartitions != 1 {
		t.Fatalf("repartitions = %d, want 1", r.cp.Manager().Repartitions)
	}
	if r.cp.Tbl().Decision(0) != 8 {
		t.Fatalf("lone compute workload decision = %d, want all 8", r.cp.Tbl().Decision(0))
	}
}

func TestMSRVLWaitsForDrain(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	// A slow dependent chain keeps the pipeline busy.
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 1, Active: 8, Width: 2})
	r.cp.Transmit(r.vinst(0, isa.OpVFAdd, 1, 1, 1, 8))
	r.cp.Transmit(r.vinst(0, isa.OpVFAdd, 1, 1, 1, 8))
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 0, Sys: isa.SysVL, Val: 4})
	r.tick(6)
	if r.cp.VL(0) != 2 {
		t.Fatal("VL changed before the pipeline drained")
	}
	r.tick(30)
	if r.cp.VL(0) != 4 {
		t.Fatalf("VL = %d after drain, want 4", r.cp.VL(0))
	}
	if r.cp.DrainWaitCycles(0) == 0 {
		t.Fatal("drain wait not recorded")
	}
}

func TestReconfigurePoisonsRegisters(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 7, Active: 8, Width: 2})
	r.tick(6)
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 0, Sys: isa.SysVL, Val: 3})
	r.tick(6)
	if v := float64(r.cp.Z(0, 1, 0)); !math.IsNaN(v) {
		t.Fatalf("register value survived reconfiguration: %v (freed RegBlks must not be preserved)", v)
	}
}

func TestReconfigureRejectedWhenLanesUnavailable(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 6)
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 1, Sys: isa.SysVL, Val: 4})
	r.tick(4)
	if r.cp.VL(1) != 0 {
		t.Fatal("infeasible request must not change VL")
	}
	if r.cp.Tbl().Status(1) {
		t.Fatal("<status> must read 0 after a rejected reconfiguration")
	}
	// After core 0 shrinks, the retry succeeds.
	r.setVL(t, 0, 2)
	r.setVL(t, 1, 4)
}

func TestEMSIMDFencesYoungerSVE(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	// Keep the pipeline busy so the MSR VL at the head waits for drain;
	// the VDUP behind it must NOT issue early (it belongs to the new VL
	// regime).
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 1, Active: 8, Width: 2})
	r.cp.Transmit(r.vinst(0, isa.OpVFAdd, 1, 1, 1, 8))
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 0, Sys: isa.SysVL, Val: 4})
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 2, FImm: 2, Active: 16, Width: 4})
	issuedBefore := r.cp.ComputeIssued(0)
	r.tick(1)
	// Only the two older SVE instructions may have issued.
	if r.cp.ComputeIssued(0)-issuedBefore > 2 {
		t.Fatal("younger SVE issued past a pending EM-SIMD instruction")
	}
	r.tick(30)
	if r.cp.VL(0) != 4 {
		t.Fatal("reconfiguration lost")
	}
	if r.cp.ComputeIssued(0) != 3 {
		t.Fatalf("compute issued = %d, want 3", r.cp.ComputeIssued(0))
	}
}

func TestSharedVRFRenameStalls(t *testing.T) {
	// With the shared full-width pool (FTS) and two cores issuing
	// long-latency loads, renaming must report stalls; with per-core
	// namespaces it must not.
	run := func(shared bool) uint64 {
		r := newRig(t, func(c *Config) {
			if shared {
				c.Elastic = false
				c.SharedIssue = true
				c.SharedVRF = true
			} else {
				c.Elastic = false
				c.FixedVLs = []int{4, 4}
			}
		})
		// Each core runs a long dependent chain: renamed-but-unissued
		// instructions hold destination registers, filling the window.
		// Per-core namespaces absorb one window each; the shared
		// full-width pool cannot hold two.
		for c := 0; c < 2; c++ {
			width := 4
			if shared {
				width = 8
			}
			r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: c, Dst: 1, FImm: 1, Active: 4 * width, Width: width})
		}
		for i := 0; i < 150; i++ {
			for c := 0; c < 2; c++ {
				width := 4
				if shared {
					width = 8
				}
				r.cp.Transmit(XInst{
					Op: isa.OpVFAdd, Core: c, Dst: 1, Src1: 1, Src2: 1,
					Active: 4 * width, Width: width,
				})
			}
			r.tick(1)
		}
		r.tick(50)
		s0 := r.cp.CoreSnapshot(0)
		s1 := r.cp.CoreSnapshot(1)
		return s0.RenameStalls + s1.RenameStalls
	}
	if got := run(true); got == 0 {
		t.Fatal("shared VRF under pressure must rename-stall (Figure 13)")
	}
	if got := run(false); got != 0 {
		t.Fatalf("per-core namespaces must not rename-stall, got %d", got)
	}
}

func TestFTSFullWidthVL(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Elastic = false
		c.SharedIssue = true
		c.SharedVRF = true
	})
	if r.cp.VL(0) != 8 || r.cp.VL(1) != 8 {
		t.Fatalf("FTS effective VLs = %d/%d, want 8/8", r.cp.VL(0), r.cp.VL(1))
	}
}

func TestSharedIssueBudgetSplitsAcrossCores(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Elastic = false
		c.SharedIssue = true
		c.SharedVRF = true
	})
	for i := 0; i < 8; i++ {
		for c := 0; c < 2; c++ {
			r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: c, Dst: isa.Reg(i), FImm: 1, Active: 32, Width: 8})
		}
	}
	r.tick(1)
	total := r.cp.ComputeIssued(0) + r.cp.ComputeIssued(1)
	if total != 2 {
		t.Fatalf("shared budget issued %d µops in one cycle, want 2 total", total)
	}
	r.tick(10)
	if r.cp.ComputeIssued(0) == 0 || r.cp.ComputeIssued(1) == 0 {
		t.Fatal("round-robin must serve both cores")
	}
}

func TestTransmitBackpressure(t *testing.T) {
	r := newRig(t, nil)
	// VL stays 0: nothing can issue, so the pool fills.
	n := 0
	for {
		st := r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 1, Active: 0, Width: 0})
		if st != TransmitOK {
			break
		}
		n++
		if n > 10000 {
			t.Fatal("pool never filled")
		}
	}
	if n == 0 {
		t.Fatal("first transmit rejected")
	}
	if r.cp.QueueLen(0) != n {
		t.Fatalf("QueueLen = %d, want %d", r.cp.QueueLen(0), n)
	}
}

func TestUtilizationBounds(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 8)
	for i := 0; i < 64; i++ {
		r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: isa.Reg(i % 8), FImm: 1, Active: 32, Width: 8})
	}
	r.tick(32)
	u := r.cp.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of range", u)
	}
}

func TestZeroWidthMemOpCompletesInstantly(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 1)
	r.cp.Transmit(XInst{Op: isa.OpVLoad, Core: 0, Dst: 1, Addr: 4096, Active: 0, Width: 1})
	r.tick(2)
	if !r.cp.Quiescent(0, r.cycle) {
		t.Fatal("zero-width load must complete immediately")
	}
}

func TestStoresIssueInOrderAmongThemselves(t *testing.T) {
	// A store whose data is not ready must block younger stores (stores
	// keep program order in the LSU), while younger loads may bypass.
	r := newRig(t, nil)
	r.setVL(t, 0, 1)
	// Producer with 12-cycle latency (div) feeds store 1.
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 8, Active: 4, Width: 1})
	r.cp.Transmit(r.vinst(0, isa.OpVFDiv, 2, 1, 1, 4))
	r.cp.Transmit(XInst{Op: isa.OpVStore, Core: 0, Dst: 2, Addr: 4096, Active: 4, Width: 1})
	r.cp.Transmit(XInst{Op: isa.OpVStore, Core: 0, Dst: 1, Addr: 8192, Active: 4, Width: 1})
	r.cp.Transmit(XInst{Op: isa.OpVLoad, Core: 0, Dst: 3, Addr: 12288, Active: 4, Width: 1})
	r.tick(3)
	snap := r.cp.CoreSnapshot(0)
	// After 3 cycles: the div (done ~+12) holds store 1; store 2 must not
	// have issued, but the load may have.
	if snap.MemIssued == 0 {
		t.Fatal("the load should have bypassed the blocked stores")
	}
	if snap.MemIssued > 1 {
		t.Fatalf("younger store issued past a blocked older store (mem issued = %d)", snap.MemIssued)
	}
	r.tick(40)
	if r.cp.CoreSnapshot(0).MemIssued != 3 {
		t.Fatalf("not all memory ops completed: %d", r.cp.CoreSnapshot(0).MemIssued)
	}
}

func TestIntegerVectorLatencyCheaper(t *testing.T) {
	// Integer lane ops complete in IntLat (2) instead of ComputeLat (4):
	// a dependent integer chain of 8 finishes in ~16+e cycles, an FP one
	// in ~32+e.
	run := func(op isa.Opcode) uint64 {
		r := newRig(t, nil)
		r.setVL(t, 0, 1)
		r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 1, Active: 4, Width: 1})
		for i := 0; i < 8; i++ {
			r.cp.Transmit(r.vinst(0, op, 1, 1, 1, 4))
		}
		for i := uint64(0); i < 100; i++ {
			if r.cp.Quiescent(0, r.cycle) && r.cp.ComputeIssued(0) == 9 {
				return i
			}
			r.tick(1)
		}
		return 100
	}
	fp := run(isa.OpVFAdd)
	in := run(isa.OpVIAdd)
	if in >= fp {
		t.Fatalf("integer chain (%d cycles) must beat FP chain (%d)", in, fp)
	}
}

func TestWindowBoundsOutOfOrderDistance(t *testing.T) {
	// An instruction more than `window` entries behind the head must not
	// issue even if ready: a blocked head chain plus a far-away
	// independent op.
	r := newRig(t, nil)
	r.setVL(t, 0, 1)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 1, FImm: 1, Active: 4, Width: 1})
	r.tick(1)
	// Long dependent chain fills well past the window.
	n := window + 20
	for i := 0; i < n; i++ {
		r.cp.Transmit(r.vinst(0, isa.OpVFAdd, 1, 1, 1, 4))
	}
	// Independent instruction at the tail, outside the window.
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 2, FImm: 2, Active: 4, Width: 1})
	r.tick(1)
	// Within one cycle only the chain head (and possibly one more after
	// its completion) can have issued; the tail VDUP must still be
	// outside the window.
	if issued := r.cp.ComputeIssued(0); issued > uint64(window) {
		t.Fatalf("issued %d µops with a serial chain — window not enforced", issued)
	}
	// Eventually everything completes.
	r.tick(5 * (n + 10))
	if got := r.cp.ComputeIssued(0); got != uint64(n+2) {
		t.Fatalf("total issued = %d, want %d", got, n+2)
	}
}

func TestVecStateSaveRestore(t *testing.T) {
	r := newRig(t, nil)
	r.setVL(t, 0, 2)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 5, FImm: 42, Active: 8, Width: 2})
	r.tick(6)
	saved := r.cp.SaveVecState(0)
	r.cp.Transmit(XInst{Op: isa.OpVDupI, Core: 0, Dst: 5, FImm: -1, Active: 8, Width: 2})
	r.tick(6)
	if r.cp.Z(0, 5, 0) != -1 {
		t.Fatal("overwrite lost")
	}
	r.cp.RestoreVecState(0, saved)
	if r.cp.Z(0, 5, 0) != 42 || r.cp.Z(0, 5, 7) != 42 {
		t.Fatal("restore incomplete")
	}
}

func TestLaneEventLogShapes(t *testing.T) {
	r := newRig(t, nil)
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 0, Sys: isa.SysOI, Val: isa.PackOI(isa.OIPair{Issue: 1, Mem: 1})})
	r.tick(2)
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 0, Sys: isa.SysVL, Val: 3})
	r.tick(2)
	r.cp.Transmit(XInst{Op: isa.OpMSR, Core: 1, Sys: isa.SysVL, Val: 7}) // infeasible: 3+7 > 8
	r.tick(2)
	kinds := map[string]int{}
	for _, e := range r.cp.LaneEvents() {
		kinds[e.Kind]++
	}
	if kinds["repartition"] != 1 || kinds["reconfigure"] != 1 || kinds["reject"] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
}
