package coproc

import "math"

// holdTracker counts resources held by in-flight operations: each entry is a
// release cycle; Count reports how many are still held at a given cycle.
// Used for physical-register occupancy, load/store queue occupancy and the
// pipeline-drain check.
type holdTracker struct {
	releases []uint64
	// nextRel lower-bounds every entry: drain is a no-op while now is below
	// it, which turns the per-cycle Count calls on busy trackers into a
	// compare instead of an O(entries) scan. Zero (the conservative value)
	// just forces the next drain to scan; restore resets it to zero.
	nextRel uint64
	// maxRel is the latest release ever added (entries expire out of
	// releases, this does not decay): lazy lastActive accounting needs the
	// last cycle the tracker held anything, even after drain dropped it.
	maxRel uint64
}

func (t *holdTracker) drain(now uint64) {
	if now < t.nextRel {
		return // every entry releases after now: nothing to expire
	}
	live := t.releases[:0]
	next := uint64(math.MaxUint64)
	for _, r := range t.releases {
		if r > now {
			live = append(live, r)
			if r < next {
				next = r
			}
		}
	}
	t.releases = live
	t.nextRel = next
}

// Count returns the number of entries still held at cycle now.
func (t *holdTracker) Count(now uint64) int {
	t.drain(now)
	return len(t.releases)
}

// Add records a resource held until cycle release.
func (t *holdTracker) Add(release uint64) {
	t.releases = append(t.releases, release)
	if release < t.nextRel {
		t.nextRel = release
	}
	if release > t.maxRel {
		t.maxRel = release
	}
}

// restore replaces the entries from a checkpoint and invalidates the drain
// bound (the restored entries may release earlier than the current ones).
// maxRel is recomputed from the surviving entries: history that expired
// before the checkpoint can only matter to windows the checkpoint already
// flushed, so the maximum over live entries is behaviourally identical.
func (t *holdTracker) restore(rs []uint64) {
	t.releases = append(t.releases[:0], rs...)
	t.nextRel = 0
	t.maxRel = 0
	for _, r := range rs {
		if r > t.maxRel {
			t.maxRel = r
		}
	}
}

// next returns the earliest release strictly after now, or sim.NeverWake
// when nothing is pending — the tracker's contribution to the skip-ahead
// engine's wake computation: Count(t) is constant for t in [now, next).
func (t *holdTracker) next(now uint64) uint64 {
	min := uint64(math.MaxUint64)
	for _, r := range t.releases {
		if r > now && r < min {
			min = r
		}
	}
	return min
}

// max returns the latest recorded release (0 when empty): the last cycle t
// for which Count(t-1) > 0.
func (t *holdTracker) max() uint64 {
	var m uint64
	for _, r := range t.releases {
		if r > m {
			m = r
		}
	}
	return m
}

// regPool tracks physical-register occupancy for one rename namespace:
// destinations are allocated at rename (transmit) and released at writeback,
// so both queued and issued-but-incomplete instructions hold registers —
// the pressure that collapses FTS in Figure 13.
type regPool struct {
	queued int         // renamed, not yet issued
	issued holdTracker // issued, released at completion
}

func (p *regPool) held(now uint64) int { return p.queued + p.issued.Count(now) }

// issueBudget carries the per-cycle slot counts. With SharedIssue the same
// struct is consumed by every core; otherwise each core gets a fresh one.
type issueBudget struct {
	compute int
	mem     int
	emsimd  *int // EM-SIMD path slots are always global (one shared path)
}
