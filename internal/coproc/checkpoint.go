package coproc

import (
	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/sim"
)

// This file implements the co-processor side of the system checkpoint: a
// deep, cycle-accurate copy of everything Tick/Transmit mutate, so a restored
// run resumes bit-identically mid-flight — mid-backlog, mid-drain, even
// mid-fault. Configuration and wiring (ports, probe, responder, roofline
// model) are not captured: a checkpoint restores onto the instance it was
// taken from (or an identically built one).

// ckCore is the checkpoint of one core's coreState.
type ckCore struct {
	queue   []XInst // full ring copy (slot order)
	head    int
	tail    int
	renamed int

	z          []float32 // flat [reg*lanes] copy
	seqCounter uint64
	lastWriter [isa.NumZRegs]uint64
	done       []doneEntry

	inflight   []uint64
	lhq        []uint64
	stq        []uint64
	poolQueued int
	poolIssued []uint64

	computeIssued  uint64
	memIssued      uint64
	computeByPhase []uint64
	renameStalls   uint64
	mshrRetries    uint64
	drainWait      uint64
	draining       bool
	drainStart     uint64
	lastReject     int
	lastActive     uint64
	busyLaneAccum  float64
	timeline       sim.TimelineState
}

// ckFault is the checkpoint of the injected-fault effects (nil when none
// were ever injected).
type ckFault struct {
	issueGate    []uint64
	sharedGate   uint64
	regsCut      []int
	regsCutTotal int
	link         []linkFault
	drops        uint64
	forceVL      []int
}

// CheckpointState is a complete co-processor checkpoint.
type CheckpointState struct {
	cores           []ckCore
	tbl             lanemgr.TblState
	repartitions    uint64
	emsimdBusyUntil uint64
	busyLaneCycles  float64
	cycles          uint64
	events          []LaneEvent
	flt             *ckFault
	progress        uint64
	acctUpTo        uint64
}

// Checkpoint captures the co-processor's full simulation state at any cycle.
func (cp *Coproc) Checkpoint() CheckpointState {
	st := CheckpointState{
		tbl:             cp.tbl.Snapshot(),
		repartitions:    cp.mgr.Repartitions,
		emsimdBusyUntil: cp.emsimdBusyUntil,
		busyLaneCycles:  cp.busyLaneCycles,
		cycles:          cp.cycles,
		events:          append([]LaneEvent(nil), cp.events...),
		progress:        cp.progress,
		acctUpTo:        cp.acctUpTo,
	}
	for _, c := range cp.cores {
		c.flushAcct(cp.acctUpTo) // settle owed accounting before snapshotting
		ck := ckCore{
			queue:          append([]XInst(nil), c.queue[:]...),
			head:           c.head,
			tail:           c.tail,
			renamed:        c.renamed,
			seqCounter:     c.seqCounter,
			lastWriter:     c.lastWriter,
			done:           append([]doneEntry(nil), c.done.entries...),
			inflight:       append([]uint64(nil), c.inflight.releases...),
			lhq:            append([]uint64(nil), c.lhq.releases...),
			stq:            append([]uint64(nil), c.stq.releases...),
			poolQueued:     c.pool.queued,
			poolIssued:     append([]uint64(nil), c.pool.issued.releases...),
			computeIssued:  c.computeIssued,
			memIssued:      c.memIssued,
			computeByPhase: append([]uint64(nil), c.computeByPhase...),
			renameStalls:   c.renameStalls,
			mshrRetries:    c.mshrRetries,
			drainWait:      c.drainWait,
			draining:       c.draining,
			drainStart:     c.drainStart,
			lastReject:     c.lastReject,
			lastActive:     c.lastActive,
			busyLaneAccum:  c.busyLaneAccum,
			timeline:       c.busyTimeline.Snapshot(),
		}
		lanes := cp.cfg.Lanes()
		ck.z = make([]float32, isa.NumZRegs*lanes)
		for r := range c.z {
			copy(ck.z[r*lanes:(r+1)*lanes], c.z[r])
		}
		st.cores = append(st.cores, ck)
	}
	if cp.flt != nil {
		st.flt = &ckFault{
			issueGate:    append([]uint64(nil), cp.flt.issueGate...),
			sharedGate:   cp.flt.sharedGate,
			regsCut:      append([]int(nil), cp.flt.regsCut...),
			regsCutTotal: cp.flt.regsCutTotal,
			link:         append([]linkFault(nil), cp.flt.link...),
			drops:        cp.flt.drops,
			forceVL:      append([]int(nil), cp.flt.forceVL...),
		}
	}
	return st
}

// RestoreCheckpoint rewinds the co-processor to a Checkpoint taken on an
// identically configured instance. The sleep-scan memo is invalidated: a
// restored cycle must re-probe quiescence from scratch.
func (cp *Coproc) RestoreCheckpoint(st CheckpointState) {
	cp.tbl.Restore(st.tbl)
	cp.mgr.Repartitions = st.repartitions
	cp.emsimdBusyUntil = st.emsimdBusyUntil
	cp.busyLaneCycles = st.busyLaneCycles
	cp.cycles = st.cycles
	cp.events = append(cp.events[:0], st.events...)
	cp.progress = st.progress
	cp.acctUpTo = st.acctUpTo
	lanes := cp.cfg.Lanes()
	for i, c := range cp.cores {
		ck := &st.cores[i]
		copy(c.queue[:], ck.queue)
		c.head = ck.head
		c.tail = ck.tail
		c.renamed = ck.renamed
		c.seqCounter = ck.seqCounter
		c.lastWriter = ck.lastWriter
		copy(c.done.entries, ck.done)
		c.inflight.restore(ck.inflight)
		c.lhq.restore(ck.lhq)
		c.stq.restore(ck.stq)
		c.pool.queued = ck.poolQueued
		c.pool.issued.restore(ck.poolIssued)
		c.computeIssued = ck.computeIssued
		c.memIssued = ck.memIssued
		c.computeByPhase = append(c.computeByPhase[:0], ck.computeByPhase...)
		c.renameStalls = ck.renameStalls
		c.mshrRetries = ck.mshrRetries
		c.drainWait = ck.drainWait
		c.draining = ck.draining
		c.drainStart = ck.drainStart
		c.lastReject = ck.lastReject
		c.lastActive = ck.lastActive
		c.busyLaneAccum = ck.busyLaneAccum
		c.acct = st.acctUpTo // the checkpoint was taken fully flushed
		c.busyTimeline.Restore(ck.timeline)
		for r := range c.z {
			copy(c.z[r], ck.z[r*lanes:(r+1)*lanes])
		}
	}
	if st.flt != nil {
		f := cp.ensureFault()
		copy(f.issueGate, st.flt.issueGate)
		f.sharedGate = st.flt.sharedGate
		copy(f.regsCut, st.flt.regsCut)
		f.regsCutTotal = st.flt.regsCutTotal
		copy(f.link, st.flt.link)
		f.drops = st.flt.drops
		copy(f.forceVL, st.flt.forceVL)
	} else if cp.flt != nil {
		// The checkpoint predates fault injection: neutralize every effect
		// (keeping the allocated faultState — its zero state is inert).
		for c := range cp.flt.issueGate {
			cp.flt.issueGate[c] = 0
			cp.flt.regsCut[c] = 0
			cp.flt.link[c] = linkFault{}
			cp.flt.forceVL[c] = -1
		}
		cp.flt.sharedGate = 0
		cp.flt.regsCutTotal = 0
		cp.flt.drops = 0
	}
	for c := range cp.renameStallNow {
		cp.renameStallNow[c] = false
		cp.acctNow[c] = false
	}
	cp.sleepOK = false
	cp.sleepStamp = 0
}
