package coproc

import "testing"

func TestConfigValidateAcceptsDefault(t *testing.T) {
	if err := DefaultConfig(2).Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
	fts := DefaultConfig(2)
	fts.Elastic = false
	fts.SharedIssue = true
	fts.SharedVRF = true
	fts.PhysRegs = 160 * 2
	if err := fts.Validate(); err != nil {
		t.Fatalf("FTS-shaped config should validate: %v", err)
	}
}

func TestConfigValidateRejectsBadShapes(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero cores":          func(c *Config) { c.Cores = 0 },
		"zero exebus":         func(c *Config) { c.ExeBUs = 0 },
		"zero compute issue":  func(c *Config) { c.ComputeIssue = 0 },
		"negative mem issue":  func(c *Config) { c.MemIssue = -1 },
		"zero arch regs":      func(c *Config) { c.ArchRegs = 0 },
		"phys <= arch":        func(c *Config) { c.PhysRegs = 32 },
		"zero lhq":            func(c *Config) { c.LHQ = 0 },
		"zero stq":            func(c *Config) { c.STQ = 0 },
		"fixed vls wrong len": func(c *Config) { c.Elastic = false; c.FixedVLs = []int{4} },
		"fixed vls negative":  func(c *Config) { c.Elastic = false; c.FixedVLs = []int{-1, 4} },
		"fixed vls oversub":   func(c *Config) { c.Elastic = false; c.FixedVLs = []int{8, 8} },
		"shared vrf too few": func(c *Config) {
			c.SharedVRF = true
			c.PhysRegs = 64 // <= 32*2 arch mappings
		},
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig(2)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}
