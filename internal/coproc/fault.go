package coproc

import "math"

// deadGate marks an issue gate that never opens: the gated core (or the
// shared issue stage) is out of service.
const deadGate = math.MaxUint64

// faultState holds every fault-injected degradation the co-processor models.
// It is nil on healthy runs — each hot-path hook is a single pointer check —
// so fault-free timing stays bit-identical to a build without faults.
type faultState struct {
	// issueGate[c] > 1 lets core c issue only on cycles where
	// now % gate == 0, modeling a victim core serializing its work through
	// the surviving units of a partition it cannot reconfigure (Private).
	// deadGate blocks the core entirely (its whole partition failed).
	issueGate []uint64
	// sharedGate does the same to every core at once: the FTS policy,
	// where failed units stall the shared issue/renaming structures that
	// all cores time-share.
	sharedGate uint64
	// regsCut[c] physical registers are out of service in core c's RegBlk
	// file; regsCutTotal is the sum, charged against the shared pool under
	// SharedVRF.
	regsCut      []int
	regsCutTotal int
	// link models the flaky CPU→coproc dispatch path per core.
	link []linkFault
	// drops counts refused transmissions, for diagnostics.
	drops uint64
	// forceVL[c] is a pending fault-revocation target for core c's vector
	// length (-1 none). It takes effect at the core's next strip boundary —
	// the OpRdElems that samples the width for the coming strip — never
	// mid-strip, where a width change would strand elements between the old
	// and new widths (the §4.2.2 hazard). In-flight work drains at the old
	// width, as in a protocol reconfiguration.
	forceVL []int
}

// linkFault is one core's dispatch-link fault window: transmissions are
// dropped and the retry (the scalar core re-transmits every cycle, as for a
// full pool) is accepted only after a bounded exponential backoff.
type linkFault struct {
	active     bool
	base       uint64
	backoff    uint64
	nextAccept uint64
}

// linkBackoffCap bounds the exponential backoff at 16x the base delay.
const linkBackoffCap = 16

func (cp *Coproc) ensureFault() *faultState {
	if cp.flt == nil {
		cp.flt = &faultState{
			issueGate: make([]uint64, cp.cfg.Cores),
			regsCut:   make([]int, cp.cfg.Cores),
			link:      make([]linkFault, cp.cfg.Cores),
			forceVL:   make([]int, cp.cfg.Cores),
		}
		for c := range cp.flt.forceVL {
			cp.flt.forceVL[c] = -1
		}
	}
	return cp.flt
}

// SetForcedVL schedules a shrink-only vector-length revocation for core c,
// applied at the core's next strip boundary (see faultState.forceVL). A
// target at or above the current VL cancels any pending revocation instead —
// the fault controller never force-grows a fixed-mode binary.
func (cp *Coproc) SetForcedVL(c, want int) {
	f := cp.ensureFault()
	if want < 0 || want >= cp.tbl.VL(c) {
		f.forceVL[c] = -1
		return
	}
	f.forceVL[c] = want
}

// ForcedVLPending reports whether core c has a revocation waiting for its
// strip boundary.
func (cp *Coproc) ForcedVLPending(c int) bool {
	return cp.flt != nil && cp.flt.forceVL[c] >= 0
}

// StripBoundary is called by the scalar core when it samples the vector
// length for a new strip (OpRdElems): the only point a fault revocation — or,
// on a clustered machine, a tenant migration — may land. It reports whether
// the core may start the strip; a plain (single-cluster) co-processor never
// withholds the boundary, while Complex returns false during the drained
// window of an in-flight migration.
func (cp *Coproc) StripBoundary(c int) bool {
	if cp.flt == nil {
		return true
	}
	if want := cp.flt.forceVL[c]; want >= 0 {
		cp.tbl.ForceVL(c, want)
		cp.flt.forceVL[c] = -1
	}
	return true
}

// SetIssueGate throttles core c to one issue window every gate cycles
// (gate <= 1 removes the throttle, deadGate — see GateDead — blocks the core
// for good).
func (cp *Coproc) SetIssueGate(c int, gate uint64) { cp.ensureFault().issueGate[c] = gate }

// GateDead is the issue-gate value that never opens.
const GateDead = deadGate

// SetSharedGate throttles every core's issue to one window every gate
// cycles (the FTS shared-structure stall). gate <= 1 removes it.
func (cp *Coproc) SetSharedGate(gate uint64) { cp.ensureFault().sharedGate = gate }

// CutRegs takes n physical registers of core c's RegBlk file out of service
// (a failed register bank). Under SharedVRF the cut charges the shared pool.
func (cp *Coproc) CutRegs(c, n int) {
	f := cp.ensureFault()
	f.regsCut[c] += n
	f.regsCutTotal += n
}

// RestoreRegs returns n registers of core c's file to service.
func (cp *Coproc) RestoreRegs(c, n int) {
	f := cp.ensureFault()
	if n > f.regsCut[c] {
		n = f.regsCut[c]
	}
	f.regsCut[c] -= n
	f.regsCutTotal -= n
}

// SetLinkFault opens a dispatch-link fault window on core c: transmissions
// are refused until a backoff expires, the backoff doubling per accepted
// message from base up to 16x base.
func (cp *Coproc) SetLinkFault(c int, base uint64, now uint64) {
	if base == 0 {
		base = 8
	}
	cp.ensureFault().link[c] = linkFault{
		active:     true,
		base:       base,
		backoff:    2 * base,
		nextAccept: now + base,
	}
}

// ClearLinkFault closes core c's dispatch-link fault window.
func (cp *Coproc) ClearLinkFault(c int) {
	if cp.flt != nil {
		cp.flt.link[c] = linkFault{}
	}
}

// LinkDrops reports how many transmissions the faulted links refused.
func (cp *Coproc) LinkDrops() uint64 {
	if cp.flt == nil {
		return 0
	}
	return cp.flt.drops
}

// issueAllowed implements the issue gates; called only when faults are
// active.
func (f *faultState) issueAllowed(c int, now uint64) bool {
	if f.sharedGate == deadGate {
		return false
	}
	if f.sharedGate > 1 && now%f.sharedGate != 0 {
		return false
	}
	g := f.issueGate[c]
	if g == deadGate {
		return false
	}
	if g > 1 && now%g != 0 {
		return false
	}
	return true
}

// gateWake bounds a gated core's quiescent window: the next cycle at which
// a closed issue gate could reopen (the next multiple of the tightest active
// periodic gate), or deadGate — which equals sim.NeverWake — when a dead gate
// blocks the core for good. Interior cycles are off-cycles for the bounding
// gate, so each repeats the gated tick's accounting exactly; at the wake the
// engine re-probes, and a still-closed companion gate just opens the next
// window.
func (f *faultState) gateWake(c int, now uint64) uint64 {
	g := f.issueGate[c]
	if f.sharedGate == deadGate || g == deadGate {
		return deadGate
	}
	wake := uint64(deadGate)
	if f.sharedGate > 1 {
		wake = now + f.sharedGate - now%f.sharedGate
	}
	if g > 1 {
		if w := now + g - now%g; w < wake {
			wake = w
		}
	}
	return wake
}

// linkAccept decides whether core c's transmission at cycle now makes it
// across a faulted link; called only when faults are active.
func (f *faultState) linkAccept(c int, now uint64) bool {
	lf := &f.link[c]
	if !lf.active {
		return true
	}
	if now < lf.nextAccept {
		f.drops++
		return false
	}
	lf.nextAccept = now + lf.backoff
	lf.backoff *= 2
	if cap := linkBackoffCap * lf.base; lf.backoff > cap {
		lf.backoff = cap
	}
	return true
}

// Progress implements sim.ProgressReporter: a counter that moves on every
// issued operation, so the forward-progress watchdog can tell a draining
// backlog from a wedged dispatcher.
func (cp *Coproc) Progress() uint64 { return cp.progress }

// PipeSnapshot is a point-in-time view of one core's co-processor pipeline,
// for the watchdog's diagnostic dump.
type PipeSnapshot struct {
	// QueueLen is the instruction-pool occupancy; Renamed of those hold
	// physical destination registers.
	QueueLen int
	Renamed  int
	// HeadOp names the oldest unissued instruction ("" when empty).
	HeadOp string
	// Inflight, LHQ and STQ are issued-but-incomplete op counts.
	Inflight int
	LHQ      int
	STQ      int
	// PoolHeld is the number of physical registers held.
	PoolHeld int
	// Draining marks an open §4.2.2 drain window.
	Draining   bool
	DrainWait  uint64
	LastActive uint64
	VL         int
	Decision   int
}

// PipelineSnapshot captures core c's pipeline state at cycle now.
func (cp *Coproc) PipelineSnapshot(c int, now uint64) PipeSnapshot {
	st := cp.cores[c]
	st.flushAcct(cp.acctUpTo)
	ps := PipeSnapshot{
		QueueLen:   st.tail - st.head,
		Renamed:    st.renamed - st.head,
		Inflight:   st.inflight.Count(now),
		LHQ:        st.lhq.Count(now),
		STQ:        st.stq.Count(now),
		PoolHeld:   st.pool.held(now),
		Draining:   st.draining,
		DrainWait:  st.drainWait,
		LastActive: st.lastActive,
		VL:         cp.VL(c),
		Decision:   cp.tbl.Decision(c),
	}
	for i := st.head; i < st.tail; i++ {
		if x := st.at(i); !x.issued {
			ps.HeadOp = x.Op.String()
			break
		}
	}
	return ps
}
