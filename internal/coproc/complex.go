package coproc

import (
	"fmt"
	"sort"

	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/sim"
)

// TransmitFabricBusy: the CPU→coproc fabric refused the transmission this
// cycle (the destination cluster's per-cycle acceptance bandwidth is
// exhausted); the core retries next cycle, like a full pool.
const TransmitFabricBusy TransmitStatus = 3

// Complex is the routed front of a clustered machine: K co-processor
// instances, each owning an even ExeBU shard, behind one CPU-facing port.
// It is pure glue — routing, fabric delay/bandwidth, and tenant migration —
// while every cycle of real work still happens inside the per-cluster Coproc
// instances, which tick as independent engine components.
//
// The two-level lane hierarchy lives here: each cluster's lanemgr.Manager is
// the unchanged per-cluster partitioning pass, and lanemgr.Hier (wired
// through every Manager's AfterRepartition hook) is the global pass that
// proposes moving a tenant to a less-loaded cluster. The Complex owns the
// data-path half of a migration: it holds the proposing core at its next
// strip boundary, waits for its old cluster to drain, moves the architectural
// vector state, and re-admits the core on the destination shard with a
// non-zero initial width (so an elastic binary's strip loop never observes
// VL=0 — the livelock guard).
type Complex struct {
	topo  Topology
	cores int
	cls   []*Coproc
	hier  *lanemgr.Hier
	group []int // core -> fabric position

	// Fabric bandwidth accounting: per-cluster transmissions accepted in the
	// cycle bwCycle (lazily reset when the cycle advances).
	bwCycle   uint64
	bwUsed    []int
	bwRefused uint64

	// pendMig[c] is the destination cluster of core c's in-flight migration
	// (-1 none). Set when Hier.Balance's proposal is accepted; cleared when
	// the migration completes or is abandoned at a strip boundary.
	pendMig []int

	zbuf [][]float32 // migration scratch for the vector-state move
}

// NewComplex builds the routed complex over per-cluster instances. Every
// cluster must be built with the machine-wide core count (global core IDs
// index every shard) and the same per-cluster ExeBU share. The complex wires
// the two-level hierarchy: per-cluster Managers keep their unchanged local
// pass, and the global balancing pass runs after every local repartition.
// Migration is enabled only for the elastic (Occamy) policy — fixed-width
// binaries cannot adopt a new cluster's partition.
func NewComplex(topo Topology, cls []*Coproc) *Complex {
	if len(cls) == 0 || len(cls) != topo.Clusters {
		panic(fmt.Sprintf("coproc: %d clusters built for topology of %d", len(cls), topo.Clusters))
	}
	cores := cls[0].cfg.Cores
	per := cls[0].cfg.ExeBUs
	for k, cp := range cls {
		if cp.cfg.Cores != cores || cp.cfg.ExeBUs != per {
			panic(fmt.Sprintf("coproc: cluster %d shape %d cores/%d ExeBUs differs from cluster 0 (%d/%d)",
				k, cp.cfg.Cores, cp.cfg.ExeBUs, cores, per))
		}
	}
	if err := topo.Validate(cores, per*topo.Clusters); err != nil {
		panic(err)
	}
	mgrs := make([]*lanemgr.Manager, len(cls))
	for k := range cls {
		mgrs[k] = cls[k].mgr
	}
	cx := &Complex{
		topo:    topo,
		cores:   cores,
		cls:     cls,
		group:   make([]int, cores),
		bwUsed:  make([]int, len(cls)),
		pendMig: make([]int, cores),
	}
	gw := topo.groupWidth(cores)
	for c := range cx.group {
		cx.group[c] = c / gw
	}
	for c := range cx.pendMig {
		cx.pendMig[c] = -1
	}
	cx.hier = lanemgr.NewHier(
		lanemgr.Topology{Clusters: topo.Clusters, Cores: cores, ExeBUs: per * topo.Clusters}, mgrs)
	for _, m := range mgrs {
		m.AfterRepartition = cx.hier.Balance
	}
	if cls[0].cfg.Elastic {
		cx.hier.OnMigrate = cx.onMigrate
	}
	// Pre-size the migration scratch so completing a migration mid-run
	// allocates nothing.
	lanes := cls[0].cfg.Lanes()
	cx.zbuf = make([][]float32, isa.NumZRegs)
	backing := make([]float32, isa.NumZRegs*lanes)
	for r := range cx.zbuf {
		cx.zbuf[r], backing = backing[:lanes], backing[lanes:]
	}
	return cx
}

// onMigrate is Hier.Balance's proposal hook: accept unless the core already
// has a migration in flight. The assignment does not change here — the move
// completes at the core's next strip boundary, once its old cluster drains.
func (cx *Complex) onMigrate(core, from, to int) bool {
	if cx.pendMig[core] >= 0 {
		return false
	}
	cx.pendMig[core] = to
	return true
}

// Home returns core c's current cluster.
func (cx *Complex) Home(c int) int { return cx.hier.Home(c) }

// Cluster returns the k-th co-processor instance.
func (cx *Complex) Cluster(k int) *Coproc { return cx.cls[k] }

// NumClusters returns the cluster count.
func (cx *Complex) NumClusters() int { return len(cx.cls) }

// Hier exposes the global balancing pass (tests and reports).
func (cx *Complex) Hier() *lanemgr.Hier { return cx.hier }

// Migrations returns how many tenant migrations have completed.
func (cx *Complex) Migrations() uint64 { return cx.hier.Migrations }

// FabricRefusals returns how many transmissions the bandwidth-limited fabric
// refused.
func (cx *Complex) FabricRefusals() uint64 { return cx.bwRefused }

// delay is the fabric traversal time from core c to cluster k.
func (cx *Complex) delay(c, k int) uint64 {
	if cx.topo.HopLatency == 0 {
		return 0
	}
	d := cx.group[c] - k
	if d < 0 {
		d = -d
	}
	return cx.topo.HopLatency * uint64(1+d)
}

// Transmit routes an instruction to its core's home cluster, charging the
// fabric: the instruction is stamped with its arrival cycle (the cluster's
// renamer will not look at it earlier) and counted against the cluster's
// per-cycle acceptance bandwidth.
func (cx *Complex) Transmit(x XInst) TransmitStatus {
	k := cx.hier.Home(x.Core)
	dst := cx.cls[k]
	if dst.PoolFull(x.Core) {
		return TransmitQueueFull
	}
	now := dst.cycles
	if cx.topo.HopBandwidth > 0 {
		if cx.bwCycle != now {
			cx.bwCycle = now
			for i := range cx.bwUsed {
				cx.bwUsed[i] = 0
			}
		}
		if cx.bwUsed[k] >= cx.topo.HopBandwidth {
			cx.bwRefused++
			return TransmitFabricBusy
		}
	}
	x.notBefore = now + cx.delay(x.Core, k)
	st := dst.Transmit(x)
	if st == TransmitOK && cx.topo.HopBandwidth > 0 {
		cx.bwUsed[k]++
	}
	return st
}

// PoolFull mirrors Transmit's pool refusal for the scalar core's skip-ahead
// scan. Fabric saturation is deliberately not mirrored: the scan then reports
// the cycle live and the refusal replays for real, which is conservative and
// exact.
func (cx *Complex) PoolFull(c int) bool { return cx.cls[cx.hier.Home(c)].PoolFull(c) }

// VL returns core c's configured vector length on its home cluster.
func (cx *Complex) VL(c int) int { return cx.cls[cx.hier.Home(c)].VL(c) }

// ReadSysNow reads a system register combinationally from the home shard.
func (cx *Complex) ReadSysNow(c int, sys isa.SysReg) uint32 {
	return cx.cls[cx.hier.Home(c)].ReadSysNow(c, sys)
}

// MemInFlight counts core c's outstanding vector memory operations across
// every cluster (during a migration's drain window the backlog still lives on
// the old cluster).
func (cx *Complex) MemInFlight(c int, now uint64) int {
	n := 0
	for _, cp := range cx.cls {
		n += cp.MemInFlight(c, now)
	}
	return n
}

// StripBoundary lands pending per-cluster revocations and completes (or
// abandons) core c's pending migration. It returns false while the migration
// is waiting for the old cluster to drain — the core holds the strip
// boundary, transmitting nothing, so the drain is guaranteed to finish.
func (cx *Complex) StripBoundary(c int) bool {
	k := cx.hier.Home(c)
	to := cx.pendMig[c]
	if to < 0 {
		return cx.cls[k].StripBoundary(c)
	}
	old := cx.cls[k]
	if !old.Quiescent(c, old.cycles) {
		return false
	}
	cx.pendMig[c] = -1
	dst := cx.cls[to]
	vl := old.tbl.VL(c)
	if vl < 1 || dst.tbl.AL() < vl {
		// The tenant moves at its current width, never through a resize: a
		// VL change behind the core's back would break the §6.4 contract
		// (only the compiler's monitor sequence saves the reduction partial
		// and re-establishes invariants around a width change). If the
		// destination cannot grant that width right now, abandon the move;
		// the balance pass may propose it again once lanes free up.
		return old.StripBoundary(c)
	}
	// Drained: move the architectural vector state, release the old shard,
	// re-admit on the new one at the same width. The core's own monitor then
	// adapts <VL> to the destination's plan through the normal MSR protocol.
	cx.zbuf = old.CopyVecState(c, cx.zbuf)
	dst.RestoreVecState(c, cx.zbuf)
	oi := old.tbl.OI(c)
	old.tbl.ForceVL(c, 0)
	old.tbl.SetOI(c, isa.OIPair{})
	old.mgr.Repartition()
	cx.hier.CompleteMigration(c, to)
	dst.mgr.OnOIWrite(c, oi)
	dst.tbl.TryReconfigure(c, vl)
	return dst.StripBoundary(c)
}

// --- Aggregation views -----------------------------------------------------
//
// Everything below presents the clustered machine as one co-processor to
// reports, figures, traces and telemetry. Per-core quantities sum across
// clusters (a core's rows are inert on every cluster but its home, so the
// sums are exact even across migrations); machine-wide rates average.

// Quiescent reports whether core c has no queued or in-flight work anywhere.
func (cx *Complex) Quiescent(c int, now uint64) bool {
	for _, cp := range cx.cls {
		if !cp.Quiescent(c, now) {
			return false
		}
	}
	return true
}

// LastActive returns the latest cycle core c had work on any cluster.
func (cx *Complex) LastActive(c int) uint64 {
	var m uint64
	for _, cp := range cx.cls {
		if la := cp.LastActive(c); la > m {
			m = la
		}
	}
	return m
}

// QueueLen reports core c's total instruction-pool occupancy.
func (cx *Complex) QueueLen(c int) int {
	n := 0
	for _, cp := range cx.cls {
		n += cp.QueueLen(c)
	}
	return n
}

// Cycles returns how many cycles the machine has simulated.
func (cx *Complex) Cycles() uint64 { return cx.cls[0].Cycles() }

// Utilization returns the machine-wide SIMD_util: clusters own equal lane
// shards, so the mean of the per-cluster utilizations is exact.
func (cx *Complex) Utilization() float64 {
	s := 0.0
	for _, cp := range cx.cls {
		s += cp.Utilization()
	}
	return s / float64(len(cx.cls))
}

// CoreSnapshot sums core c's counters across clusters.
func (cx *Complex) CoreSnapshot(c int) Snapshot {
	var out Snapshot
	for _, cp := range cx.cls {
		s := cp.CoreSnapshot(c)
		out.ComputeIssued += s.ComputeIssued
		out.MemIssued += s.MemIssued
		out.RenameStalls += s.RenameStalls
		out.MSHRRetries += s.MSHRRetries
		out.DrainWait += s.DrainWait
		for len(out.ComputeByPhase) < len(s.ComputeByPhase) {
			out.ComputeByPhase = append(out.ComputeByPhase, 0)
		}
		for i, v := range s.ComputeByPhase {
			out.ComputeByPhase[i] += v
		}
	}
	return out
}

// ComputeIssued sums core c's issued SIMD compute instructions.
func (cx *Complex) ComputeIssued(c int) uint64 {
	var n uint64
	for _, cp := range cx.cls {
		n += cp.ComputeIssued(c)
	}
	return n
}

// MemIssued sums core c's issued vector memory instructions.
func (cx *Complex) MemIssued(c int) uint64 {
	var n uint64
	for _, cp := range cx.cls {
		n += cp.MemIssued(c)
	}
	return n
}

// RenameStalls sums core c's rename-stall cycles.
func (cx *Complex) RenameStalls(c int) uint64 {
	var n uint64
	for _, cp := range cx.cls {
		n += cp.RenameStalls(c)
	}
	return n
}

// BusyLaneCycles sums core c's cumulative busy-lane count.
func (cx *Complex) BusyLaneCycles(c int) float64 {
	s := 0.0
	for _, cp := range cx.cls {
		s += cp.BusyLaneCycles(c)
	}
	return s
}

// DrainWaitCycles sums core c's reconfiguration drain waits.
func (cx *Complex) DrainWaitCycles(c int) uint64 {
	var n uint64
	for _, cp := range cx.cls {
		n += cp.DrainWaitCycles(c)
	}
	return n
}

// LinkDrops sums refused transmissions across every cluster's faulted links.
func (cx *Complex) LinkDrops() uint64 {
	var n uint64
	for _, cp := range cx.cls {
		n += cp.LinkDrops()
	}
	return n
}

// LanesPerGranule returns the machine's lane multiplier (uniform across
// clusters).
func (cx *Complex) LanesPerGranule() int { return LanesPerGranule }

// Repartitions sums plan computations across every cluster's manager.
func (cx *Complex) Repartitions() uint64 {
	var n uint64
	for _, cp := range cx.cls {
		n += cp.mgr.Repartitions
	}
	return n
}

// BusyTimeline merges core c's busy-lane timeline across clusters into one
// machine-wide view (report time only; allocates). Every cluster records
// every cycle, so bucket sums add and the sample counts agree.
func (cx *Complex) BusyTimeline(c int) *sim.Timeline {
	ts := make([]*sim.Timeline, len(cx.cls))
	for k, cp := range cx.cls {
		ts[k] = cp.BusyTimeline(c)
	}
	return sim.SumTimelines(ts)
}

// LaneEvents merges every cluster's lane-management log in cycle order.
func (cx *Complex) LaneEvents() []LaneEvent {
	var out []LaneEvent
	for _, cp := range cx.cls {
		out = append(out, cp.LaneEvents()...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Cycle < out[b].Cycle })
	return out
}

// AL sums the shards' allocatable-lane counters — the machine-wide headroom
// gauge (signed: a shard in transient over-allocation subtracts).
func (cx *Complex) AL() int {
	n := 0
	for _, cp := range cx.cls {
		n += cp.tbl.AL()
	}
	return n
}

// Usable sums the shards' surviving ExeBUs.
func (cx *Complex) Usable() int {
	n := 0
	for _, cp := range cx.cls {
		n += cp.tbl.Usable()
	}
	return n
}

// Failed sums the shards' failed ExeBUs.
func (cx *Complex) Failed() int {
	n := 0
	for _, cp := range cx.cls {
		n += cp.tbl.Failed()
	}
	return n
}

// Total sums the shards' ExeBU counts (the machine-wide array size).
func (cx *Complex) Total() int {
	n := 0
	for _, cp := range cx.cls {
		n += cp.tbl.Total()
	}
	return n
}

// Decision returns core c's planner decision on its home shard.
func (cx *Complex) Decision(c int) int {
	return cx.cls[cx.hier.Home(c)].tbl.Decision(c)
}

// Z returns the functional value of lane i of register r on core c's home
// cluster (tests).
func (cx *Complex) Z(c int, r isa.Reg, i int) float32 {
	return cx.cls[cx.hier.Home(c)].Z(c, r, i)
}

// --- Checkpoint ------------------------------------------------------------

// ComplexState checkpoints the routing layer: the core→cluster assignment,
// in-flight migration proposals and the fabric's bandwidth window. The
// per-cluster instances checkpoint themselves through Coproc.Checkpoint.
type ComplexState struct {
	hier      lanemgr.HierState
	pendMig   []int
	bwCycle   uint64
	bwUsed    []int
	bwRefused uint64
}

// Checkpoint captures the routing layer's state.
func (cx *Complex) Checkpoint() ComplexState {
	return ComplexState{
		hier:      cx.hier.Snapshot(),
		pendMig:   append([]int(nil), cx.pendMig...),
		bwCycle:   cx.bwCycle,
		bwUsed:    append([]int(nil), cx.bwUsed...),
		bwRefused: cx.bwRefused,
	}
}

// RestoreCheckpoint rewinds the routing layer.
func (cx *Complex) RestoreCheckpoint(st ComplexState) {
	cx.hier.Restore(st.hier)
	copy(cx.pendMig, st.pendMig)
	cx.bwCycle = st.bwCycle
	copy(cx.bwUsed, st.bwUsed)
	cx.bwRefused = st.bwRefused
}
