package coproc

import (
	"fmt"
	"math"

	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/mem"
	"occamy/internal/obs"
	"occamy/internal/roofline"
	"occamy/internal/sim"
)

// XInst is an instruction transmitted from a scalar core to the
// co-processor, with every scalar operand already resolved (§4.1.1:
// instructions are transmitted once non-speculative, in program order).
// The co-processor's renamer fills the seq/dep fields at transmit.
type XInst struct {
	Op   isa.Opcode
	Core int
	// Dst is the destination Z register (or the data source for stores).
	Dst  isa.Reg
	Src1 isa.Reg
	Src2 isa.Reg
	// XDst is the scalar destination register for MRS/VMOVX0 responses.
	XDst isa.Reg
	// Sys is the system register for EM-SIMD instructions.
	Sys isa.SysReg
	// Val is the resolved MSR write value (or VINSX0/VDUPX payload bits).
	Val uint32
	// Addr is the resolved byte address for vector loads/stores.
	Addr uint64
	// Active is the element count resolved at transmit time (tail
	// predicate and the vector length configured when the instruction
	// was transmitted — §4.2.2: pre-change SVE instructions execute
	// under the old vector length).
	Active int
	// Width is the data-path width in granules the instruction occupies.
	Width int
	// FImm is the broadcast literal for VDUPI.
	FImm float32
	// Phase attributes the instruction for per-phase statistics.
	Phase int

	// Renamer-assigned fields.
	seq              uint64
	dep1, dep2, dep3 uint64
	issued           bool
	// kind caches the opcode's issue class at transmit time: the issue
	// scan runs over the window every cycle, and the opcode-table lookups
	// behind Op.IsEMSIMD/IsVectorMem are hot enough to show up.
	kind issueKind
	// notBefore is the cycle the instruction arrives at its cluster after
	// crossing the CPU→coproc fabric (Complex.Transmit stamps it); zero (or
	// any past cycle) means the instruction is already resident. The renamer
	// will not look at an instruction still in flight.
	notBefore uint64
	// enq is the cycle the instruction was transmitted; issue-time
	// completion minus enq is the issue→retire latency histogrammed for
	// telemetry.
	enq uint64
	// respVal is the precomputed scalar response for VMOVX0 (the value
	// is architecturally determined at transmit; timing at issue).
	respVal uint64
}

// issueKind is the cached issue-stage classification of an XInst.
type issueKind uint8

const (
	kindCompute issueKind = iota
	kindMem               // vector load
	kindStore             // vector store
	kindEMSIMD
)

// ScalarResponder receives scalar results flowing back from the co-processor
// (MRS reads and VMOVX0 lane transfers): Figure 5's "2 Scalar Results/Cycle"
// path. ready is the cycle at which the value may be consumed.
type ScalarResponder func(core int, reg isa.Reg, val uint64, ready uint64)

const (
	// queueCap is the pre-rename instruction-pool depth per core
	// (Figure 5's Instruction Pool; entries hold no physical registers).
	queueCap = 192
	// window caps the renamed, in-flight region per core (ROB size);
	// physical-register availability bounds it further.
	window = 120
	// queueRing is the ring capacity backing the pool: the smallest power
	// of two >= queueCap, so position indices map to slots with one mask.
	queueRing = 256
	queueMask = queueRing - 1
)

type coreState struct {
	// queue is a fixed ring of queueRing slots. head, renamed and tail are
	// monotonically increasing stream positions (never reset); at() maps a
	// position to its slot. Occupancy (tail-head) is bounded by queueCap <
	// queueRing, so a live entry is never overwritten and — unlike the old
	// grow-and-compact slice — steady-state operation neither allocates nor
	// re-copies the backlog. A fixed-size array (not a slice) so the masked
	// index in at() is provably in bounds — the issue scan hits it hard.
	queue [queueRing]XInst
	head  int
	tail  int
	// renamed is the position one past the last renamed instruction: the
	// region [head, renamed) holds physical destination registers and is
	// eligible for out-of-order issue.
	renamed int

	// z is the functional architectural vector state: 32 registers of
	// Lanes() float32 elements, updated in program order at transmit.
	z [][]float32

	// Renamer state: sequence numbers and the last writer of each
	// architectural vector register.
	seqCounter uint64
	lastWriter [isa.NumZRegs]uint64
	// done is a ring of completion cycles indexed by sequence number.
	done doneRing

	inflight holdTracker // issued, not yet written back (drain check)
	lhq      holdTracker // outstanding loads
	stq      holdTracker // outstanding stores
	pool     regPool     // per-core physical-register namespace

	computeIssued  uint64
	memIssued      uint64
	computeByPhase []uint64
	renameStalls   uint64
	mshrRetries    uint64

	// drainWait counts cycles an MSR <VL> sat at the queue head waiting
	// for the pipeline to drain (Figure 15's reconfiguration overhead).
	drainWait uint64

	// draining/drainStart track the currently open §4.2.2 drain window,
	// for the drain-length histogram and the Perfetto drain slice.
	draining   bool
	drainStart uint64

	// lastReject is the <VL> of the most recently logged rejected MSR,
	// or -1 once a grant (or a new plan) ends the streak. The monitor
	// retries a rejected reconfiguration every few cycles until lanes
	// free up; the event log keeps the first rejection of each streak
	// and drops the identical retries (the reject *counter* still
	// counts every attempt).
	lastReject int

	// lastActive is the latest cycle with queued or in-flight work, i.e.
	// the core's true completion time (the scalar core halts before the
	// co-processor finishes its backlog).
	lastActive uint64

	busyTimeline sim.Timeline // average busy lanes per 1000 cycles (by value: the
	// per-cycle Record touches the same cache lines as the queue cursors)

	// busyLaneAccum is the cumulative busy-lane count for this core alone
	// (the per-core counterpart of Coproc.busyLaneCycles); the telemetry
	// sampler diffs it at window boundaries into per-core occupancy. The
	// sleep mirror needs no update: quiescent windows have zero busy lanes.
	busyLaneAccum float64

	// acct is the first cycle whose per-cycle accounting (the timeline's
	// zero sample and the lastActive check) has not been materialized yet.
	// Tick only visits cores whose pool was non-empty (everything else is
	// bit-identical to recording a zero), so a core idling for a million
	// cycles costs nothing per cycle; flushAcct backfills the owed window
	// before anything reads or snapshots the derived state.
	acct uint64
}

// flushAcct materializes the accounting for st's unaccounted cycles
// [st.acct, upTo): each recorded zero busy lanes (exact — RecordRun with
// v == 0 is bit-identical to per-cycle zero Records), and lastActive
// advances to the last cycle in the window that still had in-flight work.
// maxRel bounds that exactly: entries are only added at issue (a visited
// instant < st.acct), so within the window the in-flight population only
// expires, and the last cycle with work is min(upTo-1, maxRel-1).
func (st *coreState) flushAcct(upTo uint64) {
	if st.acct >= upTo {
		return
	}
	st.busyTimeline.RecordRun(st.acct, upTo-st.acct, 0)
	if r := st.inflight.maxRel; r > st.acct {
		last := upTo - 1
		if r-1 < last {
			last = r - 1
		}
		if last > st.lastActive {
			st.lastActive = last
		}
	}
	st.acct = upTo
}

// at returns the pool slot of stream position i (valid for head <= i < tail).
func (st *coreState) at(i int) *XInst { return &st.queue[i&queueMask] }

// LaneEvent records one lane-management action, for the allocated-lanes
// timelines of Figures 2 and 14(b) and for trace export.
type LaneEvent struct {
	Cycle uint64
	Core  int
	// Kind is "repartition" (an <OI> write produced a new plan),
	// "reconfigure" (a successful <VL> write) or "reject".
	Kind string
	// VL is the configured length in granules after the event (for
	// reconfigure) or the requested length (for reject).
	VL int
	// Decisions snapshots every core's <decision> after the event.
	Decisions []int
}

// Coproc is the co-processor instance shared by all scalar cores.
type Coproc struct {
	cfg  Config
	name string
	tbl  *lanemgr.ResourceTbl
	mgr  *lanemgr.Manager
	vec  mem.SharedPort
	// vecProbe is vec's optional skip-ahead capability (nil when the port
	// cannot predict rejects; the sleep mirror then treats every pending
	// access as live).
	vecProbe mem.RetryProber
	data     *mem.Memory
	stats    *sim.Stats
	cores    []*coreState

	// Hot-path counter cells, resolved once at construction (Stats.Counter
	// pointers are stable across Restore) so per-cycle bumps skip the
	// string-keyed map lookup.
	renameStallsCell *uint64
	mshrRetriesCell  *uint64
	drainWaitCell    *uint64

	// Sleep-scan memo: NextWake(now) caches each core's per-cycle effects
	// so a SkipTicks(from==now, n) that immediately follows (the only way
	// the engine calls it) reuses them instead of re-running the scan.
	sleepFxs   []sleepFx
	sleepStamp uint64
	sleepOK    bool

	respond ScalarResponder

	emsimdBusyUntil uint64 // LaneMgr plan-computation occupancy

	// renameStallNow marks, per core, whether this cycle's issue was
	// blocked on physical registers (Figure 13's metric).
	renameStallNow []bool

	// busyLaneCycles accumulates the whole-array busy fraction for the
	// SIMD-utilization metric of §2.
	busyLaneCycles float64
	cycles         uint64

	// rotStart/rotLast cache the priority-rotation origin (now % Cores) so
	// consecutive ticks increment it instead of dividing. Invariant:
	// rotStart == rotLast % Cores, which stays true across restores, so no
	// checkpointing is needed.
	rotStart int
	rotLast  uint64

	cycleBusyLanes []float64 // per-core busy lanes this cycle
	// acctNow marks the cores Tick visited this cycle (non-empty pool): the
	// accounting loop only settles those, so a mostly idle many-core machine
	// pays one sequential byte test per idle core instead of four scattered
	// cache-line touches. acctUpTo is one past the last cycle Tick/SkipTicks
	// covered — the bound flushAcct backfills to on reads and snapshots.
	acctNow  []bool
	acctUpTo uint64

	// events is the lane-management log (bounded; see laneEventCap).
	// decArena backs the events' Decisions slices in chunks, so logging
	// does not allocate per event.
	events   []LaneEvent
	decArena []int

	// probe is the observability hook (nil when the run is not observed;
	// every obs method is nil-receiver-safe).
	probe *obs.Probe
	// retireHists caches the per-core issue→retire latency histograms
	// (nil entries when unobserved; Observe is nil-receiver-safe). Resolved
	// once in SetProbe so the issue hot path never touches the registry map.
	retireHists []*obs.Histogram

	// laneSink, when set, receives every logged LaneEvent — the telemetry
	// event log's tap. Invoked only on lane-management actions, never on
	// the per-cycle path.
	laneSink func(LaneEvent)

	// flt holds injected fault effects; nil on healthy runs, so the
	// fault hooks cost one pointer check on the hot path (see fault.go).
	flt *faultState

	// progress counts issued operations for the forward-progress watchdog.
	// A plain field, not a Stats counter: the registry must stay
	// bit-identical between watched and unwatched runs.
	progress uint64
}

// SetProbe attaches the observability probe (nil disables) and resolves the
// per-core retire-latency histograms once, so issue-time observations stay
// allocation-free.
func (cp *Coproc) SetProbe(p *obs.Probe) {
	cp.probe = p
	if cp.retireHists == nil {
		cp.retireHists = make([]*obs.Histogram, cp.cfg.Cores)
	}
	for c := range cp.retireHists {
		cp.retireHists[c] = p.Hist(obs.RetireHistName(c)) // nil when p is nil
	}
}

// SetLaneEventSink taps the lane-management event log: sink receives every
// LaneEvent logEvent records (after its Decisions snapshot is filled). Nil
// disables the tap.
func (cp *Coproc) SetLaneEventSink(sink func(LaneEvent)) { cp.laneSink = sink }

// laneEventCap bounds the event log (repartitions are rare; this is a
// safety net for pathological runs).
const laneEventCap = 1 << 16

func (cp *Coproc) logEvent(e LaneEvent) {
	if s := cp.probe.Sink(); s != nil {
		s.EmitInstant(e.Core, obs.TidEMSIMD, "lane."+e.Kind, e.Cycle,
			map[string]any{"vl": e.VL})
	}
	if len(cp.events) >= laneEventCap {
		return
	}
	n := cp.cfg.Cores
	if len(cp.decArena) < n {
		cp.decArena = make([]int, 256*n)
	}
	e.Decisions, cp.decArena = cp.decArena[:n:n], cp.decArena[n:]
	for c := range e.Decisions {
		e.Decisions[c] = cp.tbl.Decision(c)
	}
	cp.events = append(cp.events, e)
	if cp.laneSink != nil {
		cp.laneSink(e)
	}
}

// LaneEvents returns the lane-management log in cycle order.
func (cp *Coproc) LaneEvents() []LaneEvent { return cp.events }

// New builds a co-processor over the given vector-cache port and functional
// memory. Stats must not be nil.
func New(cfg Config, vecPort mem.SharedPort, data *mem.Memory, model roofline.Model, stats *sim.Stats) *Coproc {
	if cfg.Cores <= 0 || cfg.ExeBUs <= 0 {
		panic(fmt.Sprintf("coproc: bad config %+v", cfg))
	}
	tbl := lanemgr.NewResourceTbl(lanemgr.Topology{Clusters: 1, Cores: cfg.Cores, ExeBUs: cfg.ExeBUs})
	cp := &Coproc{
		cfg:            cfg,
		name:           "coproc",
		tbl:            tbl,
		mgr:            lanemgr.NewManager(model, tbl),
		vec:            vecPort,
		vecProbe:       probeOf(vecPort),
		data:           data,
		stats:          stats,
		renameStallNow: make([]bool, cfg.Cores),
		cycleBusyLanes: make([]float64, cfg.Cores),
		acctNow:        make([]bool, cfg.Cores),
		sleepFxs:       make([]sleepFx, cfg.Cores),
	}
	cp.renameStallsCell = stats.Counter("coproc.rename.stalls")
	cp.mshrRetriesCell = stats.Counter("coproc.lsu.mshr_retries")
	cp.drainWaitCell = stats.Counter("coproc.drain_wait_cycles")
	lanes := cfg.Lanes()
	for c := 0; c < cfg.Cores; c++ {
		st := &coreState{busyTimeline: *sim.NewTimeline(1000), lastReject: -1}
		st.done.init()
		// Pre-size the hold trackers to their architectural bounds so
		// steady-state Add never grows a backing array: LHQ/STQ are hard
		// caps, register holds cannot exceed the physical pool, and
		// writeback holds are bounded by the queues plus a generous pipe's
		// worth of compute issues. On small machines the trackers plateau
		// within the warm-up anyway; at 64 cores the plateau arrives late
		// enough to leak growth into measured steady-state windows.
		st.lhq.releases = make([]uint64, 0, cfg.LHQ)
		st.stq.releases = make([]uint64, 0, cfg.STQ)
		st.inflight.releases = make([]uint64, 0, cfg.LHQ+cfg.STQ+256)
		st.pool.issued.releases = make([]uint64, 0, cfg.PhysRegs)
		// Slot 0 is the pre-phase prologue; a slot per compiler phase
		// follows. Pre-sizing keeps addPhaseCompute off the allocator
		// when a late phase is first entered mid-run.
		phaseCap := cfg.MaxPhases + 1
		if phaseCap < 8 {
			phaseCap = 8
		}
		st.computeByPhase = make([]uint64, 0, phaseCap)
		st.z = make([][]float32, isa.NumZRegs)
		backing := make([]float32, isa.NumZRegs*lanes)
		for r := range st.z {
			st.z[r], backing = backing[:lanes], backing[lanes:]
		}
		cp.cores = append(cp.cores, st)
	}
	if !cfg.Elastic && !cfg.SharedIssue {
		// Spatial policies pin each core's partition at reset; temporal
		// sharing (SharedIssue) leaves the table empty because every
		// core runs full width.
		if len(cfg.FixedVLs) != cfg.Cores {
			panic("coproc: non-elastic spatial config needs FixedVLs per core")
		}
		for c, vl := range cfg.FixedVLs {
			if !tbl.TryReconfigure(c, vl) {
				panic(fmt.Sprintf("coproc: fixed VL %d for core %d infeasible", vl, c))
			}
		}
	}
	return cp
}

// SetResponder wires the scalar-result return path.
func (cp *Coproc) SetResponder(r ScalarResponder) { cp.respond = r }

// Manager exposes the lane manager (for tests and reports).
func (cp *Coproc) Manager() *lanemgr.Manager { return cp.mgr }

// Tbl exposes the resource table.
func (cp *Coproc) Tbl() *lanemgr.ResourceTbl { return cp.tbl }

// VL returns core c's configured vector length in granules. Under temporal
// sharing (FTS) every instruction occupies the full-width data path, so the
// effective length is the whole array.
func (cp *Coproc) VL(c int) int {
	if cp.cfg.SharedIssue {
		return cp.cfg.ExeBUs
	}
	return cp.tbl.VL(c)
}

// ReadSysNow reads a system register combinationally — the speculative MRS
// transmission of §4.1.1 (reads of <decision>, <AL>, <VL>, <OI> do not wait
// for older SVE instructions).
func (cp *Coproc) ReadSysNow(c int, sys isa.SysReg) uint32 { return cp.tbl.ReadRaw(c, sys) }

// MemInFlight reports outstanding vector memory operations for core c — the
// scalar cores' MOB consults it before issuing scalar memory ops (Table 2,
// <SVE, Scalar> ordering).
func (cp *Coproc) MemInFlight(c int, now uint64) int {
	st := cp.cores[c]
	pending := 0
	for i := st.head; i < st.tail; i++ {
		if x := st.at(i); !x.issued && x.Op.IsVectorMem() {
			pending++
		}
	}
	return pending + st.lhq.Count(now) + st.stq.Count(now)
}

// TransmitStatus reports why a Transmit was refused.
type TransmitStatus uint8

// Transmit outcomes.
const (
	TransmitOK TransmitStatus = iota
	TransmitQueueFull
	// TransmitLinkDown: the CPU→coproc link dropped the transmission (fault
	// injection); the core retries next cycle, like a full pool.
	TransmitLinkDown
)

// Transmit enqueues an instruction into core c's pre-rename instruction
// pool, records its RAW dependencies and applies its functional semantics in
// program order. Only a full pool refuses the instruction (physical
// registers are allocated later, at rename).
func (cp *Coproc) Transmit(x XInst) TransmitStatus {
	st := cp.cores[x.Core]
	if st.tail-st.head >= queueCap {
		return TransmitQueueFull
	}
	// cp.cycles equals the current cycle here: cores tick before the
	// co-processor, so at cycle t the co-processor has processed exactly t
	// ticks when a core transmits.
	if cp.flt != nil && !cp.flt.linkAccept(x.Core, cp.cycles) {
		return TransmitLinkDown
	}
	x.enq = cp.cycles
	st.seqCounter++
	x.seq = st.seqCounter
	switch {
	case x.Op.IsEMSIMD():
		x.kind = kindEMSIMD
	case x.Op == isa.OpVStore:
		x.kind = kindStore
	case x.Op.IsVectorMem():
		x.kind = kindMem
	default:
		x.kind = kindCompute
	}
	if x.kind != kindEMSIMD {
		cp.renameAndApply(&x, st)
	}
	*st.at(st.tail) = x
	st.tail++
	return TransmitOK
}

// renameTick advances core c's rename pointer in program order, allocating
// one physical register per destination-writing instruction. It stops at the
// window bound or when no register can be allocated — the renamer blocking
// of Figure 13, dominant on FTS where the full-width pool is shared by all
// cores.
func (cp *Coproc) renameTick(c int, now uint64) {
	st := cp.cores[c]
	for st.renamed < st.tail && st.renamed-st.head < window {
		x := st.at(st.renamed)
		if x.notBefore > now {
			// Still crossing the fabric: rename is in program order, so
			// nothing younger may be considered either. The wait shows up in
			// the ExeBU-wait attribution bucket, like any dispatch delay.
			cp.probe.Signal(c, obs.SigExeBUWait)
			return
		}
		if !x.Op.IsEMSIMD() && hasZDst(x.Op) {
			if !cp.canRename(c, now) {
				cp.renameStallNow[c] = true
				return
			}
			st.pool.queued++
		}
		st.renamed++
	}
}

// canRename checks physical-register availability for core c. With a
// per-core namespace the core renames against its own 160-register RegBlk
// file. With the shared full-width pool (FTS) two limits apply: the global
// free list (total minus all cores' architectural contexts) and a per-core
// rename-buffer quota — one core's long-latency backlog cannot consume the
// entire free list, but the combined demand of co-running cores still
// overwhelms it (Figure 13).
// Fault injection shrinks the usable file: a failed RegBlk bank takes its
// registers out of both the per-core namespace and the shared free list.
func (cp *Coproc) canRename(c int, now uint64) bool {
	if !cp.cfg.SharedVRF {
		phys := cp.cfg.PhysRegs
		if cp.flt != nil {
			phys -= cp.flt.regsCut[c]
		}
		return cp.cfg.ArchRegs+cp.cores[c].pool.held(now) < phys
	}
	committed := cp.cfg.ArchRegs * cp.cfg.activeCores()
	phys := cp.cfg.PhysRegs
	if cp.flt != nil {
		phys -= cp.flt.regsCutTotal
	}
	free := phys - committed
	quota := free / cp.cfg.activeCores()
	if cp.cores[c].pool.held(now) >= quota {
		return false
	}
	total := 0
	for _, st := range cp.cores {
		total += st.pool.held(now)
	}
	return committed+total < phys
}

// renameAndApply assigns RAW dependencies from the renamer's last-writer
// table and executes the instruction's value semantics against the
// architectural vector state (program order = transmit order).
func (cp *Coproc) renameAndApply(x *XInst, st *coreState) {
	dep := func(r isa.Reg) uint64 {
		if r == isa.RegNone || int(r) >= len(st.lastWriter) {
			return 0
		}
		return st.lastWriter[r]
	}
	switch x.Op {
	case isa.OpVLoad, isa.OpVDupI, isa.OpVDupX, isa.OpVInsX0:
		// No vector register sources (addresses and scalar payloads
		// were resolved at the core).
	case isa.OpVStore:
		x.dep1 = dep(x.Dst) // store data
	case isa.OpVFMla:
		x.dep1, x.dep2, x.dep3 = dep(x.Src1), dep(x.Src2), dep(x.Dst)
	case isa.OpVFAddV, isa.OpVMovX0, isa.OpVFNeg, isa.OpVFAbs, isa.OpVFSqrt:
		x.dep1 = dep(x.Src1)
	default:
		x.dep1, x.dep2 = dep(x.Src1), dep(x.Src2)
	}
	if hasZDst(x.Op) {
		st.lastWriter[x.Dst] = x.seq
	}
	cp.applyFunctional(x, st)
}

func hasZDst(op isa.Opcode) bool {
	switch op {
	case isa.OpVStore, isa.OpVMovX0:
		return false
	default:
		return true
	}
}

// applyFunctional performs the value semantics over the active lanes.
func (cp *Coproc) applyFunctional(x *XInst, st *coreState) {
	active := x.Active
	z := st.z
	switch x.Op {
	case isa.OpVLoad:
		for i := 0; i < active; i++ {
			z[x.Dst][i] = cp.data.ReadF32(x.Addr + uint64(4*i))
		}
	case isa.OpVStore:
		for i := 0; i < active; i++ {
			cp.data.WriteF32(x.Addr+uint64(4*i), z[x.Dst][i])
		}
	case isa.OpVDupI:
		for i := 0; i < active; i++ {
			z[x.Dst][i] = x.FImm
		}
	case isa.OpVDupX:
		v := math.Float32frombits(x.Val)
		for i := 0; i < active; i++ {
			z[x.Dst][i] = v
		}
	case isa.OpVInsX0:
		z[x.Dst][0] = math.Float32frombits(x.Val)
		for i := 1; i < active; i++ {
			z[x.Dst][i] = 0
		}
	case isa.OpVMovX0:
		x.respVal = uint64(math.Float32bits(z[x.Src1][0]))
	case isa.OpVFAddV:
		var sum float32
		for i := 0; i < active; i++ {
			sum += z[x.Src1][i]
		}
		z[x.Dst][0] = sum
		for i := 1; i < active; i++ {
			z[x.Dst][i] = 0
		}
	case isa.OpVFNeg, isa.OpVFAbs, isa.OpVFSqrt:
		for i := 0; i < active; i++ {
			z[x.Dst][i] = unFn(x.Op, z[x.Src1][i])
		}
	case isa.OpVFMla:
		for i := 0; i < active; i++ {
			z[x.Dst][i] += z[x.Src1][i] * z[x.Src2][i]
		}
	default:
		for i := 0; i < active; i++ {
			z[x.Dst][i] = binFn(x.Op, z[x.Src1][i], z[x.Src2][i])
		}
	}
}

// PoolFull reports whether core c's instruction pool would refuse a
// Transmit this cycle — the predicate the scalar core's skip-ahead logic
// mirrors (a refused Transmit has no side effects, so a pool-full stall is a
// quiescent state for the core).
func (cp *Coproc) PoolFull(c int) bool {
	st := cp.cores[c]
	return st.tail-st.head >= queueCap
}

// QueueLen reports the occupancy of core c's instruction pool.
func (cp *Coproc) QueueLen(c int) int {
	st := cp.cores[c]
	return st.tail - st.head
}

// Name implements sim.Component.
func (cp *Coproc) Name() string { return cp.name }

// SetName renames the component for engine registration — a clustered
// machine registers each shard as "coproc0", "coproc1", … so engine dumps
// and checkpoints stay unambiguous. Must be called before registration.
func (cp *Coproc) SetName(name string) { cp.name = name }

// Tick implements sim.Component: one cycle of the co-processor.
// cycleBusyLanes enters every Tick all-zero: the accounting loop at the
// bottom re-zeroes each slot after consuming it.
func (cp *Coproc) Tick(now uint64) {
	em := 2 // EM-SIMD data path: 2 insts/cycle (Figure 5)
	// Rotate core priority every cycle so one core cannot monopolize
	// shared structures (MSHRs, cache ports) through tick ordering.
	// rotStart tracks now%n incrementally (rotStart == rotLast%n always,
	// so a stale pair after a checkpoint restore or a skip jump still
	// yields the correct start); the divide only runs on discontinuities.
	n := cp.cfg.Cores
	var start int
	if now == cp.rotLast+1 {
		start = cp.rotStart + 1
		if start >= n {
			start = 0
		}
	} else {
		start = int(now % uint64(n))
	}
	cp.rotStart, cp.rotLast = start, now
	if cp.cfg.SharedIssue {
		budget := issueBudget{compute: cp.cfg.ComputeIssue, mem: cp.cfg.MemIssue, emsimd: &em}
		for i := 0; i < n; i++ {
			c := start + i
			if c >= n {
				c -= n
			}
			if st := cp.cores[c]; st.head == st.tail && st.renamed == st.tail {
				continue // empty pool: tickCore would be a pure no-op
			}
			cp.acctNow[c] = true
			cp.tickCore(c, now, &budget)
		}
	} else {
		for i := 0; i < n; i++ {
			c := start + i
			if c >= n {
				c -= n
			}
			if st := cp.cores[c]; st.head == st.tail && st.renamed == st.tail {
				continue
			}
			cp.acctNow[c] = true
			budget := issueBudget{compute: cp.cfg.ComputeIssue, mem: cp.cfg.MemIssue, emsimd: &em}
			cp.tickCore(c, now, &budget)
		}
	}
	lanes := float64(cp.cfg.Lanes())
	totalBusy := 0.0
	// Sample per-core counter tracks into the trace at a coarse period;
	// every-cycle samples would dwarf the slice events without adding
	// visible resolution at trace zoom levels.
	s := cp.probe.Sink()
	emit := s != nil && now&1023 == 0
	for c, st := range cp.cores {
		if !cp.acctNow[c] && !emit {
			// Not ticked this cycle (empty pool): the only accounting
			// effect is a zero timeline sample and a possible in-flight
			// lastActive bump, both owed lazily via flushAcct.
			continue
		}
		cp.acctNow[c] = false
		v := cp.cycleBusyLanes[c]
		cp.cycleBusyLanes[c] = 0
		st.flushAcct(now)
		if st.head < st.tail || st.inflight.Count(now) > 0 {
			st.lastActive = now
		}
		st.busyTimeline.Record(now, v)
		st.acct = now + 1
		st.busyLaneAccum += v
		totalBusy += v
		if cp.renameStallNow[c] {
			cp.probe.Signal(c, obs.SigRenameStall)
			st.renameStalls++
			*cp.renameStallsCell++
			cp.renameStallNow[c] = false
		}
		if emit {
			s.EmitCounter(c, "coproc.busy_lanes", "lanes", now, v)
			s.EmitCounter(c, "coproc.vl", "granules", now, float64(cp.VL(c)))
		}
	}
	cp.busyLaneCycles += totalBusy / lanes
	cp.acctUpTo = now + 1
	cp.cycles++
}

// addPhaseCompute bumps the per-phase compute-issue counter (phase -1 maps
// to slot 0).
func (st *coreState) addPhaseCompute(phase int) {
	idx := phase + 1
	for len(st.computeByPhase) <= idx {
		st.computeByPhase = append(st.computeByPhase, 0)
	}
	st.computeByPhase[idx]++
}

// depReady reports whether dependency seq has completed.
func (st *coreState) depReady(seq, now uint64) bool {
	if seq == 0 {
		return true
	}
	done, state := st.done.get(seq)
	switch state {
	case ringHit:
		return done <= now
	case ringOlder:
		// Overwritten: the writer issued at least ringSize sequence
		// numbers ago and has long completed.
		return true
	default:
		return false // writer not yet issued
	}
}

func (x *XInst) depsReady(st *coreState, now uint64) bool {
	return st.depReady(x.dep1, now) && st.depReady(x.dep2, now) && st.depReady(x.dep3, now)
}

// tickCore scans core c's issue window in age order and issues every ready
// instruction within the cycle budgets — the out-of-order dispatcher of
// Figure 5. Renaming is in-order: a physical-register shortage stalls the
// whole window (the Figure 13 effect on FTS).
func (cp *Coproc) tickCore(c int, now uint64, budget *issueBudget) {
	st := cp.cores[c]
	for st.head < st.tail && st.at(st.head).issued {
		st.head++
	}
	cp.renameTick(c, now)
	// Fault-injected issue gates (Private victim serialization, FTS
	// shared-structure stalls) close the whole issue stage on off cycles.
	if cp.flt != nil && !cp.flt.issueAllowed(c, now) {
		if st.head < st.tail {
			cp.probe.Signal(c, obs.SigExeBUWait)
		}
		return
	}
	end := st.renamed
	memBlocked := false   // LHQ/MSHR structural stall: no younger memory op may issue
	storeBlocked := false // stores issue in order among themselves
	for i := st.head; i < end; i++ {
		x := st.at(i)
		if x.issued {
			continue
		}
		if budget.compute == 0 && budget.mem == 0 && *budget.emsimd == 0 {
			return
		}
		switch x.kind {
		case kindEMSIMD:
			// The EM-SIMD path is in-order and fences the window:
			// nothing younger issues past an unexecuted EM-SIMD
			// instruction.
			if i != st.head || *budget.emsimd == 0 {
				return
			}
			if !cp.execEMSIMD(c, x, now) {
				return
			}
			*budget.emsimd--
			x.issued = true
			cp.progress++
			st.head++
		case kindMem, kindStore:
			if memBlocked || budget.mem == 0 {
				continue
			}
			if x.kind == kindStore && storeBlocked {
				continue
			}
			switch cp.issueMem(c, x, now) {
			case issueOK:
				budget.mem--
				x.issued = true
				cp.progress++
			case issueStructural:
				memBlocked = true
			case issueDataWait:
				if x.kind == kindStore {
					storeBlocked = true
				}
			case issueRenameStall:
				return
			}
		default: // vector compute
			if budget.compute == 0 {
				continue
			}
			switch cp.issueCompute(c, x, now) {
			case issueOK:
				budget.compute--
				x.issued = true
				cp.progress++
			case issueRenameStall:
				return
			case issueDataWait, issueStructural:
				// Not ready: younger independent work may issue.
			}
		}
	}
}

type issueStatus uint8

const (
	issueOK issueStatus = iota
	issueDataWait
	issueStructural
	issueRenameStall
)

// issuePhys moves a renamed destination register from the queued state to
// the issued state, to be released at writeback.
func (cp *Coproc) issuePhys(c int, release uint64) {
	cp.cores[c].pool.queued--
	cp.cores[c].pool.issued.Add(release)
}

func (cp *Coproc) latFor(op isa.Opcode) uint64 {
	switch op {
	case isa.OpVFDiv, isa.OpVFSqrt:
		return cp.cfg.DivLat
	case isa.OpVIAdd, isa.OpVISub, isa.OpVIAnd, isa.OpVIOr, isa.OpVIXor,
		isa.OpVIShl, isa.OpVIShr, isa.OpVIMax, isa.OpVIMin:
		return cp.cfg.IntLat
	}
	return cp.cfg.ComputeLat
}

// issueCompute issues one SIMD compute micro-op (every granule of the core's
// partition receives the same µop; each ExeBU has two pipes, so the
// busy-lane accounting charges half the lanes per instruction, saturating at
// two issues per cycle).
func (cp *Coproc) issueCompute(c int, x *XInst, now uint64) issueStatus {
	st := cp.cores[c]
	if !x.depsReady(st, now) {
		cp.probe.Signal(c, obs.SigExeBUWait)
		return issueDataWait
	}
	cp.probe.Signal(c, obs.SigVecIssue)
	done := now + cp.latFor(x.Op)
	if cp.retireHists != nil {
		cp.retireHists[c].Observe(done - x.enq)
	}
	if hasZDst(x.Op) {
		cp.issuePhys(c, done)
	}
	st.done.set(x.seq, done)
	st.inflight.Add(done)
	st.computeIssued++
	st.addPhaseCompute(x.Phase)
	if x.Op == isa.OpVMovX0 && cp.respond != nil {
		cp.respond(c, x.XDst, x.respVal, done+cp.cfg.EMSIMDLat)
	}
	cp.cycleBusyLanes[c] += 2 * float64(x.Width)
	if m := 4 * float64(x.Width); cp.cycleBusyLanes[c] > m {
		cp.cycleBusyLanes[c] = m
	}
	return issueOK
}

// issueMem issues one vector load or store micro-op through the LSU.
func (cp *Coproc) issueMem(c int, x *XInst, now uint64) issueStatus {
	st := cp.cores[c]
	size := 4 * x.Active
	if size == 0 {
		// Fully predicated off: completes instantly.
		if hasZDst(x.Op) {
			cp.issuePhys(c, now)
		}
		st.done.set(x.seq, now)
		cp.probe.Signal(c, obs.SigVecIssue)
		if cp.retireHists != nil {
			cp.retireHists[c].Observe(now - x.enq)
		}
		st.memIssued++
		return issueOK
	}
	if x.Op == isa.OpVLoad {
		if st.lhq.Count(now) >= cp.cfg.LHQ {
			cp.probe.Signal(c, obs.SigLSUWait)
			return issueStructural
		}
		done, accepted := cp.vec.AccessFrom(now, x.Addr, size, false, c)
		if !accepted {
			cp.probe.Signal(c, obs.SigMemBW)
			st.mshrRetries++
			*cp.mshrRetriesCell++
			return issueStructural
		}
		cp.issuePhys(c, done)
		st.done.set(x.seq, done)
		st.lhq.Add(done)
		st.inflight.Add(done)
		if cp.retireHists != nil {
			cp.retireHists[c].Observe(done - x.enq)
		}
	} else { // store
		if st.stq.Count(now) >= cp.cfg.STQ {
			cp.probe.Signal(c, obs.SigLSUWait)
			return issueStructural
		}
		if !x.depsReady(st, now) { // store data
			cp.probe.Signal(c, obs.SigLSUWait)
			return issueDataWait
		}
		done, accepted := cp.vec.AccessFrom(now, x.Addr, size, true, c)
		if !accepted {
			cp.probe.Signal(c, obs.SigMemBW)
			st.mshrRetries++
			*cp.mshrRetriesCell++
			return issueStructural
		}
		st.done.set(x.seq, done)
		st.stq.Add(done)
		st.inflight.Add(done)
		if cp.retireHists != nil {
			cp.retireHists[c].Observe(done - x.enq)
		}
	}
	cp.probe.Signal(c, obs.SigVecIssue)
	st.memIssued++
	return issueOK
}

func unFn(op isa.Opcode, v float32) float32 {
	switch op {
	case isa.OpVFNeg:
		return -v
	case isa.OpVFAbs:
		return float32(math.Abs(float64(v)))
	case isa.OpVFSqrt:
		return float32(math.Sqrt(float64(v)))
	}
	panic("coproc: bad unary op")
}

func binFn(op isa.Opcode, a, b float32) float32 {
	switch op {
	case isa.OpVFAdd:
		return a + b
	case isa.OpVFSub:
		return a - b
	case isa.OpVFMul:
		return a * b
	case isa.OpVFDiv:
		return a / b
	case isa.OpVFMax:
		return float32(math.Max(float64(a), float64(b)))
	case isa.OpVFMin:
		return float32(math.Min(float64(a), float64(b)))
	}
	if out, ok := isa.IntBinFn(op, a, b); ok {
		return out
	}
	panic(fmt.Sprintf("coproc: bad binary op %s", op))
}

// Snapshot is a read-only copy of one core's co-processor counters.
type Snapshot struct {
	ComputeIssued  uint64
	MemIssued      uint64
	RenameStalls   uint64
	MSHRRetries    uint64
	DrainWait      uint64
	ComputeByPhase []uint64 // index 0 = outside any phase, i+1 = phase i
}

// CoreSnapshot returns core c's counters.
func (cp *Coproc) CoreSnapshot(c int) Snapshot {
	st := cp.cores[c]
	phases := make([]uint64, len(st.computeByPhase))
	copy(phases, st.computeByPhase)
	return Snapshot{
		ComputeIssued:  st.computeIssued,
		MemIssued:      st.memIssued,
		RenameStalls:   st.renameStalls,
		MSHRRetries:    st.mshrRetries,
		DrainWait:      st.drainWait,
		ComputeByPhase: phases,
	}
}

// Utilization returns the paper's SIMD_util over all cycles simulated so
// far: the mean fraction of busy lanes across the whole array (§2).
func (cp *Coproc) Utilization() float64 {
	if cp.cycles == 0 {
		return 0
	}
	return cp.busyLaneCycles / float64(cp.cycles)
}

// Cycles returns how many cycles the co-processor has simulated.
func (cp *Coproc) Cycles() uint64 { return cp.cycles }

// Quiescent reports whether core c has no queued or in-flight work.
func (cp *Coproc) Quiescent(c int, now uint64) bool {
	st := cp.cores[c]
	return st.head >= st.tail && st.inflight.Count(now) == 0
}

// LastActive returns the latest cycle core c had queued or in-flight work.
func (cp *Coproc) LastActive(c int) uint64 {
	cp.cores[c].flushAcct(cp.acctUpTo)
	return cp.cores[c].lastActive
}

// Z returns the functional value of lane i of register r on core c (tests).
func (cp *Coproc) Z(c int, r isa.Reg, i int) float32 { return cp.cores[c].z[r][i] }

// BusyTimeline returns core c's busy-lane timeline (Figures 2 and 14(b)).
func (cp *Coproc) BusyTimeline(c int) *sim.Timeline {
	cp.cores[c].flushAcct(cp.acctUpTo)
	return &cp.cores[c].busyTimeline
}

// ComputeIssued returns the number of SIMD compute instructions core c has
// issued (the numerator of the paper's SIMD issue rate).
func (cp *Coproc) ComputeIssued(c int) uint64 { return cp.cores[c].computeIssued }

// MemIssued returns the number of vector memory instructions core c has
// issued.
func (cp *Coproc) MemIssued(c int) uint64 { return cp.cores[c].memIssued }

// RenameStalls returns the cycles core c's rename stage stalled on physical
// registers (Figure 13's metric, per core).
func (cp *Coproc) RenameStalls(c int) uint64 { return cp.cores[c].renameStalls }

// BusyLaneCycles returns core c's cumulative busy-lane count (lane·cycles);
// the telemetry sampler diffs it at window boundaries into occupancy.
func (cp *Coproc) BusyLaneCycles(c int) float64 { return cp.cores[c].busyLaneAccum }

// DrainWaitCycles returns cycles core c's MSR <VL> spent waiting for its
// pipeline to drain (Figure 15's reconfiguration overhead).
func (cp *Coproc) DrainWaitCycles(c int) uint64 { return cp.cores[c].drainWait }

// SaveVecState copies core c's architectural vector registers, for OS
// context switching (§5). The caller must ensure quiescence.
func (cp *Coproc) SaveVecState(c int) [][]float32 {
	return cp.CopyVecState(c, nil)
}

// CopyVecState is SaveVecState into a caller-owned buffer: dst's backing
// arrays are reused when the shapes match (a task's repeated preemptions then
// cost no allocation), and the possibly re-allocated buffer is returned.
func (cp *Coproc) CopyVecState(c int, dst [][]float32) [][]float32 {
	st := cp.cores[c]
	if len(dst) != len(st.z) {
		dst = make([][]float32, len(st.z))
	}
	for r := range st.z {
		if len(dst[r]) != len(st.z[r]) {
			dst[r] = make([]float32, len(st.z[r]))
		}
		copy(dst[r], st.z[r])
	}
	return dst
}

// RestoreVecState installs previously saved vector registers on core c.
func (cp *Coproc) RestoreVecState(c int, z [][]float32) {
	st := cp.cores[c]
	for r := range st.z {
		copy(st.z[r], z[r])
	}
}
