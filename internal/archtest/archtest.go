// Package archtest is the reusable differential/property harness behind the
// repo's bit-identity guarantees. Scenario layers (arch differential tests,
// the traffic engine, future schedulers) express a run as a function
// returning an FNV-64a outcome digest; the harness runs variant sets —
// skip-ahead vs legacy tick, -j 1 vs -j N, straight vs checkpoint-fork —
// and fails with a per-variant digest table when any pair diverges.
//
// The contract a digest function must honor: it builds its entire world
// from its own inputs (no shared mutable state), and the digest covers
// every outcome the variant is supposed to reproduce — not internal
// scratch state that may legitimately differ between equivalent executions.
package archtest

import (
	"hash"
	"hash/fnv"
	"math"
	"sync"
	"testing"
)

// Digest builds an FNV-64a digest from typed values; a convenience over
// hand-rolled byte packing so every test digests fields the same way.
type Digest struct {
	h   hash.Hash64
	buf [8]byte
}

// NewDigest returns an empty digest builder.
func NewDigest() *Digest { return &Digest{h: fnv.New64a()} }

// U64 folds values in little-endian order.
func (d *Digest) U64(vs ...uint64) {
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			d.buf[i] = byte(v >> (8 * i))
		}
		d.h.Write(d.buf[:8])
	}
}

// I64 folds signed values.
func (d *Digest) I64(vs ...int64) {
	for _, v := range vs {
		d.U64(uint64(v))
	}
}

// F64 folds the IEEE-754 bit pattern (bit-identity, not tolerance).
func (d *Digest) F64(vs ...float64) {
	for _, v := range vs {
		d.U64(math.Float64bits(v))
	}
}

// Bool folds a flag.
func (d *Digest) Bool(b bool) {
	if b {
		d.U64(1)
	} else {
		d.U64(0)
	}
}

// Str folds a length-prefixed string.
func (d *Digest) Str(s string) {
	d.U64(uint64(len(s)))
	d.h.Write([]byte(s))
}

// Sum returns the digest value; the builder remains usable.
func (d *Digest) Sum() uint64 { return d.h.Sum64() }

// Variant is one execution strategy of the same logical scenario.
type Variant struct {
	Name string
	Run  func(t *testing.T) uint64
}

// CheckVariants runs every variant sequentially and fails the test unless
// all digests are identical, reporting the full table on divergence.
func CheckVariants(t *testing.T, variants []Variant) {
	t.Helper()
	if len(variants) < 2 {
		t.Fatal("archtest: need at least two variants to compare")
	}
	digests := make([]uint64, len(variants))
	for i, v := range variants {
		digests[i] = v.Run(t)
	}
	report(t, variants, digests)
}

// CheckVariantsParallel runs every variant in its own goroutine (the -j N
// equivalence property: concurrent execution must not perturb outcomes)
// and fails unless all digests agree.
func CheckVariantsParallel(t *testing.T, variants []Variant) {
	t.Helper()
	if len(variants) < 2 {
		t.Fatal("archtest: need at least two variants to compare")
	}
	digests := make([]uint64, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v Variant) {
			defer wg.Done()
			digests[i] = v.Run(t)
		}(i, v)
	}
	wg.Wait()
	report(t, variants, digests)
}

func report(t *testing.T, variants []Variant, digests []uint64) {
	t.Helper()
	base := digests[0]
	diverged := false
	for _, d := range digests[1:] {
		if d != base {
			diverged = true
			break
		}
	}
	if !diverged {
		return
	}
	for i, v := range variants {
		t.Errorf("archtest: variant %-24s digest %016x", v.Name, digests[i])
	}
	t.Fatalf("archtest: %d variants diverged", len(variants))
}
