package area

import (
	"math"
	"testing"

	"occamy/internal/arch"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestFigure12_Totals checks the published 2-core totals: 1.263 mm² for
// Private and ≈1.265 mm² for the sharing architectures (Table 4).
func TestFigure12_Totals(t *testing.T) {
	f := Figure12()
	if !approx(f[arch.Private], 1.263, 0.003) {
		t.Errorf("Private total = %.3f, want 1.263", f[arch.Private])
	}
	for _, k := range []arch.Kind{arch.FTS, arch.VLS, arch.Occamy} {
		if !approx(f[k], 1.265, 0.004) {
			t.Errorf("%s total = %.3f, want ~1.265", k, f[k])
		}
	}
}

// TestFigure12_BigThreeShares checks the breakdown shape: SIMD execution
// units ≈46%, LSU ≈23%, register file ≈15% of the total.
func TestFigure12_BigThreeShares(t *testing.T) {
	b := Breakdown(arch.Occamy, 2, false)
	total := Total(b)
	shares := map[string]float64{"SIMDExeUnits": 0.46, "LSU": 0.23, "RegisterFile": 0.15}
	for name, want := range shares {
		got := b[name] / total
		if !approx(got, want, 0.01) {
			t.Errorf("%s share = %.1f%%, want %.0f%%", name, 100*got, 100*want)
		}
	}
}

// TestManagerUnderOnePercent checks §7.3: the Manager takes less than 1% of
// Occamy's total area.
func TestManagerUnderOnePercent(t *testing.T) {
	b := Breakdown(arch.Occamy, 2, false)
	if share := b["Manager"] / Total(b); share <= 0 || share >= 0.01 {
		t.Fatalf("Manager share = %.2f%%, want (0, 1%%)", 100*share)
	}
	if Breakdown(arch.Private, 2, false)["Manager"] != 0 {
		t.Fatal("Private must have no Manager")
	}
}

// TestScaling2To4Cores checks §4.2.1: growing the tables and pipelines from
// 2 to 4 cores adds ≈3% area.
func TestScaling2To4Cores(t *testing.T) {
	for _, k := range arch.Kinds {
		t2 := Total(Breakdown(k, 2, false))
		t4 := Total(Breakdown(k, 4, false))
		growth := t4/t2 - 1
		if growth < 0.02 || growth > 0.045 {
			t.Errorf("%s 2->4 core growth = %.1f%%, want ~3%%", k, 100*growth)
		}
	}
}

// TestFTSPerCoreVRFCosts33Percent checks §7.6: FTS keeping the two-core
// register capacity per core at 4 cores costs ≈33.5% more area than the
// other architectures.
func TestFTSPerCoreVRFCosts33Percent(t *testing.T) {
	others := Total(Breakdown(arch.Occamy, 4, false))
	fts := Total(Breakdown(arch.FTS, 4, true))
	extra := fts/others - 1
	if !approx(extra, 0.335, 0.03) {
		t.Errorf("FTS per-core-VRF overhead = %.1f%%, want ~33.5%%", 100*extra)
	}
	// Without the per-core VRF option, FTS stays in family.
	plain := Total(Breakdown(arch.FTS, 4, false))
	if plain/others > 1.01 {
		t.Errorf("plain FTS at 4 cores = %.3f vs %.3f, want parity", plain, others)
	}
}

func TestBreakdownCoversAllComponents(t *testing.T) {
	b := Breakdown(arch.Occamy, 2, false)
	for _, name := range Components {
		if _, ok := b[name]; !ok {
			t.Errorf("component %s missing from breakdown", name)
		}
	}
}

func TestRenderMentionsEveryArch(t *testing.T) {
	out := Render(2, false)
	for _, k := range arch.Kinds {
		if !contains(out, k.String()) {
			t.Errorf("render missing %s", k)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
