// Package area implements the analytical chip-area model behind Figure 12
// and §7.3/§7.6: per-component areas for the four SIMD architectures in a
// 7 nm process, calibrated to the paper's published totals (≈1.263 mm² for
// Private, ≈1.265 mm² for the sharing architectures, with the Manager under
// 1% of the total), and the scaling statements of §4.2.1 (≈3% growth from
// 2 to 4 cores for tables/pipelines) and §7.6 (FTS with per-core register
// files costs ≈33.5% more area).
package area

import (
	"fmt"
	"sort"

	"occamy/internal/arch"
)

// Component names, in Figure 12's legend order.
var Components = []string{
	"InstPool", "Decode", "Rename", "Dispatch",
	"SIMDExeUnits", "LSU", "Manager", "RegisterFile", "ROB", "VecCache",
}

// base2Core is the 2-core breakdown in mm², calibrated so that the big
// three match Figure 12 (SIMD execution units ≈46%, LSU ≈23%, register
// file ≈15%) and the total lands on the published 1.263-1.265 mm².
var base2Core = map[string]float64{
	"InstPool":     0.022,
	"Decode":       0.016,
	"Rename":       0.020,
	"Dispatch":     0.024,
	"SIMDExeUnits": 0.581, // 46%
	"LSU":          0.291, // 23%
	"Manager":      0.000, // Occamy-only; see below
	"RegisterFile": 0.190, // 15%
	"ROB":          0.034,
	"VecCache":     0.085,
}

// managerArea is the Occamy lane manager (ResourceTbl + control logic +
// FIFOs): Table 4 prices the sharing architectures at 1.265 mm² against
// Private's 1.263 mm², and §7.3 bounds the Manager under 1% of the total.
const managerArea = 0.002

// perCoreScaling lists which components grow with the core count
// (§4.2.1: tables, data paths and control logic must be enlarged; function
// and storage units may stay).
var perCoreScaling = map[string]float64{
	"InstPool": 0.5, "Decode": 0.25, "Rename": 0.25, "Dispatch": 0.125,
	"ROB": 0.25, "LSU": 0.025, "Manager": 0.5,
}

// Breakdown returns the per-component area in mm² of one architecture at
// the given core count (2 in Figure 12; 4 in §7.6).
//
// ftsPerCoreVRF selects §7.6's FTS variant that keeps the two-core-sized
// register file per core, costing ≈33.5% more total area.
func Breakdown(kind arch.Kind, cores int, ftsPerCoreVRF bool) map[string]float64 {
	if cores < 2 {
		cores = 2
	}
	out := make(map[string]float64, len(base2Core))
	scale := float64(cores) / 2
	for name, a := range base2Core {
		out[name] = a
		if f, ok := perCoreScaling[name]; ok {
			// Grow the scaling fraction of the component linearly
			// with cores; the rest is width-invariant.
			out[name] = a * ((1 - f) + f*scale)
		}
	}
	switch kind {
	case arch.Occamy:
		out["Manager"] = managerArea * ((1 - perCoreScaling["Manager"]) + perCoreScaling["Manager"]*scale)
	case arch.FTS:
		// Temporal sharing needs the scheduler/arbiter: a sliver of
		// extra dispatch logic.
		out["Dispatch"] *= 1.04
		if ftsPerCoreVRF && cores > 2 {
			// §7.6: keeping the same number of physical registers
			// per core as in the two-core case.
			out["RegisterFile"] *= scale
			// The paper quotes +33.5% total vs the other three;
			// the register file alone does not get there — the
			// wider result buses and bypass do the rest.
			out["SIMDExeUnits"] *= 1.42
		}
	case arch.VLS:
		// Static partitioning: configuration registers only.
		out["Dispatch"] *= 1.02
	}
	return out
}

// Total sums a breakdown.
func Total(b map[string]float64) float64 {
	t := 0.0
	for _, v := range b {
		t += v
	}
	return t
}

// Figure12 returns the four 2-core totals in presentation order.
func Figure12() map[arch.Kind]float64 {
	out := make(map[arch.Kind]float64, 4)
	for _, k := range arch.Kinds {
		out[k] = Total(Breakdown(k, 2, false))
	}
	return out
}

// Render prints a Figure 12-style breakdown table.
func Render(cores int, ftsPerCoreVRF bool) string {
	out := fmt.Sprintf("Area breakdown (mm^2, %d cores)\n", cores)
	names := append([]string(nil), Components...)
	sort.Strings(names)
	for _, k := range arch.Kinds {
		b := Breakdown(k, cores, ftsPerCoreVRF)
		out += fmt.Sprintf("%-8s total=%.3f", k, Total(b))
		for _, n := range Components {
			if b[n] > 0 {
				out += fmt.Sprintf("  %s=%.3f", n, b[n])
			}
		}
		out += "\n"
	}
	return out
}
