package arch

import (
	"fmt"
	"math"
	"reflect"
	"sort"
)

// This file gives SystemState a content digest: a word-wise FNV-64a hash
// over a deterministic serialization of the entire reachable snapshot — struct
// fields in declaration order, slices and arrays in index order, maps in
// sorted-key order, pointers followed once (cycle-safe). Checkpoint stamps
// the digest at capture time and RestoreCheckpoint recomputes and compares it
// before touching any component, so a snapshot that was corrupted while
// cached or parked (Elzar's silent-state-corruption frame: a bit flip must
// never become a wrong answer) is rejected with a typed error and the target
// system is left exactly as it was — free to fall back to a cold run.
//
// The walk is reflection-based rather than hand-written per component so it
// is complete by construction: a state field added to any component's
// checkpoint is hashed automatically, with no way to silently forget one.
// Reading unexported fields through reflect is legal for every kind the
// checkpoints contain (only Interface() and mutation are restricted), and
// []byte payloads — the memory image dominates a snapshot's size — hash
// through Value.Bytes at slice speed.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// CorruptCheckpointError is the typed error RestoreCheckpoint returns when a
// snapshot's recomputed content digest does not match the digest stamped at
// Checkpoint time. The restore is refused in full: no component state was
// modified. Callers holding a cache treat this as "evict and run cold" —
// degraded, never wrong.
type CorruptCheckpointError struct {
	// Cycle is the cycle the snapshot claims to have been taken at.
	Cycle uint64
	// Want is the digest stamped at Checkpoint time; Got is the digest of
	// the snapshot as presented for restore.
	Want, Got uint64
}

func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("arch: checkpoint integrity failure: snapshot at cycle %d digests to %016x, stamped %016x (refusing to restore)",
		e.Cycle, e.Got, e.Want)
}

// digestState is one digest computation: the running hash plus a visited set
// so pointer cycles (none exist today, but the walker must not depend on
// that) terminate.
//
// The mixing is FNV-1a lifted to 64-bit words: one xor-multiply per word
// instead of one per byte. Byte images fold 8 bytes into a word first, so
// the memory image — the bulk of every snapshot — hashes at one multiply per
// 8 bytes. The digest only ever lives next to the snapshot it stamps (the
// in-process checkpoint cache, a parked job), so the exact function is free
// to favor speed: restore-time verification is paid on every cache load and
// every sweep-point fork, and at byte-serial FNV speed it was eating the
// checkpoint fork's wall-clock win.
type digestState struct {
	h       uint64
	visited map[visitKey]struct{}
}

type visitKey struct {
	ptr uintptr
	typ reflect.Type
}

func (d *digestState) byte(b byte) {
	d.h = (d.h ^ uint64(b)) * fnvPrime64
}

func (d *digestState) u64(v uint64) {
	d.h = (d.h ^ v) * fnvPrime64
}

func (d *digestState) bytes(b []byte) {
	for len(b) >= 8 {
		d.u64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
		b = b[8:]
	}
	for _, c := range b {
		d.byte(c)
	}
}

func (d *digestState) str(s string) {
	d.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

// kind tags keep distinct shapes from colliding (nil vs empty, 0 vs absent).
const (
	tagNil byte = iota
	tagPtr
	tagBool
	tagInt
	tagUint
	tagFloat
	tagComplex
	tagString
	tagSeq
	tagMap
	tagStruct
	tagIface
	tagOpaque // func/chan/unsafe.Pointer: nil-ness only
)

func (d *digestState) walk(v reflect.Value) {
	if !v.IsValid() {
		d.byte(tagNil)
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		d.byte(tagBool)
		if v.Bool() {
			d.byte(1)
		} else {
			d.byte(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		d.byte(tagInt)
		d.u64(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		d.byte(tagUint)
		d.u64(v.Uint())
	case reflect.Float32, reflect.Float64:
		d.byte(tagFloat)
		d.u64(math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		d.byte(tagComplex)
		d.u64(math.Float64bits(real(c)))
		d.u64(math.Float64bits(imag(c)))
	case reflect.String:
		d.byte(tagString)
		d.str(v.String())
	case reflect.Slice:
		if v.IsNil() {
			d.byte(tagNil)
			return
		}
		d.walkSeq(v)
	case reflect.Array:
		d.walkSeq(v)
	case reflect.Map:
		if v.IsNil() {
			d.byte(tagNil)
			return
		}
		d.walkMap(v)
	case reflect.Pointer:
		if v.IsNil() {
			d.byte(tagNil)
			return
		}
		d.byte(tagPtr)
		key := visitKey{ptr: v.Pointer(), typ: v.Type()}
		if _, seen := d.visited[key]; seen {
			return // already hashed this object
		}
		d.visited[key] = struct{}{}
		d.walk(v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			d.byte(tagNil)
			return
		}
		d.byte(tagIface)
		d.str(v.Elem().Type().String())
		d.walk(v.Elem())
	case reflect.Struct:
		d.byte(tagStruct)
		n := v.NumField()
		d.u64(uint64(n))
		for i := 0; i < n; i++ {
			d.walk(v.Field(i))
		}
	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		// Not data: hash presence only. Checkpoint states are plain data
		// today; if one ever carries a closure, its identity is
		// configuration, not state.
		d.byte(tagOpaque)
		if v.IsNil() {
			d.byte(0)
		} else {
			d.byte(1)
		}
	default:
		panic(fmt.Sprintf("arch: snapshot digest: unhashable kind %v", v.Kind()))
	}
}

// walkSeq hashes a slice or array. Byte slices — the simulated memory image,
// the bulk of every snapshot — go through Value.Bytes (readable even on
// unexported fields) instead of a per-element reflect loop.
func (d *digestState) walkSeq(v reflect.Value) {
	n := v.Len()
	d.byte(tagSeq)
	d.u64(uint64(n))
	if v.Kind() == reflect.Slice && v.Type().Elem().Kind() == reflect.Uint8 {
		d.bytes(v.Bytes())
		return
	}
	switch v.Type().Elem().Kind() {
	case reflect.Uint64: // stats rings, release lists: skip per-element tags
		for i := 0; i < n; i++ {
			d.u64(v.Index(i).Uint())
		}
	case reflect.Float64:
		for i := 0; i < n; i++ {
			d.u64(math.Float64bits(v.Index(i).Float()))
		}
	default:
		for i := 0; i < n; i++ {
			d.walk(v.Index(i))
		}
	}
}

// walkMap hashes a map in deterministic order: entries are sorted by the
// digest of their key (lexical for the common string and integer keys would
// do, but key-digest order covers every key type uniformly).
func (d *digestState) walkMap(v reflect.Value) {
	keys := v.MapKeys()
	type entry struct {
		kd  uint64
		key reflect.Value
	}
	entries := make([]entry, len(keys))
	for i, k := range keys {
		sub := digestState{h: fnvOffset64, visited: d.visited}
		sub.walk(k)
		entries[i] = entry{kd: sub.h, key: k}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].kd < entries[j].kd })
	d.byte(tagMap)
	d.u64(uint64(len(entries)))
	for _, e := range entries {
		d.u64(e.kd)
		d.walk(v.MapIndex(e.key))
	}
}

// computeDigest hashes every field of the snapshot except the digest stamp
// itself.
func (st *SystemState) computeDigest() uint64 {
	d := digestState{h: fnvOffset64, visited: make(map[visitKey]struct{})}
	v := reflect.ValueOf(st).Elem()
	t := v.Type()
	for i := 0; i < v.NumField(); i++ {
		if t.Field(i).Name == "digest" {
			continue
		}
		d.walk(v.Field(i))
	}
	return d.h
}

// Digest returns the content digest stamped when the snapshot was captured.
// It is content-addressed: two snapshots of identical machine state digest
// identically, regardless of which (identically built) System captured them.
func (st *SystemState) Digest() uint64 { return st.digest }

// Verify recomputes the snapshot's content digest and compares it with the
// stamp, returning a *CorruptCheckpointError on mismatch. RestoreCheckpoint
// calls this before touching any component; callers that hold snapshots in a
// cache can also verify eagerly (e.g. on insert) without a target system.
func (st *SystemState) Verify() error {
	if got := st.computeDigest(); got != st.digest {
		return &CorruptCheckpointError{Cycle: st.engine.Cycle(), Want: st.digest, Got: got}
	}
	return nil
}

// Tamper flips one bit of the snapshot's payload — deterministic simulated
// memory corruption for integrity tests and the serve layer's
// fault-injection endpoints. A tampered snapshot fails Verify and is refused
// by RestoreCheckpoint.
func (st *SystemState) Tamper() { st.engine.Corrupt() }
