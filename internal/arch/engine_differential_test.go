package arch

import (
	"fmt"
	"reflect"
	"testing"

	"occamy/internal/obs"
	"occamy/internal/workload"
)

// diffStats reports every counter whose value differs between two registry
// snapshots (missing keys read as zero, like sim.Stats itself).
func diffStats(a, b map[string]uint64) []string {
	var out []string
	seen := map[string]bool{}
	for k, v := range a {
		seen[k] = true
		if b[k] != v {
			out = append(out, fmt.Sprintf("%s: legacy=%d skip=%d", k, v, b[k]))
		}
	}
	for k, v := range b {
		if !seen[k] && v != 0 {
			out = append(out, fmt.Sprintf("%s: legacy=0 skip=%d", k, v))
		}
	}
	return out
}

// TestEngineSkipAheadBitIdentical is the hybrid engine's hard requirement:
// with skip-ahead enabled, every run must produce bit-identical cycle
// counts, statistics, cycle attribution and functional results to the
// legacy every-cycle path. Five workload pairs on all four architectures,
// both ways, diffed field by field.
func TestEngineSkipAheadBitIdentical(t *testing.T) {
	reg := workload.NewRegistry()
	pairs := append([]workload.CoSchedule{workload.MotivatingPair(reg)},
		workload.Figure10Pairs(reg)[:4]...)
	var totalSkipped uint64
	for _, pair := range pairs {
		pair := pair.Scaled(0.1)
		for _, kind := range Kinds {
			run := func(legacy bool) (*System, *Result) {
				t.Helper()
				sys, err := Build(kind, pair, Options{
					Seed:       11,
					Obs:        obs.Options{Attribution: true},
					LegacyTick: legacy,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run(400_000_000)
				if err != nil {
					t.Fatal(err)
				}
				return sys, res
			}
			legSys, legRes := run(true)
			skipSys, skipRes := run(false)
			name := fmt.Sprintf("%s on %s", pair.Name, kind)

			if legSys.Engine.SkippedCycles() != 0 {
				t.Fatalf("%s: legacy run skipped %d cycles", name, legSys.Engine.SkippedCycles())
			}
			totalSkipped += skipSys.Engine.SkippedCycles()

			if l, s := legSys.Engine.Cycle(), skipSys.Engine.Cycle(); l != s {
				t.Errorf("%s: engine cycle legacy=%d skip=%d", name, l, s)
			}
			if diffs := diffStats(legSys.Stats.Snapshot(), skipSys.Stats.Snapshot()); len(diffs) > 0 {
				t.Errorf("%s: %d stats diverge, e.g. %s", name, len(diffs), diffs[0])
			}
			// Field-by-field Result diff: scalars first for readable
			// failures, then the full struct (covers per-core counters,
			// float rates computed from them, and the attribution).
			if legRes.Cycles != skipRes.Cycles {
				t.Errorf("%s: makespan legacy=%d skip=%d", name, legRes.Cycles, skipRes.Cycles)
			}
			if legRes.Utilization != skipRes.Utilization {
				t.Errorf("%s: utilization legacy=%v skip=%v", name, legRes.Utilization, skipRes.Utilization)
			}
			for c := range legRes.Cores {
				if !reflect.DeepEqual(legRes.Cores[c], skipRes.Cores[c]) {
					t.Errorf("%s: core %d results diverge:\nlegacy: %+v\nskip:   %+v",
						name, c, legRes.Cores[c], skipRes.Cores[c])
				}
			}
			if !reflect.DeepEqual(legRes, skipRes) {
				t.Errorf("%s: results diverge:\nlegacy: %+v\nskip:   %+v", name, legRes, skipRes)
			}
			// The conservation invariant must hold in both modes (collect
			// records any trim/conservation failure per core).
			for c := range skipRes.Cores {
				if e := skipRes.Cores[c].AttributionErr; e != "" {
					t.Errorf("%s: core %d attribution broken under skip: %s", name, c, e)
				}
			}
			// Functional outputs: both runs must match the host reference
			// (and, via the stats identity above, each other).
			if err := legSys.CheckResults(2e-3); err != nil {
				t.Errorf("%s: legacy functional check: %v", name, err)
			}
			if err := skipSys.CheckResults(2e-3); err != nil {
				t.Errorf("%s: skip functional check: %v", name, err)
			}
		}
	}
	if totalSkipped == 0 {
		t.Error("skip-ahead never engaged across any pair/architecture")
	}
}

// TestEngineSkipAheadTimelineIdentical pins the bulk timeline path: the
// busy-lane timelines (Figure 2's plots) must match point for point.
func TestEngineSkipAheadTimelineIdentical(t *testing.T) {
	reg := workload.NewRegistry()
	pair := workload.MotivatingPair(reg).Scaled(0.1)
	build := func(legacy bool) *System {
		sys, err := Build(Occamy, pair, Options{Seed: 11, LegacyTick: legacy})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(400_000_000); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	leg, skip := build(true), build(false)
	for c := 0; c < pair.Cores(); c++ {
		lp, sp := leg.Coproc.BusyTimeline(c).Points(), skip.Coproc.BusyTimeline(c).Points()
		if len(lp) != len(sp) {
			t.Fatalf("core %d: timeline length legacy=%d skip=%d", c, len(lp), len(sp))
		}
		for i := range lp {
			if lp[i] != sp[i] {
				t.Errorf("core %d bucket %d: legacy=%v skip=%v", c, i, lp[i], sp[i])
			}
		}
	}
}
