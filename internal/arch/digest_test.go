package arch

import (
	"errors"
	"testing"

	"occamy/internal/sim"
)

// TestCheckpointDigestTamperRejected is the integrity contract: a snapshot
// with even one flipped bit must be refused by RestoreCheckpoint with a
// *CorruptCheckpointError, leaving the target system untouched — a corrupted
// cache entry degrades to a cold run, never to a silently wrong answer.
func TestCheckpointDigestTamperRejected(t *testing.T) {
	sys, err := Build(Occamy, ckGroup(), Options{Seed: 7, WireInjector: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunTo(500); err != nil {
		t.Fatal(err)
	}
	snap := sys.Checkpoint()
	if err := snap.Verify(); err != nil {
		t.Fatalf("fresh snapshot fails Verify: %v", err)
	}
	if snap.Digest() == 0 {
		t.Fatal("snapshot digest not stamped")
	}
	if err := sys.RunTo(800); err != nil {
		t.Fatal(err)
	}
	atTamper := sys.Engine.Cycle()

	snap.Tamper()
	err = sys.RestoreCheckpoint(snap)
	var cerr *CorruptCheckpointError
	if !errors.As(err, &cerr) {
		t.Fatalf("RestoreCheckpoint(tampered) = %v, want *CorruptCheckpointError", err)
	}
	if cerr.Want == cerr.Got {
		t.Fatalf("error reports matching digests: %+v", cerr)
	}
	if got := sys.Engine.Cycle(); got != atTamper {
		t.Fatalf("refused restore still moved the clock: %d, want %d", got, atTamper)
	}

	// Un-tampering restores integrity: the same snapshot object verifies and
	// restores again (Tamper is an involution).
	snap.Tamper()
	if err := sys.RestoreCheckpoint(snap); err != nil {
		t.Fatalf("restore after un-tamper: %v", err)
	}
	if got := sys.Engine.Cycle(); got != 500 {
		t.Fatalf("restored clock at %d, want 500", got)
	}
}

// TestCheckpointDigestContentAddressed: two snapshots of the same machine
// state — same build recipe, same cycle — digest identically even across
// distinct System instances, the property the serve layer's content-addressed
// checkpoint cache keys on. A snapshot at a different cycle must differ.
func TestCheckpointDigestContentAddressed(t *testing.T) {
	build := func() *System {
		sys, err := Build(VLS, ckGroup(), Options{Seed: 7, WireInjector: true})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a, b := build(), build()
	if err := a.RunTo(400); err != nil {
		t.Fatal(err)
	}
	if err := b.RunTo(400); err != nil {
		t.Fatal(err)
	}
	da, db := a.Checkpoint().Digest(), b.Checkpoint().Digest()
	if da != db {
		t.Fatalf("identically built systems at the same cycle digest differently: %016x vs %016x", da, db)
	}
	if err := a.RunTo(600); err != nil {
		t.Fatal(err)
	}
	if dc := a.Checkpoint().Digest(); dc == da {
		t.Fatalf("snapshot at cycle 600 digests identically to cycle 400 (%016x)", dc)
	}
}

// TestRunCanceledReturnsDiagError: a run whose interrupt fires is killed
// cooperatively and surfaces the standard diagnostic machinery — errors.As
// reaches both the DiagError (with its machine dump) and the underlying
// sim.CanceledError, which is how the serve layer classifies timeouts.
func TestRunCanceledReturnsDiagError(t *testing.T) {
	sys, err := Build(Occamy, ckGroup(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	sys.SetInterrupt(done)
	_, err = sys.Run(50_000_000)
	var derr *DiagError
	if !errors.As(err, &derr) {
		t.Fatalf("canceled run returned %v, want *DiagError", err)
	}
	var cerr *sim.CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("canceled run's error chain lacks *sim.CanceledError: %v", err)
	}
	if derr.Dump == nil {
		t.Fatal("canceled run carries no diagnostic dump")
	}
}

// BenchmarkSnapshotDigest is the integrity tax: one digest walk over a full
// warm snapshot. Checkpoint pays it once at capture; RestoreCheckpoint pays
// it once per restore — so it bounds how often checkpoint forks and cache
// loads can recycle state without the verify dominating the simulation.
func BenchmarkSnapshotDigest(b *testing.B) {
	sys, err := Build(Occamy, ckGroup(), Options{Seed: 7, WireInjector: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.RunTo(500); err != nil {
		b.Fatal(err)
	}
	snap := sys.Checkpoint()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap.computeDigest() != snap.Digest() {
			b.Fatal("digest mismatch")
		}
	}
}
