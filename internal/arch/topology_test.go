package arch

import (
	"fmt"
	"reflect"
	"testing"

	"occamy/internal/coproc"
	"occamy/internal/fault"
	"occamy/internal/obs"
	"occamy/internal/telemetry"
	"occamy/internal/workload"
)

// fourCoreGroup returns the first §7.6 four-core schedule, scaled for test
// runtimes.
func fourCoreGroup() workload.CoSchedule {
	reg := workload.NewRegistry()
	return workload.FourCoreGroups(reg)[0].Scaled(0.1)
}

// runTopo builds and runs a system, returning it with its result.
func runTopo(t *testing.T, kind Kind, sched workload.CoSchedule, opts Options) (*System, *Result) {
	t.Helper()
	sys, err := Build(kind, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

// TestTopologySingleClusterBitIdentical is the refactor's first hard
// invariant: wrapping the machine in an explicit 1-cluster topology (cores
// wired through the routed Complex instead of directly to the co-processor)
// must not change a single observable — cycles, every counter, per-core
// results, attribution, telemetry digest — on any architecture, with
// skip-ahead on.
func TestTopologySingleClusterBitIdentical(t *testing.T) {
	sched := fourCoreGroup()
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			base := Options{
				Seed:      11,
				Obs:       obs.Options{Attribution: true},
				Telemetry: &telemetry.Config{Window: 512},
			}
			clustered := base
			clustered.Topology = &coproc.Topology{Clusters: 1}
			flatSys, flatRes := runTopo(t, kind, sched, base)
			topoSys, topoRes := runTopo(t, kind, sched, clustered)

			if f, c := flatSys.Engine.Cycle(), topoSys.Engine.Cycle(); f != c {
				t.Errorf("engine cycle flat=%d clustered=%d", f, c)
			}
			if diffs := diffStats(flatSys.Stats.Snapshot(), topoSys.Stats.Snapshot()); len(diffs) > 0 {
				t.Errorf("%d stats diverge, e.g. %s", len(diffs), diffs[0])
			}
			if !reflect.DeepEqual(flatRes, topoRes) {
				t.Errorf("results diverge:\nflat:      %+v\nclustered: %+v", flatRes, topoRes)
			}
			if f, c := flatSys.Tele.Digest(), topoSys.Tele.Digest(); f != c {
				t.Errorf("telemetry digest flat=%#x clustered=%#x", f, c)
			}
			for c := range flatRes.Cores {
				if e := topoRes.Cores[c].AttributionErr; e != "" {
					t.Errorf("core %d attribution broken under topology: %s", c, e)
				}
			}
			if err := topoSys.CheckResults(2e-3); err != nil {
				t.Errorf("clustered functional check: %v", err)
			}
		})
	}
}

// TestTopologySingleClusterCheckpointIdentical repeats the invariant through
// a checkpoint fork: snapshot both machines mid-run, finish, rewind, finish
// again — the forked runs must match each other and the straight runs.
func TestTopologySingleClusterCheckpointIdentical(t *testing.T) {
	sched := fourCoreGroup()
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(topo *coproc.Topology) (uint64, uint64, map[string]uint64) {
				t.Helper()
				sys, err := Build(kind, sched, Options{
					Seed:      11,
					Topology:  topo,
					Telemetry: &telemetry.Config{Window: 512},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.RunTo(2000); err != nil {
					t.Fatal(err)
				}
				st := sys.Checkpoint()
				if _, err := sys.Run(400_000_000); err != nil {
					t.Fatal(err)
				}
				first := sys.Engine.Cycle()
				if err := sys.RestoreCheckpoint(st); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Run(400_000_000); err != nil {
					t.Fatal(err)
				}
				if sys.Engine.Cycle() != first {
					t.Fatalf("forked run ended at %d, straight run at %d", sys.Engine.Cycle(), first)
				}
				return first, sys.Tele.Digest(), sys.Stats.Snapshot()
			}
			fCyc, fDig, fStats := run(nil)
			cCyc, cDig, cStats := run(&coproc.Topology{Clusters: 1})
			if fCyc != cCyc {
				t.Errorf("cycles flat=%d clustered=%d", fCyc, cCyc)
			}
			if fDig != cDig {
				t.Errorf("telemetry digest flat=%#x clustered=%#x", fDig, cDig)
			}
			if diffs := diffStats(fStats, cStats); len(diffs) > 0 {
				t.Errorf("%d stats diverge, e.g. %s", len(diffs), diffs[0])
			}
		})
	}
}

// TestTopologyMultiClusterRuns exercises the genuinely clustered machine: 2
// clusters over 4 cores, nonzero hop latency, on every architecture. The runs
// must complete, verify functionally, and report one telemetry series per
// cluster.
func TestTopologyMultiClusterRuns(t *testing.T) {
	sched := fourCoreGroup()
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, res := runTopo(t, kind, sched, Options{
				Seed:      11,
				Topology:  &coproc.Topology{Clusters: 2, HopLatency: 2},
				Obs:       obs.Options{Attribution: true},
				Telemetry: &telemetry.Config{Window: 512},
			})
			if err := sys.CheckResults(2e-3); err != nil {
				t.Errorf("functional check: %v", err)
			}
			if got := len(sys.Clusters); got != 2 {
				t.Fatalf("built %d clusters, want 2", got)
			}
			for c := range res.Cores {
				if e := res.Cores[c].AttributionErr; e != "" {
					t.Errorf("core %d attribution broken: %s", c, e)
				}
			}
			var w telemetry.Window
			if !sys.Tele.CopyWindow(0, &w) {
				t.Fatal("no telemetry windows retained")
			}
			if len(w.Clusters) != 2 {
				t.Fatalf("telemetry window has %d cluster series, want 2", len(w.Clusters))
			}
			if total := w.Clusters[0].TotalBUs + w.Clusters[1].TotalBUs; total != w.TotalBUs {
				t.Errorf("cluster TotalBUs %d+%d != machine %d",
					w.Clusters[0].TotalBUs, w.Clusters[1].TotalBUs, w.TotalBUs)
			}
		})
	}
}

// TestTopologyFabricLatencyCosts pins the fabric model's direction on the
// architecture without adaptive feedback: a Private machine (fixed VLs, no
// lane-manager reactions) with nonzero hop latency can never beat the same
// machine with free routing. The elastic architectures are checked only for
// a timing effect — their lane managers react to the shifted timings, so the
// makespan is not monotone in the hop cost.
func TestTopologyFabricLatencyCosts(t *testing.T) {
	sched := fourCoreGroup()
	_, free := runTopo(t, Private, sched, Options{
		Seed: 11, Topology: &coproc.Topology{Clusters: 2},
	})
	_, slow := runTopo(t, Private, sched, Options{
		Seed: 11, Topology: &coproc.Topology{Clusters: 2, HopLatency: 16},
	})
	if slow.Cycles < free.Cycles {
		t.Errorf("hop latency sped Private up: free=%d slow=%d", free.Cycles, slow.Cycles)
	}
	if slow.Cycles == free.Cycles {
		t.Errorf("16-cycle hop latency had no effect on Private (both %d cycles)", free.Cycles)
	}
	_, oFree := runTopo(t, Occamy, sched, Options{
		Seed: 11, Topology: &coproc.Topology{Clusters: 2},
	})
	_, oSlow := runTopo(t, Occamy, sched, Options{
		Seed: 11, Topology: &coproc.Topology{Clusters: 2, HopLatency: 16},
	})
	if oFree.Cycles == oSlow.Cycles {
		t.Errorf("16-cycle hop latency had no observable effect on Occamy (both %d cycles)", oFree.Cycles)
	}
}

// TestTopologyFabricBandwidth saturates the fabric: with one accepted
// transmission per cluster per cycle, 4 cores funneling into 2 clusters must
// hit refusals, and the retry cycles must stay inside the attribution
// conservation invariant (they land in the dispatch-full bucket).
func TestTopologyFabricBandwidth(t *testing.T) {
	sched := fourCoreGroup()
	sys, res := runTopo(t, Occamy, sched, Options{
		Seed:     11,
		Topology: &coproc.Topology{Clusters: 2, HopBandwidth: 1},
		Obs:      obs.Options{Attribution: true},
	})
	if res.FabricRefusals == 0 {
		t.Error("bandwidth-1 fabric refused nothing")
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Errorf("functional check: %v", err)
	}
	for c := range res.Cores {
		if e := res.Cores[c].AttributionErr; e != "" {
			t.Errorf("core %d attribution broken under fabric contention: %s", c, e)
		}
	}
}

// imbalancedGroup puts two long-running workloads on cluster 0's cores and
// two tiny ones on cluster 1's, so cluster 1 drains early and the global
// balance pass sees a 2-tenant imbalance — the migration trigger.
func imbalancedGroup() workload.CoSchedule {
	r := workload.NewRegistry()
	long := *r.Kernel("dotProd")
	long.Elems, long.Repeats = 2000, 40
	tiny := *r.Kernel("dotProd")
	tiny.Elems, tiny.Repeats = 64, 1
	mk := func(name string, k workload.Kernel) *workload.Workload {
		return &workload.Workload{Name: name, Phases: []*workload.Kernel{&k}}
	}
	return workload.CoSchedule{Name: "imbalanced", W: []*workload.Workload{
		mk("long0", long), mk("long1", long), mk("tiny2", tiny), mk("tiny3", tiny),
	}}
}

// TestTopologyMigration drives an Occamy machine into a cross-cluster tenant
// migration and checks the run stays functionally correct afterwards.
func TestTopologyMigration(t *testing.T) {
	sys, res := runTopo(t, Occamy, imbalancedGroup(), Options{
		Seed:     7,
		Topology: &coproc.Topology{Clusters: 2},
	})
	if res.Migrations == 0 {
		t.Error("imbalanced 2-cluster run migrated nothing")
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Errorf("functional check after migration: %v", err)
	}
}

// TestTopologyClusterScopedFaults pins the fault-targeting semantics:
// exebu:clK fails units only in shard K, and an out-of-range cluster is a
// build error naming the topology.
func TestTopologyClusterScopedFaults(t *testing.T) {
	sched := fourCoreGroup()
	fs, err := fault.ParseSpec("exebu:cl1:2@3000+100000000")
	if err != nil {
		t.Fatal(err)
	}
	sys, res := runTopo(t, Occamy, sched, Options{
		Seed:     11,
		Topology: &coproc.Topology{Clusters: 2},
		Faults:   fs,
	})
	if got := sys.Clusters[0].Tbl().Failed(); got != 0 {
		t.Errorf("cluster 0 has %d failed BUs, fault targeted cluster 1", got)
	}
	if got := sys.Clusters[1].Tbl().Failed(); got != 2 {
		t.Errorf("cluster 1 has %d failed BUs, want 2", got)
	}
	if len(res.Recoveries) != 1 {
		t.Errorf("recorded %d recoveries, want 1", len(res.Recoveries))
	}

	_, err = Build(Occamy, sched, Options{
		Seed:     11,
		Topology: &coproc.Topology{Clusters: 2},
		Faults:   mustParse(t, "exebu:cl5@3000+1000"),
	})
	if err == nil {
		t.Error("cluster 5 fault on a 2-cluster topology built without error")
	}
}

func mustParse(t *testing.T, spec string) []fault.Fault {
	t.Helper()
	fs, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestTopologyValidationErrors covers the build-time topology checks with
// their actionable messages.
func TestTopologyValidationErrors(t *testing.T) {
	sched := fourCoreGroup()
	cases := []struct {
		name string
		topo coproc.Topology
	}{
		{"zero clusters", coproc.Topology{Clusters: 0}},
		{"indivisible cores", coproc.Topology{Clusters: 3}},
		{"negative bandwidth", coproc.Topology{Clusters: 2, HopBandwidth: -1}},
	}
	for _, tc := range cases {
		topo := tc.topo
		if _, err := Build(Occamy, sched, Options{Seed: 11, Topology: &topo}); err == nil {
			t.Errorf("%s: Build succeeded, want error", tc.name)
		} else {
			t.Logf("%s: %v", tc.name, err)
		}
	}
}

// TestTopologyCheckpointFork forks a genuinely clustered run (migrations,
// fabric latency) from a mid-run checkpoint and requires the fork to be
// bit-identical to the straight run — the second hard invariant's clustered
// counterpart.
func TestTopologyCheckpointFork(t *testing.T) {
	for _, kind := range []Kind{Occamy, FTS} {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, imbalancedGroup(), Options{
				Seed:      7,
				Topology:  &coproc.Topology{Clusters: 2, HopLatency: 2},
				Telemetry: &telemetry.Config{Window: 512},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunTo(2500); err != nil {
				t.Fatal(err)
			}
			st := sys.Checkpoint()
			if _, err := sys.Run(400_000_000); err != nil {
				t.Fatal(err)
			}
			cycles, digest := sys.Engine.Cycle(), sys.Tele.Digest()
			stats := sys.Stats.Snapshot()
			if err := sys.RestoreCheckpoint(st); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(400_000_000); err != nil {
				t.Fatal(err)
			}
			if got := sys.Engine.Cycle(); got != cycles {
				t.Errorf("forked run ended at %d, straight at %d", got, cycles)
			}
			if got := sys.Tele.Digest(); got != digest {
				t.Errorf("forked telemetry digest %#x, straight %#x", got, digest)
			}
			if diffs := diffStats(stats, sys.Stats.Snapshot()); len(diffs) > 0 {
				t.Errorf("%d stats diverge after fork, e.g. %s", len(diffs), diffs[0])
			}
		})
	}
}

// TestTopologySkipAheadClustered runs the skip-ahead differential on the
// clustered machine: legacy every-cycle ticking and fast-forwarding must stay
// bit-identical with routing, hop latency and migrations in play.
func TestTopologySkipAheadClustered(t *testing.T) {
	sched := imbalancedGroup()
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(legacy bool) (*System, *Result) {
				t.Helper()
				return runTopo(t, kind, sched, Options{
					Seed:       7,
					Topology:   &coproc.Topology{Clusters: 2, HopLatency: 2},
					LegacyTick: legacy,
					Obs:        obs.Options{Attribution: true},
				})
			}
			legSys, legRes := run(true)
			skipSys, skipRes := run(false)
			if l, s := legSys.Engine.Cycle(), skipSys.Engine.Cycle(); l != s {
				t.Errorf("engine cycle legacy=%d skip=%d", l, s)
			}
			if diffs := diffStats(legSys.Stats.Snapshot(), skipSys.Stats.Snapshot()); len(diffs) > 0 {
				t.Errorf("%d stats diverge, e.g. %s", len(diffs), diffs[0])
			}
			if !reflect.DeepEqual(legRes, skipRes) {
				t.Errorf("results diverge:\nlegacy: %+v\nskip:   %+v", legRes, skipRes)
			}
		})
	}
}

// TestTopologyScalesTo64Cores builds the headline machine — 64 cores over 4
// clusters — on every architecture and runs it briefly: construction, ticking
// and the per-cluster telemetry all have to hold up at the target scale.
func TestTopologyScalesTo64Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core build in -short mode")
	}
	sched := wideGroup(64)
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, sched, Options{
				Seed:      11,
				Topology:  &coproc.Topology{Clusters: 4, HopLatency: 2},
				Telemetry: &telemetry.Config{Window: 1024},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunTo(5000); err != nil {
				t.Fatal(err)
			}
			var w telemetry.Window
			if !sys.Tele.CopyWindow(0, &w) {
				t.Fatal("no telemetry windows retained")
			}
			if len(w.Clusters) != 4 {
				t.Fatalf("telemetry window has %d cluster series, want 4", len(w.Clusters))
			}
		})
	}
}

// wideGroup builds an n-core schedule by cycling a few Table 3 kernels with
// varied per-core trip counts — wide enough for the 64-core machines without
// the full registry's runtimes.
func wideGroup(n int) workload.CoSchedule {
	r := workload.NewRegistry()
	names := []string{"dotProd", "wsm51", "rho_eos1", "rgb2hsv"}
	var ws []*workload.Workload
	for c := 0; c < n; c++ {
		k := *r.Kernel(names[c%len(names)])
		k.Elems = 512 + 64*(c%4)
		k.Repeats = 20
		ws = append(ws, &workload.Workload{
			Name:   fmt.Sprintf("wide%d", c),
			Phases: []*workload.Kernel{&k},
		})
	}
	return workload.CoSchedule{Name: fmt.Sprintf("wide%d", n), W: ws}
}
