package arch

import (
	"fmt"

	"occamy/internal/obs"
)

// CoreResult carries one core's measurements from a run.
type CoreResult struct {
	Workload string
	// Cycles is the core's completion time (cycle of HALT).
	Cycles uint64
	// ComputeIssued / MemIssued are SIMD instruction counts.
	ComputeIssued uint64
	MemIssued     uint64
	// IssueRate is ComputeIssued per execution cycle — the paper's "SIMD
	// issue rate" over the whole run.
	IssueRate float64
	// PhaseIssueRates and PhaseCycles break the issue rate down per
	// compiler phase (Figure 2(f), Figure 14(c)).
	PhaseIssueRates []float64
	PhaseCycles     []uint64
	// RenameStalls is the number of cycles with issue blocked waiting for
	// free physical registers; RenameStallFrac normalizes by the core's
	// execution time (Figure 13).
	RenameStalls    uint64
	RenameStallFrac float64
	// Elems counts vector elements the core completed (strip-loop
	// advances) — the work metric the degradation experiment normalizes,
	// robust to runs that end early.
	Elems uint64
	// MonitorInsts / ReconfigInsts / DrainWait feed the Figure 15
	// overhead accounting; OverheadMonitorFrac and OverheadReconfigFrac
	// are fractions of the core's execution time.
	MonitorInsts         uint64
	ReconfigInsts        uint64
	DrainWait            uint64
	OverheadMonitorFrac  float64
	OverheadReconfigFrac float64
	// Attribution is the top-down cycle accounting for this core; nil when
	// the run was not observed (Options.Obs zero). When present its buckets
	// sum to Cycles exactly (the conservation invariant). AttributionErr
	// carries the trim/conservation failure when the invariant could not be
	// established — always a wiring bug, surfaced by tests.
	Attribution    *obs.CoreAttribution
	AttributionErr string
}

// Result carries a full run's measurements.
type Result struct {
	Arch  Kind
	Sched string
	// Cycles is the makespan (last core's completion).
	Cycles uint64
	// Utilization is the paper's SIMD_util over the whole run (§2).
	Utilization float64
	Cores       []CoreResult
	// Repartitions and Reconfigures count lane-manager plan computations
	// and successful <VL> changes (Occamy only).
	Repartitions uint64
	Reconfigures uint64
	// StaticVLs echoes the VLS partition used, when applicable.
	StaticVLs []int
	// Elems is the total vector elements completed across cores.
	Elems uint64
	// Recoveries logs injected faults and the cycle the architecture
	// finished adapting to each; empty for fault-free runs.
	Recoveries []Recovery
	// LinkDrops counts CPU→coproc transmissions dropped by XmitLink faults.
	LinkDrops uint64
	// Migrations counts completed tenant moves between co-processor
	// clusters, and FabricRefusals the transmissions the bandwidth-limited
	// fabric turned away; both stay zero on flat (single-cluster) builds.
	Migrations     uint64
	FabricRefusals uint64
}

func (s *System) collect() *Result {
	res := &Result{
		Arch:         s.Kind,
		Sched:        s.Sched.Name,
		Utilization:  s.Cplx.Utilization(),
		Repartitions: s.Stats.Get("coproc.repartitions"),
		Reconfigures: s.Stats.Get("coproc.reconfigures"),
		StaticVLs:    s.StaticVLs,
	}
	width := float64(8) // cpu.DefaultConfig().Width
	for c, core := range s.Cores {
		snap := s.Cplx.CoreSnapshot(c)
		cycles := core.HaltCycle()
		if la := s.Cplx.LastActive(c); la > cycles {
			cycles = la
		}
		if cycles > res.Cycles {
			res.Cycles = cycles
		}
		cr := CoreResult{
			Workload:      s.Sched.W[c].Name,
			Cycles:        cycles,
			ComputeIssued: snap.ComputeIssued,
			MemIssued:     snap.MemIssued,
			Elems:         core.Elems(),
			RenameStalls:  snap.RenameStalls,
			MonitorInsts:  s.Stats.Get(fmt.Sprintf("cpu%d.monitor_insts", c)),
			ReconfigInsts: s.Stats.Get(fmt.Sprintf("cpu%d.reconfig_insts", c)),
			DrainWait:     snap.DrainWait,
		}
		if cycles > 0 {
			cr.IssueRate = float64(snap.ComputeIssued) / float64(cycles)
			cr.RenameStallFrac = float64(snap.RenameStalls) / float64(cycles)
			cr.OverheadMonitorFrac = float64(cr.MonitorInsts) / width / float64(cycles)
			cr.OverheadReconfigFrac = (float64(cr.ReconfigInsts)/width + float64(cr.DrainWait)) / float64(cycles)
		}
		if p := s.Probe; p != nil {
			a := p.CoreAttribution(c)
			if err := a.TrimTrailingIdle(cycles); err != nil {
				cr.AttributionErr = err.Error()
			} else if err := a.CheckConservation(); err != nil {
				cr.AttributionErr = err.Error()
			}
			cr.Attribution = &a
		}
		nPhases := len(s.Compiled[c].Phases)
		for p := 0; p < nPhases; p++ {
			pc := s.Stats.Get(fmt.Sprintf("cpu%d.phase%d.cycles", c, p))
			var issued uint64
			if p+1 < len(snap.ComputeByPhase) {
				issued = snap.ComputeByPhase[p+1]
			}
			rate := 0.0
			if pc > 0 {
				rate = float64(issued) / float64(pc)
			}
			cr.PhaseCycles = append(cr.PhaseCycles, pc)
			cr.PhaseIssueRates = append(cr.PhaseIssueRates, rate)
		}
		res.Elems += cr.Elems
		res.Cores = append(res.Cores, cr)
	}
	res.LinkDrops = s.Cplx.LinkDrops()
	res.Migrations = s.Cplx.Migrations()
	res.FabricRefusals = s.Cplx.FabricRefusals()
	if s.faults != nil {
		res.Recoveries = s.faults.Recoveries()
	}
	return res
}
