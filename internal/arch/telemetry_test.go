package arch

import (
	"testing"

	"occamy/internal/fault"
	"occamy/internal/telemetry"
)

// teleDigest finishes a run's telemetry (closing the final partial window)
// and returns the deterministic digest over every retained window and event.
func teleDigest(sys *System) uint64 {
	sys.Tele.Flush(sys.Engine.Cycle())
	return sys.Tele.Digest()
}

// TestTelemetrySkipLegacyBitIdentical extends the engine's skip-ahead
// equivalence contract to the sampler: the windows and events a run produces
// must be bit-identical whether quiescent cycles are elided or simulated one
// by one. The sampler is a sim.Sleeper whose boundaries are forced wake
// points, so skip-ahead stays enabled around it — this test is what makes
// that arrangement safe.
func TestTelemetrySkipLegacyBitIdentical(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			pair := ckGroup()
			opts := Options{Seed: 11, Telemetry: &telemetry.Config{Window: 128}}

			fast, err := Build(kind, pair, opts)
			if err != nil {
				t.Fatal(err)
			}
			resFast := mustRun(t, fast)

			opts.LegacyTick = true
			slow, err := Build(kind, pair, opts)
			if err != nil {
				t.Fatal(err)
			}
			resSlow := mustRun(t, slow)

			if resFast.Cycles != resSlow.Cycles {
				t.Fatalf("runs diverge before telemetry: %d vs %d cycles", resFast.Cycles, resSlow.Cycles)
			}
			df, ds := teleDigest(fast), teleDigest(slow)
			if df != ds {
				t.Errorf("telemetry digest diverges: skip-ahead %#x, legacy %#x", df, ds)
			}
			if fast.Tele.Produced() == 0 {
				t.Error("run produced no telemetry windows; test is vacuous")
			}
		})
	}
}

// TestTelemetryCheckpointForkBitIdentical is the observability half of the
// shared-warm-up contract: a run forked from a checkpoint must produce
// bit-identical telemetry — windows, quantiles, fault/recovery events — to a
// straight run of the same configuration, and the same checkpoint must be
// reusable across fault schedules.
func TestTelemetryCheckpointForkBitIdentical(t *testing.T) {
	const warm = 500
	schedules := [][]fault.Fault{
		nil,
		{{Kind: fault.ExeBU, Count: 2, At: 700}},
		{{Kind: fault.ExeBU, Count: 1, At: 650, For: 1500}},
	}
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			pair := ckGroup()
			base := Options{Seed: 11, WireInjector: true, Telemetry: &telemetry.Config{Window: 128}}

			forked, err := Build(kind, pair, base)
			if err != nil {
				t.Fatal(err)
			}
			if err := forked.RunTo(warm); err != nil {
				t.Fatal(err)
			}
			snap := forked.Checkpoint()

			for i, faults := range schedules {
				opts := base
				opts.Faults = faults
				straight, err := Build(kind, pair, opts)
				if err != nil {
					t.Fatal(err)
				}
				mustRun(t, straight)
				want := teleDigest(straight)

				if err := forked.RestoreCheckpoint(snap); err != nil {
					t.Fatal(err)
				}
				forked.SetFaultSchedule(faults)
				mustRun(t, forked)
				if got := teleDigest(forked); got != want {
					t.Errorf("schedule %d: forked telemetry digest %#x, straight %#x", i, got, want)
				}
				if len(faults) > 0 {
					evs := forked.Tele.Events(nil)
					seen := false
					for _, e := range evs {
						if e.Kind == telemetry.EvFaultApply {
							seen = true
							break
						}
					}
					if !seen {
						t.Errorf("schedule %d: no %s event in forked log", i, telemetry.EvFaultApply)
					}
				}
			}
		})
	}
}
