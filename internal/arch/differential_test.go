package arch

import (
	"testing"

	"occamy/internal/workload"
)

// idle returns a minimal co-runner.
func idle() *workload.Workload {
	return &workload.Workload{Name: "idle", Phases: []*workload.Kernel{{
		Name: "idle", Slots: []workload.LoadSlot{{Stream: 0}},
		Stmts: []workload.Stmt{{Out: 1, E: workload.Mul(workload.Slot(0), workload.Const(2))}},
		Elems: 64, Repeats: 1,
	}}}
}

// runMode compiles w in the given mode on kind and returns the system after
// completion, with functional outputs in memory.
func runMode(t *testing.T, kind Kind, w *workload.Workload) *System {
	t.Helper()
	sched := workload.CoSchedule{Name: w.Name, W: []*workload.Workload{w, idle()}}
	sys, err := Build(kind, sched, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestMultiVersionEquivalence is the §6.3 multi-version correctness check as
// a differential test: for every Table 3 kernel, the compiler's
// non-vectorized variant (ModeScalar), the fixed-length vector variant
// (Private) and the elastic variant (Occamy, with live VL reconfiguration)
// must all produce results matching the host reference.
func TestMultiVersionEquivalence(t *testing.T) {
	r := workload.NewRegistry()
	for _, name := range r.KernelNames() {
		k := *r.Kernel(name)
		// Shrink for speed; keep a non-multiple-of-strip trip count so
		// the remainder paths execute.
		k.Elems = 517
		if k.Repeats > 4 {
			k.Repeats = 4
		}
		w := &workload.Workload{Name: "dk/" + name, Phases: []*workload.Kernel{&k}}
		for _, kind := range []Kind{Private, Occamy} {
			sys := runMode(t, kind, w)
			if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("%s on %s: %v", name, kind, err)
			}
		}
	}
}

// TestScalarVersionEquivalence exercises the §6.3 non-vectorized variant end
// to end: trip counts below the multi-version threshold make the runtime
// check take the scalar path, whose results must match the host reference
// (and, transitively, the vector path's).
func TestScalarVersionEquivalence(t *testing.T) {
	r := workload.NewRegistry()
	for _, name := range []string{"dotProd", "normL1", "normL2", "addWeight", "rgb2gray", "wsm5_wi", "rho_eos2", "select_atoms4"} {
		k := *r.Kernel(name)
		k.Elems = 97 // below ScalarThreshold: the runtime picks the scalar version
		k.Repeats = 2
		w := &workload.Workload{Name: "ds/" + name, Phases: []*workload.Kernel{&k}}
		sys := runMode(t, Private, w)
		if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
			t.Errorf("%s scalar version: %v", name, err)
		}
		// The scalar version must not have touched the co-processor.
		if sys.Coproc.ComputeIssued(0) != 0 {
			t.Errorf("%s: scalar version issued %d vector µops", name, sys.Coproc.ComputeIssued(0))
		}
	}
}

// TestElasticUnderForcedChurn forces frequent repartitioning by co-running
// two multi-phase workloads with many short phases, and checks functional
// correctness under the resulting reconfiguration churn (the §6.4
// obligations under stress).
func TestElasticUnderForcedChurn(t *testing.T) {
	r := workload.NewRegistry()
	mk := func(name string, kernels ...string) *workload.Workload {
		w := &workload.Workload{Name: name}
		for _, kn := range kernels {
			k := *r.Kernel(kn)
			k.Elems = 700
			k.Repeats = 1
			w.Phases = append(w.Phases, &k)
		}
		return w
	}
	// Alternating memory/compute phases on both cores: every boundary
	// triggers a repartition, and the peers' monitors chase the plan.
	w0 := mk("churn0", "step3d_uv2", "wsm51", "rho_eos4", "set_vbc1", "sff2")
	w1 := mk("churn1", "wsm52", "rho_eos6", "fitLine2D", "step2d1", "rgb2hsv")
	sched := workload.CoSchedule{Name: "churn", W: []*workload.Workload{w0, w1}}
	sys, err := Build(Occamy, sched, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Fatal(err)
	}
	if res.Repartitions < 10 {
		t.Fatalf("churn run repartitioned only %d times", res.Repartitions)
	}
	if res.Reconfigures < 10 {
		t.Fatalf("churn run reconfigured only %d times", res.Reconfigures)
	}
}

// TestReductionAcrossManyVLChanges pins the §6.4 reduction fix-up: a long
// dot product co-running against a phase-churning peer must survive every
// vector-length change with its partial sums intact.
func TestReductionAcrossManyVLChanges(t *testing.T) {
	r := workload.NewRegistry()
	dot := *r.Kernel("dotProd")
	dot.Elems = 6000
	dot.Repeats = 1
	w0 := &workload.Workload{Name: "red", Phases: []*workload.Kernel{&dot}}
	// The peer flips between compute- and memory-intensive phases,
	// changing the dot product's allocation repeatedly mid-loop.
	mkPeer := func() *workload.Workload {
		w := &workload.Workload{Name: "flipper"}
		for i := 0; i < 6; i++ {
			var k workload.Kernel
			if i%2 == 0 {
				k = *r.Kernel("wsm51")
				k.Elems, k.Repeats = 256, 2
			} else {
				k = *r.Kernel("rho_eos6")
				k.Elems, k.Repeats = 512, 1
			}
			w.Phases = append(w.Phases, &k)
		}
		return w
	}
	sched := workload.CoSchedule{Name: "redchurn", W: []*workload.Workload{w0, mkPeer()}}
	sys, err := Build(Occamy, sched, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Fatalf("reduction lost across VL changes: %v", err)
	}
}

// TestAllFourArchitecturesAgreeFunctionally cross-checks final memory
// contents between architectures: for store-only workloads the results must
// be bit-identical (same program-order float32 operations), independent of
// timing policy.
func TestAllFourArchitecturesAgreeFunctionally(t *testing.T) {
	r := workload.NewRegistry()
	k := *r.Kernel("rgb2gray")
	k.Elems = 600
	k.Repeats = 2
	w := &workload.Workload{Name: "agree", Phases: []*workload.Kernel{&k}}
	var ref []float32
	for _, kind := range Kinds {
		sys := runMode(t, kind, w)
		ph := sys.Compiled[0].Phases[0]
		var base uint64
		for id, s := range ph.Streams {
			if s.Output {
				base = s.Base
				_ = id
			}
		}
		got := sys.Hier.Mem.ReadF32Slice(base+4*4, 600)
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s diverges from Private at elem %d: %v vs %v", kind, i, got[i], ref[i])
			}
		}
	}
}
