package arch

import (
	"testing"

	"occamy/internal/workload"
)

// edgeTrips are trip counts around every code-generation boundary: the
// multi-version scalar threshold (128), the 32-lane full-width strip, the
// 4-lane granule, and the degenerate single-element loop.
var edgeTrips = []int{1, 2, 3, 4, 5, 31, 32, 33, 127, 128, 129, 255, 256, 257, 511, 513}

// edgeKernel is a two-input elementwise kernel with a non-trivial expression
// so wrong-lane or wrong-tail bugs change the output.
func edgeKernel(elems int) *workload.Kernel {
	return &workload.Kernel{
		Name:  "edge",
		Slots: []workload.LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts: []workload.Stmt{{Out: 2, E: workload.Add(
			workload.Mul(workload.Slot(0), workload.Const(1.5)),
			workload.Div(workload.Slot(1), workload.Const(3)),
		)}},
		Elems: elems, Repeats: 2,
	}
}

// TestEdgeTripCountsAllArchitectures runs every boundary trip count on every
// architecture and verifies the results numerically — the predicated tail,
// the scalar fallback and the full-strip paths all have to agree.
func TestEdgeTripCountsAllArchitectures(t *testing.T) {
	for _, elems := range edgeTrips {
		w := &workload.Workload{Name: "edge", Phases: []*workload.Kernel{edgeKernel(elems)}}
		for _, kind := range Kinds {
			sys := runMode(t, kind, w)
			if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("elems=%d on %s: %v", elems, kind, err)
			}
		}
	}
}

// TestEdgeTripReductions runs the same boundaries through the reduction
// path, whose fix-up code is the most VL-sensitive part of the compiler.
func TestEdgeTripReductions(t *testing.T) {
	for _, elems := range edgeTrips {
		k := &workload.Kernel{
			Name:      "edgered",
			Reduction: true,
			Slots:     []workload.LoadSlot{{Stream: 0}, {Stream: 1}},
			Stmts: []workload.Stmt{{Out: -1, E: workload.Mul(
				workload.Slot(0), workload.Slot(1))}},
			Elems: elems, Repeats: 2,
		}
		w := &workload.Workload{Name: "edgered", Phases: []*workload.Kernel{k}}
		for _, kind := range []Kind{Private, Occamy} {
			sys := runMode(t, kind, w)
			if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("reduction elems=%d on %s: %v", elems, kind, err)
			}
		}
	}
}

// TestEdgeTripCoRunning pairs a single-element loop with a long peer on the
// elastic architecture: the tiny phase's prologue/epilogue must leave the
// lane pool consistent for the survivor.
func TestEdgeTripCoRunning(t *testing.T) {
	tiny := &workload.Workload{Name: "tiny", Phases: []*workload.Kernel{edgeKernel(1)}}
	r := workload.NewRegistry()
	peer := r.Workload("spec/WL17").Scaled(0.25)
	sched := workload.CoSchedule{Name: "tiny+peer", W: []*workload.Workload{tiny, peer}}
	sys, err := Build(Occamy, sched, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Fatal(err)
	}
}

// TestZeroTripRejected pins that degenerate kernels are rejected up front
// rather than miscompiled.
func TestZeroTripRejected(t *testing.T) {
	k := edgeKernel(0)
	if err := k.Validate(); err == nil {
		t.Fatal("zero-trip kernel accepted")
	}
	k = edgeKernel(4)
	k.Repeats = 0
	if err := k.Validate(); err == nil {
		t.Fatal("zero-repeat kernel accepted")
	}
}
