package arch

import (
	"bytes"
	"testing"

	"occamy/internal/obs"
)

// TestCycleAttributionConservation is the ISSUE's headline invariant: on
// every architecture, every core's cycle-attribution buckets sum to exactly
// that core's reported Cycles — no cycle lost, none double-counted. It
// doubles as a wiring check on the hardware models' signals (a trim failure
// means a model signaled activity after its core supposedly finished).
func TestCycleAttributionConservation(t *testing.T) {
	sched := testSched(t)
	for _, kind := range Kinds {
		sys, err := Build(kind, sched, Options{Seed: 7, Obs: obs.Options{Attribution: true}})
		if err != nil {
			t.Fatalf("Build(%s): %v", kind, err)
		}
		res, err := sys.Run(40_000_000)
		if err != nil {
			t.Fatalf("Run(%s): %v", kind, err)
		}
		for c, cr := range res.Cores {
			a := cr.Attribution
			if a == nil {
				t.Fatalf("%s core %d: no attribution despite Obs enabled", kind, c)
			}
			if cr.AttributionErr != "" {
				t.Fatalf("%s core %d: attribution error: %s", kind, c, cr.AttributionErr)
			}
			if sum := a.Sum(); sum != cr.Cycles {
				t.Errorf("%s core %d: buckets sum to %d, core ran %d cycles\nbuckets: %v",
					kind, c, sum, cr.Cycles, a.Buckets)
			}
			if a.Total != cr.Cycles {
				t.Errorf("%s core %d: attribution total %d != cycles %d", kind, c, a.Total, cr.Cycles)
			}
			if a.Get(obs.BucketVecIssue) == 0 {
				t.Errorf("%s core %d: no vec-issue cycles on a SIMD workload", kind, c)
			}
		}
		// Architecture-specific spot checks on the taxonomy.
		switch kind {
		case Occamy:
			drain := res.Cores[0].Attribution.Get(obs.BucketDrainReconfig) +
				res.Cores[1].Attribution.Get(obs.BucketDrainReconfig)
			if res.Reconfigures > 0 && drain == 0 {
				t.Errorf("Occamy: %d reconfigures but no drain-reconfig cycles", res.Reconfigures)
			}
		case FTS:
			stalls := res.Cores[0].Attribution.Get(obs.BucketRenameStall) +
				res.Cores[1].Attribution.Get(obs.BucketRenameStall)
			if res.Cores[0].RenameStalls+res.Cores[1].RenameStalls > 0 && stalls == 0 {
				t.Errorf("FTS: rename stalls counted but no rename-stall cycles attributed")
			}
		}
	}
}

// TestAttributionDeterministic: observing a run must not change its timing,
// and two observed runs must attribute identically.
func TestAttributionDeterministic(t *testing.T) {
	sched := testSched(t)
	run := func(o obs.Options) *Result {
		sys, err := Build(Occamy, sched, Options{Seed: 7, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(40_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(obs.Options{})
	obs1 := run(obs.Options{Attribution: true})
	obs2 := run(obs.Options{Attribution: true})
	if plain.Cycles != obs1.Cycles {
		t.Fatalf("observing changed timing: %d vs %d cycles", plain.Cycles, obs1.Cycles)
	}
	for c := range obs1.Cores {
		if *obs1.Cores[c].Attribution != *obs2.Cores[c].Attribution {
			t.Fatalf("core %d: attribution not deterministic:\n%v\n%v",
				c, obs1.Cores[c].Attribution, obs2.Cores[c].Attribution)
		}
	}
	if plain.Cores[0].Attribution != nil {
		t.Fatal("unobserved run has attribution")
	}
}

// TestPerfettoExportFromSystem exercises the full trace path: build with a
// sink, run, write, validate against the format contract.
func TestPerfettoExportFromSystem(t *testing.T) {
	sched := testSched(t)
	sink := obs.NewPerfetto(0)
	sys, err := Build(Occamy, sched, Options{Seed: 7, Obs: obs.Options{Attribution: true, Sink: sink}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(40_000_000); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Fatal("run emitted no trace events")
	}
	var buf bytes.Buffer
	if _, err := sink.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePerfetto(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("trace fails format contract: %v", err)
	}
	if sink.Dropped() > 0 {
		t.Logf("note: %d events dropped by cap", sink.Dropped())
	}
}
