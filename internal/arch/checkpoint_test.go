package arch

import (
	"fmt"
	"reflect"
	"testing"

	"occamy/internal/fault"
	"occamy/internal/obs"
	"occamy/internal/workload"
)

// ckGroup is a two-core group sized so a full run takes a few thousand
// cycles: long enough that a mid-run checkpoint leaves real work on both
// sides, short enough to sweep all four architectures in the differential
// tests below.
func ckGroup() workload.CoSchedule {
	r := workload.NewRegistry()
	dot := *r.Kernel("dotProd")
	dot.Elems, dot.Repeats = 2000, 2
	tri := *r.Kernel("wsm51")
	tri.Elems, tri.Repeats = 512, 2
	return workload.CoSchedule{Name: "ck", W: []*workload.Workload{
		{Name: "ck.dot", Phases: []*workload.Kernel{&dot}},
		{Name: "ck.tri", Phases: []*workload.Kernel{&tri}},
	}}
}

// fingerprint renders everything a run can observably produce: the full
// Result (cycles, per-core measurements, attribution, recoveries), the
// complete counter registry, and the lane-event log. Two runs with equal
// fingerprints are bit-identical for every consumer in this repository.
// Attribution is a pointer field, so it is dereferenced into the fingerprint
// separately (fmt would otherwise print its address).
func fingerprint(sys *System, res *Result) string {
	flat := *res
	flat.Cores = append([]CoreResult(nil), res.Cores...)
	attrs := make([]string, 0, len(flat.Cores))
	for i := range flat.Cores {
		if a := flat.Cores[i].Attribution; a != nil {
			attrs = append(attrs, fmt.Sprintf("%+v", *a))
		}
		flat.Cores[i].Attribution = nil
	}
	return fmt.Sprintf("res=%+v\nattr=%v\nstats=%v\nevents=%+v",
		&flat, attrs, sys.Stats.Snapshot(), sys.Coproc.LaneEvents())
}

// mustRun runs to completion, failing the test on any engine error.
func mustRun(t *testing.T, sys *System) *Result {
	t.Helper()
	res, err := sys.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckpointForkBitIdentical is the core checkpoint/restore contract:
// for every architecture and several fault schedules, warming a system up
// with an empty schedule, checkpointing, swapping the schedule in and
// resuming must be bit-identical to a straight run built with that schedule
// from cycle zero — and the same checkpoint must be reusable for every
// schedule (the shared-warm-up sweep pattern).
func TestCheckpointForkBitIdentical(t *testing.T) {
	const warm = 500 // checkpoint cycle, before every schedule's first fault
	schedules := [][]fault.Fault{
		nil, // the fault-free point forks from the same checkpoint
		{{Kind: fault.ExeBU, Count: 2, At: 700}},
		{{Kind: fault.ExeBU, Count: 1, At: 650, For: 1500},
			{Kind: fault.Bandwidth, Level: "dram", Factor: 0.5, Count: 1, At: 900, For: 1200}},
		{{Kind: fault.RegBank, Core: 0, Count: 64, At: 600, For: 2000},
			{Kind: fault.XmitLink, Core: 1, At: 800, For: 1000}},
	}
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			pair := ckGroup()
			forked, err := Build(kind, pair, Options{Seed: 11, WireInjector: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := forked.RunTo(warm); err != nil {
				t.Fatal(err)
			}
			snap := forked.Checkpoint()
			if snap.Cycle() != warm {
				t.Fatalf("checkpoint at cycle %d, want %d", snap.Cycle(), warm)
			}
			for i, faults := range schedules {
				straight, err := Build(kind, pair, Options{Seed: 11, WireInjector: true, Faults: faults})
				if err != nil {
					t.Fatal(err)
				}
				want := fingerprint(straight, mustRun(t, straight))

				if err := forked.RestoreCheckpoint(snap); err != nil {
					t.Fatal(err)
				}
				if got := forked.Engine.Cycle(); got != warm {
					t.Fatalf("schedule %d: restore left clock at %d, want %d", i, got, warm)
				}
				forked.SetFaultSchedule(faults)
				got := fingerprint(forked, mustRun(t, forked))
				if got != want {
					t.Errorf("schedule %d: forked run diverges from straight run\nstraight:\n%s\nforked:\n%s", i, want, got)
				}
			}
		})
	}
}

// TestCheckpointMidFaultWindow restores into the middle of live transient
// fault windows: the checkpoint is taken while a bandwidth derate, a link
// fault, a register cut and a transient ExeBU failure are all in effect, so
// the snapshot must carry the applied effects AND the injector's pending
// reverts. Re-running from the checkpoint twice must match a straight run.
func TestCheckpointMidFaultWindow(t *testing.T) {
	faults := []fault.Fault{
		{Kind: fault.ExeBU, Count: 2, At: 350, For: 3000},
		{Kind: fault.Bandwidth, Level: "dram", Factor: 0.6, Count: 1, At: 300, For: 2000},
		{Kind: fault.RegBank, Core: 0, Count: 64, At: 320, For: 2500},
		{Kind: fault.XmitLink, Core: 1, At: 400, For: 1500},
	}
	const mid = 1000 // inside every window above
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			pair := ckGroup()
			straight, err := Build(kind, pair, Options{Seed: 7, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(straight, mustRun(t, straight))

			forked, err := Build(kind, pair, Options{Seed: 7, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			if err := forked.RunTo(mid); err != nil {
				t.Fatal(err)
			}
			snap := forked.Checkpoint()
			for rerun := 0; rerun < 2; rerun++ {
				if err := forked.RestoreCheckpoint(snap); err != nil {
					t.Fatal(err)
				}
				if got := fingerprint(forked, mustRun(t, forked)); got != want {
					t.Errorf("rerun %d: mid-window fork diverges\nstraight:\n%s\nforked:\n%s", rerun, want, got)
				}
			}
		})
	}
}

// TestCheckpointMidSkipWindow composes snapshots with the skip-ahead engine:
// on a fault-free, skip-enabled run, RunTo lands the clock inside quiescent
// windows the straight run jumps over in one piece (the jump is clamped at
// the target), so the checkpoint splits a skip. The resumed run — and a
// restore + rerun — must still be bit-identical to the unsplit straight run,
// including the engine's total skipped-cycle accounting.
func TestCheckpointMidSkipWindow(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			pair := ckGroup()
			opts := Options{Seed: 13, Obs: obs.Options{Attribution: true}}
			straight, err := Build(kind, pair, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !straight.Engine.SkipAhead() {
				t.Fatal("skip-ahead unexpectedly disabled")
			}
			want := fingerprint(straight, mustRun(t, straight))

			forked, err := Build(kind, pair, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Several RunTo stops raise the odds of landing mid-window at
			// least once per architecture; all are well inside the shortest
			// architecture's makespan (FTS completes around cycle 1170).
			for _, stop := range []uint64{137, 611, 1050} {
				if err := forked.RunTo(stop); err != nil {
					t.Fatal(err)
				}
				if got := forked.Engine.Cycle(); got != stop {
					t.Fatalf("RunTo(%d) stopped at %d", stop, got)
				}
			}
			snap := forked.Checkpoint()
			for rerun := 0; rerun < 2; rerun++ {
				if err := forked.RestoreCheckpoint(snap); err != nil {
					t.Fatal(err)
				}
				if got := fingerprint(forked, mustRun(t, forked)); got != want {
					t.Errorf("rerun %d: mid-skip fork diverges\nstraight:\n%s\nforked:\n%s", rerun, want, got)
				}
			}
			// Skip coverage legitimately differs between the two runs (the
			// RunTo stops split windows and reset the probe backoff); what
			// matters is that the forked run really exercised the skip path.
			if straight.Engine.SkippedCycles() == 0 || forked.Engine.SkippedCycles() == 0 {
				t.Errorf("skip path not exercised: straight skipped %d, forked %d",
					straight.Engine.SkippedCycles(), forked.Engine.SkippedCycles())
			}
		})
	}
}

// TestCheckpointStatsCellStability pins the counter-registry contract that
// the zero-allocation hot path depends on: *uint64 cells handed out before a
// checkpoint must remain the live cells after Restore (written in place, not
// replaced), so components caching them keep counting into the registry.
func TestCheckpointStatsCellStability(t *testing.T) {
	sys, err := Build(Occamy, ckGroup(), Options{Seed: 3, WireInjector: true})
	if err != nil {
		t.Fatal(err)
	}
	cell := sys.Stats.Counter("vec.hit")
	if err := sys.RunTo(500); err != nil {
		t.Fatal(err)
	}
	snap := sys.Checkpoint()
	mustRun(t, sys)
	final := *cell
	if final == 0 {
		t.Fatal("vec.hit never moved; pick a hotter counter")
	}
	if err := sys.RestoreCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats.Get("vec.hit"); got != *cell {
		t.Fatalf("restored registry (%d) disagrees with pre-checkpoint cell (%d)", got, *cell)
	}
	if *cell >= final {
		t.Fatalf("restore did not rewind the cell: %d, final was %d", *cell, final)
	}
	mustRun(t, sys)
	if *cell != final {
		t.Fatalf("cell stopped tracking the registry after restore: %d, want %d", *cell, final)
	}
	if !reflect.DeepEqual(sys.Stats.Counter("vec.hit"), cell) {
		t.Fatal("Counter returned a different cell after restore")
	}
}
