package arch

import (
	"testing"

	"occamy/internal/coproc"
	"occamy/internal/obs"
	"occamy/internal/telemetry"
	"occamy/internal/workload"
)

// allocGroup is a two-core group whose steady state is long: both workloads
// loop the same kernel for tens of thousands of cycles, so a measurement
// window warmed past the cold-start allocations (queue ramp-up, first lane
// plan, first timeline buckets) sits deep inside a single phase on every
// architecture.
func allocGroup() workload.CoSchedule {
	r := workload.NewRegistry()
	dot := *r.Kernel("dotProd")
	dot.Elems, dot.Repeats = 2000, 30
	tri := *r.Kernel("wsm51")
	tri.Elems, tri.Repeats = 512, 30
	return workload.CoSchedule{Name: "alloc", W: []*workload.Workload{
		{Name: "alloc.dot", Phases: []*workload.Kernel{&dot}},
		{Name: "alloc.tri", Phases: []*workload.Kernel{&tri}},
	}}
}

// measureSteadyAllocs warms sys past cycle 2000 (so the third 1000-cycle
// timeline bucket already exists — bucket growth is a legitimate, amortized
// allocation that happens once per 1000 cycles, outside any steady-state
// window) and then measures allocations over 11 windows of 80 real ticks
// each. The 880 measured cycles span [2001, 2881): no bucket boundary is
// crossed, so a nonzero result means real per-cycle garbage.
func measureSteadyAllocs(t *testing.T, sys *System) float64 {
	t.Helper()
	// The measurement must exercise the genuine per-cycle path, not the
	// fast-forward jumps (those have their own accounting and are measured
	// by the engine benchmarks).
	sys.Engine.SetSkipAhead(false)
	if err := sys.RunTo(2001); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(10, func() {
		for i := 0; i < 80; i++ {
			sys.Engine.Step()
		}
	})
}

// TestSteadyStateZeroAlloc is the hot-path allocation contract: once a system
// is warm, ticking it allocates nothing — on any of the four architectures.
// This is what makes multi-hour sweeps GC-quiet (DESIGN.md "Performance").
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, allocGroup(), Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if avg := measureSteadyAllocs(t, sys); avg != 0 {
				t.Errorf("%s: steady-state tick allocates %.2f objects per 80-cycle window, want 0", kind, avg)
			}
		})
	}
}

// TestSteadyStateZeroAllocProfiled repeats the contract with full cycle
// attribution enabled: the observability probe charges every cycle to a
// category and feeds the latency histograms, and none of that may allocate
// either (the probe's buckets and histogram bins are fixed-size).
func TestSteadyStateZeroAllocProfiled(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, allocGroup(), Options{Seed: 5, Obs: obs.Options{Attribution: true}})
			if err != nil {
				t.Fatal(err)
			}
			if avg := measureSteadyAllocs(t, sys); avg != 0 {
				t.Errorf("%s: profiled steady-state tick allocates %.2f objects per 80-cycle window, want 0", kind, avg)
			}
		})
	}
}

// TestSteadyStateZeroAllocTelemetry repeats the contract with the telemetry
// sampler live. The 64-cycle window puts a boundary (a full sample: bucket
// deltas, histogram diffs, quantiles, ring-slot writes) inside every measured
// 80-tick span — sampling itself must be allocation-free, not just the
// between-boundary ticks.
func TestSteadyStateZeroAllocTelemetry(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, allocGroup(), Options{
				Seed:      5,
				Telemetry: &telemetry.Config{Window: 64},
			})
			if err != nil {
				t.Fatal(err)
			}
			if avg := measureSteadyAllocs(t, sys); avg != 0 {
				t.Errorf("%s: telemetry steady-state tick allocates %.2f objects per 80-cycle window, want 0", kind, avg)
			}
		})
	}
}

// TestSteadyStateZeroAllocTopo64 extends the contract to the headline
// clustered machine: 64 cores over 4 co-processor clusters with a
// latency/bandwidth-limited fabric. Routing, bandwidth accounting, the
// two-level repartition and any tenant migrations all happen inside the
// measured windows and none of it may allocate.
func TestSteadyStateZeroAllocTopo64(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, wideGroup(64), Options{
				Seed:     5,
				Topology: &coproc.Topology{Clusters: 4, HopLatency: 2, HopBandwidth: 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			if avg := measureSteadyAllocs(t, sys); avg != 0 {
				t.Errorf("%s: 64-core clustered steady-state tick allocates %.2f objects per 80-cycle window, want 0", kind, avg)
			}
		})
	}
}

// TestSteadyStateZeroAllocTopo64Telemetry repeats the clustered contract with
// the windowed sampler live, including the per-cluster gauge series.
func TestSteadyStateZeroAllocTopo64Telemetry(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, wideGroup(64), Options{
				Seed:      5,
				Topology:  &coproc.Topology{Clusters: 4, HopLatency: 2, HopBandwidth: 8},
				Telemetry: &telemetry.Config{Window: 64},
			})
			if err != nil {
				t.Fatal(err)
			}
			if avg := measureSteadyAllocs(t, sys); avg != 0 {
				t.Errorf("%s: 64-core clustered telemetry tick allocates %.2f objects per 80-cycle window, want 0", kind, avg)
			}
		})
	}
}

// TestSteadyStateZeroAllocFaultPath covers the legacy every-cycle path with a
// wired (but quiet) injector and an armed watchdog — the configuration the
// degradation sweep forks under. The injector's Poll and the watchdog's
// sampled progress scans must both be allocation-free.
func TestSteadyStateZeroAllocFaultPath(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := Build(kind, allocGroup(), Options{Seed: 5, WireInjector: true, StallCycles: 25_000})
			if err != nil {
				t.Fatal(err)
			}
			if avg := measureSteadyAllocs(t, sys); avg != 0 {
				t.Errorf("%s: fault-path steady-state tick allocates %.2f objects per 80-cycle window, want 0", kind, avg)
			}
		})
	}
}
