package arch

import (
	"encoding/json"
	"testing"

	"occamy/internal/workload"
)

// runTuned builds and runs one workload pair with the given overrides.
func runTuned(t *testing.T, kind Kind, m *MachineTuning) (*System, *Result) {
	t.Helper()
	r := workload.NewRegistry()
	sched := workload.CoSchedule{
		Name: "tuned",
		W: []*workload.Workload{
			r.Workload("spec/WL20").Scaled(0.25),
			r.Workload("spec/WL17").Scaled(0.25),
		},
	}
	sys, err := Build(kind, sched, Options{Seed: 1, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

// TestMachineTuningDRAMLatency verifies that slowing DRAM down lengthens a
// memory-bound run and never breaks functional correctness.
func TestMachineTuningDRAMLatency(t *testing.T) {
	_, base := runTuned(t, Occamy, nil)
	sysSlow, slow := runTuned(t, Occamy, &MachineTuning{
		DRAMLatencyCycles: 400,
		DRAMBytesPerCycle: 4,
	})
	if slow.Cores[0].Cycles <= base.Cores[0].Cycles {
		t.Fatalf("slower DRAM did not lengthen the memory core: %d vs %d",
			slow.Cores[0].Cycles, base.Cores[0].Cycles)
	}
	if err := sysSlow.CheckResults(2e-3); err != nil {
		t.Fatalf("tuned machine broke functional correctness: %v", err)
	}
}

// TestMachineTuningPhysRegs verifies that a starved physical-register file
// increases rename stalls on the temporally-shared architecture.
func TestMachineTuningPhysRegs(t *testing.T) {
	_, base := runTuned(t, FTS, nil)
	_, tiny := runTuned(t, FTS, &MachineTuning{PhysRegs: 96})
	// Note no makespan assertion: on FTS, starving one core's rename can
	// shorten the makespan by reducing interference on the shared issue
	// budget — the same unfairness pathology Figure 13 documents.
	baseStalls := base.Cores[0].RenameStallFrac + base.Cores[1].RenameStallFrac
	tinyStalls := tiny.Cores[0].RenameStallFrac + tiny.Cores[1].RenameStallFrac
	if tinyStalls < baseStalls {
		t.Fatalf("fewer physical registers reduced rename stalls: %.3f vs %.3f",
			tinyStalls, baseStalls)
	}
}

// runSolo runs the full-size memory workload alone on Private with the given
// overrides (at reduced scale the streams are cache-resident and memory knobs
// are invisible).
func runSolo(t *testing.T, m *MachineTuning) *Result {
	t.Helper()
	r := workload.NewRegistry()
	sched := workload.CoSchedule{Name: "solo", W: []*workload.Workload{r.Workload("spec/WL20")}}
	sys, err := Build(Private, sched, Options{Seed: 1, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMachineTuningPrefetch verifies the prefetch-degree knob reaches the
// vector cache: changing it must change a full-size streaming run's timing.
// (Direction is workload-dependent — a lone streamer has spare bandwidth, so
// a lower degree can win by not over-fetching; under co-running pressure the
// deep degree wins. Both regimes are covered by the Figure 14 experiments.)
func TestMachineTuningPrefetch(t *testing.T) {
	base := runSolo(t, nil)
	weak := runSolo(t, &MachineTuning{VecPrefetchDegree: 1})
	if weak.Cores[0].Cycles == base.Cores[0].Cycles {
		t.Fatalf("prefetch degree override had no effect (%d cycles)", base.Cores[0].Cycles)
	}
}

// TestMachineTuningVecCacheSize verifies that shrinking the shared vector
// cache below a compute workload's reused footprint makes it thrash. (A pure
// streamer never reuses a line, so the capacity knob needs a workload that
// re-reads its streams; the compute kernels reuse an ~8 KB footprint, so the
// override drops below that.)
func TestMachineTuningVecCacheSize(t *testing.T) {
	r := workload.NewRegistry()
	run := func(m *MachineTuning) *Result {
		sched := workload.CoSchedule{Name: "cap", W: []*workload.Workload{r.Workload("spec/WL17")}}
		sys, err := Build(Private, sched, Options{Seed: 1, Machine: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(400_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	tiny := run(&MachineTuning{VecCacheKB: 2})
	if tiny.Cores[0].Cycles <= base.Cores[0].Cycles {
		t.Fatalf("2 KB vector cache did not slow the reuse-heavy workload: %d vs %d",
			tiny.Cores[0].Cycles, base.Cores[0].Cycles)
	}
}

// TestMachineTuningComputeLat verifies pipeline-latency overrides reach the
// ExeBUs: a much deeper FP pipe lengthens a compute-bound core.
func TestMachineTuningComputeLat(t *testing.T) {
	_, base := runTuned(t, Private, nil)
	sysDeep, deep := runTuned(t, Private, &MachineTuning{ComputeLat: 24, DivLat: 60})
	if deep.Cores[1].Cycles <= base.Cores[1].Cycles {
		t.Fatalf("deeper FP pipe did not lengthen the compute core: %d vs %d",
			deep.Cores[1].Cycles, base.Cores[1].Cycles)
	}
	if err := sysDeep.CheckResults(2e-3); err != nil {
		t.Fatalf("latency override broke correctness: %v", err)
	}
}

// TestMachineTuningJSON pins the file format the occamy-sim -machine flag
// accepts.
func TestMachineTuningJSON(t *testing.T) {
	src := `{
	  "dram_latency_cycles": 120,
	  "dram_bytes_per_cycle": 16,
	  "vec_cache_kb": 64,
	  "vec_prefetch_degree": 4,
	  "l2_mb": 4,
	  "phys_regs": 96,
	  "lhq": 24,
	  "stq": 24,
	  "compute_lat": 6,
	  "div_lat": 18,
	  "compute_issue": 1,
	  "mem_issue": 1
	}`
	var m MachineTuning
	if err := json.Unmarshal([]byte(src), &m); err != nil {
		t.Fatal(err)
	}
	want := MachineTuning{
		DRAMLatencyCycles: 120, DRAMBytesPerCycle: 16,
		VecCacheKB: 64, VecPrefetchDegree: 4, L2MB: 4,
		PhysRegs: 96, LHQ: 24, STQ: 24,
		ComputeLat: 6, DivLat: 18, ComputeIssue: 1, MemIssue: 1,
	}
	if m != want {
		t.Fatalf("decoded %+v, want %+v", m, want)
	}
	// A fully-specified tuning must still produce a correct, runnable
	// machine.
	sys, _ := runTuned(t, Occamy, &m)
	if err := sys.CheckResults(2e-3); err != nil {
		t.Fatal(err)
	}
	// Round-trip: zero fields stay omitted.
	out, err := json.Marshal(&MachineTuning{PhysRegs: 96})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"phys_regs":96}` {
		t.Fatalf("omitempty not honoured: %s", out)
	}
}

// TestMachineTuningNilIsDefault pins that a nil tuning changes nothing.
func TestMachineTuningNilIsDefault(t *testing.T) {
	_, a := runTuned(t, Occamy, nil)
	_, b := runTuned(t, Occamy, &MachineTuning{})
	if a.Cycles != b.Cycles || a.Utilization != b.Utilization {
		t.Fatalf("empty tuning changed the run: %d/%.4f vs %d/%.4f",
			a.Cycles, a.Utilization, b.Cycles, b.Utilization)
	}
}

// TestMachineTuningPropertyCorrectness draws random tunings from sane
// hardware ranges and verifies the simulated machine still produces
// host-verified results on the elastic architecture — the simulator's
// functional layer must be timing-independent across the whole design space.
func TestMachineTuningPropertyCorrectness(t *testing.T) {
	gen := func(seed uint64) *MachineTuning {
		// Deterministic xorshift so failures replay.
		x := seed*2654435761 + 1
		next := func(lo, hi int) int {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return lo + int(x%uint64(hi-lo+1))
		}
		return &MachineTuning{
			DRAMLatencyCycles: uint64(next(20, 400)),
			DRAMBytesPerCycle: float64(next(4, 64)),
			VecCacheKB:        4 << next(0, 6), // 4..256, power of two
			VecPrefetchDegree: next(1, 16),
			L2MB:              1 << next(0, 3), // 1..8, power of two
			PhysRegs:          next(80, 320),
			LHQ:               next(8, 64),
			STQ:               next(8, 64),
			ComputeLat:        uint64(next(1, 16)),
			DivLat:            uint64(next(4, 40)),
			ComputeIssue:      next(1, 2),
			MemIssue:          next(1, 2),
		}
	}
	r := workload.NewRegistry()
	for seed := uint64(1); seed <= 12; seed++ {
		m := gen(seed)
		sched := workload.CoSchedule{
			Name: "prop",
			W: []*workload.Workload{
				r.Workload("spec/WL20").Scaled(0.1),
				r.Workload("spec/WL17").Scaled(0.1),
			},
		}
		sys, err := Build(Occamy, sched, Options{Seed: seed, Machine: m})
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, m, err)
		}
		if _, err := sys.Run(400_000_000); err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, m, err)
		}
		if err := sys.CheckResults(2e-3); err != nil {
			t.Errorf("seed %d (%+v): %v", seed, m, err)
		}
	}
}

// TestMachineTuningValidate pins the rejection of unrealizable machines.
func TestMachineTuningValidate(t *testing.T) {
	cases := []struct {
		m  MachineTuning
		ok bool
	}{
		{MachineTuning{}, true},
		{MachineTuning{VecCacheKB: 64, L2MB: 4, PhysRegs: 64}, true},
		{MachineTuning{VecCacheKB: 96}, false}, // not a power of two
		{MachineTuning{L2MB: 5}, false},        // not a power of two
		{MachineTuning{PhysRegs: 48}, false},   // below the architectural floor
		{MachineTuning{LHQ: -1}, false},
		{MachineTuning{DRAMBytesPerCycle: -8}, false},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if c.ok && err != nil {
			t.Errorf("%+v rejected: %v", c.m, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v accepted", c.m)
		}
	}
	var nilTuning *MachineTuning
	if err := nilTuning.Validate(); err != nil {
		t.Errorf("nil tuning rejected: %v", err)
	}
	// Build surfaces the error rather than panicking deep in the caches.
	r := workload.NewRegistry()
	sched := workload.CoSchedule{Name: "v", W: []*workload.Workload{r.Workload("spec/WL17").Scaled(0.1)}}
	if _, err := Build(Occamy, sched, Options{Machine: &MachineTuning{L2MB: 5}}); err == nil {
		t.Fatal("Build accepted a 5 MB L2")
	}
}
