package arch

import (
	"fmt"
	"sort"
	"strings"

	"occamy/internal/coproc"
	"occamy/internal/fault"
	"occamy/internal/obs"
	"occamy/internal/telemetry"
)

// Recovery records how the system reacted to one injected fault: the cycle it
// fired and the cycle the architecture finished adapting to it. For
// architectures that react combinationally (issue gates, register cuts,
// bandwidth derating) Done == At; for the lane-repartitioning reactions
// (Occamy's elastic re-plan, VLS's drain-gated revocation) Done - At is the
// paper-relevant "time to repartition".
type Recovery struct {
	Fault fault.Fault `json:"fault"`
	At    uint64      `json:"at"`
	Done  uint64      `json:"done"`
	// Pending marks a recovery the run ended before completing (e.g. the
	// victim livelocked and the watchdog fired first).
	Pending bool `json:"pending,omitempty"`
}

// TimeToRepartition is Done - At (0 while pending).
func (r Recovery) TimeToRepartition() uint64 {
	if r.Pending {
		return 0
	}
	return r.Done - r.At
}

// faultCtl is the architecture layer's fault.Handler: it translates fault
// events into the reaction each Figure 1 architecture is capable of.
//
//   - Occamy excludes the units from the ResourceTbl and repartitions; the
//     elastic binaries' monitors observe the fresh <decision> values and
//     reconfigure themselves at the next strip boundary, so the machine
//     converges onto the survivors with no special-case code.
//   - VLS has no reconfiguration protocol, so the controller revokes the
//     victim core's dead granules by forcing its VL down at the core's next
//     strip boundary (in-flight work drains at the old width, §4.2.2). The
//     VL is never force-grown back after a transient repairs: fixed-mode
//     binaries carry no safe-point protocol, so a mid-kernel width increase
//     would resurrect stale loop invariants. A victim whose whole partition
//     died reads zero lanes at its next strip and stalls — the watchdog
//     reports it (the honest Figure 1(c) outcome).
//   - Private cannot move work between its hard-partitioned halves at all;
//     a victim core limps along on its surviving units, modeled as an issue
//     gate of period ceil(2*half/(half-f)) — strictly worse than VLS's
//     proportional loss because the fixed-width ISA must crack every
//     full-width op over the survivors. Losing the whole half is fatal for
//     that core.
//   - FTS time-shares the full array, so any dead unit degrades every core:
//     a shared issue gate of period ceil(2*N/(N-f)).
//
// RegBank, Bandwidth and XmitLink faults are architecture-independent and map
// directly onto the co-processor / memory hooks.
type faultCtl struct {
	sys *System
	n   int
	// perCoreFailed assigns failed ExeBUs to cores' static partitions
	// (round-robin over the per-cluster cursor) for the architectures whose
	// loss is per-core (Private, VLS). The assignment is a modeling
	// abstraction — which physical unit died is irrelevant, only how many
	// per partition — and it walks only the cores built onto the failed
	// cluster, since a shard's dead units cannot shrink a partition living
	// on another shard.
	perCoreFailed []int
	cursors       []int // one round-robin cursor per cluster
	recs          []Recovery
	open          []int // indices into recs of recoveries not yet Done
}

func newFaultCtl(sys *System) *faultCtl {
	n := len(sys.Cores)
	return &faultCtl{
		sys: sys, n: n,
		perCoreFailed: make([]int, n),
		cursors:       make([]int, len(sys.Clusters)),
	}
}

// clusterOf resolves a fault's target cluster: an explicit clN names that
// shard, AnyCluster defaults to cluster 0 (deterministic, and the flat
// machine's only choice).
func (ctl *faultCtl) clusterOf(f fault.Fault) int {
	if f.Cluster == fault.AnyCluster {
		return 0
	}
	return f.Cluster
}

// members returns the half-open core-ID range built onto cluster k. Fault
// accounting uses the build-time grouping, not the migrated assignment: the
// static per-core loss model applies to Private/VLS, which never migrate.
func (ctl *faultCtl) members(k int) (lo, hi int) {
	g := ctl.n / len(ctl.sys.Clusters)
	return k * g, (k + 1) * g
}

// Recoveries returns the reaction log so far.
func (ctl *faultCtl) Recoveries() []Recovery {
	out := make([]Recovery, len(ctl.recs))
	copy(out, ctl.recs)
	for _, i := range ctl.open {
		out[i].Pending = true
	}
	return out
}

// Apply implements fault.Handler.
func (ctl *faultCtl) Apply(f fault.Fault, now uint64) {
	rec := Recovery{Fault: f, At: now, Done: now}
	switch f.Kind {
	case fault.ExeBU:
		k := ctl.clusterOf(f)
		cp := ctl.sys.Clusters[k]
		actual := cp.Tbl().Fail(f.Count)
		lo, hi := ctl.members(k)
		for i := 0; i < actual; i++ {
			ctl.perCoreFailed[lo+ctl.cursors[k]]++
			ctl.cursors[k] = (ctl.cursors[k] + 1) % (hi - lo)
		}
		ctl.react(k)
		switch ctl.sys.Kind {
		case Occamy, VLS:
			// Completion is detected by Poll (lane plans settle later).
			ctl.open = append(ctl.open, len(ctl.recs))
		}
	case fault.RegBank:
		// The core's physical register file travels with the core, not the
		// fabric: cut its pool on every shard so the loss follows it
		// through migrations (foreign rows rename nothing, so only the
		// home cut is ever observable).
		for _, cp := range ctl.sys.Clusters {
			cp.CutRegs(f.Core, f.Count)
		}
	case fault.Bandwidth:
		ctl.bwTarget(f.Level).SetBWFactor(f.Factor)
	case fault.XmitLink:
		if f.Cluster == fault.AnyCluster {
			// The core's dispatch path is faulty wherever it transmits.
			for _, cp := range ctl.sys.Clusters {
				cp.SetLinkFault(f.Core, f.Delay, now)
			}
		} else {
			ctl.sys.Clusters[f.Cluster].SetLinkFault(f.Core, f.Delay, now)
		}
	}
	ctl.recs = append(ctl.recs, rec)
	ctl.sys.Tele.Emit(now, telemetry.EvFaultApply, f.Core, uint64(f.Count), f.String())
}

// Revert implements fault.Handler (end of a transient window).
func (ctl *faultCtl) Revert(f fault.Fault, now uint64) {
	switch f.Kind {
	case fault.ExeBU:
		k := ctl.clusterOf(f)
		cp := ctl.sys.Clusters[k]
		actual := cp.Tbl().Repair(f.Count)
		lo, hi := ctl.members(k)
		for i := 0; i < actual; i++ {
			ctl.cursors[k] = (ctl.cursors[k] - 1 + (hi - lo)) % (hi - lo)
			ctl.perCoreFailed[lo+ctl.cursors[k]]--
		}
		ctl.react(k)
	case fault.RegBank:
		for _, cp := range ctl.sys.Clusters {
			cp.RestoreRegs(f.Core, f.Count)
		}
	case fault.Bandwidth:
		ctl.bwTarget(f.Level).SetBWFactor(1)
	case fault.XmitLink:
		if f.Cluster == fault.AnyCluster {
			for _, cp := range ctl.sys.Clusters {
				cp.ClearLinkFault(f.Core)
			}
		} else {
			ctl.sys.Clusters[f.Cluster].ClearLinkFault(f.Core)
		}
	}
	ctl.sys.Tele.Emit(now, telemetry.EvFaultRevert, f.Core, uint64(f.Count), "")
}

// react propagates cluster k's failed-unit census into each architecture's
// control state. Called after every Fail/Repair on that shard.
func (ctl *faultCtl) react(k int) {
	cp := ctl.sys.Clusters[k]
	tbl := cp.Tbl()
	lo, hi := ctl.members(k)
	switch ctl.sys.Kind {
	case Occamy:
		// Fresh plan over the survivors; elastic monitors do the rest.
		cp.Manager().Repartition()
	case VLS:
		// Schedule strip-boundary revocations down to the surviving share
		// of each static partition; SetForcedVL cancels instead of growing,
		// so a transient repair never force-grows a fixed-mode binary.
		for c := lo; c < hi; c++ {
			want := ctl.sys.StaticVLs[c] - ctl.perCoreFailed[c]
			if want < 0 {
				want = 0
			}
			cp.SetForcedVL(c, want)
		}
	case Private:
		for c := lo; c < hi; c++ {
			half := ctl.sys.StaticVLs[c]
			cp.SetIssueGate(c, gatePeriod(half, ctl.perCoreFailed[c]))
		}
	case FTS:
		// Only this shard's tenants time-share its dead units.
		cp.SetSharedGate(gatePeriod(tbl.Total(), tbl.Failed()))
	}
}

// gatePeriod returns the issue-gate period modeling a fixed-width data path
// running on width-f survivors: issue every ceil(2w/(w-f))-th cycle, the
// factor 2 charging the cracking/sequencing overhead a non-elastic machine
// pays to route fixed-width ops around dead units. 0 failures lifts the gate;
// losing everything is fatal.
func gatePeriod(width, failed int) uint64 {
	switch {
	case failed <= 0 || width <= 0:
		return 0
	case failed >= width:
		return coproc.GateDead
	default:
		alive := width - failed
		return uint64((2*width + alive - 1) / alive)
	}
}

// Poll implements fault.Handler: it runs every cycle while the injector is
// registered. The reactions themselves land elsewhere (the manager's
// repartition floor, the strip-boundary revocations in the co-processor);
// Poll only watches for the lane plan to settle so recoveries can be
// timestamped.
func (ctl *faultCtl) Poll(now uint64) {
	ctl.closeRecoveries(now)
}

// PollQuiescent implements fault.SleepHandler: with no recovery in flight,
// closeRecoveries returns immediately and Poll is a pure no-op, so the
// injector may declare quiescence between scheduled events. Recoveries only
// open inside Apply (a ticked cycle) and only close inside Poll (also a
// ticked cycle: an open recovery keeps the injector live every cycle).
func (ctl *faultCtl) PollQuiescent() bool { return len(ctl.open) == 0 }

// closeRecoveries marks open lane-repartition recoveries done once the lane
// plan has settled onto the survivors.
func (ctl *faultCtl) closeRecoveries(now uint64) {
	if len(ctl.open) == 0 {
		return
	}
	settled := false
	switch ctl.sys.Kind {
	case Occamy:
		// Every shard's plan must fit its survivors (tenants counted on
		// their current home, so a mid-migration machine is not "settled"
		// early).
		settled = true
		for k, cp := range ctl.sys.Clusters {
			tbl := cp.Tbl()
			sum, active := 0, 0
			for c, core := range ctl.sys.Cores {
				sum += tbl.VL(c)
				if !core.Halted() && ctl.sys.Cplx.Home(c) == k {
					active++
				}
			}
			target := tbl.Usable()
			if active > target {
				// The repartition floor grants one granule per active core
				// even when fewer survive (time-shared); allow that much.
				target = active
			}
			if sum > target {
				settled = false
				break
			}
		}
	case VLS:
		settled = true
	vls:
		for _, cp := range ctl.sys.Clusters {
			for c := range ctl.sys.Cores {
				if cp.ForcedVLPending(c) {
					settled = false
					break vls
				}
			}
		}
	}
	if !settled {
		return
	}
	for _, i := range ctl.open {
		ctl.recs[i].Done = now
		ctl.sys.Tele.Emit(now, telemetry.EvRecoveryDone,
			ctl.recs[i].Fault.Core, now-ctl.recs[i].At, "")
	}
	ctl.open = ctl.open[:0]
}

func (ctl *faultCtl) bwTarget(level string) interface{ SetBWFactor(float64) } {
	switch level {
	case "l2":
		return ctl.sys.Hier.L2
	case "vec":
		return ctl.sys.Hier.VecCache
	default:
		return ctl.sys.Hier.DRAM
	}
}

// DiagnosticDump is the structured "what was the machine doing" snapshot the
// watchdog and cycle-budget paths emit instead of a bare error: per-core
// scalar and co-processor pipeline state, the lane table, top-down cycle
// attribution when the run was observed, and the fault log.
type DiagnosticDump struct {
	Arch   string `json:"arch"`
	Sched  string `json:"sched"`
	Cycle  uint64 `json:"cycle"`
	Reason string `json:"reason"`

	Cores []CoreDiag `json:"cores"`
	// Lanes is the machine-wide lane-table view (sums across shards); on a
	// clustered machine ClusterLanes breaks it down per shard.
	Lanes        LaneDiag   `json:"lanes"`
	ClusterLanes []LaneDiag `json:"cluster_lanes,omitempty"`
	// Attribution maps obs bucket names to charged cycles per core; nil
	// when the run was not observed.
	Attribution []map[string]uint64 `json:"attribution,omitempty"`
	Recoveries  []Recovery          `json:"recoveries,omitempty"`
	LinkDrops   uint64              `json:"link_drops,omitempty"`
}

// CoreDiag is one core's slice of the dump.
type CoreDiag struct {
	ID     int                 `json:"id"`
	PC     int                 `json:"pc"`
	Halted bool                `json:"halted"`
	Parked bool                `json:"parked"`
	Insts  uint64              `json:"insts"`
	Pipe   coproc.PipeSnapshot `json:"pipe"`
}

// LaneDiag is the ResourceTbl's slice of the dump.
type LaneDiag struct {
	Total     int   `json:"total"`
	Failed    int   `json:"failed"`
	Usable    int   `json:"usable"`
	AL        int   `json:"al"`
	VLs       []int `json:"vls"`
	Decisions []int `json:"decisions"`
}

// Diagnose snapshots the machine state for a failed run. err is the engine
// error that ended it (watchdog stall or cycle-budget exhaustion).
func (s *System) Diagnose(err error) *DiagnosticDump {
	now := s.Engine.Cycle()
	d := &DiagnosticDump{
		Arch: s.Kind.String(), Sched: s.Sched.Name, Cycle: now, Reason: err.Error(),
	}
	d.Lanes = LaneDiag{Total: s.Cplx.Total(), Failed: s.Cplx.Failed(), Usable: s.Cplx.Usable(), AL: s.Cplx.AL()}
	for c, core := range s.Cores {
		home := s.Clusters[s.Cplx.Home(c)]
		d.Lanes.VLs = append(d.Lanes.VLs, s.Cplx.VL(c))
		d.Lanes.Decisions = append(d.Lanes.Decisions, s.Cplx.Decision(c))
		d.Cores = append(d.Cores, CoreDiag{
			ID: c, PC: core.PC(), Halted: core.Halted(), Parked: core.Parked(),
			Insts: core.Progress(), Pipe: home.PipelineSnapshot(c, now),
		})
	}
	if len(s.Clusters) > 1 {
		for _, cp := range s.Clusters {
			tbl := cp.Tbl()
			d.ClusterLanes = append(d.ClusterLanes, LaneDiag{
				Total: tbl.Total(), Failed: tbl.Failed(), Usable: tbl.Usable(), AL: tbl.AL(),
			})
		}
	}
	if p := s.Probe; p != nil {
		for c := range s.Cores {
			a := p.CoreAttribution(c)
			m := make(map[string]uint64)
			for b := 0; b < obs.NumBuckets; b++ {
				if a.Buckets[b] > 0 {
					m[obs.Bucket(b).String()] = a.Buckets[b]
				}
			}
			d.Attribution = append(d.Attribution, m)
		}
	}
	if s.faults != nil {
		d.Recoveries = s.faults.Recoveries()
	}
	d.LinkDrops = s.Cplx.LinkDrops()
	s.Tele.Emit(now, telemetry.EvWatchdog, -1, 0, d.Reason)
	return d
}

// String renders the dump for terminal output.
func (d *DiagnosticDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== diagnostic dump: %s / %s at cycle %d ===\n", d.Arch, d.Sched, d.Cycle)
	fmt.Fprintf(&b, "reason: %s\n", d.Reason)
	fmt.Fprintf(&b, "lanes: total=%d failed=%d usable=%d AL=%d vl=%v decision=%v\n",
		d.Lanes.Total, d.Lanes.Failed, d.Lanes.Usable, d.Lanes.AL, d.Lanes.VLs, d.Lanes.Decisions)
	for k, cl := range d.ClusterLanes {
		fmt.Fprintf(&b, "  cluster%d: total=%d failed=%d usable=%d AL=%d\n",
			k, cl.Total, cl.Failed, cl.Usable, cl.AL)
	}
	for _, c := range d.Cores {
		fmt.Fprintf(&b, "core%d: pc=%d halted=%v parked=%v insts=%d\n",
			c.ID, c.PC, c.Halted, c.Parked, c.Insts)
		p := c.Pipe
		fmt.Fprintf(&b, "  coproc: queue=%d renamed=%d head=%s inflight=%d lhq=%d stq=%d pool=%d",
			p.QueueLen, p.Renamed, p.HeadOp, p.Inflight, p.LHQ, p.STQ, p.PoolHeld)
		fmt.Fprintf(&b, " vl=%d decision=%d drainWait=%d lastActive=%d\n",
			p.VL, p.Decision, p.DrainWait, p.LastActive)
		if c.ID < len(d.Attribution) {
			b.WriteString("  topdown:")
			m := d.Attribution[c.ID]
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%d", k, m[k])
			}
			b.WriteByte('\n')
		}
	}
	for _, r := range d.Recoveries {
		if r.Pending {
			fmt.Fprintf(&b, "fault %s: applied at %d, recovery PENDING\n", r.Fault, r.At)
		} else {
			fmt.Fprintf(&b, "fault %s: applied at %d, recovered in %d cycles\n",
				r.Fault, r.At, r.TimeToRepartition())
		}
	}
	if d.LinkDrops > 0 {
		fmt.Fprintf(&b, "dropped transmissions: %d\n", d.LinkDrops)
	}
	b.WriteString("===")
	return b.String()
}

// DiagError wraps the engine error that ended a run together with the
// machine-state dump taken at that moment. errors.Is/As see through it to the
// underlying sim.StallError / sim.BudgetError.
type DiagError struct {
	Dump *DiagnosticDump
	Err  error
}

func (e *DiagError) Error() string { return e.Err.Error() }
func (e *DiagError) Unwrap() error { return e.Err }
