package arch

import (
	"testing"

	"occamy/internal/workload"
)

// TestMonitorPeriodFunctionalEquivalence checks that the Fig. 9 monitor's
// polling period is a pure performance knob: results are identical (same
// program-order float32 operations) for any period.
func TestMonitorPeriodFunctionalEquivalence(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.MotivatingPair(r).Scaled(0.2)
	var ref []float32
	for _, period := range []int{1, 3, 16, 128} {
		sys, err := Build(Occamy, sched, Options{Seed: 7, MonitorPeriod: period})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(100_000_000); err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		if err := sys.CheckResults(2e-3); err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		ph := sys.Compiled[1].Phases[0]
		var base uint64
		for _, s := range ph.Streams {
			if s.Output {
				base = s.Base
			}
		}
		got := sys.Hier.Mem.ReadF32Slice(base+16, 256)
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("period %d diverges at elem %d", period, i)
			}
		}
	}
}

// TestDefaultVLVariantsAreCorrect checks the compiler-selected default
// vector length only affects timing, never results.
func TestDefaultVLVariantsAreCorrect(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.CaseStudyPair(r, 1).Scaled(0.15)
	for _, d := range []int{1, 2, 3} {
		sys, err := Build(Occamy, sched, Options{Seed: 7, DefaultVL: d})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(100_000_000); err != nil {
			t.Fatalf("default %d: %v", d, err)
		}
		if err := sys.CheckResults(2e-3); err != nil {
			t.Fatalf("default %d: %v", d, err)
		}
	}
}

// TestCustomExeBUCount runs on a non-default lane budget (12 granules) to
// exercise the scaling path of §4.2.1.
func TestCustomExeBUCount(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.MotivatingPair(r).Scaled(0.15)
	for _, kind := range Kinds {
		sys, err := Build(kind, sched, Options{Seed: 7, ExeBUs: 12})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := sys.Run(100_000_000); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := sys.CheckResults(2e-3); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

// TestVLSStaticVLOverride pins the StaticVLs option used by the Figure 14
// lane sweeps.
func TestVLSStaticVLOverride(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.MotivatingPair(r).Scaled(0.15)
	sys, err := Build(VLS, sched, Options{Seed: 7, StaticVLs: []int{6, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Coproc.VL(0) != 6 || sys.Coproc.VL(1) != 2 {
		t.Fatalf("override not applied: VLs = %d/%d", sys.Coproc.VL(0), sys.Coproc.VL(1))
	}
	if _, err := sys.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Fatal(err)
	}
}

// TestSeedIndependentTiming pins the design property that timing is
// data-independent (kernels have no data-dependent branches), which the
// public API relies on for reproducibility claims.
func TestSeedIndependentTiming(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.CaseStudyPair(r, 4).Scaled(0.15)
	var cycles uint64
	for _, seed := range []uint64{1, 42, 31337} {
		sys, err := Build(Occamy, sched, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if cycles == 0 {
			cycles = res.Cycles
		} else if res.Cycles != cycles {
			t.Fatalf("seed %d changed timing: %d vs %d", seed, res.Cycles, cycles)
		}
	}
}
