// Package arch assembles complete simulated systems for the four SIMD
// architectures of Figure 1 and runs co-scheduled workloads on them:
//
//	Private — core-private SIMD lanes (Figure 1(a), e.g. Intel Xeon)
//	FTS     — temporal sharing of the full array (Figure 1(b), e.g. Apple M1)
//	VLS     — static spatial sharing (Figure 1(c))
//	Occamy  — elastic spatial sharing (Figure 1(d), this paper)
//
// All four share the same scalar cores, memory hierarchy and co-processor
// structure; only the sharing policy (vector lengths, issue arbitration, VRF
// namespace, EM-SIMD enablement) differs, mirroring §7.1's "same amount of
// SIMD resources for fair comparison".
package arch

import (
	"fmt"

	"occamy/internal/compiler"
	"occamy/internal/coproc"
	"occamy/internal/cpu"
	"occamy/internal/fault"
	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/mem"
	"occamy/internal/obs"
	"occamy/internal/roofline"
	"occamy/internal/sim"
	"occamy/internal/telemetry"
	"occamy/internal/workload"
)

// Kind selects the sharing architecture.
type Kind uint8

// The four architectures of Figure 1.
const (
	Private Kind = iota
	FTS
	VLS
	Occamy
)

// Kinds lists all four, in the paper's presentation order.
var Kinds = []Kind{Private, FTS, VLS, Occamy}

func (k Kind) String() string {
	switch k {
	case Private:
		return "Private"
	case FTS:
		return "FTS"
	case VLS:
		return "VLS"
	case Occamy:
		return "Occamy"
	}
	return "Kind?"
}

// Options tunes a system build.
type Options struct {
	// ExeBUs overrides the granule count (default: 4 per core = Table 4's
	// 32 lanes for two cores).
	ExeBUs int
	// MonitorPeriod is passed to the compiler (Occamy only).
	MonitorPeriod int
	// DefaultVL is the compiler-selected prologue default (Occamy only).
	DefaultVL int
	// Seed initializes workload data.
	Seed uint64
	// Model overrides the roofline model used by the lane manager and the
	// VLS static planner.
	Model *roofline.Model
	// FTSPhysRegs overrides the shared physical register pool size for
	// FTS (ablation; default coproc.DefaultConfig().PhysRegs).
	FTSPhysRegs int
	// StaticVLs overrides VLS's roofline-derived partition (granules per
	// core); used by the Figure 14(a) fixed-lane sweeps.
	StaticVLs []int
	// Machine overrides selected hardware parameters (nil = Table 4).
	Machine *MachineTuning
	// Obs selects observability (cycle attribution, histograms, Perfetto
	// trace). The zero value disables it entirely: no probe is built and
	// the hardware models keep nil probe pointers.
	Obs obs.Options
	// LegacyTick forces the every-cycle simulation path, disabling the
	// engine's skip-ahead fast-forwarding. Results are bit-identical
	// either way (enforced by the engine differential tests); the switch
	// exists for A/B validation and debugging.
	LegacyTick bool
	// Faults schedules deterministic fault injections (internal/fault).
	// A non-empty list registers the injector and disables skip-ahead
	// (faulted runs are not required to be skip-equivalent).
	Faults []fault.Fault
	// WireInjector registers the fault injector (and the architecture's
	// fault controller) even when Faults is empty, so a checkpointed run
	// can swap schedules in later with SetFaultSchedule. Like a non-empty
	// Faults list it forces the legacy every-cycle engine path, keeping the
	// run bit-identical to any faulted fork taken from its checkpoints.
	WireInjector bool
	// StallCycles arms the engine's forward-progress watchdog: a run where
	// no component makes progress for this many cycles aborts with a
	// sim.StallError (wrapped in a DiagError carrying the machine dump).
	// 0 leaves the watchdog disarmed.
	StallCycles uint64
	// Telemetry, when non-nil, builds a windowed time-series sampler
	// (internal/telemetry) registered after the probe so each window sees
	// fully attributed cycles. It implies Obs.Attribution (the sampler
	// reads the per-core bucket deltas). The sampler is a sim.Sleeper, so
	// skip-ahead stays enabled; boundaries become forced wake points.
	Telemetry *telemetry.Config
	// Topology builds a clustered machine: Topology.Clusters co-processor
	// instances, each owning an even shard of ExeBUs, reached through the
	// routed CPU→coproc fabric (coproc.Complex) with per-hop latency and
	// per-cluster acceptance bandwidth. nil keeps the flat single-instance
	// wiring. A 1-cluster topology with zero hop latency is bit-identical
	// to nil (differential-tested): the routed path adds structure, never
	// timing, until the topology says otherwise.
	Topology *coproc.Topology
}

// MachineTuning overrides hardware parameters relative to the Table 4
// defaults; zero fields keep the default. It exists so experiments (and the
// occamy-sim -machine flag) can explore the design space without rebuilding.
type MachineTuning struct {
	// Memory system.
	DRAMLatencyCycles uint64  `json:"dram_latency_cycles,omitempty"`
	DRAMBytesPerCycle float64 `json:"dram_bytes_per_cycle,omitempty"`
	VecCacheKB        int     `json:"vec_cache_kb,omitempty"`
	VecPrefetchDegree int     `json:"vec_prefetch_degree,omitempty"`
	L2MB              int     `json:"l2_mb,omitempty"`
	// Co-processor.
	PhysRegs     int    `json:"phys_regs,omitempty"`
	LHQ          int    `json:"lhq,omitempty"`
	STQ          int    `json:"stq,omitempty"`
	ComputeLat   uint64 `json:"compute_lat,omitempty"`
	DivLat       uint64 `json:"div_lat,omitempty"`
	ComputeIssue int    `json:"compute_issue,omitempty"`
	MemIssue     int    `json:"mem_issue,omitempty"`
}

// Validate rejects overrides the machine cannot realize: capacities must
// keep power-of-two set counts (the vector cache is 8-way with 128 B lines,
// so VecCacheKB must be a power of two; the L2 is 16-way with 64 B lines, so
// L2MB must be), the physical-register file must leave rename headroom over
// the 32 architectural registers, and nothing may go negative.
func (m *MachineTuning) Validate() error {
	if m == nil {
		return nil
	}
	pow2 := func(v int) bool { return v&(v-1) == 0 }
	if m.VecCacheKB > 0 && !pow2(m.VecCacheKB) {
		return fmt.Errorf("arch: vec_cache_kb %d must be a power of two", m.VecCacheKB)
	}
	if m.L2MB > 0 && !pow2(m.L2MB) {
		return fmt.Errorf("arch: l2_mb %d must be a power of two", m.L2MB)
	}
	if m.PhysRegs > 0 && m.PhysRegs < 64 {
		return fmt.Errorf("arch: phys_regs %d leaves no rename headroom (need >= 64)", m.PhysRegs)
	}
	if m.LHQ < 0 || m.STQ < 0 || m.ComputeIssue < 0 || m.MemIssue < 0 ||
		m.VecCacheKB < 0 || m.L2MB < 0 || m.VecPrefetchDegree < 0 || m.PhysRegs < 0 {
		return fmt.Errorf("arch: negative machine override")
	}
	if m.DRAMBytesPerCycle < 0 {
		return fmt.Errorf("arch: negative DRAM bandwidth")
	}
	return nil
}

// apply merges the non-zero overrides into the hierarchy and co-processor
// configurations.
func (m *MachineTuning) apply(h *mem.HierarchyConfig, c *coproc.Config) {
	if m == nil {
		return
	}
	if m.DRAMLatencyCycles > 0 {
		h.DRAM.LatencyCycles = m.DRAMLatencyCycles
	}
	if m.DRAMBytesPerCycle > 0 {
		h.DRAM.BytesPerCycle = m.DRAMBytesPerCycle
	}
	if m.VecCacheKB > 0 {
		h.VecCache.SizeBytes = m.VecCacheKB << 10
	}
	if m.VecPrefetchDegree > 0 {
		h.VecCache.PrefetchDegree = m.VecPrefetchDegree
	}
	if m.L2MB > 0 {
		h.L2.SizeBytes = m.L2MB << 20
	}
	if m.PhysRegs > 0 {
		c.PhysRegs = m.PhysRegs
	}
	if m.LHQ > 0 {
		c.LHQ = m.LHQ
	}
	if m.STQ > 0 {
		c.STQ = m.STQ
	}
	if m.ComputeLat > 0 {
		c.ComputeLat = m.ComputeLat
	}
	if m.DivLat > 0 {
		c.DivLat = m.DivLat
	}
	if m.ComputeIssue > 0 {
		c.ComputeIssue = m.ComputeIssue
	}
	if m.MemIssue > 0 {
		c.MemIssue = m.MemIssue
	}
}

// System is a fully wired simulated machine executing one co-schedule.
type System struct {
	Kind   Kind
	Engine *sim.Engine
	Hier   *mem.Hierarchy
	// Coproc is the first (on a flat build, the only) co-processor
	// instance. Code that reasons about one shard (the oversubscription
	// scheduler, single-cluster tests) uses it directly; machine-wide
	// views go through Cplx.
	Coproc *coproc.Coproc
	// Clusters lists every co-processor instance in fabric order; len 1 on
	// a flat build (Clusters[0] == Coproc).
	Clusters []*coproc.Coproc
	// Cplx is the machine-wide co-processor view: the routed Complex over
	// Clusters. Every build has one (a flat machine wraps its single
	// instance in a 1-cluster complex) so reports, diagnostics and
	// telemetry aggregate uniformly; the scalar cores are wired through the
	// Complex — fabric delays, bandwidth, migration — only when
	// Options.Topology was non-nil.
	Cplx *coproc.Complex
	// Topo echoes Options.Topology (nil on flat builds).
	Topo     *coproc.Topology
	Cores    []*cpu.Core
	Compiled []*compiler.Compiled
	Sched    workload.CoSchedule
	Stats    *sim.Stats
	// StaticVLs records the VLS partition (granules per core) for reports.
	StaticVLs []int
	// Probe is the observability hub; nil when Options.Obs was zero.
	Probe *obs.Probe
	// Tele is the telemetry sampler; nil when Options.Telemetry was nil.
	// A nil *Sampler is safe to use (every method no-ops), so callers can
	// wire it unconditionally.
	Tele *telemetry.Sampler
	// faults is the fault controller; nil when Options.Faults was empty
	// and WireInjector was off.
	faults *faultCtl
	// inj is the registered fault injector (nil alongside faults).
	inj *fault.Injector
	// seed is kept for deterministic victim resolution in SetFaultSchedule.
	seed uint64
}

// Build compiles the co-schedule's workloads for kind and wires the system.
func Build(kind Kind, sched workload.CoSchedule, opts Options) (*System, error) {
	n := sched.Cores()
	if n == 0 {
		return nil, fmt.Errorf("arch: empty co-schedule")
	}
	if opts.ExeBUs == 0 {
		opts.ExeBUs = 4 * n
	}
	model := roofline.Default()
	if opts.Model != nil {
		model = *opts.Model
	}

	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}

	topo := coproc.Topology{Clusters: 1}
	if opts.Topology != nil {
		topo = *opts.Topology
		if err := topo.Validate(n, opts.ExeBUs); err != nil {
			return nil, fmt.Errorf("arch: %w", err)
		}
	}
	clusters := topo.Clusters

	for i, f := range opts.Faults {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("arch: fault %d: %w", i, err)
		}
		if f.Core != fault.AnyCore && f.Core >= n {
			return nil, fmt.Errorf("arch: fault %d: core %d out of range (%d cores)", i, f.Core, n)
		}
		if f.Cluster != fault.AnyCluster && (f.Cluster < 0 || f.Cluster >= clusters) {
			return nil, fmt.Errorf("arch: fault %d: cluster %d out of range (topology has %d cluster(s))",
				i, f.Cluster, clusters)
		}
		if opts.Topology != nil && f.Kind == fault.ExeBU && f.Count > opts.ExeBUs/clusters {
			return nil, fmt.Errorf("arch: fault %d: exebu count %d exceeds the %d-unit cluster shard",
				i, f.Count, opts.ExeBUs/clusters)
		}
	}

	engine := sim.NewEngine()
	stats := engine.Stats()
	hcfg := mem.DefaultHierarchyConfig(n)
	ccfg := coproc.DefaultConfig(n)
	opts.Machine.apply(&hcfg, &ccfg)
	if err := hcfg.Validate(); err != nil {
		return nil, err
	}
	hier := mem.NewHierarchy(hcfg, stats)
	ccfg.ExeBUs = opts.ExeBUs
	for _, w := range sched.W {
		if len(w.Phases) > ccfg.MaxPhases {
			ccfg.MaxPhases = len(w.Phases)
		}
	}
	group := n / clusters
	var staticVLs []int
	switch kind {
	case Private:
		ccfg.Elastic = false
		ccfg.FixedVLs = make([]int, n)
		for c := range ccfg.FixedVLs {
			ccfg.FixedVLs[c] = opts.ExeBUs / n
		}
		staticVLs = ccfg.FixedVLs
	case FTS:
		ccfg.Elastic = false
		ccfg.SharedIssue = true
		ccfg.SharedVRF = true
		// The Table 4 shared pool (160 registers) serves up to 4 tenants;
		// larger machines scale it proportionally, keeping the same
		// registers-per-tenant ratio so FTS stays buildable — and fairly
		// provisioned — at 64 cores.
		if ccfg.PhysRegs < 40*n {
			ccfg.PhysRegs = 40 * n
		}
		if opts.FTSPhysRegs > 0 {
			ccfg.PhysRegs = opts.FTSPhysRegs
		}
	case VLS:
		ccfg.Elastic = false
		switch {
		case len(opts.StaticVLs) == n:
			ccfg.FixedVLs = opts.StaticVLs
		case clusters == 1:
			ccfg.FixedVLs = staticPlan(model, sched, opts.ExeBUs)
		default:
			// One static plan per cluster over the cores it hosts,
			// scattered into the machine-wide vector.
			ccfg.FixedVLs = make([]int, n)
			for k := 0; k < clusters; k++ {
				sub := workload.CoSchedule{Name: sched.Name, W: sched.W[k*group : (k+1)*group]}
				copy(ccfg.FixedVLs[k*group:], staticPlan(model, sub, opts.ExeBUs/clusters))
			}
		}
		staticVLs = ccfg.FixedVLs
	case Occamy:
		ccfg.Elastic = true
	}

	var cls []*coproc.Coproc
	if opts.Topology == nil {
		if err := ccfg.Validate(); err != nil {
			return nil, err
		}
		cls = []*coproc.Coproc{coproc.New(ccfg, hier.VecCache, hier.Mem, model, stats)}
	} else {
		// Each cluster hosts every core's row (global IDs index every
		// shard; foreign rows stay inert) but owns only its ExeBU shard,
		// and shared-structure arithmetic divides by its resident tenants.
		for k := 0; k < clusters; k++ {
			kcfg := ccfg
			kcfg.ExeBUs = opts.ExeBUs / clusters
			kcfg.ActiveCores = group
			if kcfg.SharedVRF {
				kcfg.PhysRegs = ccfg.PhysRegs / clusters
			}
			if len(ccfg.FixedVLs) > 0 {
				vls := make([]int, n)
				copy(vls[k*group:(k+1)*group], ccfg.FixedVLs[k*group:(k+1)*group])
				kcfg.FixedVLs = vls
			}
			if err := kcfg.Validate(); err != nil {
				return nil, fmt.Errorf("arch: cluster %d: %w", k, err)
			}
			cp := coproc.New(kcfg, hier.VecCache, hier.Mem, model, stats)
			cp.SetName(fmt.Sprintf("coproc%d", k))
			cls = append(cls, cp)
		}
	}
	cplx := coproc.NewComplex(topo, cls)
	cp := cls[0]

	mode := compiler.ModeFixed
	if kind == Occamy {
		mode = compiler.ModeElastic
	}
	sys := &System{
		Kind: kind, Engine: engine, Hier: hier, Coproc: cp,
		Clusters: cls, Cplx: cplx, Topo: opts.Topology,
		Sched: sched, Stats: stats, StaticVLs: staticVLs,
	}
	var port cpu.CoprocPort = cp
	if opts.Topology != nil {
		port = cplx
	}
	for c, w := range sched.W {
		comp, err := compiler.Compile(w, compiler.Options{
			Mode:          mode,
			MonitorPeriod: opts.MonitorPeriod,
			DefaultVL:     opts.DefaultVL,
			BaseAddr:      uint64(c+1) << 32,
		})
		if err != nil {
			return nil, fmt.Errorf("arch: compile %s for core %d: %w", w.Name, c, err)
		}
		comp.InitData(hier.Mem, opts.Seed+uint64(c)*7919+1)
		core := cpu.New(c, cpu.DefaultConfig(), comp.Program, port, hier.L1D[c], hier.Mem, stats)
		sys.Compiled = append(sys.Compiled, comp)
		sys.Cores = append(sys.Cores, core)
		engine.Register(core)
	}
	for _, ci := range cls {
		engine.Register(ci)
		ci.SetResponder(func(core int, reg isa.Reg, val uint64, ready uint64) {
			sys.Cores[core].HandleResult(core, reg, val, ready)
		})
	}
	sys.seed = opts.Seed
	if len(opts.Faults) > 0 || opts.WireInjector {
		// The injector ticks after the co-processor (faults land on cycle
		// boundaries, visible from the next cycle on) and before the probe.
		sys.faults = newFaultCtl(sys)
		sys.inj = fault.NewInjector(opts.Faults, n, opts.Seed, sys.faults)
		engine.Register(sys.inj)
	}
	if opts.Telemetry != nil {
		// The sampler diffs per-core cycle buckets and retire-latency
		// histograms; both live on the probe.
		opts.Obs.Attribution = true
	}
	if opts.Obs.Enabled() {
		probe := obs.NewProbe(n, opts.Obs.Sink)
		for _, core := range sys.Cores {
			core.SetProbe(probe)
		}
		for _, ci := range cls {
			ci.SetProbe(probe)
		}
		hier.SetProbe(probe)
		// The probe must tick last so it sees the whole cycle's signals.
		engine.Register(probe)
		if s := probe.Sink(); s != nil {
			for c := range sys.Cores {
				s.EmitProcessName(c, fmt.Sprintf("core%d [%s]", c, sched.W[c].Name))
				s.EmitThreadName(c, obs.TidPhases, "phases")
				s.EmitThreadName(c, obs.TidEMSIMD, "em-simd")
			}
		}
		sys.Probe = probe
	}
	if opts.Telemetry != nil {
		// A flat build samples the single instance directly; a clustered
		// build samples the Complex's machine-wide aggregates (identical
		// values at 1 cluster, so the digests match bit-for-bit). The
		// per-cluster table series get one entry per shard either way.
		srcs := telemetry.Sources{
			Cp:    telemetry.CoprocSource(cp),
			Tbl:   telemetry.TableSource(cp.Tbl()),
			Probe: sys.Probe,
			Stats: stats,
			Lanes: coproc.LanesPerGranule * opts.ExeBUs,
		}
		if opts.Topology != nil {
			srcs.Cp = cplx
			srcs.Tbl = cplx
		}
		for _, ci := range cls {
			srcs.Tables = append(srcs.Tables, ci.Tbl())
		}
		for _, core := range sys.Cores {
			srcs.Cores = append(srcs.Cores, core)
		}
		tele := telemetry.NewSampler(*opts.Telemetry, srcs)
		sys.Tele = tele
		// Registered after the probe: a window closing at cycle k sees the
		// probe's attribution for every cycle up to and including k.
		engine.Register(tele)
		sink := func(e coproc.LaneEvent) {
			kind := telemetry.EvLaneReject
			switch e.Kind {
			case "repartition":
				kind = telemetry.EvLaneRepartition
			case "reconfigure":
				kind = telemetry.EvLaneReconfigure
			}
			tele.Emit(e.Cycle, kind, e.Core, uint64(e.VL), "")
		}
		for _, ci := range cls {
			ci.SetLaneEventSink(sink)
		}
	}
	if opts.StallCycles > 0 {
		engine.SetWatchdog(opts.StallCycles)
	}
	// Skip-ahead elides quiescent cycles; a Perfetto sink wants the real
	// per-cycle counter samples, so trace runs keep the legacy path. Faulted
	// runs skip like fault-free ones: the injector is a Sleeper that wakes
	// the engine at every scheduled event and pins it live while a recovery
	// is in flight (see fault.Injector.NextWake).
	engine.SetSkipAhead(!opts.LegacyTick && opts.Obs.Sink == nil)
	return sys, nil
}

// SetFaultSchedule replaces the wired injector's fault schedule in place,
// rewinding its cursors — the fork point for checkpointed sweeps (build with
// WireInjector, warm up, Checkpoint, then per point RestoreCheckpoint and
// swap in that point's faults). It panics when no injector was wired: a
// schedule silently dropped would invalidate the experiment.
func (s *System) SetFaultSchedule(faults []fault.Fault) {
	if s.inj == nil {
		panic("arch: SetFaultSchedule on a system built without WireInjector or Faults")
	}
	s.inj.Reschedule(faults, len(s.Cores), s.seed)
}

// staticPlan computes VLS's one-off partition: the roofline plan over each
// workload's trip-count-weighted mean operational intensity, with any lanes
// the plan leaves free handed out round-robin (a static policy has no reason
// to idle silicon for the whole run).
func staticPlan(model roofline.Model, sched workload.CoSchedule, total int) []int {
	ois := make([]isa.OIPair, sched.Cores())
	for c, w := range sched.W {
		var issue, memOI, weight float64
		for _, k := range w.Phases {
			oi := k.OI()
			f := float64(k.Elems) * float64(k.Repeats)
			issue += oi.Issue * f
			memOI += oi.Mem * f
			weight += f
		}
		ois[c] = isa.OIPair{Issue: issue / weight, Mem: memOI / weight}
	}
	plan := lanemgr.Plan(model, ois, total)
	used := 0
	for _, vl := range plan {
		used += vl
	}
	for c := 0; used < total; c = (c + 1) % len(plan) {
		plan[c]++
		used++
	}
	return plan
}

// Done reports whether every core has halted AND the co-processor has
// drained its backlog (the scalar cores halt while transmitted instructions
// may still be queued).
func (s *System) Done() bool {
	now := s.Engine.Cycle()
	for c, core := range s.Cores {
		if !core.Halted() || !s.Cplx.Quiescent(c, now) {
			return false
		}
	}
	return true
}

// Run simulates until every core halts or maxCycles elapse. A run the engine
// aborts (cycle budget exhausted, watchdog stall) returns the partial Result
// alongside a *DiagError wrapping the engine error and a machine-state dump —
// callers that only check err keep their old behaviour, callers that care can
// errors.As the dump out.
func (s *System) Run(maxCycles uint64) (*Result, error) {
	_, err := s.Engine.RunUntil(s.Done, maxCycles)
	return s.FinishRun(err)
}

// FinishRun folds a run's terminal engine error (nil for a clean finish) into
// Run's result shape: the Result plus, for aborted runs, the same *DiagError
// Run would have returned. Sliced drivers — sim.Batch tasks that step the
// engine through Engine.RunSlice themselves — use it so results and error
// text stay bit-identical to an unsliced Run.
func (s *System) FinishRun(err error) (*Result, error) {
	if err != nil {
		werr := fmt.Errorf("arch: %s on %s: %w (pcs: %s)", s.Sched.Name, s.Kind, err, s.pcDump())
		return s.collect(), &DiagError{Dump: s.Diagnose(err), Err: werr}
	}
	return s.collect(), nil
}

func (s *System) pcDump() string {
	out := ""
	for c, core := range s.Cores {
		out += fmt.Sprintf("core%d pc=%d halted=%v vl=%d ", c, core.PC(), core.Halted(), s.Cplx.VL(c))
	}
	return out
}

// CheckResults verifies every phase's functional output against the host
// reference (see compiler.Phase.CheckResults).
func (s *System) CheckResults(relTol float64) error {
	for c, comp := range s.Compiled {
		for i := range comp.Phases {
			if err := comp.Phases[i].CheckResults(s.Hier.Mem, relTol); err != nil {
				return fmt.Errorf("core %d (%s): %w", c, s.Sched.W[c].Name, err)
			}
		}
	}
	return nil
}
