package arch

import (
	"testing"

	"occamy/internal/workload"
)

// tblChecker asserts the resource-table invariants every cycle: lane
// conservation (sum of configured lengths plus <AL> equals the ExeBU count)
// and bounds on every register.
type tblChecker struct {
	sys    *System
	t      *testing.T
	failed bool
}

func (c *tblChecker) Name() string { return "invariant-checker" }

func (c *tblChecker) Tick(cycle uint64) {
	if c.failed {
		return
	}
	tbl := c.sys.Coproc.Tbl()
	sum := 0
	for core := 0; core < tbl.Cores(); core++ {
		vl := tbl.VL(core)
		if vl < 0 || vl > tbl.Total() {
			c.t.Errorf("cycle %d: core %d VL %d out of range", cycle, core, vl)
			c.failed = true
		}
		dec := tbl.Decision(core)
		if dec < 0 || dec > tbl.Total() {
			c.t.Errorf("cycle %d: core %d decision %d out of range", cycle, core, dec)
			c.failed = true
		}
		sum += vl
	}
	if al := tbl.AL(); sum+al != tbl.Total() || al < 0 {
		c.t.Errorf("cycle %d: lane conservation violated: sum(VL)=%d AL=%d total=%d",
			cycle, sum, al, tbl.Total())
		c.failed = true
	}
	// The published plan must itself be feasible.
	decSum := 0
	for core := 0; core < tbl.Cores(); core++ {
		decSum += tbl.Decision(core)
	}
	if decSum > tbl.Total() {
		c.t.Errorf("cycle %d: infeasible plan: sum(decisions)=%d > %d", cycle, decSum, tbl.Total())
		c.failed = true
	}
}

// TestLaneConservationInvariant runs the motivating pair under Occamy with a
// per-cycle invariant checker registered alongside the hardware.
func TestLaneConservationInvariant(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.MotivatingPair(r).Scaled(0.25)
	sys, err := Build(Occamy, sched, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine.Register(&tblChecker{sys: sys, t: t})
	if _, err := sys.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
}

// TestLaneConservationUnderChurn repeats the check under heavy phase churn
// and four cores.
func TestLaneConservationUnderChurn(t *testing.T) {
	r := workload.NewRegistry()
	group := workload.FourCoreGroups(r)[1].Scaled(0.1)
	sys, err := Build(Occamy, group, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine.Register(&tblChecker{sys: sys, t: t})
	if _, err := sys.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationNeverExceedsOne guards the busy-lane accounting on all four
// architectures.
func TestUtilizationNeverExceedsOne(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.CaseStudyPair(r, 1).Scaled(0.2)
	for _, kind := range Kinds {
		sys, err := Build(kind, sched, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Utilization < 0 || res.Utilization > 1 {
			t.Errorf("%s: utilization %v out of [0,1]", kind, res.Utilization)
		}
		for c := range sys.Cores {
			for _, v := range sys.Coproc.BusyTimeline(c).Points() {
				if v < 0 || v > 32 {
					t.Fatalf("%s core %d: busy lanes %v out of [0,32]", kind, c, v)
				}
			}
		}
	}
}

// TestMakespanOrderingHolds pins the paper's headline ordering on the
// motivating pair: Occamy completes the compute workload fastest; every
// sharing architecture beats or matches Private.
func TestMakespanOrderingHolds(t *testing.T) {
	r := workload.NewRegistry()
	sched := workload.MotivatingPair(r).Scaled(0.5)
	times := map[Kind]uint64{}
	for _, kind := range Kinds {
		sys, err := Build(kind, sched, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(200_000_000)
		if err != nil {
			t.Fatal(err)
		}
		times[kind] = res.Cores[1].Cycles
	}
	if !(times[Occamy] < times[Private]) {
		t.Errorf("Occamy WL#1 (%d) must beat Private (%d)", times[Occamy], times[Private])
	}
	if !(times[VLS] < times[Private]) {
		t.Errorf("VLS WL#1 (%d) must beat Private (%d)", times[VLS], times[Private])
	}
	if !(times[Occamy] <= times[VLS]) {
		t.Errorf("Occamy WL#1 (%d) must match or beat VLS (%d)", times[Occamy], times[VLS])
	}
}
