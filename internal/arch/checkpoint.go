package arch

import (
	"occamy/internal/coproc"
	"occamy/internal/cpu"
	"occamy/internal/fault"
	"occamy/internal/mem"
	"occamy/internal/obs"
	"occamy/internal/sim"
	"occamy/internal/telemetry"
)

// This file composes the per-component checkpoints into a whole-system
// snapshot, the substrate for shared-warm-up sweeps: simulate a sweep's
// common prefix once, Checkpoint, then fork every sweep point from the
// snapshot with RestoreCheckpoint (+ SetFaultSchedule for fault sweeps).
// A restored run is bit-identical to a straight run of the same
// configuration — cycles, every counter, attribution, recovery log — which
// the differential tests in checkpoint_test.go enforce across all four
// architectures.

// ctlState is the fault controller's checkpoint.
type ctlState struct {
	perCoreFailed []int
	cursors       []int
	recs          []Recovery
	open          []int
}

func (ctl *faultCtl) snapshot() *ctlState {
	if ctl == nil {
		return nil
	}
	return &ctlState{
		perCoreFailed: append([]int(nil), ctl.perCoreFailed...),
		cursors:       append([]int(nil), ctl.cursors...),
		recs:          append([]Recovery(nil), ctl.recs...),
		open:          append([]int(nil), ctl.open...),
	}
}

func (ctl *faultCtl) restore(st *ctlState) {
	if ctl == nil || st == nil {
		return
	}
	copy(ctl.perCoreFailed, st.perCoreFailed)
	copy(ctl.cursors, st.cursors)
	ctl.recs = append(ctl.recs[:0], st.recs...)
	ctl.open = append(ctl.open[:0], st.open...)
}

// SystemState is a complete, deep system checkpoint. It captures mutable
// simulation state only — configuration and wiring (workloads, machine
// parameters, tick order, probe sinks) are not in it, so a snapshot restores
// only onto the System it was taken from (or one built identically).
type SystemState struct {
	engine  sim.EngineState
	hier    mem.HierarchyState
	coprocs []coproc.CheckpointState // one per cluster, in fabric order
	cplx    coproc.ComplexState
	cores   []cpu.FullState
	probe   *obs.ProbeState
	ctl     *ctlState
	inj     fault.InjectorState
	tele    *telemetry.SamplerState

	// digest is the FNV-64a content digest over every other field, stamped
	// at Checkpoint time and re-verified by RestoreCheckpoint (see
	// digest.go). It is what makes a snapshot safe to hold in a cache: a
	// corrupted or tampered snapshot is refused, never silently restored.
	digest uint64
}

// Cycle returns the cycle the checkpoint was taken at.
func (st *SystemState) Cycle() uint64 { return st.engine.Cycle() }

// Checkpoint captures the full machine state at the current cycle.
func (s *System) Checkpoint() *SystemState {
	st := &SystemState{
		engine: s.Engine.Snapshot(),
		hier:   s.Hier.Snapshot(),
		cplx:   s.Cplx.Checkpoint(),
		probe:  s.Probe.Snapshot(),
		ctl:    s.faults.snapshot(),
		inj:    s.inj.Snapshot(),
		tele:   s.Tele.Snapshot(),
	}
	for _, cp := range s.Clusters {
		st.coprocs = append(st.coprocs, cp.Checkpoint())
	}
	for _, core := range s.Cores {
		st.cores = append(st.cores, core.Checkpoint())
	}
	st.digest = st.computeDigest()
	s.Tele.EmitMeta(s.Engine.Cycle(), telemetry.EvCheckpoint, "")
	return st
}

// RestoreCheckpoint rewinds the system to a Checkpoint. The fault schedule is
// restored as-is (cursors rewound on the same schedule); fork a different
// sweep point by calling SetFaultSchedule afterwards.
//
// Before touching any component it re-verifies the snapshot's content digest;
// a snapshot that was corrupted since capture is refused with a
// *CorruptCheckpointError and the system is left exactly as it was — the
// caller can evict the snapshot and fall back to a cold run.
func (s *System) RestoreCheckpoint(st *SystemState) error {
	if err := st.Verify(); err != nil {
		return err
	}
	s.restore(st)
	return nil
}

// RestoreCheckpointTrusted rewinds the system to a Checkpoint without
// re-verifying its content digest. The integrity check exists for snapshots
// that sat somewhere — an in-process cache, a parked job, a file — between
// capture and restore; a sweep fork loop that restores the same snapshot it
// just captured (or one it verified on the first fork) pays the full
// reflective walk over the memory image on every point for no added safety.
// Callers own the trust decision: verify the first restore, trust the rest,
// and keep using RestoreCheckpoint for anything that crossed a cache.
func (s *System) RestoreCheckpointTrusted(st *SystemState) { s.restore(st) }

func (s *System) restore(st *SystemState) {
	s.Engine.Restore(st.engine)
	s.Hier.Restore(st.hier)
	for k, cp := range s.Clusters {
		cp.RestoreCheckpoint(st.coprocs[k])
	}
	s.Cplx.RestoreCheckpoint(st.cplx)
	for c, core := range s.Cores {
		core.RestoreCheckpoint(st.cores[c])
	}
	s.Probe.Restore(st.probe)
	s.faults.restore(st.ctl)
	s.inj.Restore(st.inj)
	s.Tele.Restore(st.tele)
	s.Tele.EmitMeta(s.Engine.Cycle(), telemetry.EvRestore, "")
}

// SetInterrupt installs a cooperative cancellation signal on the engine:
// when done becomes ready (usually a context's Done channel), the run stops
// at the next cycle-aligned poll point with a sim.CanceledError (wrapped in
// the usual DiagError with a machine dump). An interrupt that never fires
// leaves results bit-identical to a run without one.
func (s *System) SetInterrupt(done <-chan struct{}) { s.Engine.SetInterrupt(done) }

// RunTo simulates until the clock reaches cycle (a no-op when already
// there), the natural way to advance to a sweep's checkpoint cycle. Unlike
// Run it does not stop at completion — callers pick checkpoint cycles well
// inside the run.
func (s *System) RunTo(cycle uint64) error {
	now := s.Engine.Cycle()
	if cycle <= now {
		return nil
	}
	if _, err := s.Engine.RunUntil(func() bool { return s.Engine.Cycle() >= cycle }, cycle-now); err != nil {
		return err
	}
	return nil
}
