package arch

import (
	"testing"

	"occamy/internal/workload"
)

const testScale = 0.25 // shrink trip counts so the full matrix stays fast

func testSched(t *testing.T) workload.CoSchedule {
	t.Helper()
	r := workload.NewRegistry()
	return workload.MotivatingPair(r).Scaled(testScale)
}

func runOn(t *testing.T, kind Kind, sched workload.CoSchedule) *Result {
	t.Helper()
	sys, err := Build(kind, sched, Options{Seed: 7})
	if err != nil {
		t.Fatalf("Build(%s): %v", kind, err)
	}
	res, err := sys.Run(40_000_000)
	if err != nil {
		t.Fatalf("Run(%s): %v", kind, err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Fatalf("%s: functional check failed: %v", kind, err)
	}
	return res
}

func TestAllArchitecturesRunMotivatingPair(t *testing.T) {
	sched := testSched(t)
	for _, kind := range Kinds {
		res := runOn(t, kind, sched)
		if res.Cycles == 0 {
			t.Fatalf("%s: zero makespan", kind)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("%s: utilization %v out of range", kind, res.Utilization)
		}
		t.Logf("%s: makespan=%d util=%.1f%% core0=%d core1=%d issue1=%.2f",
			kind, res.Cycles, 100*res.Utilization,
			res.Cores[0].Cycles, res.Cores[1].Cycles, res.Cores[1].IssueRate)
	}
}
