package arch

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"occamy/internal/fault"
	"occamy/internal/sim"
	"occamy/internal/workload"
)

// faultPair builds a two-core co-schedule of identical non-reduction triad
// kernels (out[i] = 1.5*a[i] + b[i]): elementwise and store-idempotent, so a
// forced VL shrink at a drain point re-executes at worst a partial strip with
// identical results — the workload shape the fault policies are specified
// over.
func faultPair(elems, repeats int) workload.CoSchedule {
	mk := func(name string) *workload.Workload {
		return &workload.Workload{Name: name, Phases: []*workload.Kernel{{
			Name:  name + ".triad",
			Slots: []workload.LoadSlot{{Stream: 0}, {Stream: 1}},
			Stmts: []workload.Stmt{{
				Out: 2,
				E:   workload.Add(workload.Mul(workload.Slot(0), workload.Const(1.5)), workload.Slot(1)),
			}},
			Elems:   elems,
			Repeats: repeats,
		}}}
	}
	return workload.CoSchedule{Name: "faulttriad", W: []*workload.Workload{mk("triad0"), mk("triad1")}}
}

// TestFaultFreeRunsBitIdentical is the differential guarantee: registering
// the fault machinery with a fault that never fires must leave every
// architecture's cycles, statistics and per-core results bit-identical to a
// plain run (compared on the legacy tick path, since an armed injector
// disables skip-ahead; plain skip runs are already pinned to plain legacy
// runs by TestEngineSkipAheadBitIdentical).
func TestFaultFreeRunsBitIdentical(t *testing.T) {
	pair := faultPair(512, 12)
	for _, kind := range Kinds {
		run := func(faults []fault.Fault) (*System, *Result) {
			t.Helper()
			sys, err := Build(kind, pair, Options{Seed: 11, LegacyTick: true, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(400_000_000)
			if err != nil {
				t.Fatal(err)
			}
			return sys, res
		}
		plainSys, plain := run(nil)
		// Fires 10x beyond any plausible end of this run.
		armedSys, armed := run([]fault.Fault{{Kind: fault.ExeBU, Count: 1, Core: fault.AnyCore, At: 4_000_000_000}})

		if p, a := plainSys.Engine.Cycle(), armedSys.Engine.Cycle(); p != a {
			t.Errorf("%v: engine cycle plain=%d armed=%d", kind, p, a)
		}
		if diffs := diffStats(plainSys.Stats.Snapshot(), armedSys.Stats.Snapshot()); len(diffs) > 0 {
			t.Errorf("%v: %d stats diverge, e.g. %s", kind, len(diffs), diffs[0])
		}
		// Recoveries differ by construction (armed logs none either, since
		// the fault never fired) — the rest must match exactly.
		armed.Recoveries = plain.Recoveries
		if !reflect.DeepEqual(plain, armed) {
			t.Errorf("%v: results diverge:\nplain: %+v\narmed: %+v", kind, plain, armed)
		}
		if err := armedSys.CheckResults(2e-3); err != nil {
			t.Errorf("%v: functional check with armed injector: %v", kind, err)
		}
	}
}

// TestExeBUFaultAllArchsRecoverable: with one ExeBU failing mid-run, every
// architecture must still complete with correct results (one unit is within
// everyone's surviving capacity), and the elastic/static reactions must be
// visible: the lane table records the failure, Occamy and VLS log a completed
// repartition recovery.
func TestExeBUFaultAllArchsRecoverable(t *testing.T) {
	pair := faultPair(512, 24)
	faults := []fault.Fault{{Kind: fault.ExeBU, Count: 1, At: 1000}}
	for _, kind := range Kinds {
		sys, err := Build(kind, pair, Options{Seed: 11, Faults: faults, StallCycles: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(400_000_000)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := sys.CheckResults(2e-3); err != nil {
			t.Errorf("%v: functional check after fault: %v", kind, err)
		}
		if got := sys.Coproc.Tbl().Failed(); got != 1 {
			t.Errorf("%v: lane table records %d failed units, want 1", kind, got)
		}
		if len(res.Recoveries) != 1 {
			t.Fatalf("%v: %d recoveries logged, want 1", kind, len(res.Recoveries))
		}
		rec := res.Recoveries[0]
		if rec.Pending {
			t.Errorf("%v: recovery still pending at end of run", kind)
		}
		if rec.At != 1000 {
			t.Errorf("%v: recovery At=%d, want 1000", kind, rec.At)
		}
		switch kind {
		case Occamy, VLS:
			// Post-fault the published lane plan must fit the survivors.
			sum := 0
			for c := range sys.Cores {
				sum += sys.Coproc.Tbl().VL(c)
			}
			if usable := sys.Coproc.Tbl().Usable(); sum > usable {
				t.Errorf("%v: post-fault Σvl=%d exceeds usable=%d", kind, sum, usable)
			}
		}
	}
}

// TestTransientExeBURepairs: a transient ExeBU failure must repair — the
// usable pool returns to full size — and Occamy must re-grow its lane plan
// through the normal EM-SIMD protocol (no forced growth anywhere).
func TestTransientExeBURepairs(t *testing.T) {
	pair := faultPair(512, 48)
	faults := []fault.Fault{{Kind: fault.ExeBU, Count: 2, At: 1000, For: 3000}}
	sys, err := Build(Occamy, pair, Options{Seed: 11, Faults: faults, StallCycles: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Errorf("functional check after transient: %v", err)
	}
	tbl := sys.Coproc.Tbl()
	if tbl.Failed() != 0 {
		t.Errorf("transient did not repair: %d units still failed", tbl.Failed())
	}
	if tbl.Usable() != tbl.Total() {
		t.Errorf("usable=%d after repair, want %d", tbl.Usable(), tbl.Total())
	}
}

// TestPrivateLosesVictimHalf: when a victim core's whole private half dies,
// Private cannot make progress on that core — the watchdog must convert the
// livelock into a structured diagnostic dump instead of burning the full
// cycle budget.
func TestPrivateLosesVictimHalf(t *testing.T) {
	pair := faultPair(512, 48)
	// 7 of 8 units: round-robin assignment kills core 0's entire half.
	faults := []fault.Fault{{Kind: fault.ExeBU, Count: 7, At: 1000}}
	sys, err := Build(Private, pair, Options{Seed: 11, Faults: faults, StallCycles: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err == nil {
		t.Fatal("expected a watchdog stall, run completed")
	}
	var derr *DiagError
	if !errors.As(err, &derr) {
		t.Fatalf("error is not a DiagError: %v", err)
	}
	var serr *sim.StallError
	if !errors.As(err, &serr) {
		t.Fatalf("DiagError does not wrap a StallError: %v", err)
	}
	if derr.Dump == nil {
		t.Fatal("DiagError carries no dump")
	}
	text := derr.Dump.String()
	for _, want := range []string{"diagnostic dump", "failed=7", "fault exebu:7@1000"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
	if res == nil {
		t.Fatal("failed run returned no partial result")
	}
	if res.Cores[0].Elems >= res.Cores[1].Elems {
		t.Errorf("victim core 0 elems=%d not behind survivor core 1 elems=%d",
			res.Cores[0].Elems, res.Cores[1].Elems)
	}
}

// TestOccamySurvivesWhatKillsPrivate: the same 7-of-8 failure that livelocks
// Private completes on Occamy — the elastic plan shrinks everyone onto the
// survivors (with the fairness-floor oversubscription for the last unit).
func TestOccamySurvivesWhatKillsPrivate(t *testing.T) {
	pair := faultPair(512, 24)
	faults := []fault.Fault{{Kind: fault.ExeBU, Count: 7, At: 1000}}
	sys, err := Build(Occamy, pair, Options{Seed: 11, Faults: faults, StallCycles: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err != nil {
		t.Fatalf("Occamy did not survive: %v", err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Errorf("functional check: %v", err)
	}
	if len(res.Recoveries) != 1 || res.Recoveries[0].Pending {
		t.Fatalf("expected one completed recovery, got %+v", res.Recoveries)
	}
	if ttr := res.Recoveries[0].TimeToRepartition(); ttr == 0 {
		t.Error("time-to-repartition is zero; expected a drain-gated reaction")
	}
}

// TestXmitLinkFaultRetries: dropped CPU→coproc transmissions are retried by
// the core's existing stall-and-retry dispatch path and the run completes
// with correct results; the drop count is reported.
func TestXmitLinkFaultRetries(t *testing.T) {
	pair := faultPair(512, 24)
	faults := []fault.Fault{{Kind: fault.XmitLink, Core: 0, At: 2000, For: 20_000}}
	sys, err := Build(Occamy, pair, Options{Seed: 11, Faults: faults, StallCycles: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckResults(2e-3); err != nil {
		t.Errorf("functional check: %v", err)
	}
	if res.LinkDrops == 0 {
		t.Error("link fault window dropped no transmissions")
	}
}

// TestRegBankAndBandwidthFaultsComplete: the remaining fault kinds degrade
// but never deadlock, and slow the machine down measurably.
func TestRegBankAndBandwidthFaultsComplete(t *testing.T) {
	pair := faultPair(512, 24)
	base, err := Build(Occamy, pair, Options{Seed: 11, LegacyTick: true})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run(400_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]fault.Fault{
		"regs": {Kind: fault.RegBank, Core: 0, Count: 100, At: 2000},
		"bw":   {Kind: fault.Bandwidth, Level: "vec", Factor: 0.1, At: 2000},
	} {
		sys, err := Build(Occamy, pair, Options{Seed: 11, Faults: []fault.Fault{f}, StallCycles: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(400_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sys.CheckResults(2e-3); err != nil {
			t.Errorf("%s: functional check: %v", name, err)
		}
		if res.Cycles <= baseRes.Cycles {
			t.Errorf("%s: faulted run (%d cycles) not slower than clean run (%d)",
				name, res.Cycles, baseRes.Cycles)
		}
	}
}

// TestFaultDeterminism: same spec + same seed ⇒ identical runs; a different
// seed may pick a different victim but must itself be reproducible.
func TestFaultDeterminism(t *testing.T) {
	pair := faultPair(512, 12)
	faults := []fault.Fault{
		{Kind: fault.ExeBU, Count: 2, At: 3000, For: 8000},
		{Kind: fault.XmitLink, Core: fault.AnyCore, At: 2000, For: 5000},
	}
	run := func(seed uint64) string {
		sys, err := Build(Occamy, pair, Options{Seed: seed, Faults: faults, StallCycles: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(400_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d %d %+v %v", res.Cycles, res.LinkDrops, res.Recoveries, sys.Stats.Snapshot())
	}
	if a, b := run(11), run(11); a != b {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
	if a, b := run(12), run(12); a != b {
		t.Errorf("seed 12 not reproducible:\n%s\n%s", a, b)
	}
}

// TestBuildRejectsBadFaults: fault validation happens at build time.
func TestBuildRejectsBadFaults(t *testing.T) {
	pair := faultPair(64, 1)
	for name, f := range map[string]fault.Fault{
		"zero count":   {Kind: fault.ExeBU, Count: 0, At: 10},
		"bad level":    {Kind: fault.Bandwidth, Level: "l9", Factor: 0.5, At: 10},
		"bad factor":   {Kind: fault.Bandwidth, Level: "dram", Factor: 1.5, At: 10},
		"out of range": {Kind: fault.XmitLink, Core: 7, At: 10},
	} {
		if _, err := Build(Occamy, pair, Options{Faults: []fault.Fault{f}}); err == nil {
			t.Errorf("%s: Build accepted invalid fault %+v", name, f)
		}
	}
}
