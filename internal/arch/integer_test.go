package arch

import (
	"testing"

	"occamy/internal/isa"
	"occamy/internal/workload"
)

// intKernels builds integer-lane kernels exercising every integer vector
// operation with real value semantics.
func intKernels() []*workload.Kernel {
	// threshold: out = min(max(x + 16, 32), 224) — a saturating add, the
	// classic image-processing clamp.
	thresh := &workload.Kernel{
		Name:    "int_thresh",
		IntData: true,
		Slots:   []workload.LoadSlot{{Stream: 0}},
		Stmts: []workload.Stmt{{Out: 1, E: workload.IMin(
			workload.IMax(workload.IAdd(workload.Slot(0), workload.IConst(16)), workload.IConst(32)),
			workload.IConst(224))}},
		Elems: 517, Repeats: 2,
	}
	// mix: out = ((a ^ b) & 255) | (a << 1 >> 2 pattern) exercising
	// logic, shifts and multiply.
	mix := &workload.Kernel{
		Name:    "int_mix",
		IntData: true,
		Slots:   []workload.LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts: []workload.Stmt{{Out: 2, E: workload.IOr(
			workload.IAnd(workload.IXor(workload.Slot(0), workload.Slot(1)), workload.IConst(255)),
			workload.IShl(workload.IShr(workload.IMul(workload.Slot(0), workload.IConst(3)), workload.IConst(2)), workload.IConst(1)),
		)}},
		Elems: 301, Repeats: 3,
	}
	// diff: out = a - b (may go negative; arithmetic semantics).
	diff := &workload.Kernel{
		Name:    "int_diff",
		IntData: true,
		Slots:   []workload.LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts:   []workload.Stmt{{Out: 2, E: workload.ISub(workload.Slot(0), workload.Slot(1))}},
		Elems:   233, Repeats: 1,
	}
	return []*workload.Kernel{thresh, mix, diff}
}

// TestIntegerKernelsBitExactOnAllArchitectures runs the integer kernels end
// to end on every architecture; results must match the host reference
// bit-exactly (no FP tolerance).
func TestIntegerKernelsBitExactOnAllArchitectures(t *testing.T) {
	for _, k := range intKernels() {
		w := &workload.Workload{Name: "int/" + k.Name, Phases: []*workload.Kernel{k}}
		for _, kind := range Kinds {
			sys := runMode(t, kind, w)
			if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 0); err != nil {
				t.Errorf("%s on %s: %v", k.Name, kind, err)
			}
		}
	}
}

// TestIntegerScalarVersionBitExact takes the multi-version scalar path.
func TestIntegerScalarVersionBitExact(t *testing.T) {
	for _, k := range intKernels() {
		kc := *k
		kc.Elems = 77 // below the scalar threshold
		w := &workload.Workload{Name: "ints/" + k.Name, Phases: []*workload.Kernel{&kc}}
		sys := runMode(t, Private, w)
		if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 0); err != nil {
			t.Errorf("%s scalar: %v", k.Name, err)
		}
	}
}

// TestIntegerElasticUnderReconfiguration co-runs an integer kernel with a
// churning peer: integer lanes must survive vector-length changes bit-
// exactly (the §6.4 obligations apply to every data type).
func TestIntegerElasticUnderReconfiguration(t *testing.T) {
	r := workload.NewRegistry()
	ks := intKernels()
	for i := range ks {
		k := *ks[i]
		k.Elems = 2000
		k.Repeats = 2
		ks[i] = &k
	}
	w0 := &workload.Workload{Name: "intchurn", Phases: ks}
	peer := r.Workload("spec/WL16").Scaled(0.2)
	sched := workload.CoSchedule{Name: "int+peer", W: []*workload.Workload{w0, peer}}
	sys, err := Build(Occamy, sched, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(400_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigures == 0 {
		t.Fatal("expected reconfigurations during the integer run")
	}
	for p := range sys.Compiled[0].Phases {
		if err := sys.Compiled[0].Phases[p].CheckResults(sys.Hier.Mem, 0); err != nil {
			t.Errorf("phase %d: %v", p, err)
		}
	}
}

// TestIntegerJSONRoundTrip defines an integer kernel via JSON and verifies
// the whole path including the expression syntax.
func TestIntegerJSONRoundTrip(t *testing.T) {
	src := `{
	  "name": "json-int",
	  "phases": [{
	    "kernel": "clamp",
	    "elems": 400,
	    "int_data": true,
	    "loads": [{"stream": 0}],
	    "statements": [{"out": 1, "expr": "imin(imax(iadd(s0, i10), i0), i200)"}]
	  }]
	}`
	w, err := workload.ParseWorkloadJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sys := runMode(t, Occamy, w)
	if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 0); err != nil {
		t.Fatal(err)
	}
	// And the values are sane integers in [10, 200].
	ph := sys.Compiled[0].Phases[0]
	out := ph.Streams[1]
	for i := 0; i < 10; i++ {
		v := isa.LaneInt(sys.Hier.Mem.ReadF32(out.Base + uint64(4*(workload.Halo+i))))
		if v < 10 || v > 200 {
			t.Fatalf("elem %d = %d outside the clamp range", i, v)
		}
	}
}

// TestIntegerReductionRejected pins the validation rule.
func TestIntegerReductionRejected(t *testing.T) {
	k := &workload.Kernel{
		Name: "bad", IntData: true, Reduction: true,
		Slots: []workload.LoadSlot{{Stream: 0}},
		Stmts: []workload.Stmt{{Out: -1, E: workload.Slot(0)}},
		Elems: 64, Repeats: 1,
	}
	if err := k.Validate(); err == nil {
		t.Fatal("integer reductions must be rejected")
	}
}

// TestRegistryIntegerKernelsEndToEnd runs the registry's OpenCV-style
// integer kernels (threshold, absdiff, bitwise, clamp+scale) on Private and
// Occamy with bit-exact verification, including semantic spot checks.
func TestRegistryIntegerKernelsEndToEnd(t *testing.T) {
	r := workload.NewRegistry()
	for _, name := range []string{"int_threshold", "int_absdiff", "int_bitwise", "int_clamp_scale"} {
		k := *r.Kernel(name)
		k.Elems = 600
		if k.Repeats > 3 {
			k.Repeats = 3
		}
		w := &workload.Workload{Name: "reg/" + name, Phases: []*workload.Kernel{&k}}
		for _, kind := range []Kind{Private, Occamy} {
			sys := runMode(t, kind, w)
			if err := sys.Compiled[0].Phases[0].CheckResults(sys.Hier.Mem, 0); err != nil {
				t.Errorf("%s on %s: %v", name, kind, err)
			}
		}
	}
	// Spot-check int_threshold semantics: inputs are 0..255, outputs must
	// be exactly 0 or 255.
	k := *r.Kernel("int_threshold")
	k.Elems = 256
	k.Repeats = 1
	w := &workload.Workload{Name: "spot", Phases: []*workload.Kernel{&k}}
	sys := runMode(t, Private, w)
	ph := sys.Compiled[0].Phases[0]
	out := ph.Streams[1]
	zeros, maxes := 0, 0
	for i := 0; i < 256; i++ {
		v := isa.LaneInt(sys.Hier.Mem.ReadF32(out.Base + uint64(4*(workload.Halo+i))))
		switch v {
		case 0:
			zeros++
		case 255:
			maxes++
		default:
			t.Fatalf("threshold output %d at elem %d", v, i)
		}
	}
	if zeros == 0 || maxes == 0 {
		t.Fatalf("degenerate threshold: %d zeros, %d maxes", zeros, maxes)
	}
}
