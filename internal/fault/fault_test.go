package fault

import (
	"reflect"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want []Fault
	}{
		{"", nil},
		{"exebu@50000", []Fault{{Kind: ExeBU, Count: 1, Core: AnyCore, Cluster: AnyCluster, At: 50000}}},
		{"exebu:3@50000", []Fault{{Kind: ExeBU, Count: 3, Core: AnyCore, Cluster: AnyCluster, At: 50000}}},
		{"exebu:2@50000+20000", []Fault{{Kind: ExeBU, Count: 2, Core: AnyCore, Cluster: AnyCluster, At: 50000, For: 20000}}},
		{"regs:core1:32@2000", []Fault{{Kind: RegBank, Count: 32, Core: 1, Cluster: AnyCluster, At: 2000}}},
		{"regs:16@2000+100", []Fault{{Kind: RegBank, Count: 16, Core: AnyCore, Cluster: AnyCluster, At: 2000, For: 100}}},
		{"bw:dram:0.5@1000+9000", []Fault{{Kind: Bandwidth, Count: 1, Core: AnyCore, Cluster: AnyCluster, Level: "dram", Factor: 0.5, At: 1000, For: 9000}}},
		{"xmit:core0@500+2000", []Fault{{Kind: XmitLink, Count: 1, Core: 0, Cluster: AnyCluster, At: 500, For: 2000}}},
		{"xmit:core0:16@500+2000", []Fault{{Kind: XmitLink, Count: 1, Core: 0, Cluster: AnyCluster, Delay: 16, At: 500, For: 2000}}},
		{"exebu:cl1:2@50000", []Fault{{Kind: ExeBU, Count: 2, Core: AnyCore, Cluster: 1, At: 50000}}},
		{"exebu:cl2@50000", []Fault{{Kind: ExeBU, Count: 1, Core: AnyCore, Cluster: 2, At: 50000}}},
		{"xmit:cl0:core1@500+2000", []Fault{{Kind: XmitLink, Count: 1, Core: 1, Cluster: 0, At: 500, For: 2000}}},
		{"xmit:cl3:core0:16@500+2000", []Fault{{Kind: XmitLink, Count: 1, Core: 0, Cluster: 3, Delay: 16, At: 500, For: 2000}}},
		{"exebu@100; bw:l2:0.25@200+50", []Fault{
			{Kind: ExeBU, Count: 1, Core: AnyCore, Cluster: AnyCluster, At: 100},
			{Kind: Bandwidth, Count: 1, Core: AnyCore, Cluster: AnyCluster, Level: "l2", Factor: 0.25, At: 200, For: 50},
		}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"exebu",            // no cycle
		"exebu@x",          // bad cycle
		"exebu:0@100",      // zero count
		"exebu:-1@100",     // negative count
		"exebu:1:2@100",    // too many args
		"quark@100",        // unknown kind
		"bw:dram@100",      // missing factor
		"bw:tape:0.5@100",  // unknown level
		"bw:dram:0@100",    // zero factor
		"bw:dram:1.5@100",  // factor > 1
		"regs@100",         // missing count
		"regs:coreX:8@100", // bad core
		"exebu@100+0",      // zero transient duration
		"exebu:clX@100",    // bad cluster
		"exebu:cl-2@100",   // cluster below AnyCluster
		"xmit:clX@100+5",   // bad cluster
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error, got none", spec)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"exebu:2@50000+20000",
		"exebu:cl1:2@50000",
		"regs:core1:32@2000",
		"bw:dram:0.5@1000+9000",
		"xmit:core0:16@500+2000",
		"xmit:cl2:core0@500+2000",
	}
	for _, spec := range specs {
		fs, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if len(fs) != 1 {
			t.Fatalf("ParseSpec(%q): want 1 fault, got %d", spec, len(fs))
		}
		again, err := ParseSpec(fs[0].String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", fs[0].String(), err)
		}
		if !reflect.DeepEqual(fs, again) {
			t.Errorf("round trip %q -> %q -> %+v != %+v", spec, fs[0].String(), again, fs)
		}
	}
}

func TestParseJSON(t *testing.T) {
	data := []byte(`[
		{"kind": "exebu", "count": 2, "at": 1000, "for": 500},
		{"kind": "regs", "core": 1, "count": 32, "at": 2000},
		{"kind": "bw", "level": "dram", "factor": 0.5, "at": 3000, "for": 100},
		{"kind": "xmit", "core": 0, "at": 4000, "for": 50, "delay": 4}
	]`)
	fs, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: ExeBU, Count: 2, Core: AnyCore, Cluster: AnyCluster, At: 1000, For: 500},
		{Kind: RegBank, Count: 32, Core: 1, Cluster: AnyCluster, At: 2000},
		{Kind: Bandwidth, Count: 1, Core: AnyCore, Cluster: AnyCluster, Level: "dram", Factor: 0.5, At: 3000, For: 100},
		{Kind: XmitLink, Count: 1, Core: 0, Cluster: AnyCluster, At: 4000, For: 50, Delay: 4},
	}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("ParseJSON = %+v, want %+v", fs, want)
	}
	if _, err := ParseJSON([]byte(`[{"kind": "bogus", "at": 1}]`)); err == nil {
		t.Error("ParseJSON with unknown kind: expected error")
	}
	if _, err := ParseJSON([]byte(`not json`)); err == nil {
		t.Error("ParseJSON with garbage: expected error")
	}
}

// recorder logs handler calls for injector tests.
type recorder struct {
	log []string
}

func (r *recorder) Apply(f Fault, now uint64)  { r.log = append(r.log, "apply:"+f.String()) }
func (r *recorder) Revert(f Fault, now uint64) { r.log = append(r.log, "revert:"+f.String()) }
func (r *recorder) Poll(now uint64)            {}

func TestInjectorFiresInOrder(t *testing.T) {
	faults, err := ParseSpec("exebu@10+5; regs:core0:8@12")
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	inj := NewInjector(faults, 2, 1, rec)
	for now := uint64(0); now < 20; now++ {
		inj.Tick(now)
	}
	want := []string{
		"apply:exebu@10+5",
		"apply:regs:core0:8@12",
		"revert:exebu@10+5",
	}
	if !reflect.DeepEqual(rec.log, want) {
		t.Errorf("injector log = %v, want %v", rec.log, want)
	}
	if inj.Applied() != 3 {
		t.Errorf("Applied = %d, want 3", inj.Applied())
	}
}

// TestInjectorSeededVictim: AnyCore victims resolve deterministically from
// the seed, and different seeds can choose different victims.
func TestInjectorSeededVictim(t *testing.T) {
	faults, err := ParseSpec("regs:8@100")
	if err != nil {
		t.Fatal(err)
	}
	pick := func(seed uint64) int {
		inj := NewInjector(faults, 4, seed, &recorder{})
		return inj.Schedule()[0].Core
	}
	for seed := uint64(0); seed < 8; seed++ {
		a, b := pick(seed), pick(seed)
		if a != b {
			t.Fatalf("seed %d: victim not deterministic: %d vs %d", seed, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("seed %d: victim %d out of range", seed, a)
		}
	}
	distinct := map[int]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		distinct[pick(seed)] = true
	}
	if len(distinct) < 2 {
		t.Error("seeded victim selection never varies across 32 seeds")
	}
}
