package fault

import "sort"

// Handler is implemented by the architecture layer: it applies and reverts
// fault effects on the hardware models, and advances any deferred actions
// (drain-gated reconfigurations) once per cycle.
type Handler interface {
	// Apply injects the fault at cycle now.
	Apply(f Fault, now uint64)
	// Revert ends a transient fault at cycle now.
	Revert(f Fault, now uint64)
	// Poll runs once per cycle after any injections, advancing deferred
	// recovery actions (e.g. a forced VL shrink waiting for a drained
	// pipeline). It must be cheap when nothing is pending.
	Poll(now uint64)
}

// SleepHandler is the optional capability through which a Handler joins the
// skip-ahead contract: PollQuiescent reports that every Poll call is a
// guaranteed no-op until the handler itself changes that (which only happens
// inside Apply/Revert/Poll — all of which run on ticked cycles). A handler
// without the capability pins the injector permanently live, which forces
// the engine onto the legacy every-cycle path.
type SleepHandler interface {
	PollQuiescent() bool
}

// event is one scheduled transition: a fault being applied or reverted.
type event struct {
	cycle  uint64
	revert bool
	fault  Fault
}

// Injector is the sim.Component that fires a fault schedule. It resolves
// seed-derived victims once at construction, expands each transient fault
// into an apply and a revert event, and walks the sorted schedule as the
// clock advances. It is also a sim.Sleeper: between scheduled events, and
// while the handler has no recovery in flight, every Tick is a pure no-op,
// so a faulted run skips ahead exactly like a fault-free one — the injector
// wakes the engine at each event cycle to fire it for real.
type Injector struct {
	handler Handler
	events  []event
	next    int
	applied int
}

// NewInjector builds an injector for the given schedule. Faults with
// Core == AnyCore (where a core is meaningful) are pinned to a concrete
// victim derived from seed, so the schedule is fully resolved and
// deterministic before the clock starts.
func NewInjector(faults []Fault, cores int, seed uint64, h Handler) *Injector {
	inj := &Injector{handler: h}
	rng := seed
	for _, f := range faults {
		if f.Core == AnyCore && (f.Kind == RegBank || f.Kind == XmitLink) && cores > 0 {
			rng = splitmix64(rng)
			f.Core = int(rng % uint64(cores))
		}
		inj.events = append(inj.events, event{cycle: f.At, fault: f})
		if f.For > 0 {
			inj.events = append(inj.events, event{cycle: f.At + f.For, revert: true, fault: f})
		}
	}
	// Stable sort keeps spec order among same-cycle events, and applies
	// before reverts at a shared cycle boundary.
	sort.SliceStable(inj.events, func(i, j int) bool {
		if inj.events[i].cycle != inj.events[j].cycle {
			return inj.events[i].cycle < inj.events[j].cycle
		}
		return !inj.events[i].revert && inj.events[j].revert
	})
	return inj
}

// Schedule returns the resolved fault schedule (victims pinned, transients
// expanded), in firing order.
func (inj *Injector) Schedule() []Fault {
	var fs []Fault
	for _, ev := range inj.events {
		if !ev.revert {
			fs = append(fs, ev.fault)
		}
	}
	return fs
}

// Applied reports how many fault events (applies and reverts) have fired.
func (inj *Injector) Applied() int { return inj.applied }

// Name implements sim.Component.
func (inj *Injector) Name() string { return "fault-injector" }

// Tick implements sim.Component: fire every event scheduled for this cycle,
// then let the handler advance deferred actions.
func (inj *Injector) Tick(now uint64) {
	for inj.next < len(inj.events) && inj.events[inj.next].cycle <= now {
		ev := inj.events[inj.next]
		inj.next++
		inj.applied++
		if ev.revert {
			inj.handler.Revert(ev.fault, now)
		} else {
			inj.handler.Apply(ev.fault, now)
		}
	}
	inj.handler.Poll(now)
}

// NextWake implements sim.Sleeper. The injector is quiescent when no event
// is due and the handler's per-cycle Poll is a declared no-op; its wake is
// the next scheduled event (NeverWake once the schedule is exhausted — the
// injector alone never needs the clock again).
func (inj *Injector) NextWake(now uint64) (uint64, bool) {
	sh, ok := inj.handler.(SleepHandler)
	if !ok || !sh.PollQuiescent() {
		return 0, false
	}
	if inj.next < len(inj.events) {
		if ev := inj.events[inj.next].cycle; ev > now {
			return ev, true
		}
		return 0, false // an event is due: the next Tick fires it
	}
	return NeverWakeCycle, true
}

// NeverWakeCycle mirrors sim.NeverWake without importing sim (which would
// cycle: sim is dependency-free by design).
const NeverWakeCycle = ^uint64(0)

// SkipTicks implements sim.Sleeper. Elided ticks would only have run a
// no-op Poll: there is no accounting to replay.
func (inj *Injector) SkipTicks(from, n uint64) {}

// InjectorState is the injector's checkpoint: the schedule cursors. The
// event list itself is configuration (fully resolved at construction) and is
// not captured — a restore rewinds the cursors on the same schedule.
type InjectorState struct {
	next    int
	applied int
}

// Snapshot captures the schedule cursors (zero value on a nil injector, so
// fault-free architectures checkpoint uniformly).
func (inj *Injector) Snapshot() InjectorState {
	if inj == nil {
		return InjectorState{}
	}
	return InjectorState{next: inj.next, applied: inj.applied}
}

// Restore rewinds the cursors. Events at or before the restored cycle that
// had already fired will not re-fire unless the snapshot predates them.
func (inj *Injector) Restore(st InjectorState) {
	if inj == nil {
		return
	}
	inj.next = st.next
	inj.applied = st.applied
}

// Reschedule replaces the injector's fault schedule in place and rewinds the
// cursors, exactly as if the injector had been built with the new schedule.
// This is the fork point for checkpointed sweeps: warm one run up with an
// empty schedule, checkpoint, then per sweep point restore the system and
// swap in that point's faults. Events scheduled at or before the current
// cycle fire on the next Tick (late application), matching what a fresh
// build restarted at cycle zero would have already applied — so schedules
// should place their faults after the checkpoint cycle.
func (inj *Injector) Reschedule(faults []Fault, cores int, seed uint64) {
	if inj == nil {
		return
	}
	fresh := NewInjector(faults, cores, seed, inj.handler)
	inj.events = fresh.events
	inj.next = 0
	inj.applied = 0
}

// splitmix64 is the standard 64-bit mixing step; deterministic victim
// selection needs nothing stronger.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
