// Package fault is the deterministic fault-injection subsystem: a small
// vocabulary of hardware fault models (failed ExeBUs, failed register-file
// banks, degraded memory bandwidth, flaky CPU→co-processor links), a textual
// spec format for the -faults CLI flag (plus a JSON file form), and an
// Injector that fires the faults at their scheduled cycles through a Handler
// supplied by the architecture layer.
//
// Determinism is the design requirement, as everywhere in this simulator: a
// fault spec plus a seed fully determines every injection. The seed only
// matters for specs that leave a victim unassigned (e.g. "regs:32@5000" with
// no core) — the injector then derives the victim from the seed with a
// splitmix64 step, so two runs with the same spec and seed always hit the
// same unit.
package fault

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the fault models.
type Kind uint8

const (
	// ExeBU marks one or more execution-block units (granules of 4 lanes)
	// failed. With For == 0 the failure is permanent; otherwise the units
	// return to service after For cycles (a transient fault).
	ExeBU Kind = iota
	// RegBank fails register-file banks: the victim core's physical
	// register pool shrinks by Count registers (restored after For cycles
	// when transient).
	RegBank
	// Bandwidth degrades a memory level's sustained bandwidth to Factor
	// times its configured rate for the fault window (a token-rate cut).
	Bandwidth
	// XmitLink drops CPU→co-processor transmissions on the victim core's
	// dispatch link. Dropped transmissions are retried by the CPU and
	// accepted with a bounded exponential backoff for the fault window.
	XmitLink
)

func (k Kind) String() string {
	switch k {
	case ExeBU:
		return "exebu"
	case RegBank:
		return "regs"
	case Bandwidth:
		return "bw"
	case XmitLink:
		return "xmit"
	}
	return fmt.Sprintf("fault.Kind(%d)", k)
}

// AnyCore means "no victim core named in the spec": the injector derives one
// deterministically from its seed.
const AnyCore = -1

// AnyCluster means "no cluster named in the spec". On a flat machine (one
// co-processor) it is indistinguishable from cluster 0; on a clustered
// topology the architecture layer resolves it per kind — ExeBU faults land on
// cluster 0 (a deterministic default) while XmitLink faults degrade the
// victim core's link into every cluster (the core's dispatch path is faulty
// wherever it transmits).
const AnyCluster = -1

// Fault is one injection: a kind, a target, and a cycle window.
type Fault struct {
	Kind Kind `json:"kind"`
	// Count is the number of units affected: ExeBU granules for ExeBU
	// faults, physical registers for RegBank faults. Defaults to 1.
	Count int `json:"count,omitempty"`
	// Core is the victim core for RegBank and XmitLink faults (AnyCore
	// lets the injector pick one from the seed). Ignored for ExeBU and
	// Bandwidth faults.
	Core int `json:"core,omitempty"`
	// Cluster scopes ExeBU and XmitLink faults to one co-processor cluster
	// of a clustered topology ("exebu:cl1:2@5000"). AnyCluster leaves the
	// choice to the architecture layer; on a flat machine both mean the
	// single co-processor. Ignored for RegBank and Bandwidth faults. Note
	// the zero value names cluster 0 explicitly, which coincides with the
	// flat machine's only cluster — specs built by ParseSpec/ParseJSON get
	// AnyCluster when no cluster is named.
	Cluster int `json:"cluster,omitempty"`
	// Level names the degraded memory level for Bandwidth faults:
	// "dram", "l2" or "vec".
	Level string `json:"level,omitempty"`
	// Factor is the bandwidth retained during a Bandwidth fault, in
	// (0, 1]; e.g. 0.5 halves the level's token rate.
	Factor float64 `json:"factor,omitempty"`
	// At is the injection cycle.
	At uint64 `json:"at"`
	// For is the fault duration in cycles; 0 means permanent.
	For uint64 `json:"for,omitempty"`
	// Delay is the base retry backoff for XmitLink faults, in cycles
	// (defaults to 8). Each consecutive accepted transmission during the
	// window doubles the delay before the next, up to 16x the base.
	Delay uint64 `json:"delay,omitempty"`
}

func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	switch f.Kind {
	case ExeBU:
		if f.Cluster > 0 {
			fmt.Fprintf(&b, ":cl%d", f.Cluster)
		}
		if f.Count != 1 {
			fmt.Fprintf(&b, ":%d", f.Count)
		}
	case RegBank:
		if f.Core != AnyCore {
			fmt.Fprintf(&b, ":core%d", f.Core)
		}
		fmt.Fprintf(&b, ":%d", f.Count)
	case Bandwidth:
		fmt.Fprintf(&b, ":%s:%g", f.Level, f.Factor)
	case XmitLink:
		if f.Cluster > 0 {
			fmt.Fprintf(&b, ":cl%d", f.Cluster)
		}
		if f.Core != AnyCore {
			fmt.Fprintf(&b, ":core%d", f.Core)
		}
		if f.Delay != 0 {
			fmt.Fprintf(&b, ":%d", f.Delay)
		}
	}
	fmt.Fprintf(&b, "@%d", f.At)
	if f.For != 0 {
		fmt.Fprintf(&b, "+%d", f.For)
	}
	return b.String()
}

// Validate checks the fault's fields for internal consistency.
func (f Fault) Validate() error {
	switch f.Kind {
	case ExeBU, RegBank:
		if f.Count <= 0 {
			return fmt.Errorf("fault: %s: count must be positive, got %d", f.Kind, f.Count)
		}
	case Bandwidth:
		switch f.Level {
		case "dram", "l2", "vec":
		default:
			return fmt.Errorf("fault: bw: level must be dram, l2 or vec, got %q", f.Level)
		}
		if f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("fault: bw: factor must be in (0, 1], got %g", f.Factor)
		}
		if f.For == 0 {
			// Permanent bandwidth degradation is fine; nothing to check.
			break
		}
	case XmitLink:
	default:
		return fmt.Errorf("fault: unknown kind %d", f.Kind)
	}
	if f.Core < AnyCore {
		return fmt.Errorf("fault: %s: bad core %d", f.Kind, f.Core)
	}
	if f.Cluster < AnyCluster {
		return fmt.Errorf("fault: %s: bad cluster %d", f.Kind, f.Cluster)
	}
	return nil
}

// ParseSpec parses the -faults CLI grammar: a semicolon- or comma-separated
// list of entries, each "kind[:target...]@at[+for]":
//
//	exebu@50000            one ExeBU fails permanently at cycle 50000
//	exebu:3@50000          three ExeBUs fail permanently
//	exebu:2@50000+20000    two ExeBUs fail transiently for 20000 cycles
//	exebu:cl1:2@50000      two ExeBUs of co-processor cluster 1 fail
//	regs:core1:32@2000     core 1 loses 32 physical registers
//	bw:dram:0.5@1000+9000  DRAM bandwidth halved for 9000 cycles
//	xmit:core0@500+2000    core 0's dispatch link drops transmissions
//	xmit:core0:16@500+2000 same, with a 16-cycle base retry backoff
//	xmit:cl0:core1@500+2000 core 1's fabric link into cluster 0 only
//
// A spec starting with '@' names a JSON file (see ParseJSON).
func ParseSpec(spec string) ([]Fault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var faults []Fault
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		f, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		faults = append(faults, f)
	}
	return faults, nil
}

func parseEntry(entry string) (Fault, error) {
	head, window, ok := strings.Cut(entry, "@")
	if !ok {
		return Fault{}, fmt.Errorf("fault: %q: missing @cycle", entry)
	}
	at, dur, err := parseWindow(window)
	if err != nil {
		return Fault{}, fmt.Errorf("fault: %q: %v", entry, err)
	}
	parts := strings.Split(head, ":")
	f := Fault{Count: 1, Core: AnyCore, Cluster: AnyCluster, At: at, For: dur}
	switch parts[0] {
	case "exebu":
		f.Kind = ExeBU
		args := parts[1:]
		if len(args) > 0 && strings.HasPrefix(args[0], "cl") && !strings.HasPrefix(args[0], "core") {
			if f.Cluster, err = strconv.Atoi(args[0][2:]); err != nil {
				return Fault{}, fmt.Errorf("fault: %q: bad cluster %q", entry, args[0])
			}
			args = args[1:]
		}
		if len(args) > 1 {
			return Fault{}, fmt.Errorf("fault: %q: exebu takes at most one :clN and one :count", entry)
		}
		if len(args) == 1 {
			if f.Count, err = strconv.Atoi(args[0]); err != nil {
				return Fault{}, fmt.Errorf("fault: %q: bad count %q", entry, args[0])
			}
		}
	case "regs":
		f.Kind = RegBank
		args := parts[1:]
		if len(args) > 0 && strings.HasPrefix(args[0], "core") {
			if f.Core, err = strconv.Atoi(args[0][4:]); err != nil {
				return Fault{}, fmt.Errorf("fault: %q: bad core %q", entry, args[0])
			}
			args = args[1:]
		}
		if len(args) != 1 {
			return Fault{}, fmt.Errorf("fault: %q: regs needs a register count", entry)
		}
		if f.Count, err = strconv.Atoi(args[0]); err != nil {
			return Fault{}, fmt.Errorf("fault: %q: bad count %q", entry, args[0])
		}
	case "bw":
		f.Kind = Bandwidth
		if len(parts) != 3 {
			return Fault{}, fmt.Errorf("fault: %q: bw needs :level:factor", entry)
		}
		f.Level = parts[1]
		if f.Factor, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return Fault{}, fmt.Errorf("fault: %q: bad factor %q", entry, parts[2])
		}
	case "xmit":
		f.Kind = XmitLink
		for _, a := range parts[1:] {
			if strings.HasPrefix(a, "core") {
				if f.Core, err = strconv.Atoi(a[4:]); err != nil {
					return Fault{}, fmt.Errorf("fault: %q: bad core %q", entry, a)
				}
				continue
			}
			if strings.HasPrefix(a, "cl") {
				if f.Cluster, err = strconv.Atoi(a[2:]); err != nil {
					return Fault{}, fmt.Errorf("fault: %q: bad cluster %q", entry, a)
				}
				continue
			}
			if f.Delay, err = strconv.ParseUint(a, 10, 64); err != nil {
				return Fault{}, fmt.Errorf("fault: %q: bad delay %q", entry, a)
			}
		}
	default:
		return Fault{}, fmt.Errorf("fault: %q: unknown kind %q (want exebu, regs, bw or xmit)", entry, parts[0])
	}
	if err := f.Validate(); err != nil {
		return Fault{}, err
	}
	return f, nil
}

func parseWindow(s string) (at, dur uint64, err error) {
	atStr, durStr, transient := strings.Cut(s, "+")
	if at, err = strconv.ParseUint(atStr, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad cycle %q", atStr)
	}
	if transient {
		if dur, err = strconv.ParseUint(durStr, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad duration %q", durStr)
		}
		if dur == 0 {
			return 0, 0, fmt.Errorf("transient duration must be positive")
		}
	}
	return at, dur, nil
}

// jsonFault mirrors Fault with a string kind, the natural JSON form.
type jsonFault struct {
	Kind    string  `json:"kind"`
	Count   int     `json:"count"`
	Core    *int    `json:"core"`
	Cluster *int    `json:"cluster"`
	Level   string  `json:"level"`
	Factor  float64 `json:"factor"`
	At      uint64  `json:"at"`
	For     uint64  `json:"for"`
	Delay   uint64  `json:"delay"`
}

// ParseJSON parses the JSON file form of a fault spec: a list of objects with
// the fields of Fault, kind spelled as "exebu" | "regs" | "bw" | "xmit".
func ParseJSON(data []byte) ([]Fault, error) {
	var raw []jsonFault
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("fault: bad JSON spec: %v", err)
	}
	var faults []Fault
	for i, j := range raw {
		f := Fault{Count: j.Count, Core: AnyCore, Cluster: AnyCluster, Level: j.Level, Factor: j.Factor, At: j.At, For: j.For, Delay: j.Delay}
		if f.Count == 0 {
			f.Count = 1
		}
		if j.Core != nil {
			f.Core = *j.Core
		}
		if j.Cluster != nil {
			f.Cluster = *j.Cluster
		}
		switch j.Kind {
		case "exebu":
			f.Kind = ExeBU
		case "regs":
			f.Kind = RegBank
		case "bw":
			f.Kind = Bandwidth
		case "xmit":
			f.Kind = XmitLink
		default:
			return nil, fmt.Errorf("fault: entry %d: unknown kind %q", i, j.Kind)
		}
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("fault: entry %d: %v", i, err)
		}
		faults = append(faults, f)
	}
	return faults, nil
}
