package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestServiceStatsOpenMetricsValid: the service families render in the
// dialect ValidateOpenMetrics enforces, and moved counters show up with their
// values.
func TestServiceStatsOpenMetricsValid(t *testing.T) {
	var s ServiceStats
	s.Admitted()
	s.Admitted()
	s.QueueAdd(3)
	s.RunningAdd(1)
	s.SetDraining(true)
	s.CacheHit()
	s.CacheMiss()
	s.CacheCorrupt()
	s.Retried()
	s.RejectedFull()

	var buf bytes.Buffer
	if err := s.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidateOpenMetrics(strings.NewReader(text)); err != nil {
		t.Fatalf("service metrics fail validation: %v\n%s", err, text)
	}
	for _, want := range []string{
		"occamy_serve_admitted_total 2",
		"occamy_serve_queue_depth 3",
		"occamy_serve_running 1",
		"occamy_serve_draining 1",
		"occamy_serve_cache_hits_total 1",
		"occamy_serve_cache_misses_total 1",
		"occamy_serve_cache_corrupt_total 1",
		"occamy_serve_retries_total 1",
		"occamy_serve_rejected_queue_full_total 1",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing sample %q in:\n%s", want, text)
		}
	}
}
