package telemetry

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	sv := NewServer()
	r := newRig(t, 2, Config{Window: 100})
	sv.Attach("occamy", r.s)
	r.drive(0, 400)
	r.s.Emit(250, EvLaneReconfigure, 1, 4, "")

	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if err := ValidateOpenMetrics(strings.NewReader(metrics)); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, metrics)
	}
	if !strings.Contains(metrics, `occamy_sim_cycles{run="occamy"} 400`) {
		t.Errorf("/metrics missing live cycle gauge:\n%s", metrics)
	}

	events := get("/events")
	if err := ValidateEventsJSONL(strings.NewReader(events)); err != nil {
		t.Fatalf("/events invalid: %v\n%s", err, events)
	}
	if !strings.Contains(events, EvLaneReconfigure) {
		t.Errorf("/events missing emitted event:\n%s", events)
	}

	if h := get("/healthz"); !strings.Contains(h, "ok") {
		t.Errorf("/healthz = %q", h)
	}
}

func TestServerStreamDeliversWindowUpdates(t *testing.T) {
	sv := NewServer()
	r := newRig(t, 1, Config{Window: 10})
	sv.Attach("run0", r.s)
	if err := sv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	resp, err := http.Get("http://" + sv.Addr() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				lines <- line
			}
		}
		close(lines)
	}()

	// The stream sends an initial snapshot immediately.
	select {
	case l := <-lines:
		if !strings.Contains(l, `"run0"`) {
			t.Fatalf("initial stream payload = %q", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no initial SSE payload")
	}

	// A closed window must push an update.
	r.s.Tick(10)
	select {
	case l := <-lines:
		if !strings.Contains(l, `"windows":1`) {
			t.Fatalf("window update payload = %q", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE payload after window close")
	}
}

// TestServerConcurrentRuns hammers the server from parallel samplers and
// parallel readers; run under -race this is the concurrency property test.
func TestServerConcurrentRuns(t *testing.T) {
	sv := NewServer()
	const nruns = 4
	rigs := make([]*rig, nruns)
	for i := range rigs {
		rigs[i] = newRig(t, 2, Config{Window: 20, Windows: 8, Events: 32})
		sv.Attach("run"+string(rune('a'+i)), rigs[i].s)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for _, r := range rigs {
		wg.Add(1)
		go func(r *rig) {
			defer wg.Done()
			for now := uint64(1); now <= 2000; now++ {
				if now%3 == 0 {
					r.cores[0].insts++
					r.cp.busy[0] += 4
				}
				if now%50 == 0 {
					r.s.Emit(now, EvLaneReconfigure, 0, now%8, "")
				}
				if now%20 == 0 {
					r.s.Tick(now)
				}
			}
		}(r)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for _, path := range []string{"/metrics", "/events"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := ValidateOpenMetrics(resp.Body); err != nil {
		t.Fatalf("final /metrics invalid: %v", err)
	}
}

func TestServerEviction(t *testing.T) {
	sv := NewServer()
	for i := 0; i < maxAttachedRuns+5; i++ {
		r := newRig(t, 1, Config{Window: 10, Windows: 2, Events: 2})
		sv.Attach("r", r.s)
	}
	if got := len(sv.snapshotRuns()); got != maxAttachedRuns {
		t.Fatalf("retained runs = %d, want %d", got, maxAttachedRuns)
	}
}
