package telemetry

import (
	"fmt"
	"io"

	"occamy/internal/obs"
)

// TrafficSource is the open-loop traffic injector's telemetry view
// (internal/traffic's Source satisfies it). Counter methods are cumulative;
// the bin copies are cumulative power-of-two latency histograms.
type TrafficSource interface {
	Queued() int
	Running() int
	Arrived() uint64
	Admitted() uint64
	Completed() uint64
	Canceled() uint64
	CopySojournBins(dst *[obs.NumBins]uint64)
	CopyAdmitBins(dst *[obs.NumBins]uint64)
}

// TrafficWindow is one sampling window's traffic slice: ready-ring and
// on-core gauges at the boundary, per-window task-flow deltas, and windowed
// latency quantiles over the arrivals that completed (sojourn) or first
// dispatched (admission wait) inside the window.
type TrafficWindow struct {
	Queued  int
	Running int

	Arrived   uint64
	Admitted  uint64
	Completed uint64
	Canceled  uint64

	SojournCount uint64
	SojournP50   float64
	SojournP99   float64
	AdmitCount   uint64
	AdmitP50     float64
	AdmitP99     float64
}

// WireTraffic attaches the traffic injector to the sampler. Call it before
// the run starts (internal/traffic's Build does); windows closed afterwards
// carry a traffic slice and it enters Digest — samplers with no traffic
// wired hash exactly as before.
func (s *Sampler) WireTraffic(ts TrafficSource) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.src.Traffic = ts
	s.mu.Unlock()
}

// sampleTraffic fills w's traffic slice. Caller holds s.mu; allocation-free
// (shares the sampler's bin scratch, which the per-core loop has finished
// with).
func (s *Sampler) sampleTraffic(w *Window) {
	ts := s.src.Traffic
	if ts == nil {
		w.HasTraffic = false
		return
	}
	w.HasTraffic = true
	tw := &w.Traffic
	tw.Queued, tw.Running = ts.Queued(), ts.Running()

	a, ad, co, ca := ts.Arrived(), ts.Admitted(), ts.Completed(), ts.Canceled()
	tw.Arrived, s.prev.trafArrived = a-s.prev.trafArrived, a
	tw.Admitted, s.prev.trafAdmitted = ad-s.prev.trafAdmitted, ad
	tw.Completed, s.prev.trafCompleted = co-s.prev.trafCompleted, co
	tw.Canceled, s.prev.trafCanceled = ca-s.prev.trafCanceled, ca

	tw.SojournCount, tw.SojournP50, tw.SojournP99 =
		s.binDelta(ts.CopySojournBins, &s.prev.trafSojourn)
	tw.AdmitCount, tw.AdmitP50, tw.AdmitP99 =
		s.binDelta(ts.CopyAdmitBins, &s.prev.trafAdmit)
}

// binDelta diffs a cumulative bin copy against prev and estimates windowed
// quantiles on the delta, updating prev in place.
func (s *Sampler) binDelta(copyBins func(*[obs.NumBins]uint64), prev *[obs.NumBins]uint64) (cnt uint64, p50, p99 float64) {
	copyBins(&s.scratch)
	for i := range s.scratch {
		d := s.scratch[i] - prev[i]
		s.delta[i] = d
		cnt += d
	}
	*prev = s.scratch
	if cnt > 0 {
		p50 = obs.QuantileBins(&s.delta, 0.50)
		p99 = obs.QuantileBins(&s.delta, 0.99)
	}
	return cnt, p50, p99
}

// Traffic OpenMetrics families, appended to omFamilies at init. Samples are
// emitted only for runs whose sampler has traffic wired, so non-traffic
// /metrics output is unchanged beyond the (legal) empty family declarations.
func init() {
	omFamilies = append(omFamilies,
		omFamily{"occamy_traffic_queued", "gauge", "Ready-ring occupancy at the last window boundary.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_queued{run=%q} %d\n", l, v.Traffic.Queued)
				}
			}},
		omFamily{"occamy_traffic_running", "gauge", "Tasks on a core at the last window boundary.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_running{run=%q} %d\n", l, v.Traffic.Running)
				}
			}},
		omFamily{"occamy_traffic_arrived", "counter", "Task arrivals injected.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_arrived_total{run=%q} %d\n", l, v.TrafficArrived)
				}
			}},
		omFamily{"occamy_traffic_admitted", "counter", "Tasks first-dispatched onto a core.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_admitted_total{run=%q} %d\n", l, v.TrafficAdmitted)
				}
			}},
		omFamily{"occamy_traffic_completed", "counter", "Tasks run to completion.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_completed_total{run=%q} %d\n", l, v.TrafficCompleted)
				}
			}},
		omFamily{"occamy_traffic_canceled", "counter", "Tasks canceled by tenant churn.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_canceled_total{run=%q} %d\n", l, v.TrafficCanceled)
				}
			}},
		omFamily{"occamy_traffic_sojourn_cycles", "gauge", "Windowed arrival-to-completion latency quantiles.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_sojourn_cycles{run=%q,quantile=\"0.5\"} %g\n", l, v.Traffic.SojournP50)
					fmt.Fprintf(w, "occamy_traffic_sojourn_cycles{run=%q,quantile=\"0.99\"} %g\n", l, v.Traffic.SojournP99)
				}
			}},
		omFamily{"occamy_traffic_admit_wait_cycles", "gauge", "Windowed arrival-to-first-dispatch wait quantiles.",
			func(w io.Writer, l string, v *View) {
				if v.HasTraffic {
					fmt.Fprintf(w, "occamy_traffic_admit_wait_cycles{run=%q,quantile=\"0.5\"} %g\n", l, v.Traffic.AdmitP50)
					fmt.Fprintf(w, "occamy_traffic_admit_wait_cycles{run=%q,quantile=\"0.99\"} %g\n", l, v.Traffic.AdmitP99)
				}
			}},
	)
}
