package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// maxAttachedRuns bounds the server's memory when a long bench campaign
// attaches hundreds of samplers: the oldest runs are evicted (their samplers
// stay alive for whoever else holds them; the server just stops serving
// them).
const maxAttachedRuns = 64

// Server exposes attached samplers over HTTP:
//
//	GET /metrics  — OpenMetrics text across all attached runs
//	GET /events   — structured event log, one JSON object per line
//	GET /stream   — SSE: one event per closed window (any run)
//	GET /healthz  — liveness
//
// The server never blocks or allocates on the simulation's tick path: window
// boundaries only bump a version counter and broadcast a condition variable.
type Server struct {
	mu      sync.Mutex
	cond    *sync.Cond
	version uint64
	closed  bool
	runs    []serverRun

	srv *http.Server
	ln  net.Listener
}

type serverRun struct {
	label string
	s     *Sampler
}

// NewServer returns a server with no attached runs and no listener.
func NewServer() *Server {
	sv := &Server{}
	sv.cond = sync.NewCond(&sv.mu)
	return sv
}

// Attach registers a sampler under a run label and subscribes to its window
// notifications. Labels should be unique per run; the newest maxAttachedRuns
// are retained.
func (sv *Server) Attach(label string, s *Sampler) {
	if sv == nil || s == nil {
		return
	}
	sv.mu.Lock()
	sv.runs = append(sv.runs, serverRun{label: label, s: s})
	if len(sv.runs) > maxAttachedRuns {
		// Drop the oldest; copy to release the evicted samplers.
		keep := make([]serverRun, maxAttachedRuns)
		copy(keep, sv.runs[len(sv.runs)-maxAttachedRuns:])
		sv.runs = keep
	}
	sv.mu.Unlock()
	s.OnWindow(sv.bump)
}

// bump wakes every /stream subscriber. Allocation-free: safe to call from a
// window boundary inside the simulation tick.
func (sv *Server) bump() {
	sv.mu.Lock()
	sv.version++
	sv.mu.Unlock()
	sv.cond.Broadcast()
}

// Handler returns the server's routing table (also used by httptest).
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", sv.handleMetrics)
	mux.HandleFunc("/events", sv.handleEvents)
	mux.HandleFunc("/stream", sv.handleStream)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:9464"; ":0" picks a free port) and
// serves in a background goroutine.
func (sv *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	sv.mu.Lock()
	sv.ln = ln
	sv.srv = &http.Server{Handler: sv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	srv := sv.srv
	sv.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Close() shuts it down
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (sv *Server) Addr() string {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.ln == nil {
		return ""
	}
	return sv.ln.Addr().String()
}

// Close stops the listener and unblocks every /stream subscriber.
func (sv *Server) Close() error {
	sv.mu.Lock()
	sv.closed = true
	srv := sv.srv
	sv.srv, sv.ln = nil, nil
	sv.mu.Unlock()
	sv.cond.Broadcast()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// snapshotRuns copies the attached-run list for lock-free iteration.
func (sv *Server) snapshotRuns() []serverRun {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return append([]serverRun(nil), sv.runs...)
}

func (sv *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	runs := sv.snapshotRuns()
	views := make([]LabeledView, len(runs))
	for i, r := range runs {
		views[i] = LabeledView{Label: r.label, View: r.s.View()}
	}
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	RenderOpenMetrics(w, views) //nolint:errcheck // client gone
}

func (sv *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, r := range sv.snapshotRuns() {
		r.s.WriteEventsJSONL(w, r.label) //nolint:errcheck // client gone
	}
}

// streamUpdate is one SSE payload: the per-run window watermarks.
type streamUpdate struct {
	Version uint64            `json:"version"`
	Runs    []streamRunStatus `json:"runs"`
}

type streamRunStatus struct {
	Run     string `json:"run"`
	Windows uint64 `json:"windows"`
	Cycle   uint64 `json:"cycle"`
	Events  uint64 `json:"events"`
}

func (sv *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	// Wake the cond loop when the client goes away.
	done := r.Context().Done()
	go func() {
		<-done
		sv.cond.Broadcast()
	}()

	enc := json.NewEncoder(w)
	var last uint64
	first := true
	for {
		sv.mu.Lock()
		for !first && sv.version == last && !sv.closed && !ctxDone(done) {
			sv.cond.Wait()
		}
		version := sv.version
		closed := sv.closed
		sv.mu.Unlock()
		if closed || ctxDone(done) {
			return
		}
		first = false
		last = version

		upd := streamUpdate{Version: version}
		for _, run := range sv.snapshotRuns() {
			v := run.s.View()
			upd.Runs = append(upd.Runs, streamRunStatus{
				Run: run.label, Windows: v.Produced, Cycle: v.EndCycle, Events: v.EventsTotal,
			})
		}
		if _, err := fmt.Fprint(w, "data: "); err != nil {
			return
		}
		if err := enc.Encode(upd); err != nil { // Encode appends the newline
			return
		}
		if _, err := fmt.Fprint(w, "\n"); err != nil {
			return
		}
		fl.Flush()
	}
}

func ctxDone(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
