package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"
)

// ServiceStats is the occamy-serve job service's metrics surface: lock-free
// atomic counters and gauges updated from the admission path, the worker
// pool and the checkpoint cache, rendered in the same OpenMetrics dialect as
// the per-run sampler families (validated by ValidateOpenMetrics). All fields
// are manipulated through the methods; the zero value is ready to use.
type ServiceStats struct {
	// Gauges.
	queueDepth atomic.Int64 // jobs admitted but not yet picked up by a worker
	running    atomic.Int64 // jobs currently executing on a worker
	draining   atomic.Int64 // 1 once drain begins
	tenants    atomic.Int64 // tenants with at least one queued or running job

	// Admission counters.
	admitted         atomic.Uint64 // accepted into the queue
	deduped          atomic.Uint64 // coalesced onto an identical in-flight job
	rejectedFull     atomic.Uint64 // 429: queue at capacity
	rejectedQuota    atomic.Uint64 // 429: tenant over its in-flight quota
	rejectedDraining atomic.Uint64 // 503: submitted during drain

	// Execution counters.
	doneOK     atomic.Uint64 // jobs that completed successfully
	doneFailed atomic.Uint64 // jobs that failed permanently
	retries    atomic.Uint64 // attempts re-queued after a transient failure
	timeouts   atomic.Uint64 // attempts killed by their deadline
	stalls     atomic.Uint64 // attempts killed by the forward-progress watchdog
	parked     atomic.Uint64 // jobs checkpoint-parked by a drain
	replayed   atomic.Uint64 // journal entries re-admitted on restart

	// Checkpoint-cache counters.
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	cacheCorrupt   atomic.Uint64 // entries that failed digest verification on load
	cacheEvictions atomic.Uint64 // capacity evictions (corrupt evictions count here too)
}

// Queue-depth gauge.
func (s *ServiceStats) QueueAdd(d int64) { s.queueDepth.Add(d) }

// Running-jobs gauge.
func (s *ServiceStats) RunningAdd(d int64) { s.running.Add(d) }

// SetDraining flips the drain-state gauge.
func (s *ServiceStats) SetDraining(on bool) {
	if on {
		s.draining.Store(1)
	} else {
		s.draining.Store(0)
	}
}

// SetTenants records the number of tenants with live work.
func (s *ServiceStats) SetTenants(n int64) { s.tenants.Store(n) }

func (s *ServiceStats) Admitted()         { s.admitted.Add(1) }
func (s *ServiceStats) Deduped()          { s.deduped.Add(1) }
func (s *ServiceStats) RejectedFull()     { s.rejectedFull.Add(1) }
func (s *ServiceStats) RejectedQuota()    { s.rejectedQuota.Add(1) }
func (s *ServiceStats) RejectedDraining() { s.rejectedDraining.Add(1) }
func (s *ServiceStats) DoneOK()           { s.doneOK.Add(1) }
func (s *ServiceStats) DoneFailed()       { s.doneFailed.Add(1) }
func (s *ServiceStats) Retried()          { s.retries.Add(1) }
func (s *ServiceStats) TimedOut()         { s.timeouts.Add(1) }
func (s *ServiceStats) Stalled()          { s.stalls.Add(1) }
func (s *ServiceStats) Parked()           { s.parked.Add(1) }
func (s *ServiceStats) Replayed()         { s.replayed.Add(1) }
func (s *ServiceStats) CacheHit()         { s.cacheHits.Add(1) }
func (s *ServiceStats) CacheMiss()        { s.cacheMisses.Add(1) }
func (s *ServiceStats) CacheCorrupt()     { s.cacheCorrupt.Add(1) }
func (s *ServiceStats) CacheEvicted()     { s.cacheEvictions.Add(1) }

// Read-side accessors used by tests and the drain path.
func (s *ServiceStats) QueueDepth() int64     { return s.queueDepth.Load() }
func (s *ServiceStats) Running() int64        { return s.running.Load() }
func (s *ServiceStats) CacheHits() uint64     { return s.cacheHits.Load() }
func (s *ServiceStats) CacheMissed() uint64   { return s.cacheMisses.Load() }
func (s *ServiceStats) CacheCorrupts() uint64 { return s.cacheCorrupt.Load() }
func (s *ServiceStats) Retries() uint64       { return s.retries.Load() }

// svcFamily declares one occamy_serve_* OpenMetrics family.
type svcFamily struct {
	name string // family name; counter samples append _total
	kind string // "counter" or "gauge"
	help string
	load func(s *ServiceStats) any
}

var svcFamilies = []svcFamily{
	{"occamy_serve_queue_depth", "gauge", "Jobs admitted and waiting for a worker.",
		func(s *ServiceStats) any { return s.queueDepth.Load() }},
	{"occamy_serve_running", "gauge", "Jobs currently executing.",
		func(s *ServiceStats) any { return s.running.Load() }},
	{"occamy_serve_draining", "gauge", "1 while the service is draining.",
		func(s *ServiceStats) any { return s.draining.Load() }},
	{"occamy_serve_live_tenants", "gauge", "Tenants with queued or running jobs.",
		func(s *ServiceStats) any { return s.tenants.Load() }},
	{"occamy_serve_admitted", "counter", "Jobs accepted into the queue.",
		func(s *ServiceStats) any { return s.admitted.Load() }},
	{"occamy_serve_deduplicated", "counter", "Submissions coalesced onto an identical in-flight job.",
		func(s *ServiceStats) any { return s.deduped.Load() }},
	{"occamy_serve_rejected_queue_full", "counter", "Submissions rejected with 429: queue at capacity.",
		func(s *ServiceStats) any { return s.rejectedFull.Load() }},
	{"occamy_serve_rejected_quota", "counter", "Submissions rejected with 429: tenant over quota.",
		func(s *ServiceStats) any { return s.rejectedQuota.Load() }},
	{"occamy_serve_rejected_draining", "counter", "Submissions rejected with 503 during drain.",
		func(s *ServiceStats) any { return s.rejectedDraining.Load() }},
	{"occamy_serve_jobs_done", "counter", "Jobs completed successfully.",
		func(s *ServiceStats) any { return s.doneOK.Load() }},
	{"occamy_serve_jobs_failed", "counter", "Jobs failed permanently.",
		func(s *ServiceStats) any { return s.doneFailed.Load() }},
	{"occamy_serve_retries", "counter", "Attempts re-queued after a transient failure.",
		func(s *ServiceStats) any { return s.retries.Load() }},
	{"occamy_serve_timeouts", "counter", "Attempts killed by their deadline.",
		func(s *ServiceStats) any { return s.timeouts.Load() }},
	{"occamy_serve_stalls", "counter", "Attempts killed by the forward-progress watchdog.",
		func(s *ServiceStats) any { return s.stalls.Load() }},
	{"occamy_serve_jobs_parked", "counter", "Jobs checkpoint-parked by a drain.",
		func(s *ServiceStats) any { return s.parked.Load() }},
	{"occamy_serve_jobs_replayed", "counter", "Journal entries re-admitted on restart.",
		func(s *ServiceStats) any { return s.replayed.Load() }},
	{"occamy_serve_cache_hits", "counter", "Checkpoint-cache hits.",
		func(s *ServiceStats) any { return s.cacheHits.Load() }},
	{"occamy_serve_cache_misses", "counter", "Checkpoint-cache misses (cold warm-ups).",
		func(s *ServiceStats) any { return s.cacheMisses.Load() }},
	{"occamy_serve_cache_corrupt", "counter", "Checkpoint-cache entries that failed digest verification.",
		func(s *ServiceStats) any { return s.cacheCorrupt.Load() }},
	{"occamy_serve_cache_evictions", "counter", "Checkpoint-cache entries evicted.",
		func(s *ServiceStats) any { return s.cacheEvictions.Load() }},
}

// WriteOpenMetrics renders the service families in the renderer's dialect:
// HELP and TYPE per family, counters named *_total, "# EOF" terminator. The
// output passes ValidateOpenMetrics.
func (s *ServiceStats) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range svcFamilies {
		f := &svcFamilies[i]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		name := f.name
		if f.kind == "counter" {
			name += "_total"
		}
		fmt.Fprintf(bw, "%s %d\n", name, f.load(s))
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}
