package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"occamy/internal/obs"
	"occamy/internal/sim"
)

// Fake sources: hand-driven state the tests mutate between boundaries.

type fakeCore struct {
	halted, parked bool
	insts, elems   uint64
}

func (f *fakeCore) Halted() bool     { return f.halted }
func (f *fakeCore) Parked() bool     { return f.parked }
func (f *fakeCore) Progress() uint64 { return f.insts }
func (f *fakeCore) Elems() uint64    { return f.elems }

type fakeCp struct {
	compute, mem, stalls []uint64
	busy                 []float64
	vl                   []int
}

func (f *fakeCp) ComputeIssued(c int) uint64   { return f.compute[c] }
func (f *fakeCp) MemIssued(c int) uint64       { return f.mem[c] }
func (f *fakeCp) RenameStalls(c int) uint64    { return f.stalls[c] }
func (f *fakeCp) BusyLaneCycles(c int) float64 { return f.busy[c] }
func (f *fakeCp) VL(c int) int                 { return f.vl[c] }

type fakeTbl struct {
	al, usable, failed, total int
	decisions                 []int
}

func (f *fakeTbl) AL() int            { return f.al }
func (f *fakeTbl) Usable() int        { return f.usable }
func (f *fakeTbl) Failed() int        { return f.failed }
func (f *fakeTbl) Total() int         { return f.total }
func (f *fakeTbl) Decision(c int) int { return f.decisions[c] }

type rig struct {
	cores []*fakeCore
	cp    *fakeCp
	tbl   *fakeTbl
	probe *obs.Probe
	stats *sim.Stats
	s     *Sampler
}

func newRig(t *testing.T, n int, cfg Config) *rig {
	t.Helper()
	r := &rig{
		cp: &fakeCp{
			compute: make([]uint64, n), mem: make([]uint64, n),
			stalls: make([]uint64, n), busy: make([]float64, n), vl: make([]int, n),
		},
		tbl:   &fakeTbl{al: 8, usable: 8, total: 8, decisions: make([]int, n)},
		probe: obs.NewProbe(n, nil),
		stats: sim.NewStats(),
	}
	srcs := Sources{Cp: r.cp, Tbl: r.tbl, Probe: r.probe, Stats: r.stats, Lanes: 32}
	for i := 0; i < n; i++ {
		c := &fakeCore{}
		r.cores = append(r.cores, c)
		srcs.Cores = append(srcs.Cores, c)
	}
	r.s = NewSampler(cfg, srcs)
	return r
}

func TestWindowDeltasAndGauges(t *testing.T) {
	r := newRig(t, 2, Config{Window: 100})
	s := r.s

	// Window 1: core 0 does work; core 1 idles.
	r.cores[0].insts, r.cores[0].elems = 50, 800
	r.cp.compute[0], r.cp.busy[0], r.cp.vl[0] = 40, 1600, 6
	r.cp.vl[1] = 2
	h := r.probe.Hist(obs.RetireHistName(0))
	for i := 0; i < 10; i++ {
		h.Observe(20)
	}
	s.Tick(50) // not a boundary: no window
	if got := s.Produced(); got != 0 {
		t.Fatalf("windows after non-boundary tick = %d, want 0", got)
	}
	s.Tick(100)
	if got := s.Produced(); got != 1 {
		t.Fatalf("windows = %d, want 1", got)
	}
	var w Window
	if !s.CopyWindow(0, &w) {
		t.Fatal("CopyWindow(0) failed")
	}
	if w.EndCycle != 100 || w.Cycles != 100 {
		t.Fatalf("window bounds = (%d, %d), want (100, 100)", w.EndCycle, w.Cycles)
	}
	c0 := w.Cores[0]
	if c0.Insts != 50 || c0.Elems != 800 || c0.Compute != 40 {
		t.Fatalf("core0 deltas = %+v", c0)
	}
	if c0.BusyLanes != 1600 {
		t.Fatalf("core0 busy = %g, want 1600", c0.BusyLanes)
	}
	if c0.VL != 6 || c0.Headroom != 5 {
		t.Fatalf("core0 vl/headroom = %d/%d, want 6/5", c0.VL, c0.Headroom)
	}
	if c0.RetireCount != 10 || c0.RetireP50 < 16 || c0.RetireP50 > 31 {
		t.Fatalf("core0 retire = n%d p50=%g, want n10 p50 in [16,31]", c0.RetireCount, c0.RetireP50)
	}
	// Occupancy: 1600 lane·cycles over 100 cycles of a 32-lane array = 0.5.
	if w.Occupancy != 0.5 {
		t.Fatalf("occupancy = %g, want 0.5", w.Occupancy)
	}

	// Window 2: nothing moves — all deltas must be zero; halted core's
	// headroom is its whole partition.
	r.cores[1].halted = true
	s.Tick(200)
	if !s.CopyWindow(1, &w) {
		t.Fatal("CopyWindow(1) failed")
	}
	if w.Cores[0].Insts != 0 || w.Cores[0].Compute != 0 || w.Cores[0].RetireCount != 0 {
		t.Fatalf("quiet window deltas nonzero: %+v", w.Cores[0])
	}
	if !w.Cores[1].Halted || w.Cores[1].Headroom != 2 {
		t.Fatalf("halted core1 headroom = %d, want 2 (full VL)", w.Cores[1].Headroom)
	}
}

func TestSleeperContract(t *testing.T) {
	r := newRig(t, 1, Config{Window: 64})
	s := r.s
	if wake, q := s.NextWake(0); !q || wake != 64 {
		t.Fatalf("NextWake(0) = (%d, %v), want (64, true)", wake, q)
	}
	if wake, q := s.NextWake(63); !q || wake != 64 {
		t.Fatalf("NextWake(63) = (%d, %v), want (64, true)", wake, q)
	}
	if _, q := s.NextWake(64); q {
		t.Fatal("NextWake(64): boundary must not be quiescent")
	}
	if wake, q := s.NextWake(65); !q || wake != 128 {
		t.Fatalf("NextWake(65) = (%d, %v), want (128, true)", wake, q)
	}
	s.SkipTicks(1, 63) // must be a no-op
	if got := s.Produced(); got != 0 {
		t.Fatalf("SkipTicks produced %d windows", got)
	}
}

func TestEventRingWrap(t *testing.T) {
	r := newRig(t, 1, Config{Window: 10, Events: 4})
	s := r.s
	for i := 0; i < 6; i++ {
		s.Emit(uint64(i), EvLaneReconfigure, 0, uint64(i), "")
	}
	if got := s.EventsProduced(); got != 6 {
		t.Fatalf("EventsProduced = %d, want 6", got)
	}
	evs := s.Events(nil)
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	if evs[0].Cycle != 2 || evs[3].Cycle != 5 {
		t.Fatalf("ring order wrong: first=%d last=%d", evs[0].Cycle, evs[3].Cycle)
	}
	s.EmitMeta(7, EvCheckpoint, "fork A")
	evs = s.Events(nil)
	if len(evs) != 5 || !evs[4].Meta {
		t.Fatalf("meta event missing: %+v", evs)
	}
	// Meta events stay out of the digest.
	d1 := s.Digest()
	s.EmitMeta(8, EvRestore, "")
	if d2 := s.Digest(); d2 != d1 {
		t.Fatal("meta event changed the digest")
	}
	// Deterministic events do change it.
	s.Emit(9, EvFaultApply, -1, 1, "")
	if d3 := s.Digest(); d3 == d1 {
		t.Fatal("deterministic event did not change the digest")
	}
}

// run drives the rig through identical state mutations; used to compare
// snapshot/restore replays.
func (r *rig) drive(from, to uint64) {
	w := r.s.Window()
	for now := from + 1; now <= to; now++ {
		if now%7 == 0 {
			r.cores[0].insts += 3
			r.cp.compute[0] += 2
			r.cp.busy[0] += 12
			r.probe.Hist(obs.RetireHistName(0)).Observe(now % 40)
		}
		if now%97 == 0 {
			r.s.Emit(now, EvLaneReconfigure, 0, now%8, "")
		}
		if now%w == 0 {
			r.s.Tick(now)
		}
	}
}

func TestSnapshotRestoreBitIdentical(t *testing.T) {
	r := newRig(t, 2, Config{Window: 50, Windows: 8, Events: 16})
	r.drive(0, 300)
	st := r.s.Snapshot()
	dAtFork := r.s.Digest()

	// Continue the base run.
	r.drive(300, 700)
	dBase := r.s.Digest()

	// Rewind: digest must return to the fork point...
	// (source state must be rewound too for a true replay, so re-create it)
	r.s.Restore(st)
	if got := r.s.Digest(); got != dAtFork {
		t.Fatalf("restored digest = %#x, want fork-point %#x", got, dAtFork)
	}
	// ...and replaying the same source evolution must reproduce the base
	// run's telemetry bit-identically. Rebuild the sources at fork state.
	r2 := newRig(t, 2, Config{Window: 50, Windows: 8, Events: 16})
	r2.drive(0, 300)
	r2.s.Restore(st)
	r2.drive(300, 700)
	if got := r2.s.Digest(); got != dBase {
		t.Fatalf("forked digest = %#x, want base %#x", got, dBase)
	}
}

func TestFlushPartialWindow(t *testing.T) {
	r := newRig(t, 1, Config{Window: 100})
	r.cores[0].insts = 5
	r.s.Tick(100)
	r.cores[0].insts = 9
	r.s.Flush(142)
	if got := r.s.Produced(); got != 2 {
		t.Fatalf("windows = %d, want 2", got)
	}
	var w Window
	r.s.CopyWindow(1, &w)
	if w.EndCycle != 142 || w.Cycles != 42 || w.Cores[0].Insts != 4 {
		t.Fatalf("partial window = end%d len%d insts%d, want 142/42/4", w.EndCycle, w.Cycles, w.Cores[0].Insts)
	}
	// Flush at the same cycle is a no-op.
	r.s.Flush(142)
	if got := r.s.Produced(); got != 2 {
		t.Fatalf("double flush produced %d windows", got)
	}
}

func TestOpenMetricsRendersAndValidates(t *testing.T) {
	r := newRig(t, 2, Config{Window: 100})
	r.drive(0, 400)
	var buf bytes.Buffer
	if err := r.s.WriteOpenMetrics(&buf, "occamy/f2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateOpenMetrics(strings.NewReader(out)); err != nil {
		t.Fatalf("rendered output fails validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		"occamy_core_vl_granules{run=\"occamy/f2\",core=\"0\"}",
		"occamy_core_retire_latency_cycles{run=\"occamy/f2\",core=\"1\",quantile=\"0.99\"}",
		"occamy_repartitions_total",
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"no-eof":           "# TYPE a gauge\na 1\n",
		"sample-sans-type": "a 1\n# EOF\n",
		"counter-no-total": "# TYPE a counter\na 1\n# EOF\n",
		"bad-value":        "# TYPE a gauge\na xyz\n# EOF\n",
		"dup-type":         "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n",
		"unterminated":     "# TYPE a gauge\na{x=\"1 5\n# EOF\n",
		"empty":            "# EOF\n",
	}
	for name, in := range cases {
		if err := ValidateOpenMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	r := newRig(t, 1, Config{Window: 10})
	r.s.Emit(5, EvFaultApply, 0, 2, "exebu x2")
	r.s.Emit(40, EvRecoveryDone, 0, 35, "")
	r.s.EmitMeta(60, EvCheckpoint, "")
	var buf bytes.Buffer
	if err := r.s.WriteEventsJSONL(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateEventsJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-trip failed: %v\n%s", err, buf.String())
	}
	if n := strings.Count(buf.String(), "\n"); n != 3 {
		t.Fatalf("lines = %d, want 3", n)
	}
	if err := ValidateEventsJSONL(strings.NewReader("{\"cycle\":1}\n")); err == nil {
		t.Error("kind-less event validated")
	}
	if err := ValidateEventsJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage validated")
	}
	if err := ValidateEventsJSONL(strings.NewReader("")); err != nil {
		t.Errorf("empty log must validate (healthy runs have no events): %v", err)
	}
}

func TestTimelineValidatesAsPerfetto(t *testing.T) {
	r := newRig(t, 2, Config{Window: 100})
	r.drive(0, 500)
	r.s.Emit(123, EvLaneRepartition, -1, 0, "")
	var buf bytes.Buffer
	n, err := r.s.WriteTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty timeline")
	}
	if err := obs.ValidatePerfetto(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("timeline fails Perfetto validation: %v", err)
	}
}

func TestNilSamplerSafe(t *testing.T) {
	var s *Sampler
	s.Emit(1, EvFaultApply, 0, 0, "")
	s.EmitMeta(1, EvCheckpoint, "")
	s.Flush(10)
	s.Restore(nil)
	if s.Snapshot() != nil || s.Digest() != 0 || s.Produced() != 0 || s.Retained() != 0 {
		t.Fatal("nil sampler leaked state")
	}
	var buf bytes.Buffer
	if _, err := s.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
}
