package telemetry

import (
	"fmt"
	"io"

	"occamy/internal/obs"
)

// This file renders the sampler's full retained history as Perfetto counter
// tracks: one process per core carrying occupancy / VL / headroom / latency
// quantile tracks, plus a "telemetry" pseudo-process with the system-wide
// tracks (AL, usable units, window repartitions, host throughput), with the
// event log overlaid as instants. The output is a Chrome trace-event JSON
// array that ui.perfetto.dev opens directly, produced with the same exporter
// (and validated by the same checker) as internal/obs's slice traces.

// timelineTid is the thread instants attach to inside each process (counter
// events are process-scoped and carry no tid).
const timelineTid = 0

// WriteTimeline renders every retained window and event as a Perfetto trace
// and writes it, returning the number of trace events written. Call Flush
// first to include the final partial window.
func (s *Sampler) WriteTimeline(w io.Writer) (int, error) {
	if s == nil {
		return 0, writeEmptyTrace(w)
	}
	n := s.Retained()
	cores := 0
	if n > 0 {
		var probeW Window
		if s.CopyWindow(0, &probeW) {
			cores = len(probeW.Cores)
		}
	}
	sysPid := cores // pseudo-process after the per-core pids

	sink := obs.NewPerfetto(0)
	for c := 0; c < cores; c++ {
		sink.EmitProcessName(c, coreProcName(c))
		sink.EmitThreadName(c, timelineTid, "events")
	}
	sink.EmitProcessName(sysPid, "telemetry")
	sink.EmitThreadName(sysPid, timelineTid, "events")

	var win Window
	for i := 0; i < n; i++ {
		if !s.CopyWindow(i, &win) {
			break
		}
		ts := win.EndCycle
		sink.EmitCounter(sysPid, "telemetry.al_granules", "granules", ts, float64(win.ALGranules))
		sink.EmitCounter(sysPid, "telemetry.exebus_usable", "units", ts, float64(win.UsableBUs))
		sink.EmitCounter(sysPid, "telemetry.exebus_failed", "units", ts, float64(win.FailedBUs))
		sink.EmitCounter(sysPid, "telemetry.repartitions", "per-window", ts, float64(win.Repartitions))
		sink.EmitCounter(sysPid, "telemetry.occupancy", "fraction", ts, win.Occupancy)
		sink.EmitCounter(sysPid, "telemetry.host_mcycles_per_s", "Mc/s", ts, win.HostCyclesPerSec()/1e6)
		for c := range win.Cores {
			cw := &win.Cores[c]
			mean := 0.0
			if win.Cycles > 0 {
				mean = cw.BusyLanes / float64(win.Cycles)
			}
			sink.EmitCounter(c, "telemetry.busy_lanes", "lanes", ts, mean)
			sink.EmitCounter(c, "telemetry.vl", "granules", ts, float64(cw.VL))
			sink.EmitCounter(c, "telemetry.fairness_headroom", "granules", ts, float64(cw.Headroom))
			sink.EmitCounter(c, "telemetry.retire_p50", "cycles", ts, cw.RetireP50)
			sink.EmitCounter(c, "telemetry.retire_p99", "cycles", ts, cw.RetireP99)
		}
	}
	for _, e := range s.Events(nil) {
		pid := sysPid
		if e.Core >= 0 && e.Core < cores {
			pid = e.Core
		}
		sink.EmitInstant(pid, timelineTid, e.Kind, e.Cycle, map[string]any{"arg": float64(e.Arg)})
	}
	return sink.Write(w)
}

func writeEmptyTrace(w io.Writer) error {
	_, err := io.WriteString(w, "[]\n")
	return err
}

func coreProcName(c int) string { return fmt.Sprintf("core%d", c) }
