package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"occamy/internal/obs"
)

// CoreView is one core's slice of a View: cumulative counters as of the last
// closed window boundary plus that window's gauges.
type CoreView struct {
	Insts   uint64
	Elems   uint64
	Compute uint64
	Mem     uint64
	Stalls  uint64
	Buckets [obs.NumBuckets]uint64

	BusyLanes   float64 // last window's lane·cycles
	MeanLanes   float64 // last window's mean busy lanes per cycle
	VL          int
	Decision    int
	Headroom    int
	Halted      bool
	Parked      bool
	RetireCount uint64
	RetireP50   float64
	RetireP99   float64
}

// View is a consistent copy of the sampler's exportable state, taken under
// the sampler lock: everything /metrics serves. Counter-valued fields are
// cumulative as of the last closed window; gauges are that window's values.
type View struct {
	Produced     uint64 // windows closed
	WindowCycles uint64 // configured period
	EndCycle     uint64 // last boundary
	Repartitions uint64 // cumulative
	Reconfigures uint64 // cumulative
	ALGranules   int
	UsableBUs    int
	FailedBUs    int
	TotalBUs     int
	Occupancy    float64
	CyclesPerSec float64 // host-side simulation throughput, last window
	EventsTotal  uint64
	Cores        []CoreView

	// Traffic slice: present only when a traffic injector is wired.
	HasTraffic       bool
	Traffic          TrafficWindow // last closed window's slice
	TrafficArrived   uint64        // cumulative, as of the last boundary
	TrafficAdmitted  uint64
	TrafficCompleted uint64
	TrafficCanceled  uint64
}

// View returns the sampler's current exportable state. Before the first
// window closes it reports zeros with the configured core count.
func (s *Sampler) View() View {
	if s == nil {
		return View{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := View{
		Produced:     s.nwin,
		WindowCycles: s.cfg.Window,
		EndCycle:     s.prev.cycle,
		Repartitions: s.prev.repart,
		Reconfigures: s.prev.reconf,
		EventsTotal:  s.nev,
		Cores:        make([]CoreView, len(s.prev.cores)),
	}
	var last *Window
	if s.nwin > 0 {
		last = &s.wins[int((s.nwin-1)%uint64(len(s.wins)))]
		v.ALGranules = last.ALGranules
		v.UsableBUs = last.UsableBUs
		v.FailedBUs = last.FailedBUs
		v.TotalBUs = last.TotalBUs
		v.Occupancy = last.Occupancy
		v.CyclesPerSec = last.HostCyclesPerSec()
		if last.HasTraffic {
			v.HasTraffic = true
			v.Traffic = last.Traffic
			v.TrafficArrived = s.prev.trafArrived
			v.TrafficAdmitted = s.prev.trafAdmitted
			v.TrafficCompleted = s.prev.trafCompleted
			v.TrafficCanceled = s.prev.trafCanceled
		}
	}
	for c := range v.Cores {
		cv := &v.Cores[c]
		pc := &s.prev.cores[c]
		cv.Insts, cv.Elems = pc.insts, pc.elems
		cv.Compute, cv.Mem, cv.Stalls = pc.compute, pc.mem, pc.stalls
		cv.Buckets = pc.buckets
		if last != nil {
			cw := &last.Cores[c]
			cv.BusyLanes = cw.BusyLanes
			if last.Cycles > 0 {
				cv.MeanLanes = cw.BusyLanes / float64(last.Cycles)
			}
			cv.VL, cv.Decision, cv.Headroom = cw.VL, cw.Decision, cw.Headroom
			cv.Halted, cv.Parked = cw.Halted, cw.Parked
			cv.RetireCount = cw.RetireCount
			cv.RetireP50, cv.RetireP99 = cw.RetireP50, cw.RetireP99
		}
	}
	return v
}

// LabeledView pairs a run label with its View, the unit the multi-run
// OpenMetrics renderer works over.
type LabeledView struct {
	Label string
	View  View
}

// omFamily is one OpenMetrics metric family: declared once, then sampled
// across every run.
type omFamily struct {
	name string // family name (samples append _total for counters)
	kind string // "counter" or "gauge"
	help string
	emit func(w io.Writer, label string, v *View)
}

func b01(b bool) int {
	if b {
		return 1
	}
	return 0
}

var omFamilies = []omFamily{
	{"occamy_sim_cycles", "gauge", "Simulated cycle of the last closed telemetry window.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_sim_cycles{run=%q} %d\n", l, v.EndCycle)
		}},
	{"occamy_windows", "counter", "Telemetry windows closed.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_windows_total{run=%q} %d\n", l, v.Produced)
		}},
	{"occamy_window_cycles", "gauge", "Configured sampling period in cycles.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_window_cycles{run=%q} %d\n", l, v.WindowCycles)
		}},
	{"occamy_host_cycles_per_second", "gauge", "Host-side simulation throughput over the last window.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_host_cycles_per_second{run=%q} %g\n", l, v.CyclesPerSec)
		}},
	{"occamy_repartitions", "counter", "Lane-manager plan computations.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_repartitions_total{run=%q} %d\n", l, v.Repartitions)
		}},
	{"occamy_reconfigures", "counter", "Successful vector-length reconfigurations.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_reconfigures_total{run=%q} %d\n", l, v.Reconfigures)
		}},
	{"occamy_events", "counter", "Telemetry events recorded.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_events_total{run=%q} %d\n", l, v.EventsTotal)
		}},
	{"occamy_al_granules", "gauge", "Allocatable lanes (AL) in granules.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_al_granules{run=%q} %d\n", l, v.ALGranules)
		}},
	{"occamy_exebus_usable", "gauge", "Usable execution bundles.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_exebus_usable{run=%q} %d\n", l, v.UsableBUs)
		}},
	{"occamy_exebus_failed", "gauge", "Failed execution bundles.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_exebus_failed{run=%q} %d\n", l, v.FailedBUs)
		}},
	{"occamy_array_occupancy", "gauge", "Whole-array busy-lane fraction over the last window.",
		func(w io.Writer, l string, v *View) {
			fmt.Fprintf(w, "occamy_array_occupancy{run=%q} %g\n", l, v.Occupancy)
		}},
	{"occamy_core_insts", "counter", "Scalar instructions retired per core.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_insts_total{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].Insts)
			}
		}},
	{"occamy_core_elems", "counter", "Vector elements completed per core.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_elems_total{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].Elems)
			}
		}},
	{"occamy_core_simd_compute", "counter", "SIMD compute micro-ops issued per core.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_simd_compute_total{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].Compute)
			}
		}},
	{"occamy_core_simd_mem", "counter", "SIMD memory micro-ops issued per core.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_simd_mem_total{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].Mem)
			}
		}},
	{"occamy_core_rename_stalls", "counter", "Rename-stall cycles per core.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_rename_stalls_total{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].Stalls)
			}
		}},
	{"occamy_core_cycles", "counter", "Top-down cycle attribution per core and bucket.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				for b := 0; b < obs.NumBuckets; b++ {
					fmt.Fprintf(w, "occamy_core_cycles_total{run=%q,core=\"%d\",bucket=%q} %d\n",
						l, c, obs.Bucket(b).String(), v.Cores[c].Buckets[b])
				}
			}
		}},
	{"occamy_core_busy_lanes", "gauge", "Mean busy lanes per cycle over the last window.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_busy_lanes{run=%q,core=\"%d\"} %g\n", l, c, v.Cores[c].MeanLanes)
			}
		}},
	{"occamy_core_vl_granules", "gauge", "Configured vector length per core.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_vl_granules{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].VL)
			}
		}},
	{"occamy_core_fairness_headroom_granules", "gauge", "Granules revocable above the fairness floor.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_fairness_headroom_granules{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].Headroom)
			}
		}},
	{"occamy_core_retire_latency_cycles", "gauge", "Windowed issue-to-retire latency quantiles per core.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_retire_latency_cycles{run=%q,core=\"%d\",quantile=\"0.5\"} %g\n", l, c, v.Cores[c].RetireP50)
				fmt.Fprintf(w, "occamy_core_retire_latency_cycles{run=%q,core=\"%d\",quantile=\"0.99\"} %g\n", l, c, v.Cores[c].RetireP99)
			}
		}},
	{"occamy_core_retired", "counter", "Co-processor instructions retired per core (windowless histogram count is windowed; this is the last window's).",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_retired_total{run=%q,core=\"%d\"} %d\n", l, c, v.Cores[c].RetireCount)
			}
		}},
	{"occamy_core_halted", "gauge", "1 when the scalar core has halted.",
		func(w io.Writer, l string, v *View) {
			for c := range v.Cores {
				fmt.Fprintf(w, "occamy_core_halted{run=%q,core=\"%d\"} %d\n", l, c, b01(v.Cores[c].Halted))
			}
		}},
}

// RenderOpenMetrics writes the runs' views in OpenMetrics text format: every
// family declared exactly once, sampled per run, terminated by "# EOF".
func RenderOpenMetrics(w io.Writer, runs []LabeledView) error {
	bw := bufio.NewWriter(w)
	for i := range omFamilies {
		f := &omFamilies[i]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for r := range runs {
			f.emit(bw, runs[r].Label, &runs[r].View)
		}
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// WriteOpenMetrics renders this sampler alone under the given run label.
func (s *Sampler) WriteOpenMetrics(w io.Writer, label string) error {
	return RenderOpenMetrics(w, []LabeledView{{Label: label, View: s.View()}})
}

// ValidateOpenMetrics parses OpenMetrics text and checks the contract the
// renderer promises: a TYPE declaration before any sample of its family,
// counter samples named <family>_total, parseable float values, balanced
// label quoting, and a final "# EOF" line. Used by the golden tests and by
// `occamy-trace -check-openmetrics` in CI.
func ValidateOpenMetrics(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := map[string]string{}
	sawEOF := false
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF && strings.TrimSpace(line) != "" {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "EOF" {
				sawEOF = true
				continue
			}
			if len(fields) < 3 {
				return fmt.Errorf("openmetrics: line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "TYPE":
				name, kind := fields[2], strings.Join(fields[3:], " ")
				if _, dup := types[name]; dup {
					return fmt.Errorf("openmetrics: line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "info", "stateset", "unknown":
				default:
					return fmt.Errorf("openmetrics: line %d: bad type %q for %s", lineNo, kind, name)
				}
				types[name] = kind
			case "HELP", "UNIT":
				// Free-form.
			default:
				return fmt.Errorf("openmetrics: line %d: unknown comment keyword %q", lineNo, fields[1])
			}
			continue
		}
		name, value, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("openmetrics: line %d: bad value %q", lineNo, value)
		}
		family := name
		if strings.HasSuffix(name, "_total") {
			family = strings.TrimSuffix(name, "_total")
		}
		kind, ok := types[family]
		if !ok {
			kind, ok = types[name]
			family = name
		}
		if !ok {
			return fmt.Errorf("openmetrics: line %d: sample %s before its TYPE declaration", lineNo, name)
		}
		if kind == "counter" && !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("openmetrics: line %d: counter sample %s must end in _total", lineNo, name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("openmetrics: read: %w", err)
	}
	if !sawEOF {
		return fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	if samples == 0 {
		return fmt.Errorf("openmetrics: no samples")
	}
	return nil
}

// splitSample splits `name{labels} value` (labels optional) into name and
// value, checking label-set quoting is balanced.
func splitSample(line string) (name, value string, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := -1
		inQuote := false
		for j := i + 1; j < len(line); j++ {
			switch line[j] {
			case '\\':
				if inQuote {
					j++
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", fmt.Errorf("unterminated label set in %q", line)
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], strings.Join(fields[1:], " ")
	}
	if name == "" {
		return "", "", fmt.Errorf("empty metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", fmt.Errorf("missing value in %q", line)
	}
	return name, fields[0], nil
}
