// Package telemetry is the simulator's live-observation layer: a windowed
// time-series sampler that snapshots deltas of the existing observability
// state (obs attribution buckets, lane-manager resource table, per-core CPU
// progress, retire-latency histograms) into fixed-size preallocated ring
// buffers every N simulated cycles, plus a structured event log for discrete
// occurrences (fault injection, recovery, lane repartitions, watchdog dumps,
// checkpoint forks).
//
// Three consumers sit on top: the HTTP server in server.go (OpenMetrics
// /metrics, JSONL /events, an SSE window stream), the Perfetto counter-track
// dump in timeline.go, and programmatic access for campaign runners.
//
// Two hard contracts shape the design (DESIGN.md §Telemetry):
//
//   - Zero allocation in steady state. Every ring slot, per-core record and
//     delta scratch buffer is allocated in NewSampler; a window boundary only
//     writes into them. The arch-level AllocsPerRun tests run with telemetry
//     enabled and still demand 0 allocs/op.
//
//   - Determinism. The sampler participates in checkpoint/restore
//     (Snapshot/Restore) and implements the engine's Sleeper capability, so
//     skip-ahead runs, legacy runs and checkpoint-forked runs all produce
//     bit-identical windows and events (Digest; differential-tested in
//     internal/arch). The only non-deterministic quantity — host wall time
//     per window, for the sim-cycles/s gauge — is quarantined in
//     Window.HostNanos and excluded from Digest and from snapshots.
package telemetry

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"time"

	"occamy/internal/obs"
	"occamy/internal/sim"
)

// Config sizes the sampler. The zero value selects the defaults.
type Config struct {
	// Window is the sampling period in simulated cycles (default 4096).
	Window uint64
	// Windows is the ring capacity in windows (default 1024); older windows
	// are overwritten.
	Windows int
	// Events is the deterministic event ring capacity (default 4096); older
	// events are overwritten.
	Events int
}

// Defaults for Config's zero fields.
const (
	DefaultWindow  = 4096
	DefaultWindows = 1024
	DefaultEvents  = 4096
)

func (c Config) normalized() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Windows <= 0 {
		c.Windows = DefaultWindows
	}
	if c.Events <= 0 {
		c.Events = DefaultEvents
	}
	return c
}

// CoreSource is the per-core CPU state the sampler reads at each boundary
// (*cpu.Core satisfies it).
type CoreSource interface {
	Halted() bool
	Parked() bool
	Progress() uint64 // scalar instructions retired
	Elems() uint64    // vector elements completed
}

// CoprocSource is the co-processor state the sampler reads at each boundary
// (*coproc.Coproc satisfies it).
type CoprocSource interface {
	ComputeIssued(c int) uint64
	MemIssued(c int) uint64
	RenameStalls(c int) uint64
	BusyLaneCycles(c int) float64
	VL(c int) int
}

// TableSource is the lane-manager resource-table view (*lanemgr.ResourceTbl
// satisfies it).
type TableSource interface {
	AL() int
	Usable() int
	Failed() int
	Total() int
	Decision(c int) int
}

// Sources wires the sampler to the system it observes. Probe and Stats may
// be nil (their metrics then read zero); Cores must be non-empty.
type Sources struct {
	Cores []CoreSource
	Cp    CoprocSource
	Tbl   TableSource
	Probe *obs.Probe
	Stats *sim.Stats
	// Lanes is the full SIMD array width in lanes, the denominator of the
	// occupancy fraction.
	Lanes int
	// Tables lists one TableSource per co-processor cluster, in fabric
	// order, for the per-cluster series; a flat machine wires its single
	// table here too. Empty disables the per-cluster series (and removes
	// them from Digest), so pre-topology samplers hash unchanged.
	Tables []TableSource
	// Traffic, when non-nil, adds the open-loop traffic series (queue
	// depth, task flow, latency quantiles) to every window; usually wired
	// post-build via WireTraffic. Nil disables the series and keeps
	// non-traffic digests unchanged.
	Traffic TrafficSource
}

// CoreWindow is one core's slice of a sampling window. Counter-like fields
// are deltas over the window; VL/Decision/Headroom/Halted are gauges read at
// the window's closing boundary.
type CoreWindow struct {
	// Buckets holds the obs cycle-attribution deltas for the window.
	Buckets [obs.NumBuckets]uint64
	Insts   uint64
	Elems   uint64
	Compute uint64 // SIMD compute µops issued
	Mem     uint64 // SIMD memory µops issued
	Stalls  uint64 // rename-stall cycles

	// BusyLanes is the busy lane·cycle sum over the window; divided by the
	// window length it is the core's mean lane occupancy.
	BusyLanes float64

	VL       int
	Decision int
	// Headroom is the fairness-floor headroom in granules: how much of the
	// core's partition a repartition could revoke while honoring the
	// one-granule floor every active core is guaranteed (the full partition
	// once the core halts).
	Headroom int
	Halted   bool
	Parked   bool

	// RetireCount and the quantiles summarize the issue→retire latency
	// histogram delta for the window (0 when nothing retired).
	RetireCount uint64
	RetireP50   float64
	RetireP99   float64
}

// ClusterWindow is one co-processor cluster's resource-table gauges at a
// window boundary (the per-cluster telemetry series of a clustered topology).
type ClusterWindow struct {
	ALGranules int
	UsableBUs  int
	FailedBUs  int
	TotalBUs   int
}

// Window is one closed sampling window.
type Window struct {
	Index    uint64 // sequence number, 0-based
	EndCycle uint64 // the boundary cycle; the window covers (EndCycle-Cycles, EndCycle]
	Cycles   uint64 // window length (== Config.Window except a final Flush)

	Repartitions uint64 // lane-plan computations in the window
	Reconfigures uint64 // successful <VL> reconfigurations in the window

	// Resource-table gauges at the boundary.
	ALGranules int
	UsableBUs  int
	FailedBUs  int
	TotalBUs   int

	// Occupancy is the whole-array busy fraction over the window (0..1).
	Occupancy float64

	// HostNanos is host wall time elapsed since the previous boundary. It is
	// the one non-deterministic field: excluded from Digest and zeroed by
	// Snapshot/Restore.
	HostNanos int64

	Cores []CoreWindow
	// Clusters holds the per-cluster table gauges, one entry per
	// Sources.Tables element; empty when no Tables were wired.
	Clusters []ClusterWindow

	// Traffic is the open-loop traffic slice, valid iff HasTraffic (a
	// TrafficSource was wired when the window closed).
	Traffic    TrafficWindow
	HasTraffic bool
}

// HostCyclesPerSec converts HostNanos into a simulation throughput gauge.
func (w *Window) HostCyclesPerSec() float64 {
	if w.HostNanos <= 0 {
		return 0
	}
	return float64(w.Cycles) / (float64(w.HostNanos) / 1e9)
}

// Event kinds. Constants, not formatted strings: the emitting sites must not
// allocate.
const (
	EvFaultApply      = "fault.apply"
	EvFaultRevert     = "fault.revert"
	EvRecoveryDone    = "recovery.done"
	EvWatchdog        = "watchdog.dump"
	EvLaneRepartition = "lane.repartition"
	EvLaneReconfigure = "lane.reconfigure"
	EvLaneReject      = "lane.reject"
	EvCheckpoint      = "checkpoint.fork"
	EvRestore         = "checkpoint.restore"
)

// Event is one discrete occurrence. Deterministic events (everything the
// simulation itself produces) live in the checkpointed ring and feed Digest;
// meta events (checkpoint/restore markers, which differ between a base run
// and its forks by construction) live in a separate host-side log.
type Event struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	// Core is the affected core, -1 for system-wide events.
	Core int `json:"core"`
	// Arg is the kind-specific payload: TTR cycles for recovery.done, the
	// configured VL for lane events, the failed-unit count for faults.
	Arg uint64 `json:"arg"`
	// Detail is optional human-readable context; emitting sites adjacent to
	// the hot path pass "" to stay allocation-free.
	Detail string `json:"detail,omitempty"`
	// Meta marks host-side events excluded from determinism checks.
	Meta bool `json:"meta,omitempty"`
}

// prevCore is the cumulative snapshot diffed into per-core window deltas.
type prevCore struct {
	buckets [obs.NumBuckets]uint64
	insts   uint64
	elems   uint64
	compute uint64
	mem     uint64
	stalls  uint64
	busy    float64
	bins    [obs.NumBins]uint64
}

type prevState struct {
	cycle  uint64
	repart uint64
	reconf uint64
	cores  []prevCore

	// Cumulative traffic baselines (zero until WireTraffic).
	trafArrived   uint64
	trafAdmitted  uint64
	trafCompleted uint64
	trafCanceled  uint64
	trafSojourn   [obs.NumBins]uint64
	trafAdmit     [obs.NumBins]uint64
}

// Sampler is the windowed time-series sampler. It implements sim.Component
// (register it AFTER the obs probe, so a boundary reads the cycle's settled
// attribution) and sim.Sleeper (boundaries force a real tick; everything
// between them is quiescent, so skip-ahead stays fully enabled).
//
// All methods that read or mutate the rings lock s.mu, making concurrent
// HTTP reads safe while the single-goroutine simulation advances. A nil
// *Sampler is the disabled state: Emit/EmitMeta/Snapshot/Restore/Flush are
// all safe on it.
type Sampler struct {
	cfg Config
	src Sources

	// Cached allocation-free handles, resolved once at construction.
	hists      []*obs.Histogram
	repartCell *uint64
	reconfCell *uint64

	mu sync.Mutex

	wins []Window // ring; slot i holds window (nwin-... ) — see winAt
	nwin uint64   // windows produced (monotonic)

	prev prevState

	events []Event // deterministic ring
	nev    uint64  // deterministic events produced (monotonic)
	meta   []Event // host-side meta log (append-only, small)

	// Delta scratch (guarded by mu).
	scratch [obs.NumBins]uint64
	delta   [obs.NumBins]uint64

	lastWall time.Time
	onWindow func() // server notification, called outside mu
}

// NewSampler builds a sampler over src. Everything the steady-state path
// touches is allocated here.
func NewSampler(cfg Config, src Sources) *Sampler {
	cfg = cfg.normalized()
	n := len(src.Cores)
	s := &Sampler{
		cfg:    cfg,
		src:    src,
		hists:  make([]*obs.Histogram, n),
		wins:   make([]Window, cfg.Windows),
		events: make([]Event, cfg.Events),
	}
	for i := range s.wins {
		s.wins[i].Cores = make([]CoreWindow, n)
		if len(src.Tables) > 0 {
			s.wins[i].Clusters = make([]ClusterWindow, len(src.Tables))
		}
	}
	s.prev.cores = make([]prevCore, n)
	for c := range s.hists {
		s.hists[c] = src.Probe.Hist(obs.RetireHistName(c)) // nil-safe: nil probe → nil hist
	}
	if src.Stats != nil {
		s.repartCell = src.Stats.Counter("coproc.repartitions")
		s.reconfCell = src.Stats.Counter("coproc.reconfigures")
	}
	return s
}

// Window returns the configured sampling period in cycles.
func (s *Sampler) Window() uint64 { return s.cfg.Window }

// OnWindow registers fn to run after every closed window (outside the
// sampler lock). The HTTP server uses it to wake SSE streams.
func (s *Sampler) OnWindow(fn func()) {
	s.mu.Lock()
	s.onWindow = fn
	s.mu.Unlock()
}

// Name implements sim.Component.
func (s *Sampler) Name() string { return "telemetry" }

// Tick implements sim.Component: close a window at every boundary. Cycle 0
// is the reset cycle; the first window closes at cycle Window.
func (s *Sampler) Tick(now uint64) {
	if now == 0 || now%s.cfg.Window != 0 {
		return
	}
	s.sample(now)
}

// NextWake implements sim.Sleeper. A boundary cycle must run as a real
// full-system tick (so the sampler sees every component's settled state);
// any other cycle is quiescent until the next boundary. This keeps
// skip-ahead fully enabled with telemetry on — the engine simply lands on
// every boundary.
func (s *Sampler) NextWake(now uint64) (uint64, bool) {
	if now > 0 && now%s.cfg.Window == 0 {
		return 0, false
	}
	return (now/s.cfg.Window + 1) * s.cfg.Window, true
}

// SkipTicks implements sim.Sleeper. Elided cycles never include a boundary
// (NextWake bounds every skip at the next one), and the sampler does nothing
// on non-boundary cycles, so there is nothing to replay.
func (s *Sampler) SkipTicks(from, n uint64) { _, _ = from, n }

// Flush closes a final partial window covering (lastBoundary, now] — for
// end-of-run timeline dumps. A no-op when now is not past the last boundary.
func (s *Sampler) Flush(now uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	last := s.prev.cycle
	s.mu.Unlock()
	if now <= last {
		return
	}
	s.sample(now)
}

// sample closes the window ending at cycle now. Zero allocations: every
// write lands in preallocated ring slots and scratch.
func (s *Sampler) sample(now uint64) {
	wall := time.Now()
	var host int64
	if !s.lastWall.IsZero() {
		host = wall.Sub(s.lastWall).Nanoseconds()
	}
	s.lastWall = wall

	s.mu.Lock()
	w := &s.wins[int(s.nwin%uint64(len(s.wins)))]
	w.Index = s.nwin
	w.EndCycle = now
	w.Cycles = now - s.prev.cycle
	w.HostNanos = host

	var repart, reconf uint64
	if s.repartCell != nil {
		repart, reconf = *s.repartCell, *s.reconfCell
	}
	w.Repartitions = repart - s.prev.repart
	w.Reconfigures = reconf - s.prev.reconf

	if tbl := s.src.Tbl; tbl != nil {
		w.ALGranules = tbl.AL()
		w.UsableBUs = tbl.Usable()
		w.FailedBUs = tbl.Failed()
		w.TotalBUs = tbl.Total()
	}
	for k, tbl := range s.src.Tables {
		cw := &w.Clusters[k]
		cw.ALGranules = tbl.AL()
		cw.UsableBUs = tbl.Usable()
		cw.FailedBUs = tbl.Failed()
		cw.TotalBUs = tbl.Total()
	}

	totalBusy := 0.0
	for c := range w.Cores {
		cw := &w.Cores[c]
		pc := &s.prev.cores[c]
		core := s.src.Cores[c]

		att := s.src.Probe.CoreAttribution(c) // value copy, alloc-free
		for b := range cw.Buckets {
			cw.Buckets[b] = att.Buckets[b] - pc.buckets[b]
			pc.buckets[b] = att.Buckets[b]
		}

		insts, elems := core.Progress(), core.Elems()
		cw.Insts, pc.insts = insts-pc.insts, insts
		cw.Elems, pc.elems = elems-pc.elems, elems

		if cp := s.src.Cp; cp != nil {
			comp, mem, stalls := cp.ComputeIssued(c), cp.MemIssued(c), cp.RenameStalls(c)
			cw.Compute, pc.compute = comp-pc.compute, comp
			cw.Mem, pc.mem = mem-pc.mem, mem
			cw.Stalls, pc.stalls = stalls-pc.stalls, stalls
			busy := cp.BusyLaneCycles(c)
			cw.BusyLanes, pc.busy = busy-pc.busy, busy
			cw.VL = cp.VL(c)
		}
		totalBusy += cw.BusyLanes

		cw.Halted = core.Halted()
		cw.Parked = core.Parked()
		if s.src.Tbl != nil {
			cw.Decision = s.src.Tbl.Decision(c)
		}
		// Fairness-floor headroom: every active core is guaranteed one
		// granule, so its partition can shrink by VL-1; a halted core's
		// whole partition is reclaimable.
		if cw.Halted {
			cw.Headroom = cw.VL
		} else if cw.VL > 0 {
			cw.Headroom = cw.VL - 1
		} else {
			cw.Headroom = 0
		}

		// Windowed issue→retire latency: diff the cumulative power-of-two
		// bins and estimate quantiles on the delta.
		s.hists[c].CopyBins(&s.scratch)
		var cnt uint64
		for i := range s.scratch {
			d := s.scratch[i] - pc.bins[i]
			s.delta[i] = d
			cnt += d
		}
		pc.bins = s.scratch
		cw.RetireCount = cnt
		if cnt > 0 {
			cw.RetireP50 = obs.QuantileBins(&s.delta, 0.50)
			cw.RetireP99 = obs.QuantileBins(&s.delta, 0.99)
		} else {
			cw.RetireP50, cw.RetireP99 = 0, 0
		}
	}

	if w.Cycles > 0 && s.src.Lanes > 0 {
		w.Occupancy = totalBusy / (float64(w.Cycles) * float64(s.src.Lanes))
	} else {
		w.Occupancy = 0
	}

	s.sampleTraffic(w)

	s.prev.cycle = now
	s.prev.repart, s.prev.reconf = repart, reconf
	s.nwin++
	fn := s.onWindow
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Emit records one deterministic event into the ring (oldest overwritten).
// Safe on a nil sampler; allocation-free when detail is "" or a constant.
func (s *Sampler) Emit(cycle uint64, kind string, core int, arg uint64, detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	e := &s.events[int(s.nev%uint64(len(s.events)))]
	e.Cycle, e.Kind, e.Core, e.Arg, e.Detail, e.Meta = cycle, kind, core, arg, detail, false
	s.nev++
	s.mu.Unlock()
}

// EmitMeta records a host-side meta event (checkpoint fork / restore).
// These never enter Digest or snapshots: a forked run's meta history
// legitimately differs from its base run's.
func (s *Sampler) EmitMeta(cycle uint64, kind string, detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.meta = append(s.meta, Event{Cycle: cycle, Kind: kind, Core: -1, Detail: detail, Meta: true})
	s.mu.Unlock()
}

// Produced returns the number of windows closed so far.
func (s *Sampler) Produced() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nwin
}

// Retained returns how many windows the ring still holds.
func (s *Sampler) Retained() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retainedLocked()
}

func (s *Sampler) retainedLocked() int {
	if s.nwin < uint64(len(s.wins)) {
		return int(s.nwin)
	}
	return len(s.wins)
}

// CopyWindow deep-copies retained window i (0 = oldest retained) into dst,
// reusing dst.Cores when the shapes match. It reports whether i was in
// range.
func (s *Sampler) CopyWindow(i int, dst *Window) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.retainedLocked()
	if i < 0 || i >= n {
		return false
	}
	first := s.nwin - uint64(n)
	src := &s.wins[int((first+uint64(i))%uint64(len(s.wins)))]
	cores := dst.Cores
	if len(cores) != len(src.Cores) {
		cores = make([]CoreWindow, len(src.Cores))
	}
	copy(cores, src.Cores)
	clusters := dst.Clusters
	if len(clusters) != len(src.Clusters) {
		clusters = make([]ClusterWindow, len(src.Clusters))
	}
	copy(clusters, src.Clusters)
	*dst = *src
	dst.Cores = cores
	dst.Clusters = clusters
	return true
}

// Events appends the retained deterministic events (oldest first) followed
// by the meta log to dst and returns it.
func (s *Sampler) Events(dst []Event) []Event {
	if s == nil {
		return dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nev
	if n > uint64(len(s.events)) {
		n = uint64(len(s.events))
	}
	first := s.nev - n
	for i := uint64(0); i < n; i++ {
		dst = append(dst, s.events[int((first+i)%uint64(len(s.events)))])
	}
	dst = append(dst, s.meta...)
	return dst
}

// EventsProduced returns the number of deterministic events recorded
// (including any the ring has since overwritten).
func (s *Sampler) EventsProduced() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nev
}

// SamplerState is the sampler's checkpoint: the full deterministic history
// (windows, counters, event ring, delta baselines). Host wall-time residue
// is not captured — a restored run re-measures its own throughput.
type SamplerState struct {
	nwin   uint64
	wins   []Window
	prev   prevState
	events []Event
	nev    uint64
}

// Snapshot deep-copies the sampler's deterministic state (nil on a nil
// sampler).
func (s *Sampler) Snapshot() *SamplerState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &SamplerState{
		nwin:   s.nwin,
		wins:   make([]Window, len(s.wins)),
		events: append([]Event(nil), s.events...),
		nev:    s.nev,
	}
	for i := range s.wins {
		st.wins[i] = s.wins[i]
		st.wins[i].HostNanos = 0 // host residue stays out of checkpoints
		st.wins[i].Cores = append([]CoreWindow(nil), s.wins[i].Cores...)
		st.wins[i].Clusters = append([]ClusterWindow(nil), s.wins[i].Clusters...)
	}
	st.prev = s.prev
	st.prev.cores = append([]prevCore(nil), s.prev.cores...)
	return st
}

// Restore rewinds the sampler to a Snapshot taken on an identically
// configured instance. The ring backing arrays are written in place. Safe
// (no-op) when either receiver or state is nil.
func (s *Sampler) Restore(st *SamplerState) {
	if s == nil || st == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nwin = st.nwin
	for i := range s.wins {
		cores := s.wins[i].Cores
		copy(cores, st.wins[i].Cores)
		clusters := s.wins[i].Clusters
		copy(clusters, st.wins[i].Clusters)
		s.wins[i] = st.wins[i]
		s.wins[i].Cores = cores
		s.wins[i].Clusters = clusters
	}
	copy(s.events, st.events)
	s.nev = st.nev
	cores := s.prev.cores
	copy(cores, st.prev.cores)
	s.prev = st.prev
	s.prev.cores = cores
	s.lastWall = time.Time{} // next window re-baselines host throughput
}

// Digest hashes the sampler's deterministic history — retained windows
// (excluding HostNanos) and the deterministic event ring — into one value
// the differential tests compare across skip/legacy and base/forked runs.
func (s *Sampler) Digest() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putF := func(f float64) { put(math.Float64bits(f)) }
	putI := func(i int) { put(uint64(int64(i))) }
	putB := func(b bool) {
		if b {
			put(1)
		} else {
			put(0)
		}
	}
	put(s.nwin)
	n := s.retainedLocked()
	first := s.nwin - uint64(n)
	for i := 0; i < n; i++ {
		w := &s.wins[int((first+uint64(i))%uint64(len(s.wins)))]
		put(w.Index)
		put(w.EndCycle)
		put(w.Cycles)
		put(w.Repartitions)
		put(w.Reconfigures)
		putI(w.ALGranules)
		putI(w.UsableBUs)
		putI(w.FailedBUs)
		putI(w.TotalBUs)
		for k := range w.Clusters {
			kw := &w.Clusters[k]
			putI(kw.ALGranules)
			putI(kw.UsableBUs)
			putI(kw.FailedBUs)
			putI(kw.TotalBUs)
		}
		putF(w.Occupancy)
		if w.HasTraffic {
			// Gated on wiring so pre-traffic samplers hash unchanged.
			tw := &w.Traffic
			putI(tw.Queued)
			putI(tw.Running)
			put(tw.Arrived)
			put(tw.Admitted)
			put(tw.Completed)
			put(tw.Canceled)
			put(tw.SojournCount)
			putF(tw.SojournP50)
			putF(tw.SojournP99)
			put(tw.AdmitCount)
			putF(tw.AdmitP50)
			putF(tw.AdmitP99)
		}
		for c := range w.Cores {
			cw := &w.Cores[c]
			for _, b := range cw.Buckets {
				put(b)
			}
			put(cw.Insts)
			put(cw.Elems)
			put(cw.Compute)
			put(cw.Mem)
			put(cw.Stalls)
			putF(cw.BusyLanes)
			putI(cw.VL)
			putI(cw.Decision)
			putI(cw.Headroom)
			putB(cw.Halted)
			putB(cw.Parked)
			put(cw.RetireCount)
			putF(cw.RetireP50)
			putF(cw.RetireP99)
		}
	}
	put(s.nev)
	ne := s.nev
	if ne > uint64(len(s.events)) {
		ne = uint64(len(s.events))
	}
	efirst := s.nev - ne
	for i := uint64(0); i < ne; i++ {
		e := &s.events[int((efirst+i)%uint64(len(s.events)))]
		put(e.Cycle)
		io.WriteString(h, e.Kind)
		putI(e.Core)
		put(e.Arg)
		io.WriteString(h, e.Detail)
	}
	return h.Sum64()
}
