package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// eventLine is the JSONL wire form of one event, with the run label the
// server adds when multiplexing several attached runs.
type eventLine struct {
	Run string `json:"run,omitempty"`
	Event
}

// WriteEventsJSONL writes the sampler's retained events — deterministic ring
// first (oldest surviving entry onward), then the host-side meta log — one
// JSON object per line, each tagged with the run label.
func (s *Sampler) WriteEventsJSONL(w io.Writer, label string) error {
	events := s.Events(nil)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(eventLine{Run: label, Event: events[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ValidateEventsJSONL checks an event log: every non-empty line is a JSON
// object with a non-empty "kind" string and a numeric "cycle". Used by the
// tests and by `occamy-trace -check-events` in CI. An empty log is valid —
// healthy steady-state runs emit no discrete events.
func ValidateEventsJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return fmt.Errorf("events: line %d: invalid JSON: %w", lineNo, err)
		}
		kind, ok := obj["kind"].(string)
		if !ok || kind == "" {
			return fmt.Errorf("events: line %d: missing kind", lineNo)
		}
		if _, ok := obj["cycle"].(float64); !ok {
			return fmt.Errorf("events: line %d: missing cycle", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("events: read: %w", err)
	}
	return nil
}
