package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/metrics"
	"occamy/internal/roofline"
	"occamy/internal/workload"
)

// AblationMonitorPeriod measures the motivating pair on Occamy with the
// partition monitor polling every k iterations (Fig. 9 uses k=1): the
// responsiveness/overhead trade-off DESIGN.md calls out.
func (c Config) AblationMonitorPeriod(periods []int) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: partition-monitor polling period (motivating pair, Occamy)\n\n")
	t := &metrics.Table{Header: []string{"Period", "Makespan", "Core1 cycles", "Reconfigs", "Monitor ovh"}}
	for _, p := range periods {
		_, res, err := c.runOne(arch.Occamy, workload.MotivatingPair(reg), arch.Options{MonitorPeriod: p})
		if err != nil {
			return "", err
		}
		t.Add(fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Cores[1].Cycles),
			fmt.Sprintf("%d", res.Reconfigures),
			pct3(res.Cores[0].OverheadMonitorFrac+res.Cores[1].OverheadMonitorFrac),
		)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// AblationIssueCeiling compares lane plans with and without the paper's
// novel SIMD-issue-bandwidth ceiling (§5.1) across every Table 3 kernel
// paired with a compute-intensive peer — the Case 4 effect.
func AblationIssueCeiling() string {
	var b strings.Builder
	b.WriteString("Ablation: roofline with vs without the SIMD-issue-bandwidth ceiling (Eq. 2)\n\n")
	with := roofline.Default()
	without := roofline.Default()
	without.IssueUopsPerCycle = 1000 // ceiling never binds
	comp := isa.OIPair{Issue: 10, Mem: 10}
	t := &metrics.Table{Header: []string{"Kernel", "oi_issue", "oi_mem", "plan with", "plan without"}}
	changed := 0
	for _, name := range reg.KernelNames() {
		oi := reg.Kernel(name).OI()
		pw := lanemgr.Plan(with, []isa.OIPair{oi, comp}, 8)
		po := lanemgr.Plan(without, []isa.OIPair{oi, comp}, 8)
		if pw[0] != po[0] {
			changed++
			t.Add(name, fmt.Sprintf("%.2f", oi.Issue), fmt.Sprintf("%.2f", oi.Mem),
				fmt.Sprintf("%d lanes", 4*pw[0]), fmt.Sprintf("%d lanes", 4*po[0]))
		}
	}
	b.WriteString(t.String())
	b.WriteString(fmt.Sprintf("\n%d kernels get a different allocation; reuse kernels (oi_issue < oi_mem)\n", changed))
	b.WriteString("trade extra lanes for issue bandwidth, exactly as §7.4 Case 4 describes.\n")
	return b.String()
}

// AblationFTSRegisters sweeps the shared physical-register pool size for
// FTS on the motivating pair: the Figure 13 pathology appears as the pool
// shrinks toward the two architectural contexts.
func (c Config) AblationFTSRegisters(pools []int) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: FTS shared physical-register pool size (motivating pair)\n\n")
	t := &metrics.Table{Header: []string{"PhysRegs", "Makespan", "Core1 issue", "Stall c0", "Stall c1"}}
	for _, n := range pools {
		_, res, err := c.runOne(arch.FTS, workload.MotivatingPair(reg), arch.Options{FTSPhysRegs: n})
		if err != nil {
			return "", err
		}
		t.Add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%.2f", res.Cores[1].IssueRate),
			metrics.FormatPct(res.Cores[0].RenameStallFrac),
			metrics.FormatPct(res.Cores[1].RenameStallFrac),
		)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// AblationDefaultVL sweeps the compiler-selected prologue default vector
// length (Fig. 9's X2): larger defaults grab lanes before the first monitor
// hit but risk spinning when the pool is contended.
func (c Config) AblationDefaultVL(defaults []int) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: compiler-selected default vector length (motivating pair, Occamy)\n\n")
	t := &metrics.Table{Header: []string{"DefaultVL", "Makespan", "Core0", "Core1", "Reconfigs"}}
	for _, d := range defaults {
		_, res, err := c.runOne(arch.Occamy, workload.MotivatingPair(reg), arch.Options{DefaultVL: d})
		if err != nil {
			return "", err
		}
		t.Add(fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Cores[0].Cycles),
			fmt.Sprintf("%d", res.Cores[1].Cycles),
			fmt.Sprintf("%d", res.Reconfigures),
		)
	}
	b.WriteString(t.String())
	return b.String(), nil
}
