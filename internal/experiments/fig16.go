package experiments

import (
	"strings"

	"occamy/internal/arch"
	"occamy/internal/metrics"
	"occamy/internal/workload"
)

// Fig16 holds the §7.6 four-core scalability study.
type Fig16 struct {
	Groups  []string
	Results map[string]map[arch.Kind]*arch.Result
}

// Figure16 runs the four 4-core groups on all architectures (16 ExeBUs = 64
// lanes total, the Table 4 budget scaled to four cores).
func (c Config) Figure16() (*Fig16, error) {
	out := &Fig16{Results: make(map[string]map[arch.Kind]*arch.Result)}
	for _, g := range workload.FourCoreGroups(reg) {
		results, _, err := c.runAllArchs(g, arch.Options{})
		if err != nil {
			return nil, err
		}
		out.Groups = append(out.Groups, g.Name)
		out.Results[g.Name] = results
	}
	return out, nil
}

// Render produces per-core speedups over Private for each group.
func (f *Fig16) Render() string {
	var b strings.Builder
	b.WriteString("Figure 16: four-core scalability (speedups over Private, per core)\n\n")
	t := &metrics.Table{Header: []string{"Group", "Arch", "Core0", "Core1", "Core2", "Core3"}}
	type gmAcc struct{ vals [4][]float64 }
	gms := map[arch.Kind]*gmAcc{}
	for _, kind := range []arch.Kind{arch.FTS, arch.VLS, arch.Occamy} {
		gms[kind] = &gmAcc{}
	}
	for _, name := range f.Groups {
		base := f.Results[name][arch.Private]
		for _, kind := range []arch.Kind{arch.FTS, arch.VLS, arch.Occamy} {
			r := f.Results[name][kind]
			row := []string{name, kind.String()}
			for c := 0; c < 4; c++ {
				sp := float64(base.Cores[c].Cycles) / float64(r.Cores[c].Cycles)
				gms[kind].vals[c] = append(gms[kind].vals[c], sp)
				row = append(row, metrics.FormatX(sp))
			}
			t.Add(row...)
		}
	}
	for _, kind := range []arch.Kind{arch.FTS, arch.VLS, arch.Occamy} {
		row := []string{"GM", kind.String()}
		for c := 0; c < 4; c++ {
			row = append(row, metrics.FormatX(metrics.Geomean(gms[kind].vals[c])))
		}
		t.Add(row...)
	}
	b.WriteString(t.String())
	b.WriteString("\nPaper: Occamy matches the others on the memory cores and wins on the\ncompute cores (Core2/Core3), scaling well from 2 to 4 cores.\n")
	return b.String()
}

// Speedup returns one group's per-core speedup of kind over Private.
func (f *Fig16) Speedup(group string, kind arch.Kind, core int) float64 {
	base := f.Results[group][arch.Private]
	r := f.Results[group][kind]
	if base == nil || r == nil || r.Cores[core].Cycles == 0 {
		return 0
	}
	return float64(base.Cores[core].Cycles) / float64(r.Cores[core].Cycles)
}
