package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/metrics"
	"occamy/internal/obs"
	"occamy/internal/workload"
)

// TopDown runs a schedule on all four architectures with cycle attribution
// enabled and renders one table per core: where every cycle of that core
// went, bucket by bucket, side by side across architectures. This is the
// observability layer's headline report — the quantitative version of the
// paper's §7 narrative (issue collapse on FTS shows up as rename-stall,
// VLS's static misfit as idle/mem-bandwidth, Occamy's overhead as
// drain-reconfig and lane-monitor-overhead).
func (c Config) TopDown(s workload.CoSchedule) (string, error) {
	results := make(map[arch.Kind]*arch.Result, len(arch.Kinds))
	for _, kind := range arch.Kinds {
		_, res, err := c.runOne(kind, s, arch.Options{Obs: obs.Options{Attribution: true}})
		if err != nil {
			return "", fmt.Errorf("topdown: %s on %s: %w", s.Name, kind, err)
		}
		for cc, cr := range res.Cores {
			if cr.AttributionErr != "" {
				return "", fmt.Errorf("topdown: %s core %d: %s", kind, cc, cr.AttributionErr)
			}
		}
		results[kind] = res
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Top-down cycle attribution — %s\n", s.Name)
	for core := 0; core < s.Cores(); core++ {
		fmt.Fprintf(&b, "\nCore %d [%s]:\n", core, s.W[core].Name)
		t := metrics.Table{Header: []string{"bucket"}}
		for _, kind := range arch.Kinds {
			t.Header = append(t.Header, kind.String())
		}
		for bkt := 0; bkt < obs.NumBuckets; bkt++ {
			row := []string{obs.Bucket(bkt).String()}
			for _, kind := range arch.Kinds {
				a := results[kind].Cores[core].Attribution
				row = append(row, fmt.Sprintf("%5.1f%%", 100*a.Frac(obs.Bucket(bkt))))
			}
			t.Add(row...)
		}
		total := []string{"total cycles"}
		for _, kind := range arch.Kinds {
			total = append(total, fmt.Sprintf("%d", results[kind].Cores[core].Cycles))
		}
		t.Add(total...)
		b.WriteString(t.String())
	}
	return b.String(), nil
}

// TopDownMotivating runs TopDown on the §2 motivating pair (WL20+WL17).
func (c Config) TopDownMotivating() (string, error) {
	return c.TopDown(workload.MotivatingPair(reg))
}
