package experiments

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"

	"occamy/internal/arch"
	"occamy/internal/fault"
	"occamy/internal/sim"
	"occamy/internal/workload"
)

// This file is the sweep side of lockstep batching (sim.Batch): sweeps carve
// their points into sim.Tasks, runBatches deals up to Config.Batch of them to
// each -j worker, and every worker steps its batch round-robin through one
// fused slice loop. Results are bit-identical to the sequential shape —
// slicing only moves engine-local skip-window boundaries, never model state
// (TestBatchBitIdentical) — so batching is purely an execution strategy, like
// skip-ahead itself.

// batched reports whether sweeps should use the lockstep shape.
func (c Config) batched() bool { return c.Batch > 1 }

// simJob adapts one build-then-run simulation to sim.Task: build constructs
// the system lazily (inside the batch worker, so construction is attributed
// to its pprof labels) and returns the run's engine, done predicate and
// budget; finish consumes the terminal engine error and folds the result
// into the sweep.
type simJob struct {
	label  string
	build  func() (*sim.Engine, func() bool, uint64, error)
	finish func(prev error) error
	eng    *sim.Engine
}

func (t *simJob) Engine() *sim.Engine { return t.eng }
func (t *simJob) Label() string       { return t.label }
func (t *simJob) Begin(prev error) (func() bool, uint64, error) {
	if t.eng == nil {
		eng, done, budget, err := t.build()
		if err != nil {
			return nil, 0, err
		}
		t.eng = eng
		return done, budget, nil
	}
	return nil, 0, t.finish(prev)
}

// runTask wraps one runOne-shaped point (build, Run to completion, collect)
// as a sim.Task. finish receives exactly what runOne's callers see: the
// collected Result and the *arch.DiagError of an aborted run (nil otherwise).
func (c Config) runTask(label string, kind arch.Kind, s workload.CoSchedule, opts arch.Options, finish func(*arch.Result, error) error) sim.Task {
	var sys *arch.System
	return &simJob{
		label: label,
		build: func() (*sim.Engine, func() bool, uint64, error) {
			var err error
			sys, err = c.buildOne(kind, s, opts)
			if err != nil {
				return nil, nil, 0, err
			}
			return sys.Engine, sys.Done, c.MaxCycles, nil
		},
		finish: func(prev error) error {
			res, rerr := sys.FinishRun(prev)
			sys.Tele.Flush(sys.Engine.Cycle())
			return finish(res, rerr)
		},
	}
}

// runBatches deals tasks into groups of up to Config.Batch, one lockstep
// batch per worker, bounded by the same -j limit as sequential sweeps. The
// deal is contiguous in task order, so a sweep's points stay grouped the way
// its tables read. The first error (a point's build/verify failure, or a
// cancellation) aborts the sweep.
func (c Config) runBatches(id string, tasks []sim.Task) error {
	groups := make([][]sim.Task, 0, (len(tasks)+c.Batch-1)/c.Batch)
	for len(tasks) > 0 {
		n := c.Batch
		if n > len(tasks) {
			n = len(tasks)
		}
		groups = append(groups, tasks[:n])
		tasks = tasks[n:]
	}
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.maxParallel())
	for g, grp := range groups {
		wg.Add(1)
		go func(g int, grp []sim.Task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bid := fmt.Sprintf("%s/%d", id, g)
			pprof.Do(context.Background(), pprof.Labels("sweep", id, "batch", bid), func(ctx context.Context) {
				b := sim.NewBatch(ctx, bid)
				for _, t := range grp {
					if errs[g] = b.Add(t); errs[g] != nil {
						return
					}
				}
				errs[g] = b.Run(0)
			})
		}(g, grp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runAllArchsBatched is runAllArchs' lockstep shape: the four architectures
// step through one batch instead of running back-to-back.
func (c Config) runAllArchsBatched(s workload.CoSchedule, opts arch.Options) (map[arch.Kind]*arch.Result, map[arch.Kind]*arch.System, error) {
	results := make(map[arch.Kind]*arch.Result, 4)
	systems := make(map[arch.Kind]*arch.System, 4)
	tasks := make([]sim.Task, 0, len(arch.Kinds))
	for _, kind := range arch.Kinds {
		kind := kind
		var sys *arch.System
		tasks = append(tasks, &simJob{
			label: s.Name + "/" + kind.String(),
			build: func() (*sim.Engine, func() bool, uint64, error) {
				var err error
				sys, err = c.buildOne(kind, s, opts)
				if err != nil {
					return nil, nil, 0, fmt.Errorf("%s on %s: %w", s.Name, kind, err)
				}
				return sys.Engine, sys.Done, c.MaxCycles, nil
			},
			finish: func(prev error) error {
				res, rerr := sys.FinishRun(prev)
				sys.Tele.Flush(sys.Engine.Cycle())
				if rerr != nil {
					return fmt.Errorf("%s on %s: %w", s.Name, kind, rerr)
				}
				results[kind] = res
				systems[kind] = sys
				return nil
			},
		})
	}
	if err := c.runBatches(s.Name, tasks); err != nil {
		return nil, nil, err
	}
	return results, systems, nil
}

// degColumnTask is one architecture's degradation column as a multi-segment
// sim.Task: the shared fault-free warm-up to the injection cycle, then one
// segment per failure count forked from the warm checkpoint — the same
// sequence degradationForked runs, sliced.
type degColumnTask struct {
	c     Config
	kind  arch.Kind
	pair  workload.CoSchedule
	units int
	pts   []DegPoint

	sys  *arch.System
	snap *arch.SystemState
	f    int // next failure count; -1 while the warm-up is in flight
}

func (t *degColumnTask) Engine() *sim.Engine { return t.sys.Engine }
func (t *degColumnTask) Label() string       { return "degradation/" + t.kind.String() }

func (t *degColumnTask) Begin(prev error) (func() bool, uint64, error) {
	switch {
	case t.sys == nil: // admission: build and start the warm-up
		sys, err := arch.Build(t.kind, t.pair, arch.Options{
			Seed: t.c.Seed, LegacyTick: t.c.LegacyTick, StallCycles: degStall, WireInjector: true,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("degradation %s: %w", t.kind, err)
		}
		sys.SetInterrupt(t.c.Interrupt)
		t.sys, t.f = sys, -1
		eng := sys.Engine
		return func() bool { return eng.Cycle() >= degFaultAt }, degFaultAt, nil
	case t.f < 0: // warm-up finished: checkpoint, fork f=0
		if prev != nil {
			return nil, 0, fmt.Errorf("degradation %s: warm-up: %w", t.kind, prev)
		}
		t.snap = t.sys.Checkpoint()
		t.f = 0
	default: // point t.f finished
		if canceled(prev) {
			return nil, 0, fmt.Errorf("degradation %s f=%d: %w", t.kind, t.f, prev)
		}
		res, rerr := t.sys.FinishRun(prev)
		t.pts[t.f] = degPointFrom(t.f, res, rerr)
		t.f++
		if t.f >= t.units {
			return nil, 0, nil
		}
	}
	if t.f == 0 {
		// Verify the snapshot digest on the first fork, as the sequential
		// path does; the remaining forks trust the in-process snapshot.
		if err := t.sys.RestoreCheckpoint(t.snap); err != nil {
			return nil, 0, fmt.Errorf("degradation %s f=%d: %w", t.kind, t.f, err)
		}
		t.sys.SetFaultSchedule(nil)
	} else {
		t.sys.RestoreCheckpointTrusted(t.snap)
		t.sys.SetFaultSchedule([]fault.Fault{{Kind: fault.ExeBU, Count: t.f, At: degFaultAt}})
	}
	return t.sys.Done, t.c.MaxCycles, nil
}
