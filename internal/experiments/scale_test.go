package experiments

import (
	"strings"
	"testing"

	"occamy/internal/arch"
)

// TestScalabilityQuick smoke-tests the hierarchical sweep on its smallest
// corner: 4 and 8 cores, flat and 2-cluster, all architectures. It pins the
// invariants the full sweep relies on rather than any absolute number.
func TestScalabilityQuick(t *testing.T) {
	s, err := Quick().Scalability([]int{4, 8}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2*2*len(arch.Kinds) {
		t.Fatalf("got %d points, want %d", len(s.Points), 2*2*len(arch.Kinds))
	}
	for i := range s.Points {
		p := &s.Points[i]
		if p.Cycles == 0 || p.Throughput <= 0 {
			t.Errorf("%dc/%dcl %s: empty point (%d cycles, %.2f elems/kcyc)",
				p.Cores, p.Clusters, p.Kind, p.Cycles, p.Throughput)
		}
		if p.Fairness <= 0 || p.Fairness > 1.0000001 {
			t.Errorf("%dc/%dcl %s: Jain index %f out of (0,1]",
				p.Cores, p.Clusters, p.Kind, p.Fairness)
		}
		if p.Clusters == 1 && (p.Migrations != 0 || p.FabricRefusals != 0) {
			t.Errorf("%dc flat %s: flat machine reported migrations=%d refusals=%d",
				p.Cores, p.Kind, p.Migrations, p.FabricRefusals)
		}
	}
	// The same workload on the same flat machine: the 4-core group is a
	// prefix of the 8-core group only in shape, but each size must at
	// least complete more total work per the larger machine.
	if p4, p8 := s.Point(4, 1, arch.Occamy), s.Point(8, 1, arch.Occamy); p4 != nil && p8 != nil {
		if p8.Cycles == p4.Cycles {
			t.Error("8-core run finished in identical cycles to 4-core run (suspicious)")
		}
	}
	if r := s.Render(); !strings.Contains(r, "Fairness") || !strings.Contains(r, "Occamy") {
		t.Error("render missing expected columns")
	}
}
