package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"occamy/internal/arch"
)

var degOnce struct {
	sync.Once
	d   *Degradation
	err error
}

// degSweep runs the degradation sweep once and shares it across the tests.
func degSweep(t *testing.T) *Degradation {
	t.Helper()
	degOnce.Do(func() { degOnce.d, degOnce.err = Quick().Degradation() })
	if degOnce.err != nil {
		t.Fatal(degOnce.err)
	}
	return degOnce.d
}

// TestDegradationOccamyRetainsMost is the headline robustness claim: for
// every failure count 1..N-1, Occamy retains strictly more throughput than
// the three static designs — and the whole sweep is deterministic under a
// fixed seed.
func TestDegradationOccamyRetainsMost(t *testing.T) {
	d := degSweep(t)
	if d.Units < 2 {
		t.Fatalf("degenerate sweep: %d units", d.Units)
	}
	for f := 1; f < d.Units; f++ {
		occ := d.Points[arch.Occamy][f]
		if !occ.Completed {
			t.Errorf("f=%d: Occamy did not complete: %s", f, occ.Reason)
			continue
		}
		for _, kind := range []arch.Kind{arch.Private, arch.FTS, arch.VLS} {
			if other := d.Points[kind][f]; occ.Retention <= other.Retention {
				t.Errorf("f=%d: Occamy retention %.3f not strictly above %s %.3f",
					f, occ.Retention, kind, other.Retention)
			}
		}
		if occ.HasTTR && !occ.TTRPending && occ.TTR == 0 {
			t.Errorf("f=%d: Occamy recovery has zero time-to-repartition", f)
		}
	}

	d2, err := Quick().Degradation()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fmt.Sprintf("%+v", d.Points), fmt.Sprintf("%+v", d2.Points); a != b {
		t.Errorf("degradation sweep not deterministic under fixed seed:\n%s\n%s", a, b)
	}
}

// TestDegradationSnapshotPathIdentical is the sweep-level differential test
// for warm-up sharing: the snapshot-forked sweep (default) and the
// independent-runs sweep (NoSnapshot) must agree on every point of every
// architecture — cycles, elements, retention, recovery times, DNF verdicts
// and reasons — because forking from the shared-prefix checkpoint is an
// execution strategy, not a model change.
func TestDegradationSnapshotPathIdentical(t *testing.T) {
	forked := degSweep(t) // the shared sweep uses the default snapshot path
	cfg := Quick()
	cfg.NoSnapshot = true
	straight, err := cfg.Degradation()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range arch.Kinds {
		a := fmt.Sprintf("%+v", forked.Points[kind])
		b := fmt.Sprintf("%+v", straight.Points[kind])
		if a != b {
			t.Errorf("%s: snapshot-forked sweep diverges from independent runs\nforked:   %s\nstraight: %s", kind, a, b)
		}
	}
}

// TestDegradationRender smoke-checks the report.
func TestDegradationRender(t *testing.T) {
	out := degSweep(t).Render()
	for _, want := range []string{"Degradation", "Occamy", "Time to repartition"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
