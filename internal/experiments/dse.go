package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/metrics"
	"occamy/internal/workload"
)

// This file is a design-space exploration beyond the paper's fixed Table 4
// machine: it re-runs the motivating pair while sweeping one hardware
// parameter at a time (through arch.MachineTuning), asking how robust the
// elastic-sharing win is to the surrounding machine. The paper's own
// sensitivity analysis stops at lane count (Fig. 14) and core count
// (Fig. 16); these sweeps cover the memory system and the pipelines.

// dseRow runs the motivating pair on every architecture with one tuning and
// returns the per-architecture makespans plus Occamy's speedup over Private
// on the compute core (the paper's headline metric).
func (c Config) dseRow(m *arch.MachineTuning) (map[arch.Kind]*arch.Result, float64, error) {
	pair := workload.MotivatingPair(reg)
	results := make(map[arch.Kind]*arch.Result, len(arch.Kinds))
	for _, kind := range arch.Kinds {
		_, res, err := c.runOne(kind, pair, arch.Options{Machine: m})
		if err != nil {
			return nil, 0, fmt.Errorf("dse on %s: %w", kind, err)
		}
		results[kind] = res
	}
	speedup := float64(results[arch.Private].Cores[1].Cycles) /
		float64(results[arch.Occamy].Cores[1].Cycles)
	return results, speedup, nil
}

// dseTable renders one parameter sweep: a row per setting with every
// architecture's makespan and the Core1 Occamy-vs-Private speedup.
func (c Config) dseTable(title, unit string, settings []string, tunings []*arch.MachineTuning) (string, error) {
	var b strings.Builder
	b.WriteString(title + "\n\n")
	t := &metrics.Table{Header: []string{unit, "Private", "FTS", "VLS", "Occamy", "C1 speedup"}}
	for i, m := range tunings {
		results, speedup, err := c.dseRow(m)
		if err != nil {
			return "", err
		}
		t.Add(settings[i],
			fmt.Sprintf("%d", results[arch.Private].Cycles),
			fmt.Sprintf("%d", results[arch.FTS].Cycles),
			fmt.Sprintf("%d", results[arch.VLS].Cycles),
			fmt.Sprintf("%d", results[arch.Occamy].Cycles),
			fmt.Sprintf("%.2fx", speedup),
		)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// DSEDRAMBandwidth sweeps the DRAM bandwidth (Table 4 uses 32 B/cycle ≙
// 64 GB/s): elastic sharing must keep its compute-side win as the memory
// system is starved or widened, because the roofline model adapts the
// partition to the moving memory ceiling.
func (c Config) DSEDRAMBandwidth(bytesPerCycle []float64) (string, error) {
	settings := make([]string, len(bytesPerCycle))
	tunings := make([]*arch.MachineTuning, len(bytesPerCycle))
	for i, bw := range bytesPerCycle {
		settings[i] = fmt.Sprintf("%.0f B/cy", bw)
		tunings[i] = &arch.MachineTuning{DRAMBytesPerCycle: bw}
	}
	return c.dseTable("DSE: DRAM bandwidth sweep (motivating pair; Table 4 default 32 B/cy)",
		"DRAM BW", settings, tunings)
}

// DSEVecCache sweeps the shared vector cache capacity (Table 4: 128 KB).
func (c Config) DSEVecCache(sizesKB []int) (string, error) {
	settings := make([]string, len(sizesKB))
	tunings := make([]*arch.MachineTuning, len(sizesKB))
	for i, kb := range sizesKB {
		settings[i] = fmt.Sprintf("%d KB", kb)
		tunings[i] = &arch.MachineTuning{VecCacheKB: kb}
	}
	return c.dseTable("DSE: shared vector-cache capacity sweep (motivating pair; Table 4 default 128 KB)",
		"VecCache", settings, tunings)
}

// DSEComputeLatency sweeps the ExeBU FP pipeline depth (default 4 cycles):
// deeper pipes stretch dependence chains, which hurts the narrow-VL
// architectures more than the wide elastic allocation.
func (c Config) DSEComputeLatency(lats []uint64) (string, error) {
	settings := make([]string, len(lats))
	tunings := make([]*arch.MachineTuning, len(lats))
	for i, l := range lats {
		settings[i] = fmt.Sprintf("%d cy", l)
		tunings[i] = &arch.MachineTuning{ComputeLat: l}
	}
	return c.dseTable("DSE: ExeBU FP pipeline depth sweep (motivating pair; default 4 cycles)",
		"FP lat", settings, tunings)
}

// DSEDefaults are the sweeps cmd/occamy-bench -exp dse runs.
func (c Config) DSEDefaults() (string, error) {
	var b strings.Builder
	bw, err := c.DSEDRAMBandwidth([]float64{8, 16, 32, 64})
	if err != nil {
		return "", err
	}
	b.WriteString(bw + "\n")
	vc, err := c.DSEVecCache([]int{16, 64, 128, 256})
	if err != nil {
		return "", err
	}
	b.WriteString(vc + "\n")
	lat, err := c.DSEComputeLatency([]uint64{2, 4, 8, 16})
	if err != nil {
		return "", err
	}
	b.WriteString(lat)
	return b.String(), nil
}
