package experiments

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strings"
	"sync"

	"occamy/internal/arch"
	"occamy/internal/coproc"
	"occamy/internal/metrics"
	"occamy/internal/sim"
	"occamy/internal/workload"
)

// This file extends the §7.6 scalability study (fig16.go) past the paper's
// four cores: the same all-architectures comparison swept over machine size
// (4 → 64 cores) and over the co-processor topology (1 → 4 clusters behind
// the routed fabric). Where Figure 16 asks "does elastic sharing still win
// with four tenants?", this study asks "does it keep winning when the lane
// manager is sharded and transmissions pay fabric hops?".

// ScaleHopLatency / ScaleHopBandwidth are the fabric parameters every
// clustered point uses: 2 cycles per hop and 8 accepted transmissions per
// cluster per cycle (the same point the steady-state benchmarks pin).
const (
	ScaleHopLatency   = 2
	ScaleHopBandwidth = 8
)

// ScalePoint is one (cores, clusters, architecture) run.
type ScalePoint struct {
	Cores    int
	Clusters int
	Kind     arch.Kind
	// Cycles is the makespan; Throughput normalizes completed vector
	// elements by it (elements per kilocycle — higher is better, and
	// comparable across machine sizes because the element total grows
	// with the core count).
	Cycles     uint64
	Throughput float64
	// Fairness is Jain's index over the per-core element rates
	// (elems/cycle): 1.0 when every tenant progresses equally, 1/n when
	// one tenant starves the rest.
	Fairness float64
	// Migrations and FabricRefusals expose the hierarchical machinery:
	// completed inter-cluster tenant moves and transmissions refused by
	// the per-cluster bandwidth limit.
	Migrations     uint64
	FabricRefusals uint64
}

// Scale holds the full sweep.
type Scale struct {
	Cores    []int
	Clusters []int
	Points   []ScalePoint
}

// ScaleGroup builds the n-core co-schedule the study runs: cores cycle
// through four Table 3 kernels with staggered element counts, so every
// cluster hosts a mix of compute- and memory-bound tenants and no two cores
// finish in lockstep.
func ScaleGroup(r *workload.Registry, n int) workload.CoSchedule {
	names := []string{"dotProd", "wsm51", "rho_eos1", "rgb2hsv"}
	s := workload.CoSchedule{Name: fmt.Sprintf("scale:%dc", n)}
	for c := 0; c < n; c++ {
		k := *r.Kernel(names[c%len(names)])
		k.Elems, k.Repeats = 512+64*(c%4), 20
		s.W = append(s.W, &workload.Workload{
			Name:   fmt.Sprintf("scale.c%d", c),
			Phases: []*workload.Kernel{&k},
		})
	}
	return s
}

// Scalability sweeps cores × clusters × architectures. Nil slices select the
// default grid (4→64 cores, 1→4 clusters); combinations the topology cannot
// divide evenly are skipped. Points run in parallel (each simulated system is
// independent and deterministic), bounded by Config.Parallel.
func (c Config) Scalability(cores, clusters []int) (*Scale, error) {
	if len(cores) == 0 {
		cores = []int{4, 8, 16, 32, 64}
	}
	if len(clusters) == 0 {
		clusters = []int{1, 2, 4}
	}
	out := &Scale{Cores: cores, Clusters: clusters}
	type job struct {
		n, k int
		kind arch.Kind
	}
	var jobs []job
	for _, n := range cores {
		for _, k := range clusters {
			if n%k != 0 || (4*n)%k != 0 {
				continue
			}
			for _, kind := range arch.Kinds {
				jobs = append(jobs, job{n, k, kind})
			}
		}
	}
	scaleOpts := func(j job) arch.Options {
		opts := arch.Options{}
		if j.k > 1 {
			opts.Topology = &coproc.Topology{
				Clusters:     j.k,
				HopLatency:   ScaleHopLatency,
				HopBandwidth: ScaleHopBandwidth,
			}
		}
		return opts
	}
	fold := func(j job, res *arch.Result) ScalePoint {
		rates := make([]float64, 0, len(res.Cores))
		for _, cr := range res.Cores {
			if cr.Cycles > 0 {
				rates = append(rates, float64(cr.Elems)/float64(cr.Cycles))
			}
		}
		return ScalePoint{
			Cores: j.n, Clusters: j.k, Kind: j.kind,
			Cycles:         res.Cycles,
			Throughput:     1000 * float64(res.Elems) / float64(res.Cycles),
			Fairness:       metrics.Jain(rates),
			Migrations:     res.Migrations,
			FabricRefusals: res.FabricRefusals,
		}
	}
	pts := make([]ScalePoint, len(jobs))

	if c.batched() {
		tasks := make([]sim.Task, len(jobs))
		for i, j := range jobs {
			i, j := i, j
			label := fmt.Sprintf("scale:%dc/%dcl/%s", j.n, j.k, j.kind)
			tasks[i] = c.runTask(label, j.kind, ScaleGroup(reg, j.n), scaleOpts(j),
				func(res *arch.Result, rerr error) error {
					if rerr != nil {
						return fmt.Errorf("scale %dc/%dcl on %s: %w", j.n, j.k, j.kind, rerr)
					}
					pts[i] = fold(j, res)
					return nil
				})
		}
		if err := c.runBatches("scale", tasks); err != nil {
			return nil, err
		}
		out.Points = pts
		return out, nil
	}

	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.maxParallel())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			labels := pprof.Labels("sweep", "scale", "point", fmt.Sprintf("%dc/%dcl/%s", j.n, j.k, j.kind))
			pprof.Do(context.Background(), labels, func(context.Context) {
				_, res, err := c.runOne(j.kind, ScaleGroup(reg, j.n), scaleOpts(j))
				if err != nil {
					errs[i] = fmt.Errorf("scale %dc/%dcl on %s: %w", j.n, j.k, j.kind, err)
					return
				}
				pts[i] = fold(j, res)
			})
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.Points = pts
	return out, nil
}

// TotalCycles sums the simulated cycles across every sweep point.
func (s *Scale) TotalCycles() uint64 {
	var n uint64
	for i := range s.Points {
		n += s.Points[i].Cycles
	}
	return n
}

// Point returns the run at (cores, clusters, kind), or nil.
func (s *Scale) Point(cores, clusters int, kind arch.Kind) *ScalePoint {
	for i := range s.Points {
		p := &s.Points[i]
		if p.Cores == cores && p.Clusters == clusters && p.Kind == kind {
			return p
		}
	}
	return nil
}

// Render produces the per-architecture throughput/fairness curves.
func (s *Scale) Render() string {
	var b strings.Builder
	b.WriteString("Scalability: cores × clusters, all architectures\n")
	b.WriteString("(throughput in elements/kilocycle; fairness is Jain's index over per-core rates)\n\n")
	t := &metrics.Table{Header: []string{"Cores", "Clusters", "Arch", "Cycles", "Elems/kcyc", "Fairness", "Migr", "FabRefuse"}}
	for _, n := range s.Cores {
		for _, k := range s.Clusters {
			for _, kind := range arch.Kinds {
				p := s.Point(n, k, kind)
				if p == nil {
					continue
				}
				t.Add(fmt.Sprint(n), fmt.Sprint(k), kind.String(),
					fmt.Sprint(p.Cycles),
					fmt.Sprintf("%.1f", p.Throughput),
					fmt.Sprintf("%.3f", p.Fairness),
					fmt.Sprint(p.Migrations),
					fmt.Sprint(p.FabricRefusals))
			}
		}
	}
	b.WriteString(t.String())
	b.WriteString("\nReading: a flat 64-core machine funnels every tenant through one lane\nmanager; sharding it over clusters keeps the §5.2 pass per-cluster-sized\nwhile the global balance pass migrates tenants only on sustained imbalance.\n")
	return b.String()
}
