package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"occamy/internal/arch"
)

// TestFigure2Quick runs the motivating example at reduced scale and checks
// the published orderings plus the renderer.
func TestFigure2Quick(t *testing.T) {
	f, err := Quick().Figure2()
	if err != nil {
		t.Fatal(err)
	}
	priv := f.Results[arch.Private]
	occ := f.Results[arch.Occamy]
	if occ.Cores[1].Cycles >= priv.Cores[1].Cycles {
		t.Errorf("Occamy WL#1 (%d) must beat Private (%d)", occ.Cores[1].Cycles, priv.Cores[1].Cycles)
	}
	if occ.Utilization <= priv.Utilization {
		t.Errorf("Occamy utilization (%v) must beat Private (%v)", occ.Utilization, priv.Utilization)
	}
	out := f.Render()
	for _, frag := range []string{"Private", "FTS", "VLS", "Occamy", "core0", "SIMD util"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

// TestSweepQuickOrderings runs the 25-pair sweep at reduced scale, verifying
// the paper's qualitative orderings and every sweep renderer.
func TestSweepQuickOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is a few seconds")
	}
	sw, err := Quick().Sweep(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Rows) != 25 {
		t.Fatalf("rows = %d", len(sw.Rows))
	}
	// Occamy must be the best Core1 performer on GM.
	occ := sw.GeomeanSpeedup(arch.Occamy, 1)
	if occ <= sw.GeomeanSpeedup(arch.FTS, 1) || occ <= 1.0 {
		t.Errorf("Occamy Core1 GM %.2f must beat FTS and 1.0", occ)
	}
	// Figure 13's pathology: FTS stalls dominate; spatial architectures don't.
	if sw.GeomeanRenameStalls(arch.FTS) < 0.5 {
		t.Errorf("FTS stalls = %v, want > 50%%", sw.GeomeanRenameStalls(arch.FTS))
	}
	if sw.GeomeanRenameStalls(arch.Private) > 0.01 {
		t.Errorf("Private stalls = %v, want ~0", sw.GeomeanRenameStalls(arch.Private))
	}
	// Figure 15: overheads small, reconfiguration below monitoring range.
	m, g := sw.MeanOverhead()
	if m <= 0 || m > 0.1 || g <= 0 || g > 0.02 {
		t.Errorf("overheads monitor=%v reconfig=%v out of expected range", m, g)
	}
	for _, out := range []string{
		RenderFigure10(sw), RenderFigure11(sw), RenderFigure13(sw), RenderFigure15(sw),
	} {
		if !strings.Contains(out, "GM") && !strings.Contains(out, "Mean") {
			t.Error("renderer missing aggregate row")
		}
		if !strings.Contains(out, "spec:WL20+WL17") {
			t.Error("renderer missing a pair row")
		}
	}
}

// TestFigure14Quick checks the case study's knee structure.
func TestFigure14Quick(t *testing.T) {
	f, err := Quick().Figure14()
	if err != nil {
		t.Fatal(err)
	}
	// WL17 keeps scaling: time at 28 lanes well below half the 4-lane time.
	wl17 := f.NormalizedTimes["WL17(wsm52)"]
	if wl17[6] > 0.5*wl17[0] {
		t.Errorf("WL17 must keep scaling with lanes: %v", wl17)
	}
	// The memory phases flatten: 28 lanes no better than 80%% of 16 lanes.
	p1 := f.NormalizedTimes["WL20.p1(sff2)"]
	if p1[6] < 0.8*p1[3] {
		t.Errorf("WL20.p1 should flatten after its knee: %v", p1)
	}
	if !strings.Contains(f.Render(), "Per-phase SIMD issue rates") {
		t.Error("render incomplete")
	}
}

// TestFigure16Quick checks the scalability orderings.
func TestFigure16Quick(t *testing.T) {
	f, err := Quick().Figure16()
	if err != nil {
		t.Fatal(err)
	}
	// Occamy must beat Private on the compute cores of the two-pairs groups.
	for _, g := range []string{"4c:WL21+20+17+17"} {
		if sp := f.Speedup(g, arch.Occamy, 2); sp <= 1.0 {
			t.Errorf("%s core2 speedup = %.2f, want > 1", g, sp)
		}
		if sp := f.Speedup(g, arch.Occamy, 3); sp <= 1.0 {
			t.Errorf("%s core3 speedup = %.2f, want > 1", g, sp)
		}
	}
	if !strings.Contains(f.Render(), "GM") {
		t.Error("render missing GM")
	}
}

func TestTablesRender(t *testing.T) {
	t3 := RenderTable3()
	for _, frag := range []string{"rho_eos2", "wsm51", "dotProd", "spec/WL8", "cv/WL12", "published"} {
		if !strings.Contains(t3, frag) {
			t.Errorf("Table 3 missing %q", frag)
		}
	}
	t4 := RenderTable4()
	for _, frag := range []string{"32 total", "128 KB", "8 MB", "64 GB/s", "160 per rename"} {
		if !strings.Contains(t4, frag) {
			t.Errorf("Table 4 missing %q", frag)
		}
	}
	t5 := Table5()
	if !strings.Contains(t5, "5.3") || !strings.Contains(t5, "16.0") {
		t.Error("Table 5 anchors missing")
	}
}

func TestAblationsQuick(t *testing.T) {
	cfg := Quick()
	s, err := cfg.AblationMonitorPeriod([]int{1, 16})
	if err != nil || !strings.Contains(s, "Period") {
		t.Fatalf("monitor ablation: %v", err)
	}
	if out := AblationIssueCeiling(); !strings.Contains(out, "rho_eos2") {
		t.Error("issue-ceiling ablation must flag the Case 4 kernel")
	}
	s, err = cfg.AblationFTSRegisters([]int{160, 320})
	if err != nil || !strings.Contains(s, "PhysRegs") {
		t.Fatalf("FTS ablation: %v", err)
	}
	s, err = cfg.AblationDefaultVL([]int{1, 2})
	if err != nil || !strings.Contains(s, "DefaultVL") {
		t.Fatalf("defaultVL ablation: %v", err)
	}
}

func TestHTMLReportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation at reduced scale")
	}
	var buf bytes.Buffer
	if err := Quick().HTMLReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<svg") < 10 {
		t.Errorf("expected at least 10 charts, found %d", strings.Count(out, "<svg"))
	}
	for _, frag := range []string{"Figure 2", "Figure 10", "Figure 12", "Figure 14", "Figure 16"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

// TestSweepFull regenerates the full-scale sweep (the EXPERIMENTS.md data);
// it only runs when FULL=1 is set.
func TestSweepFull(t *testing.T) {
	if os.Getenv("FULL") == "" {
		t.Skip("set FULL=1 for the full-scale sweep")
	}
	sw, err := Default().Sweep(true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFigure10(sw) + "\n" + RenderFigure11(sw) + "\n" + RenderFigure13(sw) + "\n" + RenderFigure15(sw))
}

// TestDSEQuick exercises every machine-parameter sweep at reduced scale and
// checks the directional expectations: starving DRAM slows every
// architecture, and Occamy stays ahead of Private on the compute core at the
// Table 4 point of each sweep.
func TestDSEQuick(t *testing.T) {
	cfg := Quick()

	bw, err := cfg.DSEDRAMBandwidth([]float64{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bw, "8 B/cy") || !strings.Contains(bw, "32 B/cy") {
		t.Fatalf("bandwidth rows missing:\n%s", bw)
	}

	vc, err := cfg.DSEVecCache([]int{16, 128})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vc, "128 KB") {
		t.Fatalf("cache rows missing:\n%s", vc)
	}

	lat, err := cfg.DSEComputeLatency([]uint64{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lat, "16 cy") {
		t.Fatalf("latency rows missing:\n%s", lat)
	}
}

// TestDSEDirectional pins the physics at quick scale: half the DRAM
// bandwidth must not make the memory-bound pair faster on any architecture,
// and the Core1 elastic speedup must stay above parity everywhere in the
// bandwidth sweep.
func TestDSEDirectional(t *testing.T) {
	cfg := Quick()
	slow, slowSpeedup, err := cfg.dseRow(&arch.MachineTuning{DRAMBytesPerCycle: 8})
	if err != nil {
		t.Fatal(err)
	}
	base, baseSpeedup, err := cfg.dseRow(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range arch.Kinds {
		if slow[kind].Cycles < base[kind].Cycles {
			t.Errorf("%s: quarter-bandwidth DRAM sped the pair up: %d vs %d",
				kind, slow[kind].Cycles, base[kind].Cycles)
		}
	}
	if baseSpeedup <= 1.0 {
		t.Errorf("Occamy not ahead of Private at the Table 4 point: %.2fx", baseSpeedup)
	}
	if slowSpeedup <= 1.0 {
		t.Errorf("Occamy lost its compute-side win under starved DRAM: %.2fx", slowSpeedup)
	}
}
