package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"occamy/internal/arch"
	"occamy/internal/fault"
	"occamy/internal/metrics"
	"occamy/internal/sim"
	"occamy/internal/workload"
)

// The degradation study: inject f permanently failed ExeBUs early in the run
// and measure how much throughput each Figure 1 architecture retains,
// normalized to its own fault-free run. The group is heterogeneous on
// purpose — a long compute-bound chain on core 0 (the fault controller's
// round-robin cursor victimizes core 0 first), co-long memory-bound triads
// on cores 1 and 3, and a shorter compute chain on core 2. Static splits
// must eat each loss wherever the round-robin lands it: on a memory core it
// cuts into the roofline knee (and soon kills the core outright), on the
// critical-path compute core it stretches the whole run. Occamy's elastic
// replan instead sheds every loss onto whoever tolerates it best — the
// light compute core's surplus first, the knees last — which is exactly the
// robustness claim under test.
const (
	// degFaultAt is the injection cycle. It serves two masters: the study
	// needs every phase still in flight when the fault lands (the earliest
	// core retires around cycle 5600, so 5000 keeps all sixteen strip loops
	// live), and the sweep's warm-up sharing wants the fault as late as
	// possible — the fault-free prefix [0, degFaultAt) is identical across
	// every failure count, so it is simulated once per architecture,
	// checkpointed, and every sweep point forks from the snapshot.
	degFaultAt = 5000
	// degStall is the forward-progress watchdog threshold: a victim that
	// stops retiring (dead Private half, zero-lane VLS partition) is
	// converted into a DNF data point instead of burning the cycle budget.
	// The longest legitimate progress gap in this sweep is a drain-gated
	// revocation of a few hundred cycles; 25k keeps an order of magnitude
	// of headroom while letting DNF points terminate quickly.
	degStall = 25_000
)

// degChain builds a compute-bound workload: one stream in, one out, a
// 15-op balanced reduction tree per element. The tree shape (rather than a
// serial fold) gives the kernel instruction-level parallelism, so its
// throughput tracks the issue rate and the data-path width instead of pure
// operation latency — the regime where losing ExeBUs actually hurts.
func degChain(name string, repeats int) *workload.Workload {
	leaves := make([]*workload.Expr, 8)
	for i := range leaves {
		c := workload.Const(1.0 + 0.01*float32(i%4+1))
		if i%2 == 0 {
			leaves[i] = workload.Mul(workload.Slot(0), c)
		} else {
			leaves[i] = workload.Add(workload.Slot(0), c)
		}
	}
	for len(leaves) > 1 {
		next := make([]*workload.Expr, 0, len(leaves)/2)
		for i := 0; i < len(leaves); i += 2 {
			if len(leaves)%4 == 0 {
				next = append(next, workload.Add(leaves[i], leaves[i+1]))
			} else {
				next = append(next, workload.Mul(leaves[i], leaves[i+1]))
			}
		}
		leaves = next
	}
	return &workload.Workload{Name: name, Phases: []*workload.Kernel{{
		Name:    name + ".tree",
		Slots:   []workload.LoadSlot{{Stream: 0}},
		Stmts:   []workload.Stmt{{Out: 1, E: leaves[0]}},
		Elems:   512,
		Repeats: repeats,
	}}}
}

// degTriad builds a memory-bound workload: the classic triad.
func degTriad(name string, repeats int) *workload.Workload {
	return &workload.Workload{Name: name, Phases: []*workload.Kernel{{
		Name:  name + ".k",
		Slots: []workload.LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts: []workload.Stmt{{
			Out: 2,
			E:   workload.Add(workload.Mul(workload.Slot(0), workload.Const(1.5)), workload.Slot(1)),
		}},
		Elems:   512,
		Repeats: repeats,
	}}}
}

func degradationGroup() workload.CoSchedule {
	return workload.CoSchedule{Name: "degradation", W: []*workload.Workload{
		degChain("deg.heavy", 48),
		degTriad("deg.mem0", 70),
		degChain("deg.light", 28),
		degTriad("deg.mem1", 70),
	}}
}

// DegPoint is one (architecture, failed-unit count) measurement.
type DegPoint struct {
	Failed    int
	Completed bool
	// Reason holds the engine error for DNF points ("" when completed).
	Reason string
	Cycles uint64
	Elems  uint64
	// Retention is (Elems/Cycles) normalized to the architecture's own
	// f=0 run; 0 for DNF points.
	Retention float64
	// TTR is the slowest recovery's time-to-repartition (lane-replanning
	// architectures only; see HasTTR).
	TTR        uint64
	TTRPending bool
	HasTTR     bool
}

// Degradation holds the full sweep: for every architecture, points for
// f = 0..Units-1 failed ExeBUs.
type Degradation struct {
	Units   int
	FaultAt uint64
	Points  map[arch.Kind][]DegPoint
}

// Degradation sweeps f = 0..N-1 permanently failed ExeBUs over all four
// architectures. The group is a fixed size — Config.Scale is deliberately not
// applied, because the study's validity depends on the fault landing while
// every phase is still in flight (the group is already sized for quick runs).
//
// All of an architecture's points share the fault-free prefix [0, degFaultAt)
// bit-exactly, so by default the sweep simulates that prefix once per
// architecture, checkpoints, and forks every failure count from the snapshot
// with a swapped-in fault schedule — the points run serially per architecture
// (they reuse one System), with the four architectures in parallel.
// Config.NoSnapshot selects the legacy shape instead: every point an
// independent full simulation, parallel across all points. Both paths produce
// bit-identical sweeps (TestDegradationSnapshotPathIdentical).
func (c Config) Degradation() (*Degradation, error) {
	pair := degradationGroup()
	probe, err := arch.Build(arch.Occamy, pair, arch.Options{Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	units := probe.Coproc.Tbl().Total()

	out := &Degradation{Units: units, FaultAt: degFaultAt, Points: make(map[arch.Kind][]DegPoint, len(arch.Kinds))}
	for _, kind := range arch.Kinds {
		out.Points[kind] = make([]DegPoint, units)
	}

	if err := c.degradationPoints(pair, units, out); err != nil {
		return nil, err
	}

	// Normalize to each architecture's own fault-free throughput.
	for kind, pts := range out.Points {
		base := pts[0]
		if !base.Completed {
			return nil, fmt.Errorf("degradation: fault-free %s run did not complete: %s", kind, base.Reason)
		}
		baseTp := float64(base.Elems) / float64(base.Cycles)
		for f := range pts {
			if pts[f].Completed {
				pts[f].Retention = (float64(pts[f].Elems) / float64(pts[f].Cycles)) / baseTp
			}
		}
	}
	return out, nil
}

// degradationPoints fills out.Points via the snapshot-forked path (default)
// or the independent-runs path (Config.NoSnapshot).
func (c Config) degradationPoints(pair workload.CoSchedule, units int, out *Degradation) error {
	if c.NoSnapshot {
		type job struct {
			kind arch.Kind
			f    int
		}
		jobs := make([]job, 0, len(arch.Kinds)*units)
		for _, kind := range arch.Kinds {
			for f := 0; f < units; f++ {
				jobs = append(jobs, job{kind, f})
			}
		}
		errs := make([]error, len(jobs))
		var wg sync.WaitGroup
		sem := make(chan struct{}, c.maxParallel())
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				labels := pprof.Labels("sweep", "degradation", "point", fmt.Sprintf("%s/f%d", j.kind, j.f))
				pprof.Do(context.Background(), labels, func(context.Context) {
					p, err := c.degradationPoint(j.kind, pair, j.f)
					if err != nil {
						errs[i] = fmt.Errorf("degradation %s f=%d: %w", j.kind, j.f, err)
						return
					}
					out.Points[j.kind][j.f] = p
				})
			}(i, j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if c.batched() {
		tasks := make([]sim.Task, 0, len(arch.Kinds))
		for _, kind := range arch.Kinds {
			tasks = append(tasks, &degColumnTask{c: c, kind: kind, pair: pair, units: units, pts: out.Points[kind]})
		}
		return c.runBatches("degradation", tasks)
	}

	errs := make([]error, len(arch.Kinds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.maxParallel())
	for i, kind := range arch.Kinds {
		wg.Add(1)
		go func(i int, kind arch.Kind) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			labels := pprof.Labels("sweep", "degradation", "point", kind.String())
			pprof.Do(context.Background(), labels, func(context.Context) {
				errs[i] = c.degradationForked(kind, pair, units, out.Points[kind])
			})
		}(i, kind)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// degradationForked runs one architecture's full column: warm the shared
// fault-free prefix up once, checkpoint just before the injection cycle, then
// fork every failure count from the snapshot. Identical construction to the
// straight path (WireInjector keeps the injector registered even at f=0, as
// Faults does for f>0), so every point is bit-identical to an independent
// from-zero run with that schedule.
func (c Config) degradationForked(kind arch.Kind, pair workload.CoSchedule, units int, pts []DegPoint) error {
	sys, err := arch.Build(kind, pair, arch.Options{
		Seed: c.Seed, LegacyTick: c.LegacyTick, StallCycles: degStall, WireInjector: true,
	})
	if err != nil {
		return fmt.Errorf("degradation %s: %w", kind, err)
	}
	sys.SetInterrupt(c.Interrupt)
	if err := sys.RunTo(degFaultAt); err != nil {
		return fmt.Errorf("degradation %s: warm-up: %w", kind, err)
	}
	snap := sys.Checkpoint()
	for f := 0; f < units; f++ {
		if f == 0 {
			// Verify the snapshot's digest once; the remaining forks restore
			// the same in-process snapshot and skip the reflective walk.
			if err := sys.RestoreCheckpoint(snap); err != nil {
				return fmt.Errorf("degradation %s f=%d: %w", kind, f, err)
			}
		} else {
			sys.RestoreCheckpointTrusted(snap)
		}
		if f > 0 {
			sys.SetFaultSchedule([]fault.Fault{{Kind: fault.ExeBU, Count: f, At: degFaultAt}})
		} else {
			sys.SetFaultSchedule(nil)
		}
		res, rerr := sys.Run(c.MaxCycles)
		if canceled(rerr) {
			return fmt.Errorf("degradation %s f=%d: %w", kind, f, rerr)
		}
		pts[f] = degPointFrom(f, res, rerr)
	}
	return nil
}

// degradationPoint runs one independent sweep point from cycle zero.
func (c Config) degradationPoint(kind arch.Kind, pair workload.CoSchedule, f int) (DegPoint, error) {
	opts := arch.Options{Seed: c.Seed, LegacyTick: c.LegacyTick, StallCycles: degStall, WireInjector: true}
	if f > 0 {
		opts.Faults = []fault.Fault{{Kind: fault.ExeBU, Count: f, At: degFaultAt}}
	}
	sys, err := arch.Build(kind, pair, opts)
	if err != nil {
		return DegPoint{}, err
	}
	sys.SetInterrupt(c.Interrupt)
	res, rerr := sys.Run(c.MaxCycles)
	if canceled(rerr) {
		return DegPoint{}, rerr
	}
	return degPointFrom(f, res, rerr), nil
}

// canceled reports whether err is a cooperative interruption (SIGINT): those
// must abort the sweep rather than masquerade as DNF data points.
func canceled(err error) bool {
	var cerr *sim.CanceledError
	return errors.As(err, &cerr)
}

// degPointFrom folds a run's outcome into a sweep point. A watchdog stall or
// cycle-budget exhaustion is a DNF data point (the partial result still
// carries the cycle and element counts), not a sweep error.
func degPointFrom(f int, res *arch.Result, rerr error) DegPoint {
	p := DegPoint{Failed: f}
	if res != nil {
		p.Cycles, p.Elems = res.Cycles, res.Elems
		for _, r := range res.Recoveries {
			p.HasTTR = true
			if r.Pending {
				p.TTRPending = true
			} else if ttr := r.TimeToRepartition(); ttr > p.TTR {
				p.TTR = ttr
			}
		}
	}
	if rerr != nil {
		p.Reason = rerr.Error()
		return p
	}
	p.Completed = true
	return p
}

// TotalCycles sums the simulated cycles across every sweep point (DNF points
// contribute the cycles they did run).
func (d *Degradation) TotalCycles() uint64 {
	var n uint64
	for _, pts := range d.Points {
		for _, p := range pts {
			n += p.Cycles
		}
	}
	return n
}

// TTRStats summarizes one architecture's completed time-to-repartition
// column across the sweep: min, lower-median p50 and max in cycles over the
// n completed recoveries (points with a recovery window that settled before
// the run ended). n == 0 means the architecture reacts combinationally or
// nothing settled.
func (d *Degradation) TTRStats(kind arch.Kind) (min, p50, max uint64, n int) {
	ttrs := make([]uint64, 0, d.Units)
	for f := 1; f < d.Units; f++ {
		p := d.Points[kind][f]
		if p.HasTTR && !p.TTRPending {
			ttrs = append(ttrs, p.TTR)
		}
	}
	if len(ttrs) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(ttrs, func(i, j int) bool { return ttrs[i] < ttrs[j] })
	n = len(ttrs)
	return ttrs[0], ttrs[(n-1)/2], ttrs[n-1], n
}

// Render produces the retention and time-to-repartition tables.
func (d *Degradation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degradation: throughput retention vs. permanently failed ExeBUs\n")
	fmt.Fprintf(&b, "(%d units, fault injected at cycle %d, retention relative to each\narchitecture's own fault-free run; DNF = watchdog stall, retention 0)\n\n",
		d.Units, d.FaultAt)

	t := &metrics.Table{Header: []string{"Failed"}}
	for _, kind := range arch.Kinds {
		t.Header = append(t.Header, kind.String())
	}
	for f := 0; f < d.Units; f++ {
		row := []string{fmt.Sprintf("%d", f)}
		for _, kind := range arch.Kinds {
			p := d.Points[kind][f]
			if !p.Completed {
				row = append(row, "DNF")
				continue
			}
			row = append(row, metrics.FormatPct(p.Retention))
		}
		t.Add(row...)
	}
	b.WriteString(t.String())

	b.WriteString("\nTime to repartition (cycles from fault to a settled lane plan):\n\n")
	tt := &metrics.Table{Header: []string{"Failed"}}
	// Only the lane-repartitioning architectures have a nonzero recovery
	// window; issue gates and register cuts react combinationally.
	repl := []arch.Kind{}
	for _, kind := range arch.Kinds {
		for f := 1; f < d.Units; f++ {
			if p := d.Points[kind][f]; p.TTR > 0 || p.TTRPending {
				repl = append(repl, kind)
				break
			}
		}
	}
	for _, kind := range repl {
		tt.Header = append(tt.Header, kind.String())
	}
	for f := 1; f < d.Units; f++ {
		row := []string{fmt.Sprintf("%d", f)}
		for _, kind := range repl {
			p := d.Points[kind][f]
			switch {
			case p.TTRPending:
				row = append(row, "pending")
			case !p.HasTTR:
				row = append(row, "-")
			default:
				row = append(row, fmt.Sprintf("%d", p.TTR))
			}
		}
		tt.Add(row...)
	}
	b.WriteString(tt.String())
	for _, kind := range repl {
		if min, p50, max, n := d.TTRStats(kind); n > 0 {
			fmt.Fprintf(&b, "%s TTR: min %d  p50 %d  max %d cycles (%d completed recoveries)\n",
				kind, min, p50, max, n)
		}
	}
	b.WriteString("\nOccamy's elastic repartition keeps every core on the surviving units, so\nit retains the most throughput at every failure count; the static splits\nlose whole partitions (Private), strand lanes (VLS) or stall everyone\nthrough the shared structures (FTS).\n")
	return b.String()
}
