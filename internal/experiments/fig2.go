package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/metrics"
	"occamy/internal/workload"
)

// Fig2 holds the §2 motivating example measured on all four architectures.
type Fig2 struct {
	Results map[arch.Kind]*arch.Result
	// Timelines[kind][core] is the busy-lane curve per 1000 cycles
	// (the panels of Figure 2(b)-(e)).
	Timelines map[arch.Kind][][]float64
}

// Figure2 runs WL#0 (two memory phases of rising intensity) against WL#1
// (one compute phase) on all four architectures.
func (c Config) Figure2() (*Fig2, error) {
	results, systems, err := c.runAllArchs(workload.MotivatingPair(reg), arch.Options{})
	if err != nil {
		return nil, err
	}
	out := &Fig2{Results: results, Timelines: make(map[arch.Kind][][]float64)}
	for kind, sys := range systems {
		var tls [][]float64
		for core := range sys.Cores {
			tls = append(tls, sys.Cplx.BusyTimeline(core).Points())
		}
		out.Timelines[kind] = tls
	}
	return out, nil
}

// TotalCycles sums the simulated cycles across the four runs — the numerator
// of the campaign's aggregate sim-cycles/s.
func (f *Fig2) TotalCycles() uint64 {
	var n uint64
	for _, r := range f.Results {
		n += r.Cycles
	}
	return n
}

// Render produces the Figure 2(f)-style statistics table plus ASCII
// timelines for the four architectures.
func (f *Fig2) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: motivating example (WL#0 memory on Core0, WL#1 compute on Core1)\n\n")
	t := &metrics.Table{Header: []string{
		"Arch", "Time WL0", "Time WL1", "Speedup WL0", "Speedup WL1",
		"Issue WL0", "Issue WL1", "SIMD util",
	}}
	base := f.Results[arch.Private]
	for _, kind := range arch.Kinds {
		r := f.Results[kind]
		t.Add(kind.String(),
			fmt.Sprintf("%d", r.Cores[0].Cycles),
			fmt.Sprintf("%d", r.Cores[1].Cycles),
			metrics.FormatX(float64(base.Cores[0].Cycles)/float64(r.Cores[0].Cycles)),
			metrics.FormatX(float64(base.Cores[1].Cycles)/float64(r.Cores[1].Cycles)),
			fmt.Sprintf("%.2f", r.Cores[0].IssueRate),
			fmt.Sprintf("%.2f", r.Cores[1].IssueRate),
			metrics.FormatPct(r.Utilization),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nBusy-lane timelines (one char per 1000 cycles, ' '..'%' = 0..32 lanes):\n")
	for _, kind := range arch.Kinds {
		for core, tl := range f.Timelines[kind] {
			b.WriteString(fmt.Sprintf("%-8s core%d |%s|\n", kind, core, spark(tl, 32)))
		}
	}
	return b.String()
}

// spark renders a lane timeline as an ASCII strip.
func spark(points []float64, max float64) string {
	levels := []rune(" .:-=+*#%")
	var b strings.Builder
	for _, v := range points {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
