package experiments

import (
	"fmt"
	"io"

	"occamy/internal/arch"
	"occamy/internal/area"
	"occamy/internal/htmlreport"
	"occamy/internal/metrics"
	"occamy/internal/trace"
	"occamy/internal/workload"
)

// HTMLReport runs the full evaluation and renders it as a self-contained
// HTML page with SVG charts (the visual companion to EXPERIMENTS.md).
func (c Config) HTMLReport(w io.Writer) error {
	page := htmlreport.New("Occamy — elastic SIMD sharing, reproduced")

	// Figure 2: motivating example with allocated-lane staircases.
	f2, err := c.Figure2()
	if err != nil {
		return err
	}
	if err := c.addFigure2(page, f2); err != nil {
		return err
	}

	// Figures 10/11/13/15 from the sweep.
	sw, err := c.Sweep(false)
	if err != nil {
		return err
	}
	addSweep(page, sw)

	// Figure 12: area model.
	addArea(page)

	// Figure 14 + Table 5.
	f14, err := c.Figure14()
	if err != nil {
		return err
	}
	addFigure14(page, f14)

	// Figure 16.
	f16, err := c.Figure16()
	if err != nil {
		return err
	}
	page.Section("Figure 16 — four-core scalability", htmlreport.PreTable(f16.Render()))

	// Degradation sweep + recovery TTR summary.
	deg, err := c.Degradation()
	if err != nil {
		return err
	}
	addDegradation(page, deg)

	return page.Write(w)
}

// addDegradation renders the fault-degradation study: per-architecture
// throughput retention under failed ExeBUs, and the recovery
// time-to-repartition summary for the lane-replanning architectures.
func addDegradation(page *htmlreport.Page, d *Degradation) {
	labels := make([]string, 0, d.Units)
	for f := 0; f < d.Units; f++ {
		labels = append(labels, fmt.Sprintf("%d", f))
	}
	var series []htmlreport.Series
	for _, kind := range arch.Kinds {
		vals := make([]float64, 0, d.Units)
		for f := 0; f < d.Units; f++ {
			vals = append(vals, 100*d.Points[kind][f].Retention)
		}
		series = append(series, htmlreport.Series{Name: kind.String(), Values: vals})
	}
	blocks := []string{
		htmlreport.P("Throughput retained relative to each architecture's own fault-free " +
			"run, as permanently failed ExeBUs accumulate (x axis = failed units). " +
			"Zero bars are DNF points: the victim stalled and the watchdog ended the run."),
		htmlreport.BarChart("throughput retention (%)", labels, series, 100, "%.0f"),
	}
	for _, kind := range arch.Kinds {
		if min, p50, max, n := d.TTRStats(kind); n > 0 {
			blocks = append(blocks, htmlreport.P(fmt.Sprintf(
				"%s recovery time-to-repartition: min %d, p50 %d, max %d cycles "+
					"across %d completed recoveries.", kind, min, p50, max, n)))
		}
	}
	blocks = append(blocks, htmlreport.PreTable(d.Render()))
	page.Section("Degradation — failed units and recovery TTR", blocks...)
}

// addFigure2 renders the motivating example: per-architecture busy-lane
// curves plus the elastic run's allocated-lane staircase.
func (c Config) addFigure2(page *htmlreport.Page, f *Fig2) error {
	var blocks []string
	blocks = append(blocks, htmlreport.P(
		"WL#0 (two memory-intensive phases of rising operational intensity, Core0) "+
			"co-runs with WL#1 (compute-intensive, Core1) on all four architectures. "+
			"The busy-lane curves are the Figure 2(b)-(e) panels; the staircase is the "+
			"elastic run's configured vector length per core."))
	for _, kind := range arch.Kinds {
		var series []htmlreport.Series
		for core, tl := range f.Timelines[kind] {
			series = append(series, htmlreport.Series{
				Name:   fmt.Sprintf("core%d busy lanes", core),
				Values: tl,
			})
		}
		blocks = append(blocks, htmlreport.LineChart(
			fmt.Sprintf("%s: busy lanes per 1000 cycles", kind), series, "kilocycles", 1000))
	}
	// Allocated-lane staircase from a traced elastic run.
	sys, res, err := c.runOne(arch.Occamy, workload.MotivatingPair(reg), arch.Options{})
	if err != nil {
		return err
	}
	run := trace.Capture(sys, res)
	stairs := run.AllocatedLanes()
	var names []string
	var stepSeries [][]htmlreport.Step
	for core, ss := range stairs {
		names = append(names, fmt.Sprintf("core%d allocated lanes", core))
		var hs []htmlreport.Step
		for _, s := range ss {
			hs = append(hs, htmlreport.Step{X: float64(s.Cycle), Y: float64(s.Lanes)})
		}
		stepSeries = append(stepSeries, hs)
	}
	blocks = append(blocks, htmlreport.StepChart(
		"Occamy: configured lanes over time (Figure 2(e) staircase)",
		names, stepSeries, float64(res.Cycles), 32, "cycles"))
	blocks = append(blocks, htmlreport.PreTable(f.Render()))
	page.Section("Figure 2 — motivating example", blocks...)
	return nil
}

func addSweep(page *htmlreport.Page, sw *metrics.Sweep) {
	labels := make([]string, 0, len(sw.Rows))
	for _, r := range sw.Rows {
		labels = append(labels, r.Name)
	}
	speedups := func(kind arch.Kind, core int) []float64 {
		out := make([]float64, 0, len(sw.Rows))
		for _, r := range sw.Rows {
			out = append(out, r.Speedup(kind, core))
		}
		return out
	}
	page.Section("Figure 10 — Core1 speedups over Private",
		htmlreport.BarChart("Core1 speedup over Private", labels, []htmlreport.Series{
			{Name: "FTS", Values: speedups(arch.FTS, 1)},
			{Name: "VLS", Values: speedups(arch.VLS, 1)},
			{Name: "Occamy", Values: speedups(arch.Occamy, 1)},
		}, 1.0, "%.1f"),
		htmlreport.BarChart("Core0 speedup over Private", labels, []htmlreport.Series{
			{Name: "FTS", Values: speedups(arch.FTS, 0)},
			{Name: "VLS", Values: speedups(arch.VLS, 0)},
			{Name: "Occamy", Values: speedups(arch.Occamy, 0)},
		}, 1.0, "%.1f"),
		htmlreport.PreTable(RenderFigure10(sw)),
	)

	utils := func(kind arch.Kind) []float64 {
		out := make([]float64, 0, len(sw.Rows))
		for _, r := range sw.Rows {
			out = append(out, 100*r.Utilization(kind))
		}
		return out
	}
	page.Section("Figure 11 — SIMD utilization",
		htmlreport.BarChart("SIMD utilization (%)", labels, []htmlreport.Series{
			{Name: "Private", Values: utils(arch.Private)},
			{Name: "FTS", Values: utils(arch.FTS)},
			{Name: "VLS", Values: utils(arch.VLS)},
			{Name: "Occamy", Values: utils(arch.Occamy)},
		}, 100, "%.0f"),
	)

	stalls := func(kind arch.Kind) []float64 {
		out := make([]float64, 0, len(sw.Rows))
		for _, r := range sw.Rows {
			out = append(out, 100*r.RenameStallFrac(kind))
		}
		return out
	}
	page.Section("Figure 13 — rename stalls",
		htmlreport.BarChart("cycles stalled waiting for free registers (%)", labels, []htmlreport.Series{
			{Name: "Private", Values: stalls(arch.Private)},
			{Name: "FTS", Values: stalls(arch.FTS)},
			{Name: "Occamy", Values: stalls(arch.Occamy)},
		}, 70, "%.0f"),
	)

	monitors := make([]float64, 0, len(sw.Rows))
	reconfigs := make([]float64, 0, len(sw.Rows))
	for _, r := range sw.Rows {
		m, g := r.OverheadFrac()
		monitors = append(monitors, 100*m)
		reconfigs = append(reconfigs, 100*g)
	}
	page.Section("Figure 15 — elastic-sharing overhead",
		htmlreport.BarChart("runtime overhead (% of execution)", labels, []htmlreport.Series{
			{Name: "monitoring", Values: monitors},
			{Name: "reconfiguring", Values: reconfigs},
		}, 0.5, "%.1f"),
	)
}

func addArea(page *htmlreport.Page) {
	labels := []string{"Private", "FTS", "VLS", "Occamy"}
	values := make([][]float64, len(arch.Kinds))
	for i, kind := range arch.Kinds {
		b := area.Breakdown(kind, 2, false)
		col := make([]float64, len(area.Components))
		for j, comp := range area.Components {
			col[j] = b[comp]
		}
		values[i] = col
	}
	page.Section("Figure 12 — area breakdown (2 cores, mm²)",
		htmlreport.StackedBarChart("area (mm^2)", labels, area.Components, values, "%.1f"),
		htmlreport.PreTable(area.Render(2, false)+"\n"+area.Render(4, true)),
	)
}

func addFigure14(page *htmlreport.Page, f *Fig14) {
	var series []htmlreport.Series
	for _, label := range f.PhaseOrder {
		series = append(series, htmlreport.Series{Name: label, Values: f.NormalizedTimes[label]})
	}
	var wlSeries []htmlreport.Series
	for _, kind := range []arch.Kind{arch.Private, arch.VLS, arch.Occamy} {
		wlSeries = append(wlSeries, htmlreport.Series{
			Name: kind.String(), Values: f.WL17Timelines[kind],
		})
	}
	page.Section("Figure 14 — case study WL20+WL17",
		htmlreport.LineChart("solo time vs lanes (normalized to 4 lanes; x = 4,8,...,28)", series, "lane step", 1),
		htmlreport.LineChart("WL17 busy lanes over time", wlSeries, "kilocycles", 1000),
		htmlreport.PreTable(f.Render()+"\n"+Table5()),
	)
}
