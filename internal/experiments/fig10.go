package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/metrics"
)

// RenderFigure10 produces the per-pair Core0/Core1 speedups of FTS, VLS and
// Occamy over Private, plus the geometric means (Figure 10).
func RenderFigure10(sw *metrics.Sweep) string {
	var b strings.Builder
	b.WriteString("Figure 10: speedups over Private (Core0 = memory side, Core1 = compute side)\n\n")
	t := &metrics.Table{Header: []string{
		"Pair", "FTS c0", "FTS c1", "VLS c0", "VLS c1", "Occamy c0", "Occamy c1",
	}}
	for _, row := range sw.Rows {
		t.Add(row.Name,
			metrics.FormatX(row.Speedup(arch.FTS, 0)), metrics.FormatX(row.Speedup(arch.FTS, 1)),
			metrics.FormatX(row.Speedup(arch.VLS, 0)), metrics.FormatX(row.Speedup(arch.VLS, 1)),
			metrics.FormatX(row.Speedup(arch.Occamy, 0)), metrics.FormatX(row.Speedup(arch.Occamy, 1)),
		)
	}
	t.Add("GM",
		metrics.FormatX(sw.GeomeanSpeedup(arch.FTS, 0)), metrics.FormatX(sw.GeomeanSpeedup(arch.FTS, 1)),
		metrics.FormatX(sw.GeomeanSpeedup(arch.VLS, 0)), metrics.FormatX(sw.GeomeanSpeedup(arch.VLS, 1)),
		metrics.FormatX(sw.GeomeanSpeedup(arch.Occamy, 0)), metrics.FormatX(sw.GeomeanSpeedup(arch.Occamy, 1)),
	)
	b.WriteString(t.String())
	b.WriteString("\nPaper (GM Core1): FTS 1.20x, VLS 1.11x, Occamy 1.39x; Core0 ~1.00x for all.\n")
	return b.String()
}

// RenderFigure11 produces the per-pair SIMD utilization (Figure 11).
func RenderFigure11(sw *metrics.Sweep) string {
	var b strings.Builder
	b.WriteString("Figure 11: SIMD utilization\n\n")
	t := &metrics.Table{Header: []string{"Pair", "Private", "FTS", "VLS", "Occamy"}}
	for _, row := range sw.Rows {
		t.Add(row.Name,
			metrics.FormatPct(row.Utilization(arch.Private)),
			metrics.FormatPct(row.Utilization(arch.FTS)),
			metrics.FormatPct(row.Utilization(arch.VLS)),
			metrics.FormatPct(row.Utilization(arch.Occamy)),
		)
	}
	t.Add("GM",
		metrics.FormatPct(sw.GeomeanUtilization(arch.Private)),
		metrics.FormatPct(sw.GeomeanUtilization(arch.FTS)),
		metrics.FormatPct(sw.GeomeanUtilization(arch.VLS)),
		metrics.FormatPct(sw.GeomeanUtilization(arch.Occamy)),
	)
	b.WriteString(t.String())
	b.WriteString("\nPaper (GM): Private 63.2%, FTS 72.5%, VLS 70.8%, Occamy 84.2%.\n")
	return b.String()
}

// RenderFigure13 produces the fraction of cycles blocked waiting for free
// registers (Figure 13): the FTS pathology.
func RenderFigure13(sw *metrics.Sweep) string {
	var b strings.Builder
	b.WriteString("Figure 13: cycles stalled waiting for free registers (per pair, mean of cores)\n\n")
	t := &metrics.Table{Header: []string{"Pair", "Private", "FTS", "VLS", "Occamy"}}
	for _, row := range sw.Rows {
		t.Add(row.Name,
			metrics.FormatPct(row.RenameStallFrac(arch.Private)),
			metrics.FormatPct(row.RenameStallFrac(arch.FTS)),
			metrics.FormatPct(row.RenameStallFrac(arch.VLS)),
			metrics.FormatPct(row.RenameStallFrac(arch.Occamy)),
		)
	}
	t.Add("Mean",
		metrics.FormatPct(sw.GeomeanRenameStalls(arch.Private)),
		metrics.FormatPct(sw.GeomeanRenameStalls(arch.FTS)),
		metrics.FormatPct(sw.GeomeanRenameStalls(arch.VLS)),
		metrics.FormatPct(sw.GeomeanRenameStalls(arch.Occamy)),
	)
	b.WriteString(t.String())
	b.WriteString("\nPaper: renaming stalls in over 70% of cycles on FTS, hardly any elsewhere.\n")
	return b.String()
}

// RenderFigure15 produces Occamy's runtime overhead split into partition
// monitoring and vector-length reconfiguration (Figure 15).
func RenderFigure15(sw *metrics.Sweep) string {
	var b strings.Builder
	b.WriteString("Figure 15: elastic-sharing runtime overhead (fraction of execution time)\n\n")
	t := &metrics.Table{Header: []string{"Pair", "Monitoring", "Reconfiguring", "Total"}}
	for _, row := range sw.Rows {
		m, g := row.OverheadFrac()
		t.Add(row.Name, pct3(m), pct3(g), pct3(m+g))
	}
	m, g := sw.MeanOverhead()
	t.Add("Mean", pct3(m), pct3(g), pct3(m+g))
	b.WriteString(t.String())
	b.WriteString("\nPaper (mean): monitoring 0.3% + reconfiguring 0.2% = 0.5%.\n")
	return b.String()
}

func pct3(f float64) string { return fmt.Sprintf("%.3f%%", 100*f) }
