package experiments

import (
	"strings"
	"testing"

	"occamy/internal/arch"
)

// TestTrafficSweepQuick drives the full overload sweep shape — every load,
// every architecture, clean and faulted — on a reduced spec, and checks the
// acceptance properties: every point produced a conservation-clean report
// and the elastic architecture starved no tenant at any load.
func TestTrafficSweepQuick(t *testing.T) {
	cfg := Quick()
	sweep, err := cfg.Traffic("poisson:tenants=3,cores=2,horizon=8000,slice=400,elems=384,repeats=1,churn=900:1300", true)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(TrafficLoads) * 2
	for _, kind := range arch.Kinds {
		pts := sweep.Points[kind]
		if len(pts) != wantPoints {
			t.Fatalf("%s: %d points, want %d", kind, len(pts), wantPoints)
		}
		for _, p := range pts {
			if p.Report == nil {
				t.Fatalf("%s load=%gx faulted=%v: missing report", kind, p.Load, p.Faulted)
			}
			if p.Report.Total.Arrivals == 0 {
				t.Fatalf("%s load=%gx faulted=%v: no arrivals", kind, p.Load, p.Faulted)
			}
			if p.Report.Total.Completed == 0 {
				t.Fatalf("%s load=%gx faulted=%v: nothing completed", kind, p.Load, p.Faulted)
			}
		}
	}
	if st := sweep.Starvations(arch.Occamy); len(st) > 0 {
		t.Fatalf("Occamy fairness floor violated: %v", st)
	}
	out := sweep.Render()
	for _, want := range []string{"p99 sojourn", "SLO attainment", "Per-tenant detail, Occamy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
