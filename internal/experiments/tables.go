package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/coproc"
	"occamy/internal/cpu"
	"occamy/internal/mem"
	"occamy/internal/metrics"
	"occamy/internal/roofline"
)

// RenderTable3 prints the workload registry in Table 3's shape: every kernel
// with its instruction mix and Eq. 5 operational intensities (published
// value alongside), then the 34 workload compositions.
func RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: workload kernels (synthesized equivalents; oi_mem matches the published values)\n\n")
	t := &metrics.Table{Header: []string{
		"Kernel", "Loads", "Stores", "Compute", "oi_issue", "oi_mem", "published",
	}}
	for _, name := range reg.KernelNames() {
		k := reg.Kernel(name)
		oi := k.OI()
		pub := "-"
		if k.PublishedOI > 0 {
			pub = fmt.Sprintf("%.3g", k.PublishedOI)
		}
		t.Add(name,
			fmt.Sprintf("%d", k.NumLoads()),
			fmt.Sprintf("%d", k.NumStores()),
			fmt.Sprintf("%d", k.NumCompute()),
			fmt.Sprintf("%.3f", oi.Issue),
			fmt.Sprintf("%.3f", oi.Mem),
			pub,
		)
	}
	b.WriteString(t.String())

	b.WriteString("\nWorkloads (phases):\n")
	wt := &metrics.Table{Header: []string{"Workload", "Class", "Phases"}}
	for _, name := range reg.WorkloadNames() {
		w := reg.Workload(name)
		var phases []string
		for _, k := range w.Phases {
			phases = append(phases, fmt.Sprintf("%s(%.2f)", k.Name, k.OI().Mem))
		}
		wt.Add(name, w.Class.String(), strings.Join(phases, " + "))
	}
	b.WriteString(wt.String())
	return b.String()
}

// RenderTable4 prints the micro-architectural configuration actually used by
// the simulator, in Table 4's shape.
func RenderTable4() string {
	h := mem.DefaultHierarchyConfig(2)
	cc := coproc.DefaultConfig(2)
	sc := cpu.DefaultConfig()
	m := roofline.Default()
	var b strings.Builder
	b.WriteString("Table 4: micro-architectural parameters (2-core configuration)\n\n")
	row := func(k, v string) { fmt.Fprintf(&b, "  %-34s %s\n", k, v) }
	row("Scalar cores", fmt.Sprintf("%d-issue in-order-front pipeline (OoO-equivalent forwarding)", sc.Width))
	row("SIMD lanes", fmt.Sprintf("%d total (%d ExeBUs x 4 fp32 lanes)", cc.Lanes(), cc.ExeBUs))
	row("Vector issue width (per core)", fmt.Sprintf("%d compute + %d ld/st", cc.ComputeIssue, cc.MemIssue))
	row("Physical vector registers", fmt.Sprintf("%d per rename namespace (8R4W 128-bit, per RegBlk)", cc.PhysRegs))
	row("Architectural vector registers", fmt.Sprintf("%d per core", cc.ArchRegs))
	row("LHQ / STQ per core", fmt.Sprintf("%d / %d", cc.LHQ, cc.STQ))
	row("FP latency (simple / div-sqrt)", fmt.Sprintf("%d / %d cycles", cc.ComputeLat, cc.DivLat))
	row("EM-SIMD path", fmt.Sprintf("2 insts/cycle, %d-cycle latency, plan in %d cycles", cc.EMSIMDLat, cc.PlanLat))
	row("L1 D-cache (per scalar core)", fmt.Sprintf("%d KB, %d-way, %d-cycle, 64B lines",
		h.L1D.SizeBytes>>10, h.L1D.Ways, h.L1D.LatencyCycles))
	row("Vector cache (shared)", fmt.Sprintf("%d KB, %d-way, %d-cycle, %d B/cycle ports, %d MSHRs, prefetch degree %d",
		h.VecCache.SizeBytes>>10, h.VecCache.Ways, h.VecCache.LatencyCycles,
		int(h.VecCache.BytesPerCycle), h.VecCache.MissSlots, h.VecCache.PrefetchDegree))
	row("L2 (shared unified)", fmt.Sprintf("%d MB, %d-way, %d-cycle, %d B/cycle",
		h.L2.SizeBytes>>20, h.L2.Ways, h.L2.LatencyCycles, int(h.L2.BytesPerCycle)))
	row("DRAM", fmt.Sprintf("%d B/cycle (64 GB/s at 2 GHz), %d-cycle streaming latency",
		int(h.DRAM.BytesPerCycle), h.DRAM.LatencyCycles))
	row("Roofline ceilings", fmt.Sprintf("FP %g GFLOP/s per granule; issue %g uops/cycle; L2 %g / DRAM %g GB/s",
		m.FlopsPerGranulePerCycle, m.IssueUopsPerCycle, m.L2BWGBs, m.DRAMBWGBs))
	return b.String()
}
