package experiments

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strings"
	"sync"

	"occamy/internal/arch"
	"occamy/internal/fault"
	"occamy/internal/metrics"
	"occamy/internal/sim"
	"occamy/internal/telemetry"
	"occamy/internal/traffic"
)

// TrafficLoads is the overload sweep's offered-load multipliers: from half
// the co-processor's estimated service capacity to 4x over it.
var TrafficLoads = []float64{0.5, 1, 2, 4}

// DefaultTrafficSpec is the sweep's base arrival process (the load= field is
// swept): a 4-tenant Poisson mix over the Table 3 kernels on 4 cores, with
// tenant churn so exits and re-admissions happen under every load.
const DefaultTrafficSpec = "poisson:tenants=4,cores=4,horizon=24000,slice=500,elems=384,repeats=1,churn=1800:2600"

// trafficFaults is the -faults variant's injection schedule: a transient
// loss of 2 ExeBUs through the middle half of the horizon, landing while the
// queues are loaded so admission, revocation and re-admission all interact
// with the shrunken pool.
func trafficFaults(horizon uint64) []fault.Fault {
	return []fault.Fault{{
		Kind: fault.ExeBU, Count: 2, Cluster: fault.AnyCluster,
		At: horizon / 4, For: horizon / 2,
	}}
}

// TrafficPoint is one (architecture, load, fault-variant) traffic run.
type TrafficPoint struct {
	Load    float64
	Faulted bool
	Report  *traffic.Report
}

// TrafficSweep holds the overload sweep: for every architecture, one point
// per load (and per fault variant when faults were requested), in
// TrafficLoads order with the clean point before the faulted one.
type TrafficSweep struct {
	Spec      traffic.Spec // base spec (Load is per-point)
	WithFault bool
	Points    map[arch.Kind][]TrafficPoint
}

// Traffic runs the open-loop overload sweep: TrafficLoads × all four
// architectures, each point an independent seeded traffic run whose
// per-tenant SLO report is conservation-checked before it lands in the
// sweep. specStr overrides the base spec ("" uses DefaultTrafficSpec);
// withFaults doubles the sweep with the transient-fault variant.
func (c Config) Traffic(specStr string, withFaults bool) (*TrafficSweep, error) {
	if specStr == "" {
		specStr = DefaultTrafficSpec
	}
	base, err := traffic.ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	base.ApplyDefaults()

	variants := []bool{false}
	if withFaults {
		variants = append(variants, true)
	}
	out := &TrafficSweep{Spec: base, WithFault: withFaults, Points: make(map[arch.Kind][]TrafficPoint, len(arch.Kinds))}
	type job struct {
		kind    arch.Kind
		slot    int
		load    float64
		faulted bool
	}
	var jobs []job
	for _, kind := range arch.Kinds {
		out.Points[kind] = make([]TrafficPoint, 0, len(TrafficLoads)*len(variants))
		for _, load := range TrafficLoads {
			for _, f := range variants {
				out.Points[kind] = append(out.Points[kind], TrafficPoint{Load: load, Faulted: f})
				jobs = append(jobs, job{kind, len(out.Points[kind]) - 1, load, f})
			}
		}
	}

	if c.batched() {
		tasks := make([]sim.Task, len(jobs))
		for i, j := range jobs {
			i, j := i, j
			wrap := func(err error) error {
				return fmt.Errorf("traffic %s load=%gx faulted=%v: %w", j.kind, j.load, j.faulted, err)
			}
			var sc *traffic.Scenario
			tasks[i] = &simJob{
				label: fmt.Sprintf("traffic:%s/%gx/faulted=%v", j.kind, j.load, j.faulted),
				build: func() (*sim.Engine, func() bool, uint64, error) {
					var err error
					sc, err = c.trafficBuild(j.kind, base, j.load, j.faulted)
					if err != nil {
						return nil, nil, 0, wrap(err)
					}
					return sc.Sys.Engine, sc.DonePredicate(), sc.DefaultBudget(), nil
				},
				finish: func(prev error) error {
					rep, err := trafficVerify(sc, prev)
					if err != nil {
						return wrap(err)
					}
					out.Points[j.kind][j.slot].Report = rep
					return nil
				},
			}
		}
		if err := c.runBatches("traffic", tasks); err != nil {
			return nil, err
		}
		return out, nil
	}

	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.maxParallel())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			labels := pprof.Labels("sweep", "traffic", "point", fmt.Sprintf("%s/%gx/faulted=%v", j.kind, j.load, j.faulted))
			pprof.Do(context.Background(), labels, func(context.Context) {
				rep, err := c.trafficPoint(j.kind, base, j.load, j.faulted)
				if err != nil {
					errs[i] = fmt.Errorf("traffic %s load=%gx faulted=%v: %w", j.kind, j.load, j.faulted, err)
					return
				}
				out.Points[j.kind][j.slot].Report = rep
			})
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// trafficBuild constructs one sweep point's scenario: seeded spec at the
// swept load, fault variant wired, interrupt and telemetry attached. Both
// execution shapes share it.
func (c Config) trafficBuild(kind arch.Kind, base traffic.Spec, load float64, faulted bool) (*traffic.Scenario, error) {
	spec := base
	spec.Load = load
	opts := arch.Options{Seed: c.Seed, LegacyTick: c.LegacyTick}
	if c.Telemetry != nil {
		opts.Telemetry = &telemetry.Config{Window: c.TelemetryWindow}
	}
	if faulted {
		opts.Faults = trafficFaults(spec.Horizon)
	}
	sc, err := traffic.Build(kind, spec, opts)
	if err != nil {
		return nil, err
	}
	sc.Sys.SetInterrupt(c.Interrupt)
	label := fmt.Sprintf("traffic-%s-%gx", kind, load)
	if faulted {
		label += "-faulted"
	}
	c.Telemetry.Attach(label, sc.Sys.Tele)
	return sc, nil
}

// trafficVerify flushes telemetry and conservation-checks one finished run,
// folding it into a verified per-tenant report. runErr is the run's terminal
// engine error (nil when the stop condition was met).
func trafficVerify(sc *traffic.Scenario, runErr error) (*traffic.Report, error) {
	sc.Sys.Tele.Flush(sc.Sys.Engine.Cycle())
	if runErr != nil {
		return nil, runErr
	}
	rep, err := sc.ReportVerified(2e-3)
	if err != nil {
		return nil, err
	}
	if err := rep.Conservation(); err != nil {
		return nil, err
	}
	if err := sc.ConservationDeep(); err != nil {
		return nil, err
	}
	return rep, nil
}

// trafficPoint runs one sweep point and conservation-checks its report.
func (c Config) trafficPoint(kind arch.Kind, base traffic.Spec, load float64, faulted bool) (*traffic.Report, error) {
	sc, err := c.trafficBuild(kind, base, load, faulted)
	if err != nil {
		return nil, err
	}
	runErr := sc.Run(sc.DefaultBudget())
	return trafficVerify(sc, runErr)
}

// TotalCycles sums the simulated cycles across every sweep point.
func (s *TrafficSweep) TotalCycles() uint64 {
	var n uint64
	for _, pts := range s.Points {
		for _, p := range pts {
			if p.Report != nil {
				n += p.Report.Cycles
			}
		}
	}
	return n
}

// Starvations lists the sweep points where a tenant with a fair chance
// completed nothing — the fairness-floor claim is that this list is empty
// for the elastic architecture at every load.
func (s *TrafficSweep) Starvations(kind arch.Kind) []string {
	var out []string
	for _, p := range s.Points[kind] {
		if p.Report == nil {
			continue
		}
		if starved := p.Report.Starved(); len(starved) > 0 {
			tag := fmt.Sprintf("load=%gx", p.Load)
			if p.Faulted {
				tag += "+faults"
			}
			out = append(out, fmt.Sprintf("%s tenants %v", tag, starved))
		}
	}
	return out
}

// Render produces the overload tables: aggregate p99 sojourn, p99 admission
// wait and SLO@8x attainment per architecture per load, then the per-tenant
// table for the highest clean overload point of the elastic architecture.
func (s *TrafficSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Traffic: open-loop overload sweep (%s process, %d tenants, %d cores,\nhorizon %d cycles%s; latencies in cycles over all arrivals, misses counted)\n\n",
		s.Spec.Process, s.Spec.Tenants, s.Spec.Cores, s.Spec.Horizon,
		map[bool]string{true: ", + transient 2-ExeBU fault variant", false: ""}[s.WithFault])

	variant := func(p TrafficPoint) string {
		if p.Faulted {
			return fmt.Sprintf("%gx+F", p.Load)
		}
		return fmt.Sprintf("%gx", p.Load)
	}
	table := func(title string, cell func(*traffic.Report) string) {
		fmt.Fprintf(&b, "%s:\n", title)
		t := &metrics.Table{Header: []string{"Load"}}
		for _, kind := range arch.Kinds {
			t.Header = append(t.Header, kind.String())
		}
		ref := s.Points[arch.Kinds[0]]
		for i := range ref {
			row := []string{variant(ref[i])}
			for _, kind := range arch.Kinds {
				p := s.Points[kind][i]
				if p.Report == nil {
					row = append(row, "-")
					continue
				}
				row = append(row, cell(p.Report))
			}
			t.Add(row...)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}

	table("p99 sojourn (arrival→completion)", func(r *traffic.Report) string {
		return fmt.Sprintf("%d", r.Total.SojournP99)
	})
	table("p99 admission wait (arrival→first dispatch)", func(r *traffic.Report) string {
		return fmt.Sprintf("%d", r.Total.AdmitP99)
	})
	table("SLO attainment @8x service estimate", func(r *traffic.Report) string {
		if len(r.Total.Attainment) > 3 {
			return metrics.FormatPct(r.Total.Attainment[3])
		}
		return "-"
	})
	table("completed / arrived", func(r *traffic.Report) string {
		return fmt.Sprintf("%d/%d", r.Total.Completed, r.Total.Arrivals)
	})

	for _, kind := range arch.Kinds {
		if st := s.Starvations(kind); len(st) > 0 {
			fmt.Fprintf(&b, "%s starved: %s\n", kind, strings.Join(st, "; "))
		}
	}
	if st := s.Starvations(arch.Occamy); len(st) == 0 {
		b.WriteString("Occamy fairness floor held: every active tenant completed work at every load.\n")
	}

	// The highest clean overload point, per tenant, on the elastic machine.
	pts := s.Points[arch.Occamy]
	for i := len(pts) - 1; i >= 0; i-- {
		if !pts[i].Faulted && pts[i].Report != nil {
			fmt.Fprintf(&b, "\nPer-tenant detail, Occamy at %gx:\n%s", pts[i].Load, pts[i].Report.Summary())
			break
		}
	}
	return b.String()
}
