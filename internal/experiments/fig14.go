package experiments

import (
	"fmt"
	"strings"

	"occamy/internal/arch"
	"occamy/internal/isa"
	"occamy/internal/metrics"
	"occamy/internal/roofline"
	"occamy/internal/workload"
)

// Fig14 holds the §7.4 Case 1 study of WL20+WL17.
type Fig14 struct {
	// NormalizedTimes[phaseName][g-1] is the phase's solo execution time
	// at g granules, normalized to 1 granule (Figure 14(a)).
	NormalizedTimes map[string][]float64
	PhaseOrder      []string
	// Results on all four architectures (Figure 14(c)).
	Results map[arch.Kind]*arch.Result
	// WL17Timelines[kind] is Core1's busy-lane curve (Figure 14(b)).
	WL17Timelines map[arch.Kind][]float64
}

// idleWorkload is a minimal co-runner used for solo phase measurements.
func idleWorkload() *workload.Workload {
	return &workload.Workload{
		Name: "idle",
		Phases: []*workload.Kernel{{
			Name:  "idle",
			Slots: []workload.LoadSlot{{Stream: 0}},
			Stmts: []workload.Stmt{{Out: 1, E: workload.Mul(workload.Slot(0), workload.Const(2))}},
			Elems: 64, Repeats: 1,
		}},
	}
}

// soloCycles runs one kernel alone at a fixed granule count and returns its
// completion time.
func (c Config) soloCycles(k *workload.Kernel, granules int) (uint64, error) {
	w := &workload.Workload{Name: "solo/" + k.Name, Phases: []*workload.Kernel{k}}
	sched := workload.CoSchedule{Name: w.Name, W: []*workload.Workload{w, idleWorkload()}}
	rest := 8 - granules
	if rest < 1 {
		rest = 1
	}
	_, res, err := c.runOne(arch.VLS, sched, arch.Options{StaticVLs: []int{granules, rest}})
	if err != nil {
		return 0, err
	}
	return res.Cores[0].Cycles, nil
}

// Figure14 reproduces the case study: the per-phase lane sweep, the four-
// architecture co-run, and WL17's lane timeline.
func (c Config) Figure14() (*Fig14, error) {
	out := &Fig14{
		NormalizedTimes: make(map[string][]float64),
		Results:         make(map[arch.Kind]*arch.Result),
		WL17Timelines:   make(map[arch.Kind][]float64),
	}

	// (a) Solo lane sweep for WL20.p1 (sff2), WL20.p2 (sff5), WL17 (wsm52).
	phases := []struct {
		label  string
		kernel string
	}{
		{"WL20.p1(sff2)", "sff2"},
		{"WL20.p2(sff5)", "sff5"},
		{"WL17(wsm52)", "wsm52"},
	}
	for _, ph := range phases {
		k := reg.Kernel(ph.kernel)
		var times []float64
		for g := 1; g <= 7; g++ {
			cyc, err := c.soloCycles(k, g)
			if err != nil {
				return nil, err
			}
			times = append(times, float64(cyc))
		}
		base := times[0]
		for i := range times {
			times[i] /= base
		}
		out.NormalizedTimes[ph.label] = times
		out.PhaseOrder = append(out.PhaseOrder, ph.label)
	}

	// (b)+(c) Co-run on all four architectures.
	results, systems, err := c.runAllArchs(workload.CaseStudyPair(reg, 1), arch.Options{})
	if err != nil {
		return nil, err
	}
	out.Results = results
	for kind, sys := range systems {
		out.WL17Timelines[kind] = sys.Cplx.BusyTimeline(1).Points()
	}
	return out, nil
}

// Render produces the three panels as text.
func (f *Fig14) Render() string {
	var b strings.Builder
	b.WriteString("Figure 14: case study WL20 + WL17 (<memory, compute>)\n\n")
	b.WriteString("(a) Solo execution time vs lanes, normalized to 4 lanes:\n")
	t := &metrics.Table{Header: []string{"Phase", "4", "8", "12", "16", "20", "24", "28"}}
	for _, label := range f.PhaseOrder {
		row := []string{label}
		for _, v := range f.NormalizedTimes[label] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Add(row...)
	}
	b.WriteString(t.String())
	b.WriteString("\n(b) WL17 busy lanes over time:\n")
	for _, kind := range []arch.Kind{arch.Private, arch.VLS, arch.Occamy} {
		b.WriteString(fmt.Sprintf("%-8s |%s|\n", kind, spark(f.WL17Timelines[kind], 32)))
	}
	b.WriteString("\n(c) Per-phase SIMD issue rates:\n")
	t2 := &metrics.Table{Header: []string{"Arch", "20.p1", "20.p2", "17", "stall frac c0", "stall frac c1"}}
	for _, kind := range arch.Kinds {
		r := f.Results[kind]
		row := []string{kind.String()}
		for _, rate := range r.Cores[0].PhaseIssueRates {
			row = append(row, fmt.Sprintf("%.2f", rate))
		}
		for _, rate := range r.Cores[1].PhaseIssueRates {
			row = append(row, fmt.Sprintf("%.2f", rate))
		}
		row = append(row,
			metrics.FormatPct(r.Cores[0].RenameStallFrac),
			metrics.FormatPct(r.Cores[1].RenameStallFrac))
		t2.Add(row...)
	}
	b.WriteString(t2.String())
	return b.String()
}

// Table5 reproduces the attainable-performance table for WL8.p1
// (oi_issue 0.17, oi_mem 0.25) directly from the roofline model.
func Table5() string {
	m := roofline.Default()
	oi := isa.OIPair{Issue: 1.0 / 6.0, Mem: 0.25}
	var b strings.Builder
	b.WriteString("Table 5: attainable performance (GFLOP/s) for WL8.p1 (oi_issue=0.17, oi_mem=0.25)\n\n")
	t := &metrics.Table{Header: []string{"VL(lanes)", "IssueBound", "MemBound", "CompBound", "Attainable"}}
	for g := 1; g <= 8; g++ {
		t.Add(fmt.Sprintf("%d", 4*g),
			fmt.Sprintf("%.1f", m.IssueBW(g)*oi.Issue),
			fmt.Sprintf("%.1f", m.MemBW()*oi.Mem),
			fmt.Sprintf("%.1f", m.FPPeak(g)),
			fmt.Sprintf("%.1f", m.Attainable(g, oi)),
		)
	}
	b.WriteString(t.String())
	b.WriteString("\nPaper: 5.3/10.7/16/16/16... — the issue-bandwidth ceiling binds below 12 lanes,\n")
	b.WriteString("so the lane manager assigns WL8.p1 12 lanes rather than the memory-only 8 (Case 4).\n")
	return b.String()
}
