// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulator: the motivating example (Figure 2), the
// 25-pair speedup/utilization sweep (Figures 10/11), the area model
// (Figure 12), the rename-stall study (Figure 13), the WL20+WL17 case study
// (Figure 14), the attainable-performance table (Table 5), the overhead
// accounting (Figure 15) and the four-core scalability groups (Figure 16) —
// plus the ablations DESIGN.md calls out.
//
// Both cmd/occamy-bench and the root-level testing.B benchmarks drive this
// package; EXPERIMENTS.md is generated from its renderers.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"

	"occamy/internal/arch"
	"occamy/internal/metrics"
	"occamy/internal/telemetry"
	"occamy/internal/workload"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies workload trip counts; 1.0 is the calibrated full
	// size, smaller values give quick approximate runs.
	Scale float64
	// Seed initializes workload data.
	Seed uint64
	// MaxCycles bounds each simulation.
	MaxCycles uint64
	// Parallel bounds concurrent simulations in sweeps (occamy-bench -j);
	// zero means one per host CPU.
	Parallel int
	// LegacyTick forces the every-cycle engine path, disabling skip-ahead
	// fast-forwarding (A/B validation; results are bit-identical).
	LegacyTick bool
	// NoSnapshot disables checkpoint/restore warm-up sharing in sweeps
	// whose points share a simulation prefix (the degradation study): every
	// point then runs independently from cycle zero. Results are
	// bit-identical either way; the switch exists for A/B validation and
	// for measuring the snapshot path's wall-clock win (occamy-bench
	// -nosnapshot).
	NoSnapshot bool
	// Telemetry, when non-nil, attaches every experiment run's live sampler
	// to the given HTTP server (occamy-bench -telemetry): long campaigns
	// become observable mid-flight via GET /metrics, /events and /stream.
	// The server retains the newest runs up to its cap.
	Telemetry *telemetry.Server
	// TelemetryWindow is the sampling window in cycles (0 = default 4096);
	// only meaningful with Telemetry set.
	TelemetryWindow uint64
	// Interrupt, when non-nil, cancels every experiment run cooperatively
	// when the channel closes (occamy-bench wires SIGINT here): in-flight
	// simulations stop at the engine's next poll point with a
	// sim.CanceledError. A channel that never closes leaves all results
	// bit-identical.
	Interrupt <-chan struct{}
	// Batch groups up to this many sweep points per worker into one
	// lockstep sim.Batch (occamy-bench -batch): each worker steps its
	// batch's systems round-robin through a fused slice loop instead of
	// running them one at a time. 0 or 1 selects the sequential shape.
	// Results are bit-identical either way (TestBatchBitIdentical).
	Batch int
}

// Default returns the full-size configuration.
func Default() Config {
	return Config{Scale: 1.0, Seed: 1, MaxCycles: 400_000_000}
}

// Quick returns a reduced configuration for smoke tests (~10x faster).
func Quick() Config {
	return Config{Scale: 0.25, Seed: 1, MaxCycles: 100_000_000}
}

func (c Config) sched(s workload.CoSchedule) workload.CoSchedule {
	if c.Scale > 0 && c.Scale != 1.0 {
		return s.Scaled(c.Scale)
	}
	return s
}

// buildOne constructs one (architecture, schedule) system the way every
// sweep point does: scaled schedule, shared seed/tick options, interrupt and
// telemetry wiring. runOne and the sim.Batch tasks share it.
func (c Config) buildOne(kind arch.Kind, s workload.CoSchedule, opts arch.Options) (*arch.System, error) {
	opts.Seed = c.Seed
	opts.LegacyTick = c.LegacyTick
	if c.Telemetry != nil && opts.Telemetry == nil {
		opts.Telemetry = &telemetry.Config{Window: c.TelemetryWindow}
	}
	sys, err := arch.Build(kind, c.sched(s), opts)
	if err != nil {
		return nil, err
	}
	sys.SetInterrupt(c.Interrupt)
	c.Telemetry.Attach(s.Name+"-"+kind.String(), sys.Tele)
	return sys, nil
}

// runOne builds and runs one (architecture, schedule) combination.
func (c Config) runOne(kind arch.Kind, s workload.CoSchedule, opts arch.Options) (*arch.System, *arch.Result, error) {
	sys, err := c.buildOne(kind, s, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := sys.Run(c.MaxCycles)
	sys.Tele.Flush(sys.Engine.Cycle())
	if err != nil {
		return nil, nil, err
	}
	return sys, res, nil
}

// runAllArchs runs a schedule on all four architectures — back-to-back, or
// through one lockstep batch when Config.Batch asks for it.
func (c Config) runAllArchs(s workload.CoSchedule, opts arch.Options) (map[arch.Kind]*arch.Result, map[arch.Kind]*arch.System, error) {
	if c.batched() {
		return c.runAllArchsBatched(s, opts)
	}
	results := make(map[arch.Kind]*arch.Result, 4)
	systems := make(map[arch.Kind]*arch.System, 4)
	for _, kind := range arch.Kinds {
		sys, res, err := c.runOne(kind, s, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("%s on %s: %w", s.Name, kind, err)
		}
		results[kind] = res
		systems[kind] = sys
	}
	return results, systems, nil
}

// Registry returns the shared Table 3 registry.
func Registry() *workload.Registry { return reg }

var reg = workload.NewRegistry()

// Sweep runs every Figure 10 pair on every architecture. Pairs execute in
// parallel across the host's CPUs — every simulated system is fully
// independent and deterministic, so the results are identical to a serial
// sweep.
func (c Config) Sweep(verify bool) (*metrics.Sweep, error) {
	pairs := workload.Figure10Pairs(reg)
	rows := make([]metrics.PairRow, len(pairs))
	errs := make([]error, len(pairs))

	var wg sync.WaitGroup
	var totals metrics.Accumulator
	sem := make(chan struct{}, c.maxParallel())
	for i, p := range pairs {
		wg.Add(1)
		go func(i int, p workload.CoSchedule) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pprof.Do(context.Background(), pprof.Labels("sweep", "pairs", "point", p.Name), func(context.Context) {
				results, systems, err := c.runAllArchs(p, arch.Options{})
				if err != nil {
					errs[i] = err
					return
				}
				if verify {
					for kind, sys := range systems {
						if err := sys.CheckResults(2e-3); err != nil {
							errs[i] = fmt.Errorf("%s on %s: %w", p.Name, kind, err)
							return
						}
					}
				}
				// Each worker merges a private registry: counter totals are
				// order-independent, so -j N matches a serial sweep exactly.
				vol := metrics.NewRegistry()
				for _, res := range results {
					vol.Count("sims", 1)
					vol.Count("sim.cycles", res.Cycles)
					vol.Count("sim.elems", res.Elems)
				}
				totals.Merge(vol)
				rows[i] = metrics.PairRow{Name: p.Name, Results: results}
			})
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &metrics.Sweep{Rows: rows, Totals: totals.Snapshot()}, nil
}

// maxParallel bounds concurrent simulations (each uses one goroutine and a
// few hundred MB-cycles of work): Config.Parallel when set, else one per
// host CPU.
func (c Config) maxParallel() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}
