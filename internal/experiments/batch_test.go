package experiments

import (
	"fmt"
	"testing"

	"occamy/internal/arch"
	"occamy/internal/telemetry"
	"occamy/internal/workload"
)

// TestBatchBitIdentical is the batching differential test the lockstep
// engine's determinism claim rests on: every sweep, run through sim.Batch,
// must agree with its sequential shape on every point of every architecture —
// cycles, element counts, per-core attribution, DNF verdicts and recovery
// times. The degradation sweep is the hard case: faulted points, checkpoint
// forks from the mid-run snapshot, and skip-ahead all active while the batch
// slices every segment.
func TestBatchBitIdentical(t *testing.T) {
	t.Run("degradation", func(t *testing.T) {
		seq := degSweep(t) // the shared sweep uses the sequential shape
		cfg := Quick()
		cfg.Batch = 4
		bat, err := cfg.Degradation()
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range arch.Kinds {
			a := fmt.Sprintf("%+v", seq.Points[kind])
			b := fmt.Sprintf("%+v", bat.Points[kind])
			if a != b {
				t.Errorf("%s: batched sweep diverges from sequential\nsequential: %s\nbatched:    %s", kind, a, b)
			}
		}
	})

	t.Run("figure2-telemetry", func(t *testing.T) {
		// The motivating pair on all four architectures, telemetry sampling
		// active: results and per-run telemetry views must match. The view's
		// host-throughput gauge is the one legitimately wall-clock-dependent
		// field; everything else is simulated state.
		run := func(batch int) (map[arch.Kind]string, map[arch.Kind]string) {
			cfg := Quick()
			cfg.Batch = batch
			cfg.Telemetry = telemetry.NewServer()
			pair := workload.MotivatingPair(reg)
			results, systems, err := cfg.runAllArchs(pair, arch.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res := make(map[arch.Kind]string, len(results))
			tele := make(map[arch.Kind]string, len(systems))
			for kind, r := range results {
				// Flatten the per-core attribution behind its pointer so the
				// comparison covers its contents, not its address.
				cp := *r
				cp.Cores = append([]arch.CoreResult(nil), r.Cores...)
				attrs := make([]string, len(cp.Cores))
				for i := range cp.Cores {
					if a := cp.Cores[i].Attribution; a != nil {
						attrs[i] = fmt.Sprintf("%+v", *a)
					}
					cp.Cores[i].Attribution = nil
				}
				res[kind] = fmt.Sprintf("%+v attribution=%v", cp, attrs)
			}
			for kind, sys := range systems {
				v := sys.Tele.View()
				v.CyclesPerSec = 0
				tele[kind] = fmt.Sprintf("%+v", v)
			}
			return res, tele
		}
		seqRes, seqTele := run(0)
		batRes, batTele := run(4)
		for _, kind := range arch.Kinds {
			if seqRes[kind] != batRes[kind] {
				t.Errorf("%s: batched result diverges\nsequential: %s\nbatched:    %s", kind, seqRes[kind], batRes[kind])
			}
			if seqTele[kind] != batTele[kind] {
				t.Errorf("%s: batched telemetry view diverges\nsequential: %s\nbatched:    %s", kind, seqTele[kind], batTele[kind])
			}
		}
	})

	t.Run("scale", func(t *testing.T) {
		seq, err := Quick().Scalability([]int{4, 8}, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Quick()
		cfg.Batch = 8
		bat, err := cfg.Scalability([]int{4, 8}, []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := fmt.Sprintf("%+v", seq.Points), fmt.Sprintf("%+v", bat.Points); a != b {
			t.Errorf("batched scalability sweep diverges\nsequential: %s\nbatched:    %s", a, b)
		}
	})

	t.Run("traffic", func(t *testing.T) {
		const spec = "poisson:tenants=2,cores=2,horizon=6000,slice=400,elems=256,repeats=1,churn=900:1300"
		seq, err := Quick().Traffic(spec, true)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Quick()
		cfg.Batch = 8
		bat, err := cfg.Traffic(spec, true)
		if err != nil {
			t.Fatal(err)
		}
		render := func(pts []TrafficPoint) []string {
			out := make([]string, len(pts))
			for i, p := range pts {
				out[i] = fmt.Sprintf("load=%g faulted=%v %+v", p.Load, p.Faulted, *p.Report)
			}
			return out
		}
		for _, kind := range arch.Kinds {
			a, b := render(seq.Points[kind]), render(bat.Points[kind])
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%s point %d: batched traffic sweep diverges\nsequential: %s\nbatched:    %s", kind, i, a[i], b[i])
				}
			}
		}
	})
}
