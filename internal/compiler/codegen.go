package compiler

import (
	"fmt"
	"sort"

	"occamy/internal/isa"
	"occamy/internal/workload"
)

// Scalar-register conventions used by generated code. X31 is XZR.
const (
	regIdx     = isa.Reg(0)  // X0: element index
	regOIVal   = isa.Reg(1)  // X1: packed <OI> value / zero for epilogue
	regReqVL   = isa.Reg(2)  // X2: requested vector length (granules)
	regStatus  = isa.Reg(3)  // X3: <status> readback
	regDec     = isa.Reg(4)  // X4: <decision> readback
	regElems   = isa.Reg(5)  // X5: elements per full strip (RDELEMS)
	regBound   = isa.Reg(6)  // X6: scratch / strip bound
	regTail    = isa.Reg(7)  // X7: tail active-element count
	regAddr0   = isa.Reg(8)  // X8..X23: stream address registers
	regRepeat  = isa.Reg(24) // X24: repeat counter
	regTrip    = isa.Reg(25) // X25: total trip count
	regThresh  = isa.Reg(26) // X26: multi-version threshold
	regMonCnt  = isa.Reg(27) // X27: monitor period counter
	regRedSave = isa.Reg(28) // X28: reduction partial across VL changes
)

// Vector-register conventions.
const (
	zSlot0       = isa.Reg(0)  // Z0..Z15: one per load slot
	zTemp0       = isa.Reg(16) // Z16..Z23: expression temporaries
	zConst0      = isa.Reg(24) // Z24..Z30: hoisted loop-invariant constants
	zAcc         = isa.Reg(31) // Z31: reduction accumulator
	maxSlotRegs  = 16
	maxTempRegs  = 8
	maxConstRegs = 7
)

// Scalar-float conventions for the non-vectorized version.
const (
	fTemp0 = isa.Reg(0) // F0..F7: temporaries
	fSlot0 = isa.Reg(8) // F8..F23: loaded slot values
	fAcc   = isa.Reg(31)
)

// codegen drives program emission for one workload.
type codegen struct {
	b   *isa.Builder
	c   *Compiled
	err error
}

func newCodegen(name string, c *Compiled) *codegen {
	return &codegen{b: isa.NewBuilder(name + "." + c.Opts.Mode.String()), c: c}
}

func (g *codegen) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

func (g *codegen) run() (*isa.Program, error) {
	for i := range g.c.Phases {
		g.emitPhase(i)
	}
	g.b.SetPhase(-1)
	g.b.Emit(isa.Inst{Op: isa.OpHalt})
	if g.err != nil {
		return nil, g.err
	}
	return g.b.Finalize()
}

// phaseCtx holds per-phase emission state.
type phaseCtx struct {
	idx    int
	ph     *Phase
	k      *workload.Kernel
	outIdx map[int]int // output stream id -> address-register slot after loads
	consts []float32   // hoisted constant pool, indexed by zConst0 offset
}

func (g *codegen) emitPhase(i int) {
	ph := &g.c.Phases[i]
	k := ph.Kernel
	ctx := &phaseCtx{idx: i, ph: ph, k: k, outIdx: make(map[int]int)}
	for n, os := range k.OutStreams() {
		ctx.outIdx[os] = len(k.Slots) + n
	}
	if len(k.Slots)+len(k.OutStreams()) > maxSlotRegs {
		g.fail(fmt.Errorf("compiler: %s: %d address registers needed, have %d",
			k.Name, len(k.Slots)+len(k.OutStreams()), maxSlotRegs))
		return
	}
	g.collectConsts(ctx)
	g.b.SetPhase(i)

	lbl := func(s string) string { return fmt.Sprintf("p%d_%s", i, s) }

	// Trip count and multi-version dispatch (§6.3).
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regTrip, Imm: int64(k.Elems)})
	switch g.c.Opts.Mode {
	case ModeScalar:
		g.emitScalarVersion(ctx, lbl)
		return
	default:
		g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regThresh, Imm: int64(g.c.Opts.ScalarThreshold)})
		g.b.Branch(isa.Inst{Op: isa.OpBLT, Src1: regTrip, Src2: regThresh}, lbl("scalar"))
	}

	elastic := g.c.Opts.Mode == ModeElastic
	if elastic {
		g.emitPrologue(ctx, lbl)
	}

	// Reset the tail predicate BEFORE the hoisted invariants: the previous
	// phase's remainder leaves a partial (possibly zero) predicate behind,
	// which would silently mask the VDUPIs off.
	g.b.Emit(isa.Inst{Op: isa.OpVWhile, Dst: isa.RegNone, Imm: 1})

	// Hoisted loop invariants and the reduction accumulator.
	g.emitInvariants(ctx)
	if k.Reduction {
		g.b.Emit(isa.Inst{Op: isa.OpVDupI, Dst: zAcc, FImm: 0})
	}
	if elastic && g.c.Opts.MonitorPeriod > 1 {
		g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regMonCnt, Imm: int64(g.c.Opts.MonitorPeriod)})
	}
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regRepeat, Imm: int64(k.Repeats)})

	g.emitAddrInit(ctx) // stream bases are loop invariants (indexed addressing)
	g.b.Label(lbl("repeat"))
	g.b.Emit(isa.Inst{Op: isa.OpVWhile, Dst: isa.RegNone, Imm: 1}) // full predicate
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regIdx, Imm: 0})

	g.b.Label(lbl("vecloop"))
	if elastic {
		g.emitMonitor(ctx, lbl)
	}
	g.b.Emit(isa.Inst{Op: isa.OpRdElems, Dst: regElems})
	g.b.Emit(isa.Inst{Op: isa.OpAdd, Dst: regBound, Src1: regIdx, Src2: regElems})
	g.b.Branch(isa.Inst{Op: isa.OpBLT, Src1: regTrip, Src2: regBound}, lbl("tail"))
	g.emitVectorBody(ctx, true)
	g.b.Emit(isa.Inst{Op: isa.OpMov, Dst: regIdx, Src1: regBound})
	g.b.Branch(isa.Inst{Op: isa.OpB}, lbl("vecloop"))

	// Remainder: one predicated iteration (Fig. 9's Loop Remainder).
	g.b.Label(lbl("tail"))
	g.b.Emit(isa.Inst{Op: isa.OpVWhile, Dst: regTail, Src1: regTrip, Src2: regIdx})
	g.b.Branch(isa.Inst{Op: isa.OpBEQI, Src1: regTail, Imm: 0}, lbl("tailend"))
	g.emitVectorBody(ctx, false)
	g.b.Label(lbl("tailend"))
	g.b.Emit(isa.Inst{Op: isa.OpSubI, Dst: regRepeat, Src1: regRepeat, Imm: 1})
	g.b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: regRepeat, Imm: 0}, lbl("repeat"))

	if k.Reduction {
		// Fold the accumulator and deposit lane 0 at the result slot.
		g.b.Emit(isa.Inst{Op: isa.OpVWhile, Dst: isa.RegNone, Imm: 1})
		g.b.Emit(isa.Inst{Op: isa.OpVFAddV, Dst: zAcc, Src1: zAcc})
		g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regBound, Imm: int64(ph.ResultAddr)})
		g.b.Emit(isa.Inst{Op: isa.OpVStore, Dst: zAcc, Src1: regBound, Src2: isa.XZR})
	}
	if elastic {
		g.emitEpilogue(lbl)
	}
	g.b.Branch(isa.Inst{Op: isa.OpB}, lbl("end"))

	g.emitScalarVersion(ctx, lbl)
	g.b.Label(lbl("end"))
}

// emitPrologue is Fig. 9's Phase Prologue: publish the phase's operational
// intensity (triggering the lane manager) and spin a compiler-selected
// default vector length into <VL>.
func (g *codegen) emitPrologue(ctx *phaseCtx, lbl func(string) string) {
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regOIVal, Imm: int64(isa.PackOI(ctx.ph.OI))})
	g.b.Emit(isa.Inst{Op: isa.OpMSR, Sys: isa.SysOI, Src1: regOIVal})
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regReqVL, Imm: int64(g.c.Opts.DefaultVL)})
	g.b.Label(lbl("setvl"))
	g.b.Emit(isa.Inst{Op: isa.OpMSR, Sys: isa.SysVL, Src1: regReqVL})
	g.b.Emit(isa.Inst{Op: isa.OpMRS, Dst: regStatus, Sys: isa.SysStatus})
	g.b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: regStatus, Imm: 1}, lbl("setvl"))
}

// emitEpilogue is Fig. 9's Phase Epilogue: clear <OI> (triggering a
// repartition for the peers) and release all lanes.
func (g *codegen) emitEpilogue(lbl func(string) string) {
	g.b.Emit(isa.Inst{Op: isa.OpMSR, Sys: isa.SysOI, Src1: isa.RegNone, Imm: 0})
	g.b.Label(lbl("release"))
	g.b.Emit(isa.Inst{Op: isa.OpMSR, Sys: isa.SysVL, Src1: isa.RegNone, Imm: 0})
	g.b.Emit(isa.Inst{Op: isa.OpMRS, Dst: regStatus, Sys: isa.SysStatus})
	g.b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: regStatus, Imm: 1}, lbl("release"))
	// The next vector use requires a fresh <VL>; reset the request so the
	// following prologue re-negotiates.
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regReqVL, Imm: 0})
}

// emitMonitor is Fig. 9's Partition Monitor plus Vector Length
// Reconfiguration: read <decision> (speculatively transmitted, §4.1.1) and,
// if it differs from the current request, spin the new length into <VL> and
// re-establish loop invariants and the reduction partial (§6.4).
//
// One deliberate deviation from Figure 9's listing: a failed <VL> write
// branches back to the *decision read*, not to the MSR. Retrying a stale
// request verbatim can deadlock — if the plan changes between the failure
// and the retry (e.g. the peer entered a new phase), two cores can spin
// forever on mutually unsatisfiable stale requests. Re-reading <decision>
// each retry guarantees progress: shrink requests always succeed, and the
// lane manager's plans are jointly feasible.
func (g *codegen) emitMonitor(ctx *phaseCtx, lbl func(string) string) {
	period := g.c.Opts.MonitorPeriod
	if period > 1 {
		g.b.Emit(isa.Inst{Op: isa.OpSubI, Dst: regMonCnt, Src1: regMonCnt, Imm: 1})
		g.b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: regMonCnt, Imm: 0}, lbl("body"))
		g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regMonCnt, Imm: int64(period)})
	}
	g.b.Label(lbl("mon"))
	g.b.Emit(isa.Inst{Op: isa.OpMRS, Dst: regDec, Sys: isa.SysDecision})
	g.b.Branch(isa.Inst{Op: isa.OpBEQ, Src1: regDec, Src2: regReqVL}, lbl("body"))
	// A zero decision means the manager has (transiently) nothing for us;
	// the current length stays valid, so skip.
	g.b.Branch(isa.Inst{Op: isa.OpBEQI, Src1: regDec, Imm: 0}, lbl("body"))
	if ctx.k.Reduction {
		// Save the running partial: freed RegBlks lose their contents.
		// Re-executing this on a retry is safe: the fold is
		// idempotent while no other SVE instruction intervenes.
		g.b.Emit(isa.Inst{Op: isa.OpVFAddV, Dst: zAcc, Src1: zAcc})
		g.b.Emit(isa.Inst{Op: isa.OpVMovX0, Dst: regRedSave, Src1: zAcc})
	}
	g.b.Emit(isa.Inst{Op: isa.OpMSR, Sys: isa.SysVL, Src1: regDec})
	g.b.Emit(isa.Inst{Op: isa.OpMRS, Dst: regStatus, Sys: isa.SysStatus})
	g.b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: regStatus, Imm: 1}, lbl("mon"))
	// Commit the granted length as current only on success, so the
	// monitor's comparison always reflects the configured <VL>.
	g.b.Emit(isa.Inst{Op: isa.OpMov, Dst: regReqVL, Src1: regDec})
	// Re-initialize hoisted invariants and restore the reduction partial
	// under the new vector length.
	g.emitInvariants(ctx)
	if ctx.k.Reduction {
		g.b.Emit(isa.Inst{Op: isa.OpVInsX0, Dst: zAcc, Src1: regRedSave})
	}
	g.b.Label(lbl("body"))
}

// collectConsts hoists every distinct floating-point literal of the phase
// into the constant pool (the loop invariants of §6.4).
func (g *codegen) collectConsts(ctx *phaseCtx) {
	seen := make(map[float32]bool)
	var walk func(e *workload.Expr)
	walk = func(e *workload.Expr) {
		if e == nil {
			return
		}
		if e.Kind == workload.KindConst && !seen[e.Val] {
			seen[e.Val] = true
			ctx.consts = append(ctx.consts, e.Val)
		}
		walk(e.L)
		walk(e.R)
	}
	for _, s := range ctx.k.Stmts {
		walk(s.E)
	}
	sort.Slice(ctx.consts, func(a, b int) bool { return ctx.consts[a] < ctx.consts[b] })
	if len(ctx.consts) > maxConstRegs {
		g.fail(fmt.Errorf("compiler: %s: %d constants exceed the %d-register pool",
			ctx.k.Name, len(ctx.consts), maxConstRegs))
	}
}

func (ctx *phaseCtx) constReg(v float32) isa.Reg {
	for i, c := range ctx.consts {
		if c == v {
			return zConst0 + isa.Reg(i)
		}
	}
	panic(fmt.Sprintf("compiler: constant %v not hoisted", v))
}

func (g *codegen) emitInvariants(ctx *phaseCtx) {
	for i, v := range ctx.consts {
		g.b.Emit(isa.Inst{Op: isa.OpVDupI, Dst: zConst0 + isa.Reg(i), FImm: v})
	}
}

// emitAddrInit points every slot/output address register at element 0 of its
// stream (plus stencil offset).
func (g *codegen) emitAddrInit(ctx *phaseCtx) {
	for j, slot := range ctx.k.Slots {
		s := ctx.ph.Streams[slot.Stream]
		addr := s.Base + uint64(workload.ElemBytes*(workload.Halo+slot.Offset))
		g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regAddr0 + isa.Reg(j), Imm: int64(addr)})
	}
	for _, os := range ctx.k.OutStreams() {
		s := ctx.ph.Streams[os]
		addr := s.Base + uint64(workload.ElemBytes*workload.Halo)
		g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regAddr0 + isa.Reg(ctx.outIdx[os]), Imm: int64(addr)})
	}
}

// emitVectorBody emits one strip: loads, statement computations and stores,
// all using base + scaled-index addressing off the element counter (no
// per-iteration address arithmetic — the form a vectorizer emits for
// unit-stride streams).
func (g *codegen) emitVectorBody(ctx *phaseCtx, bump bool) {
	_ = bump
	for j := range ctx.k.Slots {
		g.b.Emit(isa.Inst{Op: isa.OpVLoad, Dst: zSlot0 + isa.Reg(j), Src1: regAddr0 + isa.Reg(j), Src2: regIdx})
	}
	for _, st := range ctx.k.Stmts {
		if ctx.k.Reduction {
			g.emitAccumulate(ctx, st.E)
			continue
		}
		res := g.vectorExpr(ctx, st.E, newTempAlloc(zTemp0, maxTempRegs))
		g.b.Emit(isa.Inst{Op: isa.OpVStore, Dst: res, Src1: regAddr0 + isa.Reg(ctx.outIdx[st.Out]), Src2: regIdx})
	}
}

// emitAccumulate folds a reduction statement into the accumulator, fusing
// acc += a*b into a single VFMLA when the kernel allows (§ Kernel.FuseMAC).
func (g *codegen) emitAccumulate(ctx *phaseCtx, e *workload.Expr) {
	ta := newTempAlloc(zTemp0, maxTempRegs)
	if ctx.k.FuseMAC && e.Kind == workload.KindBin && e.Op == isa.OpVFMul {
		l := g.vectorExpr(ctx, e.L, ta)
		r := g.vectorExpr(ctx, e.R, ta)
		g.b.Emit(isa.Inst{Op: isa.OpVFMla, Dst: zAcc, Src1: l, Src2: r})
		return
	}
	v := g.vectorExpr(ctx, e, ta)
	g.b.Emit(isa.Inst{Op: isa.OpVFAdd, Dst: zAcc, Src1: zAcc, Src2: v})
}

// tempAlloc is a stack allocator for expression temporaries. Every subtree
// evaluation returns with at most one live temporary (its result), so after
// evaluating both operands of a binary node the stack top is the right
// operand's temp — which lets results reuse operand registers in place,
// keeping the live count at the expression's Ershov number.
type tempAlloc struct {
	base isa.Reg
	max  int
	used int
}

func newTempAlloc(base isa.Reg, max int) *tempAlloc {
	return &tempAlloc{base: base, max: max}
}

func (t *tempAlloc) push() isa.Reg {
	if t.used >= t.max {
		panic("compiler: expression needs too many temporaries")
	}
	r := t.base + isa.Reg(t.used)
	t.used++
	return r
}

func (t *tempAlloc) isTemp(r isa.Reg) bool {
	return r >= t.base && r < t.base+isa.Reg(t.max)
}

func (t *tempAlloc) pop1() { t.used-- }

// vectorExpr emits code computing e and returns the register holding the
// result. Slot and constant references return their dedicated registers
// without copying; operation nodes write into a reused operand temporary
// when possible, otherwise a fresh one.
func (g *codegen) vectorExpr(ctx *phaseCtx, e *workload.Expr, ta *tempAlloc) isa.Reg {
	switch e.Kind {
	case workload.KindSlot:
		return zSlot0 + isa.Reg(e.Slot)
	case workload.KindConst:
		return ctx.constReg(e.Val)
	case workload.KindUn:
		src := g.vectorExpr(ctx, e.L, ta)
		dst := src
		if !ta.isTemp(src) {
			dst = ta.push()
		}
		g.b.Emit(isa.Inst{Op: e.Op, Dst: dst, Src1: src})
		return dst
	case workload.KindBin:
		l := g.vectorExpr(ctx, e.L, ta)
		r := g.vectorExpr(ctx, e.R, ta)
		var dst isa.Reg
		switch {
		case ta.isTemp(l):
			dst = l
			if ta.isTemp(r) {
				ta.pop1() // r is the stack top; it dies here
			}
		case ta.isTemp(r):
			dst = r
		default:
			dst = ta.push()
		}
		g.b.Emit(isa.Inst{Op: e.Op, Dst: dst, Src1: l, Src2: r})
		return dst
	default:
		panic("compiler: bad expr kind")
	}
}
