package compiler

import (
	"strings"
	"testing"

	"occamy/internal/isa"
	"occamy/internal/mem"
	"occamy/internal/workload"
)

func reg() *workload.Registry { return workload.NewRegistry() }

func compileWL(t *testing.T, name string, opts Options) *Compiled {
	t.Helper()
	c, err := Compile(reg().Workload(name), opts)
	if err != nil {
		t.Fatalf("Compile(%s): %v", name, err)
	}
	return c
}

func TestCompileAllWorkloadsAllModes(t *testing.T) {
	r := reg()
	for _, name := range r.WorkloadNames() {
		for _, mode := range []Mode{ModeElastic, ModeFixed, ModeScalar} {
			if _, err := Compile(r.Workload(name), Options{Mode: mode}); err != nil {
				t.Errorf("%s/%s: %v", name, mode, err)
			}
		}
	}
}

// countOps tallies opcode occurrences in a program.
func countOps(p *isa.Program) map[isa.Opcode]int {
	m := make(map[isa.Opcode]int)
	for _, in := range p.Insts {
		m[in.Op]++
	}
	return m
}

// sysWrites tallies MSR targets.
func sysWrites(p *isa.Program, sys isa.SysReg) int {
	n := 0
	for _, in := range p.Insts {
		if in.Op == isa.OpMSR && in.Sys == sys {
			n++
		}
	}
	return n
}

// TestElasticCodeShapeMatchesFigure9 checks the generated structure against
// Figure 9: per phase one <OI> write in the prologue and one zero-write in
// the epilogue, a default-VL spin loop, a per-iteration partition monitor
// reading <decision>, a reconfiguration spin loop, and a lane release.
func TestElasticCodeShapeMatchesFigure9(t *testing.T) {
	c := compileWL(t, "spec/WL1", Options{Mode: ModeElastic}) // two phases
	p := c.Program

	if got := sysWrites(p, isa.SysOI); got != 4 { // 2 phases x (prologue + epilogue)
		t.Errorf("<OI> writes = %d, want 4", got)
	}
	// Each phase writes <VL> in: prologue spin, monitor reconfig spin,
	// epilogue release = 3 static sites.
	if got := sysWrites(p, isa.SysVL); got != 6 {
		t.Errorf("<VL> write sites = %d, want 6", got)
	}
	ops := countOps(p)
	if ops[isa.OpMRS] < 8 { // 2x(status spins x2 + decision + release status)
		t.Errorf("MRS sites = %d, want >= 8", ops[isa.OpMRS])
	}
	// Monitor exists: an MRS <decision> per phase.
	dec := 0
	for _, in := range p.Insts {
		if in.Op == isa.OpMRS && in.Sys == isa.SysDecision {
			dec++
		}
	}
	if dec != 2 {
		t.Errorf("MRS <decision> sites = %d, want 2 (one monitor per phase)", dec)
	}
	// Figure 9's labels exist per phase.
	for _, lbl := range []string{"p0_setvl", "p0_vecloop", "p0_tail", "p0_release", "p1_setvl", "p1_scalar"} {
		if _, ok := p.Labels[lbl]; !ok {
			t.Errorf("label %q missing", lbl)
		}
	}
}

func TestFixedModeHasNoEMSIMD(t *testing.T) {
	c := compileWL(t, "spec/WL8", Options{Mode: ModeFixed})
	for _, in := range c.Program.Insts {
		if in.Op.IsEMSIMD() {
			t.Fatalf("fixed-mode program contains EM-SIMD instruction %s", in)
		}
	}
}

func TestScalarModeHasNoVectorInsts(t *testing.T) {
	c := compileWL(t, "cv/WL6", Options{Mode: ModeScalar})
	for _, in := range c.Program.Insts {
		if in.Op.IsVector() || in.Op.IsEMSIMD() {
			t.Fatalf("scalar-mode program contains %s", in)
		}
	}
}

func TestStatusSpinFollowsEveryVLWrite(t *testing.T) {
	// Table 2's <EM-SIMD, SVE> ordering is compiler-managed: every MSR
	// <VL> must be followed by MRS <status> + a BNEI retry whose target is
	// at or before the MSR (the monitor's retry re-reads <decision>, so
	// its target precedes the MSR; prologue/epilogue spins target it
	// exactly).
	c := compileWL(t, "spec/WL20", Options{Mode: ModeElastic})
	insts := c.Program.Insts
	for i, in := range insts {
		if in.Op != isa.OpMSR || in.Sys != isa.SysVL {
			continue
		}
		if i+2 >= len(insts) {
			t.Fatalf("MSR <VL> at %d has no room for spin", i)
		}
		if insts[i+1].Op != isa.OpMRS || insts[i+1].Sys != isa.SysStatus {
			t.Fatalf("inst %d after MSR <VL> is %s, want MRS <status>", i+1, insts[i+1])
		}
		if insts[i+2].Op != isa.OpBNEI || insts[i+2].Target > i {
			t.Fatalf("inst %d is %s (target %d), want BNEI retrying at or before %d", i+2, insts[i+2], insts[i+2].Target, i)
		}
	}
}

func TestReductionFixupAcrossVLChange(t *testing.T) {
	// §6.4: before a VL change the partial sum must be folded and saved
	// (VFADDV + VMOVX0), and restored after (VINSX0).
	c := compileWL(t, "cv/WL6", Options{Mode: ModeElastic}) // accProd + dotProd
	ops := countOps(c.Program)
	if ops[isa.OpVMovX0] == 0 || ops[isa.OpVInsX0] == 0 {
		t.Fatalf("reduction workload missing VL-change fix-up: VMOVX0=%d VINSX0=%d",
			ops[isa.OpVMovX0], ops[isa.OpVInsX0])
	}
	// Non-reduction workloads need no fix-up.
	c2 := compileWL(t, "spec/WL1", Options{Mode: ModeElastic})
	ops2 := countOps(c2.Program)
	if ops2[isa.OpVMovX0] != 0 || ops2[isa.OpVInsX0] != 0 {
		t.Fatal("non-reduction workload has spurious reduction fix-up")
	}
}

func TestInvariantsReinitializedAfterReconfig(t *testing.T) {
	// The VDUPI constants must appear at least twice per constant-using
	// phase: hoisted before the loop and re-initialized in the reconfig
	// block (§6.4 re-initializing SIMD registers containing loop
	// invariants).
	c := compileWL(t, "cv/WL2", Options{Mode: ModeElastic}) // addWeight has 3 constants
	dupsByPhase := map[int]int{}
	for _, in := range c.Program.Insts {
		if in.Op == isa.OpVDupI && in.Dst >= zConst0 && in.Dst < zConst0+maxConstRegs {
			dupsByPhase[in.Phase]++
		}
	}
	if dupsByPhase[0] < 6 { // 3 constants x (hoist + reconfig re-init)
		t.Errorf("phase 0 constant initializations = %d, want >= 6", dupsByPhase[0])
	}
}

func TestMonitorPeriodEmitsCounter(t *testing.T) {
	c1 := compileWL(t, "spec/WL16", Options{Mode: ModeElastic, MonitorPeriod: 1})
	c8 := compileWL(t, "spec/WL16", Options{Mode: ModeElastic, MonitorPeriod: 8})
	has := func(c *Compiled, r isa.Reg) bool {
		for _, in := range c.Program.Insts {
			if in.Op == isa.OpSubI && in.Dst == r {
				return true
			}
		}
		return false
	}
	if has(c1, regMonCnt) {
		t.Error("period-1 monitor must not use a counter")
	}
	if !has(c8, regMonCnt) {
		t.Error("period-8 monitor must decrement a counter")
	}
}

func TestLayoutDisjointAndAligned(t *testing.T) {
	c := compileWL(t, "spec/WL4", Options{Mode: ModeElastic, BaseAddr: 1 << 28})
	type span struct{ lo, hi uint64 }
	var spans []span
	for _, ph := range c.Phases {
		for _, s := range ph.Streams {
			if s.Base%mem.LineBytes != 0 {
				t.Errorf("stream base %#x not line aligned", s.Base)
			}
			if s.Base < 1<<28 {
				t.Errorf("stream base %#x below workload base", s.Base)
			}
			spans = append(spans, span{s.Base, s.Base + uint64(workload.ElemBytes*(s.Elems+2*workload.Halo))})
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("streams overlap: %#x-%#x vs %#x-%#x", a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
	if c.EndAddr <= 1<<28 {
		t.Error("EndAddr must advance past the base")
	}
}

func TestPhaseOIMatchesKernel(t *testing.T) {
	c := compileWL(t, "spec/WL8", Options{Mode: ModeElastic})
	for i, ph := range c.Phases {
		if ph.OI != ph.Kernel.OI() {
			t.Errorf("phase %d OI %+v != kernel OI %+v", i, ph.OI, ph.Kernel.OI())
		}
	}
	// The prologue's MOVI immediate must be the packed OI of the phase.
	found := 0
	for _, in := range c.Program.Insts {
		if in.Op == isa.OpMovI && in.Dst == regOIVal && in.Imm != 0 {
			oi := isa.UnpackOI(uint32(in.Imm))
			if oi.IsZero() {
				t.Errorf("prologue OI immediate decodes to zero")
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("found %d prologue OI immediates, want 2", found)
	}
}

func TestInitDataFillsInputsOnly(t *testing.T) {
	c := compileWL(t, "spec/WL1", Options{Mode: ModeElastic})
	m := mem.NewMemory()
	c.InitData(m, 42)
	for _, ph := range c.Phases {
		for id, s := range ph.Streams {
			v := m.ReadF32(s.Base)
			if s.Output {
				if v != 0 {
					t.Errorf("output stream %d pre-filled", id)
				}
			} else {
				if v < 0.5 || v >= 1.5 {
					t.Errorf("input stream %d value %v outside [0.5,1.5)", id, v)
				}
			}
		}
	}
	// Deterministic per seed.
	m2 := mem.NewMemory()
	c.InitData(m2, 42)
	for _, ph := range c.Phases {
		for _, s := range ph.Streams {
			if m.ReadF32(s.Base+4) != m2.ReadF32(s.Base+4) {
				t.Fatal("InitData must be deterministic for a seed")
			}
		}
	}
}

func TestProgramEndsWithHalt(t *testing.T) {
	c := compileWL(t, "cv/WL1", Options{Mode: ModeFixed})
	last := c.Program.Insts[len(c.Program.Insts)-1]
	if last.Op != isa.OpHalt {
		t.Fatalf("last instruction is %s, want HALT", last)
	}
}

func TestDisassemblyIsReadable(t *testing.T) {
	c := compileWL(t, "spec/WL1", Options{Mode: ModeElastic})
	d := c.Program.Disassemble()
	for _, frag := range []string{"MSR <OI>", "MSR <VL>", "MRS X4, <decision>", "VLD1W", "VST1W", "HALT"} {
		if !strings.Contains(d, frag) {
			t.Errorf("disassembly missing %q", frag)
		}
	}
}

func TestBranchTargetsResolved(t *testing.T) {
	r := reg()
	for _, name := range r.WorkloadNames() {
		c, err := Compile(r.Workload(name), Options{Mode: ModeElastic})
		if err != nil {
			t.Fatal(err)
		}
		for pc, in := range c.Program.Insts {
			if in.Op.IsBranch() && (in.Target < 0 || in.Target >= c.Program.Len()) {
				t.Fatalf("%s: branch at %d has target %d", name, pc, in.Target)
			}
		}
	}
}

func TestPhaseAttributionCoversLoopCode(t *testing.T) {
	c := compileWL(t, "spec/WL1", Options{Mode: ModeElastic})
	counts := map[int]int{}
	for _, in := range c.Program.Insts {
		counts[in.Phase]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("phase attribution missing: %v", counts)
	}
}

// TestGeneratedCodeReassembles round-trips every compiled workload through
// the disassembler and assembler: the textual ISA carries the complete
// program, and both tools agree on the syntax.
func TestGeneratedCodeReassembles(t *testing.T) {
	r := reg()
	for _, name := range r.WorkloadNames() {
		for _, mode := range []Mode{ModeElastic, ModeFixed, ModeScalar} {
			c, err := Compile(r.Workload(name), Options{Mode: mode, BaseAddr: 1 << 32})
			if err != nil {
				t.Fatal(err)
			}
			p2, err := isa.Assemble(name, c.Program.Disassemble())
			if err != nil {
				t.Fatalf("%s/%s: reassembly failed: %v", name, mode, err)
			}
			if p2.Len() != c.Program.Len() {
				t.Fatalf("%s/%s: lengths differ: %d vs %d", name, mode, p2.Len(), c.Program.Len())
			}
			for i := range p2.Insts {
				a, b := c.Program.Insts[i], p2.Insts[i]
				a.Phase, b.Phase = 0, 0
				if a.String() != b.String() {
					t.Fatalf("%s/%s inst %d: %q vs %q", name, mode, i, a.String(), b.String())
				}
			}
		}
	}
}
