package compiler

import (
	"fmt"

	"occamy/internal/isa"
	"occamy/internal/workload"
)

// scalarOpFor maps a vector operation onto its scalar floating-point
// equivalent, for the multi-version non-vectorized variant (§6.3).
func scalarOpFor(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.OpVFAdd:
		return isa.OpSFAdd
	case isa.OpVFSub:
		return isa.OpSFSub
	case isa.OpVFMul:
		return isa.OpSFMul
	case isa.OpVFDiv:
		return isa.OpSFDiv
	case isa.OpVFMax:
		return isa.OpSFMax
	case isa.OpVFMin:
		return isa.OpSFMin
	case isa.OpVFAbs:
		return isa.OpSFAbs
	case isa.OpVFNeg:
		return isa.OpSFNeg
	case isa.OpVFSqrt:
		return isa.OpSFSqrt
	case isa.OpVIAdd:
		return isa.OpSIAdd
	case isa.OpVISub:
		return isa.OpSISub
	case isa.OpVIMul:
		return isa.OpSIMul
	case isa.OpVIAnd:
		return isa.OpSIAnd
	case isa.OpVIOr:
		return isa.OpSIOr
	case isa.OpVIXor:
		return isa.OpSIXor
	case isa.OpVIShl:
		return isa.OpSIShl
	case isa.OpVIShr:
		return isa.OpSIShr
	case isa.OpVIMax:
		return isa.OpSIMax
	case isa.OpVIMin:
		return isa.OpSIMin
	default:
		panic(fmt.Sprintf("compiler: no scalar equivalent for %s", op))
	}
}

// emitScalarVersion emits the complete non-vectorized variant of the phase:
// a plain element-at-a-time loop on the scalar core's FP pipes. It contains
// no EM-SIMD instructions — a workload running this version holds no SIMD
// lanes at all.
func (g *codegen) emitScalarVersion(ctx *phaseCtx, lbl func(string) string) {
	k := ctx.k
	g.b.Label(lbl("scalar"))
	if k.Reduction {
		g.b.Emit(isa.Inst{Op: isa.OpSFMovI, Dst: fAcc, FImm: 0})
	}
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regRepeat, Imm: int64(k.Repeats)})
	g.b.Label(lbl("srepeat"))
	g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regIdx, Imm: 0})
	g.emitAddrInit(ctx)

	g.b.Label(lbl("sloop"))
	for j := range k.Slots {
		g.b.Emit(isa.Inst{Op: isa.OpSLoadF, Dst: fSlot0 + isa.Reg(j), Src1: regAddr0 + isa.Reg(j)})
	}
	for _, st := range k.Stmts {
		ta := newTempAlloc(fTemp0, maxTempRegs)
		res := g.scalarExpr(st.E, ta)
		if k.Reduction {
			g.b.Emit(isa.Inst{Op: isa.OpSFAdd, Dst: fAcc, Src1: fAcc, Src2: res})
		} else {
			g.b.Emit(isa.Inst{Op: isa.OpSStoreF, Dst: res, Src1: regAddr0 + isa.Reg(ctx.outIdx[st.Out])})
		}
	}
	n := len(k.Slots) + len(k.OutStreams())
	for j := 0; j < n; j++ {
		r := regAddr0 + isa.Reg(j)
		g.b.Emit(isa.Inst{Op: isa.OpAddI, Dst: r, Src1: r, Imm: workload.ElemBytes})
	}
	g.b.Emit(isa.Inst{Op: isa.OpAddI, Dst: regIdx, Src1: regIdx, Imm: 1})
	g.b.Branch(isa.Inst{Op: isa.OpBLT, Src1: regIdx, Src2: regTrip}, lbl("sloop"))
	g.b.Emit(isa.Inst{Op: isa.OpSubI, Dst: regRepeat, Src1: regRepeat, Imm: 1})
	g.b.Branch(isa.Inst{Op: isa.OpBNEI, Src1: regRepeat, Imm: 0}, lbl("srepeat"))

	if k.Reduction {
		g.b.Emit(isa.Inst{Op: isa.OpMovI, Dst: regBound, Imm: int64(ctx.ph.ResultAddr)})
		g.b.Emit(isa.Inst{Op: isa.OpSStoreF, Dst: fAcc, Src1: regBound})
	}
}

// scalarExpr mirrors vectorExpr on the scalar FP register file. Constants
// are materialized inline (the scalar path is cold, hoisting is not worth
// the bookkeeping).
func (g *codegen) scalarExpr(e *workload.Expr, ta *tempAlloc) isa.Reg {
	switch e.Kind {
	case workload.KindSlot:
		return fSlot0 + isa.Reg(e.Slot)
	case workload.KindConst:
		dst := ta.push()
		g.b.Emit(isa.Inst{Op: isa.OpSFMovI, Dst: dst, FImm: e.Val})
		return dst
	case workload.KindUn:
		src := g.scalarExpr(e.L, ta)
		dst := src
		if !ta.isTemp(src) {
			dst = ta.push()
		}
		g.b.Emit(isa.Inst{Op: scalarOpFor(e.Op), Dst: dst, Src1: src})
		return dst
	case workload.KindBin:
		l := g.scalarExpr(e.L, ta)
		r := g.scalarExpr(e.R, ta)
		var dst isa.Reg
		switch {
		case ta.isTemp(l):
			dst = l
			if ta.isTemp(r) {
				ta.pop1()
			}
		case ta.isTemp(r):
			dst = r
		default:
			dst = ta.push()
		}
		g.b.Emit(isa.Inst{Op: scalarOpFor(e.Op), Dst: dst, Src1: l, Src2: r})
		return dst
	default:
		panic("compiler: bad expr kind")
	}
}
