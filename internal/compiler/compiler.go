// Package compiler implements the Occamy compiler of §6: it turns a workload
// (a sequence of loop kernels) into an executable program for the simulated
// ISA, inserting the EM-SIMD instructions that describe phase behaviour and
// request vector-length reconfiguration.
//
// The generated code follows Figure 9 exactly:
//
//	Phase Prologue          MSR <OI>, then a spin loop setting a
//	                        compiler-selected default <VL>
//	Partition Monitor       per-iteration MRS <decision> + comparison
//	VL Reconfiguration      spin loop writing <VL> until <status> == 1,
//	                        followed by re-initialization of hoisted loop
//	                        invariants and the reduction fix-up of §6.4
//	Vec-loop / Remainder    strip-mined vector-length-agnostic body plus a
//	                        predicated tail iteration
//	Phase Epilogue          MSR <OI>, 0 and release of all lanes
//
// Multi-version code generation (§6.3) emits a non-vectorized variant and a
// runtime trip-count check choosing between the two.
package compiler

import (
	"fmt"
	"math"
	"sort"

	"occamy/internal/isa"
	"occamy/internal/mem"
	"occamy/internal/sim"
	"occamy/internal/workload"
)

// Mode selects the code shape for the target sharing architecture.
type Mode uint8

const (
	// ModeElastic emits full EM-SIMD elastic vectorization (Occamy).
	ModeElastic Mode = iota
	// ModeFixed emits plain vector-length-agnostic SVE code with no
	// EM-SIMD instructions; the architecture fixes each core's vector
	// length (Private, FTS, VLS).
	ModeFixed
	// ModeScalar emits only the non-vectorized variant (the multi-version
	// fallback), used for ablations and correctness cross-checks.
	ModeScalar
)

func (m Mode) String() string {
	switch m {
	case ModeElastic:
		return "elastic"
	case ModeFixed:
		return "fixed"
	case ModeScalar:
		return "scalar"
	}
	return "mode?"
}

// Options configures compilation.
type Options struct {
	Mode Mode
	// DefaultVL is the compiler-selected default vector length (in
	// granules) requested by the phase prologue before the first
	// partition decision arrives. Defaults to 1.
	DefaultVL int
	// MonitorPeriod is the number of loop iterations between partition-
	// monitor checks (Fig. 9 places the monitor at every iteration;
	// larger periods are the §ablation knob). Defaults to 1.
	MonitorPeriod int
	// ScalarThreshold is the trip count below which the generated runtime
	// check takes the non-vectorized version (§6.3 multi-version code
	// generation). Defaults to 128 elements.
	ScalarThreshold int
	// BaseAddr is where this workload's data segment starts. Each core's
	// workload must use a disjoint region.
	BaseAddr uint64
}

func (o Options) withDefaults() Options {
	if o.DefaultVL <= 0 {
		o.DefaultVL = 1
	}
	if o.MonitorPeriod <= 0 {
		o.MonitorPeriod = 1
	}
	if o.ScalarThreshold <= 0 {
		o.ScalarThreshold = 128
	}
	return o
}

// StreamInfo locates one data stream of a phase in simulated memory. The
// array spans [Base, Base+4*(Elems+2*Halo)); element i of the stream lives at
// Base + 4*(Halo+i) so stencil offsets stay in bounds.
type StreamInfo struct {
	Base   uint64
	Elems  int
	Output bool
}

// Phase is the compiler's record of one identified phase (§6.3).
type Phase struct {
	Kernel *workload.Kernel
	// OI is the Eq. 5 operational-intensity pair the prologue writes to
	// the <OI> register.
	OI isa.OIPair
	// Streams maps the kernel's stream indices to memory.
	Streams map[int]StreamInfo
	// ResultAddr is where a reduction phase deposits its final scalar
	// (lane 0 of the folded accumulator); zero for non-reductions.
	ResultAddr uint64
}

// Compiled is a fully compiled workload.
type Compiled struct {
	Program *isa.Program
	Phases  []Phase
	Opts    Options
	// EndAddr is the first address past the workload's data segment.
	EndAddr uint64
}

// Compile lowers w according to opts.
func Compile(w *workload.Workload, opts Options) (*Compiled, error) {
	opts = opts.withDefaults()
	c := &Compiled{Opts: opts}

	// Lay out the data segment: per phase, per stream, 64-byte aligned.
	next := align(opts.BaseAddr, mem.LineBytes)
	for _, k := range w.Phases {
		if err := k.Validate(); err != nil {
			return nil, err
		}
		ph := Phase{Kernel: k, OI: k.OI(), Streams: make(map[int]StreamInfo)}
		alloc := func(stream int, output bool) {
			if s, ok := ph.Streams[stream]; ok {
				if output {
					s.Output = true
					ph.Streams[stream] = s
				}
				return
			}
			bytes := uint64(workload.ElemBytes * (k.Elems + 2*workload.Halo))
			ph.Streams[stream] = StreamInfo{Base: next, Elems: k.Elems, Output: output}
			next = align(next+bytes, mem.LineBytes)
		}
		for _, s := range k.InStreams() {
			alloc(s, false)
		}
		for _, s := range k.OutStreams() {
			alloc(s, true)
		}
		if k.Reduction {
			ph.ResultAddr = next
			// Room for a full-width vector store of the folded
			// accumulator (sum in lane 0, zeros beyond).
			next = align(next+uint64(workload.ElemBytes*64), mem.LineBytes)
		}
		c.Phases = append(c.Phases, ph)
	}
	c.EndAddr = next

	g := newCodegen(w.Name, c)
	prog, err := g.run()
	if err != nil {
		return nil, err
	}
	c.Program = prog
	return c, nil
}

func align(a, to uint64) uint64 { return (a + to - 1) &^ (to - 1) }

// InitData fills every input stream (including its halo) with deterministic
// values in [0.5, 1.5), a range that keeps all kernel math (including
// divisions and square roots) well conditioned.
func (c *Compiled) InitData(m *mem.Memory, seed uint64) {
	rng := sim.NewRNG(seed)
	for _, ph := range c.Phases {
		ids := make([]int, 0, len(ph.Streams))
		for id := range ph.Streams {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			s := ph.Streams[id]
			if s.Output {
				continue
			}
			n := s.Elems + 2*workload.Halo
			if ph.Kernel.IntData {
				// Small int32 lane values (0..255, image-like).
				m.FillF32(s.Base, n, func(int) float32 { return isa.IntBits(int32(rng.Intn(256))) })
			} else {
				m.FillF32(s.Base, n, func(int) float32 { return 0.5 + rng.Float32() })
			}
		}
	}
}

// HostInputs reads a phase's input streams back from simulated memory in the
// layout Kernel.Reference expects.
func (p *Phase) HostInputs(m *mem.Memory) map[int][]float32 {
	in := make(map[int][]float32)
	for id, s := range p.Streams {
		if s.Output {
			continue
		}
		in[id] = m.ReadF32Slice(s.Base, s.Elems+2*workload.Halo)
	}
	return in
}

// CheckResults recomputes the phase on the host and compares the simulator's
// memory against it. relTol is the allowed relative error (vectorized
// reductions legitimately re-associate floating-point sums).
func (p *Phase) CheckResults(m *mem.Memory, relTol float64) error {
	wantOut, wantAcc := p.Kernel.Reference(p.HostInputs(m))
	for id, s := range p.Streams {
		if !s.Output {
			continue
		}
		got := m.ReadF32Slice(s.Base+uint64(workload.ElemBytes*workload.Halo), s.Elems)
		want := wantOut[id]
		for i := range want {
			if p.Kernel.IntData {
				// Integer kernels must match bit-exactly.
				if isa.LaneInt(got[i]) != isa.LaneInt(want[i]) {
					return fmt.Errorf("%s: stream %d elem %d = %d, want %d (int lanes)",
						p.Kernel.Name, id, i, isa.LaneInt(got[i]), isa.LaneInt(want[i]))
				}
				continue
			}
			if !close64(float64(got[i]), float64(want[i]), relTol) {
				return fmt.Errorf("%s: stream %d elem %d = %v, want %v",
					p.Kernel.Name, id, i, got[i], want[i])
			}
		}
	}
	if p.Kernel.Reduction {
		got := m.ReadF32(p.ResultAddr)
		if !close64(float64(got), float64(wantAcc), relTol) {
			return fmt.Errorf("%s: reduction = %v, want %v", p.Kernel.Name, got, wantAcc)
		}
	}
	return nil
}

func close64(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= relTol*scale
}
