package metrics

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// regFrom builds a registry from parallel name/value slices (quick-generated
// raw material mapped onto a small key space so collisions actually happen).
func regFrom(vals []uint16) *Registry {
	r := NewRegistry()
	for i, v := range vals {
		r.Count(fmt.Sprintf("c%d", i%4), uint64(v))
		r.Gauge(fmt.Sprintf("g%d", i%3), float64(v))
	}
	return r
}

// TestMergeCommutativeCounters: for any two registries, a⊕b and b⊕a hold the
// same counter totals (counter merge is addition).
func TestMergeCommutativeCounters(t *testing.T) {
	f := func(av, bv []uint16) bool {
		ab := regFrom(av)
		ab.Merge(regFrom(bv))
		ba := regFrom(bv)
		ba.Merge(regFrom(av))
		if len(ab.Counters) != len(ba.Counters) {
			return false
		}
		for k, v := range ab.Counters {
			if ba.Counters[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMergeAssociative: (a⊕b)⊕c equals a⊕(b⊕c) for counters.
func TestMergeAssociative(t *testing.T) {
	f := func(av, bv, cv []uint16) bool {
		left := regFrom(av)
		left.Merge(regFrom(bv))
		left.Merge(regFrom(cv))

		bc := regFrom(bv)
		bc.Merge(regFrom(cv))
		right := regFrom(av)
		right.Merge(bc)

		for k, v := range left.Counters {
			if right.Counters[k] != v {
				return false
			}
		}
		return len(left.Counters) == len(right.Counters)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMergeIdentity: merging an empty or nil registry changes nothing, and
// merging into an empty registry reproduces the source.
func TestMergeIdentity(t *testing.T) {
	f := func(av []uint16) bool {
		a := regFrom(av)
		want := a.Clone()
		a.Merge(nil)
		a.Merge(NewRegistry())
		for k, v := range want.Counters {
			if a.Counters[k] != v {
				return false
			}
		}
		for k, v := range want.Gauges {
			if a.Gauges[k] != v {
				return false
			}
		}
		empty := NewRegistry()
		empty.Merge(a)
		return len(empty.Counters) == len(a.Counters) && len(empty.Gauges) == len(a.Gauges)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMergeSumsEqualTotal: splitting a stream of increments across K worker
// registries and merging must equal counting them all into one registry —
// the property that makes -j sweeps report the same totals as serial ones.
func TestMergeSumsEqualTotal(t *testing.T) {
	f := func(vals []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		serial := NewRegistry()
		workers := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
		for _, v := range vals {
			name := fmt.Sprintf("c%d", v%5)
			serial.Count(name, uint64(v))
			workers[rng.Intn(len(workers))].Count(name, uint64(v))
		}
		merged := NewRegistry()
		for _, w := range workers {
			merged.Merge(w)
		}
		if len(merged.Counters) != len(serial.Counters) {
			return false
		}
		for k, v := range serial.Counters {
			if merged.Counters[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIsolation: mutating a clone must not leak into the original.
func TestCloneIsolation(t *testing.T) {
	a := NewRegistry()
	a.Count("x", 5)
	a.Gauge("g", 1.5)
	b := a.Clone()
	b.Count("x", 10)
	b.Gauge("g", 9)
	if a.Counters["x"] != 5 || a.Gauges["g"] != 1.5 {
		t.Fatalf("clone mutation leaked into original: %+v", a)
	}
}

// TestAccumulatorConcurrentMerge is the -race test for the concurrent -j
// sweep pattern: many workers counting and merging private registries into
// one Accumulator, with concurrent Snapshot readers. The final totals must
// equal the arithmetic sum regardless of interleaving.
func TestAccumulatorConcurrentMerge(t *testing.T) {
	const workers, perWorker = 16, 500
	var acc Accumulator
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			private := NewRegistry()
			for i := 0; i < perWorker; i++ {
				private.Count("runs", 1)
				private.Count("cycles", uint64(i))
				acc.Count("direct", 1)
			}
			acc.Gauge(fmt.Sprintf("worker%d", w), float64(w))
			acc.Merge(private)
		}(w)
	}
	// Concurrent readers exercise Snapshot against in-flight merges.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap := acc.Snapshot()
				if snap.Counters["runs"] > workers*perWorker {
					t.Error("snapshot overshot final total")
					return
				}
			}
		}()
	}
	wg.Wait()

	final := acc.Snapshot()
	if got := final.Counters["runs"]; got != workers*perWorker {
		t.Fatalf("runs = %d, want %d", got, workers*perWorker)
	}
	if got := final.Counters["direct"]; got != workers*perWorker {
		t.Fatalf("direct = %d, want %d", got, workers*perWorker)
	}
	wantCycles := uint64(workers) * uint64(perWorker*(perWorker-1)/2)
	if got := final.Counters["cycles"]; got != wantCycles {
		t.Fatalf("cycles = %d, want %d", got, wantCycles)
	}
	for w := 0; w < workers; w++ {
		if final.Gauges[fmt.Sprintf("worker%d", w)] != float64(w) {
			t.Fatalf("gauge worker%d missing", w)
		}
	}
}
