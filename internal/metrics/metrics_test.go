package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"occamy/internal/arch"
)

func TestGeomeanBasics(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v, want 2", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{0, -1}); g != 0 {
		t.Fatalf("geomean of non-positives = %v, want 0", g)
	}
	// Non-positive entries are ignored, not zeroing.
	if g := Geomean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,_,8) = %v, want 4", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw [5]uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r%1000)/100 + 0.01
			xs = append(xs, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mkResult(kind arch.Kind, c0, c1 uint64, util float64) *arch.Result {
	return &arch.Result{
		Arch:        kind,
		Utilization: util,
		Cores: []arch.CoreResult{
			{Cycles: c0, RenameStallFrac: 0.1},
			{Cycles: c1, RenameStallFrac: 0.3},
		},
	}
}

func mkRow(name string, privC1, occC1 uint64) PairRow {
	return PairRow{
		Name: name,
		Results: map[arch.Kind]*arch.Result{
			arch.Private: mkResult(arch.Private, 1000, privC1, 0.5),
			arch.Occamy:  mkResult(arch.Occamy, 1000, occC1, 0.8),
		},
	}
}

func TestPairRowSpeedup(t *testing.T) {
	r := mkRow("p", 2000, 1000)
	if s := r.Speedup(arch.Occamy, 1); s != 2 {
		t.Fatalf("speedup = %v, want 2", s)
	}
	if s := r.Speedup(arch.Occamy, 0); s != 1 {
		t.Fatalf("core0 speedup = %v, want 1", s)
	}
	if s := r.Speedup(arch.FTS, 1); s != 0 {
		t.Fatalf("missing arch speedup = %v, want 0", s)
	}
}

func TestSweepAggregates(t *testing.T) {
	sw := &Sweep{Rows: []PairRow{mkRow("a", 2000, 1000), mkRow("b", 4000, 1000)}}
	gm := sw.GeomeanSpeedup(arch.Occamy, 1)
	if math.Abs(gm-math.Sqrt(8)) > 1e-9 {
		t.Fatalf("GM = %v, want sqrt(8)", gm)
	}
	if u := sw.GeomeanUtilization(arch.Occamy); math.Abs(u-0.8) > 1e-9 {
		t.Fatalf("util GM = %v, want 0.8", u)
	}
	if s := sw.GeomeanRenameStalls(arch.Occamy); math.Abs(s-0.2) > 1e-9 {
		t.Fatalf("stall mean = %v, want 0.2", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"A", "Blong"}}
	tab.Add("x", "1")
	tab.Add("yyyy", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Blong") {
		t.Fatalf("header malformed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "-") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestFormatHelpers(t *testing.T) {
	if FormatPct(0.1234) != "12.3%" {
		t.Fatal(FormatPct(0.1234))
	}
	if FormatX(1.5) != "1.50x" {
		t.Fatal(FormatX(1.5))
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedNames(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedNames = %v", got)
	}
}
