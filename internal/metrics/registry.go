package metrics

import "sync"

// Registry is a bag of named counters and gauges: counters accumulate
// (monotonic sums — simulated cycles, completed runs, retired elements),
// gauges hold a last-written value (a utilization, a rate). It is the
// merge-friendly aggregation unit for sweeps that fan runs out across
// goroutines: each worker fills a private Registry, and the results merge
// deterministically regardless of completion order.
//
// A Registry itself is not safe for concurrent use; wrap one in an
// Accumulator to share it between -j workers.
type Registry struct {
	Counters map[string]uint64
	Gauges   map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]float64),
	}
}

// Count adds delta to the named counter.
func (r *Registry) Count(name string, delta uint64) {
	if r.Counters == nil {
		r.Counters = make(map[string]uint64)
	}
	r.Counters[name] += delta
}

// Gauge sets the named gauge.
func (r *Registry) Gauge(name string, v float64) {
	if r.Gauges == nil {
		r.Gauges = make(map[string]float64)
	}
	r.Gauges[name] = v
}

// Merge folds other into r: counters add, gauges take other's value (last
// merge wins). Counter merging is commutative and associative, so any merge
// order over a set of worker registries produces the same totals; a nil
// other is an identity.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	for k, v := range other.Counters {
		r.Count(k, v)
	}
	for k, v := range other.Gauges {
		r.Gauge(k, v)
	}
}

// Clone returns a deep copy (for snapshot-then-keep-counting patterns).
func (r *Registry) Clone() *Registry {
	out := NewRegistry()
	out.Merge(r)
	return out
}

// Accumulator is a mutex-protected Registry for concurrent sweep workers:
// every method is safe to call from any goroutine.
type Accumulator struct {
	mu sync.Mutex
	r  Registry
}

// Count adds delta to the named counter.
func (a *Accumulator) Count(name string, delta uint64) {
	a.mu.Lock()
	a.r.Count(name, delta)
	a.mu.Unlock()
}

// Gauge sets the named gauge.
func (a *Accumulator) Gauge(name string, v float64) {
	a.mu.Lock()
	a.r.Gauge(name, v)
	a.mu.Unlock()
}

// Merge folds a worker's private registry into the accumulator.
func (a *Accumulator) Merge(other *Registry) {
	a.mu.Lock()
	a.r.Merge(other)
	a.mu.Unlock()
}

// Snapshot returns a deep copy of the current totals.
func (a *Accumulator) Snapshot() *Registry {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.r.Clone()
}
