// Package metrics provides the aggregate statistics the paper reports:
// geometric means (every average in §7 is a geometric mean), speedups over a
// baseline architecture, and utilization/overhead summaries across a set of
// co-running pairs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"occamy/internal/arch"
)

// Geomean returns the geometric mean of xs, ignoring non-positive entries
// (which would otherwise poison the product); it returns 0 for an empty or
// all-non-positive input.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Jain returns Jain's fairness index over xs: (Σx)² / (n·Σx²), which is 1
// when all entries are equal and 1/n when a single entry dominates. It
// returns 0 for an empty or all-zero input.
func Jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 || len(xs) == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// PairRow is one x-axis entry of Figures 10/11/13/15: a co-running pair
// measured on all four architectures.
type PairRow struct {
	Name    string
	Results map[arch.Kind]*arch.Result
}

// Speedup returns the per-core speedup of kind over the Private baseline for
// core c (the metric of Figure 10): baseline cycles / kind cycles.
func (r PairRow) Speedup(kind arch.Kind, c int) float64 {
	base := r.Results[arch.Private]
	got := r.Results[kind]
	if base == nil || got == nil || got.Cores[c].Cycles == 0 {
		return 0
	}
	return float64(base.Cores[c].Cycles) / float64(got.Cores[c].Cycles)
}

// Utilization returns the SIMD utilization of kind for this pair (Figure 11).
func (r PairRow) Utilization(kind arch.Kind) float64 {
	if res := r.Results[kind]; res != nil {
		return res.Utilization
	}
	return 0
}

// RenameStallFrac returns the mean across cores of the fraction of cycles
// blocked waiting for free registers (Figure 13).
func (r PairRow) RenameStallFrac(kind arch.Kind) float64 {
	res := r.Results[kind]
	if res == nil {
		return 0
	}
	total := 0.0
	for _, c := range res.Cores {
		total += c.RenameStallFrac
	}
	return total / float64(len(res.Cores))
}

// OverheadFrac returns Occamy's elastic-sharing runtime overhead for this
// pair as (monitor, reconfigure) fractions of execution time (Figure 15).
func (r PairRow) OverheadFrac() (monitor, reconfig float64) {
	res := r.Results[arch.Occamy]
	if res == nil {
		return 0, 0
	}
	var m, g float64
	for _, c := range res.Cores {
		m += c.OverheadMonitorFrac
		g += c.OverheadReconfigFrac
	}
	n := float64(len(res.Cores))
	return m / n, g / n
}

// Sweep is a full Figure 10-style experiment: every pair on every
// architecture.
type Sweep struct {
	Rows []PairRow
	// Totals aggregates run-volume counters across the sweep's workers
	// ("sims", "sim.cycles", "sim.elems"); nil when the producer did not
	// accumulate them.
	Totals *Registry
}

// GeomeanSpeedup aggregates per-core speedups across pairs (the "GM" bar).
func (s *Sweep) GeomeanSpeedup(kind arch.Kind, core int) float64 {
	var xs []float64
	for _, r := range s.Rows {
		if v := r.Speedup(kind, core); v > 0 {
			xs = append(xs, v)
		}
	}
	return Geomean(xs)
}

// GeomeanUtilization aggregates utilization across pairs (Figure 11's GM).
func (s *Sweep) GeomeanUtilization(kind arch.Kind) float64 {
	var xs []float64
	for _, r := range s.Rows {
		if v := r.Utilization(kind); v > 0 {
			xs = append(xs, v)
		}
	}
	return Geomean(xs)
}

// GeomeanRenameStalls aggregates Figure 13 across pairs.
func (s *Sweep) GeomeanRenameStalls(kind arch.Kind) float64 {
	var xs []float64
	for _, r := range s.Rows {
		xs = append(xs, r.RenameStallFrac(kind))
	}
	// Arithmetic mean here: many entries are exactly zero (by design for
	// the spatial architectures), which a geomean cannot aggregate.
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if len(xs) == 0 {
		return 0
	}
	return sum / float64(len(xs))
}

// MeanOverhead aggregates Figure 15 across pairs.
func (s *Sweep) MeanOverhead() (monitor, reconfig float64) {
	var m, g float64
	for _, r := range s.Rows {
		rm, rg := r.OverheadFrac()
		m += rm
		g += rg
	}
	n := float64(len(s.Rows))
	if n == 0 {
		return 0, 0
	}
	return m / n, g / n
}

// Table renders a fixed-width text table: header row then data rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SortKinds returns the architectures in the paper's presentation order.
func SortKinds() []arch.Kind { return arch.Kinds }

// FormatPct renders a fraction as a percentage.
func FormatPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// FormatX renders a speedup.
func FormatX(f float64) string { return fmt.Sprintf("%.2fx", f) }

// SortedNames returns map keys in sorted order (stable report output).
func SortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
