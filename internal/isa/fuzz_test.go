package isa

import (
	"math"
	"testing"
)

// FuzzAssembleRoundTrip hardens the assembler the way FuzzParseExpr hardens
// the workload expression parser: arbitrary source must never panic, and any
// program the assembler accepts must disassemble into text it accepts again
// with a bit-identical instruction stream.
func FuzzAssembleRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"HALT",
		"MOVI X0, #0\nMOVI X1, #10\nloop: ADDI X0, X0, #1\nB.LT X0, X1, loop\nHALT",
		"MSR <OI>, X1\nMSR <VL>, #2\nMRS X3, <status>\nB.NEI X3, #1, @0",
		"VDUPI Z1, #1.5\nVDUPI Z9, #bits:0x000000ff\nVFADD Z3, Z1, Z9",
		"VLD1W Z2, [X8, X0]\nVST1W Z2, [X9, X0]",
		"VWHILE X7, X25, X0\nVWHILE full",
		".phase 0\nNOP\n.phase -1\nHALT",
		"; comment only\n// another\n\n  7: HALT",
		"SFMOVI F1, #2.5\nSFADD F1, F2, F3",
		"", "MOVI", "MOVI X99, #1", "FOO X1, X2", "B.LT X1, X2, nowhere",
		"MSR <bogus>, X1", "VDUPI Z1, #bits:xyz", "label_no_inst:",
		"MOVI X1, #notanumber", "VLD1W Z1, [X8]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Assemble("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := p1.Disassemble()
		p2, err := Assemble("fuzz2", text)
		if err != nil {
			t.Fatalf("accepted %q but rejected its disassembly: %v\n%s", src, err, text)
		}
		if p1.Len() != p2.Len() {
			t.Fatalf("round trip changed length: %d vs %d\n%s", p1.Len(), p2.Len(), text)
		}
		for i := range p1.Insts {
			a, b := p1.Insts[i], p2.Insts[i]
			// Float immediates compare by bit pattern: NaN payloads from
			// integer-lane constants must survive the trip.
			if math.Float32bits(a.FImm) != math.Float32bits(b.FImm) {
				t.Fatalf("inst %d FImm bits differ: %08x vs %08x\n%s", i,
					math.Float32bits(a.FImm), math.Float32bits(b.FImm), text)
			}
			a.FImm, b.FImm = 0, 0
			a.Phase, b.Phase = 0, 0
			if a != b {
				t.Fatalf("inst %d differs after round trip:\n  %+v\n  %+v\n%s", i, a, b, text)
			}
		}
	})
}
