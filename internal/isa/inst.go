package isa

import "fmt"

// Reg names a register within its bank. The bank (scalar X, scalar-float F,
// vector Z) is implied by the opcode's operand semantics, mirroring a real
// encoding where the opcode selects the register file.
type Reg uint8

// RegNone marks an unused register operand.
const RegNone Reg = 0xFF

// Register-file sizes. X31 is reserved as the always-zero register XZR.
const (
	NumXRegs = 32 // X0..X30 general, X31 = XZR
	NumFRegs = 32
	NumZRegs = 32
	XZR      = Reg(31)
)

// Inst is one decoded instruction. The operand fields' meaning depends on the
// opcode (documented next to each Opcode constant). Programs are immutable
// after building; the simulator never mutates Inst values.
type Inst struct {
	Op   Opcode
	Dst  Reg // destination (or store-data source for stores)
	Src1 Reg
	Src2 Reg
	Imm  int64   // immediate / byte offset / element size
	FImm float32 // floating-point immediate
	Sys  SysReg  // system register for MSR/MRS
	// Target is the resolved program index of a branch destination.
	Target int
	// Phase attributes the instruction to a compiler-identified phase for
	// statistics; -1 means outside any phase.
	Phase int
}

// Program is a finished instruction sequence with resolved branch targets.
type Program struct {
	// Insts is the instruction memory; program counters index into it.
	Insts []Inst
	// Name identifies the program (usually the workload name).
	Name string
	// NumPhases is the number of compiler-identified phases.
	NumPhases int
	// Labels maps label names to instruction indices (kept for tests and
	// disassembly; execution uses resolved Target fields only).
	Labels map[string]int
}

// At returns the instruction at pc. Running past the end is a program bug;
// generated programs always terminate with OpHalt.
func (p *Program) At(pc int) Inst {
	return p.Insts[pc]
}

// AtPtr returns the instruction at pc without copying. Callers must treat
// the result as read-only: it aliases the program, which is shared across
// cores and runs.
func (p *Program) AtPtr(pc int) *Inst {
	return &p.Insts[pc]
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Insts) }

// Disassemble renders the whole program, one instruction per line.
func (p *Program) Disassemble() string {
	out := ""
	for i, in := range p.Insts {
		out += fmt.Sprintf("%4d: %s\n", i, in.String())
	}
	return out
}
