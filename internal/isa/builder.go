package isa

import "fmt"

// Builder assembles a Program with symbolic labels. Branch instructions may
// reference labels that are defined later; Finalize resolves them and fails
// on undefined or duplicate labels.
type Builder struct {
	name    string
	insts   []Inst
	labels  map[string]int
	fixups  []fixup
	phase   int
	nPhases int
	err     error
}

type fixup struct {
	instIdx int
	label   string
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int), phase: -1}
}

// SetPhase attributes subsequently emitted instructions to phase id (>= 0);
// pass -1 for instructions outside any phase.
func (b *Builder) SetPhase(id int) {
	b.phase = id
	if id+1 > b.nPhases {
		b.nPhases = id + 1
	}
}

// Label defines label name at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail(fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.insts)
}

// Emit appends one instruction.
func (b *Builder) Emit(in Inst) {
	in.Phase = b.phase
	in.Target = -1
	b.insts = append(b.insts, in)
}

// EmitResolved appends a branch whose Target is already an absolute
// instruction index (the assembler's "@N" form); no fixup is recorded.
func (b *Builder) EmitResolved(in Inst) {
	in.Phase = b.phase
	b.insts = append(b.insts, in)
}

// Branch appends a branch instruction whose Target will be resolved to label.
func (b *Builder) Branch(in Inst, label string) {
	if !in.Op.IsBranch() {
		b.fail(fmt.Errorf("isa: Branch with non-branch opcode %s", in.Op))
		return
	}
	in.Phase = b.phase
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label})
	b.insts = append(b.insts, in)
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Finalize resolves all label references and returns the finished program.
func (b *Builder) Finalize() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", f.label)
		}
		b.insts[f.instIdx].Target = idx
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{
		Insts:     b.insts,
		Name:      b.name,
		NumPhases: b.nPhases,
		Labels:    labels,
	}, nil
}

// MustFinalize is Finalize that panics on error; used where the program shape
// is statically known to be valid (compiler-internal construction).
func (b *Builder) MustFinalize() *Program {
	p, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return p
}
