package isa

import "math"

// IntBinFn evaluates the integer binary operations over 32-bit lane bits
// (int32 values stored in float32 registers). It is shared by the
// co-processor's vector lanes, the scalar core's integer-on-F-register
// execution and the workload DSL's host reference evaluator, guaranteeing
// bit-identical semantics everywhere.
func IntBinFn(op Opcode, a, b float32) (float32, bool) {
	ai := int32(math.Float32bits(a))
	bi := int32(math.Float32bits(b))
	var r int32
	switch op {
	case OpVIAdd, OpSIAdd:
		r = ai + bi
	case OpVISub, OpSISub:
		r = ai - bi
	case OpVIMul, OpSIMul:
		r = ai * bi
	case OpVIAnd, OpSIAnd:
		r = ai & bi
	case OpVIOr, OpSIOr:
		r = ai | bi
	case OpVIXor, OpSIXor:
		r = ai ^ bi
	case OpVIShl, OpSIShl:
		r = ai << (uint32(bi) & 31)
	case OpVIShr, OpSIShr:
		r = ai >> (uint32(bi) & 31)
	case OpVIMax, OpSIMax:
		r = ai
		if bi > ai {
			r = bi
		}
	case OpVIMin, OpSIMin:
		r = ai
		if bi < ai {
			r = bi
		}
	default:
		return 0, false
	}
	return math.Float32frombits(uint32(r)), true
}

// IntBits converts an int32 lane value to its register representation.
func IntBits(v int32) float32 { return math.Float32frombits(uint32(v)) }

// LaneInt converts a register value back to its int32 lane interpretation.
func LaneInt(v float32) int32 { return int32(math.Float32bits(v)) }
