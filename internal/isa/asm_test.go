package isa

import (
	"math"
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	p := MustAssemble("sum", `
		; sum 1..10
		MOVI X0, #0
		MOVI X1, #0
		MOVI X2, #10
	loop:	ADDI X0, X0, #1
		ADD X1, X1, X0
		B.LT X0, X2, loop
		HALT
	`)
	if p.Len() != 7 {
		t.Fatalf("len = %d, want 7", p.Len())
	}
	if p.Insts[5].Op != OpBLT || p.Insts[5].Target != 3 {
		t.Fatalf("branch = %v", p.Insts[5])
	}
	if _, ok := p.Labels["loop"]; !ok {
		t.Fatal("label lost")
	}
}

func TestAssembleEMSIMDAndVector(t *testing.T) {
	p := MustAssemble("em", `
		MOVI X1, #1000
		MSR <OI>, X1
		MSR <VL>, #2
		MRS X3, <status>
		B.NEI X3, #1, @2
		VDUPI Z1, #1.5
		VDUPI Z9, #bits:0x000000ff
		VLD1W Z2, [X8, X0]
		VFADD Z3, Z1, Z2
		VIADD Z4, Z3, Z9
		VFADDV Z3, Z3
		VMOVX0 X6, Z3
		VINSX0 Z3, X6
		VST1W Z3, [X9, X0]
		VWHILE X7, X25, X0
		VWHILE full
		HALT
	`)
	checks := []struct {
		idx int
		op  Opcode
	}{
		{1, OpMSR}, {3, OpMRS}, {4, OpBNEI}, {5, OpVDupI}, {7, OpVLoad},
		{9, OpVIAdd}, {10, OpVFAddV}, {11, OpVMovX0}, {12, OpVInsX0},
		{14, OpVWhile}, {15, OpVWhile},
	}
	for _, c := range checks {
		if p.Insts[c.idx].Op != c.op {
			t.Errorf("inst %d = %s, want %s", c.idx, p.Insts[c.idx].Op, c.op)
		}
	}
	if p.Insts[4].Target != 2 {
		t.Errorf("@2 target = %d", p.Insts[4].Target)
	}
	if p.Insts[6].FImm != IntBits(255) {
		t.Errorf("bit-pattern immediate lost: %v", p.Insts[6].FImm)
	}
	if p.Insts[15].Imm != 1 {
		t.Error("VWHILE full must set Imm 1")
	}
}

func TestAssemblePhaseDirective(t *testing.T) {
	p := MustAssemble("ph", `
		.phase 0
		NOP
		.phase 1
		NOP
		.phase -1
		HALT
	`)
	if p.Insts[0].Phase != 0 || p.Insts[1].Phase != 1 || p.Insts[2].Phase != -1 {
		t.Fatalf("phases = %d %d %d", p.Insts[0].Phase, p.Insts[1].Phase, p.Insts[2].Phase)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"FOO X1, X2",
		"MOVI X1",
		"MOVI X99, #1",
		"MSR <bogus>, X1",
		"VLD1W Z1, [X8]", // vector loads need an index register
		"B.LT X1, X2, nowhere_undefined\nHALT",
		"VDUPI Z1, #bits:xyz",
		"MOVI X1, #notanumber",
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("should fail: %q", src)
		}
	}
}

// TestAssembleDisassembleRoundTrip checks that the disassembler's output
// reassembles into an identical instruction stream, across every opcode the
// formatter can emit.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	b.SetPhase(0)
	b.Emit(Inst{Op: OpMovI, Dst: 1, Imm: -42})
	b.Emit(Inst{Op: OpMov, Dst: 2, Src1: 1})
	b.Emit(Inst{Op: OpAddI, Dst: 2, Src1: 2, Imm: 4})
	b.Emit(Inst{Op: OpSubI, Dst: 2, Src1: 2, Imm: 1})
	b.Emit(Inst{Op: OpMulI, Dst: 2, Src1: 2, Imm: 3})
	b.Emit(Inst{Op: OpAdd, Dst: 3, Src1: 1, Src2: 2})
	b.Emit(Inst{Op: OpSub, Dst: 3, Src1: 3, Src2: XZR})
	b.Emit(Inst{Op: OpRdElems, Dst: 5})
	b.Emit(Inst{Op: OpIncVL, Dst: 6, Src1: 6, Imm: 4})
	b.Emit(Inst{Op: OpVWhile, Dst: 7, Src1: 25, Src2: 0})
	b.Emit(Inst{Op: OpVWhile, Dst: RegNone, Imm: 1})
	b.Emit(Inst{Op: OpMSR, Sys: SysOI, Src1: 1})
	b.Emit(Inst{Op: OpMSR, Sys: SysVL, Src1: RegNone, Imm: 3})
	b.Emit(Inst{Op: OpMRS, Dst: 3, Sys: SysStatus})
	b.Emit(Inst{Op: OpMRS, Dst: 4, Sys: SysDecision})
	b.Emit(Inst{Op: OpSLoadF, Dst: 8, Src1: 9, Imm: 16})
	b.Emit(Inst{Op: OpSStoreF, Dst: 8, Src1: 9, Imm: 0})
	b.Emit(Inst{Op: OpSFMovI, Dst: 1, FImm: 2.5})
	b.Emit(Inst{Op: OpSFAdd, Dst: 1, Src1: 2, Src2: 3})
	b.Emit(Inst{Op: OpSFSqrt, Dst: 1, Src1: 1})
	b.Emit(Inst{Op: OpSIAdd, Dst: 1, Src1: 2, Src2: 3})
	b.Emit(Inst{Op: OpVDupI, Dst: 24, FImm: 0.0009765625})
	b.Emit(Inst{Op: OpVDupI, Dst: 25, FImm: IntBits(-1)}) // NaN-pattern bits
	b.Emit(Inst{Op: OpVDupX, Dst: 1, Src1: 2})
	b.Emit(Inst{Op: OpVLoad, Dst: 2, Src1: 8, Src2: 0})
	b.Emit(Inst{Op: OpVStore, Dst: 2, Src1: 9, Src2: 0})
	b.Emit(Inst{Op: OpVFAdd, Dst: 3, Src1: 1, Src2: 2})
	b.Emit(Inst{Op: OpVFMla, Dst: 3, Src1: 1, Src2: 2})
	b.Emit(Inst{Op: OpVIShl, Dst: 3, Src1: 3, Src2: 4})
	b.Emit(Inst{Op: OpVFAddV, Dst: 31, Src1: 31})
	b.Emit(Inst{Op: OpVMovX0, Dst: 28, Src1: 31})
	b.Emit(Inst{Op: OpVInsX0, Dst: 31, Src1: 28})
	b.Label("top")
	b.Branch(Inst{Op: OpB}, "top")
	b.Branch(Inst{Op: OpBLT, Src1: 1, Src2: 2}, "top")
	b.Branch(Inst{Op: OpBEQI, Src1: 1, Imm: 7}, "top")
	b.Emit(Inst{Op: OpNop})
	b.Emit(Inst{Op: OpHalt})
	p1 := b.MustFinalize()

	p2, err := Assemble("rt2", p1.Disassemble())
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, p1.Disassemble())
	}
	assertSameInsts(t, p1, p2)
}

// assertSameInsts compares the executable content of two programs (labels
// and phase attribution aside).
func assertSameInsts(t *testing.T, p1, p2 *Program) {
	t.Helper()
	if p1.Len() != p2.Len() {
		t.Fatalf("lengths differ: %d vs %d", p1.Len(), p2.Len())
	}
	for i := range p1.Insts {
		a, b := p1.Insts[i], p2.Insts[i]
		a.Phase, b.Phase = 0, 0
		// Compare float immediates by bit pattern (NaN payloads from
		// integer-lane constants must survive).
		if math.Float32bits(a.FImm) != math.Float32bits(b.FImm) {
			t.Fatalf("inst %d FImm bits differ: %08x vs %08x", i,
				math.Float32bits(a.FImm), math.Float32bits(b.FImm))
		}
		a.FImm, b.FImm = 0, 0
		if a != b {
			t.Fatalf("inst %d differs:\n  %v (%+v)\n  %v (%+v)", i, a.String(), a, b.String(), b)
		}
	}
}
