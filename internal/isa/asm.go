package isa

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble parses assembly text into a Program. The syntax is exactly what
// Program.Disassemble emits, plus conveniences for hand-written code:
//
//   - one instruction per line; blank lines are skipped
//   - comments start with ';' or '//'
//   - an optional leading "N:" instruction index (as printed by the
//     disassembler) is ignored
//   - "label:" on its own line defines a label
//   - branch targets are "@N" (absolute instruction index) or a label name
//   - ".phase N" attributes following instructions to phase N (-1 to clear)
//
// Example:
//
//	        MOVI X0, #0
//	        MOVI X1, #10
//	loop:   ADDI X0, X0, #1
//	        B.LT X0, X1, loop
//	        HALT
func Assemble(name, src string) (*Program, error) {
	a := &assembler{b: NewBuilder(name)}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w (%q)", lineNo+1, err, strings.TrimSpace(raw))
		}
	}
	return a.b.Finalize()
}

// MustAssemble panics on error (for statically known-good test programs).
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b *Builder
}

// mnemonics maps names to opcodes, built from the opcode table.
var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, int(opcodeCount))
	for op := Opcode(1); op < opcodeCount; op++ {
		m[op.String()] = op
	}
	return m
}()

func (a *assembler) line(raw string) error {
	// Strip comments.
	if i := strings.Index(raw, ";"); i >= 0 {
		raw = raw[:i]
	}
	if i := strings.Index(raw, "//"); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Optional "N:" index prefix from disassembler output (digits only).
	if i := strings.Index(s, ":"); i >= 0 {
		head := strings.TrimSpace(s[:i])
		if isAllDigits(head) {
			s = strings.TrimSpace(s[i+1:])
			if s == "" {
				return nil
			}
		}
	}
	// Directive.
	if strings.HasPrefix(s, ".phase") {
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(s, ".phase")))
		if err != nil {
			return fmt.Errorf("bad .phase directive")
		}
		a.b.SetPhase(n)
		return nil
	}
	// Label definition (possibly followed by an instruction).
	if i := strings.Index(s, ":"); i >= 0 && !strings.Contains(s[:i], " ") && !isAllDigits(s[:i]) {
		a.b.Label(strings.TrimSpace(s[:i]))
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	// Mnemonic and operand list.
	mn, rest, _ := strings.Cut(s, " ")
	op, ok := mnemonics[mn]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	ops := splitOperands(rest)
	return a.encode(op, ops)
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// splitOperands splits on commas, folding memory operands "[Xn, X0]" back
// together.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	for _, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(cur.String()))
				cur.Reset()
				continue
			}
		}
		cur.WriteRune(c)
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

func (a *assembler) encode(op Opcode, ops []string) error {
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s takes %d operands, got %d", op, n, len(ops))
		}
		return nil
	}
	switch op {
	case OpNop, OpHalt:
		if err := need(0); err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op})
	case OpMSR:
		if err := need(2); err != nil {
			return err
		}
		sys, err := parseSys(ops[0])
		if err != nil {
			return err
		}
		if strings.HasPrefix(ops[1], "#") {
			imm, err := parseImm(ops[1])
			if err != nil {
				return err
			}
			a.b.Emit(Inst{Op: op, Sys: sys, Src1: RegNone, Imm: imm})
		} else {
			r, err := parseX(ops[1])
			if err != nil {
				return err
			}
			a.b.Emit(Inst{Op: op, Sys: sys, Src1: r})
		}
	case OpMRS:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseX(ops[0])
		if err != nil {
			return err
		}
		sys, err := parseSys(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Sys: sys})
	case OpB:
		if err := need(1); err != nil {
			return err
		}
		return a.branch(Inst{Op: op}, ops[0])
	case OpBEQI, OpBNEI:
		if err := need(3); err != nil {
			return err
		}
		s1, err := parseX(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		return a.branch(Inst{Op: op, Src1: s1, Imm: imm}, ops[2])
	case OpBLT, OpBGE, OpBEQ, OpBNE:
		if err := need(3); err != nil {
			return err
		}
		s1, err := parseX(ops[0])
		if err != nil {
			return err
		}
		s2, err := parseX(ops[1])
		if err != nil {
			return err
		}
		return a.branch(Inst{Op: op, Src1: s1, Src2: s2}, ops[2])
	case OpMovI:
		return a.dstImm(op, ops)
	case OpMov:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseX(ops[0])
		if err != nil {
			return err
		}
		s1, err := parseX(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Src1: s1})
	case OpAddI, OpSubI, OpMulI, OpIncVL:
		if err := need(3); err != nil {
			return err
		}
		d, err := parseX(ops[0])
		if err != nil {
			return err
		}
		s1, err := parseX(ops[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Src1: s1, Imm: imm})
	case OpAdd, OpSub:
		if err := need(3); err != nil {
			return err
		}
		d, _ := parseX(ops[0])
		s1, _ := parseX(ops[1])
		s2, err := parseX(ops[2])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
	case OpRdElems:
		if err := need(1); err != nil {
			return err
		}
		d, err := parseX(ops[0])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d})
	case OpVWhile:
		if len(ops) == 1 && ops[0] == "full" {
			a.b.Emit(Inst{Op: op, Dst: RegNone, Imm: 1})
			return nil
		}
		if err := need(3); err != nil {
			return err
		}
		d, _ := parseX(ops[0])
		s1, _ := parseX(ops[1])
		s2, err := parseX(ops[2])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
	case OpSLoadF, OpSStoreF:
		if err := need(2); err != nil {
			return err
		}
		f, err := parseF(ops[0])
		if err != nil {
			return err
		}
		base, imm, _, err := parseMem(ops[1], false)
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: f, Src1: base, Imm: imm})
	case OpSFMovI:
		if err := need(2); err != nil {
			return err
		}
		f, err := parseF(ops[0])
		if err != nil {
			return err
		}
		v, err := parseFImm(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: f, FImm: v})
	case OpSFAbs, OpSFNeg, OpSFSqrt:
		if err := need(2); err != nil {
			return err
		}
		d, _ := parseF(ops[0])
		s1, err := parseF(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Src1: s1})
	case OpSFAdd, OpSFSub, OpSFMul, OpSFDiv, OpSFMax, OpSFMin, OpSFMla,
		OpSIAdd, OpSISub, OpSIMul, OpSIAnd, OpSIOr, OpSIXor, OpSIShl, OpSIShr, OpSIMax, OpSIMin:
		if err := need(3); err != nil {
			return err
		}
		d, _ := parseF(ops[0])
		s1, _ := parseF(ops[1])
		s2, err := parseF(ops[2])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
	case OpVLoad, OpVStore:
		if err := need(2); err != nil {
			return err
		}
		z, err := parseZ(ops[0])
		if err != nil {
			return err
		}
		base, _, idx, err := parseMem(ops[1], true)
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: z, Src1: base, Src2: idx})
	case OpVDupI:
		if err := need(2); err != nil {
			return err
		}
		z, err := parseZ(ops[0])
		if err != nil {
			return err
		}
		v, err := parseFImm(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: z, FImm: v})
	case OpVDupX, OpVInsX0:
		if err := need(2); err != nil {
			return err
		}
		z, _ := parseZ(ops[0])
		x, err := parseX(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: z, Src1: x})
	case OpVMovX0:
		if err := need(2); err != nil {
			return err
		}
		x, _ := parseX(ops[0])
		z, err := parseZ(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: x, Src1: z})
	case OpVFAddV, OpVFAbs, OpVFNeg, OpVFSqrt:
		if err := need(2); err != nil {
			return err
		}
		d, _ := parseZ(ops[0])
		s1, err := parseZ(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Inst{Op: op, Dst: d, Src1: s1})
	default:
		if op.IsVectorCompute() {
			if err := need(3); err != nil {
				return err
			}
			d, _ := parseZ(ops[0])
			s1, _ := parseZ(ops[1])
			s2, err := parseZ(ops[2])
			if err != nil {
				return err
			}
			a.b.Emit(Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
			return nil
		}
		return fmt.Errorf("cannot encode %s", op)
	}
	return nil
}

func (a *assembler) dstImm(op Opcode, ops []string) error {
	if len(ops) != 2 {
		return fmt.Errorf("%s takes 2 operands", op)
	}
	d, err := parseX(ops[0])
	if err != nil {
		return err
	}
	imm, err := parseImm(ops[1])
	if err != nil {
		return err
	}
	a.b.Emit(Inst{Op: op, Dst: d, Imm: imm})
	return nil
}

// branch resolves "@N" absolute targets directly and label names through the
// builder's fixup mechanism.
func (a *assembler) branch(in Inst, target string) error {
	if strings.HasPrefix(target, "@") {
		n, err := strconv.Atoi(target[1:])
		if err != nil || n < 0 {
			return fmt.Errorf("bad branch target %q", target)
		}
		// Absolute targets skip label resolution: emit then patch.
		in.Target = n
		a.b.EmitResolved(in)
		return nil
	}
	a.b.Branch(in, target)
	return nil
}

func parseX(s string) (Reg, error) {
	switch s {
	case "XZR":
		return XZR, nil
	case "XNONE":
		return RegNone, nil
	}
	if !strings.HasPrefix(s, "X") {
		return 0, fmt.Errorf("expected X register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumXRegs {
		return 0, fmt.Errorf("bad X register %q", s)
	}
	return Reg(n), nil
}

func parseF(s string) (Reg, error) {
	if !strings.HasPrefix(s, "F") {
		return 0, fmt.Errorf("expected F register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumFRegs {
		return 0, fmt.Errorf("bad F register %q", s)
	}
	return Reg(n), nil
}

func parseZ(s string) (Reg, error) {
	if !strings.HasPrefix(s, "Z") {
		return 0, fmt.Errorf("expected Z register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumZRegs {
		return 0, fmt.Errorf("bad Z register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("expected immediate, got %q", s)
	}
	return strconv.ParseInt(s[1:], 10, 64)
}

// parseFImm accepts "#1.5", "#1e-3" and "#bits:0x3f800000".
func parseFImm(s string) (float32, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("expected float immediate, got %q", s)
	}
	body := s[1:]
	if strings.HasPrefix(body, "bits:") {
		bits, err := strconv.ParseUint(strings.TrimPrefix(body, "bits:"), 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad bit-pattern immediate %q", s)
		}
		return math.Float32frombits(uint32(bits)), nil
	}
	v, err := strconv.ParseFloat(body, 32)
	if err != nil {
		return 0, fmt.Errorf("bad float immediate %q", s)
	}
	return float32(v), nil
}

// parseMem parses "[Xbase, #imm]" (scalar, indexed=false) or "[Xbase, Xidx]"
// (vector, indexed=true); the second element is optional for scalar form.
func parseMem(s string, indexed bool) (base Reg, imm int64, idx Reg, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, fmt.Errorf("expected memory operand, got %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	base, err = parseX(parts[0])
	if err != nil {
		return 0, 0, 0, err
	}
	if indexed {
		if len(parts) != 2 {
			return 0, 0, 0, fmt.Errorf("vector memory operand needs an index register: %q", s)
		}
		idx, err = parseX(parts[1])
		return base, 0, idx, err
	}
	if len(parts) == 2 {
		imm, err = parseImm(parts[1])
		if err != nil {
			return 0, 0, 0, err
		}
	}
	return base, imm, 0, nil
}

// parseSys resolves a "<name>" system-register operand.
func parseSys(s string) (SysReg, error) {
	for r := SysReg(1); r < sysRegCount; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return SysNone, fmt.Errorf("unknown system register %q", s)
}
