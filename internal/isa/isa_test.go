package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op   Opcode
		want Class
	}{
		{OpAddI, ClassScalar},
		{OpBLT, ClassScalar},
		{OpSLoadF, ClassScalar},
		{OpRdElems, ClassScalar},
		{OpVWhile, ClassScalar},
		{OpVFAdd, ClassSVE},
		{OpVLoad, ClassSVE},
		{OpVStore, ClassSVE},
		{OpVFAddV, ClassSVE},
		{OpMSR, ClassEMSIMD},
		{OpMRS, ClassEMSIMD},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%s.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpVLoad.IsVectorMem() || !OpVStore.IsVectorMem() {
		t.Error("VLD/VST must be vector memory ops")
	}
	if OpVLoad.IsVectorCompute() {
		t.Error("VLD must not be vector compute")
	}
	if !OpVFMla.IsVectorCompute() {
		t.Error("VFMLA must be vector compute")
	}
	if !OpMSR.IsEMSIMD() || OpVFAdd.IsEMSIMD() {
		t.Error("EM-SIMD classification wrong")
	}
	if !OpBNE.IsBranch() || OpAdd.IsBranch() {
		t.Error("branch classification wrong")
	}
	if !OpSLoadF.IsMem() || !OpVStore.IsMem() || OpVFAdd.IsMem() {
		t.Error("memory classification wrong")
	}
	if !OpVFAddV.IsReduction() || OpVFAdd.IsReduction() {
		t.Error("reduction classification wrong")
	}
}

func TestEveryOpcodeHasName(t *testing.T) {
	for op := Opcode(1); op < opcodeCount; op++ {
		if op.String() == "" || op.String() == "OP?" {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if Opcode(200).String() != "OP?" {
		t.Error("out-of-range opcode should stringify defensively")
	}
}

func TestSysRegStrings(t *testing.T) {
	for s := SysReg(0); s < sysRegCount; s++ {
		if s.String() == "" {
			t.Errorf("sysreg %d has no name", s)
		}
	}
	if SysVL.String() != "<VL>" || SysOI.String() != "<OI>" {
		t.Errorf("sysreg names: %s %s", SysVL, SysOI)
	}
}

func TestPackUnpackOIRoundTrip(t *testing.T) {
	f := func(a, b uint16) bool {
		// Quantize to representable values first.
		p := OIPair{Issue: float64(a%4096) / oiScale, Mem: float64(b%4096) / oiScale}
		got := UnpackOI(PackOI(p))
		return got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackOIQuantizationError(t *testing.T) {
	f := func(a, b uint32) bool {
		p := OIPair{Issue: float64(a%100000) / 997.0, Mem: float64(b%100000) / 997.0}
		got := UnpackOI(PackOI(p))
		return math.Abs(got.Issue-p.Issue) <= 1.0/oiScale && math.Abs(got.Mem-p.Mem) <= 1.0/oiScale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackOISaturates(t *testing.T) {
	p := UnpackOI(PackOI(OIPair{Issue: 1e9, Mem: -5}))
	if p.Issue < 250 {
		t.Errorf("huge OI should saturate high, got %v", p.Issue)
	}
	if p.Mem != 0 {
		t.Errorf("negative OI should clamp to zero, got %v", p.Mem)
	}
}

func TestOIZeroPair(t *testing.T) {
	if !(OIPair{}).IsZero() {
		t.Error("zero pair must report IsZero")
	}
	if (OIPair{Issue: 0.5}).IsZero() {
		t.Error("non-zero pair must not report IsZero")
	}
	if UnpackOI(0) != (OIPair{}) {
		t.Error("raw 0 must decode to the zero pair")
	}
}

func TestBuilderResolvesForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("branches")
	b.Label("top")
	b.Emit(Inst{Op: OpAddI, Dst: 0, Src1: 0, Imm: 1})
	b.Branch(Inst{Op: OpBLT, Src1: 0, Src2: 1}, "top")  // backward
	b.Branch(Inst{Op: OpBNE, Src1: 0, Src2: 1}, "done") // forward
	b.Emit(Inst{Op: OpNop})
	b.Label("done")
	b.Emit(Inst{Op: OpHalt})
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != 0 {
		t.Errorf("backward branch target = %d, want 0", p.Insts[1].Target)
	}
	if p.Insts[2].Target != 4 {
		t.Errorf("forward branch target = %d, want 4", p.Insts[2].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Branch(Inst{Op: OpB}, "nowhere")
	if _, err := b.Finalize(); err == nil {
		t.Fatal("want error for undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
	if _, err := b.Finalize(); err == nil {
		t.Fatal("want error for duplicate label")
	}
}

func TestBuilderRejectsNonBranchInBranch(t *testing.T) {
	b := NewBuilder("notbranch")
	b.Label("l")
	b.Branch(Inst{Op: OpAdd}, "l")
	if _, err := b.Finalize(); err == nil {
		t.Fatal("want error for non-branch opcode in Branch")
	}
}

func TestBuilderPhaseAttribution(t *testing.T) {
	b := NewBuilder("phases")
	b.Emit(Inst{Op: OpNop})
	b.SetPhase(0)
	b.Emit(Inst{Op: OpNop})
	b.SetPhase(1)
	b.Emit(Inst{Op: OpNop})
	b.SetPhase(-1)
	b.Emit(Inst{Op: OpHalt})
	p := b.MustFinalize()
	wantPhases := []int{-1, 0, 1, -1}
	for i, w := range wantPhases {
		if p.Insts[i].Phase != w {
			t.Errorf("inst %d phase = %d, want %d", i, p.Insts[i].Phase, w)
		}
	}
	if p.NumPhases != 2 {
		t.Errorf("NumPhases = %d, want 2", p.NumPhases)
	}
}

func TestDisassembleMentionsEveryMnemonic(t *testing.T) {
	b := NewBuilder("disasm")
	b.Emit(Inst{Op: OpMovI, Dst: 1, Imm: 42})
	b.Emit(Inst{Op: OpMSR, Sys: SysVL, Src1: 2})
	b.Emit(Inst{Op: OpMSR, Sys: SysOI, Src1: RegNone, Imm: 7})
	b.Emit(Inst{Op: OpMRS, Dst: 3, Sys: SysDecision})
	b.Emit(Inst{Op: OpVLoad, Dst: 4, Src1: 5})
	b.Emit(Inst{Op: OpVStore, Dst: 4, Src1: 5})
	b.Emit(Inst{Op: OpVFMla, Dst: 1, Src1: 2, Src2: 3})
	b.Label("l")
	b.Branch(Inst{Op: OpBNEI, Src1: 1, Imm: 1}, "l")
	b.Emit(Inst{Op: OpHalt})
	p := b.MustFinalize()
	d := p.Disassemble()
	for _, frag := range []string{"MOVI", "MSR <VL>", "MSR <OI>, #7", "MRS X3, <decision>", "VLD1W Z4, [X5, X0]", "VST1W", "VFMLA", "B.NEI", "HALT"} {
		if !strings.Contains(d, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, d)
		}
	}
}

func TestProgramAtAndLen(t *testing.T) {
	b := NewBuilder("p")
	b.Emit(Inst{Op: OpNop})
	b.Emit(Inst{Op: OpHalt})
	p := b.MustFinalize()
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.At(1).Op != OpHalt {
		t.Fatalf("At(1) = %v", p.At(1).Op)
	}
}
