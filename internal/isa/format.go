package isa

import (
	"fmt"
	"math"
	"strconv"
)

// String renders one instruction in the assembly syntax accepted by
// Assemble; Program.Disassemble output round-trips through the assembler.
func (in Inst) String() string {
	op := in.Op
	switch {
	case op == OpNop, op == OpHalt:
		return op.String()
	case op == OpMSR:
		if in.Src1 == RegNone {
			return fmt.Sprintf("%s %s, #%d", op, in.Sys, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s", op, in.Sys, xreg(in.Src1))
	case op == OpMRS:
		return fmt.Sprintf("%s %s, %s", op, xreg(in.Dst), in.Sys)
	case op == OpB:
		return fmt.Sprintf("%s @%d", op, in.Target)
	case op == OpBEQI, op == OpBNEI:
		return fmt.Sprintf("%s %s, #%d, @%d", op, xreg(in.Src1), in.Imm, in.Target)
	case op.IsBranch():
		return fmt.Sprintf("%s %s, %s, @%d", op, xreg(in.Src1), xreg(in.Src2), in.Target)
	case op == OpMovI:
		return fmt.Sprintf("%s %s, #%d", op, xreg(in.Dst), in.Imm)
	case op == OpMov:
		return fmt.Sprintf("%s %s, %s", op, xreg(in.Dst), xreg(in.Src1))
	case op == OpAddI, op == OpSubI, op == OpMulI:
		return fmt.Sprintf("%s %s, %s, #%d", op, xreg(in.Dst), xreg(in.Src1), in.Imm)
	case op == OpAdd, op == OpSub:
		return fmt.Sprintf("%s %s, %s, %s", op, xreg(in.Dst), xreg(in.Src1), xreg(in.Src2))
	case op == OpRdElems:
		return fmt.Sprintf("%s %s", op, xreg(in.Dst))
	case op == OpIncVL:
		return fmt.Sprintf("%s %s, %s, #%d", op, xreg(in.Dst), xreg(in.Src1), in.Imm)
	case op == OpVWhile:
		if in.Imm == 1 {
			return fmt.Sprintf("%s full", op)
		}
		return fmt.Sprintf("%s %s, %s, %s", op, xreg(in.Dst), xreg(in.Src1), xreg(in.Src2))
	case op == OpSLoadF:
		return fmt.Sprintf("%s F%d, [%s, #%d]", op, in.Dst, xreg(in.Src1), in.Imm)
	case op == OpSStoreF:
		return fmt.Sprintf("%s F%d, [%s, #%d]", op, in.Dst, xreg(in.Src1), in.Imm)
	case op == OpSFMovI:
		return fmt.Sprintf("%s F%d, #%s", op, in.Dst, fimm(in.FImm))
	case op == OpSFAbs, op == OpSFNeg, op == OpSFSqrt:
		return fmt.Sprintf("%s F%d, F%d", op, in.Dst, in.Src1)
	case op.Class() == ClassScalar && (op == OpSFAdd || op == OpSFSub || op == OpSFMul ||
		op == OpSFDiv || op == OpSFMax || op == OpSFMin || op == OpSFMla ||
		op == OpSIAdd || op == OpSISub || op == OpSIMul || op == OpSIAnd ||
		op == OpSIOr || op == OpSIXor || op == OpSIShl || op == OpSIShr ||
		op == OpSIMax || op == OpSIMin):
		return fmt.Sprintf("%s F%d, F%d, F%d", op, in.Dst, in.Src1, in.Src2)
	case op == OpVLoad:
		return fmt.Sprintf("%s Z%d, [%s, %s]", op, in.Dst, xreg(in.Src1), xreg(in.Src2))
	case op == OpVStore:
		return fmt.Sprintf("%s Z%d, [%s, %s]", op, in.Dst, xreg(in.Src1), xreg(in.Src2))
	case op == OpVDupI:
		return fmt.Sprintf("%s Z%d, #%s", op, in.Dst, fimm(in.FImm))
	case op == OpVDupX, op == OpVInsX0:
		return fmt.Sprintf("%s Z%d, %s", op, in.Dst, xreg(in.Src1))
	case op == OpVMovX0:
		return fmt.Sprintf("%s %s, Z%d", op, xreg(in.Dst), in.Src1)
	case op == OpVFAddV:
		return fmt.Sprintf("%s Z%d, Z%d", op, in.Dst, in.Src1)
	case op == OpVFAbs, op == OpVFNeg, op == OpVFSqrt:
		return fmt.Sprintf("%s Z%d, Z%d", op, in.Dst, in.Src1)
	case op.IsVectorCompute():
		return fmt.Sprintf("%s Z%d, Z%d, Z%d", op, in.Dst, in.Src1, in.Src2)
	default:
		return fmt.Sprintf("%s ?", op)
	}
}

// xreg renders a scalar register, using the architectural alias for X31.
func xreg(r Reg) string {
	if r == XZR {
		return "XZR"
	}
	if r == RegNone {
		return "XNONE"
	}
	return fmt.Sprintf("X%d", r)
}

// fimm renders a float immediate so that parsing recovers the exact bits;
// non-finite values (e.g. integer-lane constants whose bits form NaN
// payloads) are rendered as raw bit patterns.
func fimm(v float32) string {
	if f64 := float64(v); math.IsNaN(f64) || math.IsInf(f64, 0) {
		return fmt.Sprintf("bits:0x%08x", math.Float32bits(v))
	}
	return strconv.FormatFloat(float64(v), 'g', -1, 32)
}
