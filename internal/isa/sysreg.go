package isa

// SysReg enumerates the dedicated registers of the EM-SIMD ISA (Table 1 of
// the paper) plus the architectural SVE vector-length control register <ZCR>
// that the hardware mirrors the configured length into (§4.2.2).
type SysReg uint8

const (
	// SysNone marks instructions without a system-register operand.
	SysNone SysReg = iota
	// SysOI holds the operational intensity of the current phase. Written
	// with the phase's OI pair at phase entry and with 0 at phase exit;
	// each write triggers the lane manager (§5). The 32-bit register packs
	// the pair (oi_issue, oi_mem) of Eq. 5 as two 16-bit fixed-point
	// fields; package coproc provides the packing helpers.
	SysOI
	// SysDecision holds the lane-partition plan entry for this core: the
	// suggested vector length in 128-bit granules.
	SysDecision
	// SysVL holds the configured (current) vector length in granules.
	// Writing it requests reconfiguration; success is reported in
	// <status> (§4.2.2).
	SysVL
	// SysStatus reads 1 if the previous <VL> write succeeded and 0 if it
	// failed (not enough free lanes, §4.2.2).
	SysStatus
	// SysAL holds the number of free (unassigned) ExeBUs, shared by all
	// cores.
	SysAL
	// SysZCR is the SVE vector-length control register of the scalar
	// core, updated by the hardware when a <VL> write succeeds.
	SysZCR

	sysRegCount
)

var sysRegNames = [sysRegCount]string{
	SysNone:     "<none>",
	SysOI:       "<OI>",
	SysDecision: "<decision>",
	SysVL:       "<VL>",
	SysStatus:   "<status>",
	SysAL:       "<AL>",
	SysZCR:      "<ZCR>",
}

func (s SysReg) String() string {
	if s >= sysRegCount {
		return "<sysreg?>"
	}
	return sysRegNames[s]
}

// OIPair is the decoded content of the <OI> register: the two operational
// intensities of Eq. 5. A zero pair means "not executing any phase" and is
// what the phase epilogue writes.
type OIPair struct {
	// Issue is <OI>.issue: compute instructions per byte moved by memory
	// instructions (no reuse discount), which bounds attainable
	// performance through the SIMD issue bandwidth ceiling.
	Issue float64
	// Mem is <OI>.mem: compute instructions per byte of per-iteration
	// memory footprint with data reuse considered, which bounds
	// attainable performance through the memory bandwidth ceiling.
	Mem float64
}

// IsZero reports whether the pair denotes "no active phase".
func (p OIPair) IsZero() bool { return p.Issue == 0 && p.Mem == 0 }

// oiScale is the fixed-point scale used to pack OI values into the 32-bit
// <OI> register (two 16-bit fields, 1/256 FLOP-per-byte resolution).
const oiScale = 256

// PackOI encodes an OIPair into the 32-bit <OI> register format. Values are
// saturated to the representable range [0, 255.996].
func PackOI(p OIPair) uint32 {
	return uint32(packOIField(p.Issue))<<16 | uint32(packOIField(p.Mem))
}

func packOIField(v float64) uint16 {
	if v <= 0 {
		return 0
	}
	scaled := v*oiScale + 0.5
	if scaled >= 1<<16 {
		return 1<<16 - 1
	}
	return uint16(scaled)
}

// UnpackOI decodes the 32-bit <OI> register format.
func UnpackOI(raw uint32) OIPair {
	return OIPair{
		Issue: float64(raw>>16) / oiScale,
		Mem:   float64(raw&0xFFFF) / oiScale,
	}
}
