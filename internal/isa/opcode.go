// Package isa defines the instruction set simulated by this repository: a
// compact SVE-like vector-length-agnostic vector ISA plus the EM-SIMD
// extension of the paper (Table 1) — five dedicated system registers accessed
// through MRS/MSR that let software describe phase behaviour and request
// vector-length reconfiguration.
//
// Vector widths follow the paper's granularity: the unit of vector-length
// configuration is one 128-bit granule (one ExeBU), i.e. four 32-bit lanes.
// A core whose <VL> register holds l executes vector instructions over
// l granules = 4*l fp32 elements.
package isa

// GranuleElems is the number of 32-bit lanes per 128-bit vector-length
// granule (the minimum ARM SVE vector length, §3.2).
const GranuleElems = 4

// GranuleBytes is the byte width of one vector-length granule.
const GranuleBytes = 16

// Opcode enumerates every instruction the simulator executes.
type Opcode uint8

const (
	// OpInvalid is the zero Opcode and never appears in a valid program.
	OpInvalid Opcode = iota

	// --- Scalar integer / control flow (executed by the scalar core) ---

	OpNop  // no operation
	OpHalt // terminate the program on this core
	OpMovI // Xd = Imm
	OpAddI // Xd = Xs1 + Imm
	OpAdd  // Xd = Xs1 + Xs2
	OpSub  // Xd = Xs1 - Xs2
	OpSubI // Xd = Xs1 - Imm
	OpMulI // Xd = Xs1 * Imm
	OpMov  // Xd = Xs1
	OpB    // unconditional branch to Target
	OpBLT  // branch to Target if Xs1 < Xs2
	OpBGE  // branch to Target if Xs1 >= Xs2
	OpBEQ  // branch to Target if Xs1 == Xs2
	OpBNE  // branch to Target if Xs1 != Xs2
	OpBEQI // branch to Target if Xs1 == Imm
	OpBNEI // branch to Target if Xs1 != Imm

	// --- Scalar floating point (for non-vectorized code versions) ---

	OpSLoadF  // Fd = mem[Xs1 + Imm] (4 bytes)
	OpSStoreF // mem[Xs1 + Imm] = Fs (4 bytes); Fs is carried in Dst
	OpSFAdd   // Fd = Fs1 + Fs2
	OpSFSub   // Fd = Fs1 - Fs2
	OpSFMul   // Fd = Fs1 * Fs2
	OpSFDiv   // Fd = Fs1 / Fs2
	OpSFMax   // Fd = max(Fs1, Fs2)
	OpSFMin   // Fd = min(Fs1, Fs2)
	OpSFMla   // Fd = Fd + Fs1*Fs2
	OpSFAbs   // Fd = |Fs1|
	OpSFNeg   // Fd = -Fs1
	OpSFSqrt  // Fd = sqrt(Fs1)
	OpSFMovI  // Fd = FImm

	// --- Scalar integer-on-FP-register ops for the non-vectorized
	// versions of integer kernels (bits of the F registers reinterpreted
	// as int32) ---

	OpSIAdd // Fd = bits(int32(Fs1) + int32(Fs2))
	OpSISub // Fd = bits(int32(Fs1) - int32(Fs2))
	OpSIMul // Fd = bits(int32(Fs1) * int32(Fs2))
	OpSIAnd // Fd = Fs1 & Fs2
	OpSIOr  // Fd = Fs1 | Fs2
	OpSIXor // Fd = Fs1 ^ Fs2
	OpSIShl // Fd = bits(int32(Fs1) << (Fs2 & 31))
	OpSIShr // Fd = bits(int32(Fs1) >> (Fs2 & 31))
	OpSIMax // Fd = bits(max(int32(Fs1), int32(Fs2)))
	OpSIMin // Fd = bits(min(int32(Fs1), int32(Fs2)))

	// --- Vector-length helpers (scalar results derived from <VL>) ---

	OpRdElems // Xd = number of active fp32 elements (4 * current <VL>)
	OpIncVL   // Xd = Xs1 + Imm * (4 * current <VL>)  (Imm usually elem bytes)

	// --- SVE-like vector compute (transmitted to the co-processor) ---

	OpVDupI  // Zd[all lanes] = FImm
	OpVDupX  // Zd[all lanes] = float32(Xs1)
	OpVFAdd  // Zd = Zs1 + Zs2
	OpVFSub  // Zd = Zs1 - Zs2
	OpVFMul  // Zd = Zs1 * Zs2
	OpVFDiv  // Zd = Zs1 / Zs2
	OpVFMla  // Zd = Zd + Zs1*Zs2
	OpVFMax  // Zd = max(Zs1, Zs2)
	OpVFMin  // Zd = min(Zs1, Zs2)
	OpVFNeg  // Zd = -Zs1
	OpVFAbs  // Zd = |Zs1|
	OpVFSqrt // Zd = sqrt(Zs1) (approximate unit: same pipe as VFDiv)
	OpVFAddV // Zd[0] = horizontal sum of active lanes of Zs1; other lanes 0

	// --- SVE-like integer vector compute (int32 lanes, reinterpreting the
	// register bits; §4.2.1: ExeBUs support "all integer/float-point data
	// types specified in ARMv8-A") ---

	OpVIAdd // Zd = int32(Zs1) + int32(Zs2)
	OpVISub // Zd = int32(Zs1) - int32(Zs2)
	OpVIMul // Zd = int32(Zs1) * int32(Zs2)
	OpVIAnd // Zd = Zs1 & Zs2
	OpVIOr  // Zd = Zs1 | Zs2
	OpVIXor // Zd = Zs1 ^ Zs2
	OpVIShl // Zd = int32(Zs1) << (Zs2 & 31)
	OpVIShr // Zd = int32(Zs1) >> (Zs2 & 31), arithmetic
	OpVIMax // Zd = max(int32(Zs1), int32(Zs2))
	OpVIMin // Zd = min(int32(Zs1), int32(Zs2))

	// --- Lane-0 transfers between the vector unit and scalar registers,
	// used by the compiler's reduction fix-up across vector-length changes
	// (§6.4): partial results survive reconfiguration in a scalar register
	// because freed RegBlk contents are not preserved (§4.2.2). ---

	OpVMovX0 // Xd = float bits of lane 0 of Zs1
	OpVInsX0 // Zd = {float32frombits(Xs1), 0, 0, ...}

	// --- SVE-like vector memory (transmitted to the co-processor) ---

	OpVLoad  // Zd = mem[Xs1 + 4*Xs2 ...], unit stride fp32, scaled index
	OpVStore // mem[Xs1 + 4*Xs2 ...] = Zd (Dst carries the data register)

	// --- Predicate management for remainder iterations ---

	OpVWhile // set per-core tail predicate: active = clamp(Xs1-Xs2 elems, 0, 4*<VL>); Xd = active

	// --- EM-SIMD extension (Table 1 system registers via MRS/MSR) ---

	OpMSR // write system register Sys from Xs1 (or Imm if Xs1 == RegNone)
	OpMRS // read system register Sys into Xd

	opcodeCount // sentinel; keep last
)

// opcodeInfo captures static properties of each opcode.
type opcodeInfo struct {
	name    string
	class   Class
	memOp   bool // vector or scalar memory access
	branch  bool
	reduces bool // horizontal reduction
}

// Class partitions opcodes the way Table 2 of the paper does: scalar
// instructions handled entirely by the scalar core, SVE instructions executed
// by the co-processor's SIMD data paths, and EM-SIMD instructions executed by
// the co-processor's in-order EM-SIMD data path.
type Class uint8

const (
	ClassScalar Class = iota
	ClassSVE
	ClassEMSIMD
)

func (c Class) String() string {
	switch c {
	case ClassScalar:
		return "Scalar"
	case ClassSVE:
		return "SVE"
	case ClassEMSIMD:
		return "EM-SIMD"
	}
	return "Class?"
}

var opcodeTable = [opcodeCount]opcodeInfo{
	OpInvalid: {name: "INVALID", class: ClassScalar},

	OpNop:  {name: "NOP", class: ClassScalar},
	OpHalt: {name: "HALT", class: ClassScalar},
	OpMovI: {name: "MOVI", class: ClassScalar},
	OpAddI: {name: "ADDI", class: ClassScalar},
	OpAdd:  {name: "ADD", class: ClassScalar},
	OpSub:  {name: "SUB", class: ClassScalar},
	OpSubI: {name: "SUBI", class: ClassScalar},
	OpMulI: {name: "MULI", class: ClassScalar},
	OpMov:  {name: "MOV", class: ClassScalar},
	OpB:    {name: "B", class: ClassScalar, branch: true},
	OpBLT:  {name: "B.LT", class: ClassScalar, branch: true},
	OpBGE:  {name: "B.GE", class: ClassScalar, branch: true},
	OpBEQ:  {name: "B.EQ", class: ClassScalar, branch: true},
	OpBNE:  {name: "B.NE", class: ClassScalar, branch: true},
	OpBEQI: {name: "B.EQI", class: ClassScalar, branch: true},
	OpBNEI: {name: "B.NEI", class: ClassScalar, branch: true},

	OpSLoadF:  {name: "SLDF", class: ClassScalar, memOp: true},
	OpSStoreF: {name: "SSTF", class: ClassScalar, memOp: true},
	OpSFAdd:   {name: "SFADD", class: ClassScalar},
	OpSFSub:   {name: "SFSUB", class: ClassScalar},
	OpSFMul:   {name: "SFMUL", class: ClassScalar},
	OpSFDiv:   {name: "SFDIV", class: ClassScalar},
	OpSFMax:   {name: "SFMAX", class: ClassScalar},
	OpSFMin:   {name: "SFMIN", class: ClassScalar},
	OpSFMla:   {name: "SFMLA", class: ClassScalar},
	OpSFAbs:   {name: "SFABS", class: ClassScalar},
	OpSFNeg:   {name: "SFNEG", class: ClassScalar},
	OpSFSqrt:  {name: "SFSQRT", class: ClassScalar},
	OpSFMovI:  {name: "SFMOVI", class: ClassScalar},
	OpSIAdd:   {name: "SIADD", class: ClassScalar},
	OpSISub:   {name: "SISUB", class: ClassScalar},
	OpSIMul:   {name: "SIMUL", class: ClassScalar},
	OpSIAnd:   {name: "SIAND", class: ClassScalar},
	OpSIOr:    {name: "SIOR", class: ClassScalar},
	OpSIXor:   {name: "SIXOR", class: ClassScalar},
	OpSIShl:   {name: "SISHL", class: ClassScalar},
	OpSIShr:   {name: "SISHR", class: ClassScalar},
	OpSIMax:   {name: "SIMAX", class: ClassScalar},
	OpSIMin:   {name: "SIMIN", class: ClassScalar},

	OpRdElems: {name: "RDELEMS", class: ClassScalar},
	OpIncVL:   {name: "INCVL", class: ClassScalar},

	OpVDupI:  {name: "VDUPI", class: ClassSVE},
	OpVDupX:  {name: "VDUPX", class: ClassSVE},
	OpVFAdd:  {name: "VFADD", class: ClassSVE},
	OpVFSub:  {name: "VFSUB", class: ClassSVE},
	OpVFMul:  {name: "VFMUL", class: ClassSVE},
	OpVFDiv:  {name: "VFDIV", class: ClassSVE},
	OpVFMla:  {name: "VFMLA", class: ClassSVE},
	OpVFMax:  {name: "VFMAX", class: ClassSVE},
	OpVFMin:  {name: "VFMIN", class: ClassSVE},
	OpVFNeg:  {name: "VFNEG", class: ClassSVE},
	OpVFAbs:  {name: "VFABS", class: ClassSVE},
	OpVFSqrt: {name: "VFSQRT", class: ClassSVE},
	OpVFAddV: {name: "VFADDV", class: ClassSVE, reduces: true},
	OpVIAdd:  {name: "VIADD", class: ClassSVE},
	OpVISub:  {name: "VISUB", class: ClassSVE},
	OpVIMul:  {name: "VIMUL", class: ClassSVE},
	OpVIAnd:  {name: "VIAND", class: ClassSVE},
	OpVIOr:   {name: "VIOR", class: ClassSVE},
	OpVIXor:  {name: "VIXOR", class: ClassSVE},
	OpVIShl:  {name: "VISHL", class: ClassSVE},
	OpVIShr:  {name: "VISHR", class: ClassSVE},
	OpVIMax:  {name: "VIMAX", class: ClassSVE},
	OpVIMin:  {name: "VIMIN", class: ClassSVE},
	OpVMovX0: {name: "VMOVX0", class: ClassSVE},
	OpVInsX0: {name: "VINSX0", class: ClassSVE},

	OpVLoad:  {name: "VLD1W", class: ClassSVE, memOp: true},
	OpVStore: {name: "VST1W", class: ClassSVE, memOp: true},

	OpVWhile: {name: "VWHILE", class: ClassScalar},

	OpMSR: {name: "MSR", class: ClassEMSIMD},
	OpMRS: {name: "MRS", class: ClassEMSIMD},
}

// String returns the assembly mnemonic.
func (op Opcode) String() string {
	if op >= opcodeCount {
		return "OP?"
	}
	return opcodeTable[op].name
}

// Class reports which Table 2 instruction class op belongs to.
func (op Opcode) Class() Class {
	if op >= opcodeCount {
		return ClassScalar
	}
	return opcodeTable[op].class
}

// IsVector reports whether op executes on the co-processor SIMD data paths.
func (op Opcode) IsVector() bool { return op.Class() == ClassSVE }

// IsVectorMem reports whether op is an SVE load or store.
func (op Opcode) IsVectorMem() bool { return op.Class() == ClassSVE && opcodeTable[op].memOp }

// IsVectorCompute reports whether op is an SVE compute instruction (the kind
// counted by the paper's SIMD issue-rate and utilization metrics).
func (op Opcode) IsVectorCompute() bool { return op.Class() == ClassSVE && !opcodeTable[op].memOp }

// IsEMSIMD reports whether op is part of the EM-SIMD extension.
func (op Opcode) IsEMSIMD() bool { return op.Class() == ClassEMSIMD }

// IsBranch reports whether op may redirect scalar control flow.
func (op Opcode) IsBranch() bool {
	if op >= opcodeCount {
		return false
	}
	return opcodeTable[op].branch
}

// IsMem reports whether op accesses memory (scalar or vector).
func (op Opcode) IsMem() bool {
	if op >= opcodeCount {
		return false
	}
	return opcodeTable[op].memOp
}

// IsReduction reports whether op performs a horizontal reduction.
func (op Opcode) IsReduction() bool {
	if op >= opcodeCount {
		return false
	}
	return opcodeTable[op].reduces
}
