package workload

// synthSpec describes a synthesized kernel by its per-iteration instruction
// mix; synth turns it into an executable kernel whose Eq. 5 operational
// intensities match Table 3.
type synthSpec struct {
	name string
	// reads is the number of distinct input streams (each contributes one
	// load instruction at offset 0).
	reads int
	// reuse is the number of *extra* load instructions that re-touch
	// already-counted streams at stencil offsets; they add issue bytes
	// but no footprint, making oi_issue < oi_mem.
	reuse int
	// stores is the number of output streams (one store each).
	stores int
	// computes is the number of SIMD compute instructions.
	computes int
	elems    int
	repeats  int
	// publishedOI is Table 3's oi_mem for validation.
	publishedOI float64
}

// synth builds a deterministic kernel from a spec. The statement bodies fold
// the loaded values with alternating add/multiply chains and pad with
// constant operations until the compute budget is met, so every kernel has
// real value semantics.
func synth(s synthSpec) *Kernel {
	k := &Kernel{
		Name:        s.name,
		Elems:       s.elems,
		Repeats:     s.repeats,
		PublishedOI: s.publishedOI,
	}
	for r := 0; r < s.reads; r++ {
		k.Slots = append(k.Slots, LoadSlot{Stream: r, Offset: 0})
	}
	for d := 0; d < s.reuse; d++ {
		// Reuse loads alternate between a -1 and +1 stencil offset on
		// the existing streams: extra instructions, same footprint.
		off := 1
		if d%2 == 1 {
			off = -1
		}
		k.Slots = append(k.Slots, LoadSlot{Stream: d % s.reads, Offset: off})
	}

	// Distribute load slots round-robin over the store statements, then
	// hand out the compute budget.
	slotsPerStmt := make([][]int, s.stores)
	for i := range k.Slots {
		j := i % s.stores
		slotsPerStmt[j] = append(slotsPerStmt[j], i)
	}
	budget := s.computes
	ops := []*Expr{}
	for j := 0; j < s.stores; j++ {
		var e *Expr
		for n, slot := range slotsPerStmt[j] {
			if e == nil {
				e = Slot(slot)
				continue
			}
			if budget == 0 {
				break // out of compute budget: remaining loads stay dead
			}
			if n%2 == 1 {
				e = Add(e, Slot(slot))
			} else {
				e = Mul(e, Slot(slot))
			}
			budget--
		}
		if e == nil {
			e = Const(1)
		}
		ops = append(ops, e)
	}
	// Pad the remaining compute budget round-robin across statements.
	perStmt := make([]int, s.stores)
	for j := 0; budget > 0; j = (j + 1) % s.stores {
		perStmt[j]++
		budget--
	}
	for j := 0; j < s.stores; j++ {
		fork := Slot(0) // every kernel has at least one load slot
		if len(slotsPerStmt[j]) > 0 {
			fork = Slot(slotsPerStmt[j][0])
		}
		ops[j] = padWithILP(ops[j], fork, perStmt[j])
	}
	for j := 0; j < s.stores; j++ {
		k.Stmts = append(k.Stmts, Stmt{Out: s.reads + j, E: ops[j]})
	}
	return k
}

// padConsts are well-conditioned literals for the padding operations; using
// distinct values per lane keeps the constant pool realistic.
var padConsts = [4]float32{1.0009765625, 0.0009765625, 0.9990234375, 0.001953125}

// padWithILP appends exactly n extra operation nodes onto e. Real vectorized
// loop bodies are not single dependency chains — compilers and source code
// expose instruction-level parallelism — so for larger budgets the padding
// is built as up to four parallel chains (the extra chains forking from the
// load-slot leaf `fork`, so the expression stays a tree and the instruction
// count exact) that are summed at the end, keeping the critical path near
// n/4 instead of n. Smaller budgets degenerate to a plain chain.
func padWithILP(e, fork *Expr, n int) *Expr {
	if n <= 0 {
		return e
	}
	if n < 6 {
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				e = Mul(e, Const(padConsts[0]))
			} else {
				e = Add(e, Const(padConsts[1]))
			}
		}
		return e
	}
	// Parallel form: 2 or 4 chains. Overhead: (lanes-1) inits plus
	// (lanes-1) combines; the rest pads the chains round-robin.
	lanes := 2
	if n >= 10 {
		lanes = 4
	}
	overhead := 2 * (lanes - 1)
	padding := n - overhead
	chains := make([]*Expr, lanes)
	chains[0] = e
	for i := 1; i < lanes; i++ {
		chains[i] = Mul(&Expr{Kind: fork.Kind, Slot: fork.Slot, Val: fork.Val}, Const(padConsts[i%4])) // init: 1 op each
	}
	for i := 0; padding > 0; i = (i + 1) % lanes {
		if i%2 == 0 {
			chains[i] = Add(chains[i], Const(padConsts[1]))
		} else {
			chains[i] = Mul(chains[i], Const(padConsts[2]))
		}
		padding--
	}
	// Combine: lanes-1 adds, tree-shaped.
	for len(chains) > 1 {
		var next []*Expr
		for i := 0; i+1 < len(chains); i += 2 {
			next = append(next, Add(chains[i], chains[i+1]))
		}
		if len(chains)%2 == 1 {
			next = append(next, chains[len(chains)-1])
		}
		chains = next
	}
	return chains[0]
}
