package workload

import (
	"testing"
)

// FuzzParseExpr hardens the expression parser: it must never panic, and
// anything it accepts must render back into something it accepts again with
// identical evaluation.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"s0", "c1.5", "mul(s0, s1)", "add(mul(s0, c2.5), s1)",
		"sqrt(abs(neg(s3)))", "min(max(s0,c0),c1)", "div(s0,s1)",
		"", "s", "c", "mul(", "mul(s0", "mul(s0,)", "x(s0,s1)",
		"c1e9", "s999", "c-0.0", "add(add(add(s0,s0),s0),s0)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := FormatExpr(e)
		e2, err := ParseExpr(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, rendered, err)
		}
		vals := []float32{1, 2, 3, 4, 5, 6, 7, 8}
		// Expressions may reference slots beyond the fixed slice; cap.
		if m := maxSlot(e); m >= len(vals) {
			return
		}
		a, b := evalExpr(e, vals), evalExpr(e2, vals)
		if a != b && (a == a || b == b) { // NaN-tolerant
			t.Fatalf("%q evaluates to %v but its rendering to %v", src, a, b)
		}
	})
}

// FuzzParseWorkloadJSON hardens the JSON loader: arbitrary input must never
// panic, and accepted documents must produce valid kernels.
func FuzzParseWorkloadJSON(f *testing.F) {
	f.Add([]byte(saxpyJSON))
	f.Add([]byte(`{"name":"x","phases":[{"kernel":"k","elems":64,"loads":[{"stream":0}],"statements":[{"out":1,"expr":"s0"}]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"phases":[]}`))
	f.Add([]byte(`{"name":"r","phases":[{"kernel":"k","elems":64,"reduction":true,"loads":[{"stream":0}],"statements":[{"out":0,"expr":"mul(s0,s0)"}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ParseWorkloadJSON(data)
		if err != nil {
			return
		}
		for _, k := range w.Phases {
			if err := k.Validate(); err != nil {
				t.Fatalf("accepted workload with invalid kernel: %v", err)
			}
			oi := k.OI()
			if oi.Mem < 0 || oi.Issue < 0 {
				t.Fatalf("negative OI %+v", oi)
			}
		}
		// Accepted workloads must survive the marshal round trip.
		out, err := MarshalWorkloadJSON(w)
		if err != nil {
			t.Fatalf("marshal of accepted workload failed: %v", err)
		}
		if _, err := ParseWorkloadJSON(out); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
	})
}
