package workload

import (
	"math"
	"testing"
	"testing/quick"

	"occamy/internal/isa"
)

func TestEveryKernelValidates(t *testing.T) {
	r := NewRegistry()
	for _, name := range r.KernelNames() {
		if err := r.Kernel(name).Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTable3_OperationalIntensities checks that the Eq. 5 oi_mem computed
// from each synthesized kernel's instruction mix reproduces the value
// published in Table 3 of the paper (within the quantization allowed by
// small integer instruction counts).
func TestTable3_OperationalIntensities(t *testing.T) {
	r := NewRegistry()
	for _, name := range r.KernelNames() {
		k := r.Kernel(name)
		if k.PublishedOI == 0 {
			continue // not a Table 3 kernel
		}
		got := k.OI().Mem
		if math.Abs(got-k.PublishedOI) > 0.042 {
			t.Errorf("%s: oi_mem = %.3f, published %.3f", name, got, k.PublishedOI)
		}
	}
}

func TestReuseKernelsHaveLowerIssueOI(t *testing.T) {
	// §7.4 Case 4: rho_eos2 has oi_issue 0.17 < oi_mem 0.25 due to reuse.
	r := NewRegistry()
	oi := r.OIOf("rho_eos2")
	if !(oi.Issue < oi.Mem) {
		t.Fatalf("rho_eos2 oi = %+v; want issue < mem", oi)
	}
	if math.Abs(oi.Issue-0.17) > 0.02 || math.Abs(oi.Mem-0.25) > 0.02 {
		t.Fatalf("rho_eos2 oi = %+v; want (0.17, 0.25)", oi)
	}
	// Kernels without reuse have equal intensities (Eq. 5 footnote).
	oi = r.OIOf("select_atoms1")
	if oi.Issue != oi.Mem {
		t.Fatalf("select_atoms1 oi = %+v; want issue == mem", oi)
	}
}

func TestKernelCountsDotProd(t *testing.T) {
	r := NewRegistry()
	k := r.Kernel("dotProd")
	if k.NumLoads() != 2 || k.NumStores() != 0 || k.NumCompute() != 2 {
		t.Fatalf("dotProd counts: loads=%d stores=%d compute=%d, want 2/0/2",
			k.NumLoads(), k.NumStores(), k.NumCompute())
	}
	if oi := k.OI(); oi.Mem != 0.25 {
		t.Fatalf("dotProd oi_mem = %v, want 0.25", oi.Mem)
	}
}

func TestKernelCountsNormL2Fused(t *testing.T) {
	r := NewRegistry()
	k := r.Kernel("normL2")
	if k.NumCompute() != 1 {
		t.Fatalf("normL2 fused compute count = %d, want 1 (VFMLA)", k.NumCompute())
	}
	if oi := k.OI(); oi.Mem != 0.25 {
		t.Fatalf("normL2 oi_mem = %v, want 0.25", oi.Mem)
	}
}

func TestStencilFootprintCountsStreamsOnce(t *testing.T) {
	r := NewRegistry()
	k := r.Kernel("wsm5_wi")
	if k.NumLoads() != 4 {
		t.Fatalf("wsm5_wi loads = %d, want 4", k.NumLoads())
	}
	if got := k.UniqueStreams(); got != 3 { // ww, dz, wi
		t.Fatalf("wsm5_wi unique streams = %d, want 3", got)
	}
	oi := k.OI()
	if !(oi.Issue < oi.Mem) {
		t.Fatalf("stencil kernel must have oi_issue < oi_mem, got %+v", oi)
	}
}

func TestReferenceDotProd(t *testing.T) {
	r := NewRegistry()
	k := r.Kernel("dotProd").copyWith(8, 1)
	in := map[int][]float32{
		0: make([]float32, 8+2*Halo),
		1: make([]float32, 8+2*Halo),
	}
	var want float32
	for i := 0; i < 8; i++ {
		in[0][i+Halo] = float32(i)
		in[1][i+Halo] = 2
		want += float32(i) * 2
	}
	_, acc := k.Reference(in)
	if acc != want {
		t.Fatalf("reference dot product = %v, want %v", acc, want)
	}
}

func TestReferenceAddWeight(t *testing.T) {
	r := NewRegistry()
	k := r.Kernel("addWeight").copyWith(4, 1)
	in := map[int][]float32{
		0: make([]float32, 4+2*Halo),
		1: make([]float32, 4+2*Halo),
	}
	for i := 0; i < 4; i++ {
		in[0][i+Halo] = float32(i)
		in[1][i+Halo] = float32(10 * i)
	}
	out, _ := k.Reference(in)
	for i := 0; i < 4; i++ {
		want := float32(i)*0.625 + float32(10*i)*0.375 + 0.5
		if got := out[2][i]; math.Abs(float64(got-want)) > 1e-5 {
			t.Fatalf("addWeight[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestReferenceStencilUsesOffsets(t *testing.T) {
	r := NewRegistry()
	k := r.Kernel("wsm5_wi").copyWith(4, 1)
	ww := make([]float32, 4+2*Halo)
	dz := make([]float32, 4+2*Halo)
	for i := range ww {
		ww[i] = float32(i)
		dz[i] = 1
	}
	out, _ := k.Reference(map[int][]float32{0: ww, 1: dz})
	// wi[k] = (ww[k] + ww[k-1]) / 2 when dz == 1 everywhere.
	for i := 0; i < 4; i++ {
		want := (ww[i+Halo] + ww[i+Halo-1]) / 2
		if got := out[2][i]; got != want {
			t.Fatalf("wi[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestReferenceRepeatsIdempotentForPureStores(t *testing.T) {
	// Store-only kernels are idempotent across repeats: repeating must not
	// change outputs (inputs are never written).
	r := NewRegistry()
	k1 := r.Kernel("rgb2gray").copyWith(16, 1)
	k2 := r.Kernel("rgb2gray").copyWith(16, 3)
	in := map[int][]float32{}
	for s := 0; s < 3; s++ {
		in[s] = make([]float32, 16+2*Halo)
		for i := range in[s] {
			in[s][i] = float32(s + i)
		}
	}
	o1, _ := k1.Reference(in)
	o2, _ := k2.Reference(in)
	for i := range o1[3] {
		if o1[3][i] != o2[3][i] {
			t.Fatal("repeats changed a pure store kernel's output")
		}
	}
}

func TestSynthComputeBudgetExact(t *testing.T) {
	f := func(r8, s8, c8 uint8) bool {
		reads := int(r8%4) + 1
		stores := int(s8%3) + 1
		computes := int(c8 % 24)
		k := synth(synthSpec{name: "q", reads: reads, stores: stores, computes: computes, elems: 64, repeats: 1})
		return k.NumCompute() == computes && k.NumLoads() == reads && k.NumStores() == stores
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSynthReuseAddsLoadsNotFootprint(t *testing.T) {
	base := synth(synthSpec{name: "a", reads: 3, stores: 1, computes: 4, elems: 64, repeats: 1})
	reuse := synth(synthSpec{name: "b", reads: 3, reuse: 2, stores: 1, computes: 4, elems: 64, repeats: 1})
	if reuse.NumLoads() != base.NumLoads()+2 {
		t.Fatal("reuse loads missing")
	}
	if reuse.UniqueStreams() != base.UniqueStreams() {
		t.Fatal("reuse must not grow the footprint")
	}
	if !(reuse.OI().Issue < reuse.OI().Mem) {
		t.Fatal("reuse must lower oi_issue below oi_mem")
	}
}

func TestRegistryWorkloads(t *testing.T) {
	r := NewRegistry()
	if n := len(r.WorkloadNames()); n != 34 {
		t.Fatalf("registry has %d workloads, want 34 (22 SPEC + 12 OpenCV)", n)
	}
	w := r.Workload("spec/WL8")
	if len(w.Phases) != 2 || w.Phases[0].Name != "rho_eos2" || w.Phases[1].Name != "rho_eos6" {
		t.Fatalf("spec/WL8 phases wrong: %+v", w.Phases)
	}
	if w.Class != MemoryIntensive {
		t.Fatal("spec/WL8 must classify as memory-intensive")
	}
	if r.Workload("spec/WL16").Class != ComputeIntensive {
		t.Fatal("spec/WL16 (wsm51) must classify as compute-intensive")
	}
}

func TestFigure10PairsShape(t *testing.T) {
	r := NewRegistry()
	pairs := Figure10Pairs(r)
	if len(pairs) != 25 {
		t.Fatalf("got %d pairs, want 25", len(pairs))
	}
	for _, p := range pairs {
		if p.Cores() != 2 {
			t.Errorf("%s: %d cores, want 2", p.Name, p.Cores())
		}
	}
	// The paper's categories: 22 <memory, compute>, WL12+WL19 is
	// <memory, memory>, WL9+WL13 and cv WL9+WL4-ish are compute pairs.
	if pairs[15].Name != "spec:WL12+WL19" {
		t.Fatalf("pair 16 = %s, want spec:WL12+WL19", pairs[15].Name)
	}
}

func TestFourCoreGroupsShape(t *testing.T) {
	r := NewRegistry()
	gs := FourCoreGroups(r)
	if len(gs) != 4 {
		t.Fatalf("got %d groups, want 4", len(gs))
	}
	for _, g := range gs {
		if g.Cores() != 4 {
			t.Errorf("%s: %d cores, want 4", g.Name, g.Cores())
		}
	}
}

func TestMotivatingPairShape(t *testing.T) {
	r := NewRegistry()
	p := MotivatingPair(r)
	if p.Cores() != 2 {
		t.Fatal("motivating pair must be two cores")
	}
	if len(p.W[0].Phases) != 2 || len(p.W[1].Phases) != 1 {
		t.Fatal("WL#0 must have two phases, WL#1 one")
	}
	// Phase OIs must be increasing for WL#0 (the §2 narrative).
	if !(p.W[0].Phases[0].OI().Mem < p.W[0].Phases[1].OI().Mem) {
		t.Fatal("WL#0 phase 2 must have higher operational intensity")
	}
}

func TestScaledClampsAndScales(t *testing.T) {
	r := NewRegistry()
	w := r.Workload("spec/WL1")
	s := w.Scaled(0.25)
	for i, k := range s.Phases {
		if k.Elems != w.Phases[i].Elems/4 {
			t.Fatalf("phase %d elems = %d, want %d", i, k.Elems, w.Phases[i].Elems/4)
		}
	}
	tiny := w.Scaled(0.000001)
	for _, k := range tiny.Phases {
		if k.Elems < 64 {
			t.Fatal("Scaled must clamp to 64 elements")
		}
	}
	// Original untouched.
	if w.Phases[0].Elems != memElems {
		t.Fatal("Scaled must not mutate the registry kernel")
	}
}

func TestMaxTempsBoundsRegisterNeeds(t *testing.T) {
	// The compiler reserves a handful of temporary Z registers; every
	// kernel's Ershov number must fit comfortably.
	r := NewRegistry()
	for _, name := range r.KernelNames() {
		if d := r.Kernel(name).MaxTemps(); d > 6 {
			t.Errorf("%s: needs %d temporaries, register allocator budget is 6", name, d)
		}
	}
}

func TestOIPairPositive(t *testing.T) {
	r := NewRegistry()
	for _, name := range r.KernelNames() {
		oi := r.Kernel(name).OI()
		if oi.Issue <= 0 || oi.Mem <= 0 {
			t.Errorf("%s: non-positive OI %+v", name, oi)
		}
		if oi.Issue > oi.Mem {
			t.Errorf("%s: oi_issue %v > oi_mem %v (impossible: reuse only lowers issue)", name, oi.Issue, oi.Mem)
		}
	}
}

func TestOIPackingRoundTripsForAllKernels(t *testing.T) {
	// The <OI> register quantizes to 1/256; every Table 3 value must
	// survive packing well enough for the lane manager.
	r := NewRegistry()
	for _, name := range r.KernelNames() {
		oi := r.Kernel(name).OI()
		rt := isa.UnpackOI(isa.PackOI(oi))
		if math.Abs(rt.Mem-oi.Mem) > 1.0/256 || math.Abs(rt.Issue-oi.Issue) > 1.0/256 {
			t.Errorf("%s: OI pair %+v does not survive register packing (%+v)", name, oi, rt)
		}
	}
}

// copyWith returns a copy of k with the given trip count and repeats, for
// small functional tests.
func (k *Kernel) copyWith(elems, repeats int) *Kernel {
	c := *k
	c.Elems, c.Repeats = elems, repeats
	return &c
}
