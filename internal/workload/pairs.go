package workload

import "fmt"

// CoSchedule is a set of workloads pinned one-per-core: W[i] runs on core i.
// In the paper's <memory, compute> pairs the memory-intensive workload is on
// Core0 and the compute-intensive one on Core1 (§7.1).
type CoSchedule struct {
	Name string
	W    []*Workload
}

// Cores returns the number of cores the schedule occupies.
func (s CoSchedule) Cores() int { return len(s.W) }

// Scaled returns the schedule with every workload's trip counts scaled by f.
func (s CoSchedule) Scaled(f float64) CoSchedule {
	out := CoSchedule{Name: s.Name}
	for _, w := range s.W {
		out.W = append(out.W, w.Scaled(f))
	}
	return out
}

// figure10SpecPairs lists the 16 SPEC pairs of Figure 10's x-axis, in plot
// order: Core0 workload + Core1 workload.
var figure10SpecPairs = [][2]string{
	{"WL1", "WL13"}, {"WL2", "WL14"}, {"WL3", "WL4"}, {"WL5", "WL15"},
	{"WL6", "WL16"}, {"WL8", "WL17"}, {"WL7", "WL18"}, {"WL20", "WL9"},
	{"WL21", "WL17"}, {"WL20", "WL17"}, {"WL10", "WL16"}, {"WL11", "WL14"},
	{"WL22", "WL15"}, {"WL4", "WL14"}, {"WL9", "WL13"}, {"WL12", "WL19"},
}

// figure10CVPairs lists the 9 OpenCV pairs of Figure 10's x-axis.
var figure10CVPairs = [][2]string{
	{"WL6", "WL1"}, {"WL2", "WL1"}, {"WL7", "WL3"}, {"WL8", "WL3"},
	{"WL9", "WL4"}, {"WL10", "WL4"}, {"WL11", "WL5"}, {"WL12", "WL5"},
	{"WL11", "WL1"},
}

// Figure10Pairs returns the 25 two-core co-running pairs of Figures 10/11/13/15:
// 16 SPEC pairs followed by 9 OpenCV pairs, in the paper's plot order. The
// set contains 22 <memory, compute> pairs, 1 <memory, memory> pair
// (spec WL12+WL19) and 2 <compute, compute> pairs (§7.1).
func Figure10Pairs(r *Registry) []CoSchedule {
	var out []CoSchedule
	for _, p := range figure10SpecPairs {
		out = append(out, CoSchedule{
			Name: fmt.Sprintf("spec:%s+%s", p[0], p[1]),
			W:    []*Workload{r.Workload("spec/" + p[0]), r.Workload("spec/" + p[1])},
		})
	}
	for _, p := range figure10CVPairs {
		out = append(out, CoSchedule{
			Name: fmt.Sprintf("cv:%s+%s", p[0], p[1]),
			W:    []*Workload{r.Workload("cv/" + p[0]), r.Workload("cv/" + p[1])},
		})
	}
	return out
}

// CaseStudyPair returns the §7.4 case-study pair by index:
// 1 = WL20+WL17 (<memory, compute>), 2 = WL9+WL13 (<compute, compute>),
// 3 = WL12+WL19 (<memory, memory>), 4 = WL8+WL17 (FTS beats Occamy).
func CaseStudyPair(r *Registry, n int) CoSchedule {
	switch n {
	case 1:
		return CoSchedule{Name: "case1:WL20+WL17", W: []*Workload{r.Workload("spec/WL20"), r.Workload("spec/WL17")}}
	case 2:
		return CoSchedule{Name: "case2:WL9+WL13", W: []*Workload{r.Workload("spec/WL9"), r.Workload("spec/WL13")}}
	case 3:
		return CoSchedule{Name: "case3:WL12+WL19", W: []*Workload{r.Workload("spec/WL12"), r.Workload("spec/WL19")}}
	case 4:
		return CoSchedule{Name: "case4:WL8+WL17", W: []*Workload{r.Workload("spec/WL8"), r.Workload("spec/WL17")}}
	default:
		panic(fmt.Sprintf("workload: no case study %d", n))
	}
}

// MotivatingPair returns the §2 example of Figure 2: WL#0 with two
// memory-intensive 654.rom_s phases of increasing operational intensity, and
// WL#1 a compute-intensive 621.wrf_s phase.
func MotivatingPair(r *Registry) CoSchedule {
	wl0 := &Workload{
		Name:   "fig2/WL0",
		Phases: []*Kernel{r.Kernel("step3d_uv2"), r.Kernel("rho_eos4")},
		Class:  MemoryIntensive,
	}
	wl1 := &Workload{
		Name:   "fig2/WL1",
		Phases: []*Kernel{r.Kernel("wsm51")},
		Class:  ComputeIntensive,
	}
	return CoSchedule{Name: "fig2:WL0+WL1", W: []*Workload{wl0, wl1}}
}

// FourCoreGroups returns the §7.6 scalability groups of Figure 16. The first
// three combine two <memory, compute> pairs from Figure 10 (memory workloads
// on Core0/Core1, compute on Core2/Core3); the last runs three
// memory-intensive workloads and one compute-intensive workload.
func FourCoreGroups(r *Registry) []CoSchedule {
	mk := func(name string, wls ...string) CoSchedule {
		s := CoSchedule{Name: name}
		for _, w := range wls {
			s.W = append(s.W, r.Workload("spec/"+w))
		}
		return s
	}
	return []CoSchedule{
		mk("4c:WL5+6+15+16", "WL5", "WL6", "WL15", "WL16"),
		mk("4c:WL21+20+17+17", "WL21", "WL20", "WL17", "WL17"),
		mk("4c:WL10+22+16+15", "WL10", "WL22", "WL16", "WL15"),
		mk("4c:WL7+19+20+14", "WL7", "WL19", "WL20", "WL14"),
	}
}
