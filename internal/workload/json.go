package workload

import (
	"encoding/json"
	"fmt"
)

// JSON workload definitions let library users describe custom loop kernels
// without writing Go. Example:
//
//	{
//	  "name": "saxpy-then-blur",
//	  "phases": [
//	    {
//	      "kernel": "saxpy",
//	      "elems": 8192,
//	      "repeats": 4,
//	      "loads": [{"stream": 0}, {"stream": 1}],
//	      "statements": [{"out": 2, "expr": "add(mul(s0, c2.5), s1)"}]
//	    },
//	    {
//	      "kernel": "blur3",
//	      "elems": 8192,
//	      "loads": [{"stream": 0, "offset": -1}, {"stream": 0}, {"stream": 0, "offset": 1}],
//	      "statements": [{"out": 1, "expr": "mul(add(add(s0, s1), s2), c0.3333)"}]
//	    }
//	  ]
//	}
//
// A reduction phase sets "reduction": true and gives exactly one statement
// (its "out" is ignored); "fuse_mac" lets a top-level mul fuse into the
// accumulate.

// JSONWorkload is the top-level document.
type JSONWorkload struct {
	Name   string       `json:"name"`
	Phases []JSONKernel `json:"phases"`
}

// JSONKernel describes one loop phase.
type JSONKernel struct {
	Kernel    string     `json:"kernel"`
	Elems     int        `json:"elems"`
	Repeats   int        `json:"repeats,omitempty"`
	Loads     []JSONLoad `json:"loads"`
	Stmts     []JSONStmt `json:"statements"`
	Reduction bool       `json:"reduction,omitempty"`
	FuseMAC   bool       `json:"fuse_mac,omitempty"`
	IntData   bool       `json:"int_data,omitempty"`
}

// JSONLoad is one load slot.
type JSONLoad struct {
	Stream int `json:"stream"`
	Offset int `json:"offset,omitempty"`
}

// JSONStmt is one statement: a store of Expr to stream Out (or an
// accumulation for reduction phases).
type JSONStmt struct {
	Out  int    `json:"out"`
	Expr string `json:"expr"`
}

// ParseWorkloadJSON decodes and validates a JSON workload definition.
func ParseWorkloadJSON(data []byte) (*Workload, error) {
	var doc JSONWorkload
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("workload: parsing JSON: %w", err)
	}
	return FromJSON(&doc)
}

// FromJSON converts a decoded document into a Workload.
func FromJSON(doc *JSONWorkload) (*Workload, error) {
	if len(doc.Phases) == 0 {
		return nil, fmt.Errorf("workload: %q has no phases", doc.Name)
	}
	w := &Workload{Name: trimmedName(doc.Name, "custom")}
	for i, jk := range doc.Phases {
		k, err := kernelFromJSON(&jk, i)
		if err != nil {
			return nil, fmt.Errorf("workload: %q phase %d: %w", w.Name, i, err)
		}
		w.Phases = append(w.Phases, k)
	}
	// Classify by mean operational intensity, like the registry does.
	sum := 0.0
	for _, k := range w.Phases {
		sum += k.OI().Mem
	}
	w.Class = classOf(sum / float64(len(w.Phases)))
	return w, nil
}

func kernelFromJSON(jk *JSONKernel, idx int) (*Kernel, error) {
	k := &Kernel{
		Name:      trimmedName(jk.Kernel, fmt.Sprintf("phase%d", idx)),
		Elems:     jk.Elems,
		Repeats:   jk.Repeats,
		Reduction: jk.Reduction,
		FuseMAC:   jk.FuseMAC,
		IntData:   jk.IntData,
	}
	if k.Repeats == 0 {
		k.Repeats = 1
	}
	for _, l := range jk.Loads {
		if l.Stream < 0 {
			return nil, fmt.Errorf("negative stream index %d", l.Stream)
		}
		if l.Offset < -Halo || l.Offset > Halo {
			return nil, fmt.Errorf("offset %d exceeds the ±%d halo", l.Offset, Halo)
		}
		k.Slots = append(k.Slots, LoadSlot{Stream: l.Stream, Offset: l.Offset})
	}
	for _, s := range jk.Stmts {
		e, err := ParseExpr(s.Expr)
		if err != nil {
			return nil, err
		}
		out := s.Out
		if jk.Reduction {
			out = -1
		}
		k.Stmts = append(k.Stmts, Stmt{Out: out, E: e})
	}
	if !jk.Reduction {
		// Outputs must not alias input streams: the simulator applies
		// loads functionally at transmit, so an output overwriting an
		// input mid-run would diverge from the host reference.
		in := map[int]bool{}
		for _, s := range k.Slots {
			in[s.Stream] = true
		}
		for _, s := range k.Stmts {
			if in[s.Out] {
				return nil, fmt.Errorf("output stream %d aliases an input stream", s.Out)
			}
		}
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MarshalWorkloadJSON renders a workload back to its JSON definition
// (round-trip support for tooling).
func MarshalWorkloadJSON(w *Workload) ([]byte, error) {
	doc := JSONWorkload{Name: w.Name}
	for _, k := range w.Phases {
		jk := JSONKernel{
			Kernel:    k.Name,
			Elems:     k.Elems,
			Repeats:   k.Repeats,
			Reduction: k.Reduction,
			FuseMAC:   k.FuseMAC,
			IntData:   k.IntData,
		}
		for _, s := range k.Slots {
			jk.Loads = append(jk.Loads, JSONLoad{Stream: s.Stream, Offset: s.Offset})
		}
		for _, s := range k.Stmts {
			jk.Stmts = append(jk.Stmts, JSONStmt{Out: s.Out, Expr: FormatExpr(s.E)})
		}
		doc.Phases = append(doc.Phases, jk)
	}
	return json.MarshalIndent(&doc, "", "  ")
}
