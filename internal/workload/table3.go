package workload

import (
	"fmt"
	"math"
	"sort"

	"occamy/internal/isa"
)

// Class is the coarse behaviour class used to place workloads on cores
// (memory-intensive on Core0 in <memory, compute> pairs, §7.1).
type Class uint8

// Workload behaviour classes.
const (
	MemoryIntensive Class = iota
	ComputeIntensive
)

func (c Class) String() string {
	if c == MemoryIntensive {
		return "memory"
	}
	return "compute"
}

// Default sizing. Memory-intensive kernels make one cold pass over a large
// working set (DRAM streaming); compute-intensive kernels make many passes
// over a vector-cache-resident working set (a hot loop under REF input).
const (
	// Memory-intensive kernels make one cold streaming pass over a large
	// working set: DRAM bandwidth is the binding ceiling, matching the
	// lane manager's roofline.
	memElems   = 24576
	memRepeats = 1
	// Compute-intensive kernels iterate a vector-cache-resident tile.
	compElems   = 1024
	compRepeats = 96
)

// Workload is a program: the sequence of loop phases one core runs.
type Workload struct {
	Name   string
	Phases []*Kernel
	Class  Class
}

// MeanOI returns the geometric mean of the phases' oi_mem, used only for
// reporting.
func (w *Workload) MeanOI() float64 {
	prod := 1.0
	for _, k := range w.Phases {
		prod *= k.OI().Mem
	}
	if prod <= 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(len(w.Phases)))
}

// Scaled returns a copy of w with every phase's trip count scaled by f
// (minimum 64 elements), for fast test runs.
func (w *Workload) Scaled(f float64) *Workload {
	out := &Workload{Name: w.Name, Class: w.Class}
	for _, k := range w.Phases {
		kc := *k
		kc.Elems = int(float64(k.Elems) * f)
		if kc.Elems < 64 {
			kc.Elems = 64
		}
		out.Phases = append(out.Phases, &kc)
	}
	return out
}

// sizing applies the class defaults to a synthesized spec.
func sized(s synthSpec, class Class) *Kernel {
	if class == MemoryIntensive {
		s.elems, s.repeats = memElems, memRepeats
	} else {
		s.elems, s.repeats = compElems, compRepeats
	}
	return synth(s)
}

// classOf derives the behaviour class from Table 3's oi_mem.
func classOf(oi float64) Class {
	if oi <= 0.3 {
		return MemoryIntensive
	}
	return ComputeIntensive
}

// buildKernels constructs every Table 3 kernel. Shapes (reads, reuse loads,
// stores, computes) are chosen so Eq. 5 reproduces the published oi_mem
// (validated by TestTable3_OperationalIntensities within ±0.04).
// Memory-intensive kernels use wide bodies (5-12 accesses per iteration,
// like the multi-array SPEC loop nests of Figure 2(a)) so that memory
// bandwidth — not loop overhead — binds them at narrow vector lengths,
// matching the saturation points the lane manager's roofline predicts.
func buildKernels() map[string]*Kernel {
	specs := []synthSpec{
		// --- SPEC CPU2017 loop phases (Table 3, left columns) ---
		{name: "select_atoms1", reads: 6, stores: 2, computes: 8, publishedOI: 0.25},
		{name: "select_atoms2", reads: 6, stores: 2, computes: 8, publishedOI: 0.25},
		{name: "select_atoms3", reads: 6, stores: 2, computes: 8, publishedOI: 0.25},
		{name: "select_atoms4", reads: 4, stores: 2, computes: 2, publishedOI: 0.083},
		{name: "select_atoms5", reads: 2, stores: 1, computes: 9, publishedOI: 0.75},
		{name: "step3d_uv1", reads: 5, stores: 2, computes: 3, publishedOI: 0.11},
		{name: "step3d_uv2", reads: 4, stores: 2, computes: 2, publishedOI: 0.09},
		{name: "step3d_uv3", reads: 6, stores: 2, computes: 4, publishedOI: 0.13},
		{name: "step3d_uv4", reads: 6, stores: 2, computes: 4, publishedOI: 0.13},
		{name: "rhs3d1", reads: 6, stores: 2, computes: 4, publishedOI: 0.13},
		{name: "rhs3d5", reads: 3, stores: 1, computes: 5, publishedOI: 0.32},
		{name: "rhs3d7", reads: 4, stores: 2, computes: 4, publishedOI: 0.17},
		{name: "rho_eos1", reads: 4, stores: 2, computes: 2, publishedOI: 0.09},
		// rho_eos2 is §7.4 Case 4's reuse kernel: oi_issue 0.17 < oi_mem 0.25.
		{name: "rho_eos2", reads: 6, reuse: 4, stores: 2, computes: 8, publishedOI: 0.25},
		// rho_eos4 is the motivating example's phase 2 (reuse pushes the
		// elastic decision to 12 lanes, Figure 2(e)).
		{name: "rho_eos4", reads: 4, reuse: 2, stores: 2, computes: 4, publishedOI: 0.16},
		{name: "rho_eos5", reads: 4, stores: 2, computes: 2, publishedOI: 0.08},
		{name: "rho_eos6", reads: 6, stores: 2, computes: 2, publishedOI: 0.06},
		{name: "set_vbc1", reads: 3, stores: 1, computes: 9, publishedOI: 0.56},
		{name: "set_vbc2", reads: 3, stores: 1, computes: 9, publishedOI: 0.56},
		{name: "wsm51", reads: 3, stores: 1, computes: 16, publishedOI: 1.0},
		{name: "wsm52", reads: 3, stores: 1, computes: 16, publishedOI: 1.0},
		{name: "wsm53", reads: 3, stores: 1, computes: 9, publishedOI: 0.56},
		{name: "sff2", reads: 6, stores: 2, computes: 4, publishedOI: 0.13},
		{name: "sff5", reads: 5, stores: 2, computes: 6, publishedOI: 0.21},
		{name: "step2d1", reads: 6, stores: 2, computes: 7, publishedOI: 0.22},
		{name: "step2d6", reads: 5, stores: 2, computes: 5, publishedOI: 0.18},
		// --- OpenCV kernels (Table 3, right column), synthesized part ---
		{name: "fitLine2D", reads: 3, stores: 1, computes: 15, publishedOI: 0.92},
		{name: "compare", reads: 4, stores: 2, computes: 6, publishedOI: 0.25},
		{name: "rgb2xyz", reads: 3, stores: 1, computes: 10, publishedOI: 0.63},
		{name: "calcDist3D", reads: 3, stores: 1, computes: 14, publishedOI: 0.875},
		{name: "rgb2hsv", reads: 3, stores: 1, computes: 29, publishedOI: 1.83},
		{name: "accProd", reads: 4, stores: 2, computes: 4, publishedOI: 0.17},
		{name: "blend", reads: 5, stores: 2, computes: 8, publishedOI: 0.3},
		{name: "fitLine3D", reads: 3, stores: 1, computes: 7, publishedOI: 0.44},
		{name: "rgb2ycrcb", reads: 3, stores: 1, computes: 7, publishedOI: 0.42},
	}
	ks := make(map[string]*Kernel, len(specs)+8)
	for _, s := range specs {
		ks[s.name] = sized(s, classOf(s.publishedOI))
	}
	for _, k := range handWrittenKernels() {
		ks[k.Name] = k
	}
	for _, k := range integerKernels() {
		ks[k.Name] = k
	}
	return ks
}

// integerKernels extends the registry beyond Table 3 with integer-lane
// OpenCV core functions (threshold, absdiff, bitwise ops, inRange-style
// clamps); the paper's ExeBUs support all ARMv8-A integer types (§4.2.1),
// and these exercise that path with bit-exact verification.
func integerKernels() []*Kernel {
	// cv::threshold(src, dst, 128, 255, THRESH_BINARY) approximated with
	// min/max arithmetic over int32 lanes.
	threshold := &Kernel{
		Name: "int_threshold", IntData: true,
		Slots: []LoadSlot{{Stream: 0}},
		Stmts: []Stmt{{Out: 1, E: IMul(
			IMin(IMax(ISub(Slot(0), IConst(127)), IConst(0)), IConst(1)),
			IConst(255))}},
		Elems: compElems, Repeats: compRepeats / 2,
	}
	// cv::absdiff: |a - b| via max(a-b, b-a).
	absdiff := &Kernel{
		Name: "int_absdiff", IntData: true,
		Slots: []LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts: []Stmt{{Out: 2, E: IMax(
			ISub(Slot(0), Slot(1)),
			ISub(Slot(1), Slot(0)))}},
		Elems: memElems, Repeats: memRepeats,
	}
	// cv::bitwise_and/or/xor fused: dst = ((a & b) | (a ^ b)) == a | b,
	// written unfused to exercise all three ops.
	bitwise := &Kernel{
		Name: "int_bitwise", IntData: true,
		Slots: []LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts: []Stmt{{Out: 2, E: IOr(
			IAnd(Slot(0), Slot(1)),
			IXor(Slot(0), Slot(1)))}},
		Elems: memElems, Repeats: memRepeats,
	}
	// cv::inRange-style clamp to [low, high] plus a scale by shifting.
	clampScale := &Kernel{
		Name: "int_clamp_scale", IntData: true,
		Slots: []LoadSlot{{Stream: 0}},
		Stmts: []Stmt{{Out: 1, E: IShl(
			IMin(IMax(Slot(0), IConst(16)), IConst(240)),
			IConst(2))}},
		Elems: compElems, Repeats: compRepeats / 2,
	}
	return []*Kernel{threshold, absdiff, bitwise, clampScale}
}

// handWrittenKernels are the kernels with exact, recognizable semantics used
// by the functional-correctness tests.
func handWrittenKernels() []*Kernel {
	// addWeight: dst[i] = a[i]*alpha + b[i]*beta + gamma (OpenCV addWeighted).
	addWeight := &Kernel{
		Name:  "addWeight",
		Slots: []LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts: []Stmt{{Out: 2, E: Add(Add(Mul(Slot(0), Const(0.625)), Mul(Slot(1), Const(0.375))), Const(0.5))}},
		Elems: memElems, Repeats: memRepeats,
		PublishedOI: 0.33,
	}
	// dotProd: acc += a[i]*b[i], unfused (multiply then accumulate).
	dotProd := &Kernel{
		Name:      "dotProd",
		Slots:     []LoadSlot{{Stream: 0}, {Stream: 1}},
		Stmts:     []Stmt{{Out: -1, E: Mul(Slot(0), Slot(1))}},
		Reduction: true,
		Elems:     memElems, Repeats: memRepeats,
		PublishedOI: 0.25,
	}
	// normL1: acc += |a[i]|.
	normL1 := &Kernel{
		Name:      "normL1",
		Slots:     []LoadSlot{{Stream: 0}},
		Stmts:     []Stmt{{Out: -1, E: Abs(Slot(0))}},
		Reduction: true,
		Elems:     memElems, Repeats: memRepeats,
		PublishedOI: 0.5,
	}
	// normL2: acc += a[i]*a[i], fused into one VFMLA.
	normL2 := &Kernel{
		Name:      "normL2",
		Slots:     []LoadSlot{{Stream: 0}},
		Stmts:     []Stmt{{Out: -1, E: Mul(Slot(0), Slot(0))}},
		Reduction: true,
		FuseMAC:   true,
		Elems:     memElems, Repeats: memRepeats,
		PublishedOI: 0.25,
	}
	// rgb2gray: y = 0.299 r + 0.587 g + 0.114 b.
	rgb2gray := &Kernel{
		Name:  "rgb2gray",
		Slots: []LoadSlot{{Stream: 0}, {Stream: 1}, {Stream: 2}},
		Stmts: []Stmt{{Out: 3, E: Add(Add(Mul(Slot(0), Const(0.299)), Mul(Slot(1), Const(0.587))), Mul(Slot(2), Const(0.114)))}},
		Elems: compElems, Repeats: compRepeats,
		PublishedOI: 0.31,
	}
	// wsm5_wi is the motivating WL#1 loop body of Figure 2(a):
	// wi[k] = (ww[k]*dz[k-1] + ww[k-1]*dz[k]) / (dz[k-1] + dz[k]).
	// The k-1 stencil accesses are the reuse loads.
	wsm5Wi := &Kernel{
		Name: "wsm5_wi",
		Slots: []LoadSlot{
			{Stream: 0, Offset: 0},  // ww[k]
			{Stream: 0, Offset: -1}, // ww[k-1]
			{Stream: 1, Offset: 0},  // dz[k]
			{Stream: 1, Offset: -1}, // dz[k-1]
		},
		Stmts: []Stmt{{Out: 2, E: Div(
			Add(Mul(Slot(0), Slot(3)), Mul(Slot(1), Slot(2))),
			Add(Slot(3), Slot(2)),
		)}},
		Elems: compElems, Repeats: compRepeats,
	}
	return []*Kernel{addWeight, dotProd, normL1, normL2, rgb2gray, wsm5Wi}
}

// Registry provides name-indexed access to every kernel and workload of the
// evaluation. Build one with NewRegistry; it is immutable afterwards.
type Registry struct {
	kernels   map[string]*Kernel
	workloads map[string]*Workload
}

// NewRegistry constructs the full Table 3 registry.
func NewRegistry() *Registry {
	ks := buildKernels()
	r := &Registry{kernels: ks, workloads: make(map[string]*Workload)}

	specWLs := map[string][]string{
		"WL1": {"select_atoms2", "step3d_uv2"}, "WL2": {"select_atoms1", "step3d_uv4"},
		"WL3": {"rhs3d1", "select_atoms3"}, "WL4": {"select_atoms4", "select_atoms5"},
		"WL5": {"step3d_uv1", "rhs3d7"}, "WL6": {"rho_eos1", "rho_eos4"},
		"WL7": {"rho_eos5", "select_atoms3"}, "WL8": {"rho_eos2", "rho_eos6"},
		"WL9": {"wsm53", "select_atoms5"}, "WL10": {"rhs3d1", "rho_eos4"},
		"WL11": {"step2d1", "step2d6"}, "WL12": {"step3d_uv3", "step3d_uv1"},
		"WL13": {"set_vbc2"}, "WL14": {"set_vbc1"}, "WL15": {"rhs3d5"},
		"WL16": {"wsm51"}, "WL17": {"wsm52"}, "WL18": {"wsm53"},
		"WL19": {"rho_eos2"}, "WL20": {"sff2", "sff5"},
		"WL21": {"sff5", "rho_eos6"}, "WL22": {"rho_eos2", "step3d_uv1"},
	}
	cvWLs := map[string][]string{
		"WL1": {"fitLine2D"}, "WL2": {"addWeight", "compare"}, "WL3": {"rgb2xyz"},
		"WL4": {"calcDist3D"}, "WL5": {"rgb2hsv"}, "WL6": {"accProd", "dotProd"},
		"WL7": {"normL1", "normL2"}, "WL8": {"compare", "accProd"},
		"WL9": {"blend", "fitLine3D"}, "WL10": {"dotProd", "addWeight"},
		"WL11": {"blend", "compare"}, "WL12": {"rgb2ycrcb", "rgb2gray"},
	}
	add := func(prefix string, defs map[string][]string) {
		for wl, phases := range defs {
			w := &Workload{Name: prefix + "/" + wl}
			sumOI := 0.0
			for _, pk := range phases {
				k, ok := ks[pk]
				if !ok {
					panic(fmt.Sprintf("workload: unknown kernel %q in %s", pk, w.Name))
				}
				w.Phases = append(w.Phases, k)
				sumOI += k.PublishedOI
			}
			w.Class = classOf(sumOI / float64(len(phases)))
			r.workloads[w.Name] = w
		}
	}
	add("spec", specWLs)
	add("cv", cvWLs)
	return r
}

// Kernel returns the named kernel or panics (registry names are static).
func (r *Registry) Kernel(name string) *Kernel {
	k, ok := r.kernels[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown kernel %q", name))
	}
	return k
}

// Workload returns the named workload ("spec/WL8", "cv/WL3") or panics.
func (r *Registry) Workload(name string) *Workload {
	w, ok := r.workloads[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown workload %q", name))
	}
	return w
}

// KernelNames returns all kernel names, sorted.
func (r *Registry) KernelNames() []string {
	out := make([]string, 0, len(r.kernels))
	for n := range r.kernels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WorkloadNames returns all workload names, sorted.
func (r *Registry) WorkloadNames() []string {
	out := make([]string, 0, len(r.workloads))
	for n := range r.workloads {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OIOf is a convenience wrapper exposing a kernel's Eq. 5 pair.
func (r *Registry) OIOf(kernel string) isa.OIPair { return r.Kernel(kernel).OI() }
