package workload

import (
	"fmt"
	"strconv"
	"strings"

	"occamy/internal/isa"
)

// ParseExpr parses the compact kernel-expression syntax used by JSON-defined
// workloads:
//
//	expr   := slot | const | iconst | call
//	slot   := "s" digits             (load slot reference, e.g. s0)
//	const  := "c" number             (fp literal, e.g. c0.5, c-3)
//	iconst := "i" integer            (int32 lane literal, e.g. i255)
//	call   := name "(" expr {"," expr} ")"
//	name   := add | sub | mul | div | max | min | abs | neg | sqrt
//	        | iadd | isub | imul | iand | ior | ixor | ishl | ishr
//	        | imax | imin  (integer ops over the int32 lane bits)
//
// Binary names take exactly two arguments; unary names one. Whitespace is
// ignored. Examples:
//
//	mul(s0, s1)                      a[i]*b[i]
//	add(mul(s0, c2.5), s1)           2.5*a[i] + b[i]
//	sqrt(add(mul(s0,s0), mul(s1,s1)))  hypot
func ParseExpr(src string) (*Expr, error) {
	p := &exprParser{src: src}
	e, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("workload: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return e, nil
}

type exprParser struct {
	src string
	pos int
}

var binOps = map[string]isa.Opcode{
	"add": isa.OpVFAdd, "sub": isa.OpVFSub, "mul": isa.OpVFMul,
	"div": isa.OpVFDiv, "max": isa.OpVFMax, "min": isa.OpVFMin,
	"iadd": isa.OpVIAdd, "isub": isa.OpVISub, "imul": isa.OpVIMul,
	"iand": isa.OpVIAnd, "ior": isa.OpVIOr, "ixor": isa.OpVIXor,
	"ishl": isa.OpVIShl, "ishr": isa.OpVIShr,
	"imax": isa.OpVIMax, "imin": isa.OpVIMin,
}

var unOps = map[string]isa.Opcode{
	"abs": isa.OpVFAbs, "neg": isa.OpVFNeg, "sqrt": isa.OpVFSqrt,
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) parse() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("workload: unexpected end of expression")
	}
	start := p.pos
	for p.pos < len(p.src) && (isAlpha(p.src[p.pos])) {
		p.pos++
	}
	word := p.src[start:p.pos]
	switch {
	case word == "i":
		n, err := p.number()
		if err != nil {
			return nil, fmt.Errorf("workload: bad integer constant at %d", start)
		}
		v, err := strconv.ParseInt(n, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: bad integer constant %q: %v", n, err)
		}
		return IConst(int32(v)), nil
	case word == "s":
		n, err := p.number()
		if err != nil {
			return nil, fmt.Errorf("workload: bad slot reference at %d", start)
		}
		slot, err := strconv.Atoi(n)
		if err != nil || slot < 0 {
			return nil, fmt.Errorf("workload: bad slot index %q", n)
		}
		return Slot(slot), nil
	case word == "c":
		n, err := p.number()
		if err != nil {
			return nil, fmt.Errorf("workload: bad constant at %d", start)
		}
		v, err := strconv.ParseFloat(n, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: bad constant %q: %v", n, err)
		}
		return Const(float32(v)), nil
	case word == "":
		return nil, fmt.Errorf("workload: expected expression at %d", start)
	}
	if op, ok := binOps[word]; ok {
		args, err := p.args(2)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", word, err)
		}
		return Bin(op, args[0], args[1]), nil
	}
	if op, ok := unOps[word]; ok {
		args, err := p.args(1)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", word, err)
		}
		return Un(op, args[0]), nil
	}
	return nil, fmt.Errorf("workload: unknown function %q", word)
}

// number consumes an optionally signed decimal number with an optional
// exponent ("2.5", "-3", "1e+06", "4E-3") — FormatExpr may render large
// constants in scientific notation.
func (p *exprParser) number() (string, error) {
	start := p.pos
	if p.pos < len(p.src) && (p.src[p.pos] == '-' || p.src[p.pos] == '+') {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.src) && (isDigit(p.src[p.pos]) || p.src[p.pos] == '.') {
		p.pos++
		digits++
	}
	if digits == 0 {
		return "", fmt.Errorf("no digits")
	}
	if p.pos < len(p.src) && (p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
		save := p.pos
		p.pos++
		if p.pos < len(p.src) && (p.src[p.pos] == '-' || p.src[p.pos] == '+') {
			p.pos++
		}
		expDigits := 0
		for p.pos < len(p.src) && isDigit(p.src[p.pos]) {
			p.pos++
			expDigits++
		}
		if expDigits == 0 {
			p.pos = save // "e" belonged to something else; back off
		}
	}
	return p.src[start:p.pos], nil
}

func (p *exprParser) args(n int) ([]*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, fmt.Errorf("expected '('")
	}
	p.pos++
	var out []*Expr
	for i := 0; i < n; i++ {
		if i > 0 {
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != ',' {
				return nil, fmt.Errorf("expected ',' (argument %d of %d)", i+1, n)
			}
			p.pos++
		}
		e, err := p.parse()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return nil, fmt.Errorf("expected ')'")
	}
	p.pos++
	return out, nil
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// FormatExpr renders an expression back into the parseable syntax.
func FormatExpr(e *Expr) string {
	switch e.Kind {
	case KindSlot:
		return fmt.Sprintf("s%d", e.Slot)
	case KindConst:
		if e.IntConst {
			return fmt.Sprintf("i%d", isa.LaneInt(e.Val))
		}
		return "c" + strconv.FormatFloat(float64(e.Val), 'g', -1, 32)
	case KindUn:
		for name, op := range unOps {
			if op == e.Op {
				return name + "(" + FormatExpr(e.L) + ")"
			}
		}
	case KindBin:
		for name, op := range binOps {
			if op == e.Op {
				return name + "(" + FormatExpr(e.L) + ", " + FormatExpr(e.R) + ")"
			}
		}
	}
	return "?"
}

// trimmedName normalizes a user-supplied identifier.
func trimmedName(s, fallback string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return fallback
	}
	return s
}
