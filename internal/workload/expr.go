// Package workload defines the loop kernels and co-running workloads of the
// paper's evaluation (Table 3): 28 SPEC CPU2017 loop phases and 14 OpenCV
// kernels, combined into 34 workloads, the 25 two-core pairs of Figure 10 and
// the four 4-core groups of Figure 16.
//
// SPEC sources are proprietary, so each kernel is a synthesized equivalent
// described by a tiny expression DSL over data streams. The DSL carries real
// value semantics (the simulator executes kernels on actual float32 arrays),
// and its instruction mix is constructed so that the operational intensities
// of Eq. 5 match the values published in Table 3 (validated by
// TestTable3_OperationalIntensities).
package workload

import (
	"fmt"
	"math"

	"occamy/internal/isa"
)

// ExprKind discriminates expression nodes.
type ExprKind uint8

const (
	// KindSlot reads the vector loaded by a load slot (see Kernel.Slots).
	KindSlot ExprKind = iota
	// KindConst is a floating-point literal broadcast across lanes.
	KindConst
	// KindBin applies a binary vector operation to two sub-expressions.
	KindBin
	// KindUn applies a unary vector operation (abs, neg, sqrt).
	KindUn
)

// Expr is one node of a kernel's per-element computation.
type Expr struct {
	Kind ExprKind
	Slot int     // KindSlot: index into Kernel.Slots
	Val  float32 // KindConst; for integer constants, the lane bits
	// IntConst marks a constant whose Val carries int32 lane bits (set by
	// IConst; affects only formatting).
	IntConst bool
	Op       isa.Opcode // KindBin/KindUn operator
	L, R     *Expr
}

// Slot returns an expression reading load slot i.
func Slot(i int) *Expr { return &Expr{Kind: KindSlot, Slot: i} }

// Const returns a literal expression.
func Const(v float32) *Expr { return &Expr{Kind: KindConst, Val: v} }

// Bin returns a binary operation node.
func Bin(op isa.Opcode, l, r *Expr) *Expr { return &Expr{Kind: KindBin, Op: op, L: l, R: r} }

// Add, Sub, Mul, Div, Max, Min are convenience constructors.
func Add(l, r *Expr) *Expr { return Bin(isa.OpVFAdd, l, r) }

// Sub returns l - r.
func Sub(l, r *Expr) *Expr { return Bin(isa.OpVFSub, l, r) }

// Mul returns l * r.
func Mul(l, r *Expr) *Expr { return Bin(isa.OpVFMul, l, r) }

// Div returns l / r.
func Div(l, r *Expr) *Expr { return Bin(isa.OpVFDiv, l, r) }

// Max returns max(l, r).
func Max(l, r *Expr) *Expr { return Bin(isa.OpVFMax, l, r) }

// Min returns min(l, r).
func Min(l, r *Expr) *Expr { return Bin(isa.OpVFMin, l, r) }

// IConst returns an integer-lane literal: the int32 value stored as raw
// lane bits, for use with the integer vector operations (IAdd, IAnd, ...).
func IConst(v int32) *Expr {
	return &Expr{Kind: KindConst, Val: math.Float32frombits(uint32(v)), IntConst: true}
}

// IAdd, ISub, IMul, IAnd, IOr, IXor, IShl, IShr, IMax, IMin build integer
// vector operations over the lane bits.
func IAdd(l, r *Expr) *Expr { return Bin(isa.OpVIAdd, l, r) }

// ISub returns int32(l) - int32(r).
func ISub(l, r *Expr) *Expr { return Bin(isa.OpVISub, l, r) }

// IMul returns int32(l) * int32(r).
func IMul(l, r *Expr) *Expr { return Bin(isa.OpVIMul, l, r) }

// IAnd returns l & r.
func IAnd(l, r *Expr) *Expr { return Bin(isa.OpVIAnd, l, r) }

// IOr returns l | r.
func IOr(l, r *Expr) *Expr { return Bin(isa.OpVIOr, l, r) }

// IXor returns l ^ r.
func IXor(l, r *Expr) *Expr { return Bin(isa.OpVIXor, l, r) }

// IShl returns int32(l) << (r & 31).
func IShl(l, r *Expr) *Expr { return Bin(isa.OpVIShl, l, r) }

// IShr returns int32(l) >> (r & 31), arithmetic.
func IShr(l, r *Expr) *Expr { return Bin(isa.OpVIShr, l, r) }

// IMax returns max(int32(l), int32(r)).
func IMax(l, r *Expr) *Expr { return Bin(isa.OpVIMax, l, r) }

// IMin returns min(int32(l), int32(r)).
func IMin(l, r *Expr) *Expr { return Bin(isa.OpVIMin, l, r) }

// Un returns a unary operation node (OpVFAbs, OpVFNeg, OpVFSqrt).
func Un(op isa.Opcode, l *Expr) *Expr { return &Expr{Kind: KindUn, Op: op, L: l} }

// Abs returns |l|.
func Abs(l *Expr) *Expr { return Un(isa.OpVFAbs, l) }

// Sqrt returns sqrt(l).
func Sqrt(l *Expr) *Expr { return Un(isa.OpVFSqrt, l) }

// countBin returns the number of operation nodes in e (the SIMD compute
// instructions the tree compiles to; Eq. 5's comp term).
func countBin(e *Expr) int {
	switch {
	case e == nil:
		return 0
	case e.Kind == KindBin:
		return 1 + countBin(e.L) + countBin(e.R)
	case e.Kind == KindUn:
		return 1 + countBin(e.L)
	default:
		return 0
	}
}

// maxSlot returns the largest slot index referenced, or -1.
func maxSlot(e *Expr) int {
	if e == nil {
		return -1
	}
	switch e.Kind {
	case KindSlot:
		return e.Slot
	case KindBin, KindUn:
		l, r := maxSlot(e.L), maxSlot(e.R)
		if l > r {
			return l
		}
		return r
	default:
		return -1
	}
}

// evalExpr computes the value of e for one element, with slotVals holding
// the loaded value of each slot.
func evalExpr(e *Expr, slotVals []float32) float32 {
	switch e.Kind {
	case KindSlot:
		return slotVals[e.Slot]
	case KindConst:
		return e.Val
	case KindBin:
		l := evalExpr(e.L, slotVals)
		r := evalExpr(e.R, slotVals)
		switch e.Op {
		case isa.OpVFAdd:
			return l + r
		case isa.OpVFSub:
			return l - r
		case isa.OpVFMul:
			return l * r
		case isa.OpVFDiv:
			return l / r
		case isa.OpVFMax:
			return float32(math.Max(float64(l), float64(r)))
		case isa.OpVFMin:
			return float32(math.Min(float64(l), float64(r)))
		default:
			if out, ok := isa.IntBinFn(e.Op, l, r); ok {
				return out
			}
			panic(fmt.Sprintf("workload: unsupported binary expr op %s", e.Op))
		}
	case KindUn:
		l := evalExpr(e.L, slotVals)
		switch e.Op {
		case isa.OpVFAbs:
			return float32(math.Abs(float64(l)))
		case isa.OpVFNeg:
			return -l
		case isa.OpVFSqrt:
			return float32(math.Sqrt(float64(l)))
		default:
			panic(fmt.Sprintf("workload: unsupported unary expr op %s", e.Op))
		}
	default:
		panic("workload: invalid expr kind")
	}
}

// ershov returns the Ershov number of e: the number of temporary registers
// an optimal evaluation order needs. Long chains stay at 2; only perfectly
// balanced trees grow it logarithmically.
func ershov(e *Expr) int {
	if e == nil {
		return 0
	}
	switch e.Kind {
	case KindBin:
		l, r := ershov(e.L), ershov(e.R)
		if l == r {
			return l + 1
		}
		if l > r {
			return l
		}
		return r
	case KindUn:
		return ershov(e.L)
	default:
		return 1
	}
}
