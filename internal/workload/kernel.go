package workload

import (
	"fmt"

	"occamy/internal/isa"
)

// ElemBytes is the element size of every kernel (32-bit floats, matching the
// paper's "each lane processing 32-bit floating-point data").
const ElemBytes = 4

// Halo is the number of extra elements allocated before and after each
// stream so stencil offsets never read out of bounds.
const Halo = 4

// LoadSlot is one vector load instruction in the kernel body. Several slots
// may name the same stream (with the same or different element offsets):
// that is the *data reuse* of Eq. 5 — the loads move more bytes than the
// per-iteration footprint, making oi_issue < oi_mem.
type LoadSlot struct {
	Stream int // input stream index
	Offset int // element offset (stencil); 0 for plain a[i]
}

// Stmt is one statement of the loop body: a store of E to output stream Out,
// or (when the kernel is a reduction) an accumulation of E into the running
// scalar.
type Stmt struct {
	Out int // output stream index; ignored for reductions
	E   *Expr
}

// Kernel is one loop phase: the unit the Occamy compiler identifies as a
// phase (§6.3, "a loop typically being regarded as a phase").
type Kernel struct {
	Name string
	// Slots are the load instructions of one iteration.
	Slots []LoadSlot
	// Stmts are the computations; each non-reduction statement stores to
	// its output stream.
	Stmts []Stmt
	// Reduction marks a loop that accumulates a scalar (dot product,
	// norms). Reduction kernels have exactly one statement and no stores.
	Reduction bool
	// FuseMAC lets the reduction accumulate fuse a top-level multiply
	// into a single VFMLA (affects the instruction count of Eq. 5).
	FuseMAC bool
	// Elems is the trip count of one pass over the streams.
	Elems int
	// Repeats is the number of passes over the same streams; >1 models a
	// hot loop with a cache-resident working set (the compute-intensive
	// kernels), 1 models a single cold streaming pass (memory-intensive).
	Repeats int
	// PublishedOI is the oi_mem value from Table 3 of the paper, kept for
	// validation; zero when the kernel is not from Table 3.
	PublishedOI float64
	// IntData marks an integer kernel: input streams are initialized with
	// small int32 lane values and results are compared bit-exactly. The
	// statement expressions should use the integer operations.
	IntData bool
}

// Validate checks structural invariants; the registry test runs it on every
// kernel.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("workload: kernel without a name")
	}
	if k.Elems <= 0 || k.Repeats <= 0 {
		return fmt.Errorf("workload: %s: non-positive elems/repeats", k.Name)
	}
	if len(k.Stmts) == 0 {
		return fmt.Errorf("workload: %s: no statements", k.Name)
	}
	if k.Reduction && len(k.Stmts) != 1 {
		return fmt.Errorf("workload: %s: reductions need exactly one statement", k.Name)
	}
	if k.Reduction && k.IntData {
		return fmt.Errorf("workload: %s: reductions accumulate with FP adds; integer reductions are unsupported", k.Name)
	}
	for _, s := range k.Stmts {
		if m := maxSlot(s.E); m >= len(k.Slots) {
			return fmt.Errorf("workload: %s: expr references slot %d of %d", k.Name, m, len(k.Slots))
		}
		if !k.Reduction && s.Out < 0 {
			return fmt.Errorf("workload: %s: store statement without output stream", k.Name)
		}
	}
	return nil
}

// NumLoads returns the vector load instructions per iteration.
func (k *Kernel) NumLoads() int { return len(k.Slots) }

// NumStores returns the vector store instructions per iteration.
func (k *Kernel) NumStores() int {
	if k.Reduction {
		return 0
	}
	return len(k.Stmts)
}

// NumCompute returns the SIMD compute instructions per iteration: the binary
// nodes of every statement plus the reduction accumulate (which fuses into
// the top-level multiply when FuseMAC is set).
func (k *Kernel) NumCompute() int {
	n := 0
	for _, s := range k.Stmts {
		n += countBin(s.E)
	}
	if k.Reduction {
		if k.FuseMAC && len(k.Stmts) == 1 && k.Stmts[0].E.Kind == KindBin && k.Stmts[0].E.Op == isa.OpVFMul {
			// acc += a*b fuses to one VFMLA: the multiply node is
			// absorbed, the accumulate adds nothing extra.
		} else {
			n++ // separate accumulate VFADD
		}
	}
	return n
}

// InStreams returns the distinct input stream indices, in first-use order.
func (k *Kernel) InStreams() []int {
	seen := make(map[int]bool)
	var out []int
	for _, s := range k.Slots {
		if !seen[s.Stream] {
			seen[s.Stream] = true
			out = append(out, s.Stream)
		}
	}
	return out
}

// OutStreams returns the distinct output stream indices, in order.
func (k *Kernel) OutStreams() []int {
	if k.Reduction {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	for _, s := range k.Stmts {
		if !seen[s.Out] {
			seen[s.Out] = true
			out = append(out, s.Out)
		}
	}
	return out
}

// UniqueStreams returns the per-iteration footprint streams: distinct input
// streams plus distinct output streams (Eq. 5's fp term counts each stream's
// new bytes once, regardless of how many instructions touch it).
func (k *Kernel) UniqueStreams() int {
	return len(k.InStreams()) + len(k.OutStreams())
}

// OI computes the operational-intensity pair of Eq. 5:
//
//	oi_issue = comp / sum of bytes moved by memory instructions
//	oi_mem   = comp / per-iteration memory footprint (reuse considered)
//
// both per element (the trip count cancels).
func (k *Kernel) OI() isa.OIPair {
	comp := float64(k.NumCompute())
	issueBytes := float64(ElemBytes * (k.NumLoads() + k.NumStores()))
	memBytes := float64(ElemBytes * k.UniqueStreams())
	return isa.OIPair{Issue: comp / issueBytes, Mem: comp / memBytes}
}

// MaxTemps returns the largest Ershov number among the statement
// expressions: the temporary vector registers the compiler needs.
func (k *Kernel) MaxTemps() int {
	d := 0
	for _, s := range k.Stmts {
		if sd := ershov(s.E); sd > d {
			d = sd
		}
	}
	return d
}

// Reference computes the expected result arrays and reduction value on the
// host, for validating the simulator's functional execution. in holds one
// slice per input stream of length Elems+2*Halo (the halo mirrors the
// simulated layout); outputs are indexed by output stream.
func (k *Kernel) Reference(in map[int][]float32) (out map[int][]float32, reduction float32) {
	out = make(map[int][]float32)
	for _, os := range k.OutStreams() {
		out[os] = make([]float32, k.Elems)
	}
	slotVals := make([]float32, len(k.Slots))
	var acc float32
	for rep := 0; rep < k.Repeats; rep++ {
		for i := 0; i < k.Elems; i++ {
			for si, slot := range k.Slots {
				slotVals[si] = in[slot.Stream][i+Halo+slot.Offset]
			}
			for _, s := range k.Stmts {
				v := evalExpr(s.E, slotVals)
				if k.Reduction {
					acc += v
				} else {
					out[s.Out][i] = v
				}
			}
		}
	}
	return out, acc
}
