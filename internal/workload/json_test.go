package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseExprBasics(t *testing.T) {
	cases := map[string]string{
		"s0":                         "s0",
		"c2.5":                       "c2.5",
		"c-3":                        "c-3",
		"mul(s0, s1)":                "mul(s0, s1)",
		" add( mul(s0,c2.5) , s1 ) ": "add(mul(s0, c2.5), s1)",
		"sqrt(add(mul(s0,s0),c1))":   "sqrt(add(mul(s0, s0), c1))",
		"neg(abs(s2))":               "neg(abs(s2))",
		"min(max(s0,c0),c1)":         "min(max(s0, c0), c1)",
		"div(sub(s0,s1),add(s0,s1))": "div(sub(s0, s1), add(s0, s1))",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		if got := FormatExpr(e); got != want {
			t.Errorf("ParseExpr(%q) round-trips to %q, want %q", src, got, want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	bad := []string{
		"", "s", "c", "sx", "foo(s0,s1)", "mul(s0)", "mul(s0,s1,s2)",
		"mul(s0 s1)", "mul(s0,s1", "s0 extra", "add(,s1)", "s-1",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestParseExprEvaluates(t *testing.T) {
	e, err := ParseExpr("add(mul(s0, c2.5), s1)")
	if err != nil {
		t.Fatal(err)
	}
	got := evalExpr(e, []float32{4, 3})
	if got != 13 {
		t.Fatalf("eval = %v, want 13", got)
	}
}

const saxpyJSON = `{
  "name": "saxpy",
  "phases": [
    {
      "kernel": "saxpy",
      "elems": 512,
      "repeats": 2,
      "loads": [{"stream": 0}, {"stream": 1}],
      "statements": [{"out": 2, "expr": "add(mul(s0, c2.5), s1)"}]
    }
  ]
}`

func TestParseWorkloadJSON(t *testing.T) {
	w, err := ParseWorkloadJSON([]byte(saxpyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "saxpy" || len(w.Phases) != 1 {
		t.Fatalf("workload %+v", w)
	}
	k := w.Phases[0]
	if k.NumLoads() != 2 || k.NumStores() != 1 || k.NumCompute() != 2 {
		t.Fatalf("counts: %d/%d/%d", k.NumLoads(), k.NumStores(), k.NumCompute())
	}
	oi := k.OI()
	if oi.Mem != 2.0/12.0 {
		t.Fatalf("oi_mem = %v", oi.Mem)
	}
}

func TestParseWorkloadJSONStencil(t *testing.T) {
	src := `{
	  "name": "blur",
	  "phases": [{
	    "kernel": "blur3",
	    "elems": 256,
	    "loads": [{"stream": 0, "offset": -1}, {"stream": 0}, {"stream": 0, "offset": 1}],
	    "statements": [{"out": 1, "expr": "mul(add(add(s0, s1), s2), c0.25)"}]
	  }]
	}`
	w, err := ParseWorkloadJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	k := w.Phases[0]
	if k.UniqueStreams() != 2 {
		t.Fatalf("stencil unique streams = %d, want 2", k.UniqueStreams())
	}
	if !(k.OI().Issue < k.OI().Mem) {
		t.Fatal("stencil reuse must lower oi_issue")
	}
}

func TestParseWorkloadJSONReduction(t *testing.T) {
	src := `{
	  "name": "dot",
	  "phases": [{
	    "kernel": "dot",
	    "elems": 256,
	    "reduction": true,
	    "fuse_mac": true,
	    "loads": [{"stream": 0}, {"stream": 1}],
	    "statements": [{"out": 0, "expr": "mul(s0, s1)"}]
	  }]
	}`
	w, err := ParseWorkloadJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	k := w.Phases[0]
	if !k.Reduction || k.NumStores() != 0 || k.NumCompute() != 1 {
		t.Fatalf("reduction kernel wrong: %+v", k)
	}
}

func TestParseWorkloadJSONErrors(t *testing.T) {
	bad := []string{
		`{`,                        // invalid JSON
		`{"name":"x","phases":[]}`, // no phases
		`{"name":"x","phases":[{"kernel":"k","elems":0,"loads":[{"stream":0}],"statements":[{"out":1,"expr":"s0"}]}]}`,                                         // zero elems
		`{"name":"x","phases":[{"kernel":"k","elems":64,"loads":[{"stream":0}],"statements":[{"out":1,"expr":"bogus(s0)"}]}]}`,                                 // bad expr
		`{"name":"x","phases":[{"kernel":"k","elems":64,"loads":[{"stream":0}],"statements":[{"out":0,"expr":"s0"}]}]}`,                                        // output aliases input
		`{"name":"x","phases":[{"kernel":"k","elems":64,"loads":[{"stream":0,"offset":99}],"statements":[{"out":1,"expr":"s0"}]}]}`,                            // offset beyond halo
		`{"name":"x","phases":[{"kernel":"k","elems":64,"loads":[{"stream":0}],"statements":[{"out":1,"expr":"s5"}]}]}`,                                        // slot out of range
		`{"name":"x","phases":[{"kernel":"k","elems":64,"reduction":true,"loads":[{"stream":0}],"statements":[{"out":0,"expr":"s0"},{"out":1,"expr":"s0"}]}]}`, // 2 stmts reduction
	}
	for i, src := range bad {
		if _, err := ParseWorkloadJSON([]byte(src)); err == nil {
			t.Errorf("case %d should fail:\n%s", i, src)
		}
	}
}

func TestMarshalWorkloadJSONRoundTrip(t *testing.T) {
	w1, err := ParseWorkloadJSON([]byte(saxpyJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalWorkloadJSON(w1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWorkloadJSON(data)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, data)
	}
	if w2.Phases[0].NumCompute() != w1.Phases[0].NumCompute() ||
		w2.Phases[0].OI() != w1.Phases[0].OI() {
		t.Fatal("round trip changed the kernel")
	}
}

func TestRegistryKernelsSurviveJSONRoundTrip(t *testing.T) {
	// Every built-in kernel can be exported and re-imported losslessly
	// (modulo the alias check, which built-ins respect).
	r := NewRegistry()
	for _, name := range r.WorkloadNames() {
		w := r.Workload(name)
		data, err := MarshalWorkloadJSON(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		w2, err := ParseWorkloadJSON(data)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		for i := range w.Phases {
			if w.Phases[i].OI() != w2.Phases[i].OI() {
				t.Fatalf("%s phase %d: OI changed across round trip", name, i)
			}
			if w.Phases[i].NumCompute() != w2.Phases[i].NumCompute() {
				t.Fatalf("%s phase %d: compute count changed", name, i)
			}
		}
	}
}

func TestFormatExprParseRoundTripProperty(t *testing.T) {
	// Random small trees render into text that parses back equivalent.
	f := func(seed uint32) bool {
		e := randomExpr(seed, 3)
		src := FormatExpr(e)
		e2, err := ParseExpr(src)
		if err != nil {
			return false
		}
		// Compare by evaluation on fixed slot values.
		vals := []float32{1.25, -0.5, 3, 0.75, 2, 1, 1, 1}
		a, b := evalExpr(e, vals), evalExpr(e2, vals)
		return a == b || (a != a && b != b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// randomExpr builds a deterministic pseudo-random expression tree.
func randomExpr(seed uint32, depth int) *Expr {
	next := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	var build func(d int) *Expr
	build = func(d int) *Expr {
		if d == 0 || next()%4 == 0 {
			if next()%2 == 0 {
				return Slot(int(next() % 4))
			}
			return Const(float32(next()%16) / 4)
		}
		switch next() % 3 {
		case 0:
			ops := []func(a, b *Expr) *Expr{Add, Sub, Mul, Max, Min}
			return ops[next()%uint32(len(ops))](build(d-1), build(d-1))
		case 1:
			return Abs(build(d - 1))
		default:
			return Mul(build(d-1), build(d-1))
		}
	}
	return build(depth)
}

func TestFormatExprUnknown(t *testing.T) {
	if !strings.Contains(FormatExpr(&Expr{Kind: 99}), "?") {
		t.Fatal("unknown kinds should render defensively")
	}
}
