package mem

import "fmt"

// Validate checks a cache configuration for the invariants NewCache would
// otherwise panic on, plus the physical-plausibility range checks (positive
// bandwidth, a power-of-two set count). It exists so occamy.Config.Validate
// can reject bad machine JSON with an error before anything is built.
func (cfg CacheConfig) Validate() error {
	if cfg.SizeBytes <= 0 {
		return fmt.Errorf("mem: %s: size must be positive, got %d", cfg.Name, cfg.SizeBytes)
	}
	if cfg.Ways <= 0 {
		return fmt.Errorf("mem: %s: ways must be positive, got %d", cfg.Name, cfg.Ways)
	}
	if cfg.BytesPerCycle <= 0 {
		return fmt.Errorf("mem: %s: bandwidth must be positive, got %g B/cy", cfg.Name, cfg.BytesPerCycle)
	}
	if cfg.MissSlots < 0 {
		return fmt.Errorf("mem: %s: miss slots must be non-negative, got %d", cfg.Name, cfg.MissSlots)
	}
	if cfg.MissQuota < 0 {
		return fmt.Errorf("mem: %s: miss quota must be non-negative, got %d", cfg.Name, cfg.MissQuota)
	}
	if cfg.PrefetchDegree < 0 {
		return fmt.Errorf("mem: %s: prefetch degree must be non-negative, got %d", cfg.Name, cfg.PrefetchDegree)
	}
	numLines := cfg.SizeBytes / LineBytes
	if numLines <= 0 {
		return fmt.Errorf("mem: %s: size %d smaller than a %d-byte line", cfg.Name, cfg.SizeBytes, LineBytes)
	}
	numSets := numLines / cfg.Ways
	if numSets == 0 || numSets&(numSets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d (size %d, ways %d) must be a positive power of two",
			cfg.Name, numSets, cfg.SizeBytes, cfg.Ways)
	}
	return nil
}

// Validate checks a DRAM configuration.
func (cfg DRAMConfig) Validate() error {
	if cfg.BytesPerCycle <= 0 {
		return fmt.Errorf("mem: %s: bandwidth must be positive, got %g B/cy", cfg.Name, cfg.BytesPerCycle)
	}
	return nil
}

// Validate checks the whole hierarchy configuration, wrapping the per-level
// checks.
func (cfg HierarchyConfig) Validate() error {
	if cfg.Cores <= 0 {
		return fmt.Errorf("mem: hierarchy needs at least one core, got %d", cfg.Cores)
	}
	for _, c := range []CacheConfig{cfg.L1D, cfg.VecCache, cfg.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return cfg.DRAM.Validate()
}
