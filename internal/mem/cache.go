package mem

import (
	"fmt"

	"occamy/internal/sim"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name          string
	SizeBytes     int
	Ways          int
	LatencyCycles uint64  // hit latency
	BytesPerCycle float64 // sustained bandwidth into the requester
	MissSlots     int     // max overlapping outstanding misses (MSHRs)
	// MissQuota caps the outstanding misses of any single requestor
	// (AccessFrom's who); 0 disables the quota. Shared caches use it to
	// arbitrate fill slots fairly between cores.
	MissQuota int
	// PrefetchDegree enables a next-line streaming prefetcher: each
	// demand miss also fetches the following N lines (if MSHRs allow).
	// Vector units stream unit-stride, so this is what lets a narrow
	// vector length sustain full memory bandwidth — without it the
	// issue window cannot cover the DRAM bandwidth-delay product.
	PrefetchDegree int
}

// Cache is a set-associative, write-back, write-allocate timing cache with
// LRU replacement. It tracks tags only; data lives in the functional Memory.
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine // [set][way]
	bw    bwMeter
	miss  missTracker
	next  Port
	stats *sim.Stats
	// setMask and setShift locate the set index in an address.
	setMask  uint64
	setShift uint
	// Precomputed counter cells (nil without a stats registry). Bumping a
	// cell is allocation-free; concatenating the counter name per access —
	// the previous form — was the simulator's dominant steady-state
	// allocation source.
	cHit, cMiss, cReject, cWriteback, cPrefetch *uint64
	// retryHits is ReplayRetries' reusable scratch buffer.
	retryHits []hitLine
}

// hitLine is one leading resident line of a replayed retry attempt.
type hitLine struct {
	way *cacheLine
	b   int
}

type cacheLine struct {
	valid bool
	dirty bool
	// prefetched marks a line brought in by the prefetcher and not yet
	// demanded; the first demand hit re-arms the stream prefetch.
	prefetched bool
	tag        uint64
	lru        uint64 // last-touch stamp; larger = more recent
}

// NewCache builds a cache in front of next. Stats may be nil.
func NewCache(cfg CacheConfig, next Port, stats *sim.Stats) *Cache {
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("mem: bad cache config %+v", cfg))
	}
	numLines := cfg.SizeBytes / LineBytes
	numSets := numLines / cfg.Ways
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("mem: %s: set count %d must be a positive power of two", cfg.Name, numSets))
	}
	if cfg.MissSlots <= 0 {
		cfg.MissSlots = 16
	}
	c := &Cache{
		cfg:      cfg,
		next:     next,
		stats:    stats,
		bw:       bwMeter{bytesPerCycle: cfg.BytesPerCycle},
		miss:     missTracker{slots: cfg.MissSlots, quota: cfg.MissQuota},
		setMask:  uint64(numSets - 1),
		setShift: 6, // log2(LineBytes)
	}
	c.sets = make([][]cacheLine, numSets)
	lines := make([]cacheLine, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], lines = lines[:cfg.Ways], lines[cfg.Ways:]
	}
	if stats != nil {
		c.cHit = stats.Counter(cfg.Name + ".hit")
		c.cMiss = stats.Counter(cfg.Name + ".miss")
		c.cReject = stats.Counter(cfg.Name + ".mshr_reject")
		c.cWriteback = stats.Counter(cfg.Name + ".writeback")
		c.cPrefetch = stats.Counter(cfg.Name + ".prefetch")
	}
	return c
}

// SetBWFactor derates (or restores) the cache's port bandwidth to factor
// times the configured rate — the fault-injection token-rate cut. The
// meter's float occupancy carries over, so a factor pinned at 1.0 leaves
// timing bit-identical.
func (c *Cache) SetBWFactor(factor float64) {
	c.bw.bytesPerCycle = c.cfg.BytesPerCycle * factor
}

// Access implements Port. Multi-line requests complete when their last line
// is available; each line consumes this cache's port bandwidth for the bytes
// actually requested (not the whole line — narrow vector accesses must not
// waste port width), and misses consume the next level's bandwidth for the
// full line fill.
func (c *Cache) Access(now uint64, addr uint64, size int, write bool) (uint64, bool) {
	return c.AccessFrom(now, addr, size, write, -1)
}

// AccessFrom is Access with a requestor id, used by shared caches to
// arbitrate MSHR slots fairly (see CacheConfig.MissQuota).
func (c *Cache) AccessFrom(now uint64, addr uint64, size int, write bool, who int) (uint64, bool) {
	if size <= 0 {
		size = 1
	}
	first, n := lineSpan(addr, size)
	end := addr + uint64(size)
	done := now
	for i := 0; i < n; i++ {
		lineAddr := first + uint64(i*LineBytes)
		// Bytes of this request that fall within the line.
		lo, hi := lineAddr, lineAddr+LineBytes
		if addr > lo {
			lo = addr
		}
		if end < hi {
			hi = end
		}
		lineDone, ok := c.accessLine(now, lineAddr, int(hi-lo), write, who)
		if !ok {
			return 0, false
		}
		done = maxU64(done, lineDone)
	}
	return done, true
}

func (c *Cache) accessLine(now uint64, lineAddr uint64, reqBytes int, write bool, who int) (uint64, bool) {
	set := (lineAddr >> c.setShift) & c.setMask
	tag := lineAddr >> (c.setShift + popcount(c.setMask))
	ways := c.sets[set]

	// Hit path: the port moves only the requested bytes. The first demand
	// hit on a prefetched line chases the stream: it issues the next
	// prefetches so a unit-stride stream keeps its lines in flight
	// continuously.
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w].lru = now
			if write {
				ways[w].dirty = true
			}
			if ways[w].prefetched {
				ways[w].prefetched = false
				c.prefetch(now, lineAddr, who)
			}
			c.count(c.cHit)
			xfer := c.bw.consume(now, reqBytes)
			return maxU64(xfer, now+c.cfg.LatencyCycles), true
		}
	}

	// Miss path: fill from the next level, evicting the LRU way. The MSHR
	// check comes first so a rejected request consumes no downstream
	// bandwidth (retries must not inflate the next level's queue).
	if !c.miss.hasSlot(now, who) {
		c.count(c.cReject)
		return 0, false
	}
	fillDone, ok := c.next.Access(now+c.cfg.LatencyCycles, lineAddr, LineBytes, false)
	if !ok {
		return 0, false
	}
	c.count(c.cMiss)
	c.miss.reserve(fillDone, who)
	c.prefetch(now, lineAddr, who)
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		// Write-back consumes next-level bandwidth but does not delay
		// the demand fill (eviction buffers).
		wbAddr := (ways[victim].tag << (c.setShift + popcount(c.setMask))) | (set << c.setShift)
		c.next.Access(now, wbAddr, LineBytes, true)
		c.count(c.cWriteback)
	}
	ways[victim] = cacheLine{valid: true, dirty: write, tag: tag, lru: now}
	xfer := c.bw.consume(now, LineBytes)
	return maxU64(fillDone, xfer), true
}

// ProbeRetry reports whether AccessFrom(now, addr, size, write, who) would
// be rejected with cycle-invariant side effects, and if so the earliest
// cycle at which the outcome could change. This is the skip-ahead probe for
// MSHR retry storms: AccessFrom walks the request's lines in order, so a
// retry either rejects on its FIRST missing line (a miss with no free MSHR
// slot) after repeating the exact same hit work on the leading resident
// lines — port bandwidth for each line's requested bytes, an LRU touch, a
// hit count — or it makes progress. The repeated form holds until an
// outstanding miss retires (reservations only come from accesses, and every
// potential requestor is quiescent while this probe's verdict is in force),
// so the wake is the tracker's earliest release. Three outcomes are NOT
// cycle-invariant and report false: a line that would start a fill, a
// prefetched line whose first demand hit would re-arm the stream, and a
// request that would complete. hasSlot's lazy retirement is the only state
// touched here; it is idempotent and time-indexed, so probing does not
// perturb timing.
func (c *Cache) ProbeRetry(now uint64, addr uint64, size int, write bool, who int) (uint64, bool) {
	if size <= 0 {
		size = 1
	}
	first, lines := lineSpan(addr, size)
	for i := 0; i < lines; i++ {
		lineAddr := first + uint64(i*LineBytes)
		set := (lineAddr >> c.setShift) & c.setMask
		tag := lineAddr >> (c.setShift + popcount(c.setMask))
		resident := false
		for _, l := range c.sets[set] {
			if l.valid && l.tag == tag {
				if l.prefetched {
					return 0, false // first demand hit re-arms the prefetcher
				}
				resident = true
				break
			}
		}
		if resident {
			continue
		}
		if c.miss.hasSlot(now, who) {
			return 0, false // the line would start a fill
		}
		return c.miss.nextRelease(), true
	}
	return 0, false // full hit: the access would complete
}

// ReplayRetries applies the bulk side effects of n elided retry attempts of
// AccessFrom(addr, size, write, who) at cycles [from, from+n), exactly as n
// real rejected attempts would have: per cycle, every leading resident line
// repeats its hit — consuming port bandwidth for the line's requested bytes,
// in line order — and the first missing line counts one MSHR reject. The
// bandwidth meter is advanced attempt by attempt with the same consume calls
// the real ticks would make, keeping its float state bit-identical; LRU
// stamps land on the final attempt cycle, the value the legacy path leaves
// behind. Call only for a window ProbeRetry approved at `from`.
func (c *Cache) ReplayRetries(from, n uint64, addr uint64, size int, write bool, who int) {
	if size <= 0 {
		size = 1
	}
	first, lines := lineSpan(addr, size)
	end := addr + uint64(size)
	hits := c.retryHits[:0]
	for i := 0; i < lines; i++ {
		lineAddr := first + uint64(i*LineBytes)
		set := (lineAddr >> c.setShift) & c.setMask
		tag := lineAddr >> (c.setShift + popcount(c.setMask))
		ways := c.sets[set]
		var way *cacheLine
		for k := range ways {
			if ways[k].valid && ways[k].tag == tag {
				way = &ways[k]
				break
			}
		}
		if way == nil {
			break // the rejecting line; each attempt stops here
		}
		lo, hi := lineAddr, lineAddr+LineBytes
		if addr > lo {
			lo = addr
		}
		if end < hi {
			hi = end
		}
		hits = append(hits, hitLine{way, int(hi - lo)})
	}
	for t := from; t < from+n; t++ {
		for _, h := range hits {
			c.bw.consume(t, h.b)
		}
	}
	for _, h := range hits {
		h.way.lru = from + n - 1
		if write {
			h.way.dirty = true
		}
	}
	if c.cHit != nil {
		*c.cHit += uint64(len(hits)) * n
		*c.cReject += n
	}
	c.retryHits = hits[:0]
}

// prefetch issues next-line fills after a demand miss (attributed to the
// same requestor), skipping lines that are already resident and stopping
// when MSHRs run out.
func (c *Cache) prefetch(now uint64, lineAddr uint64, who int) {
	for i := 1; i <= c.cfg.PrefetchDegree; i++ {
		pf := lineAddr + uint64(i*LineBytes)
		if c.present(pf) {
			continue
		}
		if !c.miss.hasSlot(now, who) {
			return
		}
		fillDone, ok := c.next.Access(now+c.cfg.LatencyCycles, pf, LineBytes, false)
		if !ok {
			return
		}
		c.miss.reserve(fillDone, who)
		c.install(now, pf, fillDone, false)
		c.count(c.cPrefetch)
	}
}

// present reports whether lineAddr is resident.
func (c *Cache) present(lineAddr uint64) bool {
	set := (lineAddr >> c.setShift) & c.setMask
	tag := lineAddr >> (c.setShift + popcount(c.setMask))
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// install places a line into its set, evicting LRU (with write-back).
func (c *Cache) install(now uint64, lineAddr uint64, _ uint64, dirty bool) {
	set := (lineAddr >> c.setShift) & c.setMask
	tag := lineAddr >> (c.setShift + popcount(c.setMask))
	ways := c.sets[set]
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		wbAddr := (ways[victim].tag << (c.setShift + popcount(c.setMask))) | (set << c.setShift)
		c.next.Access(now, wbAddr, LineBytes, true)
		c.count(c.cWriteback)
	}
	// Install with slightly-stale LRU so demand lines outrank prefetches.
	lru := uint64(0)
	if now > 0 {
		lru = now - 1
	}
	ways[victim] = cacheLine{valid: true, dirty: dirty, prefetched: true, tag: tag, lru: lru}
}

func (c *Cache) count(cell *uint64) {
	if cell != nil {
		*cell++
	}
}

// Hits and Misses report the demand access counts (requires a stats registry).
func (c *Cache) Hits() uint64 {
	if c.cHit == nil {
		return 0
	}
	return *c.cHit
}

// Misses reports the demand miss count.
func (c *Cache) Misses() uint64 {
	if c.cMiss == nil {
		return 0
	}
	return *c.cMiss
}

// CacheState is a deep, cycle-accurate snapshot of a Cache: every tag-array
// line, the bandwidth meter's exact float occupancy (including any fault-
// injected derating), and the outstanding-miss reservations. Counter values
// are NOT included — they live in the engine-wide sim.Stats registry, which
// snapshots separately.
type CacheState struct {
	lines         []cacheLine
	bytesPerCycle float64
	nextFree      float64
	pending       []missEntry
}

// Snapshot captures the cache's full timing state.
func (c *Cache) Snapshot() CacheState {
	ways := len(c.sets[0])
	st := CacheState{
		lines:         make([]cacheLine, 0, len(c.sets)*ways),
		bytesPerCycle: c.bw.bytesPerCycle,
		nextFree:      c.bw.nextFree,
		pending:       append([]missEntry(nil), c.miss.pending...),
	}
	for _, set := range c.sets {
		st.lines = append(st.lines, set...)
	}
	return st
}

// Restore rewinds the cache to a Snapshot taken on an identically configured
// instance.
func (c *Cache) Restore(st CacheState) {
	ways := len(c.sets[0])
	for i, set := range c.sets {
		copy(set, st.lines[i*ways:(i+1)*ways])
	}
	c.bw.bytesPerCycle = st.bytesPerCycle
	c.bw.nextFree = st.nextFree
	c.miss.pending = append(c.miss.pending[:0], st.pending...)
	c.miss.recompute()
}

func popcount(x uint64) uint {
	var n uint
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
