package mem

import (
	"strings"
	"testing"
)

func TestHierarchyConfigValidateAcceptsDefault(t *testing.T) {
	if err := DefaultHierarchyConfig(2).Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
}

func TestCacheConfigValidateRejectsBadShapes(t *testing.T) {
	base := DefaultHierarchyConfig(2).L2
	cases := []struct {
		name   string
		mutate func(*CacheConfig)
		want   string
	}{
		{"zero size", func(c *CacheConfig) { c.SizeBytes = 0 }, "size"},
		{"negative size", func(c *CacheConfig) { c.SizeBytes = -1 }, "size"},
		{"zero ways", func(c *CacheConfig) { c.Ways = 0 }, "ways"},
		{"zero bandwidth", func(c *CacheConfig) { c.BytesPerCycle = 0 }, "bandwidth"},
		{"negative bandwidth", func(c *CacheConfig) { c.BytesPerCycle = -4 }, "bandwidth"},
		// 3 ways over a power-of-two size gives a non-power-of-two set
		// count; NewCache would panic on this machine description.
		{"non-power-of-two sets", func(c *CacheConfig) { c.Ways = 3 }, "power of two"},
		{"sub-line size", func(c *CacheConfig) { c.SizeBytes = LineBytes / 2; c.Ways = 1 }, "line"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDRAMConfigValidate(t *testing.T) {
	if err := (DRAMConfig{Name: "dram", BytesPerCycle: 32}).Validate(); err != nil {
		t.Fatalf("good DRAM config rejected: %v", err)
	}
	if err := (DRAMConfig{Name: "dram"}).Validate(); err == nil {
		t.Fatal("zero-bandwidth DRAM config accepted")
	}
}

func TestHierarchyConfigValidateRejectsBadLevel(t *testing.T) {
	cfg := DefaultHierarchyConfig(2)
	cfg.VecCache.Ways = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad vector-cache level accepted")
	}
	cfg = DefaultHierarchyConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero-core hierarchy accepted")
	}
}
