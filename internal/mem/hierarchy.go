package mem

import (
	"fmt"

	"occamy/internal/obs"
	"occamy/internal/sim"
)

// HierarchyConfig gathers the Table 4 memory parameters.
type HierarchyConfig struct {
	Cores int

	L1D      CacheConfig
	VecCache CacheConfig
	L2       CacheConfig
	DRAM     DRAMConfig
}

// DefaultHierarchyConfig returns the Table 4 configuration for the given core
// count: 64 KB private L1D (4-cycle), 128 KB 8-way vector cache (5-cycle),
// 8 MB shared L2 (18-cycle), 64 GB/s DRAM; all lines 64 B.
func DefaultHierarchyConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores: cores,
		L1D: CacheConfig{
			Name:          "l1d",
			SizeBytes:     64 << 10,
			Ways:          4,
			LatencyCycles: 4,
			BytesPerCycle: 64,
			MissSlots:     8,
		},
		VecCache: CacheConfig{
			Name:          "vec",
			SizeBytes:     128 << 10,
			Ways:          8,
			LatencyCycles: 5,
			BytesPerCycle: 128, // 2 x 64B/cycle ports (Figure 5)
			// Enough outstanding fills to cover the DRAM
			// bandwidth-delay product (~120 cycles x 0.5 lines/cycle),
			// so streaming workloads are bandwidth- not MSHR-limited.
			MissSlots: 64,
			// Unit-stride streaming prefetch: lets narrow vector
			// lengths sustain full memory bandwidth (see CacheConfig).
			PrefetchDegree: 8,
		},
		L2: CacheConfig{
			Name:          "l2",
			SizeBytes:     8 << 20,
			Ways:          16,
			LatencyCycles: 18,
			BytesPerCycle: 64, // 1 line/cycle (Figure 7(b))
			MissSlots:     96,
		},
		DRAM: DRAMConfig{
			Name: "dram",
			// Effective latency of a streaming (row-buffer-friendly)
			// access pattern; bandwidth is Table 4's 64 GB/s.
			LatencyCycles: 60,
			BytesPerCycle: 32, // 64 GB/s at 2 GHz
		},
	}
}

// Hierarchy wires the levels together: each core's L1D and the single vector
// cache all miss into one shared L2, which misses into DRAM. This mirrors
// Figure 4 (vector cache beside the scalar L1s, unified L2 below).
type Hierarchy struct {
	Mem      *Memory
	L1D      []*Cache // one per core
	VecCache *Cache
	L2       *Cache
	DRAM     *DRAM
}

// NewHierarchy builds the hierarchy. Stats may be nil.
func NewHierarchy(cfg HierarchyConfig, stats *sim.Stats) *Hierarchy {
	if cfg.Cores <= 0 {
		panic("mem: hierarchy needs at least one core")
	}
	dram := NewDRAM(cfg.DRAM, stats)
	l2 := NewCache(cfg.L2, dram, stats)
	h := &Hierarchy{
		Mem:  NewMemory(),
		L2:   l2,
		DRAM: dram,
	}
	vcCfg := cfg.VecCache
	if vcCfg.MissQuota == 0 {
		// Fair fill-slot split between cores, with headroom.
		vcCfg.MissQuota = vcCfg.MissSlots * 3 / (4 * cfg.Cores) * 2
		if vcCfg.MissQuota <= 0 {
			vcCfg.MissQuota = vcCfg.MissSlots
		}
	}
	h.VecCache = NewCache(vcCfg, l2, stats)
	for c := 0; c < cfg.Cores; c++ {
		l1Cfg := cfg.L1D
		l1Cfg.Name = fmt.Sprintf("%s%d", cfg.L1D.Name, c)
		h.L1D = append(h.L1D, NewCache(l1Cfg, l2, stats))
	}
	return h
}

// SetProbe attaches the observability probe to the levels that record
// latency histograms (nil disables). Per-core bandwidth-stall attribution is
// signaled from the co-processor's LSU, which sees which core was refused.
func (h *Hierarchy) SetProbe(p *obs.Probe) {
	h.DRAM.SetProbe(p)
}

// HierarchyState is a deep snapshot of the whole memory system: functional
// contents plus every level's timing state.
type HierarchyState struct {
	Mem      MemoryState
	L1D      []CacheState
	VecCache CacheState
	L2       CacheState
	DRAM     DRAMState
}

// Snapshot captures the hierarchy's full functional and timing state.
func (h *Hierarchy) Snapshot() HierarchyState {
	st := HierarchyState{
		Mem:      h.Mem.Snapshot(),
		VecCache: h.VecCache.Snapshot(),
		L2:       h.L2.Snapshot(),
		DRAM:     h.DRAM.Snapshot(),
	}
	for _, l1 := range h.L1D {
		st.L1D = append(st.L1D, l1.Snapshot())
	}
	return st
}

// Restore rewinds the hierarchy to a Snapshot taken on an identically
// configured instance.
func (h *Hierarchy) Restore(st HierarchyState) {
	h.Mem.Restore(st.Mem)
	h.VecCache.Restore(st.VecCache)
	h.L2.Restore(st.L2)
	h.DRAM.Restore(st.DRAM)
	for c, l1 := range h.L1D {
		l1.Restore(st.L1D[c])
	}
}
