package mem

// LineBytes is the cache-line size used throughout Table 4.
const LineBytes = 64

// Port is the timing interface of one level of the hierarchy. Access asks
// for size bytes at addr starting no earlier than cycle now; it returns the
// cycle at which the data is available (loads) or accepted (stores), and
// ok=false if the level cannot accept the request this cycle (all outstanding
// miss slots busy) — the requester must retry on a later cycle.
type Port interface {
	Access(now uint64, addr uint64, size int, write bool) (done uint64, ok bool)
}

// SharedPort is a Port whose MSHR slots are arbitrated per requestor.
type SharedPort interface {
	Port
	// AccessFrom is Access attributed to requestor who (e.g. a core id);
	// pass -1 for unattributed requests.
	AccessFrom(now uint64, addr uint64, size int, write bool, who int) (done uint64, ok bool)
}

// RetryProber is the optional skip-ahead capability of a timing port: it can
// predict, without mutating any state, that an access would be rejected with
// cycle-invariant side effects until some wake cycle (see Cache.ProbeRetry),
// and bulk-replay those side effects for a window of elided retry attempts
// (see Cache.ReplayRetries).
type RetryProber interface {
	ProbeRetry(now uint64, addr uint64, size int, write bool, who int) (wake uint64, elidable bool)
	ReplayRetries(from, n uint64, addr uint64, size int, write bool, who int)
}

// bwMeter serializes bandwidth consumption: a component that can move
// bytesPerCycle bytes each cycle grants a request of b bytes the interval
// [max(now, nextFree), +b/bytesPerCycle). This is what makes two cores
// streaming through the shared L2/DRAM slow each other down, the central
// contention effect in the paper's memory-intensive workloads.
type bwMeter struct {
	bytesPerCycle float64
	nextFree      float64
}

// consume reserves b bytes of bandwidth and returns the cycle at which the
// transfer completes.
func (m *bwMeter) consume(now uint64, b int) uint64 {
	start := float64(now)
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + float64(b)/m.bytesPerCycle
	done := uint64(m.nextFree)
	if float64(done) < m.nextFree {
		done++
	}
	return done
}

// missTracker bounds the number of overlapping outstanding misses (an MSHR
// file). Completions are retired lazily on the next check. A per-requestor
// quota prevents one core's stream (and its prefetches) from monopolizing a
// shared cache's fill slots — the fairness that keeps co-running
// memory-bound workloads at parity (§7.4 Case 3).
type missTracker struct {
	slots   int
	quota   int // max per requestor; 0 = no quota
	pending []missEntry
	// earliest is the soonest pending release. retire is a pure no-op
	// before that cycle, which spares the hot access path the compaction
	// scan on the (common) cycles where nothing can complete.
	earliest uint64
}

type missEntry struct {
	release uint64
	who     int
}

func (t *missTracker) retire(now uint64) {
	if now < t.earliest {
		return
	}
	live := t.pending[:0]
	min := ^uint64(0)
	for _, e := range t.pending {
		if e.release > now {
			live = append(live, e)
			if e.release < min {
				min = e.release
			}
		}
	}
	t.pending = live
	t.earliest = min
}

// recompute rebuilds the retirement watermark after pending was replaced
// wholesale (checkpoint restore).
func (t *missTracker) recompute() {
	t.earliest = ^uint64(0)
	for _, e := range t.pending {
		if e.release < t.earliest {
			t.earliest = e.release
		}
	}
}

// hasSlot retires completed misses and reports whether requestor who may
// allocate a slot. It must be checked before consuming any downstream
// bandwidth, or rejected requests would inflate the next level's queue
// occupancy on every retry.
func (t *missTracker) hasSlot(now uint64, who int) bool {
	t.retire(now)
	if len(t.pending) >= t.slots {
		return false
	}
	if t.quota > 0 && who >= 0 {
		n := 0
		for _, e := range t.pending {
			if e.who == who {
				n++
			}
		}
		if n >= t.quota {
			return false
		}
	}
	return true
}

// reserve records a miss completing at done; call only after hasSlot.
func (t *missTracker) reserve(done uint64, who int) {
	if len(t.pending) == 0 || done < t.earliest {
		t.earliest = done
	}
	t.pending = append(t.pending, missEntry{release: done, who: who})
}

// nextRelease returns the earliest pending completion, or ^uint64(0) when no
// miss is outstanding. A full tracker cannot change its hasSlot answer before
// this cycle (reservations only come from accesses, and a rejected requestor
// is by definition not accessing).
func (t *missTracker) nextRelease() uint64 {
	next := ^uint64(0)
	for _, e := range t.pending {
		if e.release < next {
			next = e.release
		}
	}
	return next
}

// lineSpan returns the first line-aligned address and the number of lines
// touched by [addr, addr+size).
func lineSpan(addr uint64, size int) (first uint64, n int) {
	if size <= 0 {
		size = 1
	}
	first = addr &^ (LineBytes - 1)
	last := (addr + uint64(size) - 1) &^ (LineBytes - 1)
	return first, int((last-first)/LineBytes) + 1
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
