package mem

import (
	"occamy/internal/obs"
	"occamy/internal/sim"
)

// DRAMConfig describes main memory. Table 4 specifies 64 GB/s at a 2 GHz
// core clock, i.e. 32 bytes per core cycle of sustained bandwidth.
type DRAMConfig struct {
	Name          string
	LatencyCycles uint64
	BytesPerCycle float64
}

// DRAM is the bottom of the hierarchy: fixed latency plus a shared bandwidth
// meter. It never rejects requests (the memory controller queue is modeled as
// unbounded; upstream MSHRs bound the real overlap).
type DRAM struct {
	cfg   DRAMConfig
	bw    bwMeter
	stats *sim.Stats
	// lat is the access-latency histogram; nil when the run is not
	// observed (a nil *Histogram ignores Observe).
	lat *obs.Histogram
	// Precomputed counter cells (nil without a stats registry); see
	// Cache for why the per-access name concatenation had to go.
	cBytes, cWrites, cReads *uint64
}

// SetProbe attaches the observability probe (nil disables). The histogram
// pointer is cached so the access path stays a single nil check.
func (d *DRAM) SetProbe(p *obs.Probe) { d.lat = p.Hist(d.cfg.Name + ".latency") }

// NewDRAM returns main memory with the given parameters. Stats may be nil.
func NewDRAM(cfg DRAMConfig, stats *sim.Stats) *DRAM {
	if cfg.Name == "" {
		cfg.Name = "dram"
	}
	d := &DRAM{cfg: cfg, bw: bwMeter{bytesPerCycle: cfg.BytesPerCycle}, stats: stats}
	if stats != nil {
		d.cBytes = stats.Counter(cfg.Name + ".bytes")
		d.cWrites = stats.Counter(cfg.Name + ".writes")
		d.cReads = stats.Counter(cfg.Name + ".reads")
	}
	return d
}

// SetBWFactor derates (or restores) the sustained bandwidth to factor times
// the configured rate — the fault-injection token-rate cut. The meter's
// float occupancy state carries over, so a run where the factor stays 1.0 is
// bit-identical to one that never called this.
func (d *DRAM) SetBWFactor(factor float64) {
	d.bw.bytesPerCycle = d.cfg.BytesPerCycle * factor
}

// Access implements Port.
func (d *DRAM) Access(now uint64, addr uint64, size int, write bool) (uint64, bool) {
	if size <= 0 {
		size = 1
	}
	// The row access costs LatencyCycles; the data bus is then occupied
	// for size/BytesPerCycle cycles, so back-to-back requests queue on
	// the bus even when latency would otherwise hide them.
	xfer := d.bw.consume(now+d.cfg.LatencyCycles, size)
	d.lat.Observe(xfer - now)
	if d.cBytes != nil {
		*d.cBytes += uint64(size)
		if write {
			*d.cWrites++
		} else {
			*d.cReads++
		}
	}
	return xfer, true
}

// DRAMState is a cycle-accurate snapshot of the DRAM's timing state: the
// bandwidth meter's exact float occupancy and its (possibly fault-derated)
// rate. Counters live in the engine registry and snapshot there.
type DRAMState struct {
	bytesPerCycle float64
	nextFree      float64
}

// Snapshot captures the DRAM timing state.
func (d *DRAM) Snapshot() DRAMState {
	return DRAMState{bytesPerCycle: d.bw.bytesPerCycle, nextFree: d.bw.nextFree}
}

// Restore rewinds the DRAM to a Snapshot.
func (d *DRAM) Restore(st DRAMState) {
	d.bw.bytesPerCycle = st.bytesPerCycle
	d.bw.nextFree = st.nextFree
}
