package mem

import (
	"testing"
	"testing/quick"

	"occamy/internal/sim"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v float32) bool {
		a := uint64(addr)
		m.WriteF32(a, v)
		got := m.ReadF32(a)
		return got == v || (got != got && v != v) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if m.ReadF32(0xDEADBEEF) != 0 {
		t.Fatal("untouched memory must read zero")
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 2) // straddles the first page boundary
	m.WriteF32(addr, 3.25)
	if got := m.ReadF32(addr); got != 3.25 {
		t.Fatalf("straddling read = %v, want 3.25", got)
	}
}

func TestMemoryFillAndSlice(t *testing.T) {
	m := NewMemory()
	m.FillF32(1024, 8, func(i int) float32 { return float32(i) * 2 })
	got := m.ReadF32Slice(1024, 8)
	for i, v := range got {
		if v != float32(i)*2 {
			t.Fatalf("elem %d = %v", i, v)
		}
	}
}

func TestLineSpan(t *testing.T) {
	cases := []struct {
		addr  uint64
		size  int
		first uint64
		n     int
	}{
		{0, 1, 0, 1},
		{0, 64, 0, 1},
		{0, 65, 0, 2},
		{63, 2, 0, 2},
		{64, 64, 64, 1},
		{100, 0, 64, 1},
		{128, 256, 128, 4},
	}
	for _, c := range cases {
		first, n := lineSpan(c.addr, c.size)
		if first != c.first || n != c.n {
			t.Errorf("lineSpan(%d,%d) = (%d,%d), want (%d,%d)", c.addr, c.size, first, n, c.first, c.n)
		}
	}
}

func TestBWMeterSerializes(t *testing.T) {
	m := bwMeter{bytesPerCycle: 32}
	d1 := m.consume(0, 64) // 2 cycles
	d2 := m.consume(0, 64) // queued behind the first
	if d1 != 2 {
		t.Fatalf("first transfer done at %d, want 2", d1)
	}
	if d2 != 4 {
		t.Fatalf("second transfer done at %d, want 4", d2)
	}
	d3 := m.consume(100, 32) // idle gap: starts fresh
	if d3 != 101 {
		t.Fatalf("post-idle transfer done at %d, want 101", d3)
	}
}

func TestMissTrackerBoundsOverlap(t *testing.T) {
	tr := missTracker{slots: 2}
	if !tr.hasSlot(0, -1) {
		t.Fatal("fresh tracker must have slots")
	}
	tr.reserve(100, -1)
	tr.reserve(100, -1)
	if tr.hasSlot(0, -1) {
		t.Fatal("third overlapping reservation must fail")
	}
	if !tr.hasSlot(101, -1) {
		t.Fatal("reservation after completions retire must succeed")
	}
}

func TestMissTrackerPerRequestorQuota(t *testing.T) {
	tr := missTracker{slots: 4, quota: 2}
	tr.reserve(100, 0)
	tr.reserve(100, 0)
	if tr.hasSlot(0, 0) {
		t.Fatal("requestor 0 must hit its quota")
	}
	if !tr.hasSlot(0, 1) {
		t.Fatal("requestor 1 must still have quota")
	}
	if !tr.hasSlot(0, -1) {
		t.Fatal("unattributed requests bypass the quota")
	}
	tr.reserve(100, 1)
	tr.reserve(100, 1)
	if tr.hasSlot(0, 1) {
		t.Fatal("global slot cap must still bind")
	}
}

func newTestCache(size, ways int, lat uint64, next Port, stats *sim.Stats) *Cache {
	return NewCache(CacheConfig{
		Name: "c", SizeBytes: size, Ways: ways,
		LatencyCycles: lat, BytesPerCycle: 64, MissSlots: 8,
	}, next, stats)
}

func TestCacheHitAfterMiss(t *testing.T) {
	stats := sim.NewStats()
	dram := NewDRAM(DRAMConfig{LatencyCycles: 100, BytesPerCycle: 32}, stats)
	c := newTestCache(4096, 4, 4, dram, stats)

	done, ok := c.Access(0, 0x100, 4, false)
	if !ok {
		t.Fatal("first access rejected")
	}
	if done < 100 {
		t.Fatalf("miss completed at %d, want >= dram latency", done)
	}
	done2, ok := c.Access(done, 0x104, 4, false) // same line
	if !ok {
		t.Fatal("hit rejected")
	}
	if done2 > done+10 {
		t.Fatalf("hit took %d cycles", done2-done)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	stats := sim.NewStats()
	dram := NewDRAM(DRAMConfig{LatencyCycles: 10, BytesPerCycle: 64}, stats)
	// 2 ways x 2 sets = 4 lines of 64B -> 256B cache.
	c := newTestCache(256, 2, 1, dram, stats)

	// Three distinct lines mapping to set 0 (stride = numSets*64 = 128).
	now := uint64(0)
	for i, addr := range []uint64{0, 128, 256} {
		done, ok := c.Access(now, addr, 4, false)
		if !ok {
			t.Fatalf("access %d rejected", i)
		}
		now = done + 1
	}
	// Line 0 was LRU and must have been evicted -> miss again.
	missesBefore := c.Misses()
	if _, ok := c.Access(now, 0, 4, false); !ok {
		t.Fatal("re-access rejected")
	}
	if c.Misses() != missesBefore+1 {
		t.Fatal("LRU line should have been evicted")
	}
	// Line 256 is MRU and must still hit.
	hitsBefore := c.Hits()
	if _, ok := c.Access(now+50, 256, 4, false); !ok {
		t.Fatal("MRU access rejected")
	}
	if c.Hits() != hitsBefore+1 {
		t.Fatal("MRU line should have survived")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	stats := sim.NewStats()
	dram := NewDRAM(DRAMConfig{LatencyCycles: 10, BytesPerCycle: 64}, stats)
	c := newTestCache(256, 2, 1, dram, stats) // 2 sets

	now := uint64(0)
	d, _ := c.Access(now, 0, 4, true) // dirty line in set 0
	now = d + 1
	d, _ = c.Access(now, 128, 4, false)
	now = d + 1
	d, _ = c.Access(now, 256, 4, false) // evicts dirty line 0
	if stats.Get("c.writeback") != 1 {
		t.Fatalf("writebacks = %d, want 1", stats.Get("c.writeback"))
	}
	_ = d
}

func TestCacheMultiLineAccessCountsAllLines(t *testing.T) {
	stats := sim.NewStats()
	dram := NewDRAM(DRAMConfig{LatencyCycles: 10, BytesPerCycle: 1024}, stats)
	c := newTestCache(8192, 4, 1, dram, stats)
	if _, ok := c.Access(0, 0, 256, false); !ok { // 4 lines
		t.Fatal("rejected")
	}
	if c.Misses() != 4 {
		t.Fatalf("misses = %d, want 4", c.Misses())
	}
}

func TestCacheMSHRRejection(t *testing.T) {
	stats := sim.NewStats()
	dram := NewDRAM(DRAMConfig{LatencyCycles: 1000, BytesPerCycle: 64}, stats)
	c := NewCache(CacheConfig{
		Name: "c", SizeBytes: 8192, Ways: 4,
		LatencyCycles: 1, BytesPerCycle: 64, MissSlots: 2,
	}, dram, stats)
	if _, ok := c.Access(0, 0, 4, false); !ok {
		t.Fatal("miss 1 rejected")
	}
	if _, ok := c.Access(0, 64, 4, false); !ok {
		t.Fatal("miss 2 rejected")
	}
	if _, ok := c.Access(0, 128, 4, false); ok {
		t.Fatal("miss 3 should be rejected: MSHRs full")
	}
	if _, ok := c.Access(5000, 192, 4, false); !ok {
		t.Fatal("miss after drain should succeed")
	}
}

func TestDRAMBandwidthContention(t *testing.T) {
	d := NewDRAM(DRAMConfig{LatencyCycles: 100, BytesPerCycle: 32}, nil)
	// Two streams each asking 64B at the same cycle: the second is delayed
	// by the first's bandwidth occupancy.
	d1, _ := d.Access(0, 0, 64, false)
	d2, _ := d.Access(0, 4096, 64, false)
	if d2 <= d1 {
		t.Fatalf("contended access (%d) must finish after first (%d)", d2, d1)
	}
}

func TestHierarchyDefaultsMatchTable4(t *testing.T) {
	cfg := DefaultHierarchyConfig(2)
	if cfg.VecCache.SizeBytes != 128<<10 || cfg.VecCache.Ways != 8 || cfg.VecCache.LatencyCycles != 5 {
		t.Errorf("vec cache config %+v deviates from Table 4", cfg.VecCache)
	}
	if cfg.L2.SizeBytes != 8<<20 || cfg.L2.LatencyCycles != 18 {
		t.Errorf("L2 config %+v deviates from Table 4", cfg.L2)
	}
	if cfg.L1D.SizeBytes != 64<<10 || cfg.L1D.LatencyCycles != 4 {
		t.Errorf("L1D config %+v deviates from Table 4", cfg.L1D)
	}
	if cfg.DRAM.BytesPerCycle != 32 {
		t.Errorf("DRAM bandwidth %v B/cycle, want 32 (64GB/s @ 2GHz)", cfg.DRAM.BytesPerCycle)
	}
}

func TestHierarchyWiring(t *testing.T) {
	stats := sim.NewStats()
	h := NewHierarchy(DefaultHierarchyConfig(2), stats)
	if len(h.L1D) != 2 {
		t.Fatalf("L1D count = %d", len(h.L1D))
	}
	// A vector-cache miss must propagate into L2 and DRAM (the demand
	// fill plus the streaming prefetches behind it).
	if _, ok := h.VecCache.Access(0, 1<<30, 64, false); !ok {
		t.Fatal("access rejected")
	}
	wantFills := uint64(1 + 8) // demand + PrefetchDegree
	if stats.Get("l2.miss") != wantFills {
		t.Fatalf("l2 misses = %d, want %d", stats.Get("l2.miss"), wantFills)
	}
	if stats.Get("dram.reads") != wantFills {
		t.Fatalf("dram reads = %d, want %d", stats.Get("dram.reads"), wantFills)
	}
	// L1s of different cores are distinct caches.
	h.L1D[0].Access(100, 0, 4, false)
	if h.L1D[1].Hits()+h.L1D[1].Misses() != 0 {
		t.Fatal("core 1 L1 must be untouched by core 0 accesses")
	}
}

func TestHierarchySharedL2Visibility(t *testing.T) {
	stats := sim.NewStats()
	h := NewHierarchy(DefaultHierarchyConfig(2), stats)
	// Core 0 warms a line via its L1; the vector cache then hits in L2
	// for that line (its prefetches may miss beyond it, so compare hits).
	d, _ := h.L1D[0].Access(0, 4096, 4, false)
	l2HitsAfterWarm := stats.Get("l2.hit")
	h.VecCache.Access(d+10, 4096, 4, false)
	if stats.Get("l2.hit") != l2HitsAfterWarm+1 {
		t.Fatal("vector cache should hit the L2 line warmed by the scalar core")
	}
}

func TestCacheStreamingFootprintMissesInSmallCache(t *testing.T) {
	// A streaming footprint larger than the cache must keep missing on a
	// second pass (the memory-intensive workload behaviour).
	stats := sim.NewStats()
	dram := NewDRAM(DRAMConfig{LatencyCycles: 10, BytesPerCycle: 1 << 20}, stats)
	c := newTestCache(4096, 4, 1, dram, stats)
	now := uint64(0)
	pass := func() {
		for addr := uint64(0); addr < 16384; addr += 64 {
			d, ok := c.Access(now, addr, 64, false)
			if !ok {
				t.Fatal("rejected")
			}
			now = d
		}
	}
	pass()
	m1 := c.Misses()
	pass()
	if c.Misses()-m1 != m1 {
		t.Fatalf("second streaming pass misses = %d, want %d (no reuse possible)", c.Misses()-m1, m1)
	}
}
