// Package mem models the memory system of Table 4: per-core 64 KB L1 data
// caches for the scalar cores, the co-processor's 128 KB 8-way vector cache,
// a shared unified 8 MB L2, and a 64 GB/s DRAM — all with 64-byte lines.
//
// The package separates *function* from *timing*:
//
//   - Memory is the flat functional backing store holding real data values;
//     reads and writes always succeed and are instantaneous. The simulator
//     uses it to give vector instructions value-level semantics.
//   - Cache and DRAM model timing only (tags, LRU, latency, per-cycle
//     bandwidth, bounded outstanding misses). A request returns the cycle at
//     which the data would be available, which is how shared-bandwidth
//     contention between co-running workloads arises.
package mem

import "math"

// pageBits selects the functional-page size (64 KiB) for the sparse backing
// store; workload footprints of hundreds of MB stay cheap to allocate.
const pageBits = 16

const pageSize = 1 << pageBits

// Memory is the sparse functional backing store. The zero value is not
// usable; create with NewMemory.
type Memory struct {
	pages    map[uint64][]byte
	lastIdx  uint64
	lastPage []byte
}

// NewMemory returns an empty address space; all bytes read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

func (m *Memory) page(addr uint64, create bool) []byte {
	idx := addr >> pageBits
	if m.lastPage != nil && idx == m.lastIdx {
		return m.lastPage
	}
	p, ok := m.pages[idx]
	if !ok {
		if !create {
			return nil
		}
		p = make([]byte, pageSize)
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// ReadF32 reads a little-endian float32 at addr.
func (m *Memory) ReadF32(addr uint64) float32 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	off := addr & (pageSize - 1)
	if off+4 > pageSize {
		// Straddles a page boundary; assemble byte-wise.
		var raw uint32
		for i := uint64(0); i < 4; i++ {
			raw |= uint32(m.readByte(addr+i)) << (8 * i)
		}
		return math.Float32frombits(raw)
	}
	raw := uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	return math.Float32frombits(raw)
}

// WriteF32 writes a little-endian float32 at addr.
func (m *Memory) WriteF32(addr uint64, v float32) {
	raw := math.Float32bits(v)
	p := m.page(addr, true)
	off := addr & (pageSize - 1)
	if off+4 > pageSize {
		for i := uint64(0); i < 4; i++ {
			m.writeByte(addr+i, byte(raw>>(8*i)))
		}
		return
	}
	p[off] = byte(raw)
	p[off+1] = byte(raw >> 8)
	p[off+2] = byte(raw >> 16)
	p[off+3] = byte(raw >> 24)
}

func (m *Memory) readByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

func (m *Memory) writeByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// FillF32 writes n consecutive float32 values starting at addr using gen(i).
func (m *Memory) FillF32(addr uint64, n int, gen func(i int) float32) {
	for i := 0; i < n; i++ {
		m.WriteF32(addr+uint64(4*i), gen(i))
	}
}

// ReadF32Slice reads n consecutive float32 values starting at addr.
func (m *Memory) ReadF32Slice(addr uint64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = m.ReadF32(addr + uint64(4*i))
	}
	return out
}

// MemoryState is a deep snapshot of the functional address space.
type MemoryState struct {
	pages map[uint64][]byte
}

// Snapshot deep-copies every allocated page. Workload footprints are tens of
// MB, so this is the bulk of a system checkpoint's size — but it is taken
// once per sweep, not per point.
func (m *Memory) Snapshot() MemoryState {
	st := MemoryState{pages: make(map[uint64][]byte, len(m.pages))}
	for idx, p := range m.pages {
		st.pages[idx] = append([]byte(nil), p...)
	}
	return st
}

// Restore rewinds the address space to a Snapshot. Pages allocated since the
// snapshot are dropped; snapshot pages are copied back in so the restored
// memory does not alias the checkpoint (it can be restored again).
func (m *Memory) Restore(st MemoryState) {
	for idx := range m.pages {
		if _, ok := st.pages[idx]; !ok {
			delete(m.pages, idx)
		}
	}
	for idx, p := range st.pages {
		dst, ok := m.pages[idx]
		if !ok {
			dst = make([]byte, pageSize)
			m.pages[idx] = dst
		}
		copy(dst, p)
	}
	m.lastIdx, m.lastPage = 0, nil
}
