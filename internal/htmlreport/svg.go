// Package htmlreport renders the evaluation's figures as a self-contained
// HTML page with inline SVG charts — no external assets, viewable offline.
// cmd/occamy-bench uses it via the -html flag.
package htmlreport

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series for bar and line charts.
type Series struct {
	Name   string
	Values []float64
}

// palette cycles through distinguishable fill colors.
var palette = []string{"#4472c4", "#ed7d31", "#70ad47", "#9e480e", "#7030a0", "#2e75b6"}

func color(i int) string { return palette[i%len(palette)] }

const (
	chartW  = 880
	chartH  = 300
	padL    = 56
	padR    = 16
	padT    = 28
	padB    = 64
	plotW   = chartW - padL - padR
	plotH   = chartH - padT - padB
	fontCSS = `font-family="sans-serif" font-size="11"`
)

// esc escapes text for SVG/HTML.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceMax rounds a data maximum up to a tidy axis limit.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.5, 2, 2.5, 3, 4, 5, 7.5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// axis renders the frame, y-axis ticks and a horizontal guide line at ref
// (pass NaN to omit).
func axis(b *strings.Builder, yMax, ref float64, yFmt string) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`,
		padL, padT, plotW, plotH)
	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		y := float64(padT+plotH) - float64(plotH)*float64(i)/4
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`,
			padL, y, padL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end" %s>`+yFmt+`</text>`,
			padL-6, y+4, fontCSS, v)
	}
	if !math.IsNaN(ref) && ref <= yMax {
		y := float64(padT+plotH) - float64(plotH)*ref/yMax
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#c00" stroke-dasharray="4 3"/>`,
			padL, y, padL+plotW, y)
	}
}

// legend renders the series legend above the plot.
func legend(b *strings.Builder, series []Series) {
	x := padL
	for i, s := range series {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, x, 8, color(i))
		fmt.Fprintf(b, `<text x="%d" y="%d" %s>%s</text>`, x+14, 17, fontCSS, esc(s.Name))
		x += 20 + 7*len(s.Name)
	}
}

// BarChart renders a grouped bar chart: one group per label, one bar per
// series. ref draws a dashed reference line (e.g. 1.0 for speedups); pass
// NaN to omit.
func BarChart(title string, labels []string, series []Series, ref float64, yFmt string) string {
	yMax := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > yMax {
				yMax = v
			}
		}
	}
	yMax = niceMax(yMax)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg" role="img" aria-label="%s">`,
		chartW, chartH, esc(title))
	axis(&b, yMax, ref, yFmt)
	legend(&b, series)
	groupW := float64(plotW) / float64(len(labels))
	barW := groupW * 0.8 / float64(len(series))
	for gi, label := range labels {
		gx := float64(padL) + groupW*float64(gi)
		for si, s := range series {
			if gi >= len(s.Values) {
				continue
			}
			v := s.Values[gi]
			h := float64(plotH) * v / yMax
			if h < 0 {
				h = 0
			}
			x := gx + groupW*0.1 + barW*float64(si)
			y := float64(padT+plotH) - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.3g</title></rect>`,
				x, y, barW, h, color(si), esc(label), esc(s.Name), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="end" transform="rotate(-45 %.1f %d)" %s>%s</text>`,
			gx+groupW/2, padT+plotH+12, gx+groupW/2, padT+plotH+12, fontCSS, esc(label))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// LineChart renders series as polylines over a shared x index (bucket
// number); xScale converts the index to the x-axis unit for the tooltip.
func LineChart(title string, series []Series, xUnit string, xScale float64) string {
	yMax, n := 0.0, 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
		for _, v := range s.Values {
			if v > yMax {
				yMax = v
			}
		}
	}
	yMax = niceMax(yMax)
	if n < 2 {
		n = 2
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg" role="img" aria-label="%s">`,
		chartW, chartH, esc(title))
	axis(&b, yMax, math.NaN(), "%.0f")
	legend(&b, series)
	for si, s := range series {
		var pts []string
		for i, v := range s.Values {
			x := float64(padL) + float64(plotW)*float64(i)/float64(n-1)
			y := float64(padT+plotH) - float64(plotH)*v/yMax
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
			strings.Join(pts, " "), color(si))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" %s>%s</text>`,
		padL+plotW/2, chartH-8, fontCSS, esc(xUnit))
	_ = xScale
	b.WriteString(`</svg>`)
	return b.String()
}

// Step is one step of a staircase series.
type Step struct {
	X float64
	Y float64
}

// StepChart renders staircase series (the Figure 2(e)/14(b) allocated-lane
// plots): each series holds steps at which its value changes; xEnd extends
// the final step.
func StepChart(title string, names []string, steps [][]Step, xEnd, yMax float64, xUnit string) string {
	yMax = niceMax(yMax)
	if xEnd <= 0 {
		xEnd = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg" role="img" aria-label="%s">`,
		chartW, chartH, esc(title))
	axis(&b, yMax, math.NaN(), "%.0f")
	series := make([]Series, len(names))
	for i, n := range names {
		series[i] = Series{Name: n}
	}
	legend(&b, series)
	toX := func(v float64) float64 { return float64(padL) + float64(plotW)*v/xEnd }
	toY := func(v float64) float64 { return float64(padT+plotH) - float64(plotH)*v/yMax }
	for si, ss := range steps {
		if len(ss) == 0 {
			continue
		}
		var pts []string
		for i, st := range ss {
			if i > 0 {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", toX(st.X), toY(ss[i-1].Y)))
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", toX(st.X), toY(st.Y)))
		}
		last := ss[len(ss)-1]
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", toX(xEnd), toY(last.Y)))
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
			strings.Join(pts, " "), color(si))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" %s>%s</text>`,
		padL+plotW/2, chartH-8, fontCSS, esc(xUnit))
	b.WriteString(`</svg>`)
	return b.String()
}

// StackedBarChart renders one stacked bar per label (the Figure 12 area
// breakdown): components share the order of parts.
func StackedBarChart(title string, labels []string, parts []string, values [][]float64, yFmt string) string {
	yMax := 0.0
	for _, col := range values {
		sum := 0.0
		for _, v := range col {
			sum += v
		}
		if sum > yMax {
			yMax = sum
		}
	}
	yMax = niceMax(yMax)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg" role="img" aria-label="%s">`,
		chartW, chartH, esc(title))
	axis(&b, yMax, math.NaN(), yFmt)
	series := make([]Series, len(parts))
	for i, p := range parts {
		series[i] = Series{Name: p}
	}
	legend(&b, series)
	groupW := float64(plotW) / float64(len(labels))
	for gi, label := range labels {
		x := float64(padL) + groupW*float64(gi) + groupW*0.25
		y := float64(padT + plotH)
		for pi := range parts {
			v := values[gi][pi]
			h := float64(plotH) * v / yMax
			y -= h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.3g</title></rect>`,
				x, y, groupW*0.5, h, color(pi), esc(label), esc(parts[pi]), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" %s>%s</text>`,
			x+groupW*0.25, padT+plotH+14, fontCSS, esc(label))
	}
	b.WriteString(`</svg>`)
	return b.String()
}
