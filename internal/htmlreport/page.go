package htmlreport

import (
	"fmt"
	"io"
	"strings"
)

// Page accumulates sections of a self-contained HTML report.
type Page struct {
	title    string
	sections []section
}

type section struct {
	heading string
	blocks  []string
}

// New returns an empty page.
func New(title string) *Page {
	return &Page{title: title}
}

// Section appends a heading followed by pre-rendered blocks (SVG charts,
// paragraphs from P, tables from PreTable).
func (p *Page) Section(heading string, blocks ...string) {
	p.sections = append(p.sections, section{heading: heading, blocks: blocks})
}

// P renders an escaped paragraph.
func P(text string) string {
	return "<p>" + esc(text) + "</p>"
}

// PreTable renders a fixed-width text table (the metrics.Table output)
// verbatim in a <pre> block.
func PreTable(text string) string {
	return "<pre>" + esc(text) + "</pre>"
}

const pageCSS = `body{font-family:sans-serif;max-width:960px;margin:2em auto;color:#222}
h1{border-bottom:2px solid #4472c4;padding-bottom:.3em}
h2{margin-top:2em;color:#333}
pre{background:#f6f6f6;padding:.8em;overflow-x:auto;font-size:12px;line-height:1.35}
svg{width:100%;height:auto;background:#fff;border:1px solid #ddd;margin:.5em 0}
p{line-height:1.5}`

// Write renders the page.
func (p *Page) Write(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&b, "<title>%s</title>", esc(p.title))
	fmt.Fprintf(&b, "<style>%s</style></head><body>", pageCSS)
	fmt.Fprintf(&b, "<h1>%s</h1>", esc(p.title))
	for _, s := range p.sections {
		fmt.Fprintf(&b, "<h2>%s</h2>", esc(s.heading))
		for _, blk := range s.blocks {
			b.WriteString(blk)
		}
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
