package htmlreport

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBarChartRendersBarsAndLegend(t *testing.T) {
	svg := BarChart("t", []string{"a", "b"}, []Series{
		{Name: "s1", Values: []float64{1, 2}},
		{Name: "s2", Values: []float64{2, 0.5}},
	}, 1.0, "%.1f")
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an svg")
	}
	if strings.Count(svg, "<rect") < 5 { // frame + 4 bars
		t.Fatalf("too few rects:\n%s", svg)
	}
	for _, frag := range []string{"s1", "s2", ">a<", ">b<", "stroke-dasharray"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("missing %q", frag)
		}
	}
}

func TestBarChartOmitsNaNReference(t *testing.T) {
	svg := BarChart("t", []string{"a"}, []Series{{Name: "s", Values: []float64{1}}}, math.NaN(), "%.1f")
	if strings.Contains(svg, "stroke-dasharray") {
		t.Fatal("NaN reference must be omitted")
	}
}

func TestLineChartPolylines(t *testing.T) {
	svg := LineChart("t", []Series{
		{Name: "x", Values: []float64{0, 1, 2, 1}},
		{Name: "y", Values: []float64{2, 2, 2, 2}},
	}, "cycles", 1)
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatal("want 2 polylines")
	}
}

func TestStepChartExtendsFinalStep(t *testing.T) {
	svg := StepChart("t", []string{"c0"}, [][]Step{{{X: 0, Y: 8}, {X: 50, Y: 24}}}, 100, 32, "cycles")
	if strings.Count(svg, "<polyline") != 1 {
		t.Fatal("want 1 polyline")
	}
	if !strings.Contains(svg, "c0") {
		t.Fatal("legend missing")
	}
}

func TestStackedBarChart(t *testing.T) {
	svg := StackedBarChart("t", []string{"A", "B"}, []string{"p", "q"},
		[][]float64{{1, 2}, {3, 0.5}}, "%.1f")
	if strings.Count(svg, "<rect") < 5 {
		t.Fatal("too few rects")
	}
}

func TestEscaping(t *testing.T) {
	svg := BarChart(`<&">`, []string{`<b>`}, []Series{{Name: `"q"`, Values: []float64{1}}}, math.NaN(), "%.0f")
	if strings.Contains(svg, "<b>") || strings.Contains(svg, `"q"`) {
		t.Fatal("unescaped user text leaked into markup")
	}
	p := P(`<script>`)
	if strings.Contains(p, "<script>") {
		t.Fatal("paragraph not escaped")
	}
}

func TestNiceMax(t *testing.T) {
	cases := map[float64]float64{0: 1, 0.9: 1, 1.2: 1.5, 3.7: 4, 88: 100, 101: 150}
	for in, want := range cases {
		if got := niceMax(in); got != want {
			t.Errorf("niceMax(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestPageStructure(t *testing.T) {
	p := New("Report & Title")
	p.Section("Sec<1>", P("hello"), PreTable("a  b\n1  2"))
	p.Section("Sec2", BarChart("c", []string{"x"}, []Series{{Name: "s", Values: []float64{1}}}, math.NaN(), "%.0f"))
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"<!DOCTYPE html>", "Report &amp; Title", "Sec&lt;1&gt;", "<pre>", "<svg",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("page missing %q", frag)
		}
	}
}
