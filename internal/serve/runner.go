package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"occamy"
	"occamy/internal/arch"
	"occamy/internal/fault"
	"occamy/internal/sim"
	"occamy/internal/workload"
)

// defaultStall arms the forward-progress watchdog on every service run, so a
// livelocked simulation is diagnosed and retried instead of burning its whole
// cycle budget.
const defaultStall = 2_000_000

// attemptError classifies one failed attempt.
type attemptError struct {
	err       error
	transient bool   // retry-worthy: timeout, stall
	timeout   bool   // the attempt hit its deadline
	stall     bool   // the watchdog fired
	diag      string // rendered diagnostic dump, when the engine produced one
}

func (a *attemptError) Error() string { return a.err.Error() }

// classify splits a run error into transient (timeout, watchdog stall —
// killed runs worth retrying) and permanent (budget exhaustion, verification
// failure, build errors) and extracts the diagnostic dump.
func classify(err error, timedOut bool) *attemptError {
	ae := &attemptError{err: err, timeout: timedOut}
	var derr *arch.DiagError
	if errors.As(err, &derr) && derr.Dump != nil {
		ae.diag = derr.Dump.String()
	}
	var cerr *sim.CanceledError
	if errors.As(err, &cerr) && timedOut {
		ae.transient = true
		return ae
	}
	var serr *sim.StallError
	if errors.As(err, &serr) {
		ae.transient, ae.stall = true, true
		return ae
	}
	return ae
}

// PairResult is the result document of a "pair" job.
type PairResult struct {
	Arch        string   `json:"arch"`
	Schedule    string   `json:"schedule"`
	Cycles      uint64   `json:"cycles"`
	Utilization float64  `json:"utilization"`
	CoreCycles  []uint64 `json:"core_cycles"`
	Elems       uint64   `json:"elems"`
	Recoveries  int      `json:"recoveries,omitempty"`
}

// CampaignPoint is one fault point of a "campaign" job.
type CampaignPoint struct {
	Faults     string `json:"faults"`
	Cycles     uint64 `json:"cycles"`
	Elems      uint64 `json:"elems"`
	Recoveries int    `json:"recoveries"`
	TTRp50     uint64 `json:"ttr_p50,omitempty"`
}

// CampaignResult is the result document of a "campaign" job.
type CampaignResult struct {
	Arch         string          `json:"arch"`
	Workloads    []string        `json:"workloads"`
	WarmupCycles uint64          `json:"warmup_cycles"`
	WarmKey      string          `json:"warm_key"`
	CacheHit     bool            `json:"cache_hit"`
	Points       []CampaignPoint `json:"points"`
}

// TrafficResult is the result document of a "traffic" job.
type TrafficResult struct {
	Arch       string `json:"arch"`
	Cycles     uint64 `json:"cycles"`
	Arrivals   int    `json:"arrivals"`
	Admitted   int    `json:"admitted"`
	Completed  int    `json:"completed"`
	Canceled   int    `json:"canceled"`
	SojournP50 uint64 `json:"sojourn_p50"`
	SojournP99 uint64 `json:"sojourn_p99"`
	Digest     string `json:"digest"`
}

// runner executes job attempts against the simulator.
type runner struct {
	cache *Cache
}

// run executes one attempt of spec under ctx. timedOut tells the classifier
// whether a cancellation was this attempt's deadline (as opposed to a drain
// kill, which the caller handles before classification). Returns the result
// document and whether the warm-up checkpoint cache was hit.
func (r *runner) run(ctx context.Context, spec *JobSpec) (json.RawMessage, bool, error) {
	switch spec.Kind {
	case "pair":
		doc, err := r.runPair(ctx, spec)
		return doc, false, err
	case "campaign":
		return r.runCampaign(ctx, spec)
	case "traffic":
		doc, err := r.runTraffic(ctx, spec)
		return doc, false, err
	}
	return nil, false, fmt.Errorf("serve: unknown kind %q", spec.Kind)
}

// baseConfig maps the spec onto the public run configuration.
func baseConfig(spec *JobSpec) (occamy.Config, error) {
	a, err := ParseArch(spec.Arch)
	if err != nil {
		return occamy.Config{}, err
	}
	cfg := occamy.DefaultConfig(a)
	cfg.Verify = spec.Verify
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if spec.Scale != 0 {
		cfg.Scale = spec.Scale
	}
	if spec.LanesPerCore != 0 {
		cfg.LanesPerCore = spec.LanesPerCore
	}
	if spec.MaxCycles != 0 {
		cfg.MaxCycles = spec.MaxCycles
	}
	cfg.Machine = spec.Machine
	cfg.Topology = spec.Topology
	cfg.StallCycles = defaultStall
	return cfg, nil
}

func (r *runner) runPair(ctx context.Context, spec *JobSpec) (json.RawMessage, error) {
	cfg, err := baseConfig(spec)
	if err != nil {
		return nil, err
	}
	if len(spec.Faults) == 1 {
		cfg.Faults = spec.Faults[0]
	}
	rep, err := occamy.RunContext(ctx, cfg, occamy.ScheduleByNames(spec.Workloads...))
	if err != nil {
		return nil, err
	}
	out := PairResult{
		Arch:        rep.Arch.String(),
		Schedule:    rep.Schedule,
		Cycles:      rep.Cycles,
		Utilization: rep.Utilization,
		Elems:       rep.Elems,
		Recoveries:  len(rep.Recoveries),
	}
	for _, c := range rep.Cores {
		out.CoreCycles = append(out.CoreCycles, c.Cycles)
	}
	return json.Marshal(out)
}

func (r *runner) runTraffic(ctx context.Context, spec *JobSpec) (json.RawMessage, error) {
	cfg, err := baseConfig(spec)
	if err != nil {
		return nil, err
	}
	cfg.Traffic = spec.Traffic
	cfg.MaxCycles = spec.MaxCycles // 0 keeps the scenario's default budget
	rep, err := occamy.RunTrafficContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return json.Marshal(TrafficResult{
		Arch:       rep.Arch,
		Cycles:     rep.Cycles,
		Arrivals:   rep.Total.Arrivals,
		Admitted:   rep.Total.Admitted,
		Completed:  rep.Total.Completed,
		Canceled:   rep.Total.Canceled,
		SojournP50: rep.Total.SojournP50,
		SojournP99: rep.Total.SojournP99,
		Digest:     fmt.Sprintf("%016x", rep.Digest),
	})
}

// campaignOptions builds the arch.Options a campaign system uses — the
// injector is always wired so checkpoints taken here fork into any fault
// schedule, and the build is a pure function of the spec's warm prefix (the
// cache-correctness requirement: a cached snapshot only restores onto an
// identically built system).
func campaignOptions(spec *JobSpec) (arch.Kind, workload.CoSchedule, arch.Options, error) {
	a, err := ParseArch(spec.Arch)
	if err != nil {
		return 0, workload.CoSchedule{}, arch.Options{}, err
	}
	reg := workload.NewRegistry()
	s := workload.CoSchedule{Name: strings.Join(spec.Workloads, "+")}
	for _, n := range spec.Workloads {
		s.W = append(s.W, reg.Workload(n))
	}
	if spec.Scale > 0 && spec.Scale != 1.0 {
		s = s.Scaled(spec.Scale)
	}
	lanes := spec.LanesPerCore
	if lanes <= 0 {
		lanes = 16
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	opts := arch.Options{
		ExeBUs:       lanes / 4 * s.Cores(),
		Seed:         seed,
		Machine:      spec.Machine,
		Topology:     spec.Topology,
		WireInjector: true,
		StallCycles:  defaultStall,
	}
	return a, s, opts, nil
}

// warmup returns the spec's warm-up cycle count.
func warmup(spec *JobSpec) uint64 {
	if spec.WarmupCycles != 0 {
		return spec.WarmupCycles
	}
	return 2000
}

// runCampaign is the checkpoint-cache path: warm one system up to the fork
// point (or restore the cached snapshot of that exact machine state), then
// fork every fault point from it. A cached snapshot that fails its digest
// check is evicted and the warm-up re-run cold — corruption costs time,
// never correctness.
func (r *runner) runCampaign(ctx context.Context, spec *JobSpec) (json.RawMessage, bool, error) {
	kind, sched, opts, err := campaignOptions(spec)
	if err != nil {
		return nil, false, err
	}
	warm := warmup(spec)
	sys, err := arch.Build(kind, sched, opts)
	if err != nil {
		return nil, false, err
	}
	sys.SetInterrupt(ctx.Done())

	key := spec.WarmKey()
	snap, hit, err := r.cache.GetOrFill(key, func() (*arch.SystemState, error) {
		if err := sys.RunTo(warm); err != nil {
			return nil, err
		}
		return sys.Checkpoint(), nil
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		if rerr := sys.RestoreCheckpoint(snap); rerr != nil {
			var cerr *arch.CorruptCheckpointError
			if !errors.As(rerr, &cerr) {
				return nil, false, rerr
			}
			// Corrupted entry: evict, fall back to a cold warm-up on the
			// untouched freshly built system, and repopulate the cache.
			if r.cache.stats != nil {
				r.cache.stats.CacheCorrupt()
			}
			r.cache.Evict(key)
			hit = false
			if err := sys.RunTo(warm); err != nil {
				return nil, false, err
			}
			snap = sys.Checkpoint()
			r.cache.Put(key, snap)
		}
	}

	maxCycles := spec.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}
	out := CampaignResult{
		Arch:         kind.String(),
		Workloads:    spec.Workloads,
		WarmupCycles: warm,
		WarmKey:      fmt.Sprintf("%016x", key),
		CacheHit:     hit,
	}
	for _, fs := range spec.Faults {
		var faults []fault.Fault
		if strings.TrimSpace(fs) != "" {
			faults, err = fault.ParseSpec(fs)
			if err != nil {
				return nil, hit, err
			}
		}
		if err := sys.RestoreCheckpoint(snap); err != nil {
			return nil, hit, err
		}
		sys.SetFaultSchedule(faults)
		res, err := sys.Run(maxCycles)
		if err != nil {
			return nil, hit, err
		}
		if spec.Verify {
			if err := sys.CheckResults(2e-3); err != nil {
				return nil, hit, fmt.Errorf("serve: campaign point %q verification: %w", fs, err)
			}
		}
		pt := CampaignPoint{Faults: fs, Cycles: res.Cycles, Elems: res.Elems, Recoveries: len(res.Recoveries)}
		var ttrs []uint64
		for _, rec := range res.Recoveries {
			if !rec.Pending {
				ttrs = append(ttrs, rec.TimeToRepartition())
			}
		}
		if len(ttrs) > 0 {
			for i := 1; i < len(ttrs); i++ {
				for j := i; j > 0 && ttrs[j] < ttrs[j-1]; j-- {
					ttrs[j], ttrs[j-1] = ttrs[j-1], ttrs[j]
				}
			}
			pt.TTRp50 = ttrs[(len(ttrs)-1)/2]
		}
		out.Points = append(out.Points, pt)
	}
	doc, err := json.Marshal(out)
	return doc, hit, err
}
