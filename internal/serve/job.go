package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	occamy "occamy"
	"occamy/internal/fault"
	"occamy/internal/traffic"
	"occamy/internal/workload"
)

// JobSpec is the request body of POST /jobs: one simulation job. The
// zero-valued optional fields take the service defaults, so the minimal
// submission is {"tenant":"t","kind":"pair","arch":"occamy",
// "workloads":["spec/WL20","spec/WL17"]}.
type JobSpec struct {
	// Tenant identifies the submitter for quota accounting.
	Tenant string `json:"tenant"`
	// Kind selects the job type: "pair" (co-schedule run), "traffic"
	// (open-loop arrival process) or "campaign" (fault sweep forked from a
	// shared warm-up checkpoint; the kind the checkpoint cache serves).
	Kind string `json:"kind"`
	// Arch names the sharing architecture: private|temporal|static|elastic
	// (the paper's aliases fts/vls/occamy are accepted).
	Arch string `json:"arch"`
	// Workloads are Table 3 names, one per core (pair and campaign kinds).
	Workloads []string `json:"workloads,omitempty"`
	// Traffic is the arrival-process spec for kind "traffic"
	// (e.g. "poisson:load=2,tenants=4").
	Traffic string `json:"traffic,omitempty"`
	// Faults: for "pair", a single fault-injection spec applied to the run;
	// for "campaign", one spec per campaign point ("" = fault-free point).
	Faults []string `json:"faults,omitempty"`
	// Seed, Scale, LanesPerCore tune the build (zero = defaults).
	Seed         uint64  `json:"seed,omitempty"`
	Scale        float64 `json:"scale,omitempty"`
	LanesPerCore int     `json:"lanes_per_core,omitempty"`
	// Machine and Topology override hardware parameters; both participate
	// in the checkpoint-cache key (a warm-up is only reusable on an
	// identically built machine).
	Machine  *occamy.MachineTuning `json:"machine,omitempty"`
	Topology *occamy.Topology      `json:"topology,omitempty"`
	// WarmupCycles is the campaign warm-up length (cycles before the first
	// fault point forks; default 2000).
	WarmupCycles uint64 `json:"warmup_cycles,omitempty"`
	// MaxCycles bounds each run (zero = generous default).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TimeoutMS is the per-attempt wall-clock budget (zero = service
	// default). A timed-out attempt is killed, diagnosed and retried.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify re-executes results on the host after simulation.
	Verify bool `json:"verify,omitempty"`
	// Inject is a test-only fault hook, refused unless the server runs with
	// AllowInjection: "timeout" hangs every attempt until its deadline;
	// "timeout:N" hangs only the first N attempts (so attempt N+1 runs for
	// real and the retry path is observable end to end).
	Inject string `json:"inject,omitempty"`
}

// knownWorkloads is the Table 3 name set, for validation without panics.
var knownWorkloads = func() map[string]bool {
	m := map[string]bool{}
	for _, n := range workload.NewRegistry().WorkloadNames() {
		m[n] = true
	}
	return m
}()

// ParseArch resolves the accepted architecture aliases.
func ParseArch(s string) (occamy.Arch, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "private":
		return occamy.Private, nil
	case "temporal", "fts":
		return occamy.Temporal, nil
	case "static", "staticspatial", "vls":
		return occamy.StaticSpatial, nil
	case "elastic", "occamy":
		return occamy.Elastic, nil
	}
	return 0, fmt.Errorf("unknown architecture %q (want private|temporal|static|elastic)", s)
}

// Validate checks the spec shape so admission rejects malformed jobs with a
// 400 instead of failing them later on a worker.
func (j *JobSpec) Validate() error {
	if j.Tenant == "" {
		return fmt.Errorf("tenant is required")
	}
	if _, err := ParseArch(j.Arch); err != nil {
		return err
	}
	if j.Scale < 0 {
		return fmt.Errorf("negative scale %g", j.Scale)
	}
	if j.LanesPerCore < 0 || j.LanesPerCore%4 != 0 {
		return fmt.Errorf("lanes_per_core must be a non-negative multiple of 4, got %d", j.LanesPerCore)
	}
	if j.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms %d", j.TimeoutMS)
	}
	switch j.Kind {
	case "pair":
		if len(j.Workloads) == 0 {
			return fmt.Errorf("pair job needs workloads")
		}
		if len(j.Faults) > 1 {
			return fmt.Errorf("pair job takes at most one fault spec (got %d); use a campaign for sweeps", len(j.Faults))
		}
	case "campaign":
		if len(j.Workloads) == 0 {
			return fmt.Errorf("campaign job needs workloads")
		}
		if len(j.Faults) == 0 {
			return fmt.Errorf("campaign job needs at least one fault point (\"\" for the fault-free point)")
		}
	case "traffic":
		if j.Traffic == "" {
			return fmt.Errorf("traffic job needs a traffic spec")
		}
		if _, err := traffic.ParseSpec(j.Traffic); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q (want pair|traffic|campaign)", j.Kind)
	}
	for _, w := range j.Workloads {
		if !knownWorkloads[w] {
			return fmt.Errorf("unknown workload %q", w)
		}
	}
	for _, f := range j.Faults {
		if strings.TrimSpace(f) == "" {
			continue
		}
		if _, err := fault.ParseSpec(f); err != nil {
			return err
		}
	}
	if j.Machine != nil {
		if err := j.Machine.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// fnvJSON hashes v's canonical JSON encoding (Go marshals struct fields in
// declaration order, so the encoding is deterministic) with FNV-64a.
func fnvJSON(v any) uint64 {
	b, err := json.Marshal(v)
	if err != nil {
		// Specs are plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("serve: marshal key: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Key is the job's dedup identity: the full spec, tenant included. Two
// submissions with equal keys are the same request; while the first is in
// flight the second coalesces onto it (singleflight).
func (j *JobSpec) Key() uint64 { return fnvJSON(j) }

// warmPrefix is the checkpoint-cache identity: everything that shapes the
// machine and its state at the warm-up boundary — and nothing that only
// matters after the fork (fault points, timeout, verify, tenant).
type warmPrefix struct {
	Arch      string
	Workloads []string
	Seed      uint64
	Scale     float64
	Lanes     int
	Machine   *occamy.MachineTuning
	Topology  *occamy.Topology
	Warmup    uint64
}

// WarmKey is the content-address of the job's warm-up checkpoint.
func (j *JobSpec) WarmKey() uint64 {
	return fnvJSON(warmPrefix{
		Arch:      strings.ToLower(j.Arch),
		Workloads: j.Workloads,
		Seed:      j.Seed,
		Scale:     j.Scale,
		Lanes:     j.LanesPerCore,
		Machine:   j.Machine,
		Topology:  j.Topology,
		Warmup:    j.WarmupCycles,
	})
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateRetrying = "retrying"
	StateDone     = "done"
	StateFailed   = "failed"
	StateParked   = "parked" // drain interrupted it; the journal replays it
)

// Job is one admitted submission and its full lifecycle.
type Job struct {
	ID   string
	Key  uint64
	Spec JobSpec

	mu            sync.Mutex
	status        string
	attempt       int
	retryDelaysMS []int64
	errMsg        string
	diag          string // diagnostic dump of the last killed attempt
	result        json.RawMessage
	cacheHit      bool
	done          chan struct{} // closed on done/failed/parked
}

func newJob(id string, spec JobSpec) *Job {
	return &Job{ID: id, Key: spec.Key(), Spec: spec, status: StateQueued, done: make(chan struct{})}
}

// Done is closed when the job reaches a terminal state (done, failed or
// parked); Status then tells which.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setState(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

func (j *Job) startAttempt(n int) {
	j.mu.Lock()
	j.status = StateRunning
	j.attempt = n
	j.mu.Unlock()
}

func (j *Job) setRetrying(delayMS int64) {
	j.mu.Lock()
	j.status = StateRetrying
	j.retryDelaysMS = append(j.retryDelaysMS, delayMS)
	j.mu.Unlock()
}

func (j *Job) finish(result json.RawMessage, cacheHit bool) {
	j.mu.Lock()
	j.status = StateDone
	j.result = result
	j.cacheHit = cacheHit
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) fail(msg, diag string) {
	j.mu.Lock()
	j.status = StateFailed
	j.errMsg = msg
	j.diag = diag
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) park(msg string) {
	j.mu.Lock()
	j.status = StateParked
	j.errMsg = msg
	j.mu.Unlock()
	close(j.done)
}

// JobView is the status document GET /jobs/{id} serves.
type JobView struct {
	ID            string  `json:"id"`
	Key           string  `json:"key"`
	Tenant        string  `json:"tenant"`
	Kind          string  `json:"kind"`
	Status        string  `json:"status"`
	Attempt       int     `json:"attempt"`
	RetryDelaysMS []int64 `json:"retry_delays_ms,omitempty"`
	Error         string  `json:"error,omitempty"`
	Diagnostic    string  `json:"diagnostic,omitempty"`
	CacheHit      bool    `json:"cache_hit,omitempty"`
	HasResult     bool    `json:"has_result"`
}

// View snapshots the job's current state.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:            j.ID,
		Key:           fmt.Sprintf("%016x", j.Key),
		Tenant:        j.Spec.Tenant,
		Kind:          j.Spec.Kind,
		Status:        j.status,
		Attempt:       j.attempt,
		RetryDelaysMS: append([]int64(nil), j.retryDelaysMS...),
		Error:         j.errMsg,
		Diagnostic:    j.diag,
		CacheHit:      j.cacheHit,
		HasResult:     j.result != nil,
	}
}

// Result returns the job's result document, nil until done.
func (j *Job) Result() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Status returns the job's current state string.
func (j *Job) Status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// InFlight reports whether the job still occupies queue/quota accounting.
func (j *Job) InFlight() bool {
	switch j.Status() {
	case StateDone, StateFailed, StateParked:
		return false
	}
	return true
}
