// Package serve is the simulation-as-a-service layer: an HTTP/JSON job
// service that runs pair sweeps, fault campaigns and traffic scenarios on a
// bounded worker pool, with admission control, per-tenant quotas, retry with
// exponential backoff, per-job timeouts, a content-addressed checkpoint cache
// with integrity verification, a crash-safe job journal, and graceful drain.
package serve

import "time"

// Clock abstracts time for the service so the retry/backoff and timeout
// machinery is testable with a deterministic fake: production uses realClock;
// tests inject a manual clock and advance it explicitly, making the backoff
// schedule and timeout firings exact rather than sleep-and-hope.
type Clock interface {
	Now() time.Time
	// After returns a channel that receives once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock is the production clock.
func RealClock() Clock { return realClock{} }
