package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// journalRecord is one JSONL line in the crash-safe job journal: an "accept"
// when a job is admitted, an "end" when it reaches done or failed. A job
// that was accepted but never ended — the process crashed, or a drain parked
// it — is replayed on the next start.
type journalRecord struct {
	Op     string   `json:"op"` // accept | end
	ID     string   `json:"id"`
	Status string   `json:"status,omitempty"` // end only: done | failed
	Spec   *JobSpec `json:"spec,omitempty"`   // accept only
}

// Journal is an append-only JSONL job log. Appends are fsynced so an
// accepted job survives a crash of the process (the 202 response is a
// durable promise). A nil *Journal is a no-op, so the journal is optional.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path and returns it
// together with the accepted-but-unfinished jobs found in it, in acceptance
// order — the replay set.
func OpenJournal(path string) (*Journal, []JobSpec, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	type pendingJob struct {
		spec JobSpec
		seq  int
	}
	pending := map[string]pendingJob{}
	order := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A torn final line from a crash mid-append is expected; a torn
			// line anywhere else is corruption worth surfacing.
			continue
		}
		switch rec.Op {
		case "accept":
			if rec.Spec != nil {
				pending[rec.ID] = pendingJob{spec: *rec.Spec, seq: order}
				order++
			}
		case "end":
			delete(pending, rec.ID)
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: reading journal: %w", err)
	}
	ordered := make([]pendingJob, 0, len(pending))
	for _, p := range pending {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].seq < ordered[b].seq })
	replay := make([]JobSpec, len(ordered))
	for i, p := range ordered {
		replay[i] = p.spec
	}
	return &Journal{f: f}, replay, nil
}

// Accept records an admitted job durably before the 202 is sent.
func (j *Journal) Accept(id string, spec JobSpec) error {
	return j.append(journalRecord{Op: "accept", ID: id, Spec: &spec})
}

// End records a terminal outcome (done or failed). Parked jobs are
// deliberately NOT ended: the next start replays them.
func (j *Journal) End(id, status string) error {
	return j.append(journalRecord{Op: "end", ID: id, Status: status})
}

func (j *Journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
