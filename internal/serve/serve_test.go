package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"occamy/internal/telemetry"
)

// fakeClock is a manual clock: After registers a waiter, Advance moves time
// and fires every waiter that came due. pendingAtLeast lets tests rendezvous
// with the service's timer registrations before advancing, which makes the
// timeout and backoff schedules fully deterministic.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var keep []fakeWaiter
	var fire []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	now := c.now
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// pendingAtLeast blocks until at least n waiters are registered (with a real
// wall-clock timeout so a hung test fails instead of deadlocking).
func (c *fakeClock) pendingAtLeast(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		got := len(c.waiters)
		c.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d clock waiters", n)
}

// pairSpec is a quick two-core job.
func pairSpec(tenant string, seed uint64) JobSpec {
	return JobSpec{
		Tenant:    tenant,
		Kind:      "pair",
		Arch:      "elastic",
		Workloads: []string{"spec/WL20", "spec/WL17"},
		Scale:     0.05,
		Seed:      seed,
	}
}

// campaignSpec is a quick two-point fault campaign.
func campaignSpec(tenant string) JobSpec {
	return JobSpec{
		Tenant:       tenant,
		Kind:         "campaign",
		Arch:         "elastic",
		Workloads:    []string{"spec/WL20", "spec/WL17"},
		Scale:        0.05,
		Seed:         3,
		WarmupCycles: 1500,
		Faults:       []string{"", "exebu:1@2000"},
	}
}

// hangSpec is an injected-hang job: it occupies a worker until killed.
func hangSpec(tenant string, seed uint64) JobSpec {
	s := pairSpec(tenant, seed)
	s.Inject = "timeout"
	return s
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, submitResponse) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

// waitTerminal polls the HTTP status endpoint until the job leaves the
// in-flight states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if code := getJSON(t, ts, "/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		switch v.Status {
		case StateDone, StateFailed, StateParked:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobView{}
}

// waitRunning polls until the job is running on a worker.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.Job(id); ok && j.Status() == StateRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestSubmitPollResult is the happy path over HTTP: submit a pair and a
// traffic job, poll to done, fetch the results, and check the metrics
// endpoint validates as OpenMetrics.
func TestSubmitPollResult(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	defer s.Drain()

	resp, sub := postJob(t, ts, pairSpec("t1", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	tSpec := JobSpec{
		Tenant: "t1", Kind: "traffic", Arch: "elastic",
		Traffic: "poisson:load=2,tenants=2,cores=2,horizon=6000,slice=300,elems=96,repeats=1",
	}
	_, sub2 := postJob(t, ts, tSpec)

	v := waitTerminal(t, ts, sub.ID)
	if v.Status != StateDone {
		t.Fatalf("pair job = %+v, want done", v)
	}
	var pr PairResult
	if code := getJSON(t, ts, "/jobs/"+sub.ID+"/result", &pr); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if pr.Cycles == 0 || len(pr.CoreCycles) != 2 {
		t.Fatalf("implausible pair result: %+v", pr)
	}

	v2 := waitTerminal(t, ts, sub2.ID)
	if v2.Status != StateDone {
		t.Fatalf("traffic job = %+v, want done", v2)
	}
	var tr TrafficResult
	getJSON(t, ts, "/jobs/"+sub2.ID+"/result", &tr)
	if tr.Arrivals == 0 || tr.Digest == "" {
		t.Fatalf("implausible traffic result: %+v", tr)
	}

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := telemetry.ValidateOpenMetrics(resp2.Body); err != nil {
		t.Fatalf("/metrics is not valid OpenMetrics: %v", err)
	}
	if s.Stats().CacheHits() != 0 {
		t.Fatalf("pair/traffic jobs should not touch the checkpoint cache")
	}
}

// TestDedupCoalesces: an identical submission while the first is in flight
// returns the same job (200, deduplicated), not a second run.
func TestDedupCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, AllowInjection: true, DrainGrace: 20 * time.Millisecond})
	defer s.Drain()

	_, hog := postJob(t, ts, hangSpec("t1", 99))
	waitRunning(t, s, hog.ID)

	resp1, sub1 := postJob(t, ts, pairSpec("t1", 2))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first = %d, want 202", resp1.StatusCode)
	}
	resp2, sub2 := postJob(t, ts, pairSpec("t1", 2))
	if resp2.StatusCode != http.StatusOK || !sub2.Dedup {
		t.Fatalf("second = %d dedup=%v, want 200 dedup=true", resp2.StatusCode, sub2.Dedup)
	}
	if sub1.ID != sub2.ID {
		t.Fatalf("dedup returned a different job: %s vs %s", sub1.ID, sub2.ID)
	}
	if got := s.Stats(); got.QueueDepth() < 1 {
		t.Fatalf("deduped submission should not consume queue slots")
	}
}

// TestOverloadQueueFull: a full queue rejects with 429 + Retry-After and the
// backlog never grows past its bound.
func TestOverloadQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers: 1, QueueCap: 1, TenantQuota: -1,
		AllowInjection: true, DrainGrace: 20 * time.Millisecond,
	})
	defer s.Drain()

	_, hog := postJob(t, ts, hangSpec("t1", 1))
	waitRunning(t, s, hog.ID)
	if resp, _ := postJob(t, ts, hangSpec("t1", 2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job = %d, want 202", resp.StatusCode)
	}
	resp, _ := postJob(t, ts, hangSpec("t1", 3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if d := s.Stats().QueueDepth(); d > 1 {
		t.Fatalf("queue depth %d exceeds cap 1", d)
	}
}

// TestTenantQuota: one tenant at its in-flight cap gets 429; another tenant
// is unaffected.
func TestTenantQuota(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers: 1, TenantQuota: 1,
		AllowInjection: true, DrainGrace: 20 * time.Millisecond,
	})
	defer s.Drain()

	_, hog := postJob(t, ts, hangSpec("t1", 1))
	waitRunning(t, s, hog.ID)
	resp, _ := postJob(t, ts, pairSpec("t1", 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp2, _ := postJob(t, ts, hangSpec("t2", 3)); resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", resp2.StatusCode)
	}
}

// TestTimeoutRetryBackoffSchedule drives a permanently hanging job through
// its full attempt budget with a fake clock: every timeout and every backoff
// delay is asserted exactly.
func TestTimeoutRetryBackoffSchedule(t *testing.T) {
	fc := newFakeClock()
	const timeout = time.Second
	s, ts := newTestServer(t, Options{
		Workers: 1, MaxAttempts: 3,
		BackoffBase: 100 * time.Millisecond, BackoffCap: 10 * time.Second,
		DefaultTimeout: timeout, Clock: fc, AllowInjection: true,
	})

	_, sub := postJob(t, ts, hangSpec("t1", 7))
	job, ok := s.Job(sub.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	wantDelays := []time.Duration{s.backoffDelay(job.Key, 1), s.backoffDelay(job.Key, 2)}

	for attempt := 1; attempt <= 3; attempt++ {
		fc.pendingAtLeast(t, 1) // the attempt's deadline timer
		fc.Advance(timeout)
		if attempt < 3 {
			fc.pendingAtLeast(t, 1) // the backoff sleep
			fc.Advance(wantDelays[attempt-1])
		}
	}

	v := waitTerminal(t, ts, sub.ID)
	if v.Status != StateFailed {
		t.Fatalf("exhausted job = %+v, want failed", v)
	}
	if !strings.Contains(v.Error, "attempt budget exhausted") {
		t.Fatalf("failure reason %q lacks the budget marker", v.Error)
	}
	if v.Attempt != 3 {
		t.Fatalf("attempts = %d, want 3", v.Attempt)
	}
	var gotMS []int64
	for _, d := range wantDelays {
		gotMS = append(gotMS, d.Milliseconds())
	}
	if fmt.Sprint(v.RetryDelaysMS) != fmt.Sprint(gotMS) {
		t.Fatalf("backoff schedule = %v ms, want %v ms", v.RetryDelaysMS, gotMS)
	}
	st := s.Stats()
	if st.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries())
	}
	var buf bytes.Buffer
	st.WriteOpenMetrics(&buf)
	for _, want := range []string{"occamy_serve_timeouts_total 3", "occamy_serve_retries_total 2", "occamy_serve_jobs_failed_total 1"} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

// TestTimeoutThenRecovers: inject a hang on the first attempt only — the
// retry runs the real simulation and the job completes, proving a transient
// failure costs one backoff, not the job.
func TestTimeoutThenRecovers(t *testing.T) {
	fc := newFakeClock()
	s, ts := newTestServer(t, Options{
		Workers: 1, MaxAttempts: 3,
		BackoffBase: 50 * time.Millisecond, BackoffCap: time.Second,
		DefaultTimeout: time.Second, Clock: fc, AllowInjection: true,
	})

	spec := pairSpec("t1", 5)
	spec.Inject = "timeout:1"
	_, sub := postJob(t, ts, spec)
	job, _ := s.Job(sub.ID)

	fc.pendingAtLeast(t, 1)
	fc.Advance(time.Second) // kill attempt 1
	fc.pendingAtLeast(t, 1)
	fc.Advance(s.backoffDelay(job.Key, 1)) // release the backoff; attempt 2 runs for real

	v := waitTerminal(t, ts, sub.ID)
	if v.Status != StateDone || v.Attempt != 2 {
		t.Fatalf("job = %+v, want done on attempt 2", v)
	}
	if len(v.RetryDelaysMS) != 1 {
		t.Fatalf("retry delays = %v, want exactly one", v.RetryDelaysMS)
	}
	if !v.HasResult {
		t.Fatal("recovered job has no result")
	}
}

// TestCampaignCacheAndCorruption is the checkpoint-cache integrity story end
// to end: a cold campaign populates the cache, an identical one hits it, a
// tampered entry is detected, evicted, and the job falls back to a cold
// warm-up — with every outcome bit-identical and counted in the metrics.
func TestCampaignCacheAndCorruption(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, AllowInjection: true})
	defer s.Drain()

	run := func() (JobView, CampaignResult) {
		t.Helper()
		resp, sub := postJob(t, ts, campaignSpec("t1"))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d", resp.StatusCode)
		}
		v := waitTerminal(t, ts, sub.ID)
		if v.Status != StateDone {
			t.Fatalf("campaign = %+v, want done", v)
		}
		var cr CampaignResult
		getJSON(t, ts, "/jobs/"+sub.ID+"/result", &cr)
		return v, cr
	}

	_, cold := run()
	if cold.CacheHit {
		t.Fatal("first campaign claims a cache hit")
	}
	if len(cold.Points) != 2 || cold.Points[0].Cycles == 0 {
		t.Fatalf("implausible campaign result: %+v", cold)
	}

	_, warm := run()
	if !warm.CacheHit {
		t.Fatal("second identical campaign missed the cache")
	}
	if fmt.Sprint(warm.Points) != fmt.Sprint(cold.Points) {
		t.Fatalf("warm campaign diverges from cold:\ncold: %+v\nwarm: %+v", cold.Points, warm.Points)
	}

	resp, err := http.Post(ts.URL+"/inject/corrupt-cache", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var tampered map[string]int
	json.NewDecoder(resp.Body).Decode(&tampered)
	resp.Body.Close()
	if tampered["tampered"] != 1 {
		t.Fatalf("tampered %d entries, want 1", tampered["tampered"])
	}

	_, healed := run()
	if healed.CacheHit {
		t.Fatal("corrupted entry should have forced a cold run")
	}
	if fmt.Sprint(healed.Points) != fmt.Sprint(cold.Points) {
		t.Fatalf("post-corruption campaign diverges from cold:\ncold: %+v\ngot: %+v", cold.Points, healed.Points)
	}
	st := s.Stats()
	if st.CacheCorrupts() != 1 {
		t.Fatalf("cache corrupt count = %d, want 1", st.CacheCorrupts())
	}

	_, rewarmed := run()
	if !rewarmed.CacheHit {
		t.Fatal("cold fallback should have repopulated the cache")
	}
	if fmt.Sprint(rewarmed.Points) != fmt.Sprint(cold.Points) {
		t.Fatalf("re-warmed campaign diverges from cold")
	}

	// Hits count restore attempts from a cached entry — the corrupted one
	// included (it is separately tallied under corrupt, and the cold
	// fallback repopulates via Put without a second miss). So after the
	// four runs: 1 miss (cold fill), 3 hits (warm, corrupt, re-warmed),
	// 1 corrupt.
	var buf bytes.Buffer
	st.WriteOpenMetrics(&buf)
	for _, want := range []string{
		"occamy_serve_cache_corrupt_total 1",
		"occamy_serve_cache_misses_total 1",
		"occamy_serve_cache_hits_total 3",
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDrainUnderLoad: a drain with live work stops admission, kills the
// running attempt after the grace, parks everything accepted-but-unfinished,
// and loses no job.
func TestDrainUnderLoad(t *testing.T) {
	fc := newFakeClock()
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{
		Workers: 1, DrainGrace: 10 * time.Second, Clock: fc,
		AllowInjection: true, JournalPath: filepath.Join(dir, "jobs.jsonl"),
	})

	_, running := postJob(t, ts, hangSpec("t1", 1))
	waitRunning(t, s, running.ID)
	_, queued1 := postJob(t, ts, pairSpec("t1", 2))
	_, queued2 := postJob(t, ts, pairSpec("t2", 3))

	drained := make(chan error, 1)
	go func() { drained <- s.Drain() }()
	// Rejections start as soon as the drain flag is set.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, _ := postJob(t, ts, pairSpec("t3", 4))
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started rejecting")
		}
		time.Sleep(time.Millisecond)
	}
	// Two timers are pending: the running attempt's deadline and the drain
	// grace. Fire the grace; the hard stop parks everything.
	fc.pendingAtLeast(t, 2)
	fc.Advance(10 * time.Second)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, id := range []string{running.ID, queued1.ID, queued2.ID} {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s lost by drain", id)
		}
		if got := j.Status(); got != StateParked {
			t.Fatalf("job %s = %s, want parked", id, got)
		}
	}
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d, want 503", code)
	}

	// The journal replays every parked job on the next start.
	_, replay, err := OpenJournal(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 3 {
		t.Fatalf("replay set has %d jobs, want 3", len(replay))
	}
}

// TestJournalReplay: a finished job is not replayed; a parked one is — and
// completes on the restarted server.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")

	s1, ts1 := newTestServer(t, Options{
		Workers: 2, AllowInjection: true, JournalPath: path,
		DrainGrace: 20 * time.Millisecond,
	})
	_, doneJob := postJob(t, ts1, pairSpec("t1", 1))
	if v := waitTerminal(t, ts1, doneJob.ID); v.Status != StateDone {
		t.Fatalf("job 1 = %+v", v)
	}
	_, hog := postJob(t, ts1, hangSpec("t1", 2))
	waitRunning(t, s1, hog.ID)
	if err := s1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j, _ := s1.Job(hog.ID); j.Status() != StateParked {
		t.Fatalf("hung job = %s, want parked", j.Status())
	}

	// Restart: only the parked job replays. Its inject hook hangs attempt 1
	// again, but this server's per-attempt timeout is real and short, so the
	// retry (no longer the first attempt... inject "timeout" hangs every
	// attempt) — use the attempt budget to park it permanently instead:
	// what matters here is that it came back at all.
	s2, err := New(Options{
		Workers: 2, AllowInjection: true, JournalPath: path,
		DefaultTimeout: 50 * time.Millisecond, MaxAttempts: 1,
		DrainGrace: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("restart replayed %d jobs, want 1", len(jobs))
	}
	if jobs[0].Spec.Seed != 2 || jobs[0].Spec.Inject == "" {
		t.Fatalf("wrong job replayed: %+v", jobs[0].Spec)
	}
	<-jobs[0].Done()
	if got := jobs[0].Status(); got != StateFailed {
		t.Fatalf("replayed hang = %s, want failed (single-attempt budget)", got)
	}
	if err := s2.Drain(); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
}

// TestValidationRejects: malformed specs get a 400 before touching the queue,
// and injection hooks are refused without AllowInjection.
func TestValidationRejects(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	defer s.Drain()

	bad := []JobSpec{
		{Tenant: "t", Kind: "pair", Arch: "elastic"},                                                               // no workloads
		{Tenant: "t", Kind: "pair", Arch: "warp", Workloads: []string{"spec/WL1"}},                                 // bad arch
		{Tenant: "t", Kind: "pair", Arch: "elastic", Workloads: []string{"spec/WL999"}},                            // bad workload
		{Tenant: "", Kind: "pair", Arch: "elastic", Workloads: []string{"spec/WL1"}},                               // no tenant
		{Tenant: "t", Kind: "traffic", Arch: "elastic", Traffic: "warp:load=1"},                                    // bad traffic
		{Tenant: "t", Kind: "campaign", Arch: "elastic", Workloads: []string{"spec/WL1"}},                          // no points
		{Tenant: "t", Kind: "pair", Arch: "elastic", Workloads: []string{"spec/WL1"}, Scale: -1},                   // bad scale
		{Tenant: "t", Kind: "pair", Arch: "elastic", Workloads: []string{"spec/WL1"}, Faults: []string{"bogus@x"}}, // bad fault
	}
	for i, spec := range bad {
		if resp, _ := postJob(t, ts, spec); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d = %d, want 400", i, resp.StatusCode)
		}
	}
	inj := pairSpec("t", 1)
	inj.Inject = "timeout"
	if resp, _ := postJob(t, ts, inj); resp.StatusCode != http.StatusForbidden {
		t.Errorf("injection without AllowInjection accepted")
	}
	if s.Stats().QueueDepth() != 0 {
		t.Errorf("rejected specs consumed queue slots")
	}
}
