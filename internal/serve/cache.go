package serve

import (
	"sync"

	"occamy/internal/arch"
	"occamy/internal/telemetry"
)

// Cache is the content-addressed warm-up checkpoint cache: campaign jobs key
// their warm-up snapshot by WarmKey (architecture, machine, topology,
// workload prefix, seed, scale, lanes, warm-up length), so a second campaign
// over the same prefix restores instead of re-simulating the warm-up.
//
// Fills are singleflighted: the first requester runs the warm-up while
// identical concurrent requesters wait for its snapshot. Entries carry the
// snapshot's content digest (stamped by arch.Checkpoint); the consumer
// verifies on restore and reports corruption back via Evict, so a corrupted
// entry costs one cold run and an eviction, never a wrong answer.
type Cache struct {
	mu    sync.Mutex
	cap   int
	seq   uint64
	m     map[uint64]*cacheEntry
	stats *telemetry.ServiceStats
}

type cacheEntry struct {
	ready chan struct{} // closed once snap/err are set
	snap  *arch.SystemState
	err   error
	seq   uint64 // last-touch tick for LRU eviction
}

// NewCache returns a cache holding at most capacity snapshots (min 1).
// stats may be nil.
func NewCache(capacity int, stats *telemetry.ServiceStats) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, m: make(map[uint64]*cacheEntry), stats: stats}
}

// GetOrFill returns the snapshot for key, running fill to produce it on a
// miss. hit reports whether a warm-up run was avoided (a waiter on an
// in-flight fill counts as a hit: it never simulated the warm-up). A failed
// fill is not cached; every waiter receives the error and the next caller
// refills.
func (c *Cache) GetOrFill(key uint64, fill func() (*arch.SystemState, error)) (snap *arch.SystemState, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.seq++
		e.seq = c.seq
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		if c.stats != nil {
			c.stats.CacheHit()
		}
		return e.snap, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.seq++
	e.seq = c.seq
	c.m[key] = e
	c.mu.Unlock()

	if c.stats != nil {
		c.stats.CacheMiss()
	}
	e.snap, e.err = fill()
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Only remove our own failed entry; a concurrent Evict+refill may
		// have replaced it already.
		if c.m[key] == e {
			delete(c.m, key)
		}
	} else {
		c.evictOverCapLocked(key)
	}
	c.mu.Unlock()
	return e.snap, false, e.err
}

// Put installs a known-good snapshot (the cold-fallback path after a corrupt
// entry was evicted).
func (c *Cache) Put(key uint64, snap *arch.SystemState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &cacheEntry{ready: make(chan struct{}), snap: snap}
	close(e.ready)
	c.seq++
	e.seq = c.seq
	c.m[key] = e
	c.evictOverCapLocked(key)
}

// evictOverCapLocked drops least-recently-touched completed entries until the
// cache fits, never evicting keep or an in-flight fill.
func (c *Cache) evictOverCapLocked(keep uint64) {
	for len(c.m) > c.cap {
		var victim uint64
		var oldest uint64
		found := false
		for k, e := range c.m {
			if k == keep {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // in-flight fill
			}
			if !found || e.seq < oldest {
				victim, oldest, found = k, e.seq, true
			}
		}
		if !found {
			return
		}
		delete(c.m, victim)
		if c.stats != nil {
			c.stats.CacheEvicted()
		}
	}
}

// Evict removes key (the corrupt-entry path). Counted as an eviction.
func (c *Cache) Evict(key uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		delete(c.m, key)
		if c.stats != nil {
			c.stats.CacheEvicted()
		}
	}
}

// Len returns the number of cached entries (including in-flight fills).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// TamperAll flips one bit in every completed cached snapshot — the
// fault-injection hook behind POST /inject/corrupt-cache (AllowInjection
// only). Returns how many entries were tampered.
func (c *Cache) TamperAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.m {
		select {
		case <-e.ready:
		default:
			continue
		}
		if e.snap != nil {
			e.snap.Tamper()
			n++
		}
	}
	return n
}
