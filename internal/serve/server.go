package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"occamy/internal/telemetry"
)

// Options tunes a Server. Zero values take the documented defaults.
type Options struct {
	// Workers is the worker-pool size (default 2): the concurrency limit on
	// simulations, the service's primary resource bound.
	Workers int
	// QueueCap bounds admitted-but-not-running jobs (default 16). A full
	// queue rejects with 429 + Retry-After; the backlog never grows
	// without bound.
	QueueCap int
	// TenantQuota caps one tenant's in-flight jobs (default 4; <0 disables).
	TenantQuota int
	// MaxAttempts is the per-job attempt budget (default 3): transient
	// failures retry with exponential backoff until the budget is spent,
	// then the job fails permanently.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the retry schedule: delay n is
	// min(BackoffBase << (n-1), BackoffCap) plus deterministic jitter in
	// [0, delay/4). Defaults 100ms and 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DefaultTimeout is the per-attempt deadline when the spec sets none
	// (default 120s).
	DefaultTimeout time.Duration
	// DrainGrace is how long Drain waits for in-flight work before killing
	// and parking it (default 10s).
	DrainGrace time.Duration
	// CacheCap bounds the warm-up checkpoint cache (default 8 snapshots).
	CacheCap int
	// JournalPath, when non-empty, makes accepted jobs durable: they are
	// journaled before the 202 and replayed on the next start if the
	// process dies (or drains) before finishing them.
	JournalPath string
	// Clock injects time; nil uses the real clock.
	Clock Clock
	// AllowInjection enables the test-only fault hooks (JobSpec.Inject and
	// POST /inject/corrupt-cache). Never enable in production.
	AllowInjection bool
	// Stats receives the service metrics; nil allocates a private set.
	Stats *telemetry.ServiceStats
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 16
	}
	if out.TenantQuota == 0 {
		out.TenantQuota = 4
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 100 * time.Millisecond
	}
	if out.BackoffCap <= 0 {
		out.BackoffCap = 5 * time.Second
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 120 * time.Second
	}
	if out.DrainGrace <= 0 {
		out.DrainGrace = 10 * time.Second
	}
	if out.CacheCap <= 0 {
		out.CacheCap = 8
	}
	if out.Clock == nil {
		out.Clock = RealClock()
	}
	if out.Stats == nil {
		out.Stats = &telemetry.ServiceStats{}
	}
	return out
}

// Server is the job service: admission control in front of a bounded queue,
// a fixed worker pool executing attempts with timeouts and retry/backoff, a
// content-addressed checkpoint cache, and a drain path that parks what it
// cannot finish.
type Server struct {
	opts    Options
	stats   *telemetry.ServiceStats
	cache   *Cache
	runner  *runner
	journal *Journal
	clock   Clock

	queue    chan *Job
	hardStop chan struct{} // closed when the drain grace expires
	wg       sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   int
	jobs     map[string]*Job
	byKey    map[uint64]*Job // in-flight only: the singleflight dedup index
	inFlight map[string]int  // per-tenant queued+running+retrying count
	order    []string        // job IDs in admission order, for GET /jobs
}

// New builds and starts a Server: workers are running and, when a journal is
// configured, accepted-but-unfinished jobs from the previous process are
// replayed before new submissions are taken.
func New(o Options) (*Server, error) {
	opts := o.withDefaults()
	s := &Server{
		opts:     opts,
		stats:    opts.Stats,
		clock:    opts.Clock,
		queue:    make(chan *Job, opts.QueueCap),
		hardStop: make(chan struct{}),
		jobs:     make(map[string]*Job),
		byKey:    make(map[uint64]*Job),
		inFlight: make(map[string]int),
	}
	s.cache = NewCache(opts.CacheCap, s.stats)
	s.runner = &runner{cache: s.cache}

	var replay []JobSpec
	if opts.JournalPath != "" {
		j, pending, err := OpenJournal(opts.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("serve: journal: %w", err)
		}
		s.journal = j
		replay = pending
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Replayed jobs were journaled by the previous process; re-admit them
	// without re-journaling. They bypass quota (they were already accepted
	// once) but still occupy quota slots while in flight.
	for _, spec := range replay {
		job := s.register(spec)
		s.stats.Replayed()
		s.stats.QueueAdd(1)
		s.queue <- job
	}
	return s, nil
}

// register allocates an ID and indexes a job as in-flight. Caller must not
// hold s.mu.
func (s *Server) register(spec JobSpec) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	job := newJob(fmt.Sprintf("job-%d", s.nextID), spec)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.byKey[job.Key] = job
	s.inFlight[spec.Tenant]++
	s.stats.SetTenants(int64(len(s.inFlight)))
	return job
}

// release drops a job from the in-flight indexes once it reaches a terminal
// state.
func (s *Server) release(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey[job.Key] == job {
		delete(s.byKey, job.Key)
	}
	t := job.Spec.Tenant
	if s.inFlight[t]--; s.inFlight[t] <= 0 {
		delete(s.inFlight, t)
	}
	s.stats.SetTenants(int64(len(s.inFlight)))
}

// SubmitError carries an HTTP status for a refused submission.
type SubmitError struct {
	Status     int
	RetryAfter int // seconds; 0 omits the header
	Msg        string
}

func (e *SubmitError) Error() string { return e.Msg }

// Submit admits a job (or coalesces it onto an identical in-flight one).
// Returns the job and whether it was deduplicated.
func (s *Server) Submit(spec JobSpec) (*Job, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, &SubmitError{Status: http.StatusBadRequest, Msg: err.Error()}
	}
	if spec.Inject != "" && !s.opts.AllowInjection {
		return nil, false, &SubmitError{Status: http.StatusForbidden, Msg: "injection hooks are disabled"}
	}
	key := spec.Key()

	// The whole admission decision — draining check, dedup, quota, queue
	// reservation — is one critical section: the non-blocking queue send
	// must not race Drain's close(s.queue), and a deduplicated submission
	// must never land on a job that admission is about to drop.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.RejectedDraining()
		return nil, false, &SubmitError{Status: http.StatusServiceUnavailable, Msg: "draining"}
	}
	if dup, ok := s.byKey[key]; ok && dup.InFlight() {
		s.mu.Unlock()
		s.stats.Deduped()
		return dup, true, nil
	}
	if q := s.opts.TenantQuota; q > 0 && s.inFlight[spec.Tenant] >= q {
		s.mu.Unlock()
		s.stats.RejectedQuota()
		return nil, false, &SubmitError{
			Status: http.StatusTooManyRequests, RetryAfter: 1,
			Msg: fmt.Sprintf("tenant %q at its in-flight quota (%d)", spec.Tenant, q),
		}
	}
	// All queue sends happen under s.mu, so len(s.queue) can only shrink
	// concurrently (workers receiving) and this capacity check makes the
	// send below non-blocking.
	if len(s.queue) >= s.opts.QueueCap {
		s.mu.Unlock()
		s.stats.RejectedFull()
		return nil, false, &SubmitError{
			Status: http.StatusTooManyRequests, RetryAfter: 2,
			Msg: fmt.Sprintf("queue full (%d jobs)", s.opts.QueueCap),
		}
	}
	s.nextID++
	job := newJob(fmt.Sprintf("job-%d", s.nextID), spec)
	// Journal before the job becomes runnable: once a worker can see it, it
	// can finish it, and an "end" record must never precede its "accept".
	// The fsync under the lock is the price of the 202 being a durable
	// promise.
	if err := s.journal.Accept(job.ID, spec); err != nil {
		s.nextID--
		s.mu.Unlock()
		return nil, false, &SubmitError{
			Status: http.StatusInternalServerError,
			Msg:    fmt.Sprintf("journal accept failed: %v", err),
		}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.byKey[job.Key] = job
	s.inFlight[spec.Tenant]++
	s.stats.SetTenants(int64(len(s.inFlight)))
	s.stats.QueueAdd(1)
	s.queue <- job
	s.mu.Unlock()
	s.stats.Admitted()
	return job, false, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in admission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Stats exposes the service metrics (for tests and embedding).
func (s *Server) Stats() *telemetry.ServiceStats { return s.stats }

// Cache exposes the checkpoint cache (for tests and the injection hook).
func (s *Server) Cache() *Cache { return s.cache }

// worker drains the queue, running each job's full attempt loop in place: a
// retrying job keeps its worker slot through the backoff sleep, so Workers
// bounds simulations and retries together.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.stats.QueueAdd(-1)
		select {
		case <-s.hardStop:
			// Hard drain: accepted but never started. Park it; the journal
			// has its accept record, so a restart replays it.
			s.parkJob(job, "drained before start")
			continue
		default:
		}
		s.runJob(job)
	}
}

// parkJob marks a job parked (no journal end record: the journal replays it).
func (s *Server) parkJob(job *Job, msg string) {
	job.park(msg)
	s.stats.Parked()
	s.release(job)
}

// backoffDelay is attempt n's retry delay: exponential with a deterministic
// jitter derived from (job key, attempt), so tests with an injected clock can
// assert the exact schedule.
func (s *Server) backoffDelay(key uint64, attempt int) time.Duration {
	d := s.opts.BackoffBase << uint(attempt-1)
	if d > s.opts.BackoffCap || d <= 0 {
		d = s.opts.BackoffCap
	}
	h := fnv.New64a()
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(key >> (8 * i))
		b[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(b[:])
	jitter := time.Duration(h.Sum64() % uint64(d/4+1))
	return d + jitter
}

// runJob executes the attempt loop: run, classify, back off, retry, until
// success, a permanent failure, the attempt budget, or a drain kill.
func (s *Server) runJob(job *Job) {
	s.stats.RunningAdd(1)
	defer s.stats.RunningAdd(-1)
	for attempt := 1; ; attempt++ {
		job.startAttempt(attempt)
		doc, cacheHit, drained, aerr := s.runAttempt(job, attempt)
		if drained {
			s.parkJob(job, "drained mid-run")
			return
		}
		if aerr == nil {
			job.finish(doc, cacheHit)
			s.stats.DoneOK()
			s.journal.End(job.ID, StateDone)
			s.release(job)
			return
		}
		if aerr.timeout {
			s.stats.TimedOut()
		}
		if aerr.stall {
			s.stats.Stalled()
		}
		if !aerr.transient || attempt >= s.opts.MaxAttempts {
			reason := aerr.Error()
			if aerr.transient {
				reason = fmt.Sprintf("attempt budget exhausted (%d attempts): %s", attempt, reason)
			}
			job.fail(reason, aerr.diag)
			s.stats.DoneFailed()
			s.journal.End(job.ID, StateFailed)
			s.release(job)
			return
		}
		delay := s.backoffDelay(job.Key, attempt)
		job.setRetrying(delay.Milliseconds())
		s.stats.Retried()
		select {
		case <-s.clock.After(delay):
		case <-s.hardStop:
			s.parkJob(job, "drained during retry backoff")
			return
		}
	}
}

// runAttempt executes one attempt with its deadline. drained reports that the
// attempt was killed by the drain hard-stop rather than its own deadline.
func (s *Server) runAttempt(job *Job, attempt int) (doc json.RawMessage, cacheHit, drained bool, aerr *attemptError) {
	timeout := s.opts.DefaultTimeout
	if job.Spec.TimeoutMS > 0 {
		timeout = time.Duration(job.Spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var timedOut, stopped bool
	var mu sync.Mutex
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-s.clock.After(timeout):
			mu.Lock()
			timedOut = true
			mu.Unlock()
			cancel()
		case <-s.hardStop:
			mu.Lock()
			stopped = true
			mu.Unlock()
			cancel()
		case <-watchDone:
		}
	}()

	var err error
	if inj, n, ok := parseInject(job.Spec.Inject); ok && s.opts.AllowInjection && inj == "timeout" && (n == 0 || attempt <= n) {
		// Forced hang: the attempt blocks until something kills it, which
		// exercises the timeout/retry path deterministically.
		<-ctx.Done()
		err = fmt.Errorf("serve: injected hang killed: %w", context.Cause(ctx))
		mu.Lock()
		to := timedOut
		st := stopped
		mu.Unlock()
		if st {
			return nil, false, true, nil
		}
		return nil, false, false, &attemptError{err: err, transient: true, timeout: to}
	}

	doc, cacheHit, err = s.runner.run(ctx, &job.Spec)
	mu.Lock()
	to := timedOut
	st := stopped
	mu.Unlock()
	if err == nil {
		return doc, cacheHit, false, nil
	}
	if st {
		return nil, false, true, nil
	}
	return nil, false, false, classify(err, to)
}

// parseInject splits "timeout" / "timeout:N" into (hook, N, ok).
func parseInject(s string) (string, int, bool) {
	if s == "" {
		return "", 0, false
	}
	name, arg, found := strings.Cut(s, ":")
	n := 0
	if found {
		fmt.Sscanf(arg, "%d", &n)
	}
	return name, n, true
}

// Drain gracefully shuts the service down: stop admitting, let in-flight
// work finish for the grace period, then kill and park what remains, flush
// the journal, and return. After Drain the server accepts nothing.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("serve: already draining")
	}
	s.draining = true
	s.mu.Unlock()
	s.stats.SetDraining(true)

	close(s.queue) // workers finish the backlog then exit
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-s.clock.After(s.opts.DrainGrace):
		close(s.hardStop) // kill running attempts; workers park the rest
		<-done
	}
	return s.journal.Close()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.opts.AllowInjection {
		mux.HandleFunc("POST /inject/corrupt-cache", s.handleCorruptCache)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type submitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Dedup  bool   `json:"deduplicated,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	job, dedup, err := s.Submit(spec)
	if err != nil {
		var serr *SubmitError
		if errors.As(err, &serr) {
			if serr.RetryAfter > 0 {
				w.Header().Set("Retry-After", fmt.Sprint(serr.RetryAfter))
			}
			writeJSON(w, serr.Status, map[string]string{"error": serr.Msg})
			return
		}
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	status := http.StatusAccepted
	if dedup {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{ID: job.ID, Status: job.Status(), Dedup: dedup})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	sort.SliceStable(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	switch job.Status() {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(job.Result())
	case StateFailed, StateParked:
		writeJSON(w, http.StatusConflict, job.View())
	default:
		writeJSON(w, http.StatusAccepted, job.View())
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	s.stats.WriteOpenMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleCorruptCache(w http.ResponseWriter, r *http.Request) {
	n := s.cache.TamperAll()
	writeJSON(w, http.StatusOK, map[string]int{"tampered": n})
}
