package sim

// RNG is a small deterministic xorshift64* generator used to synthesize
// workload data (array contents, address offsets). It exists so the simulator
// never depends on math/rand's global state and so two runs with the same
// seed are bit-identical.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed; a zero seed is replaced with a
// fixed non-zero constant because xorshift has an all-zeros fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float32 returns a value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
