package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
)

// This file implements lockstep multi-run batching: one goroutine stepping N
// independent engines through a fused loop in bounded time slices, so a
// sweep's worth of configurations shares the instruction cache and branch
// predictor state instead of thrashing them one run at a time. The batch
// layers under run-parallelism (-j): each worker owns one batch.
//
// Determinism is structural. Each task's engine advances only inside its own
// RunSlice calls, and RunSlice is RunUntil's resumable core: the same cycles
// tick in the same order no matter where slice boundaries fall, and a skip
// window split across slices replays its accounting chunk-linearly (every
// per-cycle effect scales by the chunk length, so chunks sum to the unsplit
// window). Batched results are therefore bit-identical to running every task
// sequentially — the differential tests in the experiments package enforce
// this across all four architectures with faults and skip-ahead active.

// Task is one independent simulation a Batch steps in lockstep. A task is a
// sequence of segments — (done predicate, cycle budget) pairs the batch runs
// through Engine.RunSlice — separated by whatever inter-segment work the task
// performs inside Begin (collecting results, restoring a checkpoint, swapping
// a fault schedule).
type Task interface {
	// Engine returns the engine the batch steps. It is first called after
	// the first Begin, so a task may construct its system lazily there.
	Engine() *Engine
	// Label names the task for pprof attribution and diagnostics.
	Label() string
	// Begin starts the next segment. It is called once at admission with
	// prev == nil, then again each time a segment finishes, with that
	// segment's terminal engine error — nil when the done predicate was
	// met, or the engine's error (*BudgetError, *StallError, ...) when the
	// engine stopped the segment; tasks running sweep points usually fold
	// those into DNF results rather than failing.
	//
	// Begin returns the next segment's done predicate and cycle budget, or
	// done == nil to retire the task from the batch. A non-nil error aborts
	// the entire batch.
	Begin(prev error) (done func() bool, maxCycles uint64, err error)
}

// DefaultQuantum is the slice length Batch.Run uses when given 0: long
// enough that per-slice bookkeeping (label swaps, loop rotation) vanishes
// against thousands of ticks, short enough that a handful of runs still
// interleave through the caches many times per simulated millisecond.
const DefaultQuantum = 4096

// Batch steps admitted tasks round-robin in slices of a fixed cycle quantum.
// Hot per-task state lives in parallel arrays (structure-of-arrays): the
// scheduling loop touches contiguous cursors, not N scattered object graphs.
// Tasks retire in place via copy-down compaction, preserving admission order
// for the survivors.
type Batch struct {
	id     string
	parent context.Context

	// Structure-of-arrays per-task hot state, indexed together.
	tasks   []Task
	engines []*Engine
	dones   []func() bool
	starts  []uint64          // segment start cycle (RunSlice's budget origin)
	limits  []uint64          // segment cycle budget
	ctxs    []context.Context // precomputed pprof label contexts

	cycles uint64 // aggregate cycles stepped across all tasks
}

// NewBatch creates an empty batch. ctx carries the caller's pprof labels
// (e.g. the -j worker's); every task's label set is layered on top of it and
// the caller's labels are restored when Run returns.
func NewBatch(ctx context.Context, id string) *Batch {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Batch{id: id, parent: ctx}
}

// Add admits a task: its first segment starts via Begin(nil). A task that
// immediately retires (done == nil) is not admitted; its Begin side effects
// stand.
func (b *Batch) Add(t Task) error {
	done, limit, err := t.Begin(nil)
	if err != nil {
		return fmt.Errorf("sim: batch %s: admit %s: %w", b.id, t.Label(), err)
	}
	if done == nil {
		return nil
	}
	eng := t.Engine()
	b.tasks = append(b.tasks, t)
	b.engines = append(b.engines, eng)
	b.dones = append(b.dones, done)
	b.starts = append(b.starts, eng.cycle)
	b.limits = append(b.limits, limit)
	b.ctxs = append(b.ctxs, pprof.WithLabels(b.parent,
		pprof.Labels("batch", b.id, "batch_task", t.Label())))
	return nil
}

// Len reports the number of admitted, unretired tasks.
func (b *Batch) Len() int { return len(b.tasks) }

// Cycles reports the aggregate simulated cycles stepped so far, summed over
// every task — the numerator of the batch's sim-cycles/s throughput.
func (b *Batch) Cycles() uint64 { return b.cycles }

// Run steps every task round-robin, quantum cycles per turn (0 selects
// DefaultQuantum), until all tasks retire. A Begin error aborts the batch
// immediately with that error; engine errors are the task's to interpret
// (see Task.Begin). On return the caller's pprof labels are restored.
func (b *Batch) Run(quantum uint64) error {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	defer pprof.SetGoroutineLabels(b.parent)
	for len(b.tasks) > 0 {
		w := 0 // compaction write cursor: surviving tasks slide down in order
		for i := range b.tasks {
			pprof.SetGoroutineLabels(b.ctxs[i])
			retired, err := b.turn(i, quantum)
			if err != nil {
				return err
			}
			if retired {
				continue
			}
			if w != i {
				b.tasks[w], b.engines[w], b.dones[w] = b.tasks[i], b.engines[i], b.dones[i]
				b.starts[w], b.limits[w], b.ctxs[w] = b.starts[i], b.limits[i], b.ctxs[i]
			}
			w++
		}
		for i := w; i < len(b.tasks); i++ {
			b.tasks[i], b.engines[i], b.dones[i], b.ctxs[i] = nil, nil, nil, nil
		}
		b.tasks, b.engines, b.dones = b.tasks[:w], b.engines[:w], b.dones[:w]
		b.starts, b.limits, b.ctxs = b.starts[:w], b.limits[:w], b.ctxs[:w]
	}
	return nil
}

// turn gives task i one quantum. Segments that finish inside the quantum
// roll straight into their successor (Begin) with the remainder of the
// quantum, so short segments — a sweep point retiring early, a warm-up
// ending — don't stall the task for a whole round.
func (b *Batch) turn(i int, quantum uint64) (retired bool, err error) {
	eng := b.engines[i]
	remaining := quantum
	for {
		c0 := eng.cycle
		finished, serr := eng.RunSlice(b.dones[i], b.starts[i], b.limits[i], c0+remaining)
		adv := eng.cycle - c0
		b.cycles += adv
		remaining -= adv
		if !finished {
			return false, nil // quantum expired mid-segment
		}
		done, limit, berr := b.tasks[i].Begin(serr)
		if berr != nil {
			return false, fmt.Errorf("sim: batch %s: %s: %w", b.id, b.tasks[i].Label(), berr)
		}
		if done == nil {
			return true, nil
		}
		// Begin may have rewound the engine (checkpoint fork): the new
		// segment's budget starts at the restored cycle.
		b.dones[i], b.starts[i], b.limits[i] = done, eng.cycle, limit
		if remaining == 0 {
			return false, nil
		}
	}
}
