package sim

import (
	"errors"
	"strings"
	"testing"
)

// livelock is the synthetic never-retiring component of the acceptance
// criterion: it ticks forever without its progress counter ever moving.
type livelock struct{ progress uint64 }

func (l *livelock) Name() string     { return "livelock-unit" }
func (l *livelock) Tick(uint64)      {}
func (l *livelock) Progress() uint64 { return l.progress }

// worker makes progress every tick until a cutoff cycle, then stalls.
type worker struct {
	name    string
	stallAt uint64
	retired uint64
}

func (w *worker) Name() string { return w.name }
func (w *worker) Tick(now uint64) {
	if now < w.stallAt {
		w.retired++
	}
}
func (w *worker) Progress() uint64 { return w.retired }

func TestWatchdogConvertsLivelockToStallError(t *testing.T) {
	e := NewEngine()
	e.Register(&livelock{})
	e.SetWatchdog(1000)
	n, err := e.RunUntil(func() bool { return false }, 1_000_000)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v after %d cycles", err, n)
	}
	// Detection within threshold + sampling interval (threshold/8).
	if stall.Cycle > 1000+1000/8 {
		t.Errorf("stall detected at cycle %d, want <= %d", stall.Cycle, 1000+1000/8)
	}
	if stall.Window < 1000 {
		t.Errorf("stall window %d, want >= threshold 1000", stall.Window)
	}
	if len(stall.Stalled) != 1 || stall.Stalled[0] != "livelock-unit" {
		t.Errorf("stalled units = %v, want [livelock-unit]", stall.Stalled)
	}
	if !strings.Contains(stall.Error(), "livelock-unit") {
		t.Errorf("error text %q does not name the stalled unit", stall.Error())
	}
}

// TestWatchdogNamesOnlyStalledUnits: with one unit working and one
// livelocked, the engine keeps running — any progress anywhere resets the
// stall clock. Once the worker also stops, the error names both.
func TestWatchdogNamesOnlyStalledUnits(t *testing.T) {
	e := NewEngine()
	e.Register(&worker{name: "busy-core", stallAt: 5000})
	e.Register(&livelock{})
	e.SetWatchdog(1000)
	_, err := e.RunUntil(func() bool { return false }, 1_000_000)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if stall.Cycle < 5000+1000 {
		t.Errorf("stall fired at %d, before the worker stopped making progress", stall.Cycle)
	}
	if len(stall.Stalled) != 2 {
		t.Errorf("stalled units = %v, want both components", stall.Stalled)
	}
	// The livelocked unit stalled for far longer than the worker.
	if stall.Stalled[0] != "busy-core" || stall.Stalled[1] != "livelock-unit" {
		t.Errorf("stalled units = %v, want [busy-core livelock-unit]", stall.Stalled)
	}
}

func TestWatchdogDisarmedByDefault(t *testing.T) {
	e := NewEngine()
	e.Register(&livelock{})
	_, err := e.RunUntil(func() bool { return false }, 10_000)
	var budget *BudgetError
	if !errors.As(err, &budget) {
		t.Fatalf("disarmed watchdog: want *BudgetError, got %v", err)
	}
	if budget.Error() != "sim: cycle budget of 10000 exhausted (started at 0)" {
		t.Errorf("budget error text changed: %q", budget.Error())
	}
}

func TestWatchdogIgnoredWithoutReporters(t *testing.T) {
	e := NewEngine()
	e.Register(&nullComponent{})
	e.SetWatchdog(100)
	_, err := e.RunUntil(func() bool { return false }, 10_000)
	var budget *BudgetError
	if !errors.As(err, &budget) {
		t.Fatalf("no reporters: want *BudgetError, got %v", err)
	}
}

type nullComponent struct{}

func (nullComponent) Name() string { return "null" }
func (nullComponent) Tick(uint64)  {}

// snoozer is quiescent except at sparse wake cycles, where it makes one unit
// of progress. Its wakes are farther apart than the watchdog threshold, so
// only skip-ahead's jump-is-progress rule keeps the watchdog quiet.
type snoozer struct {
	period  uint64
	retired uint64
}

func (s *snoozer) Name() string { return "snoozer" }
func (s *snoozer) Tick(now uint64) {
	if now%s.period == 0 {
		s.retired++
	}
}
func (s *snoozer) Progress() uint64 { return s.retired }
func (s *snoozer) NextWake(now uint64) (uint64, bool) {
	if now%s.period == 0 {
		return 0, false // this tick does work
	}
	return (now/s.period + 1) * s.period, true
}
func (s *snoozer) SkipTicks(from, n uint64) {}

// TestWatchdogSkipAheadCompatible: a component sleeping through windows far
// longer than the stall threshold must not trip the watchdog while skipping,
// and must still complete.
func TestWatchdogSkipAheadCompatible(t *testing.T) {
	e := NewEngine()
	s := &snoozer{period: 10_000}
	e.Register(s)
	e.SetWatchdog(500) // far shorter than the quiescent windows
	_, err := e.RunUntil(func() bool { return s.retired >= 5 }, 1_000_000)
	if err != nil {
		t.Fatalf("skip-ahead run tripped the watchdog: %v", err)
	}
	if e.Skips() == 0 {
		t.Fatal("test did not exercise skip-ahead")
	}
}

// TestWatchdogLegacyTickStall: same idle system with skip-ahead disabled
// (the fault-injection configuration) does trip the watchdog if the idle
// window is genuinely progress-free beyond the threshold — unless real
// progress arrives in time.
func TestWatchdogThresholdBoundary(t *testing.T) {
	e := NewEngine()
	s := &snoozer{period: 400}
	e.Register(s)
	e.SetSkipAhead(false)
	e.SetWatchdog(500) // threshold exceeds the 400-cycle idle windows
	if _, err := e.RunUntil(func() bool { return s.retired >= 5 }, 1_000_000); err != nil {
		t.Fatalf("progress every 400 cycles must beat a 500-cycle threshold: %v", err)
	}

	e2 := NewEngine()
	s2 := &snoozer{period: 4000}
	e2.Register(s2)
	e2.SetSkipAhead(false)
	e2.SetWatchdog(500)
	_, err := e2.RunUntil(func() bool { return s2.retired >= 5 }, 1_000_000)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("4000-cycle gaps against a 500-cycle threshold: want stall, got %v", err)
	}
}
