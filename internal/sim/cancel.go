package sim

import "fmt"

// CanceledError reports that RunUntil stopped because the installed interrupt
// channel (SetInterrupt) became ready — a cooperative cancellation, not a
// model failure. The simulation state is left exactly as of Cycle: every
// component has seen a whole number of ticks, so the run can be diagnosed,
// checkpointed or resumed.
type CanceledError struct {
	// Cycle is the cycle at which the cancellation was observed.
	Cycle uint64
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled at cycle %d", e.Cycle)
}

// interruptPollMask spaces the cancellation polls: the interrupt channel is
// checked once every interruptPollMask+1 loop iterations of RunUntil. Polls
// are host-side only — a non-blocking channel read touches no simulation
// state — so a run with an armed-but-silent interrupt stays bit-identical to
// one without (enforced by TestRunUntilInterruptBitIdentical). The mask keeps
// the hot loop's overhead to a counter increment and a predictable branch.
const interruptPollMask = 1023

// SetInterrupt installs a cooperative cancellation signal: when done becomes
// ready (usually a context's Done channel), RunUntil returns a
// *CanceledError at the next poll point instead of ticking on. nil disarms.
// Cancellation is cooperative and cycle-aligned — the engine never stops a
// component mid-tick — and polling is side-effect-free, so an interrupt that
// never fires leaves results bit-identical to a run without one.
func (e *Engine) SetInterrupt(done <-chan struct{}) { e.interrupt = done }

// pollInterrupt checks the interrupt channel every interruptPollMask+1 calls.
// Reported true means the channel is ready and the run should stop.
func (e *Engine) pollInterrupt() bool {
	e.pollCtr++
	if e.pollCtr&interruptPollMask != 0 {
		return false
	}
	select {
	case <-e.interrupt:
		return true
	default:
		return false
	}
}
