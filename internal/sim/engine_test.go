package sim

import (
	"strings"
	"testing"
)

// sleeperStub is a Component+Sleeper with a scripted wake function. It
// records real ticks and bulk-skips separately so tests can assert exactly
// which cycles were elided.
type sleeperStub struct {
	name    string
	wake    func(now uint64) (uint64, bool)
	ticks   []uint64
	skips   [][2]uint64 // (from, n)
	skipped uint64
}

func (s *sleeperStub) Name() string      { return s.name }
func (s *sleeperStub) Tick(cycle uint64) { s.ticks = append(s.ticks, cycle) }
func (s *sleeperStub) NextWake(now uint64) (uint64, bool) {
	return s.wake(now)
}
func (s *sleeperStub) SkipTicks(from, n uint64) {
	s.skips = append(s.skips, [2]uint64{from, n})
	s.skipped += n
}

func TestSkipAheadJumpsToWake(t *testing.T) {
	e := NewEngine()
	s := &sleeperStub{name: "s", wake: func(now uint64) (uint64, bool) {
		if now < 40 {
			return 40, true
		}
		return 0, false // tick for real from 40 on
	}}
	e.Register(s)
	n, err := e.RunUntil(func() bool { return e.Cycle() >= 42 }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 42 || e.Cycle() != 42 {
		t.Fatalf("ran %d to cycle %d, want 42", n, e.Cycle())
	}
	if len(s.skips) != 1 || s.skips[0] != [2]uint64{0, 40} {
		t.Fatalf("skips = %v, want one (0,40) jump", s.skips)
	}
	if len(s.ticks) != 2 || s.ticks[0] != 40 || s.ticks[1] != 41 {
		t.Fatalf("real ticks = %v, want [40 41]", s.ticks)
	}
	if e.Skips() != 1 || e.SkippedCycles() != 40 {
		t.Fatalf("engine counters: skips=%d skipped=%d", e.Skips(), e.SkippedCycles())
	}
}

func TestSkipAheadWakeInPastDegradesToTicking(t *testing.T) {
	e := NewEngine()
	// A buggy sleeper that keeps declaring a wake cycle in the past must
	// not stall the clock: the engine falls back to real ticks.
	s := &sleeperStub{name: "past", wake: func(now uint64) (uint64, bool) {
		if now == 0 {
			return 5, true
		}
		return 3, true // in the past once now >= 5
	}}
	e.Register(s)
	n, err := e.RunUntil(func() bool { return e.Cycle() >= 10 }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || e.Cycle() != 10 {
		t.Fatalf("ran %d to cycle %d, want 10", n, e.Cycle())
	}
	if s.skipped != 5 || len(s.ticks) != 5 {
		t.Fatalf("skipped %d, ticked %v; want 5 skipped then real ticks 5..9", s.skipped, s.ticks)
	}
}

func TestSkipAheadWakeExactlyAtDone(t *testing.T) {
	e := NewEngine()
	s := &sleeperStub{name: "s", wake: func(now uint64) (uint64, bool) { return 42, true }}
	e.Register(s)
	n, err := e.RunUntil(func() bool { return e.Cycle() >= 42 }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 42 || e.Cycle() != 42 {
		t.Fatalf("ran %d to cycle %d, want exactly 42", n, e.Cycle())
	}
	if len(s.ticks) != 0 {
		t.Fatalf("ticked at %v, want pure skip", s.ticks)
	}
}

func TestSkipAheadQuiescentForeverHitsBudget(t *testing.T) {
	e := NewEngine()
	s := &sleeperStub{name: "dead", wake: func(now uint64) (uint64, bool) { return NeverWake, true }}
	e.Register(s)
	n, err := e.RunUntil(func() bool { return false }, 100)
	if err == nil {
		t.Fatal("want budget-exhaustion error")
	}
	if !strings.Contains(err.Error(), "cycle budget") {
		t.Fatalf("err = %v, want cycle-budget deadlock error", err)
	}
	// The deadlock must surface at exactly the cycle the legacy path
	// reports (maxCycles elapsed), not spin and not overshoot.
	if n != 100 || e.Cycle() != 100 {
		t.Fatalf("ran %d to cycle %d, want 100", n, e.Cycle())
	}
	if s.skipped != 100 || len(s.ticks) != 0 {
		t.Fatalf("skipped=%d ticks=%v, want the whole budget skipped", s.skipped, s.ticks)
	}
}

func TestSkipAheadRequiresEverySleeper(t *testing.T) {
	e := NewEngine()
	s := &sleeperStub{name: "s", wake: func(now uint64) (uint64, bool) { return NeverWake, true }}
	plain := &countingComponent{name: "plain"}
	e.Register(s)
	e.Register(plain) // no Sleeper capability: it may act on any cycle
	if _, err := e.RunUntil(func() bool { return e.Cycle() >= 7 }, 1000); err != nil {
		t.Fatal(err)
	}
	if s.skipped != 0 || len(plain.ticks) != 7 {
		t.Fatalf("skipped=%d plainTicks=%d, want 0 skips and 7 real ticks", s.skipped, len(plain.ticks))
	}
}

func TestSetSkipAheadOffForcesLegacy(t *testing.T) {
	e := NewEngine()
	if !e.SkipAhead() {
		t.Fatal("skip-ahead should default on")
	}
	e.SetSkipAhead(false)
	s := &sleeperStub{name: "s", wake: func(now uint64) (uint64, bool) { return NeverWake, true }}
	e.Register(s)
	if _, err := e.RunUntil(func() bool { return e.Cycle() >= 25 }, 1000); err != nil {
		t.Fatal(err)
	}
	if s.skipped != 0 || len(s.ticks) != 25 {
		t.Fatalf("skipped=%d ticks=%d, want pure legacy ticking", s.skipped, len(s.ticks))
	}
}

func TestTimelineRecordRunMatchesRecord(t *testing.T) {
	a, b := NewTimeline(10), NewTimeline(10)
	for c := uint64(0); c < 37; c++ {
		a.Record(c, 0)
	}
	b.RecordRun(0, 5, 0)
	b.RecordRun(5, 17, 0) // crosses two bucket boundaries
	b.RecordRun(22, 15, 0)
	ap, bp := a.Points(), b.Points()
	if len(ap) != len(bp) {
		t.Fatalf("lengths %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("bucket %d: %v vs %v", i, ap[i], bp[i])
		}
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			t.Fatalf("bucket %d count: %d vs %d", i, a.counts[i], b.counts[i])
		}
	}
}
