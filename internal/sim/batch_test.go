package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// tickCounter is a trivial component whose only state is how many ticks it
// received, with an optional quiescent stretch so batch tests cover split
// skip windows.
type tickCounter struct {
	ticks   uint64
	skipped uint64
	// sleepFrom/sleepTo declare one quiescent window (0,0 = never sleeps).
	sleepFrom, sleepTo uint64
}

func (c *tickCounter) Name() string      { return "ctr" }
func (c *tickCounter) Tick(cycle uint64) { c.ticks++ }
func (c *tickCounter) NextWake(now uint64) (uint64, bool) {
	if now >= c.sleepFrom && now < c.sleepTo {
		return c.sleepTo, true
	}
	return 0, false
}
func (c *tickCounter) SkipTicks(from, n uint64) { c.skipped += n }

// segTask runs a scripted sequence of segments on one engine: each segment
// advances the clock to an absolute target cycle. It records the terminal
// error of every finished segment.
type segTask struct {
	label    string
	eng      *Engine
	ctr      *tickCounter
	targets  []uint64
	budgets  []uint64 // parallel to targets (0 = generous default)
	next     int
	prevs    []error
	begun    int
	beginErr error // returned by Begin once next == failAt
	failAt   int
}

func newSegTask(label string, targets ...uint64) *segTask {
	t := &segTask{label: label, eng: NewEngine(), ctr: &tickCounter{}, targets: targets, failAt: -1}
	t.eng.Register(t.ctr)
	return t
}

func (t *segTask) Engine() *Engine { return t.eng }
func (t *segTask) Label() string   { return t.label }
func (t *segTask) Begin(prev error) (func() bool, uint64, error) {
	t.begun++
	if t.begun > 1 {
		t.prevs = append(t.prevs, prev)
	}
	if t.next == t.failAt && t.beginErr != nil {
		return nil, 0, t.beginErr
	}
	if t.next >= len(t.targets) {
		return nil, 0, nil
	}
	target := t.targets[t.next]
	budget := uint64(1_000_000)
	if t.budgets != nil && t.budgets[t.next] != 0 {
		budget = t.budgets[t.next]
	}
	t.next++
	return func() bool { return t.eng.Cycle() >= target }, budget, nil
}

func TestBatchLockstepMatchesSequential(t *testing.T) {
	// The same scripted tasks run once sequentially (plain RunUntil per
	// segment) and once batched with a quantum far smaller than the
	// segments, so every task is sliced many times.
	mk := func() []*segTask {
		a := newSegTask("a", 1000, 2500, 9000)
		a.ctr.sleepFrom, a.ctr.sleepTo = 3000, 8000 // skip window split by slicing
		b := newSegTask("b", 400)
		c := newSegTask("c", 7000, 7001)
		return []*segTask{a, b, c}
	}

	seq := mk()
	for _, task := range seq {
		done, budget, err := task.Begin(nil)
		for done != nil {
			if err != nil {
				t.Fatal(err)
			}
			_, serr := task.eng.RunUntil(done, budget)
			done, budget, err = task.Begin(serr)
		}
	}

	bat := mk()
	batch := NewBatch(context.Background(), "t")
	for _, task := range bat {
		if err := batch.Add(task); err != nil {
			t.Fatal(err)
		}
	}
	if batch.Len() != 3 {
		t.Fatalf("Len = %d, want 3", batch.Len())
	}
	if err := batch.Run(128); err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 0 {
		t.Fatalf("Len after Run = %d, want 0", batch.Len())
	}

	var want uint64
	for i := range seq {
		s, b := seq[i], bat[i]
		if s.eng.Cycle() != b.eng.Cycle() {
			t.Fatalf("task %s: batched cycle %d != sequential %d", s.label, b.eng.Cycle(), s.eng.Cycle())
		}
		if s.ctr.ticks != b.ctr.ticks || s.ctr.skipped != b.ctr.skipped {
			t.Fatalf("task %s: batched ticks/skipped %d/%d != sequential %d/%d",
				s.label, b.ctr.ticks, b.ctr.skipped, s.ctr.ticks, s.ctr.skipped)
		}
		if len(s.prevs) != len(b.prevs) {
			t.Fatalf("task %s: %d batched segment results != %d sequential", s.label, len(b.prevs), len(s.prevs))
		}
		want += s.eng.Cycle()
	}
	if batch.Cycles() != want {
		t.Fatalf("aggregate Cycles = %d, want %d", batch.Cycles(), want)
	}
}

func TestBatchSegmentErrorFlowsToBegin(t *testing.T) {
	// A segment that exhausts its budget hands the *BudgetError to Begin,
	// which may roll into another segment rather than abort the batch.
	task := newSegTask("budget", 10_000, 50)
	task.budgets = []uint64{100, 0} // first segment can't reach 10k in 100 cycles
	batch := NewBatch(nil, "t")
	if err := batch.Add(task); err != nil {
		t.Fatal(err)
	}
	if err := batch.Run(64); err != nil {
		t.Fatal(err)
	}
	if len(task.prevs) != 2 {
		t.Fatalf("%d segment results, want 2", len(task.prevs))
	}
	var berr *BudgetError
	if !errors.As(task.prevs[0], &berr) {
		t.Fatalf("first segment error = %v, want *BudgetError", task.prevs[0])
	}
	if task.prevs[1] != nil {
		t.Fatalf("second segment error = %v, want nil", task.prevs[1])
	}
	// The second segment's target (50) is below the first segment's end
	// (100): its done predicate held immediately, without rewinding.
	if got := task.eng.Cycle(); got != 100 {
		t.Fatalf("final cycle = %d, want 100", got)
	}
}

func TestBatchBeginErrorAborts(t *testing.T) {
	ok := newSegTask("ok", 5000)
	bad := newSegTask("bad", 200, 9000)
	bad.failAt, bad.beginErr = 1, fmt.Errorf("boom")
	batch := NewBatch(nil, "t")
	for _, task := range []*segTask{ok, bad} {
		if err := batch.Add(task); err != nil {
			t.Fatal(err)
		}
	}
	err := batch.Run(100)
	if err == nil || !errors.Is(err, bad.beginErr) {
		t.Fatalf("Run error = %v, want wrapped boom", err)
	}
	if got := err.Error(); got != "sim: batch t: bad: boom" {
		t.Fatalf("error text = %q", got)
	}
}

func TestBatchImmediateRetireNotAdmitted(t *testing.T) {
	done := newSegTask("empty") // no targets: Begin(nil) retires at once
	batch := NewBatch(nil, "t")
	if err := batch.Add(done); err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 0 {
		t.Fatalf("Len = %d, want 0", batch.Len())
	}
	if err := batch.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCompactionPreservesOrder(t *testing.T) {
	// Tasks with staggered lengths retire at different rounds; survivors
	// must keep stepping in admission order (observable through the strict
	// round-robin: with quantum q, after every full round the still-live
	// engines are within q cycles of each other).
	short := newSegTask("short", 150)
	long := newSegTask("long", 10_000)
	mid := newSegTask("mid", 5_000)
	batch := NewBatch(nil, "t")
	for _, task := range []*segTask{short, long, mid} {
		if err := batch.Add(task); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.Run(1000); err != nil {
		t.Fatal(err)
	}
	for _, task := range []*segTask{short, long, mid} {
		if got, want := task.eng.Cycle(), task.targets[0]; got != want {
			t.Fatalf("%s: cycle %d, want %d", task.label, got, want)
		}
	}
	if batch.Cycles() != 150+10_000+5_000 {
		t.Fatalf("aggregate = %d", batch.Cycles())
	}
}
