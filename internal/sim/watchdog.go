package sim

import (
	"fmt"
	"strings"
)

// ProgressReporter is the opt-in capability through which a Component exposes
// a monotone progress counter to the engine's forward-progress watchdog: any
// counter that moves when the component does real work (instructions retired,
// operations issued, tasks switched). The watchdog never interprets the
// value — only whether it changed.
type ProgressReporter interface {
	Progress() uint64
}

// StallError reports a forward-progress stall: no registered
// ProgressReporter's counter moved for a full watchdog threshold. In this
// codebase that always indicates a deadlock or livelock — a hardware model
// waiting on an event that can no longer happen, or a generated program
// spinning on a register that will never change.
type StallError struct {
	// Cycle is the cycle at which the stall was detected.
	Cycle uint64
	// Window is the length of the progress-free window, in cycles.
	Window uint64
	// Stalled names the components whose progress counters did not move
	// over the window (a quiesced-but-healthy component appears here too;
	// the diagnostic dump distinguishes them).
	Stalled []string
}

func (e *StallError) Error() string {
	return fmt.Sprintf("sim: no forward progress for %d cycles (detected at cycle %d; stalled: %s)",
		e.Window, e.Cycle, strings.Join(e.Stalled, ", "))
}

// BudgetError reports cycle-budget exhaustion from RunUntil. The message is
// byte-identical to the historical untyped error so log scrapers keep
// working; the type exists so callers can attach a diagnostic dump.
type BudgetError struct {
	Budget uint64
	Start  uint64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: cycle budget of %d exhausted (started at %d)", e.Budget, e.Start)
}

// SetWatchdog arms the forward-progress watchdog: if no registered
// ProgressReporter's counter moves for threshold cycles, RunUntil returns a
// *StallError naming the stalled components instead of ticking on until the
// cycle budget runs out. Zero disarms. The watchdog is skip-ahead
// compatible — skip jumps clamp to the sampling schedule (see RunSlice), so
// a skipping run examines the same progress counters at the same cycles a
// legacy run would and detects a genuine dead stall at the identical cycle;
// quiescent windows with a declared finite wake are healthy sleeps and never
// fire, however long.
func (e *Engine) SetWatchdog(threshold uint64) {
	e.wdThreshold = threshold
	e.wd = nil
	e.wdQuietUntil = 0
}

// Watchdog returns the armed stall threshold (0 = disarmed).
func (e *Engine) Watchdog() uint64 { return e.wdThreshold }

// watchdog is the per-RunUntil stall detector. Scanning every reporter each
// cycle would double the cost of idle ticks, so it samples at threshold/8
// intervals: a stall is detected within ~9/8 of the threshold, and the
// scans are read-only so sampling cannot perturb determinism.
type watchdog struct {
	threshold  uint64
	interval   uint64
	nextCheck  uint64
	reporters  []ProgressReporter
	names      []string
	last       []uint64
	lastChange []uint64
}

// newWatchdog snapshots the engine's reporters at cycle now. Nil when no
// component reports progress — with nothing to watch, firing would be noise.
func (e *Engine) newWatchdog(now uint64) *watchdog {
	w := &watchdog{threshold: e.wdThreshold}
	for i, c := range e.components {
		r, ok := c.(ProgressReporter)
		if !ok {
			continue
		}
		w.reporters = append(w.reporters, r)
		w.names = append(w.names, e.components[i].Name())
		w.last = append(w.last, r.Progress())
		w.lastChange = append(w.lastChange, now)
	}
	if len(w.reporters) == 0 {
		return nil
	}
	w.interval = w.threshold / 8
	if w.interval == 0 {
		w.interval = 1
	}
	w.nextCheck = now + w.interval
	return w
}

// check samples the reporters at cycle now and returns a *StallError if none
// has moved for the full threshold.
func (w *watchdog) check(now uint64) *StallError {
	w.nextCheck = now + w.interval
	newest := uint64(0)
	for i, r := range w.reporters {
		if v := r.Progress(); v != w.last[i] {
			w.last[i] = v
			w.lastChange[i] = now
		}
		if w.lastChange[i] > newest {
			newest = w.lastChange[i]
		}
	}
	if now-newest < w.threshold {
		return nil
	}
	err := &StallError{Cycle: now, Window: now - newest}
	for i, name := range w.names {
		if now-w.lastChange[i] >= w.threshold {
			err.Stalled = append(err.Stalled, name)
		}
	}
	return err
}
