package sim

// Timeline accumulates a per-cycle quantity into fixed-width buckets and
// reports the bucket averages. The paper's Figure 2 and Figure 14(b) plot
// exactly this: "each point represents a set of 1000 consecutive cycles" with
// the y-axis being the average number of SIMD lanes used per cycle.
type Timeline struct {
	bucket  uint64 // bucket width in cycles
	sums    []float64
	counts  []uint64
	current uint64 // index of the bucket being filled
	// Current-bucket cursor: curLo is the first cycle of the bucket being
	// filled and curSum/curCnt point at its cells, so the per-core-per-cycle
	// Record fast path is one compare and two pointer bumps — no divide, no
	// bounds checks. curLo holds invalidWindow whenever the cursor does not
	// point into the live slices (fresh timeline, pre-restore).
	curLo  uint64
	curSum *float64
	curCnt *uint64
}

// invalidWindow is a curLo sentinel no reachable cycle can fall inside:
// cycle-invalidWindow wraps to at least 2^62 for any cycle below 2^63, far
// beyond any bucket width.
const invalidWindow = uint64(1) << 63

// NewTimeline returns a timeline with the given bucket width in cycles.
// A width of zero defaults to 1000, the paper's plotting granularity.
func NewTimeline(bucketCycles uint64) *Timeline {
	if bucketCycles == 0 {
		bucketCycles = 1000
	}
	return &Timeline{bucket: bucketCycles, curLo: invalidWindow}
}

// setCurrent moves the current-bucket cursor; idx must index the live
// slices. Growth and restore re-call it because append may move the backing
// arrays out from under the cached cell pointers.
func (t *Timeline) setCurrent(idx uint64) {
	t.current = idx
	t.curLo = idx * t.bucket
	t.curSum = &t.sums[idx]
	t.curCnt = &t.counts[idx]
}

// Record adds value v for the given cycle. The body is split so the
// common case — another sample into the bucket being filled — inlines into
// the per-core-per-cycle call sites as a compare and two adds; cycle-t.curLo
// wraps past bucket for cycles before the window, so one compare covers both
// bounds.
func (t *Timeline) Record(cycle uint64, v float64) {
	if cycle-t.curLo < t.bucket {
		*t.curSum += v
		*t.curCnt++
		return
	}
	t.recordSlow(cycle, v)
}

// recordSlow opens (growing if needed) the bucket for cycle and records v.
// Kept out of line so Record's fast path fits the inlining budget.
//
//go:noinline
func (t *Timeline) recordSlow(cycle uint64, v float64) {
	idx := cycle / t.bucket
	for uint64(len(t.sums)) <= idx {
		t.sums = append(t.sums, 0)
		t.counts = append(t.counts, 0)
	}
	t.sums[idx] += v
	t.counts[idx]++
	t.setCurrent(idx)
}

// RecordRun adds value v for each of the n consecutive cycles starting at
// from — equivalent to n Record calls, split across bucket boundaries. The
// per-bucket sum gains v*span rather than span separate additions, so the
// result is bit-identical to individual Record calls only when that product
// is exact; the skip-ahead engine only elides cycles whose sample is 0.0,
// for which both forms are exact no-ops on the sum.
func (t *Timeline) RecordRun(from, n uint64, v float64) {
	for n > 0 {
		idx := from / t.bucket
		for uint64(len(t.sums)) <= idx {
			t.sums = append(t.sums, 0)
			t.counts = append(t.counts, 0)
		}
		span := (idx+1)*t.bucket - from
		if span > n {
			span = n
		}
		t.sums[idx] += v * float64(span)
		t.counts[idx] += span
		t.setCurrent(idx)
		from += span
		n -= span
	}
}

// BucketCycles returns the bucket width.
func (t *Timeline) BucketCycles() uint64 { return t.bucket }

// Points returns the average value of each bucket in time order. Buckets that
// received no samples report zero.
func (t *Timeline) Points() []float64 {
	out := make([]float64, len(t.sums))
	for i := range t.sums {
		if t.counts[i] > 0 {
			out[i] = t.sums[i] / float64(t.counts[i])
		}
	}
	return out
}

// Len returns the number of buckets with at least one sample slot allocated.
func (t *Timeline) Len() int { return len(t.sums) }

// SumTimelines merges timelines that sampled the same cycles into one:
// bucket sums add, bucket sample counts take the maximum. Each input is
// expected to have recorded every cycle once (as the per-cluster co-processor
// instances do), so the counts agree wherever every input covered the bucket
// and the merged averages are the per-cycle sums. Inputs must share a bucket
// width.
func SumTimelines(ts []*Timeline) *Timeline {
	if len(ts) == 0 {
		return NewTimeline(0)
	}
	out := NewTimeline(ts[0].bucket)
	for _, t := range ts {
		for uint64(len(out.sums)) < uint64(len(t.sums)) {
			out.sums = append(out.sums, 0)
			out.counts = append(out.counts, 0)
		}
		for i := range t.sums {
			out.sums[i] += t.sums[i]
			if t.counts[i] > out.counts[i] {
				out.counts[i] = t.counts[i]
			}
		}
		if t.current > out.current && t.current < uint64(len(out.sums)) {
			out.setCurrent(t.current)
		}
	}
	return out
}

// TimelineState is a deep copy of a Timeline's accumulated buckets.
type TimelineState struct {
	sums    []float64
	counts  []uint64
	current uint64
}

// Snapshot captures the timeline for checkpoint/restore.
func (t *Timeline) Snapshot() TimelineState {
	return TimelineState{
		sums:    append([]float64(nil), t.sums...),
		counts:  append([]uint64(nil), t.counts...),
		current: t.current,
	}
}

// Restore rewinds the timeline to a Snapshot (bucket width is configuration,
// not state, and is unchanged).
func (t *Timeline) Restore(st TimelineState) {
	t.sums = append(t.sums[:0], st.sums...)
	t.counts = append(t.counts[:0], st.counts...)
	if st.current < uint64(len(t.sums)) {
		t.setCurrent(st.current)
	} else {
		t.current = st.current
		t.curLo = invalidWindow
	}
}
