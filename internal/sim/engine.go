// Package sim provides the deterministic cycle-level simulation kernel used by
// every hardware model in this repository: a clock that ticks a fixed,
// registration-ordered list of components, a counter registry for statistics,
// and a timeline sampler for the per-1000-cycle plots of the paper.
//
// Determinism is a design requirement (DESIGN.md §3): there is no wall-clock
// input, no map iteration on the tick path, and component order is the
// registration order, so a given configuration and seed always produce the
// same cycle counts.
package sim

import "fmt"

// Component is a piece of hardware that does work once per cycle.
//
// Tick is called with the current cycle number. Components are ticked in
// registration order; a component that needs a specific phase relationship
// with another (e.g. consume-before-produce) must be registered accordingly.
type Component interface {
	// Name identifies the component in error messages and traces.
	Name() string
	// Tick advances the component by one cycle.
	Tick(cycle uint64)
}

// Engine drives a set of Components with a shared clock.
type Engine struct {
	components []Component
	cycle      uint64
	stats      *Stats
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{stats: NewStats()}
}

// Register appends c to the tick order. Registration order is tick order.
func (e *Engine) Register(c Component) {
	e.components = append(e.components, c)
}

// Cycle returns the number of cycles executed so far.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Stats returns the engine-wide counter registry.
func (e *Engine) Stats() *Stats { return e.stats }

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for _, c := range e.components {
		c.Tick(e.cycle)
	}
	e.cycle++
}

// RunUntil steps the engine until done() reports true or maxCycles elapse.
// It returns the number of cycles executed and an error if the cycle budget
// was exhausted before done() held, which in this codebase always indicates a
// deadlock or livelock bug in a hardware model or generated program.
func (e *Engine) RunUntil(done func() bool, maxCycles uint64) (uint64, error) {
	start := e.cycle
	for !done() {
		if e.cycle-start >= maxCycles {
			return e.cycle - start, fmt.Errorf("sim: cycle budget of %d exhausted (started at %d)", maxCycles, start)
		}
		e.Step()
	}
	return e.cycle - start, nil
}
