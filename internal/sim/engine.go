// Package sim provides the deterministic cycle-level simulation kernel used by
// every hardware model in this repository: a clock that ticks a fixed,
// registration-ordered list of components, a counter registry for statistics,
// and a timeline sampler for the per-1000-cycle plots of the paper.
//
// Determinism is a design requirement (DESIGN.md §3): there is no wall-clock
// input, no map iteration on the tick path, and component order is the
// registration order, so a given configuration and seed always produce the
// same cycle counts.
//
// The engine is a hybrid cycle/event kernel: components tick every cycle by
// default, but a component that also implements Sleeper can declare windows
// of quiescence, and when every registered component is quiescent the clock
// fast-forwards to the earliest declared wake cycle instead of ticking
// through the window (DESIGN.md §3's skip-ahead contract). Skipping is an
// execution strategy, not a model change: SkipTicks replays the elided
// cycles' accounting exactly, so a run with skipping produces bit-identical
// cycle counts, statistics and functional results to the legacy path.
package sim

import (
	"math"
)

// Component is a piece of hardware that does work once per cycle.
//
// Tick is called with the current cycle number. Components are ticked in
// registration order; a component that needs a specific phase relationship
// with another (e.g. consume-before-produce) must be registered accordingly.
type Component interface {
	// Name identifies the component in error messages and traces.
	Name() string
	// Tick advances the component by one cycle.
	Tick(cycle uint64)
}

// NeverWake is the wake cycle of a quiescent component with no self-scheduled
// event: it sleeps until some other component's wake bounds the jump (or the
// cycle budget does).
const NeverWake = math.MaxUint64

// Sleeper is the opt-in capability through which a Component declares
// quiescent windows to the skip-ahead engine.
//
// NextWake(now) returns (wake, true) when every Tick the component would
// receive on [now, wake) is guaranteed to (a) change no simulation state
// other than a fixed, cycle-invariant set of per-cycle accounting effects
// (stall counters, observability signals, timeline samples), and (b) leave
// every time-driven predicate the component exposes to the rest of the
// system unchanged until wake. Returning (_, false) means the next Tick may
// make progress and must run for real. A wake of NeverWake means "until an
// upstream event"; the engine then relies on some other component (or the
// cycle budget) to bound the jump.
//
// SkipTicks(from, n) bulk-applies the accounting of the n elided ticks at
// cycles [from, from+n): exactly what n real Ticks would have done in a
// quiescent window, so that a skipping run stays bit-identical to a ticking
// one. The engine only calls it after NextWake(from) reported quiescence,
// with from+n never past the declared wake.
type Sleeper interface {
	NextWake(now uint64) (wake uint64, quiescent bool)
	SkipTicks(from, n uint64)
}

// Engine drives a set of Components with a shared clock.
type Engine struct {
	components []Component
	// sleepers is parallel to components: the Sleeper view of each
	// component, nil when it does not implement the capability (which
	// disables skipping for the whole engine — one opaque component can
	// make progress at any cycle).
	sleepers []Sleeper
	cycle    uint64
	stats    *Stats

	skip         bool
	skips        uint64
	skippedTicks uint64

	// Adaptive probe backoff. Probing for quiescence costs one NextWake
	// scan per component; during live stretches (every issue burst) that
	// scan buys nothing, and on short windows it can cost as much as the
	// tick it would elide. After a failed probe the engine waits
	// 1+probeBackoff cycles before probing again, doubling the backoff up
	// to maxProbeBackoff and resetting it on every successful skip. This
	// is purely an execution-cost knob: probes are side-effect-free, and a
	// cycle that goes unprobed is simply ticked for real, which is always
	// bit-identical (quiescent or not).
	probeAt      uint64
	probeBackoff uint64

	// interrupt is the cooperative cancellation signal (see cancel.go);
	// nil when disarmed. pollCtr spaces the channel polls — host-side
	// bookkeeping only, never snapshotted.
	interrupt <-chan struct{}
	pollCtr   uint64

	// wdThreshold arms the forward-progress watchdog (see watchdog.go);
	// 0 keeps it disarmed. wd is the engine-owned detector, created lazily
	// on the first armed RunUntil and persistent across calls, so stall
	// detection depends only on model history — a run split into several
	// RunUntil segments (e.g. around a checkpoint) detects a stall at the
	// same cycle an unsplit run does.
	wdThreshold uint64
	wd          *watchdog
	// wdQuietUntil suppresses watchdog firing while the clock is inside a
	// quiescent window with a declared finite wake: the system is healthily
	// asleep until a known event, which is progress in waiting, not a stall.
	// A window with no self-scheduled event (NeverWake) clears it — nothing
	// can ever happen again, and the watchdog must fire exactly where the
	// legacy path would. Execution-strategy state, never snapshotted: any
	// jump re-establishes it from the same declared wake.
	wdQuietUntil uint64
}

// maxProbeBackoff caps the probe interval during live stretches. The cap
// trades skip coverage for probe cost: a window shorter than the current
// interval can slip past unprobed (losing a small skip), while every probe
// during a live stretch is pure overhead. The long quiescent windows that
// dominate skip-ahead's payoff (DRAM-latency stalls of tens to hundreds of
// cycles) are far wider than this cap, so they are always caught.
const maxProbeBackoff = 31

// NewEngine returns an empty engine at cycle 0 with skip-ahead enabled.
func NewEngine() *Engine {
	return &Engine{stats: NewStats(), skip: true}
}

// Register appends c to the tick order. Registration order is tick order.
func (e *Engine) Register(c Component) {
	e.components = append(e.components, c)
	s, _ := c.(Sleeper)
	e.sleepers = append(e.sleepers, s)
}

// SetSkipAhead enables or disables clock fast-forwarding. Disabling forces
// the legacy every-cycle path; results are bit-identical either way (the
// differential tests in internal/arch enforce this), so the switch exists
// for A/B validation and for runs that want per-cycle trace fidelity.
func (e *Engine) SetSkipAhead(on bool) { e.skip = on }

// SkipAhead reports whether fast-forwarding is enabled.
func (e *Engine) SkipAhead() bool { return e.skip }

// Skips returns how many fast-forward jumps the engine has taken.
func (e *Engine) Skips() uint64 { return e.skips }

// SkippedCycles returns how many cycles were fast-forwarded rather than
// ticked. These counters live outside Stats so that the counter registry
// stays bit-identical between skipping and legacy runs.
func (e *Engine) SkippedCycles() uint64 { return e.skippedTicks }

// Cycle returns the number of cycles executed so far.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Stats returns the engine-wide counter registry.
func (e *Engine) Stats() *Stats { return e.stats }

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for _, c := range e.components {
		c.Tick(e.cycle)
	}
	e.cycle++
}

// nextWake returns the earliest declared wake cycle if every registered
// component is quiescent. An engine with no components never skips (time
// passing is then the only observable, and callers poll it with done()).
func (e *Engine) nextWake() (uint64, bool) {
	if len(e.components) == 0 {
		return 0, false
	}
	wake := uint64(NeverWake)
	for _, s := range e.sleepers {
		if s == nil {
			return 0, false
		}
		w, quiescent := s.NextWake(e.cycle)
		if !quiescent {
			return 0, false
		}
		if w < wake {
			wake = w
		}
	}
	return wake, true
}

// skipTo fast-forwards the clock to target, bulk-applying each component's
// elided per-cycle accounting in registration order (the same order real
// ticks would have run, which matters for the observability probe: it must
// see the cycle's signals before charging them).
func (e *Engine) skipTo(target uint64) {
	n := target - e.cycle
	for _, s := range e.sleepers {
		s.SkipTicks(e.cycle, n)
	}
	e.cycle = target
	e.skips++
	e.skippedTicks += n
}

// EngineState is the engine's checkpoint: the clock, the skip-ahead
// bookkeeping and the full counter registry. The component list and watchdog
// threshold are configuration, not state.
type EngineState struct {
	cycle        uint64
	skips        uint64
	skippedTicks uint64
	probeAt      uint64
	probeBackoff uint64
	stats        map[string]uint64
	// Watchdog detector state (wdArmed false when none existed at the
	// snapshot): restoring it keeps stall detection segmentation-invariant.
	wdArmed      bool
	wdLast       []uint64
	wdLastChange []uint64
	wdNextCheck  uint64
}

// Cycle returns the cycle the snapshot was taken at.
func (st EngineState) Cycle() uint64 { return st.cycle }

// Corrupt flips one bit of the snapshot's skip bookkeeping — a minimal
// stand-in for silent in-memory corruption of a stored checkpoint, used by
// the integrity tests and the serve layer's fault-injection hooks. Callers
// hold the only reference paths into a snapshot, so this never races with a
// restore.
func (st *EngineState) Corrupt() { st.skippedTicks ^= 1 }

// Snapshot captures the engine's clock and counters.
func (e *Engine) Snapshot() EngineState {
	st := EngineState{
		cycle:        e.cycle,
		skips:        e.skips,
		skippedTicks: e.skippedTicks,
		probeAt:      e.probeAt,
		probeBackoff: e.probeBackoff,
		stats:        e.stats.Snapshot(),
	}
	if e.wd != nil {
		st.wdArmed = true
		st.wdLast = append([]uint64(nil), e.wd.last...)
		st.wdLastChange = append([]uint64(nil), e.wd.lastChange...)
		st.wdNextCheck = e.wd.nextCheck
	}
	return st
}

// Restore rewinds the engine to a Snapshot. Counter cells handed out by
// Stats.Counter stay valid (they are written in place, see Stats.Restore).
func (e *Engine) Restore(st EngineState) {
	e.cycle = st.cycle
	e.skips = st.skips
	e.skippedTicks = st.skippedTicks
	e.probeAt = st.probeAt
	e.probeBackoff = st.probeBackoff
	e.stats.Restore(st.stats)
	e.wdQuietUntil = 0
	if !st.wdArmed {
		e.wd = nil
		return
	}
	if e.wd == nil {
		e.wd = e.newWatchdog(st.cycle)
	}
	copy(e.wd.last, st.wdLast)
	copy(e.wd.lastChange, st.wdLastChange)
	e.wd.nextCheck = st.wdNextCheck
}

// RunUntil steps the engine until done() reports true or maxCycles elapse.
// It returns the number of cycles executed and an error if the cycle budget
// was exhausted before done() held, which in this codebase always indicates a
// deadlock or livelock bug in a hardware model or generated program.
//
// With skip-ahead enabled, iterations where every component is quiescent
// fast-forward the clock to the earliest wake cycle instead of ticking. The
// jump is clamped to the cycle budget so an all-quiescent-forever system
// still reports budget exhaustion at exactly the cycle the legacy path
// would. A component that (erroneously) declares a wake cycle in the past
// degrades to normal ticking rather than stalling the clock.
func (e *Engine) RunUntil(done func() bool, maxCycles uint64) (uint64, error) {
	start := e.cycle
	_, err := e.RunSlice(done, start, maxCycles, NeverWake)
	return e.cycle - start, err
}

// RunSlice is RunUntil's resumable core: it advances the clock toward done()
// under the run's overall budget (maxCycles counted from start, which may be
// earlier than the current cycle when resuming), but yields once the clock
// reaches sliceEnd. It returns (false, nil) when the slice expired with the
// run still in flight; any other return is terminal — done() held (true, nil)
// or the run failed (budget, stall or cancellation). The batch engine
// time-slices many runs through this: because a skip jump is also clamped to
// sliceEnd, and split skip windows replay their accounting chunk-linearly, a
// sliced run's cycle counts, statistics, attribution and telemetry are
// bit-identical to an unsliced one (only the engine-local skip/jump tallies,
// deliberately outside Stats, can differ).
//
// The forward-progress watchdog samples on its own fixed grid: jumps clamp
// to the next sample cycle instead of leaping it, so a skipping run examines
// the same progress counters at the same cycles a legacy run would and its
// detector state stays bit-identical. A sample taken inside a quiescent
// window with a declared finite wake never fires (the sleep is healthy by
// construction — see wdQuietUntil); once no component has a self-scheduled
// event left, nothing can ever make progress again, and the watchdog fires
// at exactly the cycle the legacy path detects the stall.
func (e *Engine) RunSlice(done func() bool, start, maxCycles, sliceEnd uint64) (bool, error) {
	var wd *watchdog
	if e.wdThreshold > 0 {
		if e.wd == nil {
			e.wd = e.newWatchdog(start)
		}
		wd = e.wd
	}
	for !done() {
		if e.cycle-start >= maxCycles {
			return true, &BudgetError{Budget: maxCycles, Start: start}
		}
		if e.cycle >= sliceEnd {
			return false, nil
		}
		if e.interrupt != nil && e.pollInterrupt() {
			return true, &CanceledError{Cycle: e.cycle}
		}
		if wd != nil && e.cycle >= wd.nextCheck {
			if serr := wd.check(e.cycle); serr != nil && e.cycle >= e.wdQuietUntil {
				return true, serr
			}
		}
		if e.skip && e.probeAt <= e.cycle {
			wake, ok := e.nextWake()
			if ok && wake > e.cycle {
				if wake == NeverWake {
					e.wdQuietUntil = 0
				} else {
					e.wdQuietUntil = wake
				}
				// Every clamp below is strictly above e.cycle: the budget and
				// slice checks guaranteed start+maxCycles > cycle and
				// sliceEnd > cycle, and a just-run check set nextCheck past
				// now — so the jump always moves the clock.
				if limit := start + maxCycles; wake > limit {
					wake = limit
				}
				if wake > sliceEnd {
					wake = sliceEnd
				}
				if wd != nil && wake > wd.nextCheck {
					wake = wd.nextCheck
				}
				e.skipTo(wake)
				e.probeBackoff = 0
				e.probeAt = e.cycle
				continue
			}
			// Live (or a wake declared in the past): back off before the
			// next probe so dense live stretches don't pay a full
			// quiescence scan every cycle.
			e.probeBackoff = 2*e.probeBackoff + 1
			if e.probeBackoff > maxProbeBackoff {
				e.probeBackoff = maxProbeBackoff
			}
			e.probeAt = e.cycle + 1 + e.probeBackoff
		}
		e.Step()
	}
	return true, nil
}
