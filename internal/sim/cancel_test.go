package sim

import (
	"errors"
	"testing"
)

// tickerStub is a plain Component (no Sleeper), so the engine ticks every
// cycle — the worst case for cancellation-poll overhead and the configuration
// the bit-identity assertion cares about.
type tickerStub struct{ ticks uint64 }

func (s *tickerStub) Name() string     { return "ticker" }
func (s *tickerStub) Tick(c uint64)    { s.ticks++ }
func (s *tickerStub) Progress() uint64 { return s.ticks }

func TestRunUntilInterruptCancels(t *testing.T) {
	e := NewEngine()
	e.Register(&tickerStub{})
	done := make(chan struct{})
	close(done)
	e.SetInterrupt(done)
	n, err := e.RunUntil(func() bool { return false }, 1_000_000)
	var cerr *CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if cerr.Cycle != e.Cycle() {
		t.Fatalf("CanceledError.Cycle = %d, engine at %d", cerr.Cycle, e.Cycle())
	}
	// An already-closed channel is seen at the first poll point, well before
	// the budget.
	if n >= 1_000_000 {
		t.Fatalf("ran %d cycles, cancellation never observed", n)
	}
	if n > 2*(interruptPollMask+1) {
		t.Fatalf("ran %d cycles before noticing a pre-closed interrupt (poll spacing %d)", n, interruptPollMask+1)
	}
}

func TestRunUntilInterruptBitIdentical(t *testing.T) {
	// An armed interrupt that never fires must not change anything: same
	// cycle count, same tick count as a run without one.
	run := func(arm bool) (uint64, uint64) {
		e := NewEngine()
		s := &tickerStub{}
		e.Register(s)
		if arm {
			e.SetInterrupt(make(chan struct{}))
		}
		n, err := e.RunUntil(func() bool { return e.Cycle() >= 10_000 }, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return n, s.ticks
	}
	nPlain, tPlain := run(false)
	nArmed, tArmed := run(true)
	if nPlain != nArmed || tPlain != tArmed {
		t.Fatalf("armed-but-silent interrupt changed the run: cycles %d vs %d, ticks %d vs %d",
			nPlain, nArmed, tPlain, tArmed)
	}
}

func TestEngineStateCorruptFlipsState(t *testing.T) {
	e := NewEngine()
	st := e.Snapshot()
	before := st.skippedTicks
	st.Corrupt()
	if st.skippedTicks == before {
		t.Fatal("Corrupt() did not change the snapshot")
	}
}
