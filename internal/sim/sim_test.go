package sim

import (
	"testing"
	"testing/quick"
)

type countingComponent struct {
	name  string
	ticks []uint64
}

func (c *countingComponent) Name() string      { return c.name }
func (c *countingComponent) Tick(cycle uint64) { c.ticks = append(c.ticks, cycle) }

func TestEngineTickOrderIsRegistrationOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	mk := func(name string) Component {
		return componentFunc{name: name, fn: func(uint64) { order = append(order, name) }}
	}
	e.Register(mk("a"))
	e.Register(mk("b"))
	e.Register(mk("c"))
	e.Step()
	e.Step()
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick %d = %q, want %q", i, order[i], want[i])
		}
	}
}

type componentFunc struct {
	name string
	fn   func(uint64)
}

func (c componentFunc) Name() string      { return c.name }
func (c componentFunc) Tick(cycle uint64) { c.fn(cycle) }

func TestEngineCyclesAreSequential(t *testing.T) {
	e := NewEngine()
	c := &countingComponent{name: "seq"}
	e.Register(c)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if e.Cycle() != 10 {
		t.Fatalf("Cycle() = %d, want 10", e.Cycle())
	}
	for i, got := range c.ticks {
		if got != uint64(i) {
			t.Fatalf("tick %d saw cycle %d", i, got)
		}
	}
}

func TestRunUntilStopsAtPredicate(t *testing.T) {
	e := NewEngine()
	n, err := e.RunUntil(func() bool { return e.Cycle() >= 42 }, 1000)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if n != 42 || e.Cycle() != 42 {
		t.Fatalf("ran %d cycles to %d, want 42", n, e.Cycle())
	}
}

func TestRunUntilBudgetExhaustion(t *testing.T) {
	e := NewEngine()
	_, err := e.RunUntil(func() bool { return false }, 100)
	if err == nil {
		t.Fatal("want error on exhausted budget")
	}
	if e.Cycle() != 100 {
		t.Fatalf("Cycle() = %d, want 100", e.Cycle())
	}
}

func TestStatsBasics(t *testing.T) {
	s := NewStats()
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should read zero")
	}
	s.Inc("a")
	s.Add("a", 4)
	s.Set("b", 7)
	if s.Get("a") != 5 || s.Get("b") != 7 {
		t.Fatalf("a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
	snap := s.Snapshot()
	s.Inc("a")
	if snap["a"] != 5 {
		t.Fatal("Snapshot must be a copy")
	}
}

func TestTimelineBuckets(t *testing.T) {
	tl := NewTimeline(10)
	for c := uint64(0); c < 25; c++ {
		tl.Record(c, float64(c/10)) // 0 for first bucket, 1 for second, 2 for third
	}
	pts := tl.Points()
	if len(pts) != 3 {
		t.Fatalf("len(points) = %d, want 3", len(pts))
	}
	for i, want := range []float64{0, 1, 2} {
		if pts[i] != want {
			t.Fatalf("bucket %d = %v, want %v", i, pts[i], want)
		}
	}
}

func TestTimelineDefaultsTo1000(t *testing.T) {
	tl := NewTimeline(0)
	if tl.BucketCycles() != 1000 {
		t.Fatalf("default bucket = %d, want 1000", tl.BucketCycles())
	}
}

func TestTimelineSparseBucketsReadZero(t *testing.T) {
	tl := NewTimeline(10)
	tl.Record(35, 8) // only bucket 3 is populated
	pts := tl.Points()
	if len(pts) != 4 {
		t.Fatalf("len = %d, want 4", len(pts))
	}
	if pts[0] != 0 || pts[1] != 0 || pts[2] != 0 || pts[3] != 8 {
		t.Fatalf("points = %v", pts)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not collapse to zero stream")
	}
}

func TestRNGFloat32Range(t *testing.T) {
	r := NewRNG(99)
	f := func(_ uint8) bool {
		v := r.Float32()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
