package sim

import "sort"

// Stats is a registry of named uint64 counters. Counters are created lazily
// on first Add/Set. Reads of missing counters return zero, mirroring the
// convenience of gem5's stats system.
//
// Counters are stored as stable heap cells so hot-path code can resolve a
// name once (Counter) and bump the cell directly, instead of concatenating
// the name and hashing it every cycle — profiling showed those string
// concatenations were essentially all of the simulator's steady-state
// allocations.
//
// The registry is not safe for concurrent use; the simulator is
// single-goroutine by design.
type Stats struct {
	counters map[string]*uint64
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*uint64)}
}

// Counter returns the cell backing counter name, creating it at zero if
// needed. The pointer is stable for the life of the registry — including
// across Restore, which writes values into the existing cells — so callers
// may cache it at construction time and increment it allocation-free.
func (s *Stats) Counter(name string) *uint64 {
	p, ok := s.counters[name]
	if !ok {
		p = new(uint64)
		s.counters[name] = p
	}
	return p
}

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta uint64) {
	*s.Counter(name) += delta
}

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Set overwrites counter name.
func (s *Stats) Set(name string, v uint64) { *s.Counter(name) = v }

// Get returns the value of counter name, or zero if it was never written.
func (s *Stats) Get(name string) uint64 {
	if p, ok := s.counters[name]; ok {
		return *p
	}
	return 0
}

// Names returns all counter names in sorted order (stable output for reports).
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of every counter, for diffing across an interval
// and for checkpoint/restore.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = *v
	}
	return out
}

// Restore resets the registry to a Snapshot. Values are written into the
// existing cells (so pointers handed out by Counter stay valid); cells absent
// from the snapshot are zeroed, and names present only in the snapshot are
// re-created. After Restore the registry is value-identical to the snapshot
// plus zero-valued cells for counters registered since it was taken — which
// is exactly the set a cold run that registered the same handles would hold.
func (s *Stats) Restore(snap map[string]uint64) {
	for name, p := range s.counters {
		if v, ok := snap[name]; ok {
			*p = v
		} else {
			*p = 0
		}
	}
	for name, v := range snap {
		if _, ok := s.counters[name]; !ok {
			*s.Counter(name) = v
		}
	}
}
