package sim

import "sort"

// Stats is a registry of named uint64 counters. Counters are created lazily
// on first Add/Set. Reads of missing counters return zero, mirroring the
// convenience of gem5's stats system.
//
// The registry is not safe for concurrent use; the simulator is
// single-goroutine by design.
type Stats struct {
	counters map[string]uint64
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]uint64)}
}

// Add increments counter name by delta.
func (s *Stats) Add(name string, delta uint64) {
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Set overwrites counter name.
func (s *Stats) Set(name string, v uint64) { s.counters[name] = v }

// Get returns the value of counter name, or zero if it was never written.
func (s *Stats) Get(name string) uint64 { return s.counters[name] }

// Names returns all counter names in sorted order (stable output for reports).
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of every counter, for diffing across an interval.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}
