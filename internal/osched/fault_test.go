package osched

import (
	"testing"

	"occamy/internal/arch"
	"occamy/internal/fault"
	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/roofline"
)

// TestRestoreAfterPoolShrink exercises Restore while an injected repartition
// is pending: the pool shrank while the task was descheduled, so the saved
// <VL> can no longer be granted and re-acquisition must settle for the
// planner's degraded suggestion instead of waiting for lanes that no longer
// exist.
func TestRestoreAfterPoolShrink(t *testing.T) {
	tbl := lanemgr.NewResourceTbl(lanemgr.Topology{Clusters: 1, Cores: 2, ExeBUs: 8})
	mgr := lanemgr.NewManager(roofline.Default(), tbl)
	oi := isa.OIPair{Issue: 1, Mem: 1}
	mgr.OnOIWrite(0, oi)
	mgr.OnOIWrite(1, oi)
	if !tbl.TryReconfigure(0, tbl.Decision(0)) || !tbl.TryReconfigure(1, tbl.Decision(1)) {
		t.Fatal("initial grants failed")
	}

	ctx, err := Save(mgr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.VL == 0 {
		t.Fatal("saved context holds no lanes; the scenario needs a stale VL")
	}

	// While task 0 is descheduled, a fault kills six of the eight units and
	// the controller replans over the survivors. Core 1 shrinks to its new
	// decision at a strip boundary (the drain-gated revocation path).
	tbl.Fail(6)
	mgr.Repartition()
	tbl.ForceVL(1, tbl.Decision(1))

	Restore(mgr, 0, ctx)
	dec := tbl.Decision(0)
	if dec <= 0 || dec > tbl.Usable() {
		t.Fatalf("post-fault decision = %d, want within (0, %d]", dec, tbl.Usable())
	}
	// The saved VL exceeds the whole surviving pool: granting it verbatim
	// can never succeed. The restore path re-installs it over-committed
	// (negative <AL>, like an in-flight fault) so the task resumes under
	// the exact length it was preempted with.
	if ctx.VL <= tbl.Usable() {
		t.Fatalf("scenario broken: saved VL %d fits the degraded pool %d", ctx.VL, tbl.Usable())
	}
	if tbl.TryReconfigure(0, ctx.VL) {
		t.Fatalf("granting the stale VL %d must fail on a %d-unit pool", ctx.VL, tbl.Usable())
	}
	tbl.RestoreVL(0, ctx.VL)
	if tbl.VL(0) != ctx.VL || !tbl.Status(0) {
		t.Fatalf("RestoreVL installed VL=%d status=%v, want %d/true", tbl.VL(0), tbl.Status(0), ctx.VL)
	}
	if tbl.AL() >= 0 {
		t.Fatalf("over-committed restore must leave <AL> negative, got %d", tbl.AL())
	}
	// Each task's partition monitor shrinks to its decision at its next
	// strip boundary; shrinks always succeed and repay the debt.
	if !tbl.TryReconfigure(0, dec) {
		t.Fatalf("monitor shrink to decision %d must succeed", dec)
	}
	tbl.ForceVL(1, tbl.Decision(1)) // the restore replanned core 1 too
	if tbl.AL() < 0 {
		t.Fatalf("<AL> still negative (%d) after both cores drained to their decisions", tbl.AL())
	}
}

// TestSchedulerUnderPermanentFault time-slices four tasks over two cores
// while half the ExeBUs fail mid-run. Context switches keep happening on the
// degraded pool; the watchdog converts any re-acquisition livelock into a
// test failure instead of a hang, and every task must still produce correct
// results.
func TestSchedulerUnderPermanentFault(t *testing.T) {
	ws := mkTasks(t, 4)
	sched, sys, compiled, err := OversubscribedOpts(ws, 2, 1200, 200_000_000, arch.Options{
		Seed:        7,
		Faults:      []fault.Fault{{Kind: fault.ExeBU, Count: 4, At: 3000}},
		StallCycles: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Done() {
		t.Fatal("not all tasks completed")
	}
	if sched.Switches == 0 {
		t.Fatal("oversubscription must cause context switches")
	}
	if tbl := sys.Coproc.Tbl(); tbl.Failed() != 4 {
		t.Fatalf("failed units = %d, want 4", tbl.Failed())
	}
	for i, comp := range compiled {
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("task %d (%s): %v", i, ws[i].Name, err)
			}
		}
	}
}

// TestSchedulerAcrossTransientFault opens a revocation drain window (six of
// eight units out for a while, then repaired) across many preemption drains:
// saves and restores overlap the fault controller's drain-gated shrinks in
// both directions, and the run must still complete losslessly.
func TestSchedulerAcrossTransientFault(t *testing.T) {
	ws := mkTasks(t, 6)
	sched, sys, compiled, err := OversubscribedOpts(ws, 2, 1000, 200_000_000, arch.Options{
		Seed:        11,
		Faults:      []fault.Fault{{Kind: fault.ExeBU, Count: 6, At: 2000, For: 30_000}},
		StallCycles: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Done() {
		t.Fatal("not all tasks completed")
	}
	if sched.Switches < 4 {
		t.Fatalf("only %d switches", sched.Switches)
	}
	if tbl := sys.Coproc.Tbl(); tbl.Failed() != 0 {
		t.Fatalf("transient fault left %d units failed after repair", tbl.Failed())
	}
	for i, comp := range compiled {
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("task %d (%s): %v", i, ws[i].Name, err)
			}
		}
	}
}
