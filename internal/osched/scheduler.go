package osched

import (
	"fmt"

	"occamy/internal/arch"
	"occamy/internal/compiler"
	"occamy/internal/cpu"
	"occamy/internal/isa"
	"occamy/internal/workload"
)

// Scheduler is a preemptive round-robin OS scheduler over an elastic
// (Occamy) system: it time-slices more tasks than cores, saving and
// restoring full contexts — scalar registers, vector registers and the five
// EM-SIMD dedicated registers — at quiescent points only, exactly as §5
// prescribes ("the OS will save the contexts ... when all the pipelines
// (including those in Occamy) are drained, and restore <OI> using MSR to
// trigger lane partitioning").
//
// It extends the paper: §5 assumes lane partitioning and task scheduling
// work independently; this realizes the interaction so it can be studied
// (see TestSchedulerOversubscribed and examples/scheduler).
type Scheduler struct {
	sys   *arch.System
	slice uint64

	// tasks holds every task's saved context; running[c] is the task id
	// on core c (-1 = idle).
	tasks   []*task
	running []int

	// switchState drives the per-core preemption state machine.
	switchState []switchPhase
	sliceEnd    []uint64
	pendingIn   []int // task id being switched in (during restore)

	// Switches counts completed context switches.
	Switches uint64
}

type task struct {
	name string
	st   cpu.State
	vec  [][]float32
	em   Context
	vl   int // lanes held when preempted (granules)
	done bool
}

type switchPhase uint8

const (
	runFreely switchPhase = iota
	draining              // parked, waiting for co-processor quiescence
	acquiring             // restoring: waiting to re-acquire the saved VL
)

// NewScheduler wraps an already-built elastic system whose cores were
// created with placeholder programs; use BuildOversubscribed for the common
// case.
func NewScheduler(sys *arch.System, slice uint64) *Scheduler {
	n := len(sys.Cores)
	s := &Scheduler{
		sys:         sys,
		slice:       slice,
		running:     make([]int, n),
		switchState: make([]switchPhase, n),
		sliceEnd:    make([]uint64, n),
		pendingIn:   make([]int, n),
	}
	for c := 0; c < n; c++ {
		s.running[c] = -1
		s.pendingIn[c] = -1
	}
	return s
}

// AddTask registers a compiled task. Tasks added before Start are scheduled
// round-robin.
func (s *Scheduler) AddTask(name string, prog cpu.State) int {
	s.tasks = append(s.tasks, &task{name: name, st: prog, vl: 0})
	return len(s.tasks) - 1
}

// Start dispatches the first len(cores) tasks.
func (s *Scheduler) Start() {
	for c := range s.running {
		if next := s.pickNext(-1); next >= 0 {
			s.dispatch(c, next, 0)
		}
	}
}

// pickNext returns the next not-done, not-running task after id, or -1.
func (s *Scheduler) pickNext(after int) int {
	n := len(s.tasks)
	for i := 1; i <= n; i++ {
		cand := (after + i) % n
		if after < 0 {
			cand = (i - 1) % n
		}
		t := s.tasks[cand]
		if t.done || s.isRunning(cand) || s.isPending(cand) {
			continue
		}
		return cand
	}
	return -1
}

func (s *Scheduler) isRunning(id int) bool {
	for _, r := range s.running {
		if r == id {
			return true
		}
	}
	return false
}

func (s *Scheduler) isPending(id int) bool {
	for _, p := range s.pendingIn {
		if p == id {
			return true
		}
	}
	return false
}

// dispatch begins switching task id onto core c.
func (s *Scheduler) dispatch(c, id int, now uint64) {
	t := s.tasks[id]
	s.sys.Cores[c].Restore(t.st)
	s.sys.Cores[c].Park()
	if t.vec != nil {
		s.sys.Coproc.RestoreVecState(c, t.vec)
	}
	// Restoring a non-zero <OI> triggers a repartition (§5), so the
	// incoming task's behaviour immediately influences the plan.
	Restore(s.sys.Coproc.Manager(), c, t.em)
	s.pendingIn[c] = id
	s.switchState[c] = acquiring
	_ = now
}

// Name implements sim.Component.
func (s *Scheduler) Name() string { return "os-scheduler" }

// Tick implements sim.Component: runs the per-core scheduling state machine.
// Registered after the cores and the co-processor, it sees a consistent
// end-of-cycle view.
func (s *Scheduler) Tick(now uint64) {
	for c := range s.running {
		switch s.switchState[c] {
		case runFreely:
			s.tickRunning(c, now)
		case draining:
			s.tickDraining(c, now)
		case acquiring:
			s.tickAcquiring(c, now)
		}
	}
}

func (s *Scheduler) tickRunning(c int, now uint64) {
	id := s.running[c]
	if id < 0 {
		// Idle core: adopt any waiting task.
		if next := s.pickNext(-1); next >= 0 {
			s.dispatch(c, next, now)
		}
		return
	}
	t := s.tasks[id]
	core := s.sys.Cores[c]
	if core.Halted() && s.sys.Coproc.Quiescent(c, now) {
		// Task finished: release its lanes and context.
		t.done = true
		t.st = core.Snapshot()
		s.running[c] = -1
		if next := s.pickNext(id); next >= 0 {
			s.dispatch(c, next, now)
		}
		return
	}
	if now >= s.sliceEnd[c] && s.pickNext(id) >= 0 {
		// Preempt: stop fetching and wait for the pipelines to drain.
		core.Park()
		s.switchState[c] = draining
	}
}

func (s *Scheduler) tickDraining(c int, now uint64) {
	if !s.sys.Coproc.Quiescent(c, now) {
		return
	}
	id := s.running[c]
	t := s.tasks[id]
	core := s.sys.Cores[c]
	// Save the full context: scalar, vector and EM-SIMD registers. The
	// task's previous save buffer is reused, so repeated preemptions of a
	// long-lived task do not allocate.
	t.st = core.Snapshot()
	t.vec = s.sys.Coproc.CopyVecState(c, t.vec)
	t.vl = s.sys.Coproc.Tbl().VL(c)
	ctx, err := Save(s.sys.Coproc.Manager(), c)
	if err != nil {
		panic(fmt.Sprintf("osched: %v", err)) // quiescence was checked
	}
	t.em = ctx
	s.running[c] = -1
	s.Switches++
	if next := s.pickNext(id); next >= 0 {
		s.dispatch(c, next, now)
	} else {
		// Nobody waiting after all: resume the same task.
		s.dispatch(c, id, now)
	}
}

func (s *Scheduler) tickAcquiring(c int, now uint64) {
	id := s.pendingIn[c]
	t := s.tasks[id]
	// Re-acquire the lanes the task held when preempted before letting
	// its SVE instructions resume. A task that held none (or was never
	// started) can run immediately — its own prologue/monitor negotiates.
	// The task MUST resume under exactly the VL it was preempted with: the
	// switch can land mid-strip, and the strip's bookkeeping (elements per
	// iteration, store predicates) silently corrupts under any other
	// length — elastic code only changes VL at strip boundaries.
	if t.vl > 0 {
		tbl := s.sys.Coproc.Tbl()
		if !tbl.TryReconfigure(c, t.vl) {
			if t.vl <= tbl.Usable() {
				return // retry next cycle; peers' monitors will release
			}
			// A fault shrank the pool below the saved VL while the task
			// was descheduled, so this grant can never succeed. Re-install
			// the allocation over-committed — the same transiently
			// negative <AL> that follows an in-flight fault — and let the
			// task's own partition monitor shrink it to the planner's
			// decision at its next strip boundary, where it is safe.
			tbl.RestoreVL(c, t.vl)
		}
	}
	s.pendingIn[c] = -1
	s.running[c] = id
	s.sliceEnd[c] = now + s.slice
	s.switchState[c] = runFreely
	s.sys.Cores[c].Unpark()
}

// Done reports whether every task has completed.
func (s *Scheduler) Done() bool {
	for _, t := range s.tasks {
		if !t.done {
			return false
		}
	}
	return true
}

// TaskNames returns the registered task names in order.
func (s *Scheduler) TaskNames() []string {
	out := make([]string, len(s.tasks))
	for i, t := range s.tasks {
		out[i] = t.name
	}
	return out
}

// Oversubscribed builds an elastic system with the given workloads
// time-sliced over cores CPU cores, runs it to completion and returns the
// scheduler (for switch counts), the system (for verification) and the
// compiled workloads in task order.
func Oversubscribed(ws []*workload.Workload, cores int, slice uint64, seed uint64, maxCycles uint64) (*Scheduler, *arch.System, []*compiler.Compiled, error) {
	return OversubscribedOpts(ws, cores, slice, maxCycles, arch.Options{Seed: seed})
}

// OversubscribedOpts is Oversubscribed with full control over the build
// options — notably fault injection and the forward-progress watchdog, so
// context switching can be exercised concurrently with lane revocation.
func OversubscribedOpts(ws []*workload.Workload, cores int, slice uint64, maxCycles uint64, opts arch.Options) (*Scheduler, *arch.System, []*compiler.Compiled, error) {
	if len(ws) < cores {
		return nil, nil, nil, fmt.Errorf("osched: need at least %d workloads", cores)
	}
	// Build the system with placeholder idle programs; tasks are compiled
	// separately with disjoint data segments and swapped in by the
	// scheduler.
	placeholder := make([]*workload.Workload, cores)
	for c := range placeholder {
		placeholder[c] = &workload.Workload{Name: fmt.Sprintf("boot%d", c), Phases: []*workload.Kernel{{
			Name:  "boot",
			Slots: []workload.LoadSlot{{Stream: 0}},
			Stmts: []workload.Stmt{{Out: 1, E: workload.Mul(workload.Slot(0), workload.Const(1))}},
			Elems: 64, Repeats: 1,
		}}}
	}
	sys, err := arch.Build(arch.Occamy, workload.CoSchedule{Name: "osched", W: placeholder}, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	sched := NewScheduler(sys, slice)
	var compiled []*compiler.Compiled
	for i, w := range ws {
		comp, err := compiler.Compile(w, compiler.Options{
			Mode:     compiler.ModeElastic,
			BaseAddr: uint64(i+8) << 32, // clear of the placeholders' segments
		})
		if err != nil {
			return nil, nil, nil, err
		}
		comp.InitData(sys.Hier.Mem, opts.Seed+uint64(i)*131+7)
		compiled = append(compiled, comp)
		sched.AddTask(w.Name, cpu.NewState(comp.Program))
	}
	sys.Engine.Register(sched)
	// Park the placeholder programs forever; the scheduler owns the cores.
	for c := range sys.Cores {
		sys.Cores[c].Restore(cpu.NewState(haltProgram()))
	}
	sched.Start()
	if _, err := sys.Engine.RunUntil(func() bool { return sched.Done() }, maxCycles); err != nil {
		return nil, nil, nil, err
	}
	return sched, sys, compiled, nil
}

// haltProgram is the parked-core idle program.
func haltProgram() *isa.Program {
	b := isa.NewBuilder("halt")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	return b.MustFinalize()
}
