package osched

import (
	"fmt"

	"occamy/internal/arch"
	"occamy/internal/compiler"
	"occamy/internal/cpu"
	"occamy/internal/isa"
	"occamy/internal/sim"
	"occamy/internal/workload"
)

// Scheduler is a preemptive OS scheduler over a built system: it time-slices
// more tasks than cores, saving and restoring full contexts — scalar
// registers, vector registers and (on the elastic architecture) the five
// EM-SIMD dedicated registers — at quiescent points only, exactly as §5
// prescribes ("the OS will save the contexts ... when all the pipelines
// (including those in Occamy) are drained, and restore <OI> using MSR to
// trigger lane partitioning").
//
// It extends the paper: §5 assumes lane partitioning and task scheduling
// work independently; this realizes the interaction so it can be studied
// (see TestSchedulerOversubscribed and examples/scheduler). Tasks are
// admitted through a FIFO ready ring — either all at once (Start, the
// classic oversubscribed batch) or one by one as they arrive
// (EnqueueReady, driven by internal/traffic) — and can be suspended,
// resumed and canceled mid-run for tenant-churn scenarios.
//
// On non-elastic architectures (Private, FTS, VLS) tasks are compiled
// VL-agnostic (compiler.ModeFixed), so contexts migrate freely between
// cores with different fixed vector lengths and no EM-SIMD state exists to
// save; the elastic-only steps are skipped.
type Scheduler struct {
	sys     *arch.System
	slice   uint64
	elastic bool

	// tasks holds every task's saved context; running[c] is the task id
	// on core c (-1 = idle).
	tasks   []*task
	running []int

	// switchState drives the per-core preemption state machine.
	switchState []switchPhase
	sliceEnd    []uint64
	pendingIn   []int // task id being switched in (during restore)

	// queue is the FIFO ready ring (circular buffer, presized at AddTask so
	// steady-state admission never allocates). Tasks canceled or suspended
	// while queued are removed eagerly (removeQueued), so qlen counts
	// runnable entries only — the preemption trigger and NextWake key off
	// it, and a stale count would park cores for switches that dispatch
	// nothing.
	queue []int32
	qhead int
	qlen  int

	hooks Hooks

	// Switches counts completed context switches (preemptions and
	// evictions, not completions).
	Switches uint64
}

// Hooks observes task lifecycle transitions; all methods are called from
// the scheduler's Tick, in deterministic order. A nil Hooks is valid.
type Hooks interface {
	// TaskRunning fires when a task (re)starts executing on a core; first
	// is true on its very first dispatch.
	TaskRunning(id int, now uint64, first bool)
	// TaskPreempted fires when a task's context is saved and the task is
	// returned to the ready ring.
	TaskPreempted(id int, now uint64)
	// TaskSuspended fires when a running task is forced off its core by
	// Suspend or Cancel (tenant churn) after its context is saved.
	TaskSuspended(id int, now uint64)
	// TaskCompleted fires when a task halts and its pipelines drain.
	TaskCompleted(id int, now uint64)
}

type task struct {
	name string
	st   cpu.State
	vec  [][]float32
	em   Context
	vl   int // lanes held when preempted (granules)

	vecValid  bool // vec holds a real saved state (not just a warm buffer)
	started   bool
	done      bool
	canceled  bool
	suspended bool
	enqueued  bool
	evict     bool // running task: deschedule at next quiescent point
}

type switchPhase uint8

const (
	runFreely switchPhase = iota
	draining              // parked, waiting for co-processor quiescence
	acquiring             // restoring: waiting to re-acquire the saved VL
)

// NewScheduler wraps an already-built system whose cores were created with
// placeholder programs; use Oversubscribed for the common batch case.
func NewScheduler(sys *arch.System, slice uint64) *Scheduler {
	n := len(sys.Cores)
	s := &Scheduler{
		sys:         sys,
		slice:       slice,
		elastic:     sys.Kind == arch.Occamy,
		running:     make([]int, n),
		switchState: make([]switchPhase, n),
		sliceEnd:    make([]uint64, n),
		pendingIn:   make([]int, n),
	}
	for c := 0; c < n; c++ {
		s.running[c] = -1
		s.pendingIn[c] = -1
	}
	return s
}

// SetHooks installs the lifecycle observer (nil disables).
func (s *Scheduler) SetHooks(h Hooks) { s.hooks = h }

// AddTask registers a compiled task. It pre-warms every core's phase-name
// pool and the task's vector save buffer so that no later dispatch,
// preemption or save on the tick path allocates.
func (s *Scheduler) AddTask(name string, prog cpu.State) int {
	t := &task{name: name, st: prog, vl: 0}
	if prog.Prog != nil {
		for _, core := range s.sys.Cores {
			core.PrewarmPhases(prog.Prog.NumPhases)
		}
	}
	t.vec = s.sys.Coproc.CopyVecState(0, nil) // right shape; contents unused until vecValid
	s.tasks = append(s.tasks, t)
	s.growQueue(len(s.tasks) + 1)
	return len(s.tasks) - 1
}

// growQueue resizes the ready ring to hold at least n entries, preserving
// FIFO order. Called at AddTask time only — the ring never grows mid-run.
func (s *Scheduler) growQueue(n int) {
	if len(s.queue) >= n {
		return
	}
	nq := make([]int32, 2*n)
	for i := 0; i < s.qlen; i++ {
		nq[i] = s.queue[(s.qhead+i)%len(s.queue)]
	}
	s.queue = nq
	s.qhead = 0
}

func (s *Scheduler) enqueue(id int) {
	t := s.tasks[id]
	if t.enqueued {
		return
	}
	if s.qlen == len(s.queue) {
		s.growQueue(s.qlen + 1) // unreachable after AddTask presizing
	}
	s.queue[(s.qhead+s.qlen)%len(s.queue)] = int32(id)
	s.qlen++
	t.enqueued = true
}

// removeQueued deletes task id's ring entry (if any), preserving the FIFO
// order of the remaining entries. Alloc-free: entries are compacted within
// the existing buffer.
func (s *Scheduler) removeQueued(id int) {
	t := s.tasks[id]
	if !t.enqueued {
		return
	}
	n := len(s.queue)
	w := 0
	for i := 0; i < s.qlen; i++ {
		v := s.queue[(s.qhead+i)%n]
		if int(v) == id {
			continue
		}
		s.queue[(s.qhead+w)%n] = v
		w++
	}
	s.qlen = w
	t.enqueued = false
}

// popReady returns the next runnable task from the ring, or -1. The stale
// check is defensive: eager removal keeps the ring runnable-only.
func (s *Scheduler) popReady() int {
	for s.qlen > 0 {
		id := int(s.queue[s.qhead])
		s.qhead = (s.qhead + 1) % len(s.queue)
		s.qlen--
		t := s.tasks[id]
		t.enqueued = false
		if t.done || t.canceled || t.suspended {
			continue
		}
		return id
	}
	return -1
}

// EnqueueReady admits task id to the ready ring (open-loop arrival). Safe
// to call from another component's Tick in the same cycle; the scheduler
// ticks after its producers and will consider the task this cycle.
func (s *Scheduler) EnqueueReady(id int) {
	t := s.tasks[id]
	if t.done || t.canceled || t.suspended {
		return
	}
	s.enqueue(id)
}

// Suspend forces task id off the system at the next quiescent point: a
// running task drains and saves its context; a queued task is parked where
// it stands. Resume re-admits it. Models a tenant leaving.
func (s *Scheduler) Suspend(id int) {
	t := s.tasks[id]
	if t.done || t.canceled || t.suspended {
		return
	}
	if c := s.coreOf(id); c >= 0 {
		// Mid-strip is fine: the drain path saves the exact VL.
		t.evict = true
		if s.switchState[c] == runFreely {
			s.sys.Cores[c].Park()
			s.switchState[c] = draining
		}
		return
	}
	s.removeQueued(id)
	t.suspended = true
}

// Resume re-admits a suspended task (tenant re-entry). Its saved context —
// including the exact VL it was preempted with — is restored on dispatch.
func (s *Scheduler) Resume(id int) {
	t := s.tasks[id]
	if t.done || t.canceled || !t.suspended {
		return
	}
	t.suspended = false
	s.enqueue(id)
}

// Cancel permanently removes task id: queued work is discarded, a running
// task is drained off its core first. Models reneging on tenant exit.
func (s *Scheduler) Cancel(id int) {
	t := s.tasks[id]
	if t.done || t.canceled {
		return
	}
	t.canceled = true
	if c := s.coreOf(id); c >= 0 {
		t.evict = true
		if s.switchState[c] == runFreely {
			s.sys.Cores[c].Park()
			s.switchState[c] = draining
		}
		return
	}
	s.removeQueued(id)
}

func (s *Scheduler) coreOf(id int) int {
	for c, r := range s.running {
		if r == id {
			return c
		}
	}
	for c, p := range s.pendingIn {
		if p == id {
			return c
		}
	}
	return -1
}

// Start admits every registered task and dispatches onto all cores (the
// classic oversubscribed batch entry point).
func (s *Scheduler) Start() {
	for id := range s.tasks {
		s.EnqueueReady(id)
	}
	for c := range s.running {
		if next := s.popReady(); next >= 0 {
			s.dispatch(c, next, 0)
		}
	}
}

// dispatch begins switching task id onto core c.
func (s *Scheduler) dispatch(c, id int, now uint64) {
	t := s.tasks[id]
	s.sys.Cores[c].Restore(t.st)
	s.sys.Cores[c].Park()
	if t.vecValid {
		s.sys.Coproc.RestoreVecState(c, t.vec)
	}
	if s.elastic {
		// Restoring a non-zero <OI> triggers a repartition (§5), so the
		// incoming task's behaviour immediately influences the plan.
		Restore(s.sys.Coproc.Manager(), c, t.em)
	}
	s.pendingIn[c] = id
	s.switchState[c] = acquiring
	_ = now
}

// Name implements sim.Component.
func (s *Scheduler) Name() string { return "os-scheduler" }

// Tick implements sim.Component: runs the per-core scheduling state machine.
// Registered after the cores and the co-processor, it sees a consistent
// end-of-cycle view.
func (s *Scheduler) Tick(now uint64) {
	for c := range s.running {
		switch s.switchState[c] {
		case runFreely:
			s.tickRunning(c, now)
		case draining:
			s.tickDraining(c, now)
		case acquiring:
			s.tickAcquiring(c, now)
		}
	}
}

func (s *Scheduler) tickRunning(c int, now uint64) {
	id := s.running[c]
	if id < 0 {
		// Idle core: adopt any waiting task.
		if next := s.popReady(); next >= 0 {
			s.dispatch(c, next, now)
		}
		return
	}
	t := s.tasks[id]
	core := s.sys.Cores[c]
	if core.Halted() && s.sys.Coproc.Quiescent(c, now) {
		// Task finished: release its context and the core.
		t.done = true
		t.st = core.Snapshot()
		s.running[c] = -1
		if s.hooks != nil {
			s.hooks.TaskCompleted(id, now)
		}
		if next := s.popReady(); next >= 0 {
			s.dispatch(c, next, now)
		} else if s.elastic {
			// Nobody to run: hand the dead task's lanes back to the pool
			// so peers can grow instead of idling them until the next
			// arrival. Save captures-and-releases; the context is dead.
			_, _ = Save(s.sys.Coproc.Manager(), c)
		}
		return
	}
	if now >= s.sliceEnd[c] && s.qlen > 0 {
		// Preempt: stop fetching and wait for the pipelines to drain.
		core.Park()
		s.switchState[c] = draining
	}
}

func (s *Scheduler) tickDraining(c int, now uint64) {
	if !s.sys.Coproc.Quiescent(c, now) {
		return
	}
	id := s.running[c]
	t := s.tasks[id]
	core := s.sys.Cores[c]
	// Save the full context: scalar, vector and (elastic only) EM-SIMD
	// registers. The task's save buffer was preallocated at AddTask, so
	// preemptions of a long-lived task do not allocate.
	t.st = core.Snapshot()
	t.vec = s.sys.Coproc.CopyVecState(c, t.vec)
	t.vecValid = true
	// Record the preemption-time width for every mode: fixed-mode cores can
	// also change VL while the task is off-core (a fault revocation landing
	// at another task's strip boundary), and the mid-strip state only
	// resumes soundly under this exact width.
	t.vl = s.sys.Coproc.Tbl().VL(c)
	if s.elastic {
		ctx, err := Save(s.sys.Coproc.Manager(), c)
		if err != nil {
			panic(fmt.Sprintf("osched: %v", err)) // quiescence was checked
		}
		t.em = ctx
	}
	s.running[c] = -1
	s.Switches++
	evicted := t.evict
	t.evict = false
	if evicted {
		if !t.canceled {
			t.suspended = true
		}
		if s.hooks != nil {
			s.hooks.TaskSuspended(id, now)
		}
		if next := s.popReady(); next >= 0 {
			s.dispatch(c, next, now)
		} else {
			s.switchState[c] = runFreely
		}
		return
	}
	if s.hooks != nil {
		s.hooks.TaskPreempted(id, now)
	}
	if next := s.popReady(); next >= 0 {
		s.enqueue(id)
		s.dispatch(c, next, now)
	} else {
		// Nobody waiting after all: resume the same task.
		s.dispatch(c, id, now)
	}
}

func (s *Scheduler) tickAcquiring(c int, now uint64) {
	id := s.pendingIn[c]
	t := s.tasks[id]
	// Re-acquire the lanes the task held when preempted before letting
	// its SVE instructions resume. A task that held none (or was never
	// started) can run immediately — its own prologue/monitor negotiates.
	// The task MUST resume under exactly the VL it was preempted with: the
	// switch can land mid-strip, and the strip's bookkeeping (elements per
	// iteration, store predicates) silently corrupts under any other
	// length — elastic code only changes VL at strip boundaries.
	if s.elastic && t.vl > 0 {
		tbl := s.sys.Coproc.Tbl()
		if !tbl.TryReconfigure(c, t.vl) {
			if t.vl <= tbl.Usable() {
				return // retry next cycle; peers' monitors will release
			}
			// A fault shrank the pool below the saved VL while the task
			// was descheduled, so this grant can never succeed. Re-install
			// the allocation over-committed — the same transiently
			// negative <AL> that follows an in-flight fault — and let the
			// task's own partition monitor shrink it to the planner's
			// decision at its next strip boundary, where it is safe.
			tbl.RestoreVL(c, t.vl)
		}
	} else if !s.elastic && t.vl > 0 {
		// Fixed-mode binaries never renegotiate, but a fault revocation can
		// have shrunk the core's width while the task was off-core. Unlike
		// the elastic case there is no monitor to repay an over-commit, so
		// the resume must wait until the exact width is re-grantable (the
		// transient fault's repair returns the units). A permanent loss
		// leaves the task waiting — the watchdog's DNF, the honest
		// static-partitioning outcome.
		if tbl := s.sys.Coproc.Tbl(); tbl.VL(c) != t.vl && !tbl.TryReconfigure(c, t.vl) {
			return // retry next cycle
		}
	}
	s.pendingIn[c] = -1
	s.running[c] = id
	s.sliceEnd[c] = now + s.slice
	s.switchState[c] = runFreely
	s.sys.Cores[c].Unpark()
	first := !t.started
	t.started = true
	if s.hooks != nil {
		s.hooks.TaskRunning(id, now, first)
	}
	if t.evict {
		// Suspend/Cancel landed while the task was mid-acquire: honor it
		// now that the context is installed, via the normal drain path.
		s.sys.Cores[c].Park()
		s.switchState[c] = draining
	}
}

// NextWake implements sim.Sleeper so oversubscribed and traffic-driven runs
// can still skip quiescent windows. The scheduler is quiescent — no Tick on
// [now, wake) changes its state — exactly when every core runs freely, no
// running core has halted (a completion it must process), no idle core has
// ready work, and every preemption horizon (slice end with a non-empty ready
// ring) lies in the future. Completions cannot slip into a skipped window:
// a core must tick for real to execute HALT, and the very next probe sees
// Halted() and goes live.
func (s *Scheduler) NextWake(now uint64) (uint64, bool) {
	wake := uint64(sim.NeverWake)
	for c := range s.running {
		if s.switchState[c] != runFreely {
			return 0, false
		}
		id := s.running[c]
		if id < 0 {
			if s.qlen > 0 {
				return 0, false
			}
			continue
		}
		if s.sys.Cores[c].Halted() {
			return 0, false
		}
		if s.qlen > 0 {
			if now >= s.sliceEnd[c] {
				return 0, false
			}
			if s.sliceEnd[c] < wake {
				wake = s.sliceEnd[c]
			}
		}
	}
	return wake, true
}

// SkipTicks implements sim.Sleeper; the scheduler keys everything off
// absolute cycle numbers, so skipped windows need no catch-up.
func (s *Scheduler) SkipTicks(from, n uint64) {}

// Done reports whether every task has completed or been canceled.
func (s *Scheduler) Done() bool {
	for _, t := range s.tasks {
		if !t.done && !t.canceled {
			return false
		}
	}
	return true
}

// NumTasks returns the number of registered tasks.
func (s *Scheduler) NumTasks() int { return len(s.tasks) }

// TaskDone reports whether task id ran to completion.
func (s *Scheduler) TaskDone(id int) bool { return s.tasks[id].done }

// TaskStarted reports whether task id was ever dispatched.
func (s *Scheduler) TaskStarted(id int) bool { return s.tasks[id].started }

// TaskCanceled reports whether task id was canceled.
func (s *Scheduler) TaskCanceled(id int) bool { return s.tasks[id].canceled }

// TaskSuspendedNow reports whether task id is currently suspended.
func (s *Scheduler) TaskSuspendedNow(id int) bool { return s.tasks[id].suspended }

// TaskRunningNow reports whether task id currently occupies a core
// (executing or mid-switch).
func (s *Scheduler) TaskRunningNow(id int) bool { return s.coreOf(id) >= 0 }

// QueueLen returns the current ready-ring occupancy. Every counted entry is
// runnable: canceled/suspended tasks are removed from the ring eagerly.
func (s *Scheduler) QueueLen() int { return s.qlen }

// RunningOn returns the task id executing on core c, or -1.
func (s *Scheduler) RunningOn(c int) int { return s.running[c] }

// TaskNames returns the registered task names in order.
func (s *Scheduler) TaskNames() []string {
	out := make([]string, len(s.tasks))
	for i, t := range s.tasks {
		out[i] = t.name
	}
	return out
}

// TaskState is one task's checkpointed context.
type TaskState struct {
	St  cpu.State
	Vec [][]float32
	Em  Context
	VL  int

	VecValid  bool
	Started   bool
	Done      bool
	Canceled  bool
	Suspended bool
	Enqueued  bool
	Evict     bool
}

// SchedState is a deterministic deep snapshot of the scheduler, composable
// with arch.System.Checkpoint for bit-identical forked runs.
type SchedState struct {
	Running     []int
	SwitchState []uint8
	SliceEnd    []uint64
	PendingIn   []int
	Queue       []int32 // logical FIFO contents, head first
	Switches    uint64
	Tasks       []TaskState
}

// Snapshot captures the scheduler state. The returned state shares nothing
// mutable with the live scheduler.
func (s *Scheduler) Snapshot() SchedState {
	st := SchedState{
		Running:     append([]int(nil), s.running...),
		SwitchState: make([]uint8, len(s.switchState)),
		SliceEnd:    append([]uint64(nil), s.sliceEnd...),
		PendingIn:   append([]int(nil), s.pendingIn...),
		Queue:       make([]int32, s.qlen),
		Switches:    s.Switches,
		Tasks:       make([]TaskState, len(s.tasks)),
	}
	for i, p := range s.switchState {
		st.SwitchState[i] = uint8(p)
	}
	for i := 0; i < s.qlen; i++ {
		st.Queue[i] = s.queue[(s.qhead+i)%len(s.queue)]
	}
	for i, t := range s.tasks {
		ts := TaskState{
			St: t.st, Em: t.em, VL: t.vl,
			VecValid: t.vecValid, Started: t.started, Done: t.done,
			Canceled: t.canceled, Suspended: t.suspended,
			Enqueued: t.enqueued, Evict: t.evict,
		}
		ts.Vec = make([][]float32, len(t.vec))
		for r := range t.vec {
			ts.Vec[r] = append([]float32(nil), t.vec[r]...)
		}
		st.Tasks[i] = ts
	}
	return st
}

// Restore reinstalls a state captured by Snapshot on the same scheduler
// shape (same cores, same registered tasks).
func (s *Scheduler) Restore(st SchedState) {
	copy(s.running, st.Running)
	for i, p := range st.SwitchState {
		s.switchState[i] = switchPhase(p)
	}
	copy(s.sliceEnd, st.SliceEnd)
	copy(s.pendingIn, st.PendingIn)
	s.qhead = 0
	s.qlen = len(st.Queue)
	copy(s.queue, st.Queue)
	s.Switches = st.Switches
	for i, ts := range st.Tasks {
		t := s.tasks[i]
		t.st, t.em, t.vl = ts.St, ts.Em, ts.VL
		t.vecValid, t.started, t.done = ts.VecValid, ts.Started, ts.Done
		t.canceled, t.suspended = ts.Canceled, ts.Suspended
		t.enqueued, t.evict = ts.Enqueued, ts.Evict
		if len(t.vec) != len(ts.Vec) {
			t.vec = make([][]float32, len(ts.Vec))
		}
		for r := range ts.Vec {
			if len(t.vec[r]) != len(ts.Vec[r]) {
				t.vec[r] = make([]float32, len(ts.Vec[r]))
			}
			copy(t.vec[r], ts.Vec[r])
		}
	}
}

// Oversubscribed builds an elastic system with the given workloads
// time-sliced over cores CPU cores, runs it to completion and returns the
// scheduler (for switch counts), the system (for verification) and the
// compiled workloads in task order.
func Oversubscribed(ws []*workload.Workload, cores int, slice uint64, seed uint64, maxCycles uint64) (*Scheduler, *arch.System, []*compiler.Compiled, error) {
	return OversubscribedOpts(ws, cores, slice, maxCycles, arch.Options{Seed: seed})
}

// OversubscribedOpts is Oversubscribed with full control over the build
// options — notably fault injection and the forward-progress watchdog, so
// context switching can be exercised concurrently with lane revocation.
func OversubscribedOpts(ws []*workload.Workload, cores int, slice uint64, maxCycles uint64, opts arch.Options) (*Scheduler, *arch.System, []*compiler.Compiled, error) {
	if len(ws) < cores {
		return nil, nil, nil, fmt.Errorf("osched: need at least %d workloads", cores)
	}
	sys, err := BuildHost(arch.Occamy, cores, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	sched := NewScheduler(sys, slice)
	var compiled []*compiler.Compiled
	for i, w := range ws {
		comp, err := CompileTask(sys, w, i, opts.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		compiled = append(compiled, comp)
		sched.AddTask(w.Name, cpu.NewState(comp.Program))
	}
	sys.Engine.Register(sched)
	ParkCores(sys)
	sched.Start()
	if _, err := sys.Engine.RunUntil(func() bool { return sched.Done() }, maxCycles); err != nil {
		return nil, nil, nil, err
	}
	return sched, sys, compiled, nil
}

// BuildHost builds a system of the given architecture with placeholder boot
// programs, ready to host scheduler-swapped tasks; internal/traffic uses it
// to run arrival scenarios on every policy.
func BuildHost(kind arch.Kind, cores int, opts arch.Options) (*arch.System, error) {
	placeholder := make([]*workload.Workload, cores)
	for c := range placeholder {
		placeholder[c] = &workload.Workload{Name: fmt.Sprintf("boot%d", c), Phases: []*workload.Kernel{{
			Name:  "boot",
			Slots: []workload.LoadSlot{{Stream: 0}},
			Stmts: []workload.Stmt{{Out: 1, E: workload.Mul(workload.Slot(0), workload.Const(1))}},
			Elems: 64, Repeats: 1,
		}}}
	}
	return arch.Build(kind, workload.CoSchedule{Name: "osched", W: placeholder}, opts)
}

// CompileTask compiles w as schedulable task number i on sys: elastic
// EM-SIMD code on Occamy, VL-agnostic fixed-VL code elsewhere, with a data
// segment disjoint from every other task's and from the boot placeholders.
func CompileTask(sys *arch.System, w *workload.Workload, i int, seed uint64) (*compiler.Compiled, error) {
	mode := compiler.ModeElastic
	if sys.Kind != arch.Occamy {
		mode = compiler.ModeFixed
	}
	comp, err := compiler.Compile(w, compiler.Options{
		Mode:     mode,
		BaseAddr: uint64(i+8) << 32, // clear of the placeholders' segments
	})
	if err != nil {
		return nil, err
	}
	comp.InitData(sys.Hier.Mem, seed+uint64(i)*131+7)
	return comp, nil
}

// ParkCores replaces every core's boot program with a parked halt loop; the
// scheduler owns the cores from here on.
func ParkCores(sys *arch.System) {
	for c := range sys.Cores {
		sys.Cores[c].Restore(cpu.NewState(haltProgram()))
	}
}

// haltProgram is the parked-core idle program.
func haltProgram() *isa.Program {
	b := isa.NewBuilder("halt")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	return b.MustFinalize()
}
