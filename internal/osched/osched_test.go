package osched

import (
	"testing"

	"occamy/internal/isa"
	"occamy/internal/lanemgr"
	"occamy/internal/roofline"
)

func setup(t *testing.T) *lanemgr.Manager {
	t.Helper()
	tbl := lanemgr.NewResourceTbl(lanemgr.Topology{Clusters: 1, Cores: 2, ExeBUs: 8})
	return lanemgr.NewManager(roofline.Default(), tbl)
}

func TestSaveReleasesLanesAndRepartitions(t *testing.T) {
	mgr := setup(t)
	memOI := isa.OIPair{Issue: 0.09, Mem: 0.09}
	compOI := isa.OIPair{Issue: 1, Mem: 1}
	mgr.OnOIWrite(0, memOI)
	mgr.OnOIWrite(1, compOI)
	if !mgr.Tbl.TryReconfigure(0, mgr.Tbl.Decision(0)) || !mgr.Tbl.TryReconfigure(1, mgr.Tbl.Decision(1)) {
		t.Fatal("initial grants failed")
	}

	ctx, err := Save(mgr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.VL == 0 || ctx.OI != isa.UnpackOI(isa.PackOI(memOI)) {
		t.Fatalf("saved context %+v lost state", ctx)
	}
	if mgr.Tbl.VL(0) != 0 {
		t.Fatal("outgoing task's lanes must be released")
	}
	// The staying compute task now gets everything.
	if mgr.Tbl.Decision(1) != 8 {
		t.Fatalf("post-save decision for core 1 = %d, want 8", mgr.Tbl.Decision(1))
	}
}

func TestRestoreRetriggersPartitioning(t *testing.T) {
	mgr := setup(t)
	memOI := isa.OIPair{Issue: 0.09, Mem: 0.09}
	compOI := isa.OIPair{Issue: 1, Mem: 1}
	mgr.OnOIWrite(0, memOI)
	mgr.OnOIWrite(1, compOI)
	mgr.Tbl.TryReconfigure(0, mgr.Tbl.Decision(0))
	mgr.Tbl.TryReconfigure(1, mgr.Tbl.Decision(1))
	before0 := mgr.Tbl.Decision(0)

	ctx, err := Save(mgr, 0)
	if err != nil {
		t.Fatal(err)
	}
	reps := mgr.Repartitions
	Restore(mgr, 0, ctx)
	if mgr.Repartitions != reps+1 {
		t.Fatal("restoring a non-zero <OI> must trigger a repartition (§5)")
	}
	if mgr.Tbl.Decision(0) != before0 {
		t.Fatalf("restored decision = %d, want %d", mgr.Tbl.Decision(0), before0)
	}
	// VL is not forcibly restored; the task re-acquires via the monitor.
	if mgr.Tbl.VL(0) != 0 {
		t.Fatal("restore must not bypass the reconfiguration protocol")
	}
}

func TestRestoreIdleTaskDoesNotRepartition(t *testing.T) {
	mgr := setup(t)
	reps := mgr.Repartitions
	Restore(mgr, 0, Context{}) // task saved outside any phase
	if mgr.Repartitions != reps {
		t.Fatal("restoring a zero <OI> must not trigger partitioning")
	}
}

func TestSaveRestoreRoundTripIsLossless(t *testing.T) {
	mgr := setup(t)
	oi := isa.OIPair{Issue: 0.5, Mem: 0.75}
	mgr.OnOIWrite(0, oi)
	mgr.Tbl.TryReconfigure(0, 3)
	ctx, err := Save(mgr, 0)
	if err != nil {
		t.Fatal(err)
	}
	Restore(mgr, 0, ctx)
	if got := mgr.Tbl.OI(0); got != isa.UnpackOI(isa.PackOI(oi)) {
		t.Fatalf("restored OI = %+v", got)
	}
}
