package osched

import (
	"testing"

	"occamy/internal/arch"
	"occamy/internal/compiler"
	"occamy/internal/cpu"
	"occamy/internal/fault"
	"occamy/internal/workload"
)

// hostWithTasks builds an Occamy host with the given workloads compiled and
// registered but NOT enqueued, so tests control admission timing cycle by
// cycle (the traffic layer's churn primitives: EnqueueReady, Suspend,
// Resume, Cancel).
func hostWithTasks(t *testing.T, cores int, ws []*workload.Workload, opts arch.Options) (*Scheduler, *arch.System, []*compiler.Compiled) {
	t.Helper()
	sys, err := BuildHost(arch.Occamy, cores, opts)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(sys, 1_000_000) // slice >> test horizon: no natural preemption
	var compiled []*compiler.Compiled
	for i, w := range ws {
		comp, err := CompileTask(sys, w, i, opts.Seed)
		if err != nil {
			t.Fatal(err)
		}
		compiled = append(compiled, comp)
		sched.AddTask(w.Name, cpu.NewState(comp.Program))
	}
	sys.Engine.Register(sched)
	ParkCores(sys)
	return sched, sys, compiled
}

func longTask(t *testing.T, name string, elems, repeats int) *workload.Workload {
	t.Helper()
	k := *workload.NewRegistry().Kernel(name)
	k.Elems, k.Repeats = elems, repeats
	return &workload.Workload{Name: name, Phases: []*workload.Kernel{&k}}
}

func runTo(t *testing.T, sys *arch.System, cycle uint64) {
	t.Helper()
	if _, err := sys.Engine.RunUntil(func() bool { return sys.Engine.Cycle() >= cycle }, 50_000_000); err != nil {
		t.Fatal(err)
	}
}

func verifyAll(t *testing.T, sys *arch.System, ws []*workload.Workload, compiled []*compiler.Compiled) {
	t.Helper()
	for i, comp := range compiled {
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("task %d (%s): %v", i, ws[i].Name, err)
			}
		}
	}
}

// TestSchedulerSuspendMidStripResume is the tenant-exits-mid-strip edge
// case: a Suspend can land anywhere inside a strip, so the drain path must
// save the task's exact VL and vector state, release its lanes, and restore
// all of it on Resume — any other resume length silently corrupts the
// strip's store predicates.
func TestSchedulerSuspendMidStripResume(t *testing.T) {
	ws := []*workload.Workload{
		longTask(t, "dotProd", 20000, 3),
		longTask(t, "wsm51", 4000, 3),
	}
	sched, sys, compiled := hostWithTasks(t, 2, ws, arch.Options{Seed: 9})
	sched.EnqueueReady(0)
	sched.EnqueueReady(1)

	// Let both tasks dispatch and run deep into their first strips.
	if _, err := sys.Engine.RunUntil(func() bool {
		return sched.TaskStarted(0) && sched.TaskStarted(1) && sys.Engine.Cycle() >= 800
	}, 50_000_000); err != nil {
		t.Fatal(err)
	}
	c := sched.coreOf(0)
	if c < 0 || sched.switchState[c] != runFreely {
		t.Fatalf("task 0 not running freely (core %d)", c)
	}

	sched.Suspend(0)
	if _, err := sys.Engine.RunUntil(func() bool { return sched.TaskSuspendedNow(0) }, 50_000_000); err != nil {
		t.Fatal(err)
	}
	tk := sched.tasks[0]
	if !tk.vecValid {
		t.Fatal("suspend did not save vector state")
	}
	if tk.vl == 0 {
		t.Fatal("mid-strip suspend saved VL 0; task held lanes")
	}
	if sched.coreOf(0) >= 0 {
		t.Fatal("suspended task still occupies a core")
	}
	if got := sys.Coproc.Tbl().VL(c); got != 0 {
		t.Fatalf("core %d still holds %d granules after suspend", c, got)
	}

	// The tenant returns: the task must resume under its saved VL and both
	// tasks must produce bit-correct results.
	sched.Resume(0)
	if _, err := sys.Engine.RunUntil(func() bool { return sched.Done() }, 100_000_000); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, sys, ws, compiled)
}

// TestSchedulerAdmitWithZeroFreeLanes is the late-arrival edge case: a task
// admitted while a resident has grown to every usable granule (<AL> = 0)
// must still dispatch — it starts lane-less, writes its <OI>, and the
// fairness floor of the §5.2 planner carves it at least one granule.
func TestSchedulerAdmitWithZeroFreeLanes(t *testing.T) {
	ws := []*workload.Workload{
		longTask(t, "normL2", 24000, 2), // the hog
		longTask(t, "rgb2hsv", 3000, 2), // the late arrival
	}
	sched, sys, compiled := hostWithTasks(t, 2, ws, arch.Options{Seed: 13})
	tbl := sys.Coproc.Tbl()

	sched.EnqueueReady(0)
	if _, err := sys.Engine.RunUntil(func() bool {
		return sched.TaskStarted(0) && tbl.AL() == 0
	}, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if free := tbl.AL(); free != 0 {
		t.Fatalf("hog left %d granules free", free)
	}

	sched.EnqueueReady(1)
	if _, err := sys.Engine.RunUntil(func() bool {
		c := sched.coreOf(1)
		return c >= 0 && sched.switchState[c] == runFreely && tbl.VL(c) >= 1
	}, 50_000_000); err != nil {
		t.Fatal("late arrival never received its fairness-floor granule")
	}

	if _, err := sys.Engine.RunUntil(func() bool { return sched.Done() }, 100_000_000); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, sys, ws, compiled)
}

// TestSchedulerResumeAfterFaultRevocation is the re-admission edge case the
// RestoreVL path exists for: a task is suspended holding the full pool, a
// fault then shrinks the pool below its saved VL, and the tenant returns
// while the fault is live. Exact-VL reacquisition can never succeed, so the
// scheduler re-installs the allocation over-committed (transiently negative
// <AL>) and the task's own monitor shrinks it at the next strip boundary.
func TestSchedulerResumeAfterFaultRevocation(t *testing.T) {
	// 2 cores x 4 granules = 8 usable; the fault kills 3 for 40k cycles.
	faults := []fault.Fault{{Kind: fault.ExeBU, Count: 3, Cluster: fault.AnyCluster, At: 8000, For: 40_000}}
	ws := []*workload.Workload{
		longTask(t, "dotProd", 60000, 3),
		longTask(t, "wsm51", 3000, 2),
	}
	sched, sys, compiled := hostWithTasks(t, 2, ws, arch.Options{Seed: 17, Faults: faults})
	tbl := sys.Coproc.Tbl()

	// The hog runs alone and grows to the full pool, then is suspended
	// before the fault fires.
	sched.EnqueueReady(0)
	if _, err := sys.Engine.RunUntil(func() bool {
		return sched.TaskStarted(0) && tbl.AL() == 0 && sys.Engine.Cycle() >= 2000
	}, 50_000_000); err != nil {
		t.Fatal(err)
	}
	sched.Suspend(0)
	if _, err := sys.Engine.RunUntil(func() bool { return sched.TaskSuspendedNow(0) }, 50_000_000); err != nil {
		t.Fatal(err)
	}
	savedVL := sched.tasks[0].vl
	if savedVL == 0 {
		t.Fatal("suspend saved VL 0; expected the full pool")
	}

	// Ride past the fault injection; keep a second task running so the
	// machine is live while the pool shrinks.
	sched.EnqueueReady(1)
	runTo(t, sys, 10_000)
	if usable := tbl.Usable(); usable >= savedVL {
		t.Fatalf("fault did not shrink the pool below the saved VL (%d >= %d)", usable, savedVL)
	}

	// Re-admission during the fault window: exact reacquire is impossible,
	// so this exercises the over-committed RestoreVL path.
	sched.Resume(0)
	if _, err := sys.Engine.RunUntil(func() bool { return sched.TaskStarted(0) && sched.coreOf(0) >= 0 }, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Engine.RunUntil(func() bool { return sched.Done() }, 200_000_000); err != nil {
		t.Fatal(err)
	}
	if al := tbl.AL(); al < 0 {
		t.Fatalf("<AL> still negative (%d) after all tasks drained", al)
	}
	verifyAll(t, sys, ws, compiled)
}

// TestSchedulerNoSpuriousSwitchOnStaleQueue: canceling the only queued
// competitor must also cancel the pending preemption. The ready ring counts
// runnable entries only (stale entries are removed eagerly), so a slice
// expiry with nothing to dispatch must not park the core for a full context
// save/restore that re-installs the same task.
func TestSchedulerNoSpuriousSwitchOnStaleQueue(t *testing.T) {
	ws := []*workload.Workload{
		longTask(t, "dotProd", 20000, 2), // long-running resident
		longTask(t, "wsm51", 2000, 2),    // queued, then canceled
	}
	sys, err := BuildHost(arch.Occamy, 1, arch.Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(sys, 500) // slice far shorter than task 0's runtime
	for i, w := range ws {
		comp, err := CompileTask(sys, w, i, 29)
		if err != nil {
			t.Fatal(err)
		}
		sched.AddTask(w.Name, cpu.NewState(comp.Program))
	}
	sys.Engine.Register(sched)
	ParkCores(sys)

	sched.EnqueueReady(0)
	sched.EnqueueReady(1)
	if _, err := sys.Engine.RunUntil(func() bool { return sched.TaskStarted(0) }, 50_000_000); err != nil {
		t.Fatal(err)
	}
	sched.Cancel(1)
	if n := sched.QueueLen(); n != 0 {
		t.Fatalf("ready ring holds %d entries after canceling the only queued task", n)
	}
	if _, err := sys.Engine.RunUntil(func() bool { return sched.Done() }, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !sched.TaskDone(0) {
		t.Fatal("resident task did not complete")
	}
	if sched.Switches != 0 {
		t.Fatalf("%d spurious context switches with an empty ready ring", sched.Switches)
	}
}

// TestSchedulerCancelQueuedAndRunning covers reneging: canceling a queued
// task discards it without ever dispatching; canceling a running task
// drains it off its core and frees the core for the next arrival.
func TestSchedulerCancelQueuedAndRunning(t *testing.T) {
	ws := []*workload.Workload{
		longTask(t, "dotProd", 20000, 3), // runs, then canceled
		longTask(t, "wsm51", 2000, 2),    // queued, canceled before dispatch
		longTask(t, "rho_eos4", 2000, 2), // completes normally
	}
	sched, sys, compiled := hostWithTasks(t, 1, ws, arch.Options{Seed: 23})
	sched.EnqueueReady(0)
	sched.EnqueueReady(1)
	if _, err := sys.Engine.RunUntil(func() bool { return sched.TaskStarted(0) }, 50_000_000); err != nil {
		t.Fatal(err)
	}

	sched.Cancel(1) // still queued: discarded in place
	if sched.TaskStarted(1) {
		t.Fatal("queued cancel raced a dispatch")
	}
	sched.Cancel(0) // running: must drain off the core first
	sched.EnqueueReady(2)
	if _, err := sys.Engine.RunUntil(func() bool { return sched.Done() }, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !sched.TaskCanceled(0) || !sched.TaskCanceled(1) {
		t.Fatal("cancellations not recorded")
	}
	if sched.TaskStarted(1) {
		t.Fatal("canceled queued task was dispatched")
	}
	if !sched.TaskDone(2) {
		t.Fatal("survivor task did not complete")
	}
	// Only the survivor's results are contractual.
	for p := range compiled[2].Phases {
		if err := compiled[2].Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
			t.Errorf("task 2 (%s): %v", ws[2].Name, err)
		}
	}
}
