// Package osched implements the OS context-switch interaction described in
// §5: on a switch, the OS saves the five EM-SIMD dedicated registers with
// the rest of the context (after all pipelines, including Occamy's, are
// drained), releases the outgoing task's lanes, and on restore writes <OI>
// back via MSR — which re-triggers lane partitioning so the incoming task's
// phase behaviour immediately influences the plan.
package osched

import (
	"fmt"

	"occamy/internal/isa"
	"occamy/internal/lanemgr"
)

// Context is the saved EM-SIMD state of one task on one core: the four
// per-core dedicated registers of Table 1 (<AL> is shared and never saved).
type Context struct {
	OI       isa.OIPair
	Decision int
	VL       int
	Status   bool
}

// Save captures core c's EM-SIMD registers and releases its lanes back to
// the free pool. The caller is responsible for the §5 precondition that all
// pipelines are drained (in the simulator: coproc.Quiescent).
func Save(mgr *lanemgr.Manager, c int) (Context, error) {
	tbl := mgr.Tbl
	ctx := Context{
		OI:       tbl.OI(c),
		Decision: tbl.Decision(c),
		VL:       tbl.VL(c),
		Status:   tbl.Status(c),
	}
	if !tbl.TryReconfigure(c, 0) {
		return Context{}, fmt.Errorf("osched: releasing core %d lanes failed", c)
	}
	// The outgoing task no longer executes a phase: clear <OI> and let
	// the manager hand its lanes to the tasks that stay.
	mgr.OnOIWrite(c, isa.OIPair{})
	return ctx, nil
}

// Restore installs a saved context on core c. Per §5, restoring a non-zero
// <OI> is done via an MSR write, which triggers a fresh lane partition; the
// incoming task's monitor then picks up its <decision> at the next loop
// iteration and re-acquires lanes through the normal protocol. The saved
// <VL> is NOT forcibly re-granted — lanes may have been given away while the
// task was descheduled.
func Restore(mgr *lanemgr.Manager, c int, ctx Context) {
	if !ctx.OI.IsZero() {
		mgr.OnOIWrite(c, ctx.OI)
	} else {
		mgr.Tbl.SetOI(c, ctx.OI)
	}
}
