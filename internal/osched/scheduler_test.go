package osched

import (
	"testing"

	"occamy/internal/workload"
)

func mkTasks(t *testing.T, n int) []*workload.Workload {
	t.Helper()
	r := workload.NewRegistry()
	names := []string{"wsm51", "step3d_uv2", "set_vbc1", "rho_eos4", "fitLine2D", "sff2"}
	var out []*workload.Workload
	for i := 0; i < n; i++ {
		k := *r.Kernel(names[i%len(names)])
		k.Elems = 2500
		if k.Repeats > 8 {
			k.Repeats = 8
		}
		out = append(out, &workload.Workload{
			Name:   names[i%len(names)],
			Phases: []*workload.Kernel{&k},
		})
	}
	return out
}

func TestSchedulerOversubscribed(t *testing.T) {
	// Four tasks time-sliced over two cores: every task must finish with
	// correct results despite preemption, context switches and lane
	// repartitioning at every switch.
	ws := mkTasks(t, 4)
	sched, sys, compiled, err := Oversubscribed(ws, 2, 1200, 7, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Done() {
		t.Fatal("not all tasks completed")
	}
	if sched.Switches == 0 {
		t.Fatal("oversubscription must cause context switches")
	}
	for i, comp := range compiled {
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("task %d (%s): %v", i, ws[i].Name, err)
			}
		}
	}
}

func TestSchedulerPreemptionPreservesReductions(t *testing.T) {
	// Reductions are the hardest state to preserve: the accumulator lives
	// in a vector register that must survive save/restore and the VL
	// re-acquisition protocol.
	r := workload.NewRegistry()
	mk := func(name string, elems int) *workload.Workload {
		k := *r.Kernel(name)
		k.Elems = elems
		k.Repeats = 1
		return &workload.Workload{Name: name, Phases: []*workload.Kernel{&k}}
	}
	ws := []*workload.Workload{
		mk("dotProd", 4000),
		mk("normL2", 4000),
		mk("wsm51", 800),
	}
	_, sys, compiled, err := Oversubscribed(ws, 2, 1500, 3, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, comp := range compiled {
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("task %d (%s): %v", i, ws[i].Name, err)
			}
		}
	}
}

func TestSchedulerExactFitDoesNotSwitch(t *testing.T) {
	// Two tasks on two cores: nobody waits, so no preemption happens even
	// with a tiny slice.
	ws := mkTasks(t, 2)
	sched, _, _, err := Oversubscribed(ws, 2, 500, 7, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Switches != 0 {
		t.Fatalf("exact fit performed %d switches, want 0", sched.Switches)
	}
}

func TestSchedulerManyTasksSingleishSlice(t *testing.T) {
	// Six tasks, aggressive slicing: a stress of the save/acquire path.
	ws := mkTasks(t, 6)
	sched, sys, compiled, err := Oversubscribed(ws, 2, 1000, 11, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Switches < 4 {
		t.Fatalf("only %d switches", sched.Switches)
	}
	for i, comp := range compiled {
		for p := range comp.Phases {
			if err := comp.Phases[p].CheckResults(sys.Hier.Mem, 2e-3); err != nil {
				t.Errorf("task %d (%s): %v", i, ws[i].Name, err)
			}
		}
	}
}
