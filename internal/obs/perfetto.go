package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Well-known thread ids inside each core's Perfetto process. Every core of
// the simulated system is exported as one process (pid = core id) with a
// thread per unit.
const (
	// TidPhases carries the compiler-phase slices executed by the scalar
	// core.
	TidPhases = 0
	// TidEMSIMD carries reconfiguration drains and lane-manager events.
	TidEMSIMD = 1
)

// Event is one Chrome trace-event ("JSON Array Format"). Timestamps are
// simulated cycles; the trace viewer displays them as microseconds, so one
// display-µs equals one cycle.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// defaultEventCap bounds the sink's memory; runs that emit more events drop
// the excess and report it via Dropped.
const defaultEventCap = 1 << 20

// Perfetto buffers trace events and writes them as a Chrome trace-event
// JSON array that ui.perfetto.dev (or chrome://tracing) opens directly.
// Events are sorted by timestamp at write time, so producers may emit
// complete ("X") slices when they close rather than when they open. A nil
// *Perfetto ignores every Emit.
type Perfetto struct {
	events  []Event
	cap     int
	dropped uint64
}

// NewPerfetto returns a sink; maxEvents <= 0 selects the default cap.
func NewPerfetto(maxEvents int) *Perfetto {
	if maxEvents <= 0 {
		maxEvents = defaultEventCap
	}
	return &Perfetto{cap: maxEvents}
}

// Dropped reports how many events the cap discarded.
func (s *Perfetto) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Len reports the number of buffered events.
func (s *Perfetto) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

func (s *Perfetto) emit(e Event) {
	if s == nil {
		return
	}
	if len(s.events) >= s.cap {
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// EmitComplete emits an "X" (complete) slice covering [ts, ts+dur).
func (s *Perfetto) EmitComplete(pid, tid int, name string, ts, dur uint64, args map[string]any) {
	if dur == 0 {
		dur = 1 // zero-duration slices render invisibly
	}
	s.emit(Event{Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// EmitInstant emits an "i" (instant) event.
func (s *Perfetto) EmitInstant(pid, tid int, name string, ts uint64, args map[string]any) {
	if args == nil {
		args = map[string]any{}
	}
	// "s":"t" scopes the instant to its thread (required by the format).
	args["scope"] = "thread"
	s.emit(Event{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, Args: args})
}

// EmitCounter emits a "C" (counter) sample; series names the plotted track
// key inside the counter.
func (s *Perfetto) EmitCounter(pid int, name, series string, ts uint64, value float64) {
	s.emit(Event{Name: name, Ph: "C", Ts: ts, Pid: pid, Args: map[string]any{series: value}})
}

// EmitProcessName emits the "M" metadata naming process pid.
func (s *Perfetto) EmitProcessName(pid int, name string) {
	s.emit(Event{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
}

// EmitThreadName emits the "M" metadata naming thread (pid, tid).
func (s *Perfetto) EmitThreadName(pid, tid int, name string) {
	s.emit(Event{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Write writes the buffered events as an indented JSON array, sorted by
// timestamp (metadata first), and reports the number of events written.
func (s *Perfetto) Write(w io.Writer) (int, error) {
	if s == nil {
		_, err := io.WriteString(w, "[]\n")
		return 0, err
	}
	sorted := make([]Event, len(s.events))
	copy(sorted, s.events)
	sort.SliceStable(sorted, func(i, j int) bool {
		// Metadata events carry no timestamp; pin them to the front so
		// the ts sequence of real events stays monotonic.
		mi, mj := sorted[i].Ph == "M", sorted[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return sorted[i].Ts < sorted[j].Ts
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(sorted); err != nil {
		return 0, err
	}
	return len(sorted), nil
}

// ValidatePerfetto parses a trace-event JSON array and checks the contract
// the exporter promises: well-formed JSON, every event carrying ph/name/pid
// (and tid for slices and instants), and non-metadata timestamps that never
// run backwards. It is used by the golden tests and by
// `occamy-trace -check-perfetto` in CI.
func ValidatePerfetto(r io.Reader) error {
	var events []map[string]any
	dec := json.NewDecoder(r)
	if err := dec.Decode(&events); err != nil {
		return fmt.Errorf("perfetto: invalid JSON: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("perfetto: empty trace")
	}
	lastTs := -1.0
	for i, e := range events {
		ph, ok := e["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("perfetto: event %d: missing ph", i)
		}
		if name, ok := e["name"].(string); !ok || name == "" {
			return fmt.Errorf("perfetto: event %d: missing name", i)
		}
		if _, ok := e["pid"].(float64); !ok {
			return fmt.Errorf("perfetto: event %d: missing pid", i)
		}
		switch ph {
		case "M":
			continue // metadata: no timestamp contract
		case "X", "B", "E", "i":
			if _, ok := e["tid"].(float64); !ok {
				return fmt.Errorf("perfetto: event %d (%s): missing tid", i, ph)
			}
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			return fmt.Errorf("perfetto: event %d (%s): missing ts", i, ph)
		}
		if ts < lastTs {
			return fmt.Errorf("perfetto: event %d: ts %v < previous %v (not monotonic)", i, ts, lastTs)
		}
		lastTs = ts
		if ph == "X" {
			if _, ok := e["dur"].(float64); !ok {
				return fmt.Errorf("perfetto: event %d: complete slice missing dur", i)
			}
		}
		if ph == "C" {
			// A counter sample without a numeric series value renders as an
			// empty track; the exporters must never produce one.
			args, ok := e["args"].(map[string]any)
			if !ok || len(args) == 0 {
				return fmt.Errorf("perfetto: event %d: counter missing args", i)
			}
			numeric := false
			for _, v := range args {
				if _, ok := v.(float64); ok {
					numeric = true
					break
				}
			}
			if !numeric {
				return fmt.Errorf("perfetto: event %d: counter %q has no numeric series", i, e["name"])
			}
		}
	}
	return nil
}
