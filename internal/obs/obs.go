// Package obs is the simulator's cycle-attribution observability layer: a
// gem5-style top-down accounting of where every cycle of every core went,
// plus named latency histograms and a streaming Chrome/Perfetto trace-event
// sink (see perfetto.go).
//
// The design goal is zero cost when disabled: every hardware model holds a
// *Probe that is nil unless the run asked for observability, and every probe
// method is nil-receiver-safe, so instrumentation sites are a single inlined
// nil check on the hot path (guarded by BenchmarkObsOverhead at the repo
// root).
//
// # Cycle attribution
//
// During each cycle the instrumented components raise signals describing
// what they did (or what blocked them) for each core; the probe is
// registered as the last sim.Component, so at the end of the cycle it
// resolves the signal set into exactly one Bucket per core via a fixed
// priority order (the most SIMD-relevant explanation wins) and charges the
// cycle to it. By construction every charged cycle lands in exactly one
// bucket, which yields the conservation invariant the tests assert:
//
//	sum over buckets of core c == Result.Cores[c].Cycles
//
// Cycle indexing: Result reports a core's Cycles as the timestamp of its
// last active cycle, i.e. the number of cycles elapsed since reset. The
// probe therefore charges elapsed cycles 1..N (tick 0 is the reset cycle)
// and the trailing all-idle tail after a core completes is trimmed at
// collection (TrimTrailingIdle), making the invariant exact.
package obs

import "fmt"

// Sig is a set of per-cycle observation signals raised by the hardware
// models. Multiple signals may be raised for a core in one cycle; the
// classifier picks one bucket by priority.
type Sig uint16

// Signals, one bit each. See the Bucket they map to for semantics.
const (
	// SigScalar: the scalar core ticked while live (issued scalar work or
	// stalled on a scalar operand). The lowest-priority non-idle signal.
	SigScalar Sig = 1 << iota
	// SigVecIssue: the co-processor issued at least one SIMD compute or
	// memory micro-op for this core.
	SigVecIssue
	// SigRenameStall: the co-processor's renamer was blocked waiting for
	// free physical vector registers (the Figure 13 effect).
	SigRenameStall
	// SigDispatchFull: the scalar core could not transmit because the
	// co-processor instruction pool was full.
	SigDispatchFull
	// SigExeBUWait: a renamed SIMD compute instruction was waiting for
	// in-flight ExeBU results (data dependencies).
	SigExeBUWait
	// SigLSUWait: vector memory issue blocked on LHQ/STQ capacity or store
	// data, or scalar memory waited on vector-memory quiescence (MOB).
	SigLSUWait
	// SigMemBW: a vector memory access was rejected by the vector cache's
	// MSHRs — the memory system is bandwidth/fill-slot saturated.
	SigMemBW
	// SigDrain: an MSR <VL> sat at the pool head waiting for the pipeline
	// to drain, or other reconfiguration-protocol work was in progress.
	SigDrain
	// SigMonitor: partition-monitor work (MRS <decision>, MSR <OI>, or the
	// lane manager busy computing a plan) displaced other progress.
	SigMonitor
)

// Bucket is one slot of the top-down cycle taxonomy.
type Bucket uint8

// The taxonomy. Every charged cycle of every core lands in exactly one.
const (
	// BucketScalarIssue: the core was executing (or stalled inside) scalar
	// work with no SIMD activity or blockage to explain the cycle.
	BucketScalarIssue Bucket = iota
	// BucketVecIssue: SIMD work issued — the "useful" vector cycles.
	BucketVecIssue
	// BucketRenameStall: blocked renaming, waiting on physical registers.
	BucketRenameStall
	// BucketDispatchFull: transmit refused, co-processor pool full.
	BucketDispatchFull
	// BucketExeBUWait: waiting on in-flight execution-unit results.
	BucketExeBUWait
	// BucketLSUWait: waiting on load/store queue capacity or ordering.
	BucketLSUWait
	// BucketMemBW: waiting on memory bandwidth / fill slots.
	BucketMemBW
	// BucketDrainReconfig: the §4.2.2 reconfiguration drain.
	BucketDrainReconfig
	// BucketMonitor: §5 partition-monitor overhead.
	BucketMonitor
	// BucketIdle: nothing happened for this core (done, parked, or truly
	// idle).
	BucketIdle

	// NumBuckets is the taxonomy size.
	NumBuckets = int(BucketIdle) + 1
)

// bucketNames indexes Bucket; these are the stable report keys.
var bucketNames = [NumBuckets]string{
	"scalar-issue",
	"vec-issue",
	"rename-stall",
	"dispatch-full",
	"exebu-busy-wait",
	"lsu-wait",
	"mem-bandwidth",
	"drain-reconfig",
	"lane-monitor-overhead",
	"idle",
}

// String returns the bucket's stable report key.
func (b Bucket) String() string {
	if int(b) < NumBuckets {
		return bucketNames[b]
	}
	return "bucket?"
}

// BucketNames returns the taxonomy keys in Bucket order.
func BucketNames() []string {
	out := make([]string, NumBuckets)
	copy(out, bucketNames[:])
	return out
}

// priority resolves a signal set to one bucket: the first matching entry
// wins. The order encodes the top-down philosophy: reconfiguration drains
// and issued vector work explain a cycle before the various waits, and
// scalar progress is the fallback explanation for a live core.
var priority = []struct {
	sig Sig
	b   Bucket
}{
	{SigDrain, BucketDrainReconfig},
	{SigVecIssue, BucketVecIssue},
	{SigRenameStall, BucketRenameStall},
	{SigMemBW, BucketMemBW},
	{SigLSUWait, BucketLSUWait},
	{SigExeBUWait, BucketExeBUWait},
	{SigDispatchFull, BucketDispatchFull},
	{SigMonitor, BucketMonitor},
	{SigScalar, BucketScalarIssue},
}

// Classify maps one cycle's signal set to its bucket.
func Classify(m Sig) Bucket {
	for _, p := range priority {
		if m&p.sig != 0 {
			return p.b
		}
	}
	return BucketIdle
}

// Options selects what a run observes. The zero value disables everything.
type Options struct {
	// Attribution enables the per-cycle bucket accounting.
	Attribution bool
	// Sink, when non-nil, receives Chrome/Perfetto trace events.
	Sink *Perfetto
}

// Enabled reports whether a probe should be built at all.
func (o Options) Enabled() bool { return o.Attribution || o.Sink != nil }

// Probe is the per-system observability hub. A nil *Probe is the disabled
// state: every method is safe (and cheap) to call on it.
//
// The probe implements sim.Component and must be registered last, so its
// Tick sees the signals of the whole cycle.
type Probe struct {
	mask    []Sig
	buckets [][NumBuckets]uint64
	total   []uint64
	sink    *Perfetto
	hists   map[string]*Histogram
	// histNames preserves creation order for deterministic reports.
	histNames []string
}

// NewProbe returns an enabled probe for the given core count. sink may be
// nil (attribution only).
func NewProbe(cores int, sink *Perfetto) *Probe {
	if cores <= 0 {
		panic(fmt.Sprintf("obs: bad core count %d", cores))
	}
	return &Probe{
		mask:    make([]Sig, cores),
		buckets: make([][NumBuckets]uint64, cores),
		total:   make([]uint64, cores),
		sink:    sink,
		hists:   make(map[string]*Histogram),
	}
}

// Sink returns the probe's Perfetto sink (nil when disabled or absent).
func (p *Probe) Sink() *Perfetto {
	if p == nil {
		return nil
	}
	return p.sink
}

// Signal raises sig for core this cycle. Safe on a nil probe.
func (p *Probe) Signal(core int, sig Sig) {
	if p == nil {
		return
	}
	p.mask[core] |= sig
}

// Hist returns the named latency histogram, creating it on first use.
// Returns nil on a nil probe; a nil *Histogram ignores Observe, so
// components may cache the result unconditionally.
func (p *Probe) Hist(name string) *Histogram {
	if p == nil {
		return nil
	}
	h, ok := p.hists[name]
	if !ok {
		h = &Histogram{name: name}
		p.hists[name] = h
		p.histNames = append(p.histNames, name)
	}
	return h
}

// Histograms returns the registered histograms in creation order.
func (p *Probe) Histograms() []*Histogram {
	if p == nil {
		return nil
	}
	out := make([]*Histogram, 0, len(p.histNames))
	for _, n := range p.histNames {
		out = append(out, p.hists[n])
	}
	return out
}

// Name implements sim.Component.
func (p *Probe) Name() string { return "obs" }

// Tick implements sim.Component: resolve this cycle's signals into one
// bucket per core. Cycle 0 is the reset cycle and is not charged (see the
// package comment on cycle indexing).
func (p *Probe) Tick(now uint64) {
	if p == nil {
		return
	}
	if now == 0 {
		for c := range p.mask {
			p.mask[c] = 0
		}
		return
	}
	for c := range p.mask {
		p.buckets[c][Classify(p.mask[c])]++
		p.total[c]++
		p.mask[c] = 0
	}
}

// NextWake implements the sim engine's Sleeper capability (structurally —
// obs does not import sim): the probe never schedules work of its own, and
// charging a cycle whose signal mask is already settled is a pure accounting
// effect, so the probe is always quiescent.
func (p *Probe) NextWake(now uint64) (uint64, bool) {
	_ = now
	return neverWake, true
}

// neverWake mirrors sim.NeverWake without importing sim.
const neverWake = ^uint64(0)

// SkipTicks bulk-charges the n elided cycles starting at from: in a
// quiescent window every component re-raises the same signal set each cycle,
// so the mask accumulated since the last charge classifies every skipped
// cycle. Cycle 0 is the reset cycle and is never charged, mirroring Tick.
func (p *Probe) SkipTicks(from, n uint64) {
	if p == nil {
		return
	}
	if from == 0 && n > 0 {
		n--
	}
	for c := range p.mask {
		if n > 0 {
			p.buckets[c][Classify(p.mask[c])] += n
			p.total[c] += n
		}
		p.mask[c] = 0
	}
}

// ProbeState is a deep snapshot of the probe's accumulated accounting: the
// in-cycle signal masks, the per-core bucket charges, and every histogram's
// values. The Perfetto sink is NOT captured — trace emission is streaming
// I/O, and checkpointed runs are expected to disable it.
type ProbeState struct {
	mask    []Sig
	buckets [][NumBuckets]uint64
	total   []uint64
	hists   map[string]Histogram
}

// Snapshot captures the probe's accounting (nil on a nil probe).
func (p *Probe) Snapshot() *ProbeState {
	if p == nil {
		return nil
	}
	st := &ProbeState{
		mask:    append([]Sig(nil), p.mask...),
		buckets: append([][NumBuckets]uint64(nil), p.buckets...),
		total:   append([]uint64(nil), p.total...),
		hists:   make(map[string]Histogram, len(p.hists)),
	}
	for n, h := range p.hists {
		st.hists[n] = *h
	}
	return st
}

// Restore rewinds the probe to a Snapshot. Histograms created since the
// snapshot are reset to empty (their pointers, cached by components, stay
// valid); histograms named only in the snapshot are re-created.
func (p *Probe) Restore(st *ProbeState) {
	if p == nil || st == nil {
		return
	}
	copy(p.mask, st.mask)
	copy(p.buckets, st.buckets)
	copy(p.total, st.total)
	for n, h := range p.hists {
		if saved, ok := st.hists[n]; ok {
			name := h.name
			*h = saved
			h.name = name
		} else {
			*h = Histogram{name: h.name}
		}
	}
	for n, saved := range st.hists {
		if _, ok := p.hists[n]; !ok {
			h := p.Hist(n)
			name := h.name
			*h = saved
			h.name = name
		}
	}
}

// CoreAttribution is one core's final cycle accounting.
type CoreAttribution struct {
	// Buckets holds charged cycles, indexed by Bucket.
	Buckets [NumBuckets]uint64
	// Total is the number of charged cycles (== Sum() at all times — kept
	// separately so the conservation invariant is a real cross-check, not
	// a tautology).
	Total uint64
}

// CoreAttribution returns a copy of core c's accounting so far.
func (p *Probe) CoreAttribution(c int) CoreAttribution {
	if p == nil {
		return CoreAttribution{}
	}
	return CoreAttribution{Buckets: p.buckets[c], Total: p.total[c]}
}

// Cores returns the number of cores the probe observes (0 when disabled).
func (p *Probe) Cores() int {
	if p == nil {
		return 0
	}
	return len(p.mask)
}

// Sum adds up the buckets.
func (a CoreAttribution) Sum() uint64 {
	var s uint64
	for _, v := range a.Buckets {
		s += v
	}
	return s
}

// Get returns one bucket's count.
func (a CoreAttribution) Get(b Bucket) uint64 { return a.Buckets[b] }

// Frac returns one bucket's share of the total (0 when empty).
func (a CoreAttribution) Frac(b Bucket) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Buckets[b]) / float64(a.Total)
}

// TrimTrailingIdle discards the idle tail charged after the core finished,
// shrinking the attribution window to exactly target cycles. The engine runs
// until every core (and the co-processor backlog) completes, so non-critical
// cores accumulate guaranteed-idle cycles at the end; those belong to the
// makespan, not to the core's own execution-time accounting.
//
// It returns an error — leaving the attribution untouched — if the tail is
// not actually idle, which would indicate a signal-accounting bug in a
// hardware model.
func (a *CoreAttribution) TrimTrailingIdle(target uint64) error {
	if target > a.Total {
		return fmt.Errorf("obs: trim target %d exceeds charged cycles %d", target, a.Total)
	}
	trim := a.Total - target
	if trim > a.Buckets[BucketIdle] {
		return fmt.Errorf("obs: trailing %d cycles not idle (idle bucket holds %d)",
			trim, a.Buckets[BucketIdle])
	}
	a.Buckets[BucketIdle] -= trim
	a.Total = target
	return nil
}

// CheckConservation verifies the invariant that every charged cycle landed
// in exactly one bucket. It doubles as a correctness check on the hardware
// models' signal wiring.
func (a CoreAttribution) CheckConservation() error {
	if s := a.Sum(); s != a.Total {
		return fmt.Errorf("obs: buckets sum to %d, charged %d cycles", s, a.Total)
	}
	return nil
}
