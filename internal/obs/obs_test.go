package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestClassifyPriority(t *testing.T) {
	cases := []struct {
		name string
		sig  Sig
		want Bucket
	}{
		{"empty is idle", 0, BucketIdle},
		{"scalar alone", SigScalar, BucketScalarIssue},
		{"vec beats scalar", SigScalar | SigVecIssue, BucketVecIssue},
		{"drain beats everything", SigDrain | SigVecIssue | SigRenameStall | SigScalar, BucketDrainReconfig},
		{"vec beats rename", SigVecIssue | SigRenameStall, BucketVecIssue},
		{"rename beats membw", SigRenameStall | SigMemBW, BucketRenameStall},
		{"membw beats lsu", SigMemBW | SigLSUWait, BucketMemBW},
		{"lsu beats exebu", SigLSUWait | SigExeBUWait, BucketLSUWait},
		{"exebu beats dispatch", SigExeBUWait | SigDispatchFull, BucketExeBUWait},
		{"dispatch beats monitor", SigDispatchFull | SigMonitor, BucketDispatchFull},
		{"monitor beats scalar", SigMonitor | SigScalar, BucketMonitor},
	}
	for _, c := range cases {
		if got := Classify(c.sig); got != c.want {
			t.Errorf("%s: Classify(%b) = %v, want %v", c.name, c.sig, got, c.want)
		}
	}
}

func TestBucketNames(t *testing.T) {
	names := BucketNames()
	if len(names) != NumBuckets {
		t.Fatalf("got %d names, want %d", len(names), NumBuckets)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bucket %d has empty or duplicate name %q", i, n)
		}
		seen[n] = true
		if Bucket(i).String() != n {
			t.Errorf("Bucket(%d).String() = %q, want %q", i, Bucket(i).String(), n)
		}
	}
	for _, want := range []string{"scalar-issue", "vec-issue", "rename-stall", "dispatch-full",
		"exebu-busy-wait", "lsu-wait", "mem-bandwidth", "drain-reconfig",
		"lane-monitor-overhead", "idle"} {
		if !seen[want] {
			t.Errorf("taxonomy missing bucket %q", want)
		}
	}
}

func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	p.Signal(0, SigScalar)
	p.Tick(1)
	p.Hist("x").Observe(5)
	if p.Sink() != nil || p.Cores() != 0 || p.Histograms() != nil {
		t.Fatal("nil probe should report empty state")
	}
	a := p.CoreAttribution(0)
	if a.Sum() != 0 || a.Total != 0 {
		t.Fatal("nil probe attribution should be zero")
	}
}

func TestProbeChargesAndConserves(t *testing.T) {
	p := NewProbe(2, nil)
	p.Tick(0) // reset cycle: not charged
	for now := uint64(1); now <= 10; now++ {
		p.Signal(0, SigScalar)
		if now <= 4 {
			p.Signal(0, SigVecIssue)
		}
		// core 1 stays idle throughout
		p.Tick(now)
	}
	a0 := p.CoreAttribution(0)
	if a0.Total != 10 {
		t.Fatalf("core 0 charged %d cycles, want 10", a0.Total)
	}
	if got := a0.Get(BucketVecIssue); got != 4 {
		t.Errorf("vec-issue = %d, want 4", got)
	}
	if got := a0.Get(BucketScalarIssue); got != 6 {
		t.Errorf("scalar-issue = %d, want 6", got)
	}
	if err := a0.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	a1 := p.CoreAttribution(1)
	if a1.Get(BucketIdle) != 10 {
		t.Fatalf("idle core charged %v", a1.Buckets)
	}
	if a1.Frac(BucketIdle) != 1.0 {
		t.Errorf("idle frac = %v, want 1", a1.Frac(BucketIdle))
	}
}

func TestTrimTrailingIdle(t *testing.T) {
	a := CoreAttribution{Total: 100}
	a.Buckets[BucketVecIssue] = 60
	a.Buckets[BucketIdle] = 40
	if err := a.TrimTrailingIdle(70); err != nil {
		t.Fatal(err)
	}
	if a.Total != 70 || a.Buckets[BucketIdle] != 10 {
		t.Fatalf("after trim: total=%d idle=%d, want 70/10", a.Total, a.Buckets[BucketIdle])
	}
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Trimming more than the idle bucket holds must fail loudly.
	b := CoreAttribution{Total: 100}
	b.Buckets[BucketVecIssue] = 90
	b.Buckets[BucketIdle] = 10
	if err := b.TrimTrailingIdle(50); err == nil {
		t.Fatal("expected error trimming non-idle tail")
	}
	if b.Total != 100 {
		t.Fatal("failed trim must leave attribution untouched")
	}
	// Target above the charged total is a caller bug.
	if err := b.TrimTrailingIdle(200); err == nil {
		t.Fatal("expected error for target > total")
	}
}

func TestConservationDetectsCorruption(t *testing.T) {
	a := CoreAttribution{Total: 5}
	a.Buckets[BucketScalarIssue] = 4
	if err := a.CheckConservation(); err == nil {
		t.Fatal("expected conservation violation")
	}
}

func TestHistogram(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(3) // must not panic
	if nilH.Count() != 0 || nilH.Name() != "" || nilH.String() != "" {
		t.Fatal("nil histogram should be empty")
	}

	h := &Histogram{name: "dram.latency"}
	for _, v := range []uint64{0, 1, 2, 3, 200} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Min() != 0 || h.Max() != 200 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if want := 206.0 / 5; h.Mean() != want {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
	s := h.String()
	if !strings.Contains(s, "dram.latency") || !strings.Contains(s, "n=5") {
		t.Fatalf("unexpected render:\n%s", s)
	}
	// Bin bounds: value 3 has bit length 2 -> bin [2,3].
	if lo, hi := binBounds(2); lo != 2 || hi != 3 {
		t.Fatalf("binBounds(2) = [%d,%d], want [2,3]", lo, hi)
	}
	if lo, hi := binBounds(0); lo != 0 || hi != 0 {
		t.Fatalf("binBounds(0) = [%d,%d], want [0,0]", lo, hi)
	}
}

func TestProbeHistRegistry(t *testing.T) {
	p := NewProbe(1, nil)
	h1 := p.Hist("b.second")
	h2 := p.Hist("a.first")
	if p.Hist("b.second") != h1 {
		t.Fatal("Hist must return the same histogram for the same name")
	}
	hs := p.Histograms()
	if len(hs) != 2 || hs[0] != h1 || hs[1] != h2 {
		t.Fatal("Histograms must preserve creation order")
	}
}

func TestPerfettoRoundTrip(t *testing.T) {
	s := NewPerfetto(0)
	s.EmitProcessName(0, "core0 [fft]")
	s.EmitThreadName(0, TidPhases, "phases")
	// Emit out of ts order on purpose: Write must sort.
	s.EmitComplete(0, TidPhases, "vecA", 50, 25, map[string]any{"vl": 64})
	s.EmitInstant(0, TidEMSIMD, "drain-start", 10, nil)
	s.EmitCounter(0, "busy_lanes", "lanes", 20, 12)
	s.EmitComplete(0, TidPhases, "scalar", 0, 10, nil)

	var buf bytes.Buffer
	n, err := s.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != s.Len() || n != 6 {
		t.Fatalf("wrote %d events, buffered %d, want 6", n, s.Len())
	}
	if err := ValidatePerfetto(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-trip validation failed: %v\n%s", err, buf.String())
	}
}

func TestPerfettoNilAndCap(t *testing.T) {
	var s *Perfetto
	s.EmitComplete(0, 0, "x", 0, 1, nil)
	s.EmitInstant(0, 0, "x", 0, nil)
	s.EmitCounter(0, "x", "v", 0, 1)
	if s.Len() != 0 || s.Dropped() != 0 {
		t.Fatal("nil sink should be inert")
	}
	var buf bytes.Buffer
	if _, err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil sink wrote %q", buf.String())
	}

	capped := NewPerfetto(2)
	for i := 0; i < 5; i++ {
		capped.EmitInstant(0, 0, "e", uint64(i), nil)
	}
	if capped.Len() != 2 || capped.Dropped() != 3 {
		t.Fatalf("cap: len=%d dropped=%d, want 2/3", capped.Len(), capped.Dropped())
	}
}

func TestValidatePerfettoRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", `{`},
		{"empty", `[]`},
		{"missing ph", `[{"name":"a","pid":0,"tid":0,"ts":1}]`},
		{"missing name", `[{"ph":"i","pid":0,"tid":0,"ts":1}]`},
		{"missing pid", `[{"ph":"i","name":"a","tid":0,"ts":1}]`},
		{"missing tid", `[{"ph":"X","name":"a","pid":0,"ts":1,"dur":1}]`},
		{"missing ts", `[{"ph":"i","name":"a","pid":0,"tid":0}]`},
		{"missing dur", `[{"ph":"X","name":"a","pid":0,"tid":0,"ts":1}]`},
		{"backwards ts", `[{"ph":"i","name":"a","pid":0,"tid":0,"ts":5},{"ph":"i","name":"b","pid":0,"tid":0,"ts":4}]`},
	}
	for _, c := range cases {
		if err := ValidatePerfetto(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	good := `[{"ph":"M","name":"process_name","pid":0,"args":{"name":"core0"}},` +
		`{"ph":"i","name":"a","pid":0,"tid":0,"ts":1},` +
		`{"ph":"C","name":"busy","pid":0,"ts":2,"args":{"lanes":4}}]`
	if err := ValidatePerfetto(strings.NewReader(good)); err != nil {
		t.Errorf("good trace rejected: %v", err)
	}
}

func TestProbeSkipTicksConserves(t *testing.T) {
	p := NewProbe(2, nil)
	// A real warm-up cycle, then a skip with a settled stall mask: the
	// bulk charge must land every elided cycle in exactly one bucket.
	p.Signal(0, SigScalar)
	p.Signal(1, SigScalar|SigLSUWait)
	p.Tick(1)
	p.Signal(0, SigScalar|SigDispatchFull)
	p.Signal(1, SigScalar|SigLSUWait)
	p.SkipTicks(2, 40)
	a0, a1 := p.CoreAttribution(0), p.CoreAttribution(1)
	if err := a0.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := a1.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if a0.Total != 41 || a1.Total != 41 {
		t.Fatalf("totals = %d/%d, want 41 (1 ticked + 40 skipped)", a0.Total, a1.Total)
	}
	if got := a0.Get(BucketDispatchFull); got != 40 {
		t.Fatalf("core0 dispatch-full = %d, want 40", got)
	}
	if got := a1.Get(BucketLSUWait); got != 41 {
		t.Fatalf("core1 lsu-wait = %d, want 41", got)
	}
	// The mask must be consumed, like Tick does.
	p.Tick(42)
	if got := p.CoreAttribution(0).Get(BucketIdle); got != 1 {
		t.Fatalf("post-skip tick charged %d idle cycles, want 1", got)
	}
}

func TestProbeSkipTicksNeverChargesCycleZero(t *testing.T) {
	p := NewProbe(1, nil)
	p.Signal(0, SigScalar)
	p.SkipTicks(0, 10) // covers the reset cycle: only 9 chargeable
	a := p.CoreAttribution(0)
	if a.Total != 9 || a.Get(BucketScalarIssue) != 9 {
		t.Fatalf("attribution = %+v, want 9 scalar-issue cycles", a)
	}
	var nilProbe *Probe
	nilProbe.SkipTicks(0, 10) // nil-receiver safety, like every obs method
	if w, ok := nilProbe.NextWake(5); ok != true || w == 0 {
		t.Fatalf("nil probe NextWake = %d,%v", w, ok)
	}
}
