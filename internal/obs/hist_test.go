package obs

import (
	"math"
	"testing"
)

// TestQuantileEdgeCases pins the defined-value contract: empty histograms
// report 0, single-sample histograms report the sample, and q outside (0,1)
// reports the observed extremes — for every quantile anyone would ask for.
func TestQuantileEdgeCases(t *testing.T) {
	qs := []float64{-1, 0, 0.25, 0.5, 0.9, 0.99, 1, 2}

	t.Run("nil", func(t *testing.T) {
		var h *Histogram
		for _, q := range qs {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("nil.Quantile(%g) = %g, want 0", q, got)
			}
		}
	})

	t.Run("empty", func(t *testing.T) {
		h := &Histogram{name: "empty"}
		for _, q := range qs {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty.Quantile(%g) = %g, want 0", q, got)
			}
		}
	})

	for _, sample := range []uint64{0, 1, 2, 7, 1000, 1 << 40} {
		h := &Histogram{name: "single"}
		h.Observe(sample)
		for _, q := range qs {
			if got := h.Quantile(q); got != float64(sample) {
				t.Errorf("single(%d).Quantile(%g) = %g, want %d", sample, q, got, sample)
			}
		}
	}
}

// TestQuantileTable walks known distributions through the bucketed estimate.
func TestQuantileTable(t *testing.T) {
	cases := []struct {
		name    string
		samples []uint64
		q       float64
		min     float64 // inclusive bounds on the acceptable estimate
		max     float64
	}{
		{"two-min", []uint64{10, 1000}, 0, 10, 10},
		{"two-max", []uint64{10, 1000}, 1, 1000, 1000},
		{"two-median-between", []uint64{10, 1000}, 0.5, 10, 1000},
		{"uniform-p0", []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 0, 1, 1},
		{"uniform-p100", []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 1, 8, 8},
		// The true median of 1..8 is 4.5; the power-of-two estimate must
		// land inside the bucket range covering it.
		{"uniform-p50", []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 0.5, 2, 7},
		// All samples equal: every quantile is that value.
		{"constant", []uint64{64, 64, 64, 64}, 0.5, 64, 64},
		{"constant-p99", []uint64{64, 64, 64, 64}, 0.99, 64, 64},
		// Heavily skewed: p99 must reach into the tail's bucket.
		{"skewed-p99", append(make([]uint64, 0, 101), func() []uint64 {
			s := make([]uint64, 100)
			for i := range s {
				s[i] = 5
			}
			return append(s, 100000)
		}()...), 0.99, 5, 100000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &Histogram{name: tc.name}
			for _, v := range tc.samples {
				h.Observe(v)
			}
			got := h.Quantile(tc.q)
			if got < tc.min || got > tc.max {
				t.Errorf("Quantile(%g) = %g, want in [%g, %g]", tc.q, got, tc.min, tc.max)
			}
		})
	}
}

// TestQuantileMonotonic: the estimate must not decrease as q grows.
func TestQuantileMonotonic(t *testing.T) {
	h := &Histogram{name: "mono"}
	v := uint64(1)
	for i := 0; i < 200; i++ {
		h.Observe(v)
		v = v*3%4093 + 1
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g", q, got, prev)
		}
		prev = got
	}
}

// TestQuantileBins covers the raw-bins primitive used on windowed deltas.
func TestQuantileBins(t *testing.T) {
	var bins [NumBins]uint64
	if got := QuantileBins(&bins, 0.5); got != 0 {
		t.Errorf("empty bins: got %g, want 0", got)
	}
	// A single observation of 100 lands in bin 7 ([64, 127]); the estimate
	// must stay inside that bin.
	bins[7] = 1
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := QuantileBins(&bins, q)
		if got < 64 || got > 127 {
			t.Errorf("single-obs bins Quantile(%g) = %g, want in [64, 127]", q, got)
		}
	}
	// CopyBins on nil zeroes the destination.
	bins[7] = 1
	var h *Histogram
	h.CopyBins(&bins)
	for i, c := range bins {
		if c != 0 {
			t.Fatalf("nil CopyBins left bin %d = %d", i, c)
		}
	}
}

// TestQuantileMatchesBinsPlusClamp: the histogram method is the bins
// primitive clamped to [min, max] (except for the exact single-sample and
// q∈{0,1} shortcuts).
func TestQuantileMatchesBinsPlusClamp(t *testing.T) {
	h := &Histogram{name: "clamp"}
	for _, v := range []uint64{100, 120, 90, 70} {
		h.Observe(v)
	}
	var bins [NumBins]uint64
	h.CopyBins(&bins)
	raw := QuantileBins(&bins, 0.5)
	got := h.Quantile(0.5)
	want := math.Min(math.Max(raw, float64(h.Min())), float64(h.Max()))
	if got != want {
		t.Errorf("Quantile(0.5) = %g, want clamp(%g) = %g", got, raw, want)
	}
	if got < 70 || got > 120 {
		t.Errorf("Quantile(0.5) = %g outside observed [70, 120]", got)
	}
}
