package obs

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two-bucketed latency histogram (values are cycle
// counts). A nil *Histogram ignores Observe, so instrumentation sites can
// cache Probe.Hist results unconditionally.
type Histogram struct {
	name    string
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [65]uint64 // buckets[i] counts values with bit-length i (0 = value 0)
}

// Name returns the histogram's registry name (e.g. "dram.latency").
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// String renders the histogram as one compact report line plus a row per
// occupied power-of-two bin.
func (h *Histogram) String() string {
	if h == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.1f min=%d max=%d\n", h.name, h.count, h.Mean(), h.min, h.max)
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := binBounds(i)
		fmt.Fprintf(&b, "  [%6d, %6d]  %d\n", lo, hi, n)
	}
	return b.String()
}

// binBounds returns the inclusive value range of bin i.
func binBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}
