package obs

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two-bucketed latency histogram (values are cycle
// counts). A nil *Histogram ignores Observe, so instrumentation sites can
// cache Probe.Hist results unconditionally.
type Histogram struct {
	name    string
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [65]uint64 // buckets[i] counts values with bit-length i (0 = value 0)
}

// NumBins is the number of power-of-two bins: one per bit-length 0..64
// (bin 0 holds the value 0).
const NumBins = 65

// Name returns the histogram's registry name (e.g. "dram.latency").
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// RetireHistName is the registry name of core c's issue→retire latency
// histogram. It lives here because both the co-processor (the writer) and
// the telemetry sampler (the windowed reader) resolve the same histogram
// by name at setup time.
func RetireHistName(c int) string {
	return fmt.Sprintf("coproc.c%d.retire.latency", c)
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// CopyBins copies the power-of-two bin counts into dst without allocating —
// the telemetry sampler diffs consecutive copies into windowed views. A nil
// histogram zeroes dst.
func (h *Histogram) CopyBins(dst *[NumBins]uint64) {
	if h == nil {
		*dst = [NumBins]uint64{}
		return
	}
	*dst = h.buckets
}

// Quantile returns the q-quantile (q in [0, 1], clamped) of the observed
// values, estimated from the power-of-two bins and clamped to the observed
// [min, max]. The edge cases are defined, not garbage: an empty histogram
// reports 0, a single-observation histogram reports that observation
// exactly, and q <= 0 / q >= 1 report min / max exactly.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if h.count == 1 {
		return float64(h.min) // min == max == the sample
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	v := QuantileBins(&h.buckets, q)
	if v < float64(h.min) {
		v = float64(h.min)
	}
	if v > float64(h.max) {
		v = float64(h.max)
	}
	return v
}

// QuantileBins estimates the q-quantile from raw power-of-two bin counts —
// the allocation-free primitive behind Histogram.Quantile, also used on
// windowed bin deltas where no min/max is tracked. Empty bins report 0. The
// estimate interpolates linearly inside the bin holding rank q*(n-1), so a
// single observation lands on its bin's lower bound.
func QuantileBins(bins *[NumBins]uint64, q float64) float64 {
	var n uint64
	for _, c := range bins {
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n-1)
	cum := 0.0
	for i, c := range bins {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if rank < cum+fc {
			lo, hi := binBounds(i)
			frac := (rank - cum) / fc
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += fc
	}
	// Floating-point fallthrough: report the top occupied bin's upper bound.
	for i := NumBins - 1; i >= 0; i-- {
		if bins[i] > 0 {
			_, hi := binBounds(i)
			return float64(hi)
		}
	}
	return 0
}

// String renders the histogram as one compact report line plus a row per
// occupied power-of-two bin.
func (h *Histogram) String() string {
	if h == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.1f min=%d max=%d\n", h.name, h.count, h.Mean(), h.min, h.max)
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := binBounds(i)
		fmt.Fprintf(&b, "  [%6d, %6d]  %d\n", lo, hi, n)
	}
	return b.String()
}

// binBounds returns the inclusive value range of bin i.
func binBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}
