// Package trace exports a run's time-series data and event log in CSV and
// JSON, for plotting the paper's figures outside the simulator (Figure 2's
// per-1000-cycle lane curves, Figure 14(b)'s staircase, and the lane
// manager's decision history).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"occamy/internal/arch"
)

// Run captures everything exported for one simulation.
type Run struct {
	Arch     string      `json:"arch"`
	Schedule string      `json:"schedule"`
	Cycles   uint64      `json:"cycles"`
	Util     float64     `json:"simd_utilization"`
	Cores    []Core      `json:"cores"`
	Events   []LaneEvent `json:"lane_events"`
	// BucketCycles is the timeline sampling granularity.
	BucketCycles uint64 `json:"bucket_cycles"`
	// LanesPerGranule is the machine's 32-bit lanes per granule (ExeBU),
	// carried so AllocatedLanes reconstructs lane counts for the machine
	// that produced the trace. Zero (older exports) means the Table 4
	// default of 4.
	LanesPerGranule int `json:"lanes_per_granule,omitempty"`
}

// Core is one core's exported series and summary.
type Core struct {
	Workload        string    `json:"workload"`
	Cycles          uint64    `json:"cycles"`
	IssueRate       float64   `json:"issue_rate"`
	RenameStallFrac float64   `json:"rename_stall_frac"`
	PhaseCycles     []uint64  `json:"phase_cycles"`
	PhaseIssueRates []float64 `json:"phase_issue_rates"`
	// BusyLanes is the average busy-lane count per timeline bucket.
	BusyLanes []float64 `json:"busy_lanes"`
}

// LaneEvent mirrors coproc.LaneEvent for export.
type LaneEvent struct {
	Cycle     uint64 `json:"cycle"`
	Core      int    `json:"core"`
	Kind      string `json:"kind"`
	VL        int    `json:"vl"`
	Decisions []int  `json:"decisions"`
}

// Capture assembles the export structure from a completed system.
func Capture(sys *arch.System, res *arch.Result) *Run {
	run := &Run{
		Arch:            res.Arch.String(),
		Schedule:        res.Sched,
		Cycles:          res.Cycles,
		Util:            res.Utilization,
		BucketCycles:    1000,
		LanesPerGranule: sys.Cplx.LanesPerGranule(),
	}
	for c, cr := range res.Cores {
		run.Cores = append(run.Cores, Core{
			Workload:        cr.Workload,
			Cycles:          cr.Cycles,
			IssueRate:       cr.IssueRate,
			RenameStallFrac: cr.RenameStallFrac,
			PhaseCycles:     cr.PhaseCycles,
			PhaseIssueRates: cr.PhaseIssueRates,
			BusyLanes:       sys.Cplx.BusyTimeline(c).Points(),
		})
	}
	for _, e := range sys.Cplx.LaneEvents() {
		run.Events = append(run.Events, LaneEvent{
			Cycle: e.Cycle, Core: e.Core, Kind: e.Kind, VL: e.VL, Decisions: e.Decisions,
		})
	}
	return run
}

// WriteJSON writes the full export as indented JSON.
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTimelineCSV writes the per-bucket busy-lane series, one row per
// bucket: cycle, core0, core1, ...
func (r *Run) WriteTimelineCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"cycle"}
	maxLen := 0
	for c := range r.Cores {
		header = append(header, fmt.Sprintf("core%d_busy_lanes", c))
		if n := len(r.Cores[c].BusyLanes); n > maxLen {
			maxLen = n
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := []string{strconv.FormatUint(uint64(i)*r.BucketCycles, 10)}
		for c := range r.Cores {
			v := 0.0
			if i < len(r.Cores[c].BusyLanes) {
				v = r.Cores[c].BusyLanes[i]
			}
			row = append(row, strconv.FormatFloat(v, 'f', 2, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEventsCSV writes the lane-management log: cycle, core, kind, vl,
// decisions (space-separated).
func (r *Run) WriteEventsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle", "core", "kind", "vl", "decisions"}); err != nil {
		return err
	}
	for _, e := range r.Events {
		dec := ""
		for i, d := range e.Decisions {
			if i > 0 {
				dec += " "
			}
			dec += strconv.Itoa(d)
		}
		row := []string{
			strconv.FormatUint(e.Cycle, 10),
			strconv.Itoa(e.Core),
			e.Kind,
			strconv.Itoa(e.VL),
			dec,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// AllocatedLanes reconstructs the per-core allocated-lane staircase (the
// exact y-axis of Figure 2(e)) from the reconfiguration events: it returns,
// per core, a step series of (cycle, lanes).
func (r *Run) AllocatedLanes() [][]Step {
	lpg := r.LanesPerGranule
	if lpg == 0 {
		lpg = 4 // older exports predate the lanes_per_granule field
	}
	out := make([][]Step, len(r.Cores))
	for c := range out {
		out[c] = []Step{{Cycle: 0, Lanes: 0}}
	}
	for _, e := range r.Events {
		if e.Kind != "reconfigure" || e.Core >= len(out) {
			continue
		}
		out[e.Core] = append(out[e.Core], Step{Cycle: e.Cycle, Lanes: lpg * e.VL})
	}
	return out
}

// Step is one step of an allocated-lanes staircase.
type Step struct {
	Cycle uint64 `json:"cycle"`
	Lanes int    `json:"lanes"`
}
