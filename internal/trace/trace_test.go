package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"occamy/internal/arch"
	"occamy/internal/workload"
)

func capture(t *testing.T) *Run {
	t.Helper()
	r := workload.NewRegistry()
	sched := workload.MotivatingPair(r).Scaled(0.25)
	sys, err := arch.Build(arch.Occamy, sched, arch.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return Capture(sys, res)
}

func TestCaptureShape(t *testing.T) {
	run := capture(t)
	if run.Arch != "Occamy" || len(run.Cores) != 2 {
		t.Fatalf("run %+v", run)
	}
	if len(run.Events) == 0 {
		t.Fatal("elastic run must log lane events")
	}
	reconfigs := 0
	for _, e := range run.Events {
		if e.Kind == "reconfigure" {
			reconfigs++
			if e.VL < 0 || e.VL > 8 {
				t.Fatalf("event VL %d out of range", e.VL)
			}
		}
		if len(e.Decisions) != 2 {
			t.Fatalf("event decisions %v", e.Decisions)
		}
	}
	if reconfigs == 0 {
		t.Fatal("no reconfigure events")
	}
	if len(run.Cores[1].BusyLanes) == 0 {
		t.Fatal("busy-lane series empty")
	}
}

func TestEventsAreCycleOrdered(t *testing.T) {
	run := capture(t)
	for i := 1; i < len(run.Events); i++ {
		if run.Events[i].Cycle < run.Events[i-1].Cycle {
			t.Fatal("events out of order")
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	run := capture(t)
	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != run.Cycles || len(back.Events) != len(run.Events) {
		t.Fatal("JSON round trip lost data")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	run := capture(t)
	var buf bytes.Buffer
	if err := run.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,core0_busy_lanes,core1_busy_lanes" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("only %d rows", len(lines))
	}
	if !strings.HasPrefix(lines[2], "1000,") {
		t.Fatalf("second data row should start at cycle 1000: %q", lines[2])
	}
}

func TestWriteEventsCSV(t *testing.T) {
	run := capture(t)
	var buf bytes.Buffer
	if err := run.WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "reconfigure") || !strings.Contains(out, "repartition") {
		t.Fatalf("events CSV missing kinds:\n%s", out)
	}
}

func TestAllocatedLanesStaircase(t *testing.T) {
	run := capture(t)
	stairs := run.AllocatedLanes()
	if len(stairs) != 2 {
		t.Fatal("want a staircase per core")
	}
	// The compute core must at some point hold more than a private half
	// (16 lanes) — the elastic gain the staircase visualizes.
	peak := 0
	for _, s := range stairs[1] {
		if s.Lanes > peak {
			peak = s.Lanes
		}
	}
	if peak <= 16 {
		t.Fatalf("compute core never exceeded the private split: peak %d", peak)
	}
	for _, s := range stairs[0] {
		if s.Lanes%4 != 0 {
			t.Fatalf("lane counts must be whole granules, got %d", s.Lanes)
		}
	}
}
