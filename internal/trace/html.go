package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"occamy/internal/htmlreport"
)

// ReadJSON decodes a Run previously written by WriteJSON (the .json file a
// -trace run leaves behind).
func ReadJSON(r io.Reader) (*Run, error) {
	var run Run
	dec := json.NewDecoder(r)
	if err := dec.Decode(&run); err != nil {
		return nil, fmt.Errorf("trace: decoding run: %w", err)
	}
	if run.BucketCycles == 0 {
		run.BucketCycles = 1000
	}
	if len(run.Cores) == 0 {
		return nil, fmt.Errorf("trace: run has no cores (not a trace export?)")
	}
	return &run, nil
}

// AddSections renders this run's charts and logs into an HTML page: the
// busy-lane timeline (the Figure 2(c)/(d) view), the allocated-lanes
// staircase reconstructed from reconfiguration events (Figure 2(e)), the
// per-phase issue-rate table (Figure 2(f)) and the lane-management event log.
func (r *Run) AddSections(page *htmlreport.Page) {
	title := fmt.Sprintf("%s on %s", r.Schedule, r.Arch)
	page.Section(title,
		htmlreport.P(fmt.Sprintf(
			"%d cycles, SIMD utilization %.1f%%; %d lane-management events.",
			r.Cycles, 100*r.Util, len(r.Events))),
		r.busyChart(),
		r.lanesChart(),
		htmlreport.PreTable(r.phaseTable()),
		htmlreport.PreTable(r.eventLog(200)),
	)
}

// busyChart renders the per-bucket busy-lane series.
func (r *Run) busyChart() string {
	series := make([]htmlreport.Series, len(r.Cores))
	for c, core := range r.Cores {
		series[c] = htmlreport.Series{
			Name:   fmt.Sprintf("core%d %s", c, core.Workload),
			Values: core.BusyLanes,
		}
	}
	return htmlreport.LineChart("Busy SIMD lanes over time", series,
		fmt.Sprintf("time (buckets of %d cycles)", r.BucketCycles), 1)
}

// lanesChart renders the allocated-lane staircase (empty string when the run
// has no reconfiguration events — the static architectures).
func (r *Run) lanesChart() string {
	stair := r.AllocatedLanes()
	var steps [][]htmlreport.Step
	names := make([]string, 0, len(stair))
	maxLanes, events := 0.0, 0
	for c, ss := range stair {
		conv := make([]htmlreport.Step, 0, len(ss))
		for _, s := range ss {
			conv = append(conv, htmlreport.Step{X: float64(s.Cycle), Y: float64(s.Lanes)})
			if float64(s.Lanes) > maxLanes {
				maxLanes = float64(s.Lanes)
			}
			if s.Cycle > 0 {
				events++
			}
		}
		steps = append(steps, conv)
		names = append(names, fmt.Sprintf("core%d %s", c, r.Cores[c].Workload))
	}
	if events == 0 {
		return htmlreport.P("No reconfiguration events: the vector lengths were fixed for the whole run.")
	}
	return htmlreport.StepChart("Allocated SIMD lanes", names, steps,
		float64(r.Cycles), maxLanes, "cycle")
}

// phaseTable renders each core's per-phase cycles and issue rates.
func (r *Run) phaseTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-24s %-7s %12s %10s\n", "core", "workload", "phase", "cycles", "issue/cy")
	for c, core := range r.Cores {
		for p := range core.PhaseCycles {
			rate := 0.0
			if p < len(core.PhaseIssueRates) {
				rate = core.PhaseIssueRates[p]
			}
			fmt.Fprintf(&b, "%-6d %-24s %-7d %12d %10.2f\n",
				c, core.Workload, p, core.PhaseCycles[p], rate)
		}
		fmt.Fprintf(&b, "%-6d %-24s %-7s %12d %10.2f\n",
			c, core.Workload, "all", core.Cycles, core.IssueRate)
	}
	return b.String()
}

// eventLog renders up to max lane-management events (head and tail when the
// log is longer).
func (r *Run) eventLog(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %-5s %-14s %4s  %s\n", "cycle", "core", "event", "vl", "decisions")
	write := func(e LaneEvent) {
		dec := ""
		if len(e.Decisions) > 0 {
			dec = fmt.Sprint(e.Decisions)
		}
		fmt.Fprintf(&b, "%10d %-5d %-14s %4d  %s\n", e.Cycle, e.Core, e.Kind, e.VL, dec)
	}
	if len(r.Events) <= max {
		for _, e := range r.Events {
			write(e)
		}
		return b.String()
	}
	head := max / 2
	tail := max - head
	for _, e := range r.Events[:head] {
		write(e)
	}
	fmt.Fprintf(&b, "... %d events elided ...\n", len(r.Events)-max)
	for _, e := range r.Events[len(r.Events)-tail:] {
		write(e)
	}
	return b.String()
}
