package trace

import (
	"bytes"
	"strings"
	"testing"

	"occamy/internal/htmlreport"
)

// TestReadJSONRoundTrip decodes what WriteJSON produced and compares the
// load-bearing fields.
func TestReadJSONRoundTrip(t *testing.T) {
	run := capture(t)
	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch != run.Arch || got.Schedule != run.Schedule || got.Cycles != run.Cycles {
		t.Fatalf("header mismatch: %+v vs %+v", got, run)
	}
	if len(got.Cores) != len(run.Cores) || len(got.Events) != len(run.Events) {
		t.Fatalf("lengths: %d/%d cores, %d/%d events",
			len(got.Cores), len(run.Cores), len(got.Events), len(run.Events))
	}
	if got.BucketCycles != run.BucketCycles {
		t.Fatalf("bucket cycles %d vs %d", got.BucketCycles, run.BucketCycles)
	}
}

// TestReadJSONRejectsGarbage pins the error paths.
func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"arch":"Occamy"}`)); err == nil {
		t.Fatal("core-less export accepted")
	}
}

// TestReadJSONDefaultsBucket pins the legacy-file default.
func TestReadJSONDefaultsBucket(t *testing.T) {
	got, err := ReadJSON(strings.NewReader(
		`{"arch":"Private","schedule":"x","cores":[{"workload":"w"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.BucketCycles != 1000 {
		t.Fatalf("bucket default = %d", got.BucketCycles)
	}
}

// TestAddSectionsElastic renders a reconfiguring run: the page must contain
// the busy-lane chart, the staircase and the event log.
func TestAddSectionsElastic(t *testing.T) {
	run := capture(t)
	page := htmlreport.New("test")
	run.AddSections(page)
	var buf bytes.Buffer
	if err := page.Write(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"Busy SIMD lanes over time",
		"Allocated SIMD lanes",
		"reconfigure",
		run.Cores[0].Workload,
		"<svg",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

// TestAddSectionsStatic renders a run with no reconfigurations: the
// staircase is replaced by a note and nothing panics.
func TestAddSectionsStatic(t *testing.T) {
	run := capture(t)
	run.Events = nil // as a Private/VLS trace would be
	page := htmlreport.New("test")
	run.AddSections(page)
	var buf bytes.Buffer
	if err := page.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No reconfiguration events") {
		t.Fatal("static run note missing")
	}
}

// TestEventLogElision pins the head/tail elision of long event logs.
func TestEventLogElision(t *testing.T) {
	run := capture(t)
	for len(run.Events) < 300 {
		run.Events = append(run.Events, run.Events...)
	}
	logText := run.eventLog(200)
	if !strings.Contains(logText, "events elided") {
		t.Fatal("long log not elided")
	}
	lines := strings.Count(logText, "\n")
	if lines > 203 {
		t.Fatalf("elided log still has %d lines", lines)
	}
	short := run.eventLog(len(run.Events) + 1)
	if strings.Contains(short, "elided") {
		t.Fatal("short log elided")
	}
}

// TestPhaseTableRows pins that every phase and a per-core total appear.
func TestPhaseTableRows(t *testing.T) {
	run := capture(t)
	table := run.phaseTable()
	wantRows := 1 // header
	for _, c := range run.Cores {
		wantRows += len(c.PhaseCycles) + 1
	}
	if got := strings.Count(table, "\n"); got != wantRows {
		t.Fatalf("table rows = %d, want %d\n%s", got, wantRows, table)
	}
	if !strings.Contains(table, "all") {
		t.Fatal("per-core total row missing")
	}
}
