// Package cpu models the scalar CPU cores of Table 4: 8-issue superscalar
// pipelines (TaiShan V110-class) that execute scalar instructions locally
// and transmit SVE and EM-SIMD instructions to the shared co-processor in
// program order (§4.1.1).
//
// Simplifications relative to a full out-of-order core, and why they are
// safe for the paper's experiments:
//
//   - The core is in-order with register scoreboarding and perfect
//     prediction of loop branches. The evaluation's loops are short,
//     perfectly predictable streams, so the OoO front end of the paper's
//     core contributes no reordering that matters here; transmitting at
//     execute equals the paper's transmit-at-retire because an in-order
//     core never squashes.
//   - Speculative transmission of MRS <decision> (§4.1.1) is modeled as a
//     combinational read of the resource table with the EM-SIMD latency —
//     the paper's motivation (the monitor must not wait for the SIMD
//     backlog) is preserved, and correctness under stale reads is the
//     compiler's obligation, exactly as in §6.4.
//   - The Memory Ordering Buffer is a per-core "vector memory quiescent"
//     check: scalar memory operations wait until the co-processor has no
//     outstanding vector accesses for this core (Table 2's conservative
//     ordering; scalar and vector code never interleave finer than a phase
//     in generated programs).
package cpu

import (
	"fmt"
	"math"

	"occamy/internal/coproc"
	"occamy/internal/isa"
	"occamy/internal/mem"
	"occamy/internal/obs"
	"occamy/internal/sim"
)

// Config sets the scalar core parameters.
type Config struct {
	Width     int    // issue width (Table 4: 8)
	IntLat    uint64 // simple integer ops
	FPLat     uint64 // scalar FP ops
	EMSIMDLat uint64 // combinational system-register reads
}

// DefaultConfig returns the Table 4 scalar core. IntLat of zero means
// integer results forward within the same issue group: together with the
// 8-wide front end this approximates the paper's 8-issue out-of-order core,
// whose loop-overhead instructions never gate the vector pipeline.
func DefaultConfig() Config {
	return Config{Width: 8, IntLat: 0, FPLat: 4, EMSIMDLat: 0}
}

const notReady = math.MaxUint64

// CoprocPort is the CPU-facing surface of the co-processor: everything the
// scalar pipeline needs from the vector side. A flat machine wires the
// *coproc.Coproc itself; a clustered machine wires the routed
// *coproc.Complex, which stamps fabric delays and redirects migrated cores —
// the scalar core cannot tell the difference.
type CoprocPort interface {
	// Transmit enqueues an instruction into the core's instruction pool.
	Transmit(coproc.XInst) coproc.TransmitStatus
	// PoolFull mirrors Transmit's refusal predicate for the skip-ahead scan.
	PoolFull(core int) bool
	// VL is the core's configured vector length in granules.
	VL(core int) int
	// ReadSysNow reads a system register combinationally (§4.1.1).
	ReadSysNow(core int, sys isa.SysReg) uint32
	// MemInFlight counts outstanding vector memory operations (MOB gate).
	MemInFlight(core int, now uint64) int
	// StripBoundary lands pending width revocations and migrations; false
	// means the core must hold the strip boundary (drain in progress).
	StripBoundary(core int) bool
}

// Core is one scalar CPU core executing a compiled program.
type Core struct {
	id    int
	cfg   Config
	prog  *isa.Program
	cp    CoprocPort
	l1    mem.Port
	data  *mem.Memory
	stats *sim.Stats

	pc     int
	x      [isa.NumXRegs]int64
	f      [isa.NumFRegs]float32
	xReady [isa.NumXRegs]uint64
	fReady [isa.NumFRegs]uint64
	halted bool
	parked bool

	// tailActive is the transmit-side predicate set by VWHILE; -1 means
	// full vector length.
	tailActive int

	// phase tracks the current compiler phase for attribution. The counter
	// cells are resolved once (Stats.Counter pointers are stable across
	// Restore) so the per-cycle bumps are a pointer add, not a map lookup —
	// the string-keyed form showed up as ~16% of sweep time in profiles.
	phase             int
	phaseCycleCells   []*uint64
	phaseEnteredCells []*uint64
	phaseCyclePool    []*uint64
	phaseEnteredPool  []*uint64
	poolFullCell      *uint64
	mobStallCell      *uint64
	haltCycleCell     *uint64
	reconfigCell      *uint64
	monitorCell       *uint64
	haltCycle         uint64

	// probe is the observability hook; nil when the run is not observed
	// (every obs method is nil-receiver-safe). phaseStart is the cycle the
	// current phase's Perfetto slice opened at.
	probe      *obs.Probe
	phaseStart uint64

	// insts counts executed instructions for the forward-progress
	// watchdog; elems counts vector elements offered at strip boundaries
	// (each RdElems adds the sampled width), the work measure of the
	// degradation experiment — a proxy that overshoots the trip count by at
	// most one strip per pass. Plain fields, not Stats counters: the
	// registry must stay bit-identical whether or not anyone reads them.
	insts uint64
	elems uint64
}

// SetProbe attaches the observability probe (nil disables).
func (c *Core) SetProbe(p *obs.Probe) { c.probe = p }

// New builds a core. l1 is the core's private L1D port; data the functional
// memory.
func New(id int, cfg Config, prog *isa.Program, cp CoprocPort, l1 mem.Port, data *mem.Memory, stats *sim.Stats) *Core {
	c := &Core{
		id: id, cfg: cfg, prog: prog, cp: cp, l1: l1, data: data, stats: stats,
		tailActive: -1, phase: -1,
	}
	// Resolve every counter cell the execute path can touch: the tick path
	// must stay allocation-free, so no fmt.Sprintf after construction, and
	// Stats creates a counter on first touch — on a large machine a core's
	// first pool-full stall can land arbitrarily deep into the run, inside a
	// window the zero-allocation contract measures.
	c.buildPhaseNames(prog)
	c.poolFullCell = stats.Counter(fmt.Sprintf("cpu%d.pool_full_stall", id))
	c.mobStallCell = stats.Counter(fmt.Sprintf("cpu%d.mob_stall", id))
	stats.Counter(fmt.Sprintf("cpu%d.rename_block_stall", id))
	c.haltCycleCell = stats.Counter(fmt.Sprintf("cpu%d.halt_cycle", id))
	c.reconfigCell = stats.Counter(fmt.Sprintf("cpu%d.reconfig_insts", id))
	c.monitorCell = stats.Counter(fmt.Sprintf("cpu%d.monitor_insts", id))
	return c
}

// buildPhaseNames (re)installs the per-phase counter cells for prog; indexed
// by phase+1 so the pre-phase prologue (phase -1) has a slot. The cells depend
// only on the core id and the phase index, so they live in a grown-once pool:
// swapping in a program no larger than any already seen — a context switch
// between an OS scheduler's tasks — allocates nothing.
func (c *Core) buildPhaseNames(prog *isa.Program) {
	n := prog.NumPhases + 1
	c.PrewarmPhases(prog.NumPhases)
	c.phaseCycleCells = c.phaseCyclePool[:n]
	c.phaseEnteredCells = c.phaseEnteredPool[:n]
}

// PrewarmPhases extends the phase counter-cell pool up to numPhases.
// Schedulers that swap precompiled tasks onto the core call this at
// registration time so no dispatch on the tick path ever builds a name.
func (c *Core) PrewarmPhases(numPhases int) {
	for p := len(c.phaseCyclePool); p <= numPhases; p++ {
		// Materialized eagerly: a late phase is first entered mid-run,
		// and creating its counter then would allocate on the tick path.
		cn := c.stats.Counter(fmt.Sprintf("cpu%d.phase%d.cycles", c.id, p-1))
		en := c.stats.Counter(fmt.Sprintf("cpu%d.phase%d.entered_cycle", c.id, p-1))
		c.phaseCyclePool = append(c.phaseCyclePool, cn)
		c.phaseEnteredPool = append(c.phaseEnteredPool, en)
	}
}

// Halted reports whether the program has executed HALT.
func (c *Core) Halted() bool { return c.halted }

// HaltCycle returns the cycle at which HALT executed.
func (c *Core) HaltCycle() uint64 { return c.haltCycle }

// PC returns the current program counter (diagnostics).
func (c *Core) PC() int { return c.pc }

// X returns scalar register r (tests).
func (c *Core) X(r isa.Reg) int64 { return c.x[r] }

// F returns scalar FP register r (tests).
func (c *Core) F(r isa.Reg) float32 { return c.f[r] }

// HandleResult is the coproc.ScalarResponder for this core.
func (c *Core) HandleResult(core int, reg isa.Reg, val uint64, ready uint64) {
	if core != c.id {
		return
	}
	c.x[reg] = int64(val)
	c.xReady[reg] = ready
}

// Name implements sim.Component.
func (c *Core) Name() string { return fmt.Sprintf("cpu%d", c.id) }

// Tick executes up to Width instructions in order; it stops at the first
// hazard (operand not ready, memory reject, full co-processor pool).
func (c *Core) Tick(now uint64) {
	if c.halted || c.parked {
		return
	}
	*c.phaseCycleCells[c.phase+1]++
	// A live core's fallback explanation for this cycle is scalar work;
	// more specific signals raised below take priority in the classifier.
	c.probe.Signal(c.id, obs.SigScalar)
	for slot := 0; slot < c.cfg.Width && !c.halted; slot++ {
		in := c.prog.AtPtr(c.pc)
		if in.Phase != c.phase {
			c.closePhaseSlice(now)
			c.phase = in.Phase
			c.phaseStart = now
			*c.phaseEnteredCells[c.phase+1] = now
		}
		if !c.execute(in, now) {
			return
		}
		c.insts++
	}
}

// Progress implements sim.ProgressReporter: retired-instruction count for
// the forward-progress watchdog.
func (c *Core) Progress() uint64 { return c.insts }

// Elems returns how many vector elements the program has advanced past
// (INCVL steps under the live vector length) — the throughput numerator of
// the degradation experiment.
func (c *Core) Elems() uint64 { return c.elems }

// closePhaseSlice emits the Perfetto complete-slice for the phase that just
// ended (no-op without a sink or before the first phase).
func (c *Core) closePhaseSlice(now uint64) {
	s := c.probe.Sink()
	if s == nil || c.phase < 0 {
		return
	}
	s.EmitComplete(c.id, obs.TidPhases, fmt.Sprintf("phase %d", c.phase),
		c.phaseStart, now-c.phaseStart, nil)
}

// xr reads scalar register r honouring XZR.
func (c *Core) xr(r isa.Reg) int64 {
	if r == isa.XZR || r == isa.RegNone {
		return 0
	}
	return c.x[r]
}

func (c *Core) xw(r isa.Reg, v int64, ready uint64) {
	if r == isa.XZR || r == isa.RegNone {
		return
	}
	c.x[r] = v
	c.xReady[r] = ready
}

func (c *Core) xReadyAt(r isa.Reg, now uint64) bool {
	if r == isa.XZR || r == isa.RegNone {
		return true
	}
	return c.xReady[r] <= now
}

func (c *Core) fReadyAt(r isa.Reg, now uint64) bool {
	if r == isa.RegNone {
		return true
	}
	return c.fReady[r] <= now
}

// execute runs one instruction; it returns false when the instruction
// stalled (pc unchanged) and the cycle's issue must stop.
func (c *Core) execute(in *isa.Inst, now uint64) bool {
	op := in.Op
	switch {
	case op.Class() == isa.ClassSVE:
		return c.transmitVector(in, now)
	case op.IsEMSIMD():
		return c.execEMSIMD(in, now)
	}

	switch op {
	case isa.OpNop:
	case isa.OpHalt:
		c.halted = true
		c.haltCycle = now
		c.closePhaseSlice(now)
		*c.haltCycleCell = now
		return true
	case isa.OpMovI:
		c.xw(in.Dst, in.Imm, now+c.cfg.IntLat)
	case isa.OpMov:
		if !c.xReadyAt(in.Src1, now) {
			return false
		}
		c.xw(in.Dst, c.xr(in.Src1), now+c.cfg.IntLat)
	case isa.OpAddI, isa.OpSubI, isa.OpMulI:
		if !c.xReadyAt(in.Src1, now) {
			return false
		}
		v := c.xr(in.Src1)
		switch op {
		case isa.OpAddI:
			v += in.Imm
		case isa.OpSubI:
			v -= in.Imm
		case isa.OpMulI:
			v *= in.Imm
		}
		c.xw(in.Dst, v, now+c.cfg.IntLat)
	case isa.OpAdd, isa.OpSub:
		if !c.xReadyAt(in.Src1, now) || !c.xReadyAt(in.Src2, now) {
			return false
		}
		v := c.xr(in.Src1)
		if op == isa.OpAdd {
			v += c.xr(in.Src2)
		} else {
			v -= c.xr(in.Src2)
		}
		c.xw(in.Dst, v, now+c.cfg.IntLat)
	case isa.OpB, isa.OpBLT, isa.OpBGE, isa.OpBEQ, isa.OpBNE, isa.OpBEQI, isa.OpBNEI:
		return c.execBranch(in, now)
	case isa.OpRdElems:
		// The strip boundary: any pending fault revocation of this core's
		// vector length lands here, never mid-strip (a width change between
		// the sampled bound and the body's stores would strand elements).
		// A clustered machine also completes tenant migrations here; while
		// one is draining the boundary is withheld and the core waits.
		if !c.cp.StripBoundary(c.id) {
			c.probe.Signal(c.id, obs.SigDrain)
			return false
		}
		n := int64(coproc.LanesPerGranule * c.cp.VL(c.id))
		if n == 0 {
			// A fixed-mode binary whose lanes are all revoked can never
			// advance its strip loop: stall here (a busy spin would look
			// like forward progress) so the watchdog names this core.
			return false
		}
		c.xw(in.Dst, n, now+c.cfg.IntLat)
		c.elems += uint64(n)
	case isa.OpIncVL:
		if !c.xReadyAt(in.Src1, now) {
			return false
		}
		step := in.Imm * int64(coproc.LanesPerGranule*c.cp.VL(c.id))
		c.xw(in.Dst, c.xr(in.Src1)+step, now+c.cfg.IntLat)
	case isa.OpVWhile:
		return c.execVWhile(in, now)
	case isa.OpSLoadF, isa.OpSStoreF:
		return c.execScalarMem(in, now)
	case isa.OpSFMovI:
		c.f[in.Dst] = in.FImm
		c.fReady[in.Dst] = now + c.cfg.FPLat
	case isa.OpSFAdd, isa.OpSFSub, isa.OpSFMul, isa.OpSFDiv, isa.OpSFMax, isa.OpSFMin, isa.OpSFMla:
		return c.execScalarFP(in, now)
	case isa.OpSIAdd, isa.OpSISub, isa.OpSIMul, isa.OpSIAnd, isa.OpSIOr, isa.OpSIXor,
		isa.OpSIShl, isa.OpSIShr, isa.OpSIMax, isa.OpSIMin:
		if !c.fReadyAt(in.Src1, now) || !c.fReadyAt(in.Src2, now) {
			return false
		}
		v, ok := isa.IntBinFn(op, c.f[in.Src1], c.f[in.Src2])
		if !ok {
			panic("cpu: bad scalar integer op")
		}
		c.f[in.Dst] = v
		c.fReady[in.Dst] = now + c.cfg.IntLat + 1
		c.pc++
		return true
	case isa.OpSFAbs, isa.OpSFNeg, isa.OpSFSqrt:
		if !c.fReadyAt(in.Src1, now) {
			return false
		}
		v := c.f[in.Src1]
		switch op {
		case isa.OpSFAbs:
			v = float32(math.Abs(float64(v)))
		case isa.OpSFNeg:
			v = -v
		case isa.OpSFSqrt:
			v = float32(math.Sqrt(float64(v)))
		}
		c.f[in.Dst] = v
		c.fReady[in.Dst] = now + c.cfg.FPLat
	default:
		panic(fmt.Sprintf("cpu: unimplemented opcode %s", op))
	}
	c.pc++
	return true
}

func (c *Core) execBranch(in *isa.Inst, now uint64) bool {
	if !c.xReadyAt(in.Src1, now) {
		return false
	}
	taken := false
	switch in.Op {
	case isa.OpB:
		taken = true
	case isa.OpBEQI:
		taken = c.xr(in.Src1) == in.Imm
	case isa.OpBNEI:
		taken = c.xr(in.Src1) != in.Imm
	default:
		if !c.xReadyAt(in.Src2, now) {
			return false
		}
		a, b := c.xr(in.Src1), c.xr(in.Src2)
		switch in.Op {
		case isa.OpBLT:
			taken = a < b
		case isa.OpBGE:
			taken = a >= b
		case isa.OpBEQ:
			taken = a == b
		case isa.OpBNE:
			taken = a != b
		}
	}
	if taken {
		c.pc = in.Target
	} else {
		c.pc++
	}
	return true
}

func (c *Core) execVWhile(in *isa.Inst, now uint64) bool {
	if in.Imm == 1 { // reset to full predicate
		c.tailActive = -1
		c.pc++
		return true
	}
	if !c.xReadyAt(in.Src1, now) || !c.xReadyAt(in.Src2, now) {
		return false
	}
	rem := c.xr(in.Src1) - c.xr(in.Src2)
	lim := int64(coproc.LanesPerGranule * c.cp.VL(c.id))
	if rem < 0 {
		rem = 0
	}
	if rem > lim {
		rem = lim
	}
	c.tailActive = int(rem)
	c.xw(in.Dst, rem, now+c.cfg.IntLat)
	c.pc++
	return true
}

func (c *Core) execScalarMem(in *isa.Inst, now uint64) bool {
	if !c.xReadyAt(in.Src1, now) {
		return false
	}
	// MOB: wait for vector memory quiescence (Table 2).
	if c.cp.MemInFlight(c.id, now) > 0 {
		c.probe.Signal(c.id, obs.SigLSUWait)
		*c.mobStallCell++
		return false
	}
	addr := uint64(c.xr(in.Src1)) + uint64(in.Imm)
	if in.Op == isa.OpSLoadF {
		done, ok := c.l1.Access(now, addr, 4, false)
		if !ok {
			return false
		}
		c.f[in.Dst] = c.data.ReadF32(addr)
		c.fReady[in.Dst] = done
	} else {
		if !c.fReadyAt(in.Dst, now) { // store data
			return false
		}
		if _, ok := c.l1.Access(now, addr, 4, true); !ok {
			return false
		}
		c.data.WriteF32(addr, c.f[in.Dst])
	}
	c.pc++
	return true
}

func (c *Core) execScalarFP(in *isa.Inst, now uint64) bool {
	if !c.fReadyAt(in.Src1, now) || !c.fReadyAt(in.Src2, now) {
		return false
	}
	if in.Op == isa.OpSFMla && !c.fReadyAt(in.Dst, now) {
		return false
	}
	a, b := c.f[in.Src1], c.f[in.Src2]
	var v float32
	switch in.Op {
	case isa.OpSFAdd:
		v = a + b
	case isa.OpSFSub:
		v = a - b
	case isa.OpSFMul:
		v = a * b
	case isa.OpSFDiv:
		v = a / b
	case isa.OpSFMax:
		v = float32(math.Max(float64(a), float64(b)))
	case isa.OpSFMin:
		v = float32(math.Min(float64(a), float64(b)))
	case isa.OpSFMla:
		v = c.f[in.Dst] + a*b
	}
	c.f[in.Dst] = v
	c.fReady[in.Dst] = now + c.cfg.FPLat
	c.pc++
	return true
}

// execEMSIMD handles MSR/MRS at the core side: resolve operands and either
// read combinationally (speculative reads) or transmit to the EM-SIMD path.
func (c *Core) execEMSIMD(in *isa.Inst, now uint64) bool {
	if in.Op == isa.OpMRS {
		if in.Sys == isa.SysStatus {
			// Must order after the preceding MSR <VL>: go through
			// the in-order pool and wait for the response.
			if !c.transmit(coproc.XInst{
				Op: isa.OpMRS, Core: c.id, Sys: in.Sys, XDst: in.Dst, Phase: in.Phase,
			}) {
				return false
			}
			c.xReady[in.Dst] = notReady // response will unblock
			c.probe.Signal(c.id, obs.SigDrain)
			*c.reconfigCell++
			c.pc++
			return true
		}
		// Speculative read (§4.1.1): combinational, low latency.
		c.xw(in.Dst, int64(c.cp.ReadSysNow(c.id, in.Sys)), now+c.cfg.EMSIMDLat)
		if in.Sys == isa.SysDecision {
			c.probe.Signal(c.id, obs.SigMonitor)
			*c.monitorCell++
		}
		c.pc++
		return true
	}
	// MSR: resolve the value and transmit.
	val := uint32(in.Imm)
	if in.Src1 != isa.RegNone {
		if !c.xReadyAt(in.Src1, now) {
			return false
		}
		val = uint32(c.xr(in.Src1))
	}
	if !c.transmit(coproc.XInst{
		Op: isa.OpMSR, Core: c.id, Sys: in.Sys, Val: val, Phase: in.Phase,
	}) {
		return false
	}
	switch in.Sys {
	case isa.SysVL:
		c.probe.Signal(c.id, obs.SigDrain)
		*c.reconfigCell++
	case isa.SysOI:
		c.probe.Signal(c.id, obs.SigMonitor)
	}
	c.pc++
	return true
}

// transmitVector resolves a vector instruction's scalar operands and sends
// it to the co-processor pool. The active element count and data-path width
// are captured here: pre-reconfiguration instructions execute under the old
// vector length (§4.2.2).
func (c *Core) transmitVector(in *isa.Inst, now uint64) bool {
	vl := c.cp.VL(c.id)
	active := coproc.LanesPerGranule * vl
	if c.tailActive >= 0 && c.tailActive < active {
		active = c.tailActive
	}
	x := coproc.XInst{
		Op: in.Op, Core: c.id, Dst: in.Dst, Src1: in.Src1, Src2: in.Src2,
		FImm: in.FImm, Active: active, Width: vl, Phase: in.Phase,
	}
	switch in.Op {
	case isa.OpVLoad, isa.OpVStore:
		// Base + scaled-index addressing: addr = Xbase + 4*Xindex.
		if !c.xReadyAt(in.Src1, now) || !c.xReadyAt(in.Src2, now) {
			return false
		}
		x.Addr = uint64(c.xr(in.Src1) + 4*c.xr(in.Src2))
		x.Src1, x.Src2 = isa.RegNone, isa.RegNone
	case isa.OpVDupX, isa.OpVInsX0:
		if !c.xReadyAt(in.Src1, now) {
			return false
		}
		x.Val = uint32(c.xr(in.Src1))
		x.Src1 = isa.RegNone
	case isa.OpVMovX0:
		x.XDst = in.Dst
		x.Dst = isa.RegNone
	}
	if !c.transmit(x) {
		return false
	}
	if in.Op == isa.OpVMovX0 {
		c.xReady[in.Dst] = notReady
	}
	c.pc++
	return true
}

func (c *Core) transmit(x coproc.XInst) bool {
	if c.cp.Transmit(x) != coproc.TransmitOK {
		c.probe.Signal(c.id, obs.SigDispatchFull)
		*c.poolFullCell++
		return false
	}
	return true
}

// State is a complete architectural snapshot of the core, for OS context
// switching (§5). It captures everything program-visible: the program and
// its counter, the scalar integer and FP register files, and the
// transmit-side tail predicate. Vector registers live in the co-processor
// and are saved separately.
type State struct {
	Prog       *isa.Program
	PC         int
	X          [isa.NumXRegs]int64
	F          [isa.NumFRegs]float32
	TailActive int
	Halted     bool
	HaltCycle  uint64
	Phase      int
}

// Snapshot captures the core's architectural state. The caller must ensure
// the core is quiescent (parked and the co-processor drained), mirroring
// §5's "when all the pipelines are drained".
func (c *Core) Snapshot() State {
	return State{
		Prog:       c.prog,
		PC:         c.pc,
		X:          c.x,
		F:          c.f,
		TailActive: c.tailActive,
		Halted:     c.halted,
		HaltCycle:  c.haltCycle,
		Phase:      c.phase,
	}
}

// Restore installs a previously captured state (possibly of a different
// task/program). Pending scoreboard entries are cleared: quiescence
// guarantees no results are in flight.
func (c *Core) Restore(s State) {
	c.prog = s.Prog
	c.pc = s.PC
	c.x = s.X
	c.f = s.F
	c.tailActive = s.TailActive
	c.halted = s.Halted
	c.haltCycle = s.HaltCycle
	c.phase = s.Phase
	for i := range c.xReady {
		c.xReady[i] = 0
	}
	for i := range c.fReady {
		c.fReady[i] = 0
	}
	// Rebuild per-phase counter names for the (possibly new) program.
	c.buildPhaseNames(s.Prog)
}

// FullState is a cycle-accurate checkpoint of the core. Unlike State — the
// OS context-switch view, which requires quiescence and clears the
// scoreboards — it also preserves the register-ready timestamps, park
// status, the open attribution slice, and the progress counters, so a
// restored run resumes mid-flight bit-identically to one that never stopped.
type FullState struct {
	st         State
	xReady     [isa.NumXRegs]uint64
	fReady     [isa.NumFRegs]uint64
	parked     bool
	phaseStart uint64
	insts      uint64
	elems      uint64
}

// Checkpoint captures the core's complete simulation state at any cycle —
// no quiescence precondition.
func (c *Core) Checkpoint() FullState {
	return FullState{
		st:         c.Snapshot(),
		xReady:     c.xReady,
		fReady:     c.fReady,
		parked:     c.parked,
		phaseStart: c.phaseStart,
		insts:      c.insts,
		elems:      c.elems,
	}
}

// RestoreCheckpoint rewinds the core to a Checkpoint.
func (c *Core) RestoreCheckpoint(s FullState) {
	c.Restore(s.st)
	c.xReady = s.xReady
	c.fReady = s.fReady
	c.parked = s.parked
	c.phaseStart = s.phaseStart
	c.insts = s.insts
	c.elems = s.elems
}

// NewState builds the boot state for a fresh task.
func NewState(prog *isa.Program) State {
	return State{Prog: prog, TailActive: -1, Phase: -1}
}

// Park stops the core from fetching (the OS descheduled it); Unpark resumes.
// A parked core still holds its architectural state.
func (c *Core) Park() { c.parked = true }

// Unpark resumes fetching.
func (c *Core) Unpark() { c.parked = false }

// Parked reports whether the core is parked.
func (c *Core) Parked() bool { return c.parked }
