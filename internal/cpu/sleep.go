package cpu

import (
	"occamy/internal/isa"
	"occamy/internal/obs"
	"occamy/internal/sim"
)

// This file implements sim.Sleeper for the scalar core: a side-effect-free
// mirror of the first gate Tick would hit, so the skip-ahead engine can elide
// stall cycles while replaying their accounting exactly.
//
// A live core's Tick always charges the current phase's cycle counter and
// raises SigScalar; beyond that, a cycle is quiescent only when the first
// instruction stalls on a gate whose per-cycle effects are fixed:
//
//   - a register scoreboard gate (no extra effects; wake = the register's
//     ready timestamp, NeverWake when it awaits a co-processor response),
//   - the MOB vector-quiescence gate (SigLSUWait + the mob_stall counter;
//     the co-processor's wake bounds the window),
//   - a refused Transmit (SigDispatchFull + the pool_full counter; pool
//     space frees only at a co-processor tick event).
//
// Anything that would reach execution — including an L1 access, which
// mutates cache state even when rejected — reports live.

// stallGate classifies the first gate the instruction at pc fails at cycle
// now. ok=false means the instruction would make progress (or reach a
// side-effecting stage) and the tick must run for real.
func (c *Core) stallGate(in *isa.Inst, now uint64) (wake uint64, sig obs.Sig, counter *uint64, ok bool) {
	// firstX/firstF return the first not-ready register's ready timestamp,
	// honouring the gate evaluation order of execute().
	firstX := func(regs ...isa.Reg) (uint64, bool) {
		for _, r := range regs {
			if !c.xReadyAt(r, now) {
				return c.xReady[r], true
			}
		}
		return 0, false
	}
	firstF := func(regs ...isa.Reg) (uint64, bool) {
		for _, r := range regs {
			if !c.fReadyAt(r, now) {
				return c.fReady[r], true
			}
		}
		return 0, false
	}
	// poolGate is the shared Transmit stage: a full pool is a quiescent
	// stall, a free slot means the instruction transmits (progress).
	poolGate := func() (uint64, obs.Sig, *uint64, bool) {
		if c.cp.PoolFull(c.id) {
			return sim.NeverWake, obs.SigDispatchFull, c.poolFullCell, true
		}
		return 0, 0, nil, false
	}

	op := in.Op
	switch {
	case op.Class() == isa.ClassSVE:
		switch op {
		case isa.OpVLoad, isa.OpVStore:
			if w, bad := firstX(in.Src1, in.Src2); bad {
				return w, 0, nil, true
			}
		case isa.OpVDupX, isa.OpVInsX0:
			if w, bad := firstX(in.Src1); bad {
				return w, 0, nil, true
			}
		}
		return poolGate()
	case op.IsEMSIMD():
		if op == isa.OpMRS {
			if in.Sys == isa.SysStatus {
				return poolGate()
			}
			return 0, 0, nil, false // speculative read: executes
		}
		// MSR: resolve the value, then transmit.
		if in.Src1 != isa.RegNone {
			if w, bad := firstX(in.Src1); bad {
				return w, 0, nil, true
			}
		}
		return poolGate()
	}

	switch op {
	case isa.OpMov, isa.OpAddI, isa.OpSubI, isa.OpMulI, isa.OpIncVL, isa.OpBEQI, isa.OpBNEI:
		if w, bad := firstX(in.Src1); bad {
			return w, 0, nil, true
		}
	case isa.OpAdd, isa.OpSub, isa.OpBLT, isa.OpBGE, isa.OpBEQ, isa.OpBNE:
		if w, bad := firstX(in.Src1, in.Src2); bad {
			return w, 0, nil, true
		}
	case isa.OpVWhile:
		if in.Imm != 1 {
			if w, bad := firstX(in.Src1, in.Src2); bad {
				return w, 0, nil, true
			}
		}
	case isa.OpSLoadF, isa.OpSStoreF:
		if w, bad := firstX(in.Src1); bad {
			return w, 0, nil, true
		}
		if c.cp.MemInFlight(c.id, now) > 0 {
			return sim.NeverWake, obs.SigLSUWait, c.mobStallCell, true
		}
		if op == isa.OpSStoreF {
			if w, bad := firstF(in.Dst); bad {
				return w, 0, nil, true
			}
		}
		return 0, 0, nil, false // would access the L1 (mutates even on reject)
	case isa.OpSFAdd, isa.OpSFSub, isa.OpSFMul, isa.OpSFDiv, isa.OpSFMax, isa.OpSFMin:
		if w, bad := firstF(in.Src1, in.Src2); bad {
			return w, 0, nil, true
		}
	case isa.OpSFMla:
		if w, bad := firstF(in.Src1, in.Src2, in.Dst); bad {
			return w, 0, nil, true
		}
	case isa.OpSIAdd, isa.OpSISub, isa.OpSIMul, isa.OpSIAnd, isa.OpSIOr, isa.OpSIXor,
		isa.OpSIShl, isa.OpSIShr, isa.OpSIMax, isa.OpSIMin:
		if w, bad := firstF(in.Src1, in.Src2); bad {
			return w, 0, nil, true
		}
	case isa.OpSFAbs, isa.OpSFNeg, isa.OpSFSqrt:
		if w, bad := firstF(in.Src1); bad {
			return w, 0, nil, true
		}
	}
	return 0, 0, nil, false // the instruction executes this cycle
}

// NextWake implements sim.Sleeper. A halted or parked core ticks with no
// effects at all; a live one is quiescent only while its first instruction
// stalls on a fixed-effect gate (a register gate's failure set can only
// shrink as time passes, so the first failing gate is stable until its
// declared wake).
func (c *Core) NextWake(now uint64) (uint64, bool) {
	if c.halted || c.parked {
		return sim.NeverWake, true
	}
	in := c.prog.AtPtr(c.pc)
	if in.Phase != c.phase {
		return 0, false // phase entry updates stats/trace once
	}
	wake, _, _, ok := c.stallGate(in, now)
	return wake, ok
}

// SkipTicks implements sim.Sleeper: replays the accounting of n stalled
// ticks. Signals are raised once — the probe charges its settled mask once
// per elided cycle — while counters scale by n.
func (c *Core) SkipTicks(from, n uint64) {
	if c.halted || c.parked {
		return
	}
	*c.phaseCycleCells[c.phase+1] += n
	c.probe.Signal(c.id, obs.SigScalar)
	in := c.prog.AtPtr(c.pc)
	_, sig, counter, _ := c.stallGate(in, from)
	if sig != 0 {
		c.probe.Signal(c.id, sig)
	}
	if counter != nil {
		*counter += n
	}
}
